#include "workflow/simulator.h"

#include "workflow/values.h"
#include "common/status_macros.h"

namespace labflow::workflow {

using labbase::ClassId;
using labbase::StateId;
using labbase::StepEffect;
using labbase::StepTag;

SimpleSimulator::SimpleSimulator(labbase::LabBase::Session* db,
                                 const WorkflowGraph& graph, uint64_t seed)
    : db_(db), graph_(graph), rng_(seed) {}

Result<int64_t> SimpleSimulator::FireTransition(const Transition& t,
                                                std::vector<Oid> batch) {
  const labbase::Schema& schema = db_->schema();
  LABFLOW_ASSIGN_OR_RETURN(ClassId step_class,
                           schema.StepClassByName(t.step_name));
  std::vector<StepEffect> effects;
  effects.reserve(batch.size());
  std::vector<std::pair<Oid, std::string>> destinations;
  for (Oid m : batch) {
    bool failed = t.failure_prob > 0 && rng_.NextBool(t.failure_prob);
    const std::string& dest = failed ? t.failure_state : t.target_state;
    StepEffect e;
    e.material = m;
    for (const ResultSpec& spec : t.results) {
      LABFLOW_ASSIGN_OR_RETURN(labbase::AttrId attr,
                               schema.AttributeByName(spec.attr));
      e.tags.push_back(StepTag{attr, GenerateResult(spec, &rng_)});
    }
    LABFLOW_ASSIGN_OR_RETURN(e.new_state, schema.StateByName(dest));
    effects.push_back(std::move(e));
    destinations.emplace_back(m, dest);
  }
  clock_.Advance(static_cast<int64_t>(
      rng_.NextExp(static_cast<double>(t.duration_mean_us))));
  LABFLOW_RETURN_IF_ERROR(
      db_->RecordStep(step_class, clock_.now(), effects).status());
  ++steps_recorded_;
  for (const auto& [m, dest] : destinations) {
    queues_[QueueKey{dest, t.material_class}].push_back(m);
  }
  return steps_recorded_;
}

Result<int64_t> SimpleSimulator::Run(int n_materials) {
  LABFLOW_RETURN_IF_ERROR(graph_.Validate());
  for (const Transition& t : graph_.transitions) {
    if (t.kind == Transition::Kind::kSpawn ||
        t.kind == Transition::Kind::kJoin) {
      return Status::NotSupported(
          "SimpleSimulator does not handle spawn/join graphs");
    }
  }
  const Transition* arrival = nullptr;
  for (const Transition& t : graph_.transitions) {
    if (t.source_state.empty()) {
      if (arrival != nullptr) {
        return Status::InvalidArgument("multiple arrival transitions");
      }
      arrival = &t;
    }
  }
  if (arrival == nullptr) {
    return Status::InvalidArgument("no arrival transition");
  }
  LABFLOW_RETURN_IF_ERROR(graph_.InstallSchema(db_));

  const labbase::Schema& schema = db_->schema();
  LABFLOW_ASSIGN_OR_RETURN(ClassId arrival_class,
                           schema.MaterialClassByName(arrival->material_class));
  LABFLOW_ASSIGN_OR_RETURN(StateId arrival_state,
                           schema.StateByName(arrival->target_state));

  // Arrivals: create each material, record its arrival step.
  for (int i = 0; i < n_materials; ++i) {
    clock_.Advance(static_cast<int64_t>(
        rng_.NextExp(static_cast<double>(arrival->duration_mean_us))));
    std::string name =
        arrival->material_class + "-" + std::to_string(i + 1);
    LABFLOW_ASSIGN_OR_RETURN(
        Oid m, db_->CreateMaterial(arrival_class, name, arrival_state,
                                   clock_.now()));
    LABFLOW_ASSIGN_OR_RETURN(ClassId step_class,
                             schema.StepClassByName(arrival->step_name));
    StepEffect e;
    e.material = m;
    for (const ResultSpec& spec : arrival->results) {
      LABFLOW_ASSIGN_OR_RETURN(labbase::AttrId attr,
                               schema.AttributeByName(spec.attr));
      e.tags.push_back(StepTag{attr, GenerateResult(spec, &rng_)});
    }
    e.new_state = arrival_state;
    LABFLOW_RETURN_IF_ERROR(
        db_->RecordStep(step_class, clock_.now(), {e}).status());
    ++steps_recorded_;
    queues_[QueueKey{arrival->target_state, arrival->material_class}]
        .push_back(m);
  }

  // Drain: repeatedly fire any applicable transition until quiescent.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (const Transition& t : graph_.transitions) {
      if (t.source_state.empty()) continue;
      auto it = queues_.find(QueueKey{t.source_state, t.material_class});
      if (it == queues_.end() || it->second.empty()) continue;
      std::deque<Oid>& queue = it->second;
      size_t want = 1;
      if (t.kind == Transition::Kind::kBatch) {
        want = static_cast<size_t>(rng_.NextInt(t.batch_min, t.batch_max));
        if (queue.size() < want) want = queue.size();
      }
      std::vector<Oid> batch;
      for (size_t i = 0; i < want && !queue.empty(); ++i) {
        batch.push_back(queue.front());
        queue.pop_front();
      }
      if (batch.empty()) continue;
      LABFLOW_RETURN_IF_ERROR(FireTransition(t, std::move(batch)).status());
      progressed = true;
    }
  }
  return steps_recorded_;
}

}  // namespace labflow::workflow
