#include "workflow/graph.h"

#include <set>
#include "common/status_macros.h"

namespace labflow::workflow {

Status WorkflowGraph::Validate() const {
  std::set<std::string> classes(material_classes.begin(),
                                material_classes.end());
  if (classes.size() != material_classes.size()) {
    return Status::InvalidArgument("duplicate material class");
  }
  std::set<std::string> state_set(states.begin(), states.end());
  if (state_set.size() != states.size()) {
    return Status::InvalidArgument("duplicate state");
  }
  std::set<std::string> step_names;
  for (const Transition& t : transitions) {
    if (!step_names.insert(t.step_name).second) {
      return Status::InvalidArgument("duplicate step: " + t.step_name);
    }
    if (!classes.count(t.material_class)) {
      return Status::InvalidArgument(t.step_name + ": unknown class " +
                                     t.material_class);
    }
    auto check_state = [&](const std::string& s,
                           const char* what) -> Status {
      if (!s.empty() && !state_set.count(s)) {
        return Status::InvalidArgument(t.step_name + ": unknown " +
                                       std::string(what) + " state " + s);
      }
      return Status::OK();
    };
    // source_state may be empty only for arrival steps (no precondition).
    LABFLOW_RETURN_IF_ERROR(check_state(t.source_state, "source"));
    if (t.target_state.empty()) {
      return Status::InvalidArgument(t.step_name + ": missing target state");
    }
    LABFLOW_RETURN_IF_ERROR(check_state(t.target_state, "target"));
    LABFLOW_RETURN_IF_ERROR(check_state(t.failure_state, "failure"));
    LABFLOW_RETURN_IF_ERROR(check_state(t.exhausted_state, "exhausted"));
    if (!t.creates_class.empty()) {
      if (!classes.count(t.creates_class)) {
        return Status::InvalidArgument(t.step_name +
                                       ": unknown created class " +
                                       t.creates_class);
      }
      if (t.creates_state.empty()) {
        return Status::InvalidArgument(t.step_name +
                                       ": creates_class without state");
      }
      LABFLOW_RETURN_IF_ERROR(check_state(t.creates_state, "created"));
    }
    if (t.failure_prob < 0.0 || t.failure_prob > 1.0) {
      return Status::InvalidArgument(t.step_name + ": bad failure_prob");
    }
    if (t.failure_prob > 0.0 && t.failure_state.empty()) {
      return Status::InvalidArgument(t.step_name +
                                     ": failure_prob without failure_state");
    }
    switch (t.kind) {
      case Transition::Kind::kBatch:
        if (t.batch_min < 1 || t.batch_max < t.batch_min) {
          return Status::InvalidArgument(t.step_name + ": bad batch range");
        }
        break;
      case Transition::Kind::kSpawn:
        if (!classes.count(t.child_class)) {
          return Status::InvalidArgument(t.step_name +
                                         ": unknown child class");
        }
        LABFLOW_RETURN_IF_ERROR(check_state(t.child_state, "child"));
        if (t.child_state.empty()) {
          return Status::InvalidArgument(t.step_name +
                                         ": missing child state");
        }
        break;
      case Transition::Kind::kJoin:
        LABFLOW_RETURN_IF_ERROR(
            check_state(t.child_source_state, "child source"));
        LABFLOW_RETURN_IF_ERROR(
            check_state(t.child_target_state, "child target"));
        if (t.child_source_state.empty() || t.child_target_state.empty()) {
          return Status::InvalidArgument(t.step_name +
                                         ": join needs child states");
        }
        break;
      case Transition::Kind::kSimple:
        break;
    }
  }
  return Status::OK();
}

const Transition* WorkflowGraph::FindTransition(
    std::string_view step_name) const {
  for (const Transition& t : transitions) {
    if (t.step_name == step_name) return &t;
  }
  return nullptr;
}

std::vector<const Transition*> WorkflowGraph::TransitionsFrom(
    std::string_view state, std::string_view material_class) const {
  std::vector<const Transition*> out;
  for (const Transition& t : transitions) {
    if (t.source_state == state &&
        (material_class.empty() || t.material_class == material_class)) {
      out.push_back(&t);
    }
  }
  return out;
}

WorkflowGraph::Analysis WorkflowGraph::Analyze() const {
  Analysis out;
  std::set<std::string> producible;  // states some transition can reach
  for (const Transition& t : transitions) {
    producible.insert(t.target_state);
    if (!t.failure_state.empty()) producible.insert(t.failure_state);
    if (!t.exhausted_state.empty()) producible.insert(t.exhausted_state);
    if (!t.creates_state.empty()) producible.insert(t.creates_state);
    if (t.kind == Transition::Kind::kSpawn) producible.insert(t.child_state);
    if (t.kind == Transition::Kind::kJoin) {
      producible.insert(t.child_target_state);
    }
  }
  std::set<std::string> consumed;  // states some transition fires from
  for (const Transition& t : transitions) {
    if (!t.source_state.empty()) consumed.insert(t.source_state);
    if (t.kind == Transition::Kind::kJoin) {
      consumed.insert(t.child_source_state);
    }
  }
  for (const std::string& state : states) {
    if (!producible.count(state)) out.unreachable_states.push_back(state);
    if (!consumed.count(state)) out.terminal_states.push_back(state);
  }
  for (const Transition& t : transitions) {
    if (!t.source_state.empty() && !producible.count(t.source_state)) {
      out.dead_transitions.push_back(t.step_name);
    }
  }
  return out;
}

Status WorkflowGraph::InstallSchema(labbase::SessionIface* db) const {
  for (const std::string& cls : material_classes) {
    Status st = db->DefineMaterialClass(cls).status();
    if (!st.ok() && !st.IsAlreadyExists()) return st;
  }
  for (const std::string& state : states) {
    LABFLOW_RETURN_IF_ERROR(db->DefineState(state).status());
  }
  for (const Transition& t : transitions) {
    std::vector<std::string> attrs;
    attrs.reserve(t.results.size());
    for (const ResultSpec& r : t.results) attrs.push_back(r.attr);
    LABFLOW_RETURN_IF_ERROR(db->DefineStepClass(t.step_name, attrs).status());
  }
  return Status::OK();
}

WorkflowGraph GenomeMappingWorkflow() {
  WorkflowGraph g;
  g.name = "genome_mapping";
  g.material_classes = {"clone", "tclone", "gel"};
  g.states = {
      // clone states
      "cl_received", "cl_dna_ready", "cl_tn_done", "cl_assembled",
      "cl_finished",
      // tclone states
      "tc_new", "tc_associated", "tc_picked", "waiting_for_gel", "on_gel",
      "waiting_for_sequencing", "waiting_for_incorporation", "tc_blasted",
      "tc_incorporated", "tc_failed",
      // gel states
      "gel_loaded", "gel_run",
  };

  using Kind = Transition::Kind;
  using Gen = ResultSpec::Gen;

  auto add = [&](Transition t) { g.transitions.push_back(std::move(t)); };

  {
    Transition t;
    t.step_name = "receive_clone";
    t.kind = Kind::kSimple;
    t.material_class = "clone";
    t.source_state = "";  // arrival
    t.target_state = "cl_received";
    t.results = {
        {.attr = "library", .gen = Gen::kName, .length = 6},
        {.attr = "insert_size_kb", .gen = Gen::kInt, .min = 30, .max = 45},
    };
    t.duration_mean_us = 5'000'000;
    add(std::move(t));
  }
  {
    Transition t;
    t.step_name = "prepare_dna";
    t.kind = Kind::kSimple;
    t.material_class = "clone";
    t.source_state = "cl_received";
    t.target_state = "cl_dna_ready";
    t.failure_state = "cl_received";
    t.failure_prob = 0.05;
    t.results = {
        {.attr = "dna_conc_ng_ul", .gen = Gen::kReal, .rmin = 20, .rmax = 400},
        {.attr = "purity", .gen = Gen::kReal, .rmin = 1.2, .rmax = 2.1},
    };
    t.duration_mean_us = 3'600'000'000;  // an hour of lab time
    add(std::move(t));
  }
  {
    Transition t;
    t.step_name = "transposon_insertion";
    t.kind = Kind::kSpawn;
    t.material_class = "clone";
    t.source_state = "cl_dna_ready";
    t.target_state = "cl_tn_done";
    t.child_class = "tclone";
    t.child_state = "tc_new";
    t.children_mean = 18.0;
    t.children_min = 4;
    t.results = {
        {.attr = "n_insertions", .gen = Gen::kInt, .min = 4, .max = 60},
    };
    t.duration_mean_us = 7'200'000'000;
    add(std::move(t));
  }
  {
    Transition t;
    t.step_name = "associate_tclone";
    t.kind = Kind::kSimple;
    t.material_class = "tclone";
    t.source_state = "tc_new";
    t.target_state = "tc_associated";
    t.results = {
        {.attr = "parent_clone", .gen = Gen::kName, .length = 10},
        {.attr = "position_est", .gen = Gen::kInt, .min = 0, .max = 45000},
    };
    t.duration_mean_us = 600'000'000;
    add(std::move(t));
  }
  {
    Transition t;
    t.step_name = "pick_tclone";
    t.kind = Kind::kSimple;
    t.material_class = "tclone";
    t.source_state = "tc_associated";
    t.target_state = "tc_picked";
    t.results = {
        {.attr = "plate", .gen = Gen::kInt, .min = 1, .max = 400},
        {.attr = "well", .gen = Gen::kInt, .min = 1, .max = 96},
    };
    t.duration_mean_us = 300'000'000;
    add(std::move(t));
  }
  {
    Transition t;
    t.step_name = "seq_reaction";
    t.kind = Kind::kSimple;
    t.material_class = "tclone";
    t.source_state = "tc_picked";
    t.target_state = "waiting_for_gel";
    t.results = {
        {.attr = "chemistry", .gen = Gen::kName, .length = 8},
        {.attr = "primer", .gen = Gen::kName, .length = 12},
    };
    t.duration_mean_us = 1'800'000'000;
    add(std::move(t));
  }
  {
    Transition t;
    t.step_name = "load_gel";
    t.kind = Kind::kBatch;
    t.material_class = "tclone";
    t.source_state = "waiting_for_gel";
    t.target_state = "on_gel";
    t.creates_class = "gel";
    t.creates_state = "gel_loaded";
    t.batch_min = 16;
    t.batch_max = 48;
    t.results = {
        {.attr = "lane", .gen = Gen::kInt, .min = 1, .max = 48},
    };
    t.duration_mean_us = 1'200'000'000;
    add(std::move(t));
  }
  {
    Transition t;
    t.step_name = "run_gel";
    t.kind = Kind::kSimple;
    t.material_class = "gel";
    t.source_state = "gel_loaded";
    t.target_state = "gel_run";
    t.results = {
        {.attr = "run_time_min", .gen = Gen::kInt, .min = 240, .max = 600},
        {.attr = "voltage", .gen = Gen::kInt, .min = 1200, .max = 2400},
    };
    t.duration_mean_us = 21'600'000'000;
    add(std::move(t));
  }
  {
    Transition t;
    t.step_name = "read_gel";
    t.kind = Kind::kBatch;
    t.material_class = "tclone";
    t.source_state = "on_gel";
    t.target_state = "waiting_for_sequencing";
    t.failure_state = "tc_picked";
    t.failure_prob = 0.06;
    t.exhausted_state = "tc_failed";
    t.results = {
        {.attr = "trace_file", .gen = Gen::kName, .length = 24},
        {.attr = "read_quality", .gen = Gen::kReal, .rmin = 0.1, .rmax = 1.0},
    };
    t.duration_mean_us = 3'600'000'000;
    add(std::move(t));
  }
  {
    Transition t;
    t.step_name = "determine_sequence";
    t.kind = Kind::kSimple;
    t.material_class = "tclone";
    t.source_state = "waiting_for_sequencing";
    t.target_state = "waiting_for_incorporation";
    t.failure_state = "tc_picked";
    t.failure_prob = 0.08;
    t.exhausted_state = "tc_failed";
    t.results = {
        {.attr = "sequence", .gen = Gen::kDna, .min = 200, .max = 500},
        {.attr = "base_calls", .gen = Gen::kInt, .min = 200, .max = 500},
        {.attr = "error_rate", .gen = Gen::kReal, .rmin = 0.001, .rmax = 0.05},
    };
    t.duration_mean_us = 1'800'000'000;
    add(std::move(t));
  }
  {
    Transition t;
    t.step_name = "blast_search";
    t.kind = Kind::kSimple;
    t.material_class = "tclone";
    t.source_state = "waiting_for_incorporation";
    t.target_state = "tc_blasted";
    t.results = {
        {.attr = "hits", .gen = Gen::kHitList, .min = 0, .max = 8},
    };
    t.duration_mean_us = 300'000'000;
    add(std::move(t));
  }
  {
    Transition t;
    t.step_name = "assemble_sequence";
    t.kind = Kind::kJoin;
    t.material_class = "clone";
    t.source_state = "cl_tn_done";
    t.target_state = "cl_assembled";
    t.child_source_state = "tc_blasted";
    t.child_target_state = "tc_incorporated";
    t.results = {
        {.attr = "contigs", .gen = Gen::kInt, .min = 1, .max = 12},
        {.attr = "coverage", .gen = Gen::kReal, .rmin = 2.0, .rmax = 9.0},
        {.attr = "assembled_length", .gen = Gen::kInt, .min = 25000,
         .max = 48000},
    };
    t.duration_mean_us = 7'200'000'000;
    add(std::move(t));
  }
  {
    Transition t;
    t.step_name = "finish_clone";
    t.kind = Kind::kSimple;
    t.material_class = "clone";
    t.source_state = "cl_assembled";
    t.target_state = "cl_finished";
    t.results = {
        {.attr = "final_length", .gen = Gen::kInt, .min = 25000, .max = 48000},
        {.attr = "qc_ok", .gen = Gen::kInt, .min = 0, .max = 1},
    };
    t.duration_mean_us = 3'600'000'000;
    add(std::move(t));
  }
  return g;
}

WorkflowGraph OrderFulfillmentWorkflow() {
  WorkflowGraph g;
  g.name = "order_fulfillment";
  g.material_classes = {"order"};
  g.states = {"placed", "paid", "picked", "packed", "shipped", "delivered",
              "payment_failed"};

  using Kind = Transition::Kind;
  using Gen = ResultSpec::Gen;
  auto add = [&](Transition t) { g.transitions.push_back(std::move(t)); };

  {
    Transition t;
    t.step_name = "place_order";
    t.kind = Kind::kSimple;
    t.material_class = "order";
    t.source_state = "";
    t.target_state = "placed";
    t.results = {
        {.attr = "customer", .gen = Gen::kName, .length = 10},
        {.attr = "total_cents", .gen = Gen::kInt, .min = 500, .max = 250000},
    };
    t.duration_mean_us = 1'000'000;
    add(std::move(t));
  }
  {
    Transition t;
    t.step_name = "charge_payment";
    t.kind = Kind::kSimple;
    t.material_class = "order";
    t.source_state = "placed";
    t.target_state = "paid";
    t.failure_state = "payment_failed";
    t.failure_prob = 0.03;
    t.results = {
        {.attr = "auth_code", .gen = Gen::kName, .length = 12},
    };
    t.duration_mean_us = 2'000'000;
    add(std::move(t));
  }
  {
    Transition t;
    t.step_name = "retry_payment";
    t.kind = Kind::kSimple;
    t.material_class = "order";
    t.source_state = "payment_failed";
    t.target_state = "paid";
    t.results = {
        {.attr = "auth_code", .gen = Gen::kName, .length = 12},
    };
    t.duration_mean_us = 3'600'000'000;
    add(std::move(t));
  }
  {
    Transition t;
    t.step_name = "pick_items";
    t.kind = Kind::kSimple;
    t.material_class = "order";
    t.source_state = "paid";
    t.target_state = "picked";
    t.results = {
        {.attr = "picker", .gen = Gen::kName, .length = 8},
        {.attr = "n_items", .gen = Gen::kInt, .min = 1, .max = 12},
    };
    t.duration_mean_us = 1'800'000'000;
    add(std::move(t));
  }
  {
    Transition t;
    t.step_name = "pack_order";
    t.kind = Kind::kSimple;
    t.material_class = "order";
    t.source_state = "picked";
    t.target_state = "packed";
    t.results = {
        {.attr = "weight_g", .gen = Gen::kInt, .min = 50, .max = 20000},
    };
    t.duration_mean_us = 600'000'000;
    add(std::move(t));
  }
  {
    Transition t;
    t.step_name = "ship_order";
    t.kind = Kind::kBatch;
    t.material_class = "order";
    t.source_state = "packed";
    t.target_state = "shipped";
    t.batch_min = 4;
    t.batch_max = 24;
    t.results = {
        {.attr = "tracking", .gen = Gen::kName, .length = 16},
    };
    t.duration_mean_us = 14'400'000'000;
    add(std::move(t));
  }
  {
    Transition t;
    t.step_name = "confirm_delivery";
    t.kind = Kind::kSimple;
    t.material_class = "order";
    t.source_state = "shipped";
    t.target_state = "delivered";
    t.results = {
        {.attr = "signed_by", .gen = Gen::kName, .length = 10},
    };
    t.duration_mean_us = 86'400'000'000;
    add(std::move(t));
  }
  return g;
}

}  // namespace labflow::workflow
