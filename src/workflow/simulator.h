#ifndef LABFLOW_WORKFLOW_SIMULATOR_H_
#define LABFLOW_WORKFLOW_SIMULATOR_H_

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "labbase/labbase.h"
#include "workflow/graph.h"

namespace labflow::workflow {

/// A straightforward executor for kSimple/kBatch workflow graphs: materials
/// arrive, flow through the transitions (including failure loops), and
/// every movement is recorded in LabBase as a step instance. Used by the
/// non-genome examples; the LabFlow-1 benchmark uses the dedicated
/// generator in src/labflow, which additionally handles spawn/join,
/// gel tracking, schema evolution and the query mix.
class SimpleSimulator {
 public:
  /// The graph must contain exactly one arrival transition (empty
  /// source_state) and no kSpawn/kJoin transitions.
  SimpleSimulator(labbase::LabBase::Session* db, const WorkflowGraph& graph,
                  uint64_t seed);

  /// Installs the schema and runs `n_materials` materials from arrival to
  /// quiescence (no transition applicable anywhere). Returns the number of
  /// steps recorded.
  Result<int64_t> Run(int n_materials);

 private:
  struct QueueKey {
    std::string state;
    std::string material_class;
    bool operator<(const QueueKey& o) const {
      if (state != o.state) return state < o.state;
      return material_class < o.material_class;
    }
  };

  Result<int64_t> FireTransition(const Transition& t,
                                 std::vector<Oid> batch);

  labbase::LabBase::Session* db_;
  const WorkflowGraph& graph_;
  Rng rng_;
  VirtualClock clock_;
  std::map<QueueKey, std::deque<Oid>> queues_;
  int64_t steps_recorded_ = 0;
};

}  // namespace labflow::workflow

#endif  // LABFLOW_WORKFLOW_SIMULATOR_H_
