#include "workflow/values.h"

namespace labflow::workflow {

Value GenerateResult(const ResultSpec& spec, Rng* rng) {
  switch (spec.gen) {
    case ResultSpec::Gen::kInt:
      return Value::Int(rng->NextInt(spec.min, spec.max));
    case ResultSpec::Gen::kReal:
      return Value::Real(rng->NextReal(spec.rmin, spec.rmax));
    case ResultSpec::Gen::kName:
      return Value::String(rng->NextName(spec.length));
    case ResultSpec::Gen::kDna:
      return Value::String(rng->NextDna(static_cast<size_t>(
          rng->NextInt(spec.min, spec.max))));
    case ResultSpec::Gen::kHitList: {
      static const char* kDatabases[] = {"genbank", "embl", "ddbj", "pdb"};
      int64_t n = rng->NextInt(spec.min, spec.max);
      Value::List hits;
      hits.reserve(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        hits.push_back(Value::MakeList({
            Value::String(kDatabases[rng->NextBelow(4)]),
            Value::String(rng->NextName(1) + std::to_string(
                              rng->NextInt(10000, 99999))),
            Value::Real(rng->NextReal(20.0, 1500.0)),
        }));
      }
      return Value::MakeList(std::move(hits));
    }
  }
  return Value::Null();
}

}  // namespace labflow::workflow
