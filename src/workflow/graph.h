#ifndef LABFLOW_WORKFLOW_GRAPH_H_
#define LABFLOW_WORKFLOW_GRAPH_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "labbase/labbase.h"

namespace labflow::workflow {

/// How a step's result attribute values are synthesized by the workload
/// generator.
struct ResultSpec {
  enum class Gen {
    kInt,      // uniform integer in [min, max]
    kReal,     // uniform real in [rmin, rmax]
    kName,     // random identifier of `length`
    kDna,      // random base string of length in [min, max]
    kHitList,  // list of hit(db, accession, score) triples (BLAST results)
  };

  std::string attr;
  Gen gen = Gen::kInt;
  int64_t min = 0;
  int64_t max = 100;
  double rmin = 0.0;
  double rmax = 1.0;
  size_t length = 8;
};

/// One edge family of the workflow graph: a step class, the state movement
/// it causes, its failure loop, and how the generator schedules it.
///
/// Kinds:
///  * kSimple — processes one material of `material_class`.
///  * kBatch  — processes a batch of materials together (e.g. loading many
///    tclones on one sequencing gel).
///  * kSpawn  — processes one material and creates `children_mean` new
///    materials of `child_class` (transposon insertion creating tclones).
///  * kJoin   — processes one parent plus all of its children once every
///    child reached `source_state` (sequence assembly).
struct Transition {
  enum class Kind { kSimple, kBatch, kSpawn, kJoin };

  std::string step_name;
  Kind kind = Kind::kSimple;
  std::string material_class;
  std::string source_state;
  std::string target_state;
  /// Failure loop: with probability failure_prob the material goes to
  /// failure_state instead of target_state. Empty = no failure edge.
  std::string failure_state;
  double failure_prob = 0.0;
  /// Where a material goes when it exhausts its retry budget on this
  /// step's failure loop (e.g. tc_failed). Empty = retries forever.
  std::string exhausted_state;
  /// Side-product: this step also creates one material of `creates_class`
  /// in `creates_state` (loading a gel creates the gel itself). Empty =
  /// no side product.
  std::string creates_class;
  std::string creates_state;
  /// kBatch: batch size range.
  int batch_min = 1;
  int batch_max = 1;
  /// kSpawn: children created per firing.
  std::string child_class;
  std::string child_state;  // state the children start in
  double children_mean = 0.0;
  int children_min = 0;
  /// kJoin: children consumed (all children of the parent currently in
  /// `child_source_state` move to `child_target_state`).
  std::string child_source_state;
  std::string child_target_state;
  /// Result attributes produced per processed material.
  std::vector<ResultSpec> results;
  /// Mean simulated duration (advances the valid-time clock), microseconds.
  int64_t duration_mean_us = 60'000'000;
};

/// A declarative workflow graph (paper Section 2.2 / Appendix B): material
/// classes, workflow states, and the step classes that move materials
/// between states. "The workflow graph largely determines the workload for
/// the DBMS."
struct WorkflowGraph {
  std::string name;
  std::vector<std::string> material_classes;
  std::vector<std::string> states;
  std::vector<Transition> transitions;

  /// Structural validation: referenced classes/states exist, step names are
  /// unique, kind-specific fields are present, probabilities are sane.
  Status Validate() const;

  /// Returns the transition with this step name, or nullptr.
  const Transition* FindTransition(std::string_view step_name) const;

  /// All transitions whose source_state is `state` (for `material_class`
  /// when non-empty).
  std::vector<const Transition*> TransitionsFrom(
      std::string_view state, std::string_view material_class = "") const;

  /// Declares every class, state and step class of this graph in LabBase.
  Status InstallSchema(labbase::SessionIface* db) const;

  /// Static analysis over the graph (process re-engineering support: when
  /// the lab rewires its workflow, these catch dangling pieces).
  struct Analysis {
    /// States no transition can ever put a material into (arrival targets,
    /// transition targets, failure targets, spawn child states and join
    /// child targets all count as reachable entry points).
    std::vector<std::string> unreachable_states;
    /// States with no outgoing transition (legitimate for terminal states;
    /// listed so the designer can confirm each one is intended).
    std::vector<std::string> terminal_states;
    /// Transitions whose source state no other transition can produce
    /// (and which are not arrivals) — they can never fire.
    std::vector<std::string> dead_transitions;
  };
  Analysis Analyze() const;
};

/// The reconstructed Appendix-B workflow of the paper: the transposon-based
/// sequencing pipeline of the Whitehead/MIT Genome Center (see DESIGN.md
/// Section 5 for the reconstruction notes and sources).
WorkflowGraph GenomeMappingWorkflow();

/// A small order-fulfillment workflow demonstrating that LabBase is not
/// genome-specific (used by the order_fulfillment example).
WorkflowGraph OrderFulfillmentWorkflow();

}  // namespace labflow::workflow

#endif  // LABFLOW_WORKFLOW_GRAPH_H_
