#ifndef LABFLOW_WORKFLOW_VALUES_H_
#define LABFLOW_WORKFLOW_VALUES_H_

#include "common/rng.h"
#include "common/value.h"
#include "workflow/graph.h"

namespace labflow::workflow {

/// Synthesizes one result-attribute value according to its spec. The hit
/// lists model BLAST homology-search results (paper Section 8.2): a list of
/// hit(database, accession, score) entries.
Value GenerateResult(const ResultSpec& spec, Rng* rng);

}  // namespace labflow::workflow

#endif  // LABFLOW_WORKFLOW_VALUES_H_
