#include "net/wire.h"

#include "common/status_macros.h"

namespace labflow::net {

std::string_view OpName(Op op) {
  switch (op) {
    case Op::kPing: return "Ping";
    case Op::kSessionOpen: return "SessionOpen";
    case Op::kSessionClose: return "SessionClose";
    case Op::kBegin: return "Begin";
    case Op::kCommit: return "Commit";
    case Op::kAbort: return "Abort";
    case Op::kDefineMaterialClass: return "DefineMaterialClass";
    case Op::kDefineStepClass: return "DefineStepClass";
    case Op::kDefineState: return "DefineState";
    case Op::kGetSchema: return "GetSchema";
    case Op::kCreateMaterial: return "CreateMaterial";
    case Op::kRecordStep: return "RecordStep";
    case Op::kMostRecent: return "MostRecent";
    case Op::kMostRecentByName: return "MostRecentByName";
    case Op::kValueAsOf: return "ValueAsOf";
    case Op::kHistory: return "History";
    case Op::kHistoryBetween: return "HistoryBetween";
    case Op::kGetMaterial: return "GetMaterial";
    case Op::kGetStep: return "GetStep";
    case Op::kFindMaterialByName: return "FindMaterialByName";
    case Op::kCurrentState: return "CurrentState";
    case Op::kMaterialsInState: return "MaterialsInState";
    case Op::kCountInState: return "CountInState";
    case Op::kMaterialsOfClass: return "MaterialsOfClass";
    case Op::kCreateSet: return "CreateSet";
    case Op::kAddToSet: return "AddToSet";
    case Op::kRemoveFromSet: return "RemoveFromSet";
    case Op::kSetMembers: return "SetMembers";
    case Op::kFindSetByName: return "FindSetByName";
    case Op::kCheckpoint: return "Checkpoint";
    case Op::kServerStats: return "ServerStats";
    case Op::kBeginReadOnly: return "BeginReadOnly";
    case Op::kListSteps: return "ListSteps";
  }
  return "UnknownOp";
}

void AppendFrame(std::string* wire, std::string_view payload) {
  Encoder len;
  len.PutU64(payload.size());
  wire->append(len.buffer());
  wire->append(payload.data(), payload.size());
}

void FrameReader::Append(std::string_view bytes) {
  buf_.append(bytes.data(), bytes.size());
}

Result<bool> FrameReader::Next(std::string* frame) {
  if (poisoned_) {
    return Status::Corruption("frame stream desynchronized by earlier error");
  }
  // Decode the varint length prefix by hand: a partial varint is "need
  // more bytes", not corruption — but a prefix that cannot terminate
  // within 5 bytes already exceeds any length kMaxFrameBytes admits, and
  // is rejected without waiting for the rest of it.
  uint64_t len = 0;
  int shift = 0;
  size_t p = pos_;
  while (true) {
    if (p >= buf_.size()) return false;  // prefix incomplete
    uint8_t b = static_cast<uint8_t>(buf_[p++]);
    len |= static_cast<uint64_t>(b & 0x7F) << shift;
    if (!(b & 0x80)) break;
    shift += 7;
    if (shift >= 35) {
      poisoned_ = true;
      return Status::Corruption("frame length prefix too long");
    }
  }
  if (len > max_frame_) {
    poisoned_ = true;
    return Status::Corruption("frame length " + std::to_string(len) +
                              " exceeds limit " + std::to_string(max_frame_));
  }
  if (buf_.size() - p < len) return false;  // payload incomplete
  frame->assign(buf_, p, len);
  pos_ = p + len;
  // Reclaim the consumed prefix once it dominates the buffer, amortized
  // O(1) per byte.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return true;
}

// ---- Headers ----------------------------------------------------------------

void EncodeRequestHeader(Encoder* e, const RequestHeader& h) {
  e->PutU64(h.request_id);
  e->PutU8(static_cast<uint8_t>(h.op));
  e->PutU64(h.session_id);
}

Result<RequestHeader> DecodeRequestHeader(Decoder* d) {
  RequestHeader h;
  LABFLOW_ASSIGN_OR_RETURN(h.request_id, d->GetU64());
  LABFLOW_ASSIGN_OR_RETURN(uint8_t op, d->GetU8());
  if (op < kMinOp || op > kMaxOp) {
    return Status::Corruption("unknown opcode " + std::to_string(op));
  }
  h.op = static_cast<Op>(op);
  LABFLOW_ASSIGN_OR_RETURN(h.session_id, d->GetU64());
  return h;
}

void EncodeResponseHeader(Encoder* e, uint64_t request_id, const Status& st) {
  e->PutU64(request_id);
  e->PutU8(static_cast<uint8_t>(st.code()));
  e->PutString(st.message());
}

Result<ResponseHeader> DecodeResponseHeader(Decoder* d) {
  ResponseHeader h;
  LABFLOW_ASSIGN_OR_RETURN(h.request_id, d->GetU64());
  LABFLOW_ASSIGN_OR_RETURN(uint8_t code, d->GetU8());
  if (code > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Status::Corruption("unknown status code " + std::to_string(code));
  }
  LABFLOW_ASSIGN_OR_RETURN(std::string message, d->GetString());
  h.status = Status(static_cast<StatusCode>(code), std::move(message));
  return h;
}

// ---- Body payloads ----------------------------------------------------------

void EncodeOid(Encoder* e, Oid oid) { e->PutU64(oid.raw); }

Result<Oid> DecodeOid(Decoder* d) {
  LABFLOW_ASSIGN_OR_RETURN(uint64_t raw, d->GetU64());
  return Oid(raw);
}

void EncodeTimestamp(Encoder* e, Timestamp t) { e->PutI64(t.micros); }

Result<Timestamp> DecodeTimestamp(Decoder* d) {
  LABFLOW_ASSIGN_OR_RETURN(int64_t us, d->GetI64());
  return Timestamp(us);
}

namespace {

/// Validates an element count against the bytes actually on hand: every
/// element costs at least one byte, so a count above remaining() is
/// corrupt — reject before reserving, so adversarial counts cannot drive
/// allocations past the received byte budget.
Result<uint64_t> GetCount(Decoder* d) {
  LABFLOW_ASSIGN_OR_RETURN(uint64_t n, d->GetU64());
  if (n > d->remaining()) {
    return Status::Corruption("element count " + std::to_string(n) +
                              " exceeds remaining payload");
  }
  return n;
}

}  // namespace

void EncodeOids(Encoder* e, const std::vector<Oid>& oids) {
  e->PutU64(oids.size());
  for (Oid oid : oids) EncodeOid(e, oid);
}

Result<std::vector<Oid>> DecodeOids(Decoder* d) {
  LABFLOW_ASSIGN_OR_RETURN(uint64_t n, GetCount(d));
  std::vector<Oid> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    LABFLOW_ASSIGN_OR_RETURN(Oid oid, DecodeOid(d));
    out.push_back(oid);
  }
  return out;
}

void EncodeHistoryEntries(Encoder* e,
                          const std::vector<labbase::HistoryEntry>& entries) {
  e->PutU64(entries.size());
  for (const labbase::HistoryEntry& entry : entries) {
    EncodeTimestamp(e, entry.time);
    e->PutValue(entry.value);
    EncodeOid(e, entry.step);
  }
}

Result<std::vector<labbase::HistoryEntry>> DecodeHistoryEntries(Decoder* d) {
  LABFLOW_ASSIGN_OR_RETURN(uint64_t n, GetCount(d));
  std::vector<labbase::HistoryEntry> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    labbase::HistoryEntry entry;
    LABFLOW_ASSIGN_OR_RETURN(entry.time, DecodeTimestamp(d));
    LABFLOW_ASSIGN_OR_RETURN(entry.value, d->GetValue());
    LABFLOW_ASSIGN_OR_RETURN(entry.step, DecodeOid(d));
    out.push_back(std::move(entry));
  }
  return out;
}

void EncodeMaterialInfo(Encoder* e, const labbase::MaterialInfo& info) {
  EncodeOid(e, info.id);
  e->PutU32(info.class_id);
  e->PutString(info.name);
  e->PutU32(info.state);
  EncodeTimestamp(e, info.created);
  e->PutU64(info.attrs_present.size());
  for (labbase::AttrId attr : info.attrs_present) e->PutU32(attr);
}

Result<labbase::MaterialInfo> DecodeMaterialInfo(Decoder* d) {
  labbase::MaterialInfo info;
  LABFLOW_ASSIGN_OR_RETURN(info.id, DecodeOid(d));
  LABFLOW_ASSIGN_OR_RETURN(info.class_id, d->GetU32());
  LABFLOW_ASSIGN_OR_RETURN(info.name, d->GetString());
  LABFLOW_ASSIGN_OR_RETURN(info.state, d->GetU32());
  LABFLOW_ASSIGN_OR_RETURN(info.created, DecodeTimestamp(d));
  LABFLOW_ASSIGN_OR_RETURN(uint64_t n, GetCount(d));
  info.attrs_present.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    LABFLOW_ASSIGN_OR_RETURN(labbase::AttrId attr, d->GetU32());
    info.attrs_present.push_back(attr);
  }
  return info;
}

void EncodeStepInfo(Encoder* e, const labbase::StepInfo& info) {
  EncodeOid(e, info.id);
  e->PutU32(info.class_id);
  e->PutU32(info.version);
  EncodeTimestamp(e, info.time);
  e->PutU64(info.materials.size());
  for (const labbase::StepMaterialEntry& m : info.materials) {
    e->PutU64(m.material.raw);
    e->PutU32(m.new_state);
    e->PutU64(m.tags.size());
    for (const labbase::StepTag& tag : m.tags) {
      e->PutU32(tag.attr);
      e->PutValue(tag.value);
    }
  }
}

Result<labbase::StepInfo> DecodeStepInfo(Decoder* d) {
  labbase::StepInfo info;
  LABFLOW_ASSIGN_OR_RETURN(info.id, DecodeOid(d));
  LABFLOW_ASSIGN_OR_RETURN(info.class_id, d->GetU32());
  LABFLOW_ASSIGN_OR_RETURN(info.version, d->GetU32());
  LABFLOW_ASSIGN_OR_RETURN(info.time, DecodeTimestamp(d));
  LABFLOW_ASSIGN_OR_RETURN(uint64_t n, GetCount(d));
  info.materials.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    labbase::StepMaterialEntry m;
    LABFLOW_ASSIGN_OR_RETURN(uint64_t raw, d->GetU64());
    m.material = storage::ObjectId(raw);
    LABFLOW_ASSIGN_OR_RETURN(m.new_state, d->GetU32());
    LABFLOW_ASSIGN_OR_RETURN(uint64_t tags, GetCount(d));
    m.tags.reserve(tags);
    for (uint64_t j = 0; j < tags; ++j) {
      labbase::StepTag tag;
      LABFLOW_ASSIGN_OR_RETURN(tag.attr, d->GetU32());
      LABFLOW_ASSIGN_OR_RETURN(tag.value, d->GetValue());
      m.tags.push_back(std::move(tag));
    }
    info.materials.push_back(std::move(m));
  }
  return info;
}

void EncodeStepEffects(Encoder* e,
                       const std::vector<labbase::StepEffect>& effects) {
  e->PutU64(effects.size());
  for (const labbase::StepEffect& effect : effects) {
    EncodeOid(e, effect.material);
    e->PutU32(effect.new_state);
    e->PutU64(effect.tags.size());
    for (const labbase::StepTag& tag : effect.tags) {
      e->PutU32(tag.attr);
      e->PutValue(tag.value);
    }
  }
}

Result<std::vector<labbase::StepEffect>> DecodeStepEffects(Decoder* d) {
  LABFLOW_ASSIGN_OR_RETURN(uint64_t n, GetCount(d));
  std::vector<labbase::StepEffect> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    labbase::StepEffect effect;
    LABFLOW_ASSIGN_OR_RETURN(effect.material, DecodeOid(d));
    LABFLOW_ASSIGN_OR_RETURN(effect.new_state, d->GetU32());
    LABFLOW_ASSIGN_OR_RETURN(uint64_t tags, GetCount(d));
    effect.tags.reserve(tags);
    for (uint64_t j = 0; j < tags; ++j) {
      labbase::StepTag tag;
      LABFLOW_ASSIGN_OR_RETURN(tag.attr, d->GetU32());
      LABFLOW_ASSIGN_OR_RETURN(tag.value, d->GetValue());
      effect.tags.push_back(std::move(tag));
    }
    out.push_back(std::move(effect));
  }
  return out;
}

void EncodeServerStats(Encoder* e, const WireServerStats& s) {
  e->PutU64(s.disk_reads);
  e->PutU64(s.disk_writes);
  e->PutU64(s.cache_hits);
  e->PutU64(s.txn_commits);
  e->PutU64(s.db_size_bytes);
  e->PutU64(s.wal_bytes);
  e->PutU64(s.lsm_memtable_bytes);
  e->PutU64(s.lsm_level_files.size());
  for (uint64_t n : s.lsm_level_files) e->PutU64(n);
  e->PutU64(s.lsm_compaction_bytes_read);
  e->PutU64(s.lsm_compaction_bytes_written);
  e->PutU64(s.lsm_bloom_checks);
  e->PutU64(s.lsm_bloom_hits);
  e->PutU64(s.lsm_write_throttles);
}

Result<WireServerStats> DecodeServerStats(Decoder* d) {
  WireServerStats s;
  LABFLOW_ASSIGN_OR_RETURN(s.disk_reads, d->GetU64());
  LABFLOW_ASSIGN_OR_RETURN(s.disk_writes, d->GetU64());
  LABFLOW_ASSIGN_OR_RETURN(s.cache_hits, d->GetU64());
  LABFLOW_ASSIGN_OR_RETURN(s.txn_commits, d->GetU64());
  LABFLOW_ASSIGN_OR_RETURN(s.db_size_bytes, d->GetU64());
  LABFLOW_ASSIGN_OR_RETURN(s.wal_bytes, d->GetU64());
  LABFLOW_ASSIGN_OR_RETURN(s.lsm_memtable_bytes, d->GetU64());
  LABFLOW_ASSIGN_OR_RETURN(uint64_t nlevels, d->GetU64());
  // Defensive bound: a level count is tiny in practice; a huge value here
  // is a corrupt or hostile frame, not a deep tree.
  if (nlevels > 64) {
    return Status::Corruption("server stats: implausible LSM level count");
  }
  for (uint64_t i = 0; i < nlevels; ++i) {
    LABFLOW_ASSIGN_OR_RETURN(uint64_t n, d->GetU64());
    s.lsm_level_files.push_back(n);
  }
  LABFLOW_ASSIGN_OR_RETURN(s.lsm_compaction_bytes_read, d->GetU64());
  LABFLOW_ASSIGN_OR_RETURN(s.lsm_compaction_bytes_written, d->GetU64());
  LABFLOW_ASSIGN_OR_RETURN(s.lsm_bloom_checks, d->GetU64());
  LABFLOW_ASSIGN_OR_RETURN(s.lsm_bloom_hits, d->GetU64());
  LABFLOW_ASSIGN_OR_RETURN(s.lsm_write_throttles, d->GetU64());
  return s;
}

}  // namespace labflow::net
