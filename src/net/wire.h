#ifndef LABFLOW_NET_WIRE_H_
#define LABFLOW_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/codec.h"
#include "common/result.h"
#include "common/status.h"
#include "labbase/session_iface.h"

namespace labflow::net {

/// The labflowd wire protocol.
///
/// Everything on the socket is a *frame*: a varint length prefix followed
/// by that many payload bytes. Payloads reuse the storage codec
/// (common/codec.h): LEB128 varints, length-prefixed strings, tagged
/// Values — one codec on both sides of every durability and network
/// boundary.
///
///   frame    := len:varint payload[len]
///   request  := request_id:varint op:u8 session_id:varint body
///   response := request_id:varint code:u8 message:string body
///
/// `request_id` is chosen by the client and echoed verbatim in the
/// response; it is what lets requests *pipeline*: a client may have any
/// number of requests in flight per connection and match completions by
/// id, in whatever order they arrive. The server preserves order only
/// within a session (a session is single-threaded by contract); requests
/// for different sessions multiplexed on one connection complete in any
/// order.
///
/// `code` is the StatusCode of the operation (0 = OK). `message` is the
/// status message (empty on success). `body` is the op-specific result
/// payload, present only when code == 0.
///
/// All decode paths treat the bytes as untrusted: truncated or oversized
/// input returns Corruption, never reads past the buffer, and never
/// allocates more than the received byte count. See docs/SERVER.md for the
/// full frame catalogue.

/// Protocol version, exchanged in kSessionOpen. Bump on any incompatible
/// frame-layout change. v2: WireServerStats gained the LSM counter block.
inline constexpr uint32_t kProtocolVersion = 2;

/// Hard ceiling on one frame's payload (16 MiB). A length prefix above
/// this is Corruption: it is either a desynchronized stream or an
/// adversarial allocation probe, and both end the connection.
inline constexpr uint32_t kMaxFrameBytes = 1u << 24;

/// Request opcodes. Wire values are stable; append only.
enum class Op : uint8_t {
  kPing = 1,
  kSessionOpen = 2,
  kSessionClose = 3,
  kBegin = 4,
  kCommit = 5,
  kAbort = 6,
  kDefineMaterialClass = 7,
  kDefineStepClass = 8,
  kDefineState = 9,
  kGetSchema = 10,  // NOLINT(opcode-sync): no client stub by design — the
                    // schema piggybacks on kSessionOpen and DDL responses
  kCreateMaterial = 11,
  kRecordStep = 12,
  kMostRecent = 13,
  kMostRecentByName = 14,
  kValueAsOf = 15,
  kHistory = 16,
  kHistoryBetween = 17,
  kGetMaterial = 18,
  kGetStep = 19,
  kFindMaterialByName = 20,
  kCurrentState = 21,
  kMaterialsInState = 22,
  kCountInState = 23,
  kMaterialsOfClass = 24,
  kCreateSet = 25,
  kAddToSet = 26,
  kRemoveFromSet = 27,
  kSetMembers = 28,
  kFindSetByName = 29,
  kCheckpoint = 30,
  kServerStats = 31,
  kBeginReadOnly = 32,
  kListSteps = 33,
};
inline constexpr uint8_t kMinOp = static_cast<uint8_t>(Op::kPing);
inline constexpr uint8_t kMaxOp = static_cast<uint8_t>(Op::kListSteps);

/// Number of opcodes. Adding an opcode means: bump this, update kMaxOp,
/// add a dispatch arm in net/server.cc (its kDispatchedOps inventory
/// asserts against this count), a RemoteSession stub in net/client.cc, and
/// a name in OpName() — the `opcode-sync` rule in scripts/lint.py checks
/// the server/client halves cross-file.
inline constexpr uint8_t kOpCount = 33;
static_assert(kMaxOp - kMinOp + 1 == kOpCount,
              "Op enum must stay dense: kOpCount, kMinOp and kMaxOp moved "
              "out of sync with the enumerators");

/// Stable human-readable opcode name, for logs and errors.
std::string_view OpName(Op op);

/// Appends `payload` to `wire` as one frame (varint length + bytes).
void AppendFrame(std::string* wire, std::string_view payload);

/// Incremental frame reassembly over an untrusted byte stream. Feed
/// whatever the socket produced — single bytes, half frames, several
/// frames at once — and take complete frames out. Used by both the server
/// (per connection) and the client (response stream).
class FrameReader {
 public:
  explicit FrameReader(uint32_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_(max_frame_bytes) {}

  /// Buffers more stream bytes.
  void Append(std::string_view bytes);

  /// If a complete frame is buffered, moves its payload into *frame and
  /// returns true. Returns false when more bytes are needed. Returns
  /// Corruption — permanently; the stream is desynchronized — on a
  /// malformed or oversized length prefix.
  Result<bool> Next(std::string* frame);

  /// Bytes buffered and not yet consumed by Next().
  size_t buffered() const { return buf_.size() - pos_; }

 private:
  const uint32_t max_frame_;
  bool poisoned_ = false;
  std::string buf_;
  size_t pos_ = 0;
};

// ---- Headers ----------------------------------------------------------------

struct RequestHeader {
  uint64_t request_id = 0;
  Op op = Op::kPing;
  uint64_t session_id = 0;
};

void EncodeRequestHeader(Encoder* e, const RequestHeader& h);
Result<RequestHeader> DecodeRequestHeader(Decoder* d);

struct ResponseHeader {
  uint64_t request_id = 0;
  Status status;
};

void EncodeResponseHeader(Encoder* e, uint64_t request_id, const Status& st);
Result<ResponseHeader> DecodeResponseHeader(Decoder* d);

// ---- Body payloads ----------------------------------------------------------
//
// Symmetric encode/decode helpers for every composite the protocol
// carries. Client and server share these, so a roundtrip test of each
// helper covers both directions of the wire.

void EncodeOid(Encoder* e, Oid oid);
Result<Oid> DecodeOid(Decoder* d);

void EncodeTimestamp(Encoder* e, Timestamp t);
Result<Timestamp> DecodeTimestamp(Decoder* d);

void EncodeOids(Encoder* e, const std::vector<Oid>& oids);
Result<std::vector<Oid>> DecodeOids(Decoder* d);

void EncodeHistoryEntries(Encoder* e,
                          const std::vector<labbase::HistoryEntry>& entries);
Result<std::vector<labbase::HistoryEntry>> DecodeHistoryEntries(Decoder* d);

void EncodeMaterialInfo(Encoder* e, const labbase::MaterialInfo& info);
Result<labbase::MaterialInfo> DecodeMaterialInfo(Decoder* d);

void EncodeStepInfo(Encoder* e, const labbase::StepInfo& info);
Result<labbase::StepInfo> DecodeStepInfo(Decoder* d);

void EncodeStepEffects(Encoder* e,
                       const std::vector<labbase::StepEffect>& effects);
Result<std::vector<labbase::StepEffect>> DecodeStepEffects(Decoder* d);

/// Server-side storage counters exposed to remote clients (kServerStats),
/// so a remote bench can report I/O alongside latency. The lsm_* block is
/// all-zero for non-LSM server versions (protocol v2 additions).
struct WireServerStats {
  uint64_t disk_reads = 0;
  uint64_t disk_writes = 0;
  uint64_t cache_hits = 0;
  uint64_t txn_commits = 0;
  uint64_t db_size_bytes = 0;
  uint64_t wal_bytes = 0;
  uint64_t lsm_memtable_bytes = 0;
  std::vector<uint64_t> lsm_level_files;
  uint64_t lsm_compaction_bytes_read = 0;
  uint64_t lsm_compaction_bytes_written = 0;
  uint64_t lsm_bloom_checks = 0;
  uint64_t lsm_bloom_hits = 0;
  uint64_t lsm_write_throttles = 0;
};

void EncodeServerStats(Encoder* e, const WireServerStats& s);
Result<WireServerStats> DecodeServerStats(Decoder* d);

}  // namespace labflow::net

#endif  // LABFLOW_NET_WIRE_H_
