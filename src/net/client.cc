#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/rng.h"
#include "common/status_macros.h"

namespace labflow::net {

namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

/// Splits a response frame into (header, body-decoder) and lifts the wire
/// status: non-OK responses become the operation's Status.
Result<std::string> LiftResponse(std::string frame) {
  Decoder d(frame);
  LABFLOW_ASSIGN_OR_RETURN(ResponseHeader h, DecodeResponseHeader(&d));
  LABFLOW_RETURN_IF_ERROR(h.status);
  return std::string(frame.substr(frame.size() - d.remaining()));
}

}  // namespace

// ---- Connection -------------------------------------------------------------

Result<std::unique_ptr<Connection>> Connection::Dial(const std::string& host,
                                                     uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad server address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Errno("connect");
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Connection>(new Connection(fd));
}

Connection::~Connection() { ::close(fd_); }

Result<uint64_t> Connection::Send(Op op, uint64_t session_id,
                                  std::string_view body) {
  uint64_t id;
  {
    MutexLock l(mu_);
    if (!broken_.ok()) return broken_;
    id = next_request_id_++;
  }
  Encoder e;
  RequestHeader h;
  h.request_id = id;
  h.op = op;
  h.session_id = session_id;
  EncodeRequestHeader(&e, h);
  std::string payload = e.Release();
  payload.append(body.data(), body.size());
  std::string wire;
  AppendFrame(&wire, payload);

  {
    MutexLock l(write_mu_);
    size_t off = 0;
    while (off < wire.size()) {
      ssize_t n =
          ::send(fd_, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        Status st = Errno("send");
        MutexLock ml(mu_);
        if (broken_.ok()) broken_ = st;
        cv_.NotifyAll();
        return broken_;
      }
      off += static_cast<size_t>(n);
    }
  }
  return id;
}

Status Connection::ReadUntil(uint64_t request_id) {
  // Caller holds mu_ and has claimed the reader role.
  while (true) {
    // Drain already-buffered frames first.
    while (true) {
      std::string frame;
      Result<bool> got = reader_.Next(&frame);
      if (!got.ok()) return got.status();
      if (!got.value()) break;
      Decoder d(frame);
      Result<ResponseHeader> h = DecodeResponseHeader(&d);
      if (!h.ok()) return h.status();
      uint64_t rid = h->request_id;
      completed_.emplace(rid, std::move(frame));
      if (rid != request_id) cv_.NotifyAll();
      if (completed_.count(request_id) != 0) return Status::OK();
    }
    // Blocking socket read with the lock dropped.
    char buf[64 * 1024];
    mu_.Unlock();
    ssize_t n = ::read(fd_, buf, sizeof(buf));
    mu_.Lock();
    if (n > 0) {
      reader_.Append(std::string_view(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) return Status::Unavailable("server closed connection");
    return Errno("read");
  }
}

Result<std::string> Connection::Await(uint64_t request_id) {
  MutexLock l(mu_);
  while (true) {
    auto it = completed_.find(request_id);
    if (it != completed_.end()) {
      std::string frame = std::move(it->second);
      completed_.erase(it);
      return LiftResponse(std::move(frame));
    }
    if (!broken_.ok()) return broken_;
    if (!reader_active_) {
      reader_active_ = true;
      Status st = ReadUntil(request_id);
      reader_active_ = false;
      if (!st.ok() && broken_.ok()) broken_ = st;
      // Wake parked waiters: either their response was filed, or the
      // connection just died and they must observe broken_.
      cv_.NotifyAll();
      continue;
    }
    cv_.Wait(mu_);
  }
}

Result<std::string> Connection::Call(Op op, uint64_t session_id,
                                     std::string_view body) {
  LABFLOW_ASSIGN_OR_RETURN(uint64_t id, Send(op, session_id, body));
  return Await(id);
}

Status Connection::Ping() {
  LABFLOW_ASSIGN_OR_RETURN(std::string body, Call(Op::kPing, 0, {}));
  Decoder d(body);
  LABFLOW_ASSIGN_OR_RETURN(uint32_t version, d.GetU32());
  if (version != kProtocolVersion) {
    return Status::InvalidArgument("server protocol version " +
                                   std::to_string(version));
  }
  return Status::OK();
}

Result<WireServerStats> Connection::ServerStats() {
  LABFLOW_ASSIGN_OR_RETURN(std::string body, Call(Op::kServerStats, 0, {}));
  Decoder d(body);
  return DecodeServerStats(&d);
}

// ---- RemoteSession ----------------------------------------------------------

Result<std::unique_ptr<RemoteSession>> RemoteSession::Open(Connection* conn) {
  Encoder e;
  e.PutU32(kProtocolVersion);
  LABFLOW_ASSIGN_OR_RETURN(std::string body,
                           conn->Call(Op::kSessionOpen, 0, e.buffer()));
  Decoder d(body);
  LABFLOW_ASSIGN_OR_RETURN(uint64_t session_id, d.GetU64());
  LABFLOW_ASSIGN_OR_RETURN(std::string blob, d.GetString());
  LABFLOW_ASSIGN_OR_RETURN(labbase::Schema schema,
                           labbase::Schema::Decode(blob));
  auto session =
      std::unique_ptr<RemoteSession>(new RemoteSession(conn, session_id));
  session->schema_ = std::move(schema);
  return session;
}

RemoteSession::~RemoteSession() {
  auto closed = conn_->Call(Op::kSessionClose, session_id_, {});
  (void)closed;  // best-effort: the server reaps the lease on disconnect too
}

Status RemoteSession::Begin() {
  LABFLOW_ASSIGN_OR_RETURN(std::string body, Call(Op::kBegin, {}));
  (void)body;
  in_txn_ = true;
  return Status::OK();
}

Status RemoteSession::BeginReadOnly() {
  LABFLOW_ASSIGN_OR_RETURN(std::string body, Call(Op::kBeginReadOnly, {}));
  (void)body;
  in_txn_ = true;
  return Status::OK();
}

Status RemoteSession::Commit() {
  Result<std::string> body = Call(Op::kCommit, {});
  // Commit ends the transaction whether it succeeded or was an abort
  // verdict; only a transport failure leaves the state unknown (and then
  // the connection is poisoned anyway).
  in_txn_ = false;
  if (!body.ok()) return body.status();
  return Status::OK();
}

Status RemoteSession::Abort() {
  Result<std::string> body = Call(Op::kAbort, {});
  in_txn_ = false;
  if (!body.ok()) return body.status();
  return Status::OK();
}

Status RemoteSession::RunTransaction(const std::function<Status()>& body) {
  if (in_txn_) {
    return Status::InvalidArgument(
        "RunTransaction inside an active transaction");
  }
  // Mirrors LabBase::Session::RunTransaction: retry deadlock aborts with
  // decorrelated exponential backoff. The retry budget matches the
  // in-process defaults; the jitter stream seeds from the session id.
  constexpr int kMaxRetries = 10;
  int64_t backoff_us = 100;
  Rng rng(session_id_ * 0x9E3779B97F4A7C15ull + 1);
  for (int attempt = 0;; ++attempt) {
    LABFLOW_RETURN_IF_ERROR(Begin());
    Status st = body();
    if (st.ok()) {
      st = Commit();
      if (st.ok()) return st;
    } else {
      LABFLOW_IGNORE_STATUS(Abort(),
                            "surfacing the body's error; rollback of an "
                            "aborting transaction is best-effort");
    }
    if (!st.IsAborted() || attempt >= kMaxRetries) return st;
    ++stats_.txn_retries;
    int64_t sleep_us =
        backoff_us / 2 +
        static_cast<int64_t>(
            rng.NextBelow(static_cast<uint64_t>(backoff_us / 2 + 1)));
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
    backoff_us = std::min<int64_t>(backoff_us * 2, 10000);
  }
}

Result<uint32_t> RemoteSession::DdlCall(Op op, std::string_view body) {
  LABFLOW_ASSIGN_OR_RETURN(std::string resp, Call(op, body));
  Decoder d(resp);
  LABFLOW_ASSIGN_OR_RETURN(uint32_t id, d.GetU32());
  LABFLOW_ASSIGN_OR_RETURN(std::string blob, d.GetString());
  LABFLOW_ASSIGN_OR_RETURN(schema_, labbase::Schema::Decode(blob));
  return id;
}

Result<labbase::ClassId> RemoteSession::DefineMaterialClass(
    std::string_view name) {
  Encoder e;
  e.PutString(name);
  return DdlCall(Op::kDefineMaterialClass, e.buffer());
}

Result<labbase::ClassId> RemoteSession::DefineStepClass(
    std::string_view name, const std::vector<std::string>& attr_names) {
  Encoder e;
  e.PutString(name);
  e.PutU64(attr_names.size());
  for (const std::string& attr : attr_names) e.PutString(attr);
  return DdlCall(Op::kDefineStepClass, e.buffer());
}

Result<labbase::StateId> RemoteSession::DefineState(std::string_view name) {
  Encoder e;
  e.PutString(name);
  return DdlCall(Op::kDefineState, e.buffer());
}

Result<Oid> RemoteSession::CreateMaterial(labbase::ClassId material_class,
                                          std::string_view name,
                                          labbase::StateId initial_state,
                                          Timestamp created) {
  Encoder e;
  e.PutU32(material_class);
  e.PutString(name);
  e.PutU32(initial_state);
  EncodeTimestamp(&e, created);
  LABFLOW_ASSIGN_OR_RETURN(std::string body,
                           Call(Op::kCreateMaterial, e.buffer()));
  ++stats_.materials_created;
  Decoder d(body);
  return DecodeOid(&d);
}

Result<Oid> RemoteSession::RecordStep(
    labbase::ClassId step_class, Timestamp time,
    const std::vector<labbase::StepEffect>& effects) {
  Encoder e;
  e.PutU32(step_class);
  EncodeTimestamp(&e, time);
  EncodeStepEffects(&e, effects);
  LABFLOW_ASSIGN_OR_RETURN(std::string body, Call(Op::kRecordStep, e.buffer()));
  ++stats_.steps_recorded;
  Decoder d(body);
  return DecodeOid(&d);
}

Result<Value> RemoteSession::MostRecent(Oid material, labbase::AttrId attr) {
  ++stats_.most_recent_queries;
  Encoder e;
  EncodeOid(&e, material);
  e.PutU32(attr);
  LABFLOW_ASSIGN_OR_RETURN(std::string body, Call(Op::kMostRecent, e.buffer()));
  Decoder d(body);
  return d.GetValue();
}

Result<Value> RemoteSession::MostRecent(Oid material,
                                        std::string_view attr_name) {
  ++stats_.most_recent_queries;
  Encoder e;
  EncodeOid(&e, material);
  e.PutString(attr_name);
  LABFLOW_ASSIGN_OR_RETURN(std::string body,
                           Call(Op::kMostRecentByName, e.buffer()));
  Decoder d(body);
  return d.GetValue();
}

Result<std::vector<labbase::HistoryEntry>> RemoteSession::History(
    Oid material, labbase::AttrId attr) {
  ++stats_.history_queries;
  Encoder e;
  EncodeOid(&e, material);
  e.PutU32(attr);
  LABFLOW_ASSIGN_OR_RETURN(std::string body, Call(Op::kHistory, e.buffer()));
  Decoder d(body);
  return DecodeHistoryEntries(&d);
}

Result<Value> RemoteSession::ValueAsOf(Oid material, labbase::AttrId attr,
                                       Timestamp at) {
  ++stats_.history_queries;
  Encoder e;
  EncodeOid(&e, material);
  e.PutU32(attr);
  EncodeTimestamp(&e, at);
  LABFLOW_ASSIGN_OR_RETURN(std::string body, Call(Op::kValueAsOf, e.buffer()));
  Decoder d(body);
  return d.GetValue();
}

Result<std::vector<labbase::HistoryEntry>> RemoteSession::HistoryBetween(
    Oid material, labbase::AttrId attr, Timestamp from, Timestamp to) {
  ++stats_.history_queries;
  Encoder e;
  EncodeOid(&e, material);
  e.PutU32(attr);
  EncodeTimestamp(&e, from);
  EncodeTimestamp(&e, to);
  LABFLOW_ASSIGN_OR_RETURN(std::string body,
                           Call(Op::kHistoryBetween, e.buffer()));
  Decoder d(body);
  return DecodeHistoryEntries(&d);
}

Result<labbase::MaterialInfo> RemoteSession::GetMaterial(Oid material) {
  Encoder e;
  EncodeOid(&e, material);
  LABFLOW_ASSIGN_OR_RETURN(std::string body,
                           Call(Op::kGetMaterial, e.buffer()));
  Decoder d(body);
  return DecodeMaterialInfo(&d);
}

Result<labbase::StepInfo> RemoteSession::GetStep(Oid step) {
  Encoder e;
  EncodeOid(&e, step);
  LABFLOW_ASSIGN_OR_RETURN(std::string body, Call(Op::kGetStep, e.buffer()));
  Decoder d(body);
  return DecodeStepInfo(&d);
}

Result<Oid> RemoteSession::FindMaterialByName(std::string_view name) {
  Encoder e;
  e.PutString(name);
  LABFLOW_ASSIGN_OR_RETURN(std::string body,
                           Call(Op::kFindMaterialByName, e.buffer()));
  Decoder d(body);
  return DecodeOid(&d);
}

Result<labbase::StateId> RemoteSession::CurrentState(Oid material) {
  ++stats_.state_queries;
  Encoder e;
  EncodeOid(&e, material);
  LABFLOW_ASSIGN_OR_RETURN(std::string body,
                           Call(Op::kCurrentState, e.buffer()));
  Decoder d(body);
  return d.GetU32();
}

Result<std::vector<Oid>> RemoteSession::MaterialsInState(
    labbase::StateId state) {
  ++stats_.state_queries;
  Encoder e;
  e.PutU32(state);
  LABFLOW_ASSIGN_OR_RETURN(std::string body,
                           Call(Op::kMaterialsInState, e.buffer()));
  Decoder d(body);
  return DecodeOids(&d);
}

Result<int64_t> RemoteSession::CountInState(labbase::StateId state) {
  ++stats_.state_queries;
  Encoder e;
  e.PutU32(state);
  LABFLOW_ASSIGN_OR_RETURN(std::string body,
                           Call(Op::kCountInState, e.buffer()));
  Decoder d(body);
  return d.GetI64();
}

Result<std::vector<Oid>> RemoteSession::MaterialsOfClass(
    labbase::ClassId material_class) {
  ++stats_.state_queries;
  Encoder e;
  e.PutU32(material_class);
  LABFLOW_ASSIGN_OR_RETURN(std::string body,
                           Call(Op::kMaterialsOfClass, e.buffer()));
  Decoder d(body);
  return DecodeOids(&d);
}

Result<std::vector<Oid>> RemoteSession::ListSteps() {
  LABFLOW_ASSIGN_OR_RETURN(std::string body, Call(Op::kListSteps, {}));
  Decoder d(body);
  return DecodeOids(&d);
}

Result<Oid> RemoteSession::CreateSet(std::string_view name) {
  ++stats_.set_operations;
  Encoder e;
  e.PutString(name);
  LABFLOW_ASSIGN_OR_RETURN(std::string body, Call(Op::kCreateSet, e.buffer()));
  Decoder d(body);
  return DecodeOid(&d);
}

Status RemoteSession::AddToSet(Oid set, Oid material) {
  ++stats_.set_operations;
  Encoder e;
  EncodeOid(&e, set);
  EncodeOid(&e, material);
  LABFLOW_ASSIGN_OR_RETURN(std::string body, Call(Op::kAddToSet, e.buffer()));
  (void)body;
  return Status::OK();
}

Status RemoteSession::RemoveFromSet(Oid set, Oid material) {
  ++stats_.set_operations;
  Encoder e;
  EncodeOid(&e, set);
  EncodeOid(&e, material);
  LABFLOW_ASSIGN_OR_RETURN(std::string body,
                           Call(Op::kRemoveFromSet, e.buffer()));
  (void)body;
  return Status::OK();
}

Result<std::vector<Oid>> RemoteSession::SetMembers(Oid set) {
  ++stats_.set_operations;
  Encoder e;
  EncodeOid(&e, set);
  LABFLOW_ASSIGN_OR_RETURN(std::string body, Call(Op::kSetMembers, e.buffer()));
  Decoder d(body);
  return DecodeOids(&d);
}

Result<Oid> RemoteSession::FindSetByName(std::string_view name) {
  ++stats_.set_operations;
  Encoder e;
  e.PutString(name);
  LABFLOW_ASSIGN_OR_RETURN(std::string body,
                           Call(Op::kFindSetByName, e.buffer()));
  Decoder d(body);
  return DecodeOid(&d);
}

Status RemoteSession::Checkpoint() {
  LABFLOW_ASSIGN_OR_RETURN(std::string body, Call(Op::kCheckpoint, {}));
  (void)body;
  return Status::OK();
}

}  // namespace labflow::net
