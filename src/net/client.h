#ifndef LABFLOW_NET_CLIENT_H_
#define LABFLOW_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "labbase/session_iface.h"
#include "net/wire.h"

namespace labflow::net {

/// A client connection to labflowd. Thread-safe and *pipelined*: any number
/// of threads may Send() concurrently and Await() their own responses;
/// responses complete in whatever order the server finishes them, matched
/// by request id.
///
/// There is no reader thread. Awaiting threads share the socket
/// cooperatively: one of them (whichever gets there first) becomes the
/// reader, pulls frames off the socket, and files completions for everyone;
/// the rest park on a condvar. When the reader's own response arrives it
/// hands the reader role to another waiter. This keeps a closed-loop
/// client's hot path syscall-minimal — no cross-thread handoff when a
/// single thread ping-pongs requests.
///
/// Pipelining discipline: the server stops reading a connection whose
/// response backlog passes its write high-watermark, so a client that
/// sends unboundedly without awaiting can wedge itself (its Send blocks,
/// its responses sit unread). Bound in-flight requests per connection —
/// a few hundred is plenty (see bench_fig_server's open-loop window).
class Connection {
 public:
  /// Connects to host:port (blocking socket, TCP_NODELAY).
  static Result<std::unique_ptr<Connection>> Dial(const std::string& host,
                                                  uint16_t port);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Sends one request frame; returns its request id for Await().
  [[nodiscard]] Result<uint64_t> Send(Op op, uint64_t session_id,
                                      std::string_view body);

  /// Blocks until the response for `request_id` arrives. Returns its body
  /// on OK, the decoded wire Status otherwise. A socket failure poisons
  /// the connection: every pending and future Await returns the error.
  [[nodiscard]] Result<std::string> Await(uint64_t request_id);

  /// Send + Await: the synchronous call every RemoteSession method uses.
  [[nodiscard]] Result<std::string> Call(Op op, uint64_t session_id,
                                         std::string_view body);

  [[nodiscard]] Status Ping();
  [[nodiscard]] Result<WireServerStats> ServerStats();

 private:
  explicit Connection(int fd) : fd_(fd) {}

  /// Reads frames until `request_id` completes or the socket dies. Caller
  /// holds mu_; the socket read itself drops the lock.
  Status ReadUntil(uint64_t request_id) LABFLOW_REQUIRES(mu_);

  const int fd_;

  /// Serializes writes so concurrent Sends interleave at frame boundaries.
  /// Acquired before mu_ (Send takes mu_ inside its write_mu_ hold to
  /// record a send failure) — the one same-class ordered pair Clang's beta
  /// lock-order analysis can check directly; the ranks mirror it.
  Mutex write_mu_ LABFLOW_ACQUIRED_BEFORE(mu_){LockRank::kNetClientWrite,
                                               "net.client.write"};

  Mutex mu_ LABFLOW_ACQUIRED_AFTER(write_mu_){LockRank::kNetClientState,
                                              "net.client.state"};
  CondVar cv_;
  uint64_t next_request_id_ LABFLOW_GUARDED_BY(mu_) = 1;
  bool reader_active_ LABFLOW_GUARDED_BY(mu_) = false;
  Status broken_ LABFLOW_GUARDED_BY(mu_);
  /// Completed responses not yet claimed by their Await-er (raw frames).
  std::unordered_map<uint64_t, std::string> completed_ LABFLOW_GUARDED_BY(mu_);
  FrameReader reader_ LABFLOW_GUARDED_BY(mu_);
};

/// labbase session semantics over a Connection: the remote half of the
/// labbase::SessionIface seam. Single-threaded like every session; many
/// RemoteSessions may share one Connection (the server executes them
/// concurrently, which is what pipelining buys).
///
/// The schema is cached client-side: fetched at Open, refreshed from the
/// response of every DDL call (DDL is single-session by LabBase contract,
/// so this session's cache cannot go stale underneath its own writer).
/// Stats are counted client-side, mirroring LabBase::Session's accounting.
class RemoteSession : public labbase::SessionIface {
 public:
  /// Opens a server-side session (acquires a pool lease there) and primes
  /// the schema cache. `conn` must outlive the returned session.
  static Result<std::unique_ptr<RemoteSession>> Open(Connection* conn);

  /// Best-effort kSessionClose so the server can recycle the lease.
  ~RemoteSession() override;

  Status Begin() override;
  Status BeginReadOnly() override;
  Status Commit() override;
  Status Abort() override;
  bool in_transaction() const override { return in_txn_; }
  Status RunTransaction(const std::function<Status()>& body) override;

  Result<labbase::ClassId> DefineMaterialClass(std::string_view name) override;
  Result<labbase::ClassId> DefineStepClass(
      std::string_view name,
      const std::vector<std::string>& attr_names) override;
  Result<labbase::StateId> DefineState(std::string_view name) override;
  const labbase::Schema& schema() const override { return schema_; }

  Result<Oid> CreateMaterial(labbase::ClassId material_class,
                             std::string_view name,
                             labbase::StateId initial_state,
                             Timestamp created) override;
  Result<Oid> RecordStep(
      labbase::ClassId step_class, Timestamp time,
      const std::vector<labbase::StepEffect>& effects) override;

  Result<Value> MostRecent(Oid material, labbase::AttrId attr) override;
  Result<Value> MostRecent(Oid material, std::string_view attr_name) override;
  Result<std::vector<labbase::HistoryEntry>> History(
      Oid material, labbase::AttrId attr) override;
  Result<Value> ValueAsOf(Oid material, labbase::AttrId attr,
                          Timestamp at) override;
  Result<std::vector<labbase::HistoryEntry>> HistoryBetween(
      Oid material, labbase::AttrId attr, Timestamp from,
      Timestamp to) override;
  Result<labbase::MaterialInfo> GetMaterial(Oid material) override;
  Result<labbase::StepInfo> GetStep(Oid step) override;
  Result<Oid> FindMaterialByName(std::string_view name) override;
  Result<labbase::StateId> CurrentState(Oid material) override;
  Result<std::vector<Oid>> MaterialsInState(labbase::StateId state) override;
  Result<int64_t> CountInState(labbase::StateId state) override;
  Result<std::vector<Oid>> MaterialsOfClass(
      labbase::ClassId material_class) override;
  Result<std::vector<Oid>> ListSteps() override;

  Result<Oid> CreateSet(std::string_view name) override;
  Status AddToSet(Oid set, Oid material) override;
  Status RemoveFromSet(Oid set, Oid material) override;
  Result<std::vector<Oid>> SetMembers(Oid set) override;
  Result<Oid> FindSetByName(std::string_view name) override;

  Status Checkpoint() override;
  const labbase::LabBaseStats& stats() const override { return stats_; }

  uint64_t session_id() const { return session_id_; }

 private:
  RemoteSession(Connection* conn, uint64_t session_id)
      : conn_(conn), session_id_(session_id) {}

  Result<std::string> Call(Op op, std::string_view body) {
    return conn_->Call(op, session_id_, body);
  }
  /// Decodes a DDL response: id (u32) followed by the updated schema blob,
  /// which replaces the cache.
  Result<uint32_t> DdlCall(Op op, std::string_view body);

  Connection* const conn_;
  const uint64_t session_id_;
  labbase::Schema schema_;
  labbase::LabBaseStats stats_;
  bool in_txn_ = false;
};

}  // namespace labflow::net

#endif  // LABFLOW_NET_CLIENT_H_
