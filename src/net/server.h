#ifndef LABFLOW_NET_SERVER_H_
#define LABFLOW_NET_SERVER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "labbase/labbase.h"
#include "net/wire.h"
#include "storage/storage_manager.h"

namespace labflow::net {

struct ServerConfig {
  /// Listen address. Only loopback is expected in this repo's harnesses,
  /// but any local address works.
  std::string host = "127.0.0.1";
  /// Port to bind; 0 asks the kernel for an ephemeral port (read it back
  /// from port() after Start()).
  uint16_t port = 0;
  /// Worker threads executing requests against SessionPool leases. The
  /// event loop itself never touches storage.
  int worker_threads = 4;
  /// Per-connection write-buffer backpressure: above `high` the server
  /// stops *reading* from that connection (a slow reader throttles its own
  /// pipeline instead of ballooning server memory); reads resume once the
  /// buffer drains below `low`.
  size_t write_high_watermark = 4u << 20;
  size_t write_low_watermark = 512u << 10;
  /// Frame-size ceiling applied to inbound requests.
  uint32_t max_frame_bytes = kMaxFrameBytes;
};

/// labflowd's engine: a level-triggered epoll event loop over non-blocking
/// sockets, plus a small worker pool that executes decoded requests against
/// labbase::LabBase::SessionPool leases.
///
/// Concurrency model:
///   - One event-loop thread owns every socket: all read(), write() and
///     epoll bookkeeping happen there. Workers never touch fds.
///   - Workers pull (connection, session) work items off a queue. Per
///     session, frames execute strictly FIFO (a session is single-threaded
///     by LabBase contract); different sessions — on one connection or
///     many — execute concurrently, which is what makes client pipelining
///     pay.
///   - Workers hand finished responses back by appending to the
///     connection's write buffer and waking the loop via eventfd.
///
/// Shutdown() drains gracefully: stop accepting, stop reading, let every
/// already-received request finish and its response flush, then release
/// all session leases (open transactions abort — the client sees a closed
/// socket, exactly as it would on a crash) before the pool is destroyed.
class Server {
 public:
  /// `db` must outlive the server. `mgr` (nullable) only feeds the
  /// kServerStats op.
  Server(labbase::LabBase* db, storage::StorageManager* mgr,
         ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the loop + workers. Call once.
  [[nodiscard]] Status Start();

  /// Graceful drain; blocks until the server is fully stopped. Idempotent.
  void Shutdown();

  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }

 private:
  struct SessionState;
  struct Connection;
  struct Work {
    std::shared_ptr<Connection> conn;
    uint64_t session_key = 0;
  };

  void LoopMain();
  void WorkerMain();

  void AcceptReady();
  void ReadReady(const std::shared_ptr<Connection>& conn);
  bool FlushConnection(const std::shared_ptr<Connection>& conn);
  void UpdateInterest(const std::shared_ptr<Connection>& conn);
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  void RouteFrame(const std::shared_ptr<Connection>& conn, std::string frame);

  /// Executes one decoded request; returns the full response payload.
  std::string HandleFrame(const std::shared_ptr<Connection>& conn,
                          uint64_t session_key, const std::string& frame);

  void EnqueueWork(const std::shared_ptr<Connection>& conn,
                   uint64_t session_key);
  void WakeLoop();

  labbase::LabBase* const db_;
  storage::StorageManager* const mgr_;
  const ServerConfig config_;

  // Internally synchronized (its own kSessionPool mutex).
  labbase::LabBase::SessionPool pool_;  // NOLINT(guarded-by-coverage)

  // Written once in Start() before any thread launches, closed in Stop()
  // after every thread joined; const in between.
  int listen_fd_ = -1;  // NOLINT(guarded-by-coverage): Start/Stop thread
  int epoll_fd_ = -1;   // NOLINT(guarded-by-coverage): Start/Stop thread
  int wake_fd_ = -1;    // NOLINT(guarded-by-coverage): Start/Stop thread
  uint16_t port_ = 0;   // NOLINT(guarded-by-coverage): Start/Stop thread

  std::thread loop_thread_;          // NOLINT(guarded-by-coverage): Start/Stop
  std::vector<std::thread> workers_;  // NOLINT(guarded-by-coverage): Start/Stop

  /// Rank kNetWorkQueue: taken by workers while still holding a
  /// connection's mutex (requeue/finish paths), never while holding any
  /// session or storage lock. Declared acquired-before dirty_mu_: the two
  /// are not nested today, but if they ever are, this is the order.
  Mutex queue_mu_ LABFLOW_ACQUIRED_BEFORE(dirty_mu_){LockRank::kNetWorkQueue,
                                                     "net.server.queue"};
  CondVar queue_cv_;
  CondVar drain_cv_;
  std::deque<Work> queue_ LABFLOW_GUARDED_BY(queue_mu_);
  /// Frames received and not yet answered or dropped; Shutdown waits for 0.
  size_t inflight_ LABFLOW_GUARDED_BY(queue_mu_) = 0;
  bool stop_workers_ LABFLOW_GUARDED_BY(queue_mu_) = false;
  bool stopping_ LABFLOW_GUARDED_BY(queue_mu_) = false;
  bool started_ = false;    // NOLINT(guarded-by-coverage): Start/Stop thread
  bool shut_down_ = false;  // NOLINT(guarded-by-coverage): Start/Stop thread

  /// Loop-thread only: fd -> connection.
  std::unordered_map<int, std::shared_ptr<Connection>>
      conns_;  // NOLINT(guarded-by-coverage): loop-thread only

  /// Connections whose write buffer a worker touched; the loop drains this
  /// on each eventfd wake. Rank kNetDirtyList: never nested with anything
  /// (workers enqueue after releasing the connection mutex; the loop
  /// swaps the vector out under it and flushes off-lock).
  Mutex dirty_mu_{LockRank::kNetDirtyList, "net.server.dirty"};
  std::vector<std::shared_ptr<Connection>> dirty_ LABFLOW_GUARDED_BY(dirty_mu_);
};

}  // namespace labflow::net

#endif  // LABFLOW_NET_SERVER_H_
