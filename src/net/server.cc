#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/status_macros.h"

namespace labflow::net {

using labbase::LabBase;

namespace {

/// Connection-scope requests execute under this pseudo-session key: they
/// need no lease, but still flow through the per-key FIFO so one
/// connection's control traffic stays ordered.
constexpr uint64_t kControlSession = 0;

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

/// Compile-time dispatch inventory: one entry per opcode HandleFrame (or
/// RouteFrame, for connection-scope ops) implements. A new opcode bumps
/// wire.h's kOpCount, so forgetting the dispatch arm — and this list —
/// fails the build here; the `opcode-sync` lint cross-checks that the
/// entries below correspond to real `case Op::k...` arms.
constexpr Op kDispatchedOps[] = {
    Op::kPing,          Op::kSessionOpen,
    Op::kSessionClose,  Op::kBegin,
    Op::kCommit,        Op::kAbort,
    Op::kDefineMaterialClass, Op::kDefineStepClass,
    Op::kDefineState,   Op::kGetSchema,
    Op::kCreateMaterial, Op::kRecordStep,
    Op::kMostRecent,    Op::kMostRecentByName,
    Op::kValueAsOf,     Op::kHistory,
    Op::kHistoryBetween, Op::kGetMaterial,
    Op::kGetStep,       Op::kFindMaterialByName,
    Op::kCurrentState,  Op::kMaterialsInState,
    Op::kCountInState,  Op::kMaterialsOfClass,
    Op::kCreateSet,     Op::kAddToSet,
    Op::kRemoveFromSet, Op::kSetMembers,
    Op::kFindSetByName, Op::kCheckpoint,
    Op::kServerStats,   Op::kBeginReadOnly,
    Op::kListSteps,
};
static_assert(std::size(kDispatchedOps) == kOpCount,
              "opcode added to net/wire.h without a server dispatch arm: "
              "implement it in HandleFrame and record it in kDispatchedOps");

}  // namespace

/// One live session behind the wire: its pool lease plus the FIFO of
/// frames waiting to execute on it. For kControlSession `lease` is empty.
struct Server::SessionState {
  LabBase::SessionPool::Lease lease;
  std::deque<std::string> pending;
  /// True while a worker owns this session's FIFO (it drains one frame at
  /// a time, re-enqueueing itself while pending is non-empty).
  bool running = false;
};

struct Server::Connection {
  explicit Connection(int fd_in, uint32_t max_frame)
      : fd(fd_in), reader(max_frame) {}

  const int fd;
  /// Loop-thread only.
  FrameReader reader;            // NOLINT(guarded-by-coverage): loop thread
  bool reads_paused = false;     // NOLINT(guarded-by-coverage): loop thread
  bool want_write = false;       // NOLINT(guarded-by-coverage): loop thread
  /// Rank kNetConnection — the outermost lock in the tree: workers take
  /// the work queue under it (requeue/finish), and a session-close erases
  /// the lease under it, returning the (already aborted, so storage-idle)
  /// session to the pool. Nothing may take a connection mutex while
  /// holding any other ranked lock.
  Mutex mu{LockRank::kNetConnection, "net.server.conn"};
  std::string out LABFLOW_GUARDED_BY(mu);
  bool dead LABFLOW_GUARDED_BY(mu) = false;
  uint64_t next_session_id LABFLOW_GUARDED_BY(mu) = 1;
  std::unordered_map<uint64_t, std::unique_ptr<SessionState>> sessions
      LABFLOW_GUARDED_BY(mu);
};

Server::Server(labbase::LabBase* db, storage::StorageManager* mgr,
               ServerConfig config)
    : db_(db), mgr_(mgr), config_(std::move(config)), pool_(db) {}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  if (started_) return Status::InvalidArgument("server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address: " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind");
  }
  if (::listen(listen_fd_, 128) != 0) return Errno("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (wake_fd_ < 0) return Errno("eventfd");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return Errno("epoll_ctl(listen)");
  }
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return Errno("epoll_ctl(wake)");
  }

  started_ = true;
  int workers = config_.worker_threads < 1 ? 1 : config_.worker_threads;
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
  loop_thread_ = std::thread([this] { LoopMain(); });
  return Status::OK();
}

void Server::Shutdown() {
  if (!started_ || shut_down_) return;
  shut_down_ = true;

  // Phase 1: stop accepting and reading. The loop observes `stopping_`,
  // closes the listen socket and unsubscribes every connection from
  // EPOLLIN — the request set is now frozen.
  {
    MutexLock l(queue_mu_);
    stopping_ = true;
  }
  WakeLoop();

  // Phase 2: drain. Every frame already received either executes and its
  // response is appended, or is dropped with its connection.
  {
    MutexLock l(queue_mu_);
    drain_cv_.Wait(queue_mu_, [this]() LABFLOW_REQUIRES(queue_mu_) {
      return inflight_ == 0 && queue_.empty();
    });
    stop_workers_ = true;
  }
  queue_cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
  workers_.clear();

  // Phase 3: final flush and teardown. With workers gone no more bytes can
  // appear; the loop pushes out what's buffered, then closes every
  // connection — releasing session leases (open transactions abort) while
  // the pool is still alive.
  WakeLoop();
  loop_thread_.join();

  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  wake_fd_ = epoll_fd_ = -1;
}

// Lock-order audit of the loop/worker seam (see docs/STORAGE.md): the epoll
// loop thread only ever takes connection mutexes, queue_mu_ and dirty_mu_ —
// all ranked below every session/storage lock — and never blocks on a lock a
// worker holds across storage work, because workers drop all storage locks
// inside HandleFrame before touching any net-layer mutex. The eventfd wakeup
// below is rankless by construction: a plain fd write with no mutex held
// (callers enqueue first, release, then wake), so it needs no rank and can
// be called from any context.
void Server::WakeLoop() {
  if (wake_fd_ < 0) return;
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void Server::EnqueueWork(const std::shared_ptr<Connection>& conn,
                         uint64_t session_key) {
  {
    MutexLock l(queue_mu_);
    queue_.push_back(Work{conn, session_key});
  }
  queue_cv_.NotifyOne();
}

// ---- Event loop -------------------------------------------------------------

void Server::LoopMain() {
  bool listen_open = true;
  std::vector<epoll_event> events(64);
  while (true) {
    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      uint32_t mask = events[i].events;
      if (fd == wake_fd_) {
        uint64_t drain;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_) {
        if (listen_open) AcceptReady();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      std::shared_ptr<Connection> conn = it->second;
      if (mask & (EPOLLHUP | EPOLLERR)) {
        CloseConnection(conn);
        continue;
      }
      if (mask & EPOLLOUT) {
        if (!FlushConnection(conn)) continue;  // closed on write error
      }
      if (mask & EPOLLIN) ReadReady(conn);
    }

    // Worker-completed responses: flush each touched connection and
    // re-evaluate its backpressure state.
    std::vector<std::shared_ptr<Connection>> dirty;
    {
      MutexLock l(dirty_mu_);
      dirty.swap(dirty_);
    }
    for (const std::shared_ptr<Connection>& conn : dirty) {
      if (conns_.count(conn->fd) == 0) continue;
      FlushConnection(conn);
    }

    bool stopping;
    {
      MutexLock l(queue_mu_);
      stopping = stopping_;
    }
    if (stopping && listen_open) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      listen_open = false;
      for (auto& [fd, conn] : conns_) {
        conn->reads_paused = true;
        UpdateInterest(conn);
      }
    }
    if (stopping) {
      // Drop connections whose output is fully flushed; once the drain
      // completes (workers joined) and every buffer is empty, exit.
      bool workers_done;
      {
        MutexLock l(queue_mu_);
        workers_done = stop_workers_;
      }
      if (workers_done) {
        std::vector<std::shared_ptr<Connection>> all;
        all.reserve(conns_.size());
        for (auto& [fd, conn] : conns_) all.push_back(conn);
        bool pending_output = false;
        for (const std::shared_ptr<Connection>& conn : all) {
          if (!FlushConnection(conn)) continue;
          MutexLock l(conn->mu);
          if (!conn->out.empty()) pending_output = true;
        }
        if (!pending_output) break;
      }
    }
  }

  // Teardown on the loop thread: every connection closes here, which
  // destroys its SessionStates and returns their leases to pool_ — before
  // ~Server destroys the pool.
  std::vector<std::shared_ptr<Connection>> remaining;
  remaining.reserve(conns_.size());
  for (auto& [fd, conn] : conns_) remaining.push_back(conn);
  for (const std::shared_ptr<Connection>& conn : remaining) {
    CloseConnection(conn);
  }
  if (listen_open && listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::AcceptReady() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) return;  // EAGAIN or transient error; LT retries
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>(fd, config_.max_frame_bytes);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(fd, std::move(conn));
  }
}

void Server::UpdateInterest(const std::shared_ptr<Connection>& conn) {
  epoll_event ev{};
  ev.events = (conn->reads_paused ? 0u : EPOLLIN) |
              (conn->want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void Server::ReadReady(const std::shared_ptr<Connection>& conn) {
  char buf[64 * 1024];
  while (!conn->reads_paused) {
    ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->reader.Append(std::string_view(buf, static_cast<size_t>(n)));
      std::string frame;
      while (true) {
        Result<bool> got = conn->reader.Next(&frame);
        if (!got.ok()) {
          // Desynchronized stream: no frame boundary to answer on. Close.
          CloseConnection(conn);
          return;
        }
        if (!got.value()) break;
        RouteFrame(conn, std::move(frame));
      }
      // Backpressure: a pipelining client can queue enough responses to
      // hit the high watermark without the socket ever blocking.
      size_t buffered;
      {
        MutexLock l(conn->mu);
        buffered = conn->out.size();
      }
      if (buffered > config_.write_high_watermark) {
        conn->reads_paused = true;
        UpdateInterest(conn);
      }
      if (n < static_cast<ssize_t>(sizeof(buf))) return;  // drained
      continue;
    }
    if (n == 0 || (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)) {
      CloseConnection(conn);
    }
    return;
  }
}

void Server::RouteFrame(const std::shared_ptr<Connection>& conn,
                        std::string frame) {
  Decoder d(frame);
  Result<RequestHeader> header = DecodeRequestHeader(&d);
  if (!header.ok()) {
    // A frame whose header does not parse has no request id to answer on:
    // the stream is garbage, not a request. Close.
    CloseConnection(conn);
    return;
  }

  uint64_t key;
  switch (header->op) {
    case Op::kPing:
    case Op::kSessionOpen:
    case Op::kServerStats:
      key = kControlSession;
      break;
    default:
      key = header->session_id;
      break;
  }

  // Count the frame in-flight BEFORE publishing it to a session FIFO: a
  // worker already draining that FIFO may execute and count it down
  // immediately, and the counter must never dip negative.
  {
    MutexLock l(queue_mu_);
    ++inflight_;
  }
  bool start_worker = false;
  bool consumed = false;
  bool direct_reply = false;
  {
    MutexLock l(conn->mu);
    if (!conn->dead) {
      auto it = conn->sessions.find(key);
      if (key == kControlSession && it == conn->sessions.end()) {
        it = conn->sessions.emplace(key, std::make_unique<SessionState>())
                 .first;
      }
      if (it == conn->sessions.end()) {
        // Unknown session: answer directly, no worker required.
        Encoder e;
        EncodeResponseHeader(
            &e, header->request_id,
            Status::NotFound("unknown session " +
                             std::to_string(header->session_id)));
        AppendFrame(&conn->out, e.buffer());
        direct_reply = true;
      } else {
        it->second->pending.push_back(std::move(frame));
        consumed = true;
        if (!it->second->running) {
          it->second->running = true;
          start_worker = true;
        }
      }
    }
  }
  if (!consumed) {
    MutexLock l(queue_mu_);
    --inflight_;
    if (inflight_ == 0 && queue_.empty()) drain_cv_.NotifyAll();
  }
  if (direct_reply) {
    // RouteFrame runs on the loop thread; the dirty list is drained at the
    // end of this same loop iteration, which flushes the reply.
    MutexLock l(dirty_mu_);
    dirty_.push_back(conn);
  }
  if (start_worker) EnqueueWork(conn, key);
}

bool Server::FlushConnection(const std::shared_ptr<Connection>& conn) {
  size_t sent_total = 0;
  while (true) {
    std::string chunk;
    {
      MutexLock l(conn->mu);
      if (conn->dead) return false;
      if (conn->out.empty()) break;
      // Swap out up to 256 KiB per round so the lock is never held across
      // send().
      size_t take = conn->out.size() < (256u << 10) ? conn->out.size()
                                                    : (256u << 10);
      chunk = conn->out.substr(0, take);
    }
    ssize_t n = ::send(conn->fd, chunk.data(), chunk.size(), MSG_NOSIGNAL);
    if (n > 0) {
      MutexLock l(conn->mu);
      conn->out.erase(0, static_cast<size_t>(n));
      sent_total += static_cast<size_t>(n);
      if (static_cast<size_t>(n) < chunk.size()) {
        conn->want_write = true;
        UpdateInterest(conn);
        return true;
      }
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      conn->want_write = true;
      UpdateInterest(conn);
      return true;
    }
    if (errno == EINTR) continue;
    CloseConnection(conn);
    return false;
  }
  // Fully flushed: disarm EPOLLOUT, resume reads below the low watermark.
  bool changed = false;
  if (conn->want_write) {
    conn->want_write = false;
    changed = true;
  }
  bool stopping;
  {
    MutexLock l(queue_mu_);
    stopping = stopping_;
  }
  if (conn->reads_paused && !stopping) {
    size_t buffered;
    {
      MutexLock l(conn->mu);
      buffered = conn->out.size();
    }
    if (buffered < config_.write_low_watermark) {
      conn->reads_paused = false;
      changed = true;
    }
  }
  if (changed) UpdateInterest(conn);
  (void)sent_total;
  return true;
}

void Server::CloseConnection(const std::shared_ptr<Connection>& conn) {
  size_t dropped = 0;
  {
    MutexLock l(conn->mu);
    if (conn->dead) return;
    conn->dead = true;
    // Pending frames of idle sessions die here; a running session's FIFO
    // is drained (and counted down) by its worker when it observes `dead`.
    for (auto& [key, state] : conn->sessions) {
      if (!state->running) {
        dropped += state->pending.size();
        state->pending.clear();
      }
    }
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conns_.erase(conn->fd);
  if (dropped > 0) {
    MutexLock l(queue_mu_);
    inflight_ -= dropped;
    if (inflight_ == 0 && queue_.empty()) drain_cv_.NotifyAll();
  }
  // Leases return to the pool when the last shared_ptr drops (usually
  // right here, on the loop thread).
}

// ---- Workers ----------------------------------------------------------------

void Server::WorkerMain() {
  while (true) {
    Work work;
    {
      MutexLock l(queue_mu_);
      queue_cv_.Wait(queue_mu_, [this]() LABFLOW_REQUIRES(queue_mu_) {
        return stop_workers_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // stop_workers_ and drained
      work = std::move(queue_.front());
      queue_.pop_front();
    }

    // Drain this session's FIFO one frame at a time. Between frames the
    // lock is dropped, so responses interleave fairly across sessions.
    while (true) {
      std::string frame;
      bool dead;
      {
        MutexLock l(work.conn->mu);
        dead = work.conn->dead;
        auto it = work.conn->sessions.find(work.session_key);
        if (it == work.conn->sessions.end() || it->second->pending.empty()) {
          if (it != work.conn->sessions.end()) it->second->running = false;
          frame.clear();
        } else if (dead) {
          // Count down the frames we are about to drop.
          size_t dropped = it->second->pending.size();
          it->second->pending.clear();
          it->second->running = false;
          MutexLock ql(queue_mu_);
          inflight_ -= dropped;
          if (inflight_ == 0 && queue_.empty()) drain_cv_.NotifyAll();
          frame.clear();
        } else {
          frame = std::move(it->second->pending.front());
          it->second->pending.pop_front();
        }
      }
      if (frame.empty()) break;

      std::string response = HandleFrame(work.conn, work.session_key, frame);

      {
        MutexLock l(work.conn->mu);
        if (!work.conn->dead) AppendFrame(&work.conn->out, response);
      }
      {
        MutexLock l(dirty_mu_);
        dirty_.push_back(work.conn);
      }
      WakeLoop();
      {
        MutexLock l(queue_mu_);
        --inflight_;
        if (inflight_ == 0 && queue_.empty()) drain_cv_.NotifyAll();
      }
    }
  }
}

// ---- Request dispatch -------------------------------------------------------

namespace {

/// Encodes `st` (and on OK, the body built by `body`) into a response.
template <typename BodyFn>
std::string Respond(uint64_t request_id, const Status& st, BodyFn body) {
  Encoder e;
  EncodeResponseHeader(&e, request_id, st);
  if (st.ok()) body(&e);
  return e.Release();
}

std::string RespondStatus(uint64_t request_id, const Status& st) {
  return Respond(request_id, st, [](Encoder*) {});
}

}  // namespace

std::string Server::HandleFrame(const std::shared_ptr<Connection>& conn,
                                uint64_t session_key,
                                const std::string& frame) {
  Decoder d(frame);
  Result<RequestHeader> hr = DecodeRequestHeader(&d);
  if (!hr.ok()) return RespondStatus(0, hr.status());
  const RequestHeader& h = hr.value();
  const uint64_t id = h.request_id;

  // Connection-scope ops need no lease.
  switch (h.op) {
    case Op::kPing:
      return Respond(id, Status::OK(),
                     [](Encoder* e) { e->PutU32(kProtocolVersion); });
    case Op::kServerStats: {
      WireServerStats s;
      if (mgr_ != nullptr) {
        storage::StorageStats st = mgr_->stats();
        s.disk_reads = st.disk_reads;
        s.disk_writes = st.disk_writes;
        s.cache_hits = st.cache_hits;
        s.txn_commits = st.txn_commits;
        s.db_size_bytes = st.db_size_bytes;
        s.wal_bytes = st.wal_bytes;
        s.lsm_memtable_bytes = st.lsm_memtable_bytes;
        s.lsm_level_files = st.lsm_level_files;
        s.lsm_compaction_bytes_read = st.lsm_compaction_bytes_read;
        s.lsm_compaction_bytes_written = st.lsm_compaction_bytes_written;
        s.lsm_bloom_checks = st.lsm_bloom_checks;
        s.lsm_bloom_hits = st.lsm_bloom_hits;
        s.lsm_write_throttles = st.lsm_write_throttles;
      }
      return Respond(id, Status::OK(),
                     [&s](Encoder* e) { EncodeServerStats(e, s); });
    }
    case Op::kSessionOpen: {
      Result<uint32_t> ver = d.GetU32();
      if (!ver.ok()) return RespondStatus(id, ver.status());
      if (ver.value() != kProtocolVersion) {
        return RespondStatus(
            id, Status::InvalidArgument(
                    "protocol version mismatch: client " +
                    std::to_string(ver.value()) + ", server " +
                    std::to_string(kProtocolVersion)));
      }
      LabBase::SessionPool::Lease lease = pool_.Acquire();
      if (!lease.valid()) {
        return RespondStatus(id, Status::Unavailable("session pool closed"));
      }
      std::string schema_blob = lease->schema().Encode();
      uint64_t session_id;
      {
        MutexLock l(conn->mu);
        if (conn->dead) {
          // Lease dtor returns it to the pool.
          return RespondStatus(id, Status::Unavailable("connection closed"));
        }
        session_id = conn->next_session_id++;
        auto state = std::make_unique<SessionState>();
        state->lease = std::move(lease);
        conn->sessions.emplace(session_id, std::move(state));
      }
      return Respond(id, Status::OK(), [&](Encoder* e) {
        e->PutU64(session_id);
        e->PutString(schema_blob);
      });
    }
    default:
      break;
  }

  // Session-scope ops: resolve the lease. The running flag guarantees this
  // worker is the only thread touching the session, so the pointer stays
  // valid outside the map lock.
  labbase::SessionIface* session = nullptr;
  {
    MutexLock l(conn->mu);
    auto it = conn->sessions.find(session_key);
    if (it != conn->sessions.end() && it->second->lease.valid()) {
      session = it->second->lease.get();
    }
  }
  if (session == nullptr) {
    return RespondStatus(
        id, Status::NotFound("unknown session " + std::to_string(h.session_id)));
  }

  switch (h.op) {
    case Op::kSessionClose: {
      // Abort an open transaction explicitly (releasing mid-txn would
      // discard the pooled session; an explicit abort lets it be reused).
      if (session->in_transaction()) {
        LABFLOW_IGNORE_STATUS(session->Abort(),
                              "closing session; abort failure changes nothing");
      }
      {
        MutexLock l(conn->mu);
        auto it = conn->sessions.find(session_key);
        if (it != conn->sessions.end()) {
          // Frames pipelined behind a close are dropped; their responses
          // would name a session that no longer exists.
          size_t dropped = it->second->pending.size();
          conn->sessions.erase(it);
          if (dropped > 0) {
            MutexLock ql(queue_mu_);
            inflight_ -= dropped;
            if (inflight_ == 0 && queue_.empty()) drain_cv_.NotifyAll();
          }
        }
      }
      return RespondStatus(id, Status::OK());
    }
    case Op::kBegin:
      return RespondStatus(id, session->Begin());
    case Op::kBeginReadOnly:
      return RespondStatus(id, session->BeginReadOnly());
    case Op::kCommit:
      return RespondStatus(id, session->Commit());
    case Op::kAbort:
      return RespondStatus(id, session->Abort());
    case Op::kCheckpoint:
      return RespondStatus(id, session->Checkpoint());

    case Op::kDefineMaterialClass: {
      Result<std::string> name = d.GetString();
      if (!name.ok()) return RespondStatus(id, name.status());
      Result<labbase::ClassId> cid = session->DefineMaterialClass(name.value());
      if (!cid.ok()) return RespondStatus(id, cid.status());
      std::string blob = session->schema().Encode();
      return Respond(id, Status::OK(), [&](Encoder* e) {
        e->PutU32(cid.value());
        e->PutString(blob);
      });
    }
    case Op::kDefineStepClass: {
      Result<std::string> name = d.GetString();
      if (!name.ok()) return RespondStatus(id, name.status());
      Result<uint64_t> n = d.GetU64();
      if (!n.ok()) return RespondStatus(id, n.status());
      if (n.value() > d.remaining()) {
        return RespondStatus(id, Status::Corruption("attr count too large"));
      }
      std::vector<std::string> attrs;
      attrs.reserve(n.value());
      for (uint64_t i = 0; i < n.value(); ++i) {
        Result<std::string> attr = d.GetString();
        if (!attr.ok()) return RespondStatus(id, attr.status());
        attrs.push_back(std::move(attr.value()));
      }
      Result<labbase::ClassId> cid =
          session->DefineStepClass(name.value(), attrs);
      if (!cid.ok()) return RespondStatus(id, cid.status());
      std::string blob = session->schema().Encode();
      return Respond(id, Status::OK(), [&](Encoder* e) {
        e->PutU32(cid.value());
        e->PutString(blob);
      });
    }
    case Op::kDefineState: {
      Result<std::string> name = d.GetString();
      if (!name.ok()) return RespondStatus(id, name.status());
      Result<labbase::StateId> sid = session->DefineState(name.value());
      if (!sid.ok()) return RespondStatus(id, sid.status());
      std::string blob = session->schema().Encode();
      return Respond(id, Status::OK(), [&](Encoder* e) {
        e->PutU32(sid.value());
        e->PutString(blob);
      });
    }
    case Op::kGetSchema: {
      std::string blob = session->schema().Encode();
      return Respond(id, Status::OK(),
                     [&](Encoder* e) { e->PutString(blob); });
    }

    case Op::kCreateMaterial: {
      Result<uint32_t> cls = d.GetU32();
      if (!cls.ok()) return RespondStatus(id, cls.status());
      Result<std::string> name = d.GetString();
      if (!name.ok()) return RespondStatus(id, name.status());
      Result<uint32_t> state = d.GetU32();
      if (!state.ok()) return RespondStatus(id, state.status());
      Result<Timestamp> created = DecodeTimestamp(&d);
      if (!created.ok()) return RespondStatus(id, created.status());
      Result<Oid> oid = session->CreateMaterial(cls.value(), name.value(),
                                                state.value(), created.value());
      if (!oid.ok()) return RespondStatus(id, oid.status());
      return Respond(id, Status::OK(),
                     [&](Encoder* e) { EncodeOid(e, oid.value()); });
    }
    case Op::kRecordStep: {
      Result<uint32_t> cls = d.GetU32();
      if (!cls.ok()) return RespondStatus(id, cls.status());
      Result<Timestamp> time = DecodeTimestamp(&d);
      if (!time.ok()) return RespondStatus(id, time.status());
      Result<std::vector<labbase::StepEffect>> effects = DecodeStepEffects(&d);
      if (!effects.ok()) return RespondStatus(id, effects.status());
      Result<Oid> oid =
          session->RecordStep(cls.value(), time.value(), effects.value());
      if (!oid.ok()) return RespondStatus(id, oid.status());
      return Respond(id, Status::OK(),
                     [&](Encoder* e) { EncodeOid(e, oid.value()); });
    }

    case Op::kMostRecent: {
      Result<Oid> m = DecodeOid(&d);
      if (!m.ok()) return RespondStatus(id, m.status());
      Result<uint32_t> attr = d.GetU32();
      if (!attr.ok()) return RespondStatus(id, attr.status());
      Result<Value> v = session->MostRecent(m.value(), attr.value());
      if (!v.ok()) return RespondStatus(id, v.status());
      return Respond(id, Status::OK(),
                     [&](Encoder* e) { e->PutValue(v.value()); });
    }
    case Op::kMostRecentByName: {
      Result<Oid> m = DecodeOid(&d);
      if (!m.ok()) return RespondStatus(id, m.status());
      Result<std::string> attr = d.GetString();
      if (!attr.ok()) return RespondStatus(id, attr.status());
      Result<Value> v = session->MostRecent(m.value(), attr.value());
      if (!v.ok()) return RespondStatus(id, v.status());
      return Respond(id, Status::OK(),
                     [&](Encoder* e) { e->PutValue(v.value()); });
    }
    case Op::kValueAsOf: {
      Result<Oid> m = DecodeOid(&d);
      if (!m.ok()) return RespondStatus(id, m.status());
      Result<uint32_t> attr = d.GetU32();
      if (!attr.ok()) return RespondStatus(id, attr.status());
      Result<Timestamp> at = DecodeTimestamp(&d);
      if (!at.ok()) return RespondStatus(id, at.status());
      Result<Value> v = session->ValueAsOf(m.value(), attr.value(), at.value());
      if (!v.ok()) return RespondStatus(id, v.status());
      return Respond(id, Status::OK(),
                     [&](Encoder* e) { e->PutValue(v.value()); });
    }
    case Op::kHistory: {
      Result<Oid> m = DecodeOid(&d);
      if (!m.ok()) return RespondStatus(id, m.status());
      Result<uint32_t> attr = d.GetU32();
      if (!attr.ok()) return RespondStatus(id, attr.status());
      Result<std::vector<labbase::HistoryEntry>> hist =
          session->History(m.value(), attr.value());
      if (!hist.ok()) return RespondStatus(id, hist.status());
      return Respond(id, Status::OK(), [&](Encoder* e) {
        EncodeHistoryEntries(e, hist.value());
      });
    }
    case Op::kHistoryBetween: {
      Result<Oid> m = DecodeOid(&d);
      if (!m.ok()) return RespondStatus(id, m.status());
      Result<uint32_t> attr = d.GetU32();
      if (!attr.ok()) return RespondStatus(id, attr.status());
      Result<Timestamp> from = DecodeTimestamp(&d);
      if (!from.ok()) return RespondStatus(id, from.status());
      Result<Timestamp> to = DecodeTimestamp(&d);
      if (!to.ok()) return RespondStatus(id, to.status());
      Result<std::vector<labbase::HistoryEntry>> hist = session->HistoryBetween(
          m.value(), attr.value(), from.value(), to.value());
      if (!hist.ok()) return RespondStatus(id, hist.status());
      return Respond(id, Status::OK(), [&](Encoder* e) {
        EncodeHistoryEntries(e, hist.value());
      });
    }
    case Op::kGetMaterial: {
      Result<Oid> m = DecodeOid(&d);
      if (!m.ok()) return RespondStatus(id, m.status());
      Result<labbase::MaterialInfo> info = session->GetMaterial(m.value());
      if (!info.ok()) return RespondStatus(id, info.status());
      return Respond(id, Status::OK(), [&](Encoder* e) {
        EncodeMaterialInfo(e, info.value());
      });
    }
    case Op::kGetStep: {
      Result<Oid> s = DecodeOid(&d);
      if (!s.ok()) return RespondStatus(id, s.status());
      Result<labbase::StepInfo> info = session->GetStep(s.value());
      if (!info.ok()) return RespondStatus(id, info.status());
      return Respond(id, Status::OK(),
                     [&](Encoder* e) { EncodeStepInfo(e, info.value()); });
    }
    case Op::kFindMaterialByName: {
      Result<std::string> name = d.GetString();
      if (!name.ok()) return RespondStatus(id, name.status());
      Result<Oid> oid = session->FindMaterialByName(name.value());
      if (!oid.ok()) return RespondStatus(id, oid.status());
      return Respond(id, Status::OK(),
                     [&](Encoder* e) { EncodeOid(e, oid.value()); });
    }
    case Op::kCurrentState: {
      Result<Oid> m = DecodeOid(&d);
      if (!m.ok()) return RespondStatus(id, m.status());
      Result<labbase::StateId> state = session->CurrentState(m.value());
      if (!state.ok()) return RespondStatus(id, state.status());
      return Respond(id, Status::OK(),
                     [&](Encoder* e) { e->PutU32(state.value()); });
    }
    case Op::kMaterialsInState: {
      Result<uint32_t> state = d.GetU32();
      if (!state.ok()) return RespondStatus(id, state.status());
      Result<std::vector<Oid>> oids = session->MaterialsInState(state.value());
      if (!oids.ok()) return RespondStatus(id, oids.status());
      return Respond(id, Status::OK(),
                     [&](Encoder* e) { EncodeOids(e, oids.value()); });
    }
    case Op::kCountInState: {
      Result<uint32_t> state = d.GetU32();
      if (!state.ok()) return RespondStatus(id, state.status());
      Result<int64_t> n = session->CountInState(state.value());
      if (!n.ok()) return RespondStatus(id, n.status());
      return Respond(id, Status::OK(),
                     [&](Encoder* e) { e->PutI64(n.value()); });
    }
    case Op::kMaterialsOfClass: {
      Result<uint32_t> cls = d.GetU32();
      if (!cls.ok()) return RespondStatus(id, cls.status());
      Result<std::vector<Oid>> oids = session->MaterialsOfClass(cls.value());
      if (!oids.ok()) return RespondStatus(id, oids.status());
      return Respond(id, Status::OK(),
                     [&](Encoder* e) { EncodeOids(e, oids.value()); });
    }

    case Op::kListSteps: {
      Result<std::vector<Oid>> oids = session->ListSteps();
      if (!oids.ok()) return RespondStatus(id, oids.status());
      return Respond(id, Status::OK(),
                     [&](Encoder* e) { EncodeOids(e, oids.value()); });
    }

    case Op::kCreateSet: {
      Result<std::string> name = d.GetString();
      if (!name.ok()) return RespondStatus(id, name.status());
      Result<Oid> oid = session->CreateSet(name.value());
      if (!oid.ok()) return RespondStatus(id, oid.status());
      return Respond(id, Status::OK(),
                     [&](Encoder* e) { EncodeOid(e, oid.value()); });
    }
    case Op::kAddToSet: {
      Result<Oid> set = DecodeOid(&d);
      if (!set.ok()) return RespondStatus(id, set.status());
      Result<Oid> m = DecodeOid(&d);
      if (!m.ok()) return RespondStatus(id, m.status());
      return RespondStatus(id, session->AddToSet(set.value(), m.value()));
    }
    case Op::kRemoveFromSet: {
      Result<Oid> set = DecodeOid(&d);
      if (!set.ok()) return RespondStatus(id, set.status());
      Result<Oid> m = DecodeOid(&d);
      if (!m.ok()) return RespondStatus(id, m.status());
      return RespondStatus(id, session->RemoveFromSet(set.value(), m.value()));
    }
    case Op::kSetMembers: {
      Result<Oid> set = DecodeOid(&d);
      if (!set.ok()) return RespondStatus(id, set.status());
      Result<std::vector<Oid>> members = session->SetMembers(set.value());
      if (!members.ok()) return RespondStatus(id, members.status());
      return Respond(id, Status::OK(),
                     [&](Encoder* e) { EncodeOids(e, members.value()); });
    }
    case Op::kFindSetByName: {
      Result<std::string> name = d.GetString();
      if (!name.ok()) return RespondStatus(id, name.status());
      Result<Oid> oid = session->FindSetByName(name.value());
      if (!oid.ok()) return RespondStatus(id, oid.status());
      return Respond(id, Status::OK(),
                     [&](Encoder* e) { EncodeOid(e, oid.value()); });
    }

    default:
      return RespondStatus(
          id, Status::InvalidArgument("op " + std::string(OpName(h.op)) +
                                      " not valid here"));
  }
}

}  // namespace labflow::net
