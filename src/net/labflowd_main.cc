/// labflowd — the LabFlow workflow database as a network server.
///
/// Binds a loopback TCP port, opens (or creates) a database with the chosen
/// storage version, and serves the wire protocol (net/wire.h) until
/// SIGINT/SIGTERM, then drains gracefully: in-flight requests finish, their
/// responses flush, open transactions abort, and the store closes clean.
///
/// Usage:
///   labflowd --db=/path/file.lfdb [--version=OStore] [--port=0]
///            [--host=127.0.0.1] [--threads=4] [--pool_pages=2048]
///            [--truncate=1] [--port_file=/path]
///
/// With --port=0 the kernel picks the port; it is printed on stdout as
/// "labflowd listening on HOST:PORT" and, with --port_file, written bare to
/// that file — which is how scripts/check.sh finds an ephemeral server.

#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include <unistd.h>

#include "bench/bench_util.h"
#include "labbase/labbase.h"
#include "labflow/server_version.h"
#include "net/server.h"

namespace {

/// SIGINT/SIGTERM handler writes one byte into this self-pipe; main blocks
/// on the read end. Signal-safe by construction (write is async-safe).
int g_shutdown_pipe[2] = {-1, -1};

void OnSignal(int) {
  char b = 1;
  [[maybe_unused]] ssize_t n = ::write(g_shutdown_pipe[1], &b, 1);
}

labflow::Result<labflow::bench::ServerVersion> VersionByName(
    const std::string& name) {
  for (labflow::bench::ServerVersion v : labflow::bench::kAllServerVersions) {
    if (name == labflow::bench::ServerVersionName(v)) return v;
  }
  return labflow::Status::InvalidArgument("unknown version '" + name +
                                          "' (try OStore, Texas, Texas+TC, "
                                          "OStore-mm, Texas-mm, LsmStore)");
}

int Run(int argc, char** argv) {
  using labflow::bench::FlagString;
  using labflow::bench::FlagValue;

  const std::string db_path = FlagString(argc, argv, "db");
  const std::string version_name = FlagString(argc, argv, "version", "OStore");
  const std::string host = FlagString(argc, argv, "host", "127.0.0.1");
  const std::string port_file = FlagString(argc, argv, "port_file");

  auto version = VersionByName(version_name);
  if (!version.ok()) {
    std::cerr << "labflowd: " << version.status().ToString() << "\n";
    return 2;
  }

  labflow::bench::ServerOptions storage_opts;
  storage_opts.path = db_path;
  storage_opts.pool_pages =
      static_cast<size_t>(FlagValue(argc, argv, "pool_pages", 2048));
  storage_opts.truncate = FlagValue(argc, argv, "truncate", 1) != 0;
  if (db_path.empty() && version_name.find("-mm") == std::string::npos) {
    std::cerr << "labflowd: --db=PATH is required for disk versions\n";
    return 2;
  }

  auto mgr = labflow::bench::CreateServer(version.value(), storage_opts);
  if (!mgr.ok()) {
    std::cerr << "labflowd: open storage: " << mgr.status().ToString() << "\n";
    return 1;
  }
  auto db = labflow::labbase::LabBase::Open(mgr.value().get(), {});
  if (!db.ok()) {
    std::cerr << "labflowd: open labbase: " << db.status().ToString() << "\n";
    return 1;
  }

  labflow::net::ServerConfig config;
  config.host = host;
  config.port = static_cast<uint16_t>(FlagValue(argc, argv, "port", 0));
  config.worker_threads = static_cast<int>(FlagValue(argc, argv, "threads", 4));
  labflow::net::Server server(db.value().get(), mgr.value().get(), config);
  if (labflow::Status st = server.Start(); !st.ok()) {
    std::cerr << "labflowd: start: " << st.ToString() << "\n";
    return 1;
  }

  std::cout << "labflowd listening on " << host << ":" << server.port()
            << std::endl;
  if (!port_file.empty()) {
    std::ofstream out(port_file, std::ios::trunc);
    out << server.port() << "\n";
    if (!out.good()) {
      std::cerr << "labflowd: cannot write " << port_file << "\n";
      return 1;
    }
  }

  // Park until a signal arrives.
  char b;
  while (::read(g_shutdown_pipe[0], &b, 1) < 0 && errno == EINTR) {
  }
  std::cout << "labflowd: draining" << std::endl;
  server.Shutdown();

  db.value().reset();
  if (labflow::Status st = mgr.value()->Close(); !st.ok()) {
    std::cerr << "labflowd: close: " << st.ToString() << "\n";
    return 1;
  }
  std::cout << "labflowd: stopped" << std::endl;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (::pipe(g_shutdown_pipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::signal(SIGPIPE, SIG_IGN);
  return Run(argc, argv);
}
