#ifndef LABFLOW_COMMON_CODEC_H_
#define LABFLOW_COMMON_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/status_macros.h"
#include "common/value.h"

namespace labflow {

/// 32-bit FNV-1a over a byte span. Chainable: pass a previous return value
/// as `seed` to extend the hash over multiple spans. Shared by the WAL
/// frame checksum and the slotted-page trailer checksum so both sides of
/// the durability boundary agree on one codec.
inline uint32_t Fnv1a32(std::string_view data, uint32_t seed = 2166136261u) {
  uint32_t h = seed;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

/// Append-only binary encoder used for all on-page record formats.
///
/// Integers use LEB128 varints (zig-zag for signed); strings and blobs are
/// length-prefixed. The format is self-delimiting per field but carries no
/// schema: reader and writer must agree on field order (they do — every
/// record format lives next to its decoder in record.cc files).
class Encoder {
 public:
  Encoder() = default;

  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutVarint(v); }
  void PutU64(uint64_t v) { PutVarint(v); }
  void PutI64(int64_t v) { PutVarint(ZigZag(v)); }
  void PutF64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutFixed64(bits);
  }
  void PutFixed32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void PutFixed64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void PutString(std::string_view s) {
    PutVarint(s.size());
    buf_.append(s.data(), s.size());
  }
  void PutBool(bool b) { PutU8(b ? 1 : 0); }

  /// Encodes a Value with a leading type tag; round-trips via
  /// Decoder::GetValue.
  void PutValue(const Value& v);

  const std::string& buffer() const { return buf_; }
  std::string Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }
  void Clear() { buf_.clear(); }

 private:
  static uint64_t ZigZag(int64_t v) {
    return (static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63);
  }
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<char>(v | 0x80));
      v >>= 7;
    }
    buf_.push_back(static_cast<char>(v));
  }

  std::string buf_;
};

/// Sequential binary decoder over a borrowed byte range. All getters return
/// Corruption on truncated input instead of reading past the end.
///
/// The input is treated as *untrusted*: since the wire protocol (src/net)
/// started feeding network bytes through this class, every getter must be
/// total over arbitrary byte strings. Concretely: varints longer than ten
/// bytes or carrying overflow bits in the tenth byte are Corruption (not
/// silent truncation), and length prefixes are validated against the bytes
/// actually remaining — a hostile 2^64-ish length can neither wrap the
/// bounds check nor drive an allocation.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  Result<uint8_t> GetU8() {
    if (pos_ >= data_.size()) return Truncated();
    return static_cast<uint8_t>(data_[pos_++]);
  }
  Result<uint32_t> GetU32() {
    LABFLOW_ASSIGN_OR_RETURN(uint64_t v, GetVarint());
    if (v > UINT32_MAX) return Status::Corruption("u32 overflow");
    return static_cast<uint32_t>(v);
  }
  Result<uint64_t> GetU64() { return GetVarint(); }
  Result<int64_t> GetI64() {
    LABFLOW_ASSIGN_OR_RETURN(uint64_t z, GetVarint());
    return UnZigZag(z);
  }
  Result<double> GetF64() {
    LABFLOW_ASSIGN_OR_RETURN(uint64_t bits, GetFixed64());
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  Result<uint32_t> GetFixed32() {
    if (pos_ + 4 > data_.size()) return Truncated();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  Result<uint64_t> GetFixed64() {
    if (pos_ + 8 > data_.size()) return Truncated();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  Result<std::string> GetString() {
    LABFLOW_ASSIGN_OR_RETURN(uint64_t n, GetVarint());
    // Compare against the remaining bytes, not `pos_ + n`: with n near
    // 2^64 the addition would wrap and pass the check.
    if (n > data_.size() - pos_) return Truncated();
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  Result<bool> GetBool() {
    LABFLOW_ASSIGN_OR_RETURN(uint8_t b, GetU8());
    return b != 0;
  }

  /// Decodes a Value written by Encoder::PutValue. List nesting beyond
  /// kMaxValueDepth is Corruption: legitimate values are one level deep
  /// (lists of scalars), while unbounded nesting lets a hostile payload
  /// recurse the decoder off the stack.
  Result<Value> GetValue();
  static constexpr int kMaxValueDepth = 32;

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  Result<Value> GetValueAtDepth(int depth);

  static int64_t UnZigZag(uint64_t z) {
    return static_cast<int64_t>(z >> 1) ^ -static_cast<int64_t>(z & 1);
  }
  Result<uint64_t> GetVarint() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= data_.size()) return Truncated();
      uint8_t b = static_cast<uint8_t>(data_[pos_++]);
      if (shift >= 64) return Status::Corruption("varint too long");
      // The tenth byte (shift 63) may only contribute its lowest bit; any
      // higher payload bit would shift past 2^64 and vanish silently —
      // an adversarial encoding, not a value.
      if (shift == 63 && (b & 0x7E) != 0) {
        return Status::Corruption("varint overflows 64 bits");
      }
      v |= static_cast<uint64_t>(b & 0x7F) << shift;
      if (!(b & 0x80)) return v;
      shift += 7;
    }
  }
  static Status Truncated() {
    return Status::Corruption("decoder: truncated input");
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace labflow

#endif  // LABFLOW_COMMON_CODEC_H_
