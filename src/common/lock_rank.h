#ifndef LABFLOW_COMMON_LOCK_RANK_H_
#define LABFLOW_COMMON_LOCK_RANK_H_

/// The project-wide lock hierarchy.
///
/// Every infrastructure mutex in the tree carries a LockRank, and a thread
/// may only acquire (blocking) a mutex whose rank is strictly greater than
/// every rank it already holds. Equal ranks may not nest either — two locks
/// at the same rank are, by definition, never held together by one thread
/// (per-shard mutexes qualify because each operation touches exactly one
/// shard). The ordering makes infrastructure deadlock impossible by
/// construction: a cycle in the waits-for graph would need some thread to
/// acquire against the rank order. The one *deliberate* deadlock domain —
/// 2PL object locks, resolved by the waits-for detector — lives entirely
/// inside LockManager and never nests another infrastructure mutex, so it
/// is a single rank here.
///
/// The table (outermost first — lower rank = acquired earlier). Rationale
/// for each edge is in docs/STORAGE.md ("Lock hierarchy"); the authoring
/// rule for new mutexes is in docs/STYLE.md.
///
///   rank              mutex                          declared in
///   ----------------  -----------------------------  ------------------------
///   kNetConnection    Server::Connection::mu         net/server.cc
///   kNetClientWrite   net::Connection::write_mu_     net/client.h
///   kNetClientState   net::Connection::mu_           net/client.h
///   kNetWorkQueue     Server::queue_mu_              net/server.h
///   kNetDirtyList     Server::dirty_mu_              net/server.h
///   kSessionPool      SessionPool::mu_               labbase/labbase.h
///   kSessionIndex     LabBase::index_mu_             labbase/labbase.h
///   kTxnTable         StorageManager::txn_mu_        storage/storage_manager.h
///   kLockTable        ostore::LockManager::mu_       ostore/lock_manager.h
///   kLsmCommit        lsm::LsmManager::commit_mu_    lsm/lsm_manager.h
///   kLsmBg            lsm::LsmManager::bg_mu_        lsm/lsm_manager.h
///   kWalQueue         ostore::Wal::mu_               ostore/wal.h
///   kWalError         OstoreManager::wal_error_mu_   ostore/ostore_manager.h
///   kMmStore          mm::MmManager::mu_             mm/mm_manager.h
///   kLsmState         lsm::LsmManager::mu_           lsm/lsm_manager.h
///   kPagedAlloc       PagedManagerBase::alloc_mu_    storage/paged_manager.h
///   kBufferShard      BufferPool::Shard::mu          storage/buffer_pool.h
///   kFrameLatch       BufferPool::Frame::latch_      storage/buffer_pool.h
///   kVersionCommit    VersionStore::commit_mu_       storage/version_store.h
///   kVersionChain     VersionStore::Shard::mu        storage/version_store.h
///   kLsmTableCache    lsm::TableCache::mu_           lsm/table_cache.h
///   kLsmBlockCache    lsm::BlockCache::Shard::mu     lsm/table_cache.h
///   kPageAppend       PageFile::append_mu_           storage/page_file.h
///   kFaultEnv         FaultInjectionEnv::mu_         storage/fault_env.h
///
/// Enforcement is layered:
///   - Clang -Wthread-safety(-beta) checks the GUARDED_BY / ACQUIRED_AFTER
///     annotations it can see (same-class member pairs).
///   - When LABFLOW_LOCK_RANK_CHECKS is defined (Debug and all sanitizer
///     builds — see CMakeLists.txt), every labflow::Mutex / SharedMutex
///     acquisition runs through the thread-local validator below, which
///     aborts with both acquisition stacks on any rank inversion. The
///     regular concurrency/buffer-pool/net suites under TSan double as the
///     lock-order run.
///   - scripts/lint.py rule `naked-mutex` keeps every lock in the tree on
///     these rankable types.
///
/// `kUnranked` (the default) opts a mutex out of validation entirely; it is
/// for leaf locks in tests and benches, never for src/ infrastructure.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <source_location>

#if defined(__GLIBC__) || defined(__linux__)
#include <execinfo.h>
#define LABFLOW_HAS_BACKTRACE_ 1
#else
#define LABFLOW_HAS_BACKTRACE_ 0
#endif

namespace labflow {

enum class LockRank : uint16_t {
  kUnranked = 0,

  // -- network server / client (outermost: held while handing work on) -----
  kNetConnection = 100,
  kNetClientWrite = 110,
  kNetClientState = 120,
  kNetWorkQueue = 130,
  kNetDirtyList = 140,

  // -- session layer --------------------------------------------------------
  kSessionPool = 150,
  kSessionIndex = 160,

  // -- transaction control ---------------------------------------------------
  kTxnTable = 170,
  kLockTable = 180,

  // -- LSM commit/scheduling (above the WAL: the committer holds these while
  // appending its group, and a backpressured writer parks on kLsmBg) --------
  kLsmCommit = 190,
  kLsmBg = 200,

  // -- durability ------------------------------------------------------------
  kWalQueue = 210,
  kWalError = 220,

  // -- storage managers ------------------------------------------------------
  kMmStore = 230,
  kLsmState = 240,
  kPagedAlloc = 250,

  // -- buffer pool -----------------------------------------------------------
  kBufferShard = 260,
  kFrameLatch = 270,

  // -- MVCC version store ----------------------------------------------------
  kVersionCommit = 280,
  kVersionChain = 290,

  // -- LSM read-path caches (leaves: nothing nests inside a cache shard) ----
  kLsmTableCache = 300,
  kLsmBlockCache = 310,

  // -- innermost leaves ------------------------------------------------------
  kPageAppend = 320,
  kFaultEnv = 330,
};

constexpr const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kUnranked: return "Unranked";
    case LockRank::kNetConnection: return "NetConnection";
    case LockRank::kNetClientWrite: return "NetClientWrite";
    case LockRank::kNetClientState: return "NetClientState";
    case LockRank::kNetWorkQueue: return "NetWorkQueue";
    case LockRank::kNetDirtyList: return "NetDirtyList";
    case LockRank::kSessionPool: return "SessionPool";
    case LockRank::kSessionIndex: return "SessionIndex";
    case LockRank::kTxnTable: return "TxnTable";
    case LockRank::kLockTable: return "LockTable";
    case LockRank::kLsmCommit: return "LsmCommit";
    case LockRank::kLsmBg: return "LsmBg";
    case LockRank::kWalQueue: return "WalQueue";
    case LockRank::kWalError: return "WalError";
    case LockRank::kMmStore: return "MmStore";
    case LockRank::kLsmState: return "LsmState";
    case LockRank::kPagedAlloc: return "PagedAlloc";
    case LockRank::kBufferShard: return "BufferShard";
    case LockRank::kFrameLatch: return "FrameLatch";
    case LockRank::kVersionCommit: return "VersionCommit";
    case LockRank::kVersionChain: return "VersionChain";
    case LockRank::kLsmTableCache: return "LsmTableCache";
    case LockRank::kLsmBlockCache: return "LsmBlockCache";
    case LockRank::kPageAppend: return "PageAppend";
    case LockRank::kFaultEnv: return "FaultEnv";
  }
  return "?";
}

#ifdef LABFLOW_LOCK_RANK_CHECKS

/// Runtime rank validator: a thread-local stack of held ranked locks. The
/// hooks are called from common/mutex.h on every acquire/release. Cost is
/// a few stores plus a raw backtrace() per acquisition, paid only in Debug
/// and sanitizer builds.
namespace lock_rank_internal {

inline constexpr int kMaxHeld = 16;     // ranked locks held by one thread
inline constexpr int kMaxFrames = 16;   // backtrace depth per acquisition

struct HeldLock {
  const void* mu = nullptr;
  LockRank rank = LockRank::kUnranked;
  const char* name = nullptr;
  std::source_location site{};
  void* frames[kMaxFrames];
  int frame_count = 0;
};

struct HeldStack {
  HeldLock entries[kMaxHeld];
  int depth = 0;
};

inline thread_local HeldStack tls_held;

inline void PrintHeld(const HeldLock& h, const char* label) {
  std::fprintf(stderr, "  %s %s (rank %u, \"%s\", mutex %p)\n", label,
               LockRankName(h.rank), static_cast<unsigned>(h.rank),
               h.name != nullptr ? h.name : "?", h.mu);
  std::fprintf(stderr, "    acquired at %s:%u (%s)\n", h.site.file_name(),
               h.site.line(), h.site.function_name());
#if LABFLOW_HAS_BACKTRACE_
  if (h.frame_count > 0) {
    std::fprintf(stderr, "    acquisition stack:\n");
    backtrace_symbols_fd(const_cast<void* const*>(h.frames), h.frame_count,
                         /*fd=*/2);
  }
#endif
}

[[noreturn]] inline void Die(const HeldLock& held, const HeldLock& incoming,
                             const char* what) {
  std::fprintf(stderr, "labflow: lock rank inversion: %s\n", what);
  PrintHeld(held, "held:    ");
  PrintHeld(incoming, "acquiring:");
  std::fflush(stderr);
  std::abort();
}

inline HeldLock MakeEntry(const void* mu, LockRank rank, const char* name,
                          const std::source_location& site) {
  HeldLock e;
  e.mu = mu;
  e.rank = rank;
  e.name = name;
  e.site = site;
#if LABFLOW_HAS_BACKTRACE_
  e.frame_count = backtrace(e.frames, kMaxFrames);
#endif
  return e;
}

/// Rank check before a *blocking* acquire. TryLock paths skip this — a
/// non-blocking probe cannot deadlock, and LockShard legitimately probes
/// against the order for contention stats.
inline void PreAcquire(const void* mu, LockRank rank, const char* name,
                       const std::source_location& site) {
  if (rank == LockRank::kUnranked) return;
  HeldStack& s = tls_held;
  for (int i = 0; i < s.depth; ++i) {
    const HeldLock& h = s.entries[i];
    if (h.mu == mu) {
      Die(h, MakeEntry(mu, rank, name, site),
          "mutex acquired twice by one thread");
    }
    if (h.rank >= rank) {
      Die(h, MakeEntry(mu, rank, name, site),
          "blocking acquire at a rank not above every held rank");
    }
  }
}

/// Records a successful acquire (blocking or try).
inline void PostAcquire(const void* mu, LockRank rank, const char* name,
                        const std::source_location& site) {
  if (rank == LockRank::kUnranked) return;
  HeldStack& s = tls_held;
  if (s.depth >= kMaxHeld) {
    std::fprintf(stderr,
                 "labflow: lock rank validator: thread holds more than %d "
                 "ranked locks (acquiring %s at %s:%u)\n",
                 kMaxHeld, LockRankName(rank), site.file_name(), site.line());
    std::abort();
  }
  s.entries[s.depth++] = MakeEntry(mu, rank, name, site);
}

/// Drops `mu` from the held stack. Keyed by pointer, not LIFO: explicit
/// Lock()/Unlock() pairs (WAL group commit, client ReadUntil) release out
/// of stack order by design.
inline void Release(const void* mu) {
  HeldStack& s = tls_held;
  for (int i = s.depth - 1; i >= 0; --i) {
    if (s.entries[i].mu != mu) continue;
    for (int j = i + 1; j < s.depth; ++j) s.entries[j - 1] = s.entries[j];
    --s.depth;
    return;
  }
  // Not found: an unranked mutex, or one locked before the checks existed
  // on this thread. Nothing to do.
}

}  // namespace lock_rank_internal

inline void LockRankPreAcquire(const void* mu, LockRank rank, const char* name,
                               const std::source_location& site) {
  lock_rank_internal::PreAcquire(mu, rank, name, site);
}
inline void LockRankPostAcquire(const void* mu, LockRank rank,
                                const char* name,
                                const std::source_location& site) {
  lock_rank_internal::PostAcquire(mu, rank, name, site);
}
inline void LockRankRelease(const void* mu) {
  lock_rank_internal::Release(mu);
}

#else  // !LABFLOW_LOCK_RANK_CHECKS

inline void LockRankPreAcquire(const void*, LockRank, const char*,
                               const std::source_location&) {}
inline void LockRankPostAcquire(const void*, LockRank, const char*,
                                const std::source_location&) {}
inline void LockRankRelease(const void*) {}

#endif  // LABFLOW_LOCK_RANK_CHECKS

}  // namespace labflow

#endif  // LABFLOW_COMMON_LOCK_RANK_H_
