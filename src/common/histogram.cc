#include "common/histogram.h"

#include <cmath>

namespace labflow {

int LatencyHistogram::BucketFor(double us) {
  if (us < 1.0) return 0;
  int bucket = 1 + static_cast<int>(std::log2(us) / kRatioLog2);
  if (bucket >= kBuckets) bucket = kBuckets - 1;
  return bucket;
}

double LatencyHistogram::BucketUpperUs(int bucket) {
  if (bucket == 0) return 1.0;
  return std::exp2(static_cast<double>(bucket) * kRatioLog2);
}

double LatencyHistogram::PercentileUs(double p) const {
  if (count_ == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  uint64_t rank = static_cast<uint64_t>(p / 100.0 *
                                        static_cast<double>(count_ - 1)) +
                  1;
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= rank) return BucketUpperUs(b);
  }
  return max_us_;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  count_ += other.count_;
  total_us_ += other.total_us_;
  if (other.max_us_ > max_us_) max_us_ = other.max_us_;
}

}  // namespace labflow
