#ifndef LABFLOW_COMMON_RNG_H_
#define LABFLOW_COMMON_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace labflow {

/// Deterministic pseudo-random generator (xoshiro256**, seeded via
/// SplitMix64). The LabFlow-1 workload must be reproducible: the same seed
/// and scale always yield byte-identical event streams, so two storage
/// managers are measured against exactly the same work.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Uniform over all 64-bit values.
  uint64_t NextU64();

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform in [0, 1).
  double NextReal();

  /// Uniform in [lo, hi).
  double NextReal(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  /// Poisson-distributed with the given mean (Knuth for small mean,
  /// normal approximation above 60).
  int64_t NextPoisson(double mean);

  /// Exponentially distributed with the given mean.
  double NextExp(double mean);

  /// Standard normal via Box-Muller.
  double NextNormal();

  /// Zipf-distributed rank in [0, n) with exponent theta (approximate
  /// rejection-inversion; theta = 0 degenerates to uniform).
  uint64_t NextZipf(uint64_t n, double theta);

  /// Random lowercase identifier of the given length.
  std::string NextName(size_t length);

  /// Random DNA fragment (A/C/G/T) of the given length.
  std::string NextDna(size_t length);

  /// Forks an independent stream; two forks with different labels never
  /// correlate. Used to give each workload component its own stream so
  /// adding queries does not perturb the update stream.
  Rng Fork(uint64_t label) const;

 private:
  uint64_t state_[4];
};

}  // namespace labflow

#endif  // LABFLOW_COMMON_RNG_H_
