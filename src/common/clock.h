#ifndef LABFLOW_COMMON_CLOCK_H_
#define LABFLOW_COMMON_CLOCK_H_

#include <cstdint>

#include "common/value.h"

namespace labflow {

/// Simulated laboratory clock that issues valid-time timestamps for the
/// workload. The generator advances it by (randomized) step durations; it is
/// entirely decoupled from wall-clock time so runs are reproducible.
class VirtualClock {
 public:
  explicit VirtualClock(Timestamp start = Timestamp(0)) : now_(start) {}

  Timestamp now() const { return now_; }

  /// Advances the clock by the given number of microseconds (>= 0).
  void Advance(int64_t micros) { now_ = Timestamp(now_.micros + micros); }

  void Set(Timestamp t) { now_ = t; }

 private:
  Timestamp now_;
};

/// Wall-clock stopwatch (monotonic).
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart();

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const;

 private:
  int64_t start_ns_ = 0;
};

/// Snapshot of process resource usage, for the paper's "user cpu sec /
/// sys cpu sec / majflt" rows (via getrusage(RUSAGE_SELF)).
struct ResourceUsage {
  double user_cpu_sec = 0;
  double sys_cpu_sec = 0;
  int64_t os_major_faults = 0;
  int64_t os_minor_faults = 0;

  static ResourceUsage Now();

  /// Component-wise difference (this - earlier).
  ResourceUsage Since(const ResourceUsage& earlier) const;
};

}  // namespace labflow

#endif  // LABFLOW_COMMON_CLOCK_H_
