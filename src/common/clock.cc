#include "common/clock.h"

#include <sys/resource.h>
#include <time.h>

namespace labflow {

namespace {

int64_t MonotonicNanos() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

double TimevalSeconds(const timeval& tv) {
  return static_cast<double>(tv.tv_sec) +
         static_cast<double>(tv.tv_usec) * 1e-6;
}

}  // namespace

void Stopwatch::Restart() { start_ns_ = MonotonicNanos(); }

double Stopwatch::ElapsedSeconds() const {
  return static_cast<double>(MonotonicNanos() - start_ns_) * 1e-9;
}

ResourceUsage ResourceUsage::Now() {
  rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  ResourceUsage u;
  u.user_cpu_sec = TimevalSeconds(ru.ru_utime);
  u.sys_cpu_sec = TimevalSeconds(ru.ru_stime);
  u.os_major_faults = ru.ru_majflt;
  u.os_minor_faults = ru.ru_minflt;
  return u;
}

ResourceUsage ResourceUsage::Since(const ResourceUsage& earlier) const {
  ResourceUsage d;
  d.user_cpu_sec = user_cpu_sec - earlier.user_cpu_sec;
  d.sys_cpu_sec = sys_cpu_sec - earlier.sys_cpu_sec;
  d.os_major_faults = os_major_faults - earlier.os_major_faults;
  d.os_minor_faults = os_minor_faults - earlier.os_minor_faults;
  return d;
}

}  // namespace labflow
