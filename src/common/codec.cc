#include "common/codec.h"
#include "common/status_macros.h"

namespace labflow {

void Encoder::PutValue(const Value& v) {
  PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      PutBool(v.bool_value());
      break;
    case ValueType::kInt:
      PutI64(v.int_value());
      break;
    case ValueType::kReal:
      PutF64(v.real_value());
      break;
    case ValueType::kString:
      PutString(v.string_value());
      break;
    case ValueType::kOid:
      PutU64(v.oid_value().raw);
      break;
    case ValueType::kTimestamp:
      PutI64(v.time_value().micros);
      break;
    case ValueType::kList: {
      const Value::List& items = v.list_value();
      PutU64(items.size());
      for (const Value& item : items) PutValue(item);
      break;
    }
  }
}

Result<Value> Decoder::GetValue() { return GetValueAtDepth(0); }

Result<Value> Decoder::GetValueAtDepth(int depth) {
  if (depth >= kMaxValueDepth) {
    return Status::Corruption("value nesting too deep");
  }
  LABFLOW_ASSIGN_OR_RETURN(uint8_t tag, GetU8());
  if (tag > static_cast<uint8_t>(ValueType::kList)) {
    return Status::Corruption("bad value tag");
  }
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      LABFLOW_ASSIGN_OR_RETURN(bool b, GetBool());
      return Value::Bool(b);
    }
    case ValueType::kInt: {
      LABFLOW_ASSIGN_OR_RETURN(int64_t i, GetI64());
      return Value::Int(i);
    }
    case ValueType::kReal: {
      LABFLOW_ASSIGN_OR_RETURN(double d, GetF64());
      return Value::Real(d);
    }
    case ValueType::kString: {
      LABFLOW_ASSIGN_OR_RETURN(std::string s, GetString());
      return Value::String(std::move(s));
    }
    case ValueType::kOid: {
      LABFLOW_ASSIGN_OR_RETURN(uint64_t raw, GetU64());
      return Value::Object(Oid(raw));
    }
    case ValueType::kTimestamp: {
      LABFLOW_ASSIGN_OR_RETURN(int64_t us, GetI64());
      return Value::Time(Timestamp(us));
    }
    case ValueType::kList: {
      LABFLOW_ASSIGN_OR_RETURN(uint64_t n, GetU64());
      if (n > remaining()) return Status::Corruption("list length too large");
      Value::List items;
      items.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        LABFLOW_ASSIGN_OR_RETURN(Value item, GetValueAtDepth(depth + 1));
        items.push_back(std::move(item));
      }
      return Value::MakeList(std::move(items));
    }
  }
  return Status::Corruption("bad value tag");
}

}  // namespace labflow
