#ifndef LABFLOW_COMMON_THREAD_ANNOTATIONS_H_
#define LABFLOW_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety (capability) annotation wrappers.
///
/// Under Clang these expand to the `__attribute__` spellings consumed by
/// `-Wthread-safety`, turning the locking contract of an annotated class
/// into a compile-time check: touching a `LABFLOW_GUARDED_BY(mu_)` member
/// without holding `mu_`, or calling a `LABFLOW_REQUIRES(mu_)` function
/// with the lock not held, is a build error (the tree compiles with
/// `-Werror=thread-safety`). Under GCC and other compilers the macros
/// vanish and the annotations are documentation.
///
/// The analysis only tracks locks acquired through annotated functions, so
/// annotated classes must synchronize with `labflow::Mutex` /
/// `labflow::MutexLock` / `labflow::CondVar` (common/mutex.h), not raw
/// `std::mutex` + `std::lock_guard` (whose acquisitions are invisible to
/// the analysis). Conventions are documented in docs/STYLE.md.

#if defined(__clang__) && defined(__has_attribute)
#define LABFLOW_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define LABFLOW_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Declares a type to be a lockable capability ("mutex").
#define LABFLOW_CAPABILITY(x) LABFLOW_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type whose constructor acquires and destructor releases.
#define LABFLOW_SCOPED_CAPABILITY LABFLOW_THREAD_ANNOTATION_(scoped_lockable)

/// Data member may only be touched while holding `x`.
#define LABFLOW_GUARDED_BY(x) LABFLOW_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x`.
#define LABFLOW_PT_GUARDED_BY(x) LABFLOW_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the given capabilities held on entry (and keeps them).
#define LABFLOW_REQUIRES(...) \
  LABFLOW_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define LABFLOW_REQUIRES_SHARED(...) \
  LABFLOW_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and does not release it.
#define LABFLOW_ACQUIRE(...) \
  LABFLOW_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function acquires the capability in shared (reader) mode.
#define LABFLOW_ACQUIRE_SHARED(...) \
  LABFLOW_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (which must be held on entry).
#define LABFLOW_RELEASE(...) \
  LABFLOW_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function releases a capability held in shared (reader) mode.
#define LABFLOW_RELEASE_SHARED(...) \
  LABFLOW_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function releases a capability held in either mode (RAII destructors of
/// scoped types that may hold shared or exclusive).
#define LABFLOW_RELEASE_GENERIC(...) \
  LABFLOW_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `ret`.
#define LABFLOW_TRY_ACQUIRE(ret, ...) \
  LABFLOW_THREAD_ANNOTATION_(try_acquire_capability(ret, __VA_ARGS__))

/// Function must NOT be called with the given capabilities held
/// (non-reentrancy / deadlock guard on public entry points).
#define LABFLOW_EXCLUDES(...) \
  LABFLOW_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares acquisition order between two mutex members of one class:
/// this mutex is acquired before/after the listed ones. Checked by Clang's
/// beta lock-order analysis (-Wthread-safety-beta); the attribute only
/// resolves member expressions visible at the declaration, so cross-class
/// edges are carried by LockRank (common/lock_rank.h) instead — see the
/// hierarchy table there and in docs/STORAGE.md.
#define LABFLOW_ACQUIRED_BEFORE(...) \
  LABFLOW_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define LABFLOW_ACQUIRED_AFTER(...) \
  LABFLOW_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define LABFLOW_RETURN_CAPABILITY(x) \
  LABFLOW_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only with a
/// comment explaining why the contract holds anyway.
#define LABFLOW_NO_THREAD_SAFETY_ANALYSIS \
  LABFLOW_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // LABFLOW_COMMON_THREAD_ANNOTATIONS_H_
