#include "common/status.h"

namespace labflow {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace labflow
