#ifndef LABFLOW_COMMON_MUTEX_H_
#define LABFLOW_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <source_location>
#include <utility>

#include "common/lock_rank.h"
#include "common/thread_annotations.h"

namespace labflow {

/// A std::mutex with Clang capability annotations, so classes that guard
/// state with `LABFLOW_GUARDED_BY(mu_)` get their locking discipline checked
/// at compile time (see common/thread_annotations.h). Zero-cost in release:
/// every method is an inline forward to the underlying std::mutex, and the
/// rank hooks compile to nothing unless LABFLOW_LOCK_RANK_CHECKS is defined.
///
/// Every infrastructure mutex carries a LockRank (common/lock_rank.h) and a
/// name; in Debug/sanitizer builds each blocking acquisition is validated
/// against the thread's held ranks and a rank inversion aborts with both
/// acquisition stacks. Default-constructed mutexes are unranked (validator
/// ignores them) — reserved for tests and benches, not src/.
///
/// Lowercase lock/unlock/try_lock keep the type BasicLockable, so it also
/// composes with std facilities where needed (CondVar reacquisition runs
/// through them, so waits are rank-tracked too); annotated code should
/// prefer MutexLock (scoped) or explicit Lock()/Unlock() pairs, which the
/// analysis tracks.
class LABFLOW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(LockRank rank, const char* name = nullptr)
      : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock(std::source_location loc = std::source_location::current())
      LABFLOW_ACQUIRE() {
    LockRankPreAcquire(this, rank_, name_, loc);
    mu_.lock();
    LockRankPostAcquire(this, rank_, name_, loc);
  }
  void Unlock() LABFLOW_RELEASE() {
    LockRankRelease(this);
    mu_.unlock();
  }
  bool TryLock(std::source_location loc = std::source_location::current())
      LABFLOW_TRY_ACQUIRE(true) {
    // No PreAcquire: a non-blocking probe cannot deadlock (see
    // BufferPool::LockShard, which probes against the order for stats).
    if (!mu_.try_lock()) return false;
    LockRankPostAcquire(this, rank_, name_, loc);
    return true;
  }

  // BasicLockable spellings (same semantics, same annotations).
  void lock(std::source_location loc = std::source_location::current())
      LABFLOW_ACQUIRE() {
    Lock(loc);
  }
  void unlock() LABFLOW_RELEASE() { Unlock(); }
  bool try_lock(std::source_location loc = std::source_location::current())
      LABFLOW_TRY_ACQUIRE(true) {
    return TryLock(loc);
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  // Constant after construction; 16 bytes per mutex buys the Debug/TSan
  // rank validator and named inversion reports (unused in release).
  LockRank rank_ = LockRank::kUnranked;
  const char* name_ = nullptr;
};

/// RAII lock over a labflow::Mutex, visible to the thread-safety analysis
/// (std::lock_guard acquisitions are not). Not movable: one scope, one hold.
class LABFLOW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu,
                     std::source_location loc = std::source_location::current())
      LABFLOW_ACQUIRE(mu)
      : mu_(mu) {
    mu_.Lock(loc);
  }
  ~MutexLock() LABFLOW_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// A std::shared_mutex with Clang capability annotations: many concurrent
/// readers (LockShared) or one writer (Lock). Used for read-mostly state —
/// most prominently the per-frame page latches, where concurrent most-recent
/// queries all read the same hot catalog/material pages. Prefer the scoped
/// ReaderMutexLock / WriterMutexLock; the analysis tracks both. Shared
/// acquisitions are rank-checked like exclusive ones: readers block on
/// writers, so an inverted shared acquire deadlocks all the same.
class LABFLOW_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(LockRank rank, const char* name = nullptr)
      : rank_(rank), name_(name) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock(std::source_location loc = std::source_location::current())
      LABFLOW_ACQUIRE() {
    LockRankPreAcquire(this, rank_, name_, loc);
    mu_.lock();
    LockRankPostAcquire(this, rank_, name_, loc);
  }
  void Unlock() LABFLOW_RELEASE() {
    LockRankRelease(this);
    mu_.unlock();
  }
  bool TryLock(std::source_location loc = std::source_location::current())
      LABFLOW_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    LockRankPostAcquire(this, rank_, name_, loc);
    return true;
  }

  void LockShared(std::source_location loc = std::source_location::current())
      LABFLOW_ACQUIRE_SHARED() {
    LockRankPreAcquire(this, rank_, name_, loc);
    mu_.lock_shared();
    LockRankPostAcquire(this, rank_, name_, loc);
  }
  void UnlockShared() LABFLOW_RELEASE_SHARED() {
    LockRankRelease(this);
    mu_.unlock_shared();
  }
  bool TryLockShared(
      std::source_location loc = std::source_location::current())
      LABFLOW_TRY_ACQUIRE(true) {
    if (!mu_.try_lock_shared()) return false;
    LockRankPostAcquire(this, rank_, name_, loc);
    return true;
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  LockRank rank_ = LockRank::kUnranked;
  const char* name_ = nullptr;
};

/// RAII shared (reader) hold on a SharedMutex. The destructor releases in
/// "generic" mode — the spelling Clang requires for scoped capabilities
/// whose constructor acquired shared.
class LABFLOW_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(
      SharedMutex& mu,
      std::source_location loc = std::source_location::current())
      LABFLOW_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared(loc);
  }
  ~ReaderMutexLock() LABFLOW_RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) hold on a SharedMutex.
class LABFLOW_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(
      SharedMutex& mu,
      std::source_location loc = std::source_location::current())
      LABFLOW_ACQUIRE(mu)
      : mu_(mu) {
    mu_.Lock(loc);
  }
  ~WriterMutexLock() LABFLOW_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with labflow::Mutex. Every wait declares
/// LABFLOW_REQUIRES(mu): the caller holds the mutex across the call, and the
/// wait reacquires it before returning (the transient release inside the
/// std::condition_variable_any machinery is invisible to — and irrelevant
/// for — the capability analysis, which checks the caller's hold; the rank
/// validator *does* see it, through Mutex's BasicLockable spellings, so a
/// wait correctly drops and re-checks the mutex's rank).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  /// Blocks until `pred()` is true, releasing `mu` while parked.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) LABFLOW_REQUIRES(mu) {
    cv_.wait(mu, std::move(pred));
  }

  /// Untimed single wakeup (spurious wakeups possible; re-test and re-wait).
  void Wait(Mutex& mu) LABFLOW_REQUIRES(mu) { cv_.wait(mu); }

  /// Waits until `deadline`; std::cv_status::timeout when it passed.
  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(Mutex& mu,
                           const std::chrono::time_point<Clock, Duration>&
                               deadline) LABFLOW_REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

  /// Waits up to `rel_time` for `pred()`; returns its final value.
  template <typename Rep, typename Period, typename Pred>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& rel_time,
               Pred pred) LABFLOW_REQUIRES(mu) {
    return cv_.wait_for(mu, rel_time, std::move(pred));
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace labflow

#endif  // LABFLOW_COMMON_MUTEX_H_
