#ifndef LABFLOW_COMMON_MUTEX_H_
#define LABFLOW_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <utility>

#include "common/thread_annotations.h"

namespace labflow {

/// A std::mutex with Clang capability annotations, so classes that guard
/// state with `LABFLOW_GUARDED_BY(mu_)` get their locking discipline checked
/// at compile time (see common/thread_annotations.h). Zero-cost: every
/// method is an inline forward to the underlying std::mutex.
///
/// Lowercase lock/unlock/try_lock keep the type BasicLockable, so it also
/// composes with std facilities where needed; annotated code should prefer
/// MutexLock (scoped) or explicit Lock()/Unlock() pairs, which the analysis
/// tracks.
class LABFLOW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() LABFLOW_ACQUIRE() { mu_.lock(); }
  void Unlock() LABFLOW_RELEASE() { mu_.unlock(); }
  bool TryLock() LABFLOW_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable spellings (same semantics, same annotations).
  void lock() LABFLOW_ACQUIRE() { mu_.lock(); }
  void unlock() LABFLOW_RELEASE() { mu_.unlock(); }
  bool try_lock() LABFLOW_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over a labflow::Mutex, visible to the thread-safety analysis
/// (std::lock_guard acquisitions are not). Not movable: one scope, one hold.
class LABFLOW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LABFLOW_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() LABFLOW_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// A std::shared_mutex with Clang capability annotations: many concurrent
/// readers (LockShared) or one writer (Lock). Used for read-mostly state —
/// most prominently the per-frame page latches, where concurrent most-recent
/// queries all read the same hot catalog/material pages. Prefer the scoped
/// ReaderMutexLock / WriterMutexLock; the analysis tracks both.
class LABFLOW_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() LABFLOW_ACQUIRE() { mu_.lock(); }
  void Unlock() LABFLOW_RELEASE() { mu_.unlock(); }
  bool TryLock() LABFLOW_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void LockShared() LABFLOW_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() LABFLOW_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() LABFLOW_TRY_ACQUIRE(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII shared (reader) hold on a SharedMutex. The destructor releases in
/// "generic" mode — the spelling Clang requires for scoped capabilities
/// whose constructor acquired shared.
class LABFLOW_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) LABFLOW_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() LABFLOW_RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) hold on a SharedMutex.
class LABFLOW_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) LABFLOW_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() LABFLOW_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with labflow::Mutex. Every wait declares
/// LABFLOW_REQUIRES(mu): the caller holds the mutex across the call, and the
/// wait reacquires it before returning (the transient release inside the
/// std::condition_variable_any machinery is invisible to — and irrelevant
/// for — the capability analysis, which checks the caller's hold).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  /// Blocks until `pred()` is true, releasing `mu` while parked.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) LABFLOW_REQUIRES(mu) {
    cv_.wait(mu, std::move(pred));
  }

  /// Untimed single wakeup (spurious wakeups possible; re-test and re-wait).
  void Wait(Mutex& mu) LABFLOW_REQUIRES(mu) { cv_.wait(mu); }

  /// Waits until `deadline`; std::cv_status::timeout when it passed.
  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(Mutex& mu,
                           const std::chrono::time_point<Clock, Duration>&
                               deadline) LABFLOW_REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

  /// Waits up to `rel_time` for `pred()`; returns its final value.
  template <typename Rep, typename Period, typename Pred>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& rel_time,
               Pred pred) LABFLOW_REQUIRES(mu) {
    return cv_.wait_for(mu, rel_time, std::move(pred));
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace labflow

#endif  // LABFLOW_COMMON_MUTEX_H_
