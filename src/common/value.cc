#include "common/value.h"

#include <cstdio>

namespace labflow {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt:
      return "int";
    case ValueType::kReal:
      return "real";
    case ValueType::kString:
      return "string";
    case ValueType::kOid:
      return "oid";
    case ValueType::kTimestamp:
      return "timestamp";
    case ValueType::kList:
      return "list";
  }
  return "unknown";
}

bool Value::AsReal(double* out) const {
  switch (type()) {
    case ValueType::kInt:
      *out = static_cast<double>(int_value());
      return true;
    case ValueType::kReal:
      *out = real_value();
      return true;
    default:
      return false;
  }
}

bool operator==(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case ValueType::kNull:
      return true;
    case ValueType::kBool:
      return a.bool_value() == b.bool_value();
    case ValueType::kInt:
      return a.int_value() == b.int_value();
    case ValueType::kReal:
      return a.real_value() == b.real_value();
    case ValueType::kString:
      return a.string_value() == b.string_value();
    case ValueType::kOid:
      return a.oid_value() == b.oid_value();
    case ValueType::kTimestamp:
      return a.time_value() == b.time_value();
    case ValueType::kList: {
      const Value::List& la = a.list_value();
      const Value::List& lb = b.list_value();
      if (la.size() != lb.size()) return false;
      for (size_t i = 0; i < la.size(); ++i) {
        if (!(la[i] == lb[i])) return false;
      }
      return true;
    }
  }
  return false;
}

namespace {

template <typename T>
int Cmp3(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& a, const Value& b) {
  if (a.type() != b.type()) {
    return Cmp3(static_cast<int>(a.type()), static_cast<int>(b.type()));
  }
  switch (a.type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return Cmp3(a.bool_value(), b.bool_value());
    case ValueType::kInt:
      return Cmp3(a.int_value(), b.int_value());
    case ValueType::kReal:
      return Cmp3(a.real_value(), b.real_value());
    case ValueType::kString:
      return a.string_value().compare(b.string_value());
    case ValueType::kOid:
      return Cmp3(a.oid_value().raw, b.oid_value().raw);
    case ValueType::kTimestamp:
      return Cmp3(a.time_value().micros, b.time_value().micros);
    case ValueType::kList: {
      const List& la = a.list_value();
      const List& lb = b.list_value();
      size_t n = la.size() < lb.size() ? la.size() : lb.size();
      for (size_t i = 0; i < n; ++i) {
        int c = Compare(la[i], lb[i]);
        if (c != 0) return c;
      }
      return Cmp3(la.size(), lb.size());
    }
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return bool_value() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(int_value());
    case ValueType::kReal: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", real_value());
      return buf;
    }
    case ValueType::kString: {
      std::string out = "\"";
      for (char c : string_value()) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
      }
      out.push_back('"');
      return out;
    }
    case ValueType::kOid:
      return "#" + std::to_string(oid_value().raw);
    case ValueType::kTimestamp:
      return "@" + std::to_string(time_value().micros);
    case ValueType::kList: {
      std::string out = "[";
      const List& items = list_value();
      for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out += ", ";
        out += items[i].ToString();
      }
      out += "]";
      return out;
    }
  }
  return "?";
}

}  // namespace labflow
