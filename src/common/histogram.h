#ifndef LABFLOW_COMMON_HISTOGRAM_H_
#define LABFLOW_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace labflow {

/// Log-scale latency histogram (microsecond domain, ~4% bucket resolution).
/// Used by the benchmark driver to report per-event latency percentiles
/// alongside the paper's aggregate rows.
class LatencyHistogram {
 public:
  LatencyHistogram() : buckets_(kBuckets, 0) {}

  /// Records one observation, in seconds.
  void RecordSeconds(double seconds) {
    double us = seconds * 1e6;
    ++buckets_[BucketFor(us)];
    ++count_;
    total_us_ += us;
    if (us > max_us_) max_us_ = us;
  }

  uint64_t count() const { return count_; }
  double mean_us() const { return count_ == 0 ? 0 : total_us_ / count_; }
  double max_us() const { return max_us_; }

  /// Value (us) at percentile p in [0, 100]; upper edge of the bucket that
  /// contains the p-th observation.
  double PercentileUs(double p) const;

  /// Merges another histogram into this one.
  void Merge(const LatencyHistogram& other);

 private:
  // Buckets: [0,1us) then geometric with ratio 2^(1/16) up to ~70 s.
  static constexpr int kBuckets = 420;
  static constexpr double kRatioLog2 = 1.0 / 16.0;

  static int BucketFor(double us);
  static double BucketUpperUs(int bucket);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double total_us_ = 0;
  double max_us_ = 0;
};

}  // namespace labflow

#endif  // LABFLOW_COMMON_HISTOGRAM_H_
