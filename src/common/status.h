#ifndef LABFLOW_COMMON_STATUS_H_
#define LABFLOW_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace labflow {

/// Error codes used across the library. Modeled after the RocksDB/Arrow
/// convention: no exceptions cross a public API boundary; every fallible
/// operation returns a Status (or a Result<T>, see result.h).
enum class StatusCode : int {
  kOk = 0,
  kNotFound = 1,
  kInvalidArgument = 2,
  kAlreadyExists = 3,
  kCorruption = 4,
  kIOError = 5,
  kNotSupported = 6,
  kOutOfRange = 7,
  kAborted = 8,        ///< transaction aborted (deadlock victim, user abort)
  kResourceExhausted = 9,
  kInternal = 10,
  kUnavailable = 11,   ///< service degraded (e.g. sticky WAL error); retry
                       ///< after the operator intervenes, not immediately
};

/// Returns a stable human-readable name for a status code ("NotFound", ...).
std::string_view StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value.
///
/// The OK status carries no allocation; error statuses carry a code and a
/// message. Statuses compare equal iff their codes are equal (messages are
/// for humans, not for dispatch).
///
/// `[[nodiscard]]`: a dropped Status is a silently swallowed error, so the
/// whole tree builds with -Werror=unused-result. Propagate it
/// (LABFLOW_RETURN_IF_ERROR), handle it, or discard explicitly with
/// LABFLOW_IGNORE_STATUS(expr, reason) — see common/status_macros.h and
/// docs/STYLE.md.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg = "") {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg = "") {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace labflow

#endif  // LABFLOW_COMMON_STATUS_H_
