#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace labflow {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  assert(n > 0);
  // Debiased modulo via rejection on the top of the range.
  uint64_t threshold = -n % n;
  while (true) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full range
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextReal() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextReal(double lo, double hi) {
  return lo + (hi - lo) * NextReal();
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextReal() < p;
}

int64_t Rng::NextPoisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 60.0) {
    double v = mean + std::sqrt(mean) * NextNormal();
    return v < 0 ? 0 : static_cast<int64_t>(v + 0.5);
  }
  double l = std::exp(-mean);
  int64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= NextReal();
  } while (p > l);
  return k - 1;
}

double Rng::NextExp(double mean) {
  double u = NextReal();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::NextNormal() {
  double u1 = NextReal();
  double u2 = NextReal();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

uint64_t Rng::NextZipf(uint64_t n, double theta) {
  assert(n > 0);
  if (theta <= 0.0) return NextBelow(n);
  // Inverse-CDF over the harmonic weights, via the standard approximation
  // H(k) ~ (k^(1-theta) - 1) / (1 - theta) for theta != 1.
  double u = NextReal();
  if (theta == 1.0) {
    double hn = std::log(static_cast<double>(n) + 1.0);
    double k = std::exp(u * hn) - 1.0;
    uint64_t r = static_cast<uint64_t>(k);
    return r >= n ? n - 1 : r;
  }
  double one_minus = 1.0 - theta;
  double hn = (std::pow(static_cast<double>(n) + 1.0, one_minus) - 1.0) /
              one_minus;
  double k = std::pow(u * hn * one_minus + 1.0, 1.0 / one_minus) - 1.0;
  uint64_t r = static_cast<uint64_t>(k);
  return r >= n ? n - 1 : r;
}

std::string Rng::NextName(size_t length) {
  static const char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz";
  std::string s;
  s.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    s.push_back(kAlphabet[NextBelow(26)]);
  }
  return s;
}

std::string Rng::NextDna(size_t length) {
  static const char kBases[] = "ACGT";
  std::string s;
  s.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    s.push_back(kBases[NextBelow(4)]);
  }
  return s;
}

Rng Rng::Fork(uint64_t label) const {
  // Mix the current state with the label through SplitMix64 so forks are
  // independent of later draws from the parent.
  uint64_t seed = state_[0] ^ Rotl(state_[3], 13) ^ (label * 0xD6E8FEB86659FD93ULL);
  return Rng(seed);
}

}  // namespace labflow
