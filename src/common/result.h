#ifndef LABFLOW_COMMON_RESULT_H_
#define LABFLOW_COMMON_RESULT_H_

#include <cassert>
#include <source_location>
#include <string>
#include <utility>
#include <variant>

#include "common/status.h"

namespace labflow {

/// A value-or-error holder, the Result/StatusOr idiom.
///
/// Invariant: holds either a T or a non-OK Status; it never holds an OK
/// Status without a value. Constructing a Result from an OK Status is a
/// programming error: debug builds assert on the spot, release builds
/// convert it to an Internal error naming the offending call site.
///
/// `[[nodiscard]]`: discarding a Result drops both the value and the error,
/// so the tree builds with -Werror=unused-result (see common/status_macros.h
/// and docs/STYLE.md for the discipline).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error Status (failure). Passing an OK status is a
  /// contract violation — the defaulted source_location pins the blame on
  /// the caller, not on result.h.
  Result(Status status,  // NOLINT(runtime/explicit)
         std::source_location loc = std::source_location::current())
      : repr_(std::move(status)) {
    if (std::get<Status>(repr_).ok()) {
      assert(false &&
             "Result constructed from OK Status: return the value instead");
      repr_ = Status::Internal(
          std::string("Result constructed from OK Status at ") +
          loc.file_name() + ":" + std::to_string(loc.line()) + " (" +
          loc.function_name() + ")");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns OK if a value is held, otherwise the stored error.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Precondition: ok().
  ///
  /// Lifetime note (C++20): do not iterate `f().value()` directly in a
  /// range-for — the temporary Result dies before the loop body (P2718
  /// only fixes this in C++23). Materialize into a local first:
  ///   auto items = f().value();
  ///   for (const auto& item : items) ...
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const& {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace labflow

#endif  // LABFLOW_COMMON_RESULT_H_
