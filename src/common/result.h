#ifndef LABFLOW_COMMON_RESULT_H_
#define LABFLOW_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace labflow {

/// A value-or-error holder, the Result/StatusOr idiom.
///
/// Invariant: holds either a T or a non-OK Status; it never holds an OK
/// Status without a value. Constructing a Result from an OK Status is a
/// programming error and converts to an Internal error.
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error Status (failure).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns OK if a value is held, otherwise the stored error.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Precondition: ok().
  ///
  /// Lifetime note (C++20): do not iterate `f().value()` directly in a
  /// range-for — the temporary Result dies before the loop body (P2718
  /// only fixes this in C++23). Materialize into a local first:
  ///   auto items = f().value();
  ///   for (const auto& item : items) ...
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const& {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace labflow

/// Evaluates `rexpr` (a Result<T>), propagating its error or assigning the
/// value into `lhs`, which may be a declaration.
#define LABFLOW_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  LABFLOW_ASSIGN_OR_RETURN_IMPL_(                                       \
      LABFLOW_RESULT_CONCAT_(_labflow_result_, __LINE__), lhs, rexpr)

#define LABFLOW_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#define LABFLOW_RESULT_CONCAT_(a, b) LABFLOW_RESULT_CONCAT_IMPL_(a, b)
#define LABFLOW_RESULT_CONCAT_IMPL_(a, b) a##b

#endif  // LABFLOW_COMMON_RESULT_H_
