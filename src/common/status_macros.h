#ifndef LABFLOW_COMMON_STATUS_MACROS_H_
#define LABFLOW_COMMON_STATUS_MACROS_H_

#include <utility>

#include "common/result.h"
#include "common/status.h"

/// Control-flow helpers for the Status/Result error discipline (the contract
/// itself — when to propagate, when to ignore — is docs/STYLE.md).
///
/// `Status` and `Result<T>` are `[[nodiscard]]` and the tree builds with
/// `-Werror=unused-result`: a fallible call must either be propagated
/// (LABFLOW_RETURN_IF_ERROR / LABFLOW_ASSIGN_OR_RETURN), handled, or
/// explicitly waved off with LABFLOW_IGNORE_STATUS and a reason.

/// Propagates a non-OK Status from the enclosing function.
#define LABFLOW_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::labflow::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (0)

/// Evaluates `rexpr` (a Result<T>), propagating its error or assigning the
/// value into `lhs`, which may be a declaration. The value is moved, so
/// move-only payloads (unique_ptr, ...) work.
#define LABFLOW_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  LABFLOW_ASSIGN_OR_RETURN_IMPL_(                                       \
      LABFLOW_STATUS_CONCAT_(_labflow_result_, __LINE__), lhs, rexpr)

#define LABFLOW_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

/// Deliberately discards a Status or Result. `reason` must be a non-empty
/// string literal saying *why* ignoring is correct here — it is the audit
/// trail for the one escape hatch from -Werror=unused-result. Best-effort
/// cleanup on an already-failing path is the typical legitimate use.
#define LABFLOW_IGNORE_STATUS(expr, reason)                               \
  do {                                                                    \
    static_assert(sizeof("" reason) > 1,                                  \
                  "LABFLOW_IGNORE_STATUS needs a non-empty reason");      \
    auto _labflow_ignored_status = (expr);                                \
    (void)_labflow_ignored_status;                                        \
  } while (0)

#define LABFLOW_STATUS_CONCAT_(a, b) LABFLOW_STATUS_CONCAT_IMPL_(a, b)
#define LABFLOW_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // LABFLOW_COMMON_STATUS_MACROS_H_
