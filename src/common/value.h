#ifndef LABFLOW_COMMON_VALUE_H_
#define LABFLOW_COMMON_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace labflow {

/// A database object identifier, as seen by LabBase users (materials, steps,
/// material sets). The value 0 is reserved for "null object".
struct Oid {
  uint64_t raw = 0;

  constexpr Oid() = default;
  explicit constexpr Oid(uint64_t r) : raw(r) {}

  constexpr bool IsNull() const { return raw == 0; }

  friend constexpr bool operator==(Oid a, Oid b) { return a.raw == b.raw; }
  friend constexpr bool operator!=(Oid a, Oid b) { return a.raw != b.raw; }
  friend constexpr bool operator<(Oid a, Oid b) { return a.raw < b.raw; }
};

/// Valid-time timestamp: microseconds since an arbitrary epoch. LabFlow-1
/// orders event history by *valid time*, not transaction time: steps may be
/// entered into the database out of order (paper Section 7, citing [56]).
struct Timestamp {
  int64_t micros = 0;

  constexpr Timestamp() = default;
  explicit constexpr Timestamp(int64_t us) : micros(us) {}

  friend constexpr bool operator==(Timestamp a, Timestamp b) {
    return a.micros == b.micros;
  }
  friend constexpr bool operator!=(Timestamp a, Timestamp b) {
    return a.micros != b.micros;
  }
  friend constexpr bool operator<(Timestamp a, Timestamp b) {
    return a.micros < b.micros;
  }
  friend constexpr bool operator<=(Timestamp a, Timestamp b) {
    return a.micros <= b.micros;
  }
  friend constexpr bool operator>(Timestamp a, Timestamp b) {
    return a.micros > b.micros;
  }
  friend constexpr bool operator>=(Timestamp a, Timestamp b) {
    return a.micros >= b.micros;
  }
};

/// Runtime type tag of a Value.
enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt = 2,
  kReal = 3,
  kString = 4,
  kOid = 5,
  kTimestamp = 6,
  kList = 7,
};

/// Returns a stable name for a value type ("int", "string", ...).
const char* ValueTypeName(ValueType type);

/// A dynamically typed value: the unit of data attached to step results and
/// material attributes.
///
/// LabBase attaches (attribute, value) "tags" to step instances; attribute
/// values range over scalars and *lists* (the paper's "set and list
/// generation" requirement, e.g. lists of BLAST homology hits). Values are
/// cheap to copy for scalars; strings and lists share immutable payloads via
/// shared_ptr so copies are O(1).
class Value {
 public:
  using List = std::vector<Value>;

  /// Constructs a null value.
  Value() : repr_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Repr(b)); }
  static Value Int(int64_t i) { return Value(Repr(i)); }
  static Value Real(double d) { return Value(Repr(d)); }
  static Value String(std::string s) {
    return Value(Repr(std::make_shared<const std::string>(std::move(s))));
  }
  static Value Object(Oid oid) { return Value(Repr(oid)); }
  static Value Time(Timestamp ts) { return Value(Repr(ts)); }
  static Value MakeList(List items) {
    return Value(Repr(std::make_shared<const List>(std::move(items))));
  }

  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  Value(Value&&) noexcept = default;
  Value& operator=(Value&&) noexcept = default;

  ValueType type() const {
    return static_cast<ValueType>(repr_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors; preconditions checked with assert in debug builds.
  /// Callers must check type() first (or use the As* helpers below).
  bool bool_value() const { return std::get<bool>(repr_); }
  int64_t int_value() const { return std::get<int64_t>(repr_); }
  double real_value() const { return std::get<double>(repr_); }
  const std::string& string_value() const {
    return *std::get<std::shared_ptr<const std::string>>(repr_);
  }
  Oid oid_value() const { return std::get<Oid>(repr_); }
  Timestamp time_value() const { return std::get<Timestamp>(repr_); }
  const List& list_value() const {
    return *std::get<std::shared_ptr<const List>>(repr_);
  }

  /// Numeric coercion: int or real as double; returns false otherwise.
  bool AsReal(double* out) const;

  /// Deep structural equality (lists compared element-wise). Int and real
  /// are distinct even when numerically equal: Value::Int(1) != Value::Real(1.0).
  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Total order used by setof/sorting: first by type tag, then by value.
  /// Returns <0, 0, >0.
  static int Compare(const Value& a, const Value& b);

  /// Renders the value in the deductive-language literal syntax:
  /// null, true, 42, 3.5, "text", #17, @12345, [a, b].
  std::string ToString() const;

 private:
  using Repr = std::variant<std::monostate, bool, int64_t, double,
                            std::shared_ptr<const std::string>, Oid, Timestamp,
                            std::shared_ptr<const List>>;

  explicit Value(Repr repr) : repr_(std::move(repr)) {}

  Repr repr_;
};

}  // namespace labflow

#endif  // LABFLOW_COMMON_VALUE_H_
