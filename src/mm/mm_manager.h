#ifndef LABFLOW_MM_MM_MANAGER_H_
#define LABFLOW_MM_MM_MANAGER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "storage/storage_manager.h"

namespace labflow::mm {

/// Main-memory storage manager: the paper's "OStore-mm / Texas-mm" server
/// versions, which run the identical LabBase code "without any persistent
/// storage management". Objects live in a hash map; there is no paging, no
/// durability, and Checkpoint is a no-op. Begin/Commit are accepted (and
/// counted) so the wrapper code path is unchanged; Abort is NotSupported,
/// matching the paper's mm configurations which relied on the benchmark
/// stream never aborting.
class MmManager : public storage::StorageManager {
 public:
  /// `display_name` distinguishes "OStore-mm" from "Texas-mm": the two are
  /// one implementation here, because with persistence removed the paper's
  /// two code bases collapse to the same behaviour (DESIGN.md, substitution
  /// table).
  explicit MmManager(std::string display_name = "mm");

  std::string_view name() const override { return name_; }

  Status Begin() override;
  Status Commit() override;
  Status Abort() override;
  Result<storage::ObjectId> Allocate(std::string_view data,
                                     const storage::AllocHint& hint) override;
  Result<std::string> Read(storage::ObjectId id) override;
  Status Update(storage::ObjectId id, std::string_view data) override;
  Status Free(storage::ObjectId id) override;
  Result<uint16_t> CreateSegment(std::string_view name) override;
  Status SetRoot(storage::ObjectId root) override {
    std::lock_guard<std::mutex> g(mu_);
    root_ = root;
    return Status::OK();
  }
  Result<storage::ObjectId> GetRoot() override {
    std::lock_guard<std::mutex> g(mu_);
    return root_;
  }
  Status ScanAll(const std::function<Status(storage::ObjectId,
                                            std::string_view)>& fn) override;
  Status Checkpoint() override;
  Status Close() override;
  storage::StorageStats stats() const override;

 private:
  std::string name_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::string> objects_;
  uint64_t next_id_ = 1;
  storage::ObjectId root_;
  uint64_t bytes_ = 0;
  uint64_t commits_ = 0;
  bool closed_ = false;
};

}  // namespace labflow::mm

#endif  // LABFLOW_MM_MM_MANAGER_H_
