#ifndef LABFLOW_MM_MM_MANAGER_H_
#define LABFLOW_MM_MM_MANAGER_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "storage/storage_manager.h"
#include "storage/version_store.h"

namespace labflow::mm {

/// Main-memory storage manager: the paper's "OStore-mm / Texas-mm" server
/// versions, which run the identical LabBase code "without any persistent
/// storage management". Objects live in a hash map; there is no paging, no
/// durability, and Checkpoint is a no-op. Transactions are accepted (and
/// commits counted) so the wrapper code path is unchanged, but provide no
/// isolation or rollback: operations from concurrent handles interleave
/// freely with per-operation atomicity only, and Abort is NotSupported,
/// matching the paper's mm configurations which relied on the benchmark
/// stream never aborting.
class MmManager : public storage::StorageManager {
 public:
  /// `display_name` distinguishes "OStore-mm" from "Texas-mm": the two are
  /// one implementation here, because with persistence removed the paper's
  /// two code bases collapse to the same behaviour (DESIGN.md, substitution
  /// table).
  explicit MmManager(std::string display_name = "mm");

  std::string_view name() const override { return name_; }

  Result<uint16_t> CreateSegment(std::string_view name) override;
  Status SetRoot(storage::ObjectId root) override {
    WriterMutexLock g(mu_);
    root_ = root;
    return Status::OK();
  }
  Result<storage::ObjectId> GetRoot() override {
    ReaderMutexLock g(mu_);
    return root_;
  }
  Status Checkpoint() override;
  Status Close() override;
  storage::StorageStats stats() const override;

 protected:
  Status CommitTxn(storage::Txn* txn) override;
  Status AbortTxn(storage::Txn* txn) override;
  void OnTxnDrop(storage::Txn* txn) override;

  /// MVCC snapshot reads. Writers capture pre-images inside the same writer
  /// hold that applies the mutation, so a snapshot reader that observes a
  /// mutation always observes its chain too. Since mm never rolls anything
  /// back (Abort is NotSupported and leaves changes applied), aborts and
  /// drops stamp the pending entries like commits — the chains must mirror
  /// what the map actually holds.
  bool SupportsSnapshots() const override { return true; }
  uint64_t AcquireSnapshot() override { return versions_.AcquireSnapshot(); }
  void ReleaseSnapshot(uint64_t ts) override {
    versions_.ReleaseSnapshot(ts);
  }

  Result<storage::ObjectId> DoAllocate(storage::Txn* txn,
                                       std::string_view data,
                                       const storage::AllocHint& hint) override;
  Result<std::string> DoRead(storage::Txn* txn, storage::ObjectId id) override;
  Status DoUpdate(storage::Txn* txn, storage::ObjectId id,
                  std::string_view data) override;
  Status DoFree(storage::Txn* txn, storage::ObjectId id) override;
  Status DoScanAll(storage::Txn* txn,
                   const std::function<Status(storage::ObjectId,
                                              std::string_view)>& fn) override;

 private:
  /// Stamps a transaction's pending chain entries as committed at a fresh
  /// timestamp (commit, and — see above — abort/drop too).
  void StampTxn(storage::Txn* txn);

  std::string name_;  // NOLINT(guarded-by-coverage): set at construction
  storage::VersionStore
      versions_;  // NOLINT(guarded-by-coverage): self-synchronizing
  /// Reader–writer: reads (DoRead, DoScanAll, stats, GetRoot) take shared
  /// holds so concurrent query clients never serialize on the mm store.
  /// Rank kMmStore: held while registering writes with the version store
  /// (DoAllocate → RecordWrite), so it sits below both VersionStore ranks.
  mutable SharedMutex mu_{LockRank::kMmStore, "mm.store"};
  std::unordered_map<uint64_t, std::string> objects_ LABFLOW_GUARDED_BY(mu_);
  uint64_t next_id_ LABFLOW_GUARDED_BY(mu_) = 1;
  storage::ObjectId root_ LABFLOW_GUARDED_BY(mu_);
  uint64_t bytes_ LABFLOW_GUARDED_BY(mu_) = 0;
  uint64_t commits_ LABFLOW_GUARDED_BY(mu_) = 0;
  bool closed_ LABFLOW_GUARDED_BY(mu_) = false;
};

}  // namespace labflow::mm

#endif  // LABFLOW_MM_MM_MANAGER_H_
