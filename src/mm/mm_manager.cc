#include "mm/mm_manager.h"
#include "common/status_macros.h"

namespace labflow::mm {

using storage::AllocHint;
using storage::ObjectId;
using storage::StorageStats;

MmManager::MmManager(std::string display_name)
    : name_(std::move(display_name)) {}

Status MmManager::CommitTxn(storage::Txn* txn) {
  (void)txn;
  WriterMutexLock g(mu_);
  ++commits_;
  return Status::OK();
}

Status MmManager::AbortTxn(storage::Txn* txn) {
  (void)txn;
  return Status::NotSupported("mm: no transaction support");
}

Result<ObjectId> MmManager::DoAllocate(storage::Txn* txn,
                                       std::string_view data,
                                       const AllocHint& hint) {
  (void)txn;   // no isolation in main memory
  (void)hint;  // no placement control in main memory
  WriterMutexLock g(mu_);
  if (closed_) return Status::InvalidArgument("manager closed");
  uint64_t id = next_id_++;
  objects_.emplace(id, std::string(data));
  bytes_ += data.size();
  return ObjectId(id);
}

Result<std::string> MmManager::DoRead(storage::Txn* txn, ObjectId id) {
  (void)txn;
  ReaderMutexLock g(mu_);
  auto it = objects_.find(id.raw);
  if (it == objects_.end()) {
    return Status::NotFound("no such object: " + std::to_string(id.raw));
  }
  return it->second;
}

Status MmManager::DoUpdate(storage::Txn* txn, ObjectId id,
                           std::string_view data) {
  (void)txn;
  WriterMutexLock g(mu_);
  auto it = objects_.find(id.raw);
  if (it == objects_.end()) {
    return Status::NotFound("no such object: " + std::to_string(id.raw));
  }
  bytes_ += data.size();
  bytes_ -= it->second.size();
  it->second.assign(data);
  return Status::OK();
}

Status MmManager::DoFree(storage::Txn* txn, ObjectId id) {
  (void)txn;
  WriterMutexLock g(mu_);
  auto it = objects_.find(id.raw);
  if (it == objects_.end()) {
    return Status::NotFound("no such object: " + std::to_string(id.raw));
  }
  bytes_ -= it->second.size();
  objects_.erase(it);
  return Status::OK();
}

Result<uint16_t> MmManager::CreateSegment(std::string_view name) {
  (void)name;
  return static_cast<uint16_t>(0);
}

Status MmManager::DoScanAll(
    storage::Txn* txn,
    const std::function<Status(ObjectId, std::string_view)>& fn) {
  (void)txn;
  // Copy ids first so fn may mutate the store.
  std::vector<uint64_t> ids;
  {
    ReaderMutexLock g(mu_);
    ids.reserve(objects_.size());
    for (const auto& [id, data] : objects_) ids.push_back(id);
  }
  for (uint64_t id : ids) {
    std::string data;
    {
      ReaderMutexLock g(mu_);
      auto it = objects_.find(id);
      if (it == objects_.end()) continue;
      data = it->second;
    }
    LABFLOW_RETURN_IF_ERROR(fn(ObjectId(id), data));
  }
  return Status::OK();
}

Status MmManager::Checkpoint() { return Status::OK(); }

Status MmManager::Close() {
  DropActiveTxns();
  WriterMutexLock g(mu_);
  closed_ = true;
  return Status::OK();
}

StorageStats MmManager::stats() const {
  ReaderMutexLock g(mu_);
  StorageStats s;
  s.db_size_bytes = bytes_;
  s.live_objects = objects_.size();
  s.txn_commits = commits_;
  s.txn_retries = txn_retry_count();
  return s;
}

}  // namespace labflow::mm
