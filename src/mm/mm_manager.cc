#include "mm/mm_manager.h"

#include <unordered_set>
#include <utility>
#include <vector>

#include "common/status_macros.h"

namespace labflow::mm {

using storage::AllocHint;
using storage::ObjectId;
using storage::StorageStats;
using storage::VersionStore;

MmManager::MmManager(std::string display_name)
    : name_(std::move(display_name)) {}

void MmManager::StampTxn(storage::Txn* txn) {
  if (txn == nullptr) return;
  uint64_t ts = versions_.PrepareCommit(txn->id());
  versions_.FinalizeCommit(txn->id(), ts);
}

Status MmManager::CommitTxn(storage::Txn* txn) {
  StampTxn(txn);
  WriterMutexLock g(mu_);
  ++commits_;
  return Status::OK();
}

Status MmManager::AbortTxn(storage::Txn* txn) {
  // No rollback: the changes stay applied, so the chains are stamped as if
  // committed — a dangling pending entry would hide the (kept!) writes from
  // every future snapshot and pin the chain forever.
  StampTxn(txn);
  return Status::NotSupported("mm: no transaction support");
}

void MmManager::OnTxnDrop(storage::Txn* txn) { StampTxn(txn); }

Result<ObjectId> MmManager::DoAllocate(storage::Txn* txn,
                                       std::string_view data,
                                       const AllocHint& hint) {
  (void)hint;  // no placement control in main memory
  WriterMutexLock g(mu_);
  if (closed_) return Status::InvalidArgument("manager closed");
  uint64_t id = next_id_++;
  objects_.emplace(id, std::string(data));
  bytes_ += data.size();
  if (txn != nullptr) {
    // Inside the writer hold: no snapshot scan can see the object before
    // its chain exists. Created by this txn, so no pre-image.
    versions_.RecordWrite(txn->id(), id, data, nullptr);
  }
  return ObjectId(id);
}

Result<std::string> MmManager::DoRead(storage::Txn* txn, ObjectId id) {
  if (txn != nullptr && txn->is_snapshot()) {
    // Physical read first, chain lookup second: a writer captures its chain
    // in the same writer hold as the mutation, so a read that observed the
    // mutation is always overridden by the chain it left behind.
    Result<std::string> physical =
        Status::NotFound("no such object: " + std::to_string(id.raw));
    {
      ReaderMutexLock g(mu_);
      auto it = objects_.find(id.raw);
      if (it != objects_.end()) physical = it->second;
    }
    std::string chained;
    switch (versions_.Lookup(txn->snapshot_ts(), id.raw, &chained)) {
      case VersionStore::Resolve::kData:
        return chained;
      case VersionStore::Resolve::kNotFound:
        return Status::NotFound("no such object at snapshot: " +
                                std::to_string(id.raw));
      case VersionStore::Resolve::kFallThrough:
        break;
    }
    return physical;
  }
  ReaderMutexLock g(mu_);
  auto it = objects_.find(id.raw);
  if (it == objects_.end()) {
    return Status::NotFound("no such object: " + std::to_string(id.raw));
  }
  return it->second;
}

Status MmManager::DoUpdate(storage::Txn* txn, ObjectId id,
                           std::string_view data) {
  WriterMutexLock g(mu_);
  auto it = objects_.find(id.raw);
  if (it == objects_.end()) {
    return Status::NotFound("no such object: " + std::to_string(id.raw));
  }
  if (txn != nullptr) {
    if (versions_.HasPending(txn->id(), id.raw)) {
      versions_.RecordWrite(txn->id(), id.raw, data, nullptr);
    } else {
      versions_.RecordWrite(txn->id(), id.raw, data, &it->second);
    }
  }
  bytes_ += data.size();
  bytes_ -= it->second.size();
  it->second.assign(data);
  return Status::OK();
}

Status MmManager::DoFree(storage::Txn* txn, ObjectId id) {
  WriterMutexLock g(mu_);
  auto it = objects_.find(id.raw);
  if (it == objects_.end()) {
    return Status::NotFound("no such object: " + std::to_string(id.raw));
  }
  if (txn != nullptr) {
    if (versions_.HasPending(txn->id(), id.raw)) {
      versions_.RecordDelete(txn->id(), id.raw, nullptr);
    } else {
      versions_.RecordDelete(txn->id(), id.raw, &it->second);
    }
  }
  bytes_ -= it->second.size();
  objects_.erase(it);
  return Status::OK();
}

Result<uint16_t> MmManager::CreateSegment(std::string_view name) {
  (void)name;
  return static_cast<uint16_t>(0);
}

Status MmManager::DoScanAll(
    storage::Txn* txn,
    const std::function<Status(ObjectId, std::string_view)>& fn) {
  if (txn != nullptr && txn->is_snapshot()) {
    uint64_t snap = txn->snapshot_ts();
    std::vector<uint64_t> ids;
    {
      ReaderMutexLock g(mu_);
      ids.reserve(objects_.size());
      for (const auto& [id, data] : objects_) ids.push_back(id);
    }
    std::unordered_set<uint64_t> emitted;
    for (uint64_t id : ids) {
      emitted.insert(id);
      bool have_physical = false;
      std::string physical;
      {
        ReaderMutexLock g(mu_);
        auto it = objects_.find(id);
        if (it != objects_.end()) {
          have_physical = true;
          physical = it->second;
        }
      }
      std::string chained;
      switch (versions_.Lookup(snap, id, &chained)) {
        case VersionStore::Resolve::kData:
          LABFLOW_RETURN_IF_ERROR(fn(ObjectId(id), chained));
          break;
        case VersionStore::Resolve::kNotFound:
          break;  // not visible at this snapshot
        case VersionStore::Resolve::kFallThrough:
          if (have_physical) {
            LABFLOW_RETURN_IF_ERROR(fn(ObjectId(id), physical));
          }
          break;
      }
    }
    // Objects whose map entries vanished before the id pass reached them
    // still have chains while this snapshot is open.
    return versions_.SweepVisible(
        snap, emitted, [&fn](uint64_t key, std::string_view data) {
          return fn(ObjectId(key), data);
        });
  }
  // Copy ids first so fn may mutate the store.
  std::vector<uint64_t> ids;
  {
    ReaderMutexLock g(mu_);
    ids.reserve(objects_.size());
    for (const auto& [id, data] : objects_) ids.push_back(id);
  }
  for (uint64_t id : ids) {
    std::string data;
    {
      ReaderMutexLock g(mu_);
      auto it = objects_.find(id);
      if (it == objects_.end()) continue;
      data = it->second;
    }
    LABFLOW_RETURN_IF_ERROR(fn(ObjectId(id), data));
  }
  return Status::OK();
}

Status MmManager::Checkpoint() { return Status::OK(); }

Status MmManager::Close() {
  DropActiveTxns();
  WriterMutexLock g(mu_);
  closed_ = true;
  return Status::OK();
}

StorageStats MmManager::stats() const {
  ReaderMutexLock g(mu_);
  StorageStats s;
  s.db_size_bytes = bytes_;
  s.live_objects = objects_.size();
  s.txn_commits = commits_;
  s.txn_retries = txn_retry_count();
  s.snapshots_opened = versions_.snapshots_opened();
  s.commit_ts_hwm = versions_.high_water();
  s.mvcc_chains = versions_.chain_count();
  return s;
}

}  // namespace labflow::mm
