#include "labbase/labbase.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/rng.h"
#include "common/status_macros.h"

namespace labflow::labbase {

using storage::AllocHint;
using storage::ObjectId;

namespace {

ObjectId ToStorage(Oid oid) { return ObjectId(oid.raw); }
Oid ToUser(ObjectId id) { return Oid(id.raw); }

}  // namespace

// ---- Lifecycle --------------------------------------------------------------

Result<std::unique_ptr<LabBase>> LabBase::Open(storage::StorageManager* mgr,
                                               const LabBaseOptions& options) {
  if (mgr == nullptr) return Status::InvalidArgument("null storage manager");
  std::unique_ptr<LabBase> db(new LabBase(mgr, options));
  LABFLOW_ASSIGN_OR_RETURN(ObjectId root, mgr->GetRoot());
  if (root.IsValid()) {
    LABFLOW_RETURN_IF_ERROR(db->LoadExisting(root));
  } else {
    LABFLOW_RETURN_IF_ERROR(db->Bootstrap());
  }
  return db;
}

std::unique_ptr<LabBase::Session> LabBase::OpenSession() {
  return std::unique_ptr<Session>(new Session(this));
}

// ---- SessionPool ------------------------------------------------------------

LabBase::SessionPool::~SessionPool() {
  MutexLock l(mu_);
  if (outstanding_ != 0) {
    // A Lease destructor dereferences its pool; destroying the pool first
    // turns every outstanding lease into a use-after-free. This is a
    // teardown-ordering bug at the call site (e.g. a server connection
    // surviving its pool), and it must not limp on in release builds.
    std::fprintf(stderr,
                 "labflow fatal: SessionPool destroyed with %zu outstanding "
                 "lease(s); release every Lease before the pool\n",
                 outstanding_);
    std::abort();
  }
}

LabBase::SessionPool::Lease LabBase::SessionPool::Acquire() {
  std::unique_ptr<Session> session;
  {
    MutexLock l(mu_);
    ++stats_.acquired;
    ++outstanding_;
    if (!idle_.empty()) {
      session = std::move(idle_.back());
      idle_.pop_back();
      ++stats_.reused;
    } else {
      ++stats_.created;
    }
  }
  if (session == nullptr) session = db_->OpenSession();
  return Lease(this, std::move(session));
}

void LabBase::SessionPool::Return(std::unique_ptr<Session> session) {
  // A session abandoned mid-transaction is poisoned for reuse: the next
  // lease would silently join (or deadlock against) the old transaction.
  // Abort it and drop it instead of pooling it.
  if (session->in_transaction()) {
    LABFLOW_IGNORE_STATUS(session->Abort(),
                          "pooled session is being discarded either way");
    MutexLock l(mu_);
    --outstanding_;
    ++stats_.discarded;
    return;
  }
  MutexLock l(mu_);
  --outstanding_;
  if (idle_.size() >= max_idle_) {
    ++stats_.discarded;
    return;
  }
  idle_.push_back(std::move(session));
}

LabBase::SessionPool::Stats LabBase::SessionPool::stats() const {
  MutexLock l(mu_);
  return stats_;
}

size_t LabBase::SessionPool::idle_count() const {
  MutexLock l(mu_);
  return idle_.size();
}

size_t LabBase::SessionPool::outstanding() const {
  MutexLock l(mu_);
  return outstanding_;
}

Status LabBase::Bootstrap() {
  if (options_.separate_segments) {
    LABFLOW_ASSIGN_OR_RETURN(hot_segment_, mgr_->CreateSegment("labbase_hot"));
    LABFLOW_ASSIGN_OR_RETURN(cold_segment_,
                             mgr_->CreateSegment("labbase_cold"));
  }
  root_.hot_segment = hot_segment_;
  root_.cold_segment = cold_segment_;
  root_.schema_blob = schema_.Encode();
  AllocHint hint;
  hint.segment = hot_segment_;
  if (options_.persistent_name_index) {
    LABFLOW_ASSIGN_OR_RETURN(name_dir_,
                             storage::HashDir::Create(mgr_, hint));
    root_.name_dir = name_dir_->root_id();
  }
  LABFLOW_ASSIGN_OR_RETURN(root_id_, mgr_->Allocate(root_.Encode(), hint));
  LABFLOW_RETURN_IF_ERROR(mgr_->SetRoot(root_id_));
  // Make the root pointer durable immediately: everything else is
  // recoverable, the root pointer is not.
  return mgr_->Checkpoint();
}

Status LabBase::LoadExisting(ObjectId root) {
  root_id_ = root;
  LABFLOW_ASSIGN_OR_RETURN(std::string blob, mgr_->Read(root));
  LABFLOW_ASSIGN_OR_RETURN(root_, RootRecord::Decode(blob));
  LABFLOW_ASSIGN_OR_RETURN(schema_, Schema::Decode(root_.schema_blob));
  hot_segment_ = root_.hot_segment;
  cold_segment_ = root_.cold_segment;
  for (const auto& [name, id] : root_.sets) {
    sets_by_name_[name] = ToUser(id);
  }
  if (root_.name_dir.IsValid()) {
    LABFLOW_ASSIGN_OR_RETURN(name_dir_,
                             storage::HashDir::Attach(mgr_, root_.name_dir));
    options_.persistent_name_index = true;
  }
  return RebuildIndexes();
}

Status LabBase::PersistRoot(storage::Txn* txn) {
  root_.schema_blob = schema_.Encode();
  return mgr_->Update(txn, root_id_, root_.Encode());
}

Status LabBase::ReloadCatalog() {
  LABFLOW_ASSIGN_OR_RETURN(std::string blob, mgr_->Read(root_id_));
  LABFLOW_ASSIGN_OR_RETURN(root_, RootRecord::Decode(blob));
  LABFLOW_ASSIGN_OR_RETURN(schema_, Schema::Decode(root_.schema_blob));
  sets_by_name_.clear();
  for (const auto& [name, id] : root_.sets) {
    sets_by_name_[name] = ToUser(id);
  }
  return RebuildIndexes();
}

Status LabBase::RebuildIndexes() {
  // Requires no concurrent sessions (open / catalog-abort path), so the
  // indexes can be swapped without holding index_mu_ across the scan.
  materials_by_name_.clear();
  by_state_.clear();
  by_class_.clear();
  return mgr_->ScanAll([&](ObjectId id, std::string_view data) -> Status {
    // The store may hold records that are not LabBase's (e.g. the name
    // directory's buckets); skip anything we do not recognize.
    auto kind_or = PeekRecordKind(data);
    if (!kind_or.ok()) return Status::OK();
    RecordKind kind = kind_or.value();
    if (kind != RecordKind::kMaterial) return Status::OK();
    LABFLOW_ASSIGN_OR_RETURN(MaterialRecord rec, MaterialRecord::Decode(data));
    // With a persistent name directory the in-memory name map is unused
    // (lookups go to the directory); skip building it.
    if (name_dir_ == nullptr) {
      materials_by_name_[rec.name] = ToUser(id);
    }
    by_state_[rec.state].insert({rec.name, ToUser(id)});
    by_class_[rec.class_id].insert(ToUser(id));
    return Status::OK();
  });
}

// ---- Session: transactions --------------------------------------------------

LabBase::Session::~Session() {
  // Best-effort rollback of an abandoned transaction. Safe even if the
  // manager was closed underneath us: StorageManager::Abort looks the
  // handle up by pointer value without dereferencing it.
  if (txn_ != nullptr) {
    LABFLOW_IGNORE_STATUS(Abort(),
                          "a destructor cannot propagate; the rollback of an "
                          "abandoned transaction is best-effort");
  }
}

Status LabBase::Session::Begin() {
  if (txn_ != nullptr) {
    return Status::InvalidArgument("nested transactions are not supported");
  }
  LABFLOW_ASSIGN_OR_RETURN(txn_, db_->mgr_->Begin());
  return Status::OK();
}

Status LabBase::Session::BeginReadOnly() {
  if (txn_ != nullptr) {
    return Status::InvalidArgument("nested transactions are not supported");
  }
  LABFLOW_ASSIGN_OR_RETURN(txn_, db_->mgr_->Begin(/*snapshot=*/true));
  return Status::OK();
}

void LabBase::Session::RollbackIndexes() {
  // Roll the shared in-memory indexes back from this session's undo log,
  // in reverse. Concurrent sessions never saw uncommitted *storage* state
  // (page locks), but they could see these index entries; undoing them
  // here restores the pre-transaction view.
  MutexLock g(db_->index_mu_);
  for (auto it = index_undo_.rbegin(); it != index_undo_.rend(); ++it) {
    switch (it->kind) {
      case IndexUndo::kMaterialCreated:
        db_->materials_by_name_.erase(it->name);
        db_->by_state_[it->from].erase({it->name, it->oid});
        db_->by_class_[it->class_id].erase(it->oid);
        break;
      case IndexUndo::kStateChanged:
        db_->by_state_[it->to].erase({it->name, it->oid});
        db_->by_state_[it->from].insert({it->name, it->oid});
        break;
    }
  }
}

Status LabBase::Session::Commit() {
  if (txn_ == nullptr) {
    return Status::InvalidArgument("no active transaction");
  }
  storage::Txn* t = txn_;
  txn_ = nullptr;
  Status st = db_->mgr_->Commit(t);
  if (!st.ok()) {
    // The manager degrades a commit it cannot certify (e.g. a WAL append
    // failure) to an abort: its storage state rolled back, so the shared
    // in-memory indexes — and a dirtied catalog — must follow, exactly as
    // in Abort(). Skipping this would leave phantom index entries pointing
    // at objects that no longer exist.
    RollbackIndexes();
    if (catalog_dirty_) {
      LABFLOW_IGNORE_STATUS(db_->ReloadCatalog(),
                            "surfacing the commit failure; the catalog "
                            "re-read is best-effort here");
    }
  }
  index_undo_.clear();
  catalog_dirty_ = false;
  return st;
}

Status LabBase::Session::Abort() {
  if (txn_ == nullptr) {
    return Status::InvalidArgument("no active transaction");
  }
  storage::Txn* t = txn_;
  txn_ = nullptr;
  RollbackIndexes();
  index_undo_.clear();
  Status st = db_->mgr_->Abort(t);
  if (catalog_dirty_) {
    // The transaction touched the catalog (DDL / set creation — documented
    // single-session operations), so the cached copy may reflect rolled
    // back changes; re-read it from storage.
    catalog_dirty_ = false;
    Status reload = db_->ReloadCatalog();
    if (st.ok()) st = reload;
  }
  return st;
}

Status LabBase::Session::RunTransaction(const std::function<Status()>& body) {
  if (txn_ != nullptr) {
    return Status::InvalidArgument(
        "RunTransaction inside an active transaction");
  }
  const LabBaseOptions& opt = db_->options_;
  int64_t backoff_us = std::max<int64_t>(opt.retry_backoff_us, 1);
  std::unique_ptr<Rng> rng;
  for (int attempt = 0;; ++attempt) {
    LABFLOW_RETURN_IF_ERROR(Begin());
    if (rng == nullptr) {
      // Decorrelate backoff across sessions: transaction ids are unique per
      // manager, so hashing the first attempt's id gives each session its
      // own jitter stream without a configuration knob.
      rng = std::make_unique<Rng>(txn_->id() * 0x9E3779B97F4A7C15ull + 1);
    }
    Status st = body();
    if (st.ok()) {
      st = Commit();
      if (st.ok()) return st;
    } else {
      LABFLOW_IGNORE_STATUS(Abort(),
                            "surfacing the body's error; rollback of an "
                            "aborting transaction is best-effort");
    }
    if (!st.IsAborted() || attempt >= opt.max_txn_retries) return st;
    ++stats_.txn_retries;
    int64_t sleep_us =
        backoff_us / 2 +
        static_cast<int64_t>(
            rng->NextBelow(static_cast<uint64_t>(backoff_us / 2 + 1)));
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
    backoff_us = std::min(backoff_us * 2, opt.retry_backoff_max_us);
  }
}

// ---- Session: schema --------------------------------------------------------

Result<ClassId> LabBase::Session::DefineMaterialClass(std::string_view name) {
  LABFLOW_ASSIGN_OR_RETURN(ClassId id, db_->schema_.DefineMaterialClass(name));
  TouchCatalog();
  LABFLOW_RETURN_IF_ERROR(db_->PersistRoot(txn_));
  return id;
}

Result<ClassId> LabBase::Session::DefineStepClass(
    std::string_view name, const std::vector<std::string>& attr_names) {
  LABFLOW_ASSIGN_OR_RETURN(ClassId id,
                           db_->schema_.DefineStepClass(name, attr_names));
  TouchCatalog();
  LABFLOW_RETURN_IF_ERROR(db_->PersistRoot(txn_));
  return id;
}

Result<StateId> LabBase::Session::DefineState(std::string_view name) {
  StateId id = db_->schema_.InternState(name);
  TouchCatalog();
  LABFLOW_RETURN_IF_ERROR(db_->PersistRoot(txn_));
  return id;
}

// ---- Session: materials & steps ---------------------------------------------

Result<Oid> LabBase::Session::CreateMaterial(ClassId material_class,
                                             std::string_view name,
                                             StateId initial_state,
                                             Timestamp created) {
  LabBase* db = db_;
  if (!db->schema_.IsMaterialClass(material_class)) {
    return Status::InvalidArgument("not a material class");
  }
  if (db->name_dir_ != nullptr &&
      db->name_dir_->Lookup(name, txn_).ok()) {
    return Status::AlreadyExists("material name taken: " + std::string(name));
  }
  std::string name_str(name);
  // Reserve the name with a null Oid before the storage allocation: the
  // allocation may block on page locks, and index_mu_ must never be held
  // across storage calls. A concurrent CreateMaterial of the same name
  // fails here; FindMaterialByName treats the null placeholder as absent.
  {
    MutexLock g(db->index_mu_);
    auto [it, inserted] = db->materials_by_name_.try_emplace(name_str, Oid());
    if (!inserted) {
      return Status::AlreadyExists("material name taken: " + name_str);
    }
  }
  auto release_reservation = [&] {
    MutexLock g(db->index_mu_);
    db->materials_by_name_.erase(name_str);
  };

  MaterialRecord rec;
  rec.class_id = material_class;
  rec.name = name_str;
  rec.state = initial_state;
  rec.state_time = created;
  rec.created = created;
  AllocHint hint;
  hint.segment = db->hot_segment_;
  Result<ObjectId> id_or = db->mgr_->Allocate(txn_, rec.Encode(), hint);
  if (!id_or.ok()) {
    release_reservation();
    return id_or.status();
  }
  ObjectId id = id_or.value();
  Oid oid = ToUser(id);
  if (db->name_dir_ != nullptr) {
    Status st = db->name_dir_->Insert(rec.name, id, txn_);
    if (!st.ok()) {
      release_reservation();
      return st;
    }
  }
  {
    MutexLock g(db->index_mu_);
    db->materials_by_name_[name_str] = oid;
    db->by_state_[initial_state].insert({name_str, oid});
    db->by_class_[material_class].insert(oid);
  }
  if (txn_ != nullptr) {
    index_undo_.push_back(IndexUndo{IndexUndo::kMaterialCreated, name_str, oid,
                                    material_class, initial_state,
                                    kInvalidState});
  }
  ++stats_.materials_created;
  return oid;
}

Result<MaterialRecord> LabBase::Session::ReadMaterial(Oid material) {
  LABFLOW_ASSIGN_OR_RETURN(std::string data,
                           db_->mgr_->Read(txn_, ToStorage(material)));
  LABFLOW_ASSIGN_OR_RETURN(RecordKind kind, PeekRecordKind(data));
  if (kind != RecordKind::kMaterial) {
    return Status::InvalidArgument("oid is not a material");
  }
  return MaterialRecord::Decode(data);
}

Status LabBase::Session::WriteMaterial(Oid material,
                                       const MaterialRecord& rec) {
  return db_->mgr_->Update(txn_, ToStorage(material), rec.Encode());
}

void LabBase::Session::IndexStateChange(Oid material, const std::string& name,
                                        StateId from, StateId to) {
  if (from == to) return;
  {
    MutexLock g(db_->index_mu_);
    db_->by_state_[from].erase({name, material});
    db_->by_state_[to].insert({name, material});
  }
  if (txn_ != nullptr) {
    index_undo_.push_back(IndexUndo{IndexUndo::kStateChanged, name, material,
                                    kInvalidClass, from, to});
  }
}

Result<Oid> LabBase::Session::RecordStep(ClassId step_class, Timestamp time,
                                         const std::vector<StepEffect>& effects) {
  LabBase* db = db_;
  if (!db->schema_.IsStepClass(step_class)) {
    return Status::InvalidArgument("not a step class");
  }
  LABFLOW_ASSIGN_OR_RETURN(uint32_t version,
                           db->schema_.LatestVersion(step_class));
  LABFLOW_ASSIGN_OR_RETURN(std::vector<AttrId> version_attrs,
                           db->schema_.VersionAttrs(step_class, version));

  // Build the sm_step instance, validating tags against the version's
  // attribute set (this is what binds the instance to the version).
  StepRecord step;
  step.class_id = step_class;
  step.version = version;
  step.time = time;
  step.materials.reserve(effects.size());
  for (const StepEffect& effect : effects) {
    for (const StepTag& tag : effect.tags) {
      if (!std::binary_search(version_attrs.begin(), version_attrs.end(),
                              tag.attr)) {
        LABFLOW_ASSIGN_OR_RETURN(std::string attr_name,
                                 db->schema_.AttributeName(tag.attr));
        return Status::InvalidArgument(
            "attribute '" + attr_name +
            "' is not in the current version of the step class");
      }
    }
    StepMaterialEntry entry;
    entry.material = ToStorage(effect.material);
    entry.tags = effect.tags;
    entry.new_state = effect.new_state;
    step.materials.push_back(std::move(entry));
  }

  AllocHint hint;
  hint.segment = db->cold_segment_;
  if (db->options_.cluster_steps_near_material && !effects.empty()) {
    hint.cluster_near = ToStorage(effects[0].material);
  }
  LABFLOW_ASSIGN_OR_RETURN(ObjectId step_id,
                           db->mgr_->Allocate(txn_, step.Encode(), hint));

  // Apply the step to each material: involves list, attribute index,
  // state — honouring valid-time ordering throughout.
  for (const StepEffect& effect : effects) {
    LABFLOW_ASSIGN_OR_RETURN(MaterialRecord mat, ReadMaterial(effect.material));
    mat.involves.push_back(step_id);
    if (db->options_.use_most_recent_index) {
      for (const StepTag& tag : effect.tags) {
        AttrIndexEntry* entry = mat.FindOrAddAttr(tag.attr);
        HistoryRef ref{step_id, time};
        auto pos = std::upper_bound(
            entry->history.begin(), entry->history.end(), ref,
            [](const HistoryRef& a, const HistoryRef& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.step < b.step;
            });
        entry->history.insert(pos, ref);
        if (entry->history.empty() || time >= entry->most_recent_time) {
          entry->most_recent = tag.value;
          entry->most_recent_time = time;
        }
      }
    }
    StateId old_state = mat.state;
    if (effect.new_state != kInvalidState && time >= mat.state_time) {
      mat.state = effect.new_state;
      mat.state_time = time;
    }
    LABFLOW_RETURN_IF_ERROR(WriteMaterial(effect.material, mat));
    IndexStateChange(effect.material, mat.name, old_state, mat.state);
  }

  ++stats_.steps_recorded;
  return ToUser(step_id);
}

// ---- Session: queries -------------------------------------------------------

Result<Value> LabBase::Session::MostRecent(Oid material, AttrId attr) {
  ++stats_.most_recent_queries;
  if (!db_->options_.use_most_recent_index) {
    return MostRecentByScan(material, attr);
  }
  LABFLOW_ASSIGN_OR_RETURN(MaterialRecord rec, ReadMaterial(material));
  const AttrIndexEntry* entry = rec.FindAttr(attr);
  if (entry == nullptr || entry->history.empty()) {
    return Status::NotFound("no value recorded for attribute");
  }
  return entry->most_recent;
}

Result<Value> LabBase::Session::MostRecent(Oid material,
                                           std::string_view attr_name) {
  LABFLOW_ASSIGN_OR_RETURN(AttrId attr,
                           db_->schema_.AttributeByName(attr_name));
  return MostRecent(material, attr);
}

Result<Value> LabBase::Session::MostRecentByScan(Oid material, AttrId attr) {
  LABFLOW_ASSIGN_OR_RETURN(MaterialRecord rec, ReadMaterial(material));
  bool found = false;
  Timestamp best_time(INT64_MIN);
  Value best;
  for (ObjectId step_id : rec.involves) {
    LABFLOW_ASSIGN_OR_RETURN(std::string data, db_->mgr_->Read(txn_, step_id));
    LABFLOW_ASSIGN_OR_RETURN(StepRecord step, StepRecord::Decode(data));
    const StepMaterialEntry* entry = step.FindMaterial(ToStorage(material));
    if (entry == nullptr) continue;
    for (const StepTag& tag : entry->tags) {
      if (tag.attr == attr && step.time >= best_time) {
        best_time = step.time;
        best = tag.value;
        found = true;
      }
    }
  }
  if (!found) return Status::NotFound("no value recorded for attribute");
  return best;
}

Result<std::vector<HistoryEntry>> LabBase::Session::History(Oid material,
                                                            AttrId attr) {
  ++stats_.history_queries;
  if (!db_->options_.use_most_recent_index) {
    return HistoryByScan(material, attr);
  }
  LABFLOW_ASSIGN_OR_RETURN(MaterialRecord rec, ReadMaterial(material));
  const AttrIndexEntry* entry = rec.FindAttr(attr);
  std::vector<HistoryEntry> out;
  if (entry == nullptr) return out;
  out.reserve(entry->history.size());
  for (const HistoryRef& ref : entry->history) {
    LABFLOW_ASSIGN_OR_RETURN(std::string data, db_->mgr_->Read(txn_, ref.step));
    LABFLOW_ASSIGN_OR_RETURN(StepRecord step, StepRecord::Decode(data));
    const StepMaterialEntry* sm = step.FindMaterial(ToStorage(material));
    if (sm == nullptr) continue;
    for (const StepTag& tag : sm->tags) {
      if (tag.attr == attr) {
        out.push_back(HistoryEntry{ref.time, tag.value, ToUser(ref.step)});
      }
    }
  }
  return out;
}

Result<std::vector<HistoryEntry>> LabBase::Session::HistoryByScan(Oid material,
                                                                  AttrId attr) {
  LABFLOW_ASSIGN_OR_RETURN(MaterialRecord rec, ReadMaterial(material));
  std::vector<HistoryEntry> out;
  for (ObjectId step_id : rec.involves) {
    LABFLOW_ASSIGN_OR_RETURN(std::string data, db_->mgr_->Read(txn_, step_id));
    LABFLOW_ASSIGN_OR_RETURN(StepRecord step, StepRecord::Decode(data));
    const StepMaterialEntry* entry = step.FindMaterial(ToStorage(material));
    if (entry == nullptr) continue;
    for (const StepTag& tag : entry->tags) {
      if (tag.attr == attr) {
        out.push_back(HistoryEntry{step.time, tag.value, ToUser(step_id)});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const HistoryEntry& a, const HistoryEntry& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.step < b.step;
            });
  return out;
}

Result<Value> LabBase::Session::ValueAsOf(Oid material, AttrId attr,
                                          Timestamp at) {
  ++stats_.history_queries;
  LABFLOW_ASSIGN_OR_RETURN(std::vector<HistoryEntry> hist,
                           History(material, attr));
  const HistoryEntry* best = nullptr;
  for (const HistoryEntry& e : hist) {
    if (e.time <= at) best = &e;  // history is ascending; keep the latest
  }
  if (best == nullptr) {
    return Status::NotFound("no value recorded at or before that time");
  }
  return best->value;
}

Result<std::vector<HistoryEntry>> LabBase::Session::HistoryBetween(
    Oid material, AttrId attr, Timestamp from, Timestamp to) {
  LABFLOW_ASSIGN_OR_RETURN(std::vector<HistoryEntry> hist,
                           History(material, attr));
  std::vector<HistoryEntry> out;
  for (HistoryEntry& e : hist) {
    if (e.time >= from && e.time <= to) out.push_back(std::move(e));
  }
  return out;
}

Result<MaterialInfo> LabBase::Session::GetMaterial(Oid material) {
  LABFLOW_ASSIGN_OR_RETURN(MaterialRecord rec, ReadMaterial(material));
  MaterialInfo info;
  info.id = material;
  info.class_id = rec.class_id;
  info.name = rec.name;
  info.state = rec.state;
  info.created = rec.created;
  info.attrs_present.reserve(rec.attrs.size());
  for (const AttrIndexEntry& entry : rec.attrs) {
    if (!entry.history.empty()) info.attrs_present.push_back(entry.attr);
  }
  return info;
}

Result<StepInfo> LabBase::Session::GetStep(Oid step) {
  LABFLOW_ASSIGN_OR_RETURN(std::string data,
                           db_->mgr_->Read(txn_, ToStorage(step)));
  LABFLOW_ASSIGN_OR_RETURN(RecordKind kind, PeekRecordKind(data));
  if (kind != RecordKind::kStep) {
    return Status::InvalidArgument("oid is not a step");
  }
  LABFLOW_ASSIGN_OR_RETURN(StepRecord rec, StepRecord::Decode(data));
  StepInfo info;
  info.id = step;
  info.class_id = rec.class_id;
  info.version = rec.version;
  info.time = rec.time;
  info.materials = std::move(rec.materials);
  return info;
}

Result<Oid> LabBase::Session::FindMaterialByName(std::string_view name) {
  if (db_->name_dir_ != nullptr) {
    LABFLOW_ASSIGN_OR_RETURN(ObjectId id, db_->name_dir_->Lookup(name, txn_));
    return ToUser(id);
  }
  MutexLock g(db_->index_mu_);
  auto it = db_->materials_by_name_.find(name);
  // A null placeholder is a concurrent CreateMaterial's name reservation:
  // the material does not exist yet.
  if (it == db_->materials_by_name_.end() || it->second.IsNull()) {
    return Status::NotFound("no material named " + std::string(name));
  }
  return it->second;
}

Result<StateId> LabBase::Session::CurrentState(Oid material) {
  ++stats_.state_queries;
  LABFLOW_ASSIGN_OR_RETURN(MaterialRecord rec, ReadMaterial(material));
  return rec.state;
}

Result<std::vector<Oid>> LabBase::Session::MaterialsInState(StateId state) {
  ++stats_.state_queries;
  MutexLock g(db_->index_mu_);
  auto it = db_->by_state_.find(state);
  if (it == db_->by_state_.end()) return std::vector<Oid>{};
  std::vector<Oid> out;
  out.reserve(it->second.size());
  for (const auto& [name, oid] : it->second) out.push_back(oid);
  return out;
}

Result<int64_t> LabBase::Session::CountInState(StateId state) {
  ++stats_.state_queries;
  MutexLock g(db_->index_mu_);
  auto it = db_->by_state_.find(state);
  return it == db_->by_state_.end() ? 0
                                    : static_cast<int64_t>(it->second.size());
}

Result<std::vector<Oid>> LabBase::Session::MaterialsOfClass(
    ClassId material_class) {
  MutexLock g(db_->index_mu_);
  auto it = db_->by_class_.find(material_class);
  if (it == db_->by_class_.end()) return std::vector<Oid>{};
  return std::vector<Oid>(it->second.begin(), it->second.end());
}

Result<std::vector<Oid>> LabBase::Session::ListSteps() {
  // Storage scan, not an index: the audit trail has no in-memory index, and
  // scanning through txn_ means a snapshot session enumerates exactly the
  // steps committed at its snapshot.
  std::vector<Oid> steps;
  LABFLOW_RETURN_IF_ERROR(db_->mgr_->ScanAll(
      txn_, [&steps](ObjectId id, std::string_view data) -> Status {
        auto kind_or = PeekRecordKind(data);
        if (kind_or.ok() && kind_or.value() == RecordKind::kStep) {
          steps.push_back(ToUser(id));
        }
        return Status::OK();
      }));
  return steps;
}

// ---- Session: sets ----------------------------------------------------------

Result<Oid> LabBase::Session::CreateSet(std::string_view name) {
  LabBase* db = db_;
  ++stats_.set_operations;
  {
    MutexLock g(db->index_mu_);
    if (db->sets_by_name_.count(name)) {
      return Status::AlreadyExists("set exists: " + std::string(name));
    }
  }
  SetRecord rec;
  rec.name = std::string(name);
  AllocHint hint;
  hint.segment = db->hot_segment_;
  LABFLOW_ASSIGN_OR_RETURN(ObjectId id,
                           db->mgr_->Allocate(txn_, rec.Encode(), hint));
  {
    MutexLock g(db->index_mu_);
    db->sets_by_name_[rec.name] = ToUser(id);
  }
  db->root_.sets.emplace_back(rec.name, id);
  TouchCatalog();
  LABFLOW_RETURN_IF_ERROR(db->PersistRoot(txn_));
  return ToUser(id);
}

Status LabBase::Session::AddToSet(Oid set, Oid material) {
  ++stats_.set_operations;
  LABFLOW_ASSIGN_OR_RETURN(std::string data,
                           db_->mgr_->Read(txn_, ToStorage(set)));
  LABFLOW_ASSIGN_OR_RETURN(SetRecord rec, SetRecord::Decode(data));
  rec.members.push_back(ToStorage(material));
  return db_->mgr_->Update(txn_, ToStorage(set), rec.Encode());
}

Status LabBase::Session::RemoveFromSet(Oid set, Oid material) {
  ++stats_.set_operations;
  LABFLOW_ASSIGN_OR_RETURN(std::string data,
                           db_->mgr_->Read(txn_, ToStorage(set)));
  LABFLOW_ASSIGN_OR_RETURN(SetRecord rec, SetRecord::Decode(data));
  auto it = std::find(rec.members.begin(), rec.members.end(),
                      ToStorage(material));
  if (it == rec.members.end()) {
    return Status::NotFound("material not in set");
  }
  rec.members.erase(it);
  return db_->mgr_->Update(txn_, ToStorage(set), rec.Encode());
}

Result<std::vector<Oid>> LabBase::Session::SetMembers(Oid set) {
  ++stats_.set_operations;
  LABFLOW_ASSIGN_OR_RETURN(std::string data,
                           db_->mgr_->Read(txn_, ToStorage(set)));
  LABFLOW_ASSIGN_OR_RETURN(SetRecord rec, SetRecord::Decode(data));
  std::vector<Oid> out;
  out.reserve(rec.members.size());
  for (ObjectId m : rec.members) out.push_back(ToUser(m));
  return out;
}

Result<Oid> LabBase::Session::FindSetByName(std::string_view name) {
  MutexLock g(db_->index_mu_);
  auto it = db_->sets_by_name_.find(name);
  if (it == db_->sets_by_name_.end()) {
    return Status::NotFound("no set named " + std::string(name));
  }
  return it->second;
}

}  // namespace labflow::labbase
