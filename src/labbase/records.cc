#include "labbase/records.h"

#include <algorithm>

#include "common/codec.h"
#include "common/status_macros.h"

namespace labflow::labbase {

Result<RecordKind> PeekRecordKind(std::string_view data) {
  if (data.empty()) return Status::Corruption("empty record");
  uint8_t kind = static_cast<uint8_t>(data[0]);
  switch (kind) {
    case 1:
      return RecordKind::kMaterial;
    case 2:
      return RecordKind::kStep;
    case 3:
      return RecordKind::kMaterialSet;
    case 5:
      return RecordKind::kRoot;
    default:
      return Status::Corruption("unknown record kind " + std::to_string(kind));
  }
}

// ---- MaterialRecord ---------------------------------------------------------

std::string MaterialRecord::Encode() const {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(RecordKind::kMaterial));
  enc.PutU32(class_id);
  enc.PutString(name);
  enc.PutU32(state);
  enc.PutI64(state_time.micros);
  enc.PutI64(created.micros);
  enc.PutU32(static_cast<uint32_t>(attrs.size()));
  for (const AttrIndexEntry& entry : attrs) {
    enc.PutU32(entry.attr);
    enc.PutValue(entry.most_recent);
    enc.PutI64(entry.most_recent_time.micros);
    enc.PutU32(static_cast<uint32_t>(entry.history.size()));
    for (const HistoryRef& ref : entry.history) {
      enc.PutU64(ref.step.raw);
      enc.PutI64(ref.time.micros);
    }
  }
  enc.PutU32(static_cast<uint32_t>(involves.size()));
  for (storage::ObjectId step : involves) enc.PutU64(step.raw);
  return enc.Release();
}

Result<MaterialRecord> MaterialRecord::Decode(std::string_view data) {
  Decoder dec(data);
  LABFLOW_ASSIGN_OR_RETURN(uint8_t kind, dec.GetU8());
  if (kind != static_cast<uint8_t>(RecordKind::kMaterial)) {
    return Status::Corruption("not a material record");
  }
  MaterialRecord rec;
  LABFLOW_ASSIGN_OR_RETURN(rec.class_id, dec.GetU32());
  LABFLOW_ASSIGN_OR_RETURN(rec.name, dec.GetString());
  LABFLOW_ASSIGN_OR_RETURN(rec.state, dec.GetU32());
  LABFLOW_ASSIGN_OR_RETURN(int64_t state_us, dec.GetI64());
  rec.state_time = Timestamp(state_us);
  LABFLOW_ASSIGN_OR_RETURN(int64_t created_us, dec.GetI64());
  rec.created = Timestamp(created_us);
  LABFLOW_ASSIGN_OR_RETURN(uint32_t n_attrs, dec.GetU32());
  rec.attrs.reserve(n_attrs);
  for (uint32_t i = 0; i < n_attrs; ++i) {
    AttrIndexEntry entry;
    LABFLOW_ASSIGN_OR_RETURN(entry.attr, dec.GetU32());
    LABFLOW_ASSIGN_OR_RETURN(entry.most_recent, dec.GetValue());
    LABFLOW_ASSIGN_OR_RETURN(int64_t mrt, dec.GetI64());
    entry.most_recent_time = Timestamp(mrt);
    LABFLOW_ASSIGN_OR_RETURN(uint32_t n_hist, dec.GetU32());
    entry.history.reserve(n_hist);
    for (uint32_t h = 0; h < n_hist; ++h) {
      HistoryRef ref;
      LABFLOW_ASSIGN_OR_RETURN(uint64_t raw, dec.GetU64());
      ref.step = storage::ObjectId(raw);
      LABFLOW_ASSIGN_OR_RETURN(int64_t t, dec.GetI64());
      ref.time = Timestamp(t);
      entry.history.push_back(ref);
    }
    rec.attrs.push_back(std::move(entry));
  }
  LABFLOW_ASSIGN_OR_RETURN(uint32_t n_involves, dec.GetU32());
  rec.involves.reserve(n_involves);
  for (uint32_t i = 0; i < n_involves; ++i) {
    LABFLOW_ASSIGN_OR_RETURN(uint64_t raw, dec.GetU64());
    rec.involves.push_back(storage::ObjectId(raw));
  }
  return rec;
}

const AttrIndexEntry* MaterialRecord::FindAttr(AttrId attr) const {
  auto it = std::lower_bound(
      attrs.begin(), attrs.end(), attr,
      [](const AttrIndexEntry& e, AttrId a) { return e.attr < a; });
  if (it == attrs.end() || it->attr != attr) return nullptr;
  return &*it;
}

AttrIndexEntry* MaterialRecord::FindAttr(AttrId attr) {
  return const_cast<AttrIndexEntry*>(
      static_cast<const MaterialRecord*>(this)->FindAttr(attr));
}

AttrIndexEntry* MaterialRecord::FindOrAddAttr(AttrId attr) {
  auto it = std::lower_bound(
      attrs.begin(), attrs.end(), attr,
      [](const AttrIndexEntry& e, AttrId a) { return e.attr < a; });
  if (it != attrs.end() && it->attr == attr) return &*it;
  AttrIndexEntry entry;
  entry.attr = attr;
  entry.most_recent_time = Timestamp(INT64_MIN);
  it = attrs.insert(it, std::move(entry));
  return &*it;
}

// ---- StepRecord -------------------------------------------------------------

std::string StepRecord::Encode() const {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(RecordKind::kStep));
  enc.PutU32(class_id);
  enc.PutU32(version);
  enc.PutI64(time.micros);
  enc.PutU32(static_cast<uint32_t>(materials.size()));
  for (const StepMaterialEntry& entry : materials) {
    enc.PutU64(entry.material.raw);
    enc.PutU32(entry.new_state);
    enc.PutU32(static_cast<uint32_t>(entry.tags.size()));
    for (const StepTag& tag : entry.tags) {
      enc.PutU32(tag.attr);
      enc.PutValue(tag.value);
    }
  }
  return enc.Release();
}

Result<StepRecord> StepRecord::Decode(std::string_view data) {
  Decoder dec(data);
  LABFLOW_ASSIGN_OR_RETURN(uint8_t kind, dec.GetU8());
  if (kind != static_cast<uint8_t>(RecordKind::kStep)) {
    return Status::Corruption("not a step record");
  }
  StepRecord rec;
  LABFLOW_ASSIGN_OR_RETURN(rec.class_id, dec.GetU32());
  LABFLOW_ASSIGN_OR_RETURN(rec.version, dec.GetU32());
  LABFLOW_ASSIGN_OR_RETURN(int64_t us, dec.GetI64());
  rec.time = Timestamp(us);
  LABFLOW_ASSIGN_OR_RETURN(uint32_t n_materials, dec.GetU32());
  rec.materials.reserve(n_materials);
  for (uint32_t i = 0; i < n_materials; ++i) {
    StepMaterialEntry entry;
    LABFLOW_ASSIGN_OR_RETURN(uint64_t raw, dec.GetU64());
    entry.material = storage::ObjectId(raw);
    LABFLOW_ASSIGN_OR_RETURN(entry.new_state, dec.GetU32());
    LABFLOW_ASSIGN_OR_RETURN(uint32_t n_tags, dec.GetU32());
    entry.tags.reserve(n_tags);
    for (uint32_t t = 0; t < n_tags; ++t) {
      StepTag tag;
      LABFLOW_ASSIGN_OR_RETURN(tag.attr, dec.GetU32());
      LABFLOW_ASSIGN_OR_RETURN(tag.value, dec.GetValue());
      entry.tags.push_back(std::move(tag));
    }
    rec.materials.push_back(std::move(entry));
  }
  return rec;
}

const StepMaterialEntry* StepRecord::FindMaterial(
    storage::ObjectId material) const {
  for (const StepMaterialEntry& entry : materials) {
    if (entry.material == material) return &entry;
  }
  return nullptr;
}

// ---- SetRecord --------------------------------------------------------------

std::string SetRecord::Encode() const {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(RecordKind::kMaterialSet));
  enc.PutString(name);
  enc.PutU32(static_cast<uint32_t>(members.size()));
  for (storage::ObjectId m : members) enc.PutU64(m.raw);
  return enc.Release();
}

Result<SetRecord> SetRecord::Decode(std::string_view data) {
  Decoder dec(data);
  LABFLOW_ASSIGN_OR_RETURN(uint8_t kind, dec.GetU8());
  if (kind != static_cast<uint8_t>(RecordKind::kMaterialSet)) {
    return Status::Corruption("not a set record");
  }
  SetRecord rec;
  LABFLOW_ASSIGN_OR_RETURN(rec.name, dec.GetString());
  LABFLOW_ASSIGN_OR_RETURN(uint32_t n, dec.GetU32());
  rec.members.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    LABFLOW_ASSIGN_OR_RETURN(uint64_t raw, dec.GetU64());
    rec.members.push_back(storage::ObjectId(raw));
  }
  return rec;
}

// ---- RootRecord -------------------------------------------------------------

std::string RootRecord::Encode() const {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(RecordKind::kRoot));
  enc.PutString(schema_blob);
  enc.PutU32(static_cast<uint32_t>(sets.size()));
  for (const auto& [name, id] : sets) {
    enc.PutString(name);
    enc.PutU64(id.raw);
  }
  enc.PutU32(hot_segment);
  enc.PutU32(cold_segment);
  enc.PutU64(name_dir.raw);
  return enc.Release();
}

Result<RootRecord> RootRecord::Decode(std::string_view data) {
  Decoder dec(data);
  LABFLOW_ASSIGN_OR_RETURN(uint8_t kind, dec.GetU8());
  if (kind != static_cast<uint8_t>(RecordKind::kRoot)) {
    return Status::Corruption("not a root record");
  }
  RootRecord rec;
  LABFLOW_ASSIGN_OR_RETURN(rec.schema_blob, dec.GetString());
  LABFLOW_ASSIGN_OR_RETURN(uint32_t n, dec.GetU32());
  rec.sets.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    LABFLOW_ASSIGN_OR_RETURN(std::string name, dec.GetString());
    LABFLOW_ASSIGN_OR_RETURN(uint64_t raw, dec.GetU64());
    rec.sets.emplace_back(std::move(name), storage::ObjectId(raw));
  }
  LABFLOW_ASSIGN_OR_RETURN(uint32_t hot, dec.GetU32());
  LABFLOW_ASSIGN_OR_RETURN(uint32_t cold, dec.GetU32());
  rec.hot_segment = static_cast<uint16_t>(hot);
  rec.cold_segment = static_cast<uint16_t>(cold);
  LABFLOW_ASSIGN_OR_RETURN(uint64_t name_dir_raw, dec.GetU64());
  rec.name_dir = storage::ObjectId(name_dir_raw);
  return rec;
}

}  // namespace labflow::labbase
