#ifndef LABFLOW_LABBASE_SESSION_IFACE_H_
#define LABFLOW_LABBASE_SESSION_IFACE_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/value.h"
#include "labbase/records.h"
#include "labbase/schema.h"

namespace labflow::labbase {

/// One event in a material's attribute history, ordered by valid time.
struct HistoryEntry {
  Timestamp time;
  Value value;
  Oid step;
};

/// Snapshot of a material's identity and workflow position.
struct MaterialInfo {
  Oid id;
  ClassId class_id = kInvalidClass;
  std::string name;
  StateId state = kInvalidState;
  Timestamp created;
  std::vector<AttrId> attrs_present;
};

/// Snapshot of a step instance (audit-trail entry).
struct StepInfo {
  Oid id;
  ClassId class_id = kInvalidClass;
  uint32_t version = 0;
  Timestamp time;
  std::vector<StepMaterialEntry> materials;
};

/// The per-material effect passed to RecordStep.
struct StepEffect {
  Oid material;
  std::vector<StepTag> tags;
  /// Target workflow state, or kInvalidState to leave the state alone.
  StateId new_state = kInvalidState;
};

/// Wrapper-level activity counters. One instance per Session: each client's
/// activity is accounted where it happened, with no cross-thread sharing.
struct LabBaseStats {
  uint64_t materials_created = 0;
  uint64_t steps_recorded = 0;
  uint64_t most_recent_queries = 0;
  uint64_t history_queries = 0;
  uint64_t state_queries = 0;
  uint64_t set_operations = 0;
  /// Transaction attempts re-run by Session::RunTransaction after a
  /// deadlock abort (invisible to the caller; counted here).
  uint64_t txn_retries = 0;

  LabBaseStats& operator+=(const LabBaseStats& o) {
    materials_created += o.materials_created;
    steps_recorded += o.steps_recorded;
    most_recent_queries += o.most_recent_queries;
    history_queries += o.history_queries;
    state_queries += o.state_queries;
    set_operations += o.set_operations;
    txn_retries += o.txn_retries;
    return *this;
  }
};

/// The abstract client session: the one API through which the driver, the
/// benches and the examples talk to a workflow database — whether the
/// database lives in this process (labbase::LabBase::Session) or behind a
/// socket (net::RemoteSession talking to `labflowd`). Extracting this seam
/// is what lets the same workload run in-process and remote and compare
/// result checksums (the network layer must not change any answer).
///
/// Semantics are those documented on LabBase::Session; implementations must
/// preserve them bit-for-bit. Threading contract is also inherited: one
/// thread at a time per session, many sessions concurrently.
class SessionIface {
 public:
  virtual ~SessionIface() = default;

  // ---- Transactions --------------------------------------------------------

  virtual Status Begin() = 0;
  /// Begins a read-only snapshot transaction: every read through this
  /// session observes one consistent committed state of the database as of
  /// the call, and on MVCC-capable managers takes no page locks at all (a
  /// snapshot reader can neither block a writer nor deadlock against one).
  /// On managers without snapshot support this degrades to Begin(). Writes
  /// inside the transaction are rejected. End with Commit() or Abort() as
  /// usual (equivalent for a snapshot: both just release it).
  virtual Status BeginReadOnly() = 0;
  virtual Status Commit() = 0;
  virtual Status Abort() = 0;
  virtual bool in_transaction() const = 0;

  /// Runs `body` inside a transaction: Begin, body, Commit; a deadlock
  /// abort re-runs the whole body (with backoff) until it commits or the
  /// retry budget is exhausted. `body` must be restartable: all its effects
  /// must go through this session.
  virtual Status RunTransaction(const std::function<Status()>& body) = 0;

  // ---- Schema --------------------------------------------------------------

  virtual Result<ClassId> DefineMaterialClass(std::string_view name) = 0;
  virtual Result<ClassId> DefineStepClass(
      std::string_view name, const std::vector<std::string>& attr_names) = 0;
  virtual Result<StateId> DefineState(std::string_view name) = 0;
  /// The current user schema. For remote sessions this is a client-side
  /// cache, refreshed on open and after every DDL call through this
  /// session (DDL is single-session by contract, so the cache cannot go
  /// stale underneath its own writer).
  virtual const Schema& schema() const = 0;

  // ---- Workflow tracking ---------------------------------------------------

  virtual Result<Oid> CreateMaterial(ClassId material_class,
                                     std::string_view name,
                                     StateId initial_state,
                                     Timestamp created) = 0;
  virtual Result<Oid> RecordStep(ClassId step_class, Timestamp time,
                                 const std::vector<StepEffect>& effects) = 0;

  // ---- Queries -------------------------------------------------------------

  virtual Result<Value> MostRecent(Oid material, AttrId attr) = 0;
  virtual Result<Value> MostRecent(Oid material, std::string_view attr_name) = 0;
  virtual Result<std::vector<HistoryEntry>> History(Oid material,
                                                    AttrId attr) = 0;
  virtual Result<Value> ValueAsOf(Oid material, AttrId attr, Timestamp at) = 0;
  virtual Result<std::vector<HistoryEntry>> HistoryBetween(Oid material,
                                                           AttrId attr,
                                                           Timestamp from,
                                                           Timestamp to) = 0;
  virtual Result<MaterialInfo> GetMaterial(Oid material) = 0;
  virtual Result<StepInfo> GetStep(Oid step) = 0;
  virtual Result<Oid> FindMaterialByName(std::string_view name) = 0;
  virtual Result<StateId> CurrentState(Oid material) = 0;
  virtual Result<std::vector<Oid>> MaterialsInState(StateId state) = 0;
  virtual Result<int64_t> CountInState(StateId state) = 0;
  virtual Result<std::vector<Oid>> MaterialsOfClass(ClassId material_class) = 0;
  /// Every step instance in the database, in storage order. Audit-trail
  /// enumeration for the deductive layer's unbound step/3 goal; runs inside
  /// the session's transaction (so a snapshot session enumerates the steps
  /// visible at its snapshot).
  virtual Result<std::vector<Oid>> ListSteps() = 0;

  // ---- Material sets -------------------------------------------------------

  virtual Result<Oid> CreateSet(std::string_view name) = 0;
  virtual Status AddToSet(Oid set, Oid material) = 0;
  virtual Status RemoveFromSet(Oid set, Oid material) = 0;
  virtual Result<std::vector<Oid>> SetMembers(Oid set) = 0;
  virtual Result<Oid> FindSetByName(std::string_view name) = 0;

  // ---- Misc ----------------------------------------------------------------

  virtual Status Checkpoint() = 0;
  virtual const LabBaseStats& stats() const = 0;
};

}  // namespace labflow::labbase

#endif  // LABFLOW_LABBASE_SESSION_IFACE_H_
