#include "labbase/schema.h"

#include <algorithm>

#include "common/codec.h"
#include "common/status_macros.h"

namespace labflow::labbase {

Result<ClassId> Schema::DefineMaterialClass(std::string_view name) {
  if (class_by_name_.count(name)) {
    return Status::AlreadyExists("class exists: " + std::string(name));
  }
  ClassId id = static_cast<ClassId>(classes_.size());
  classes_.push_back(ClassInfo{std::string(name), /*is_step=*/false, {}});
  class_by_name_.emplace(std::string(name), id);
  return id;
}

Result<ClassId> Schema::MaterialClassByName(std::string_view name) const {
  auto it = class_by_name_.find(name);
  if (it == class_by_name_.end() || classes_[it->second].is_step) {
    return Status::NotFound("no material class: " + std::string(name));
  }
  return it->second;
}

bool Schema::IsMaterialClass(ClassId id) const {
  return id < classes_.size() && !classes_[id].is_step;
}

Result<ClassId> Schema::DefineStepClass(
    std::string_view name, const std::vector<std::string>& attr_names) {
  std::vector<AttrId> attrs;
  attrs.reserve(attr_names.size());
  for (const std::string& attr : attr_names) {
    attrs.push_back(InternAttribute(attr));
  }
  std::sort(attrs.begin(), attrs.end());
  attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());

  auto it = class_by_name_.find(name);
  if (it != class_by_name_.end()) {
    ClassInfo& info = classes_[it->second];
    if (!info.is_step) {
      return Status::InvalidArgument("not a step class: " + std::string(name));
    }
    // Versions are identified by their attribute set: an identical set is
    // the same version, a different one evolves the class.
    for (const StepClassVersion& v : info.versions) {
      if (v.result_attrs == attrs) return it->second;
    }
    StepClassVersion v;
    v.version = static_cast<uint32_t>(info.versions.size());
    v.result_attrs = std::move(attrs);
    info.versions.push_back(std::move(v));
    return it->second;
  }

  ClassId id = static_cast<ClassId>(classes_.size());
  ClassInfo info;
  info.name = std::string(name);
  info.is_step = true;
  info.versions.push_back(StepClassVersion{0, std::move(attrs)});
  classes_.push_back(std::move(info));
  class_by_name_.emplace(std::string(name), id);
  return id;
}

Result<ClassId> Schema::StepClassByName(std::string_view name) const {
  auto it = class_by_name_.find(name);
  if (it == class_by_name_.end() || !classes_[it->second].is_step) {
    return Status::NotFound("no step class: " + std::string(name));
  }
  return it->second;
}

bool Schema::IsStepClass(ClassId id) const {
  return id < classes_.size() && classes_[id].is_step;
}

Result<uint32_t> Schema::LatestVersion(ClassId step_class) const {
  if (!IsStepClass(step_class)) {
    return Status::InvalidArgument("not a step class");
  }
  return static_cast<uint32_t>(classes_[step_class].versions.size() - 1);
}

Result<std::vector<AttrId>> Schema::VersionAttrs(ClassId step_class,
                                                 uint32_t version) const {
  if (!IsStepClass(step_class)) {
    return Status::InvalidArgument("not a step class");
  }
  const ClassInfo& info = classes_[step_class];
  if (version >= info.versions.size()) {
    return Status::NotFound("no such version");
  }
  return info.versions[version].result_attrs;
}

Result<uint32_t> Schema::VersionCount(ClassId step_class) const {
  if (!IsStepClass(step_class)) {
    return Status::InvalidArgument("not a step class");
  }
  return static_cast<uint32_t>(classes_[step_class].versions.size());
}

AttrId Schema::InternAttribute(std::string_view name) {
  auto it = attr_by_name_.find(name);
  if (it != attr_by_name_.end()) return it->second;
  AttrId id = static_cast<AttrId>(attrs_.size());
  attrs_.emplace_back(name);
  attr_by_name_.emplace(std::string(name), id);
  return id;
}

Result<AttrId> Schema::AttributeByName(std::string_view name) const {
  auto it = attr_by_name_.find(name);
  if (it == attr_by_name_.end()) {
    return Status::NotFound("no attribute: " + std::string(name));
  }
  return it->second;
}

Result<std::string> Schema::AttributeName(AttrId id) const {
  if (id >= attrs_.size()) return Status::NotFound("no such attribute");
  return attrs_[id];
}

StateId Schema::InternState(std::string_view name) {
  auto it = state_by_name_.find(name);
  if (it != state_by_name_.end()) return it->second;
  StateId id = static_cast<StateId>(states_.size());
  states_.emplace_back(name);
  state_by_name_.emplace(std::string(name), id);
  return id;
}

Result<StateId> Schema::StateByName(std::string_view name) const {
  auto it = state_by_name_.find(name);
  if (it == state_by_name_.end()) {
    return Status::NotFound("no state: " + std::string(name));
  }
  return it->second;
}

Result<std::string> Schema::StateName(StateId id) const {
  if (id >= states_.size()) return Status::NotFound("no such state");
  return states_[id];
}

Result<std::string> Schema::ClassName(ClassId id) const {
  if (id >= classes_.size()) return Status::NotFound("no such class");
  return classes_[id].name;
}

Result<ClassId> Schema::ClassByName(std::string_view name) const {
  auto it = class_by_name_.find(name);
  if (it == class_by_name_.end()) {
    return Status::NotFound("no class: " + std::string(name));
  }
  return it->second;
}

std::string Schema::Encode() const {
  Encoder enc;
  enc.PutU32(static_cast<uint32_t>(classes_.size()));
  for (const ClassInfo& info : classes_) {
    enc.PutString(info.name);
    enc.PutBool(info.is_step);
    enc.PutU32(static_cast<uint32_t>(info.versions.size()));
    for (const StepClassVersion& v : info.versions) {
      enc.PutU32(v.version);
      enc.PutU32(static_cast<uint32_t>(v.result_attrs.size()));
      for (AttrId a : v.result_attrs) enc.PutU32(a);
    }
  }
  enc.PutU32(static_cast<uint32_t>(attrs_.size()));
  for (const std::string& a : attrs_) enc.PutString(a);
  enc.PutU32(static_cast<uint32_t>(states_.size()));
  for (const std::string& s : states_) enc.PutString(s);
  return enc.Release();
}

Result<Schema> Schema::Decode(std::string_view data) {
  Schema schema;
  Decoder dec(data);
  LABFLOW_ASSIGN_OR_RETURN(uint32_t n_classes, dec.GetU32());
  for (uint32_t i = 0; i < n_classes; ++i) {
    ClassInfo info;
    LABFLOW_ASSIGN_OR_RETURN(info.name, dec.GetString());
    LABFLOW_ASSIGN_OR_RETURN(info.is_step, dec.GetBool());
    LABFLOW_ASSIGN_OR_RETURN(uint32_t n_versions, dec.GetU32());
    for (uint32_t v = 0; v < n_versions; ++v) {
      StepClassVersion ver;
      LABFLOW_ASSIGN_OR_RETURN(ver.version, dec.GetU32());
      LABFLOW_ASSIGN_OR_RETURN(uint32_t n_attrs, dec.GetU32());
      for (uint32_t a = 0; a < n_attrs; ++a) {
        LABFLOW_ASSIGN_OR_RETURN(AttrId attr, dec.GetU32());
        ver.result_attrs.push_back(attr);
      }
      info.versions.push_back(std::move(ver));
    }
    schema.class_by_name_.emplace(info.name, i);
    schema.classes_.push_back(std::move(info));
  }
  LABFLOW_ASSIGN_OR_RETURN(uint32_t n_attrs, dec.GetU32());
  for (uint32_t i = 0; i < n_attrs; ++i) {
    LABFLOW_ASSIGN_OR_RETURN(std::string name, dec.GetString());
    schema.attr_by_name_.emplace(name, i);
    schema.attrs_.push_back(std::move(name));
  }
  LABFLOW_ASSIGN_OR_RETURN(uint32_t n_states, dec.GetU32());
  for (uint32_t i = 0; i < n_states; ++i) {
    LABFLOW_ASSIGN_OR_RETURN(std::string name, dec.GetString());
    schema.state_by_name_.emplace(name, i);
    schema.states_.push_back(std::move(name));
  }
  return schema;
}

bool operator==(const Schema& a, const Schema& b) {
  if (a.attrs_ != b.attrs_ || a.states_ != b.states_) return false;
  if (a.classes_.size() != b.classes_.size()) return false;
  for (size_t i = 0; i < a.classes_.size(); ++i) {
    const auto& ca = a.classes_[i];
    const auto& cb = b.classes_[i];
    if (ca.name != cb.name || ca.is_step != cb.is_step) return false;
    if (ca.versions.size() != cb.versions.size()) return false;
    for (size_t v = 0; v < ca.versions.size(); ++v) {
      if (ca.versions[v].version != cb.versions[v].version ||
          ca.versions[v].result_attrs != cb.versions[v].result_attrs) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace labflow::labbase
