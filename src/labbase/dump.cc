#include "labbase/dump.h"
#include "common/status_macros.h"

namespace labflow::labbase {

Status DumpSummary(LabBase::Session* db, std::ostream& os) {
  const Schema& schema = db->schema();
  os << "=== LabBase database summary ===\n";

  os << "material classes:\n";
  for (ClassId c = 0; c < schema.class_count(); ++c) {
    if (!schema.IsMaterialClass(c)) continue;
    LABFLOW_ASSIGN_OR_RETURN(std::string name, schema.ClassName(c));
    LABFLOW_ASSIGN_OR_RETURN(std::vector<Oid> members, db->MaterialsOfClass(c));
    os << "  " << name << ": " << members.size() << " instance(s)\n";
  }

  os << "step classes:\n";
  for (ClassId c = 0; c < schema.class_count(); ++c) {
    if (!schema.IsStepClass(c)) continue;
    LABFLOW_ASSIGN_OR_RETURN(std::string name, schema.ClassName(c));
    LABFLOW_ASSIGN_OR_RETURN(uint32_t versions, schema.VersionCount(c));
    LABFLOW_ASSIGN_OR_RETURN(uint32_t latest, schema.LatestVersion(c));
    LABFLOW_ASSIGN_OR_RETURN(std::vector<AttrId> attrs,
                             schema.VersionAttrs(c, latest));
    os << "  " << name << " (v" << latest << ", " << versions
       << " version(s)): ";
    for (size_t i = 0; i < attrs.size(); ++i) {
      if (i > 0) os << ", ";
      LABFLOW_ASSIGN_OR_RETURN(std::string attr, schema.AttributeName(attrs[i]));
      os << attr;
    }
    os << "\n";
  }

  os << "states (non-empty):\n";
  for (StateId s = 0; s < schema.state_count(); ++s) {
    LABFLOW_ASSIGN_OR_RETURN(int64_t n, db->CountInState(s));
    if (n == 0) continue;
    LABFLOW_ASSIGN_OR_RETURN(std::string name, schema.StateName(s));
    os << "  " << name << ": " << n << "\n";
  }

  const LabBaseStats& ls = db->stats();
  os << "activity: " << ls.materials_created << " materials created, "
     << ls.steps_recorded << " steps recorded\n";
  storage::StorageStats ss = db->storage()->stats();
  os << "storage (" << db->storage()->name()
     << "): " << ss.db_size_bytes << " bytes, " << ss.live_objects
     << " objects, " << ss.disk_reads << " reads, " << ss.disk_writes
     << " writes\n";
  return Status::OK();
}

Status DumpMaterialAudit(LabBase::Session* db, Oid material, std::ostream& os) {
  const Schema& schema = db->schema();
  LABFLOW_ASSIGN_OR_RETURN(MaterialInfo info, db->GetMaterial(material));
  LABFLOW_ASSIGN_OR_RETURN(std::string class_name,
                           schema.ClassName(info.class_id));
  LABFLOW_ASSIGN_OR_RETURN(std::string state_name,
                           schema.StateName(info.state));
  os << "=== audit: " << info.name << " (#" << material.raw << ", "
     << class_name << ") ===\n"
     << "created @" << info.created.micros << ", state: " << state_name
     << "\n";

  os << "current attribute values (most recent by valid time):\n";
  for (AttrId attr : info.attrs_present) {
    LABFLOW_ASSIGN_OR_RETURN(std::string attr_name,
                             schema.AttributeName(attr));
    auto value = db->MostRecent(material, attr);
    if (!value.ok()) continue;
    std::string rendered = value->ToString();
    if (rendered.size() > 60) rendered = rendered.substr(0, 57) + "...";
    os << "  " << attr_name << " = " << rendered << "\n";
  }

  os << "event history:\n";
  // Collect every step that involved this material, via per-attribute
  // histories (covers tags) plus a direct pass for tagless involvement.
  std::vector<std::pair<Timestamp, Oid>> steps;
  for (AttrId attr : info.attrs_present) {
    LABFLOW_ASSIGN_OR_RETURN(std::vector<HistoryEntry> hist,
                             db->History(material, attr));
    for (const HistoryEntry& e : hist) {
      steps.emplace_back(e.time, e.step);
    }
  }
  std::sort(steps.begin(), steps.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;
            });
  steps.erase(std::unique(steps.begin(), steps.end(),
                          [](const auto& a, const auto& b) {
                            return a.second == b.second;
                          }),
              steps.end());
  for (const auto& [time, step_oid] : steps) {
    LABFLOW_ASSIGN_OR_RETURN(StepInfo step, db->GetStep(step_oid));
    LABFLOW_ASSIGN_OR_RETURN(std::string step_name,
                             schema.ClassName(step.class_id));
    os << "  @" << step.time.micros << "  " << step_name << " (v"
       << step.version << ")";
    const StepMaterialEntry* entry =
        [&]() -> const StepMaterialEntry* {
      for (const StepMaterialEntry& e : step.materials) {
        if (e.material.raw == material.raw) return &e;
      }
      return nullptr;
    }();
    if (entry != nullptr) {
      for (const StepTag& tag : entry->tags) {
        LABFLOW_ASSIGN_OR_RETURN(std::string attr_name,
                                 schema.AttributeName(tag.attr));
        std::string rendered = tag.value.ToString();
        if (rendered.size() > 40) rendered = rendered.substr(0, 37) + "...";
        os << "  " << attr_name << "=" << rendered;
      }
      if (entry->new_state != kInvalidState) {
        LABFLOW_ASSIGN_OR_RETURN(std::string to_state,
                                 schema.StateName(entry->new_state));
        os << "  -> " << to_state;
      }
    }
    os << "\n";
  }
  return Status::OK();
}

}  // namespace labflow::labbase
