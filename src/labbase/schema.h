#ifndef LABFLOW_LABBASE_SCHEMA_H_
#define LABFLOW_LABBASE_SCHEMA_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/value.h"

namespace labflow::labbase {

/// Identifier of a material or step class in the *user* schema.
using ClassId = uint32_t;
/// Identifier of a result attribute (global across step classes, as in
/// LabBase, where an attribute like `sequence` keeps its identity when
/// several step classes produce it).
using AttrId = uint32_t;
/// Identifier of a workflow state.
using StateId = uint32_t;

inline constexpr ClassId kInvalidClass = 0xFFFFFFFF;
inline constexpr AttrId kInvalidAttr = 0xFFFFFFFF;
inline constexpr StateId kInvalidState = 0xFFFFFFFF;

/// One version of a step class. LabBase supports schema evolution without
/// data migration: redefining a step class with a different attribute set
/// creates a new version, and every step instance is bound forever to the
/// version that created it (paper Section 5.1, following Skarra & Zdonik
/// [52]). Versions are identified by their attribute set.
struct StepClassVersion {
  uint32_t version = 0;
  std::vector<AttrId> result_attrs;
};

/// The *user* schema: material classes, versioned step classes, attributes,
/// and workflow states. The storage schema underneath is fixed (sm_material
/// / sm_step / material_set — paper Table 1), which is exactly what makes
/// this schema freely evolvable at run time.
///
/// The Schema is an in-memory catalog, serialized into LabBase's root
/// object; it is not thread-safe (LabBase serializes access).
class Schema {
 public:
  Schema() = default;

  // -- Material classes ------------------------------------------------

  /// Defines a material class; AlreadyExists if the name is taken by a
  /// class of either kind.
  Result<ClassId> DefineMaterialClass(std::string_view name);
  Result<ClassId> MaterialClassByName(std::string_view name) const;
  bool IsMaterialClass(ClassId id) const;

  // -- Step classes and evolution ---------------------------------------

  /// Defines a step class with the given result attributes (attributes are
  /// created on first use). Redefining an existing step class with a new
  /// attribute set adds a *version*; with an identical set, it is a no-op
  /// returning the existing version. Returns the class id.
  Result<ClassId> DefineStepClass(std::string_view name,
                                  const std::vector<std::string>& attr_names);
  Result<ClassId> StepClassByName(std::string_view name) const;
  bool IsStepClass(ClassId id) const;

  /// Latest version number of a step class (versions start at 0).
  Result<uint32_t> LatestVersion(ClassId step_class) const;
  /// Attribute set of one version.
  Result<std::vector<AttrId>> VersionAttrs(ClassId step_class,
                                           uint32_t version) const;
  /// Number of versions a step class has accumulated.
  Result<uint32_t> VersionCount(ClassId step_class) const;

  // -- Attributes --------------------------------------------------------

  /// Returns the attribute id, creating it on first use.
  AttrId InternAttribute(std::string_view name);
  Result<AttrId> AttributeByName(std::string_view name) const;
  Result<std::string> AttributeName(AttrId id) const;

  // -- States --------------------------------------------------------------

  /// Defines (or returns) the state with this name.
  StateId InternState(std::string_view name);
  Result<StateId> StateByName(std::string_view name) const;
  Result<std::string> StateName(StateId id) const;
  uint32_t state_count() const { return static_cast<uint32_t>(states_.size()); }

  // -- Generic -------------------------------------------------------------

  Result<std::string> ClassName(ClassId id) const;
  Result<ClassId> ClassByName(std::string_view name) const;
  uint32_t class_count() const { return static_cast<uint32_t>(classes_.size()); }
  uint32_t attribute_count() const {
    return static_cast<uint32_t>(attrs_.size());
  }

  /// Serialization into the root object.
  std::string Encode() const;
  static Result<Schema> Decode(std::string_view data);

  friend bool operator==(const Schema& a, const Schema& b);

 private:
  struct ClassInfo {
    std::string name;
    bool is_step = false;
    std::vector<StepClassVersion> versions;  // steps only
  };

  std::vector<ClassInfo> classes_;             // index = ClassId
  std::vector<std::string> attrs_;             // index = AttrId
  std::vector<std::string> states_;            // index = StateId
  std::map<std::string, ClassId, std::less<>> class_by_name_;
  std::map<std::string, AttrId, std::less<>> attr_by_name_;
  std::map<std::string, StateId, std::less<>> state_by_name_;
};

}  // namespace labflow::labbase

#endif  // LABFLOW_LABBASE_SCHEMA_H_
