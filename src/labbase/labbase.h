#ifndef LABFLOW_LABBASE_LABBASE_H_
#define LABFLOW_LABBASE_LABBASE_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/value.h"
#include "labbase/records.h"
#include "labbase/schema.h"
#include "storage/hash_dir.h"
#include "storage/storage_manager.h"

namespace labflow::labbase {

/// LabBase behaviour switches; the defaults reproduce the configuration the
/// paper measured, the alternatives are the ablations in DESIGN.md.
struct LabBaseOptions {
  /// D1: maintain the most-recent-value cache + per-attribute history lists
  /// in sm_material. When off, MostRecent/History fall back to scanning the
  /// material's full `involves` list.
  bool use_most_recent_index = true;
  /// D2: create separate hot (materials/sets/catalog) and cold (steps)
  /// clustering segments. Only honoured by segment-capable managers
  /// (OStore); harmless elsewhere. When off, everything shares segment 0
  /// (the "OStore-1seg" configuration of bench_fig_locality).
  bool separate_segments = true;
  /// Pass cluster-near hints placing each step next to its primary
  /// material. Only honoured by Texas+TC.
  bool cluster_steps_near_material = true;
  /// Keep the material-name index as a *persistent* hash directory
  /// (storage::HashDir) instead of an in-memory map rebuilt by scan — the
  /// style of access structure the production LabBase kept in persistent
  /// C++. Slower per lookup (it reads storage) but O(1) at open.
  bool persistent_name_index = false;
};

/// One event in a material's attribute history, ordered by valid time.
struct HistoryEntry {
  Timestamp time;
  Value value;
  Oid step;
};

/// Snapshot of a material's identity and workflow position.
struct MaterialInfo {
  Oid id;
  ClassId class_id = kInvalidClass;
  std::string name;
  StateId state = kInvalidState;
  Timestamp created;
  std::vector<AttrId> attrs_present;
};

/// Snapshot of a step instance (audit-trail entry).
struct StepInfo {
  Oid id;
  ClassId class_id = kInvalidClass;
  uint32_t version = 0;
  Timestamp time;
  std::vector<StepMaterialEntry> materials;
};

/// The per-material effect passed to RecordStep.
struct StepEffect {
  Oid material;
  std::vector<StepTag> tags;
  /// Target workflow state, or kInvalidState to leave the state alone.
  StateId new_state = kInvalidState;
};

/// Wrapper-level activity counters.
struct LabBaseStats {
  uint64_t materials_created = 0;
  uint64_t steps_recorded = 0;
  uint64_t most_recent_queries = 0;
  uint64_t history_queries = 0;
  uint64_t state_queries = 0;
  uint64_t set_operations = 0;
};

/// LabBase: the workflow-data manager of the paper's Architecture (C) — a
/// specialized DBMS providing event histories, most-recent-value queries,
/// workflow states, material sets and dynamic schema evolution on top of an
/// object storage manager with a *fixed* three-class storage schema.
///
/// The same LabBase code runs unchanged on every storage manager; which
/// manager it runs on is exactly the variable the LabFlow-1 benchmark
/// measures.
///
/// Thread compatibility: a LabBase instance serves one thread (matching the
/// paper's single data-server process); the storage managers underneath are
/// independently thread-safe.
class LabBase {
 public:
  /// Attaches to `mgr` (not owned). On an empty store this bootstraps the
  /// catalog (root record, segments) and checkpoints once so the root
  /// pointer is durable; on an existing store it loads the schema and
  /// rebuilds the in-memory indexes by scanning.
  static Result<std::unique_ptr<LabBase>> Open(storage::StorageManager* mgr,
                                               const LabBaseOptions& options);

  LabBase(const LabBase&) = delete;
  LabBase& operator=(const LabBase&) = delete;

  // ---- Schema (all changes persist immediately via the root record) ------

  Result<ClassId> DefineMaterialClass(std::string_view name);
  /// Defines a step class, or evolves it to a new version when the
  /// attribute set differs (paper Section 5.1).
  Result<ClassId> DefineStepClass(std::string_view name,
                                  const std::vector<std::string>& attr_names);
  Result<StateId> DefineState(std::string_view name);
  const Schema& schema() const { return schema_; }

  // ---- Workflow tracking (paper Section 8.3) -------------------------------

  /// Creates a material in `initial_state`. Names must be unique.
  Result<Oid> CreateMaterial(ClassId material_class, std::string_view name,
                             StateId initial_state, Timestamp created);

  /// Records one executed workflow step: appends an sm_step instance to the
  /// event history and updates every affected material (involves list,
  /// most-recent cache, history lists, state). The step is bound to the
  /// *latest* version of its class; every tag attribute must belong to that
  /// version's attribute set.
  ///
  /// Valid-time semantics: `time` may predate already-recorded steps
  /// (out-of-order entry); most-recent values and state transitions are
  /// applied only if `time` is not older than what the material already
  /// reflects.
  Result<Oid> RecordStep(ClassId step_class, Timestamp time,
                         const std::vector<StepEffect>& effects);

  // ---- Queries (paper Sections 8.1, 8.2) -----------------------------------

  /// Most-recent value of `attr` on `material` (by valid time); NotFound if
  /// no step ever produced it.
  Result<Value> MostRecent(Oid material, AttrId attr);
  Result<Value> MostRecent(Oid material, std::string_view attr_name);

  /// Full history of `attr` on `material`, ascending by valid time.
  Result<std::vector<HistoryEntry>> History(Oid material, AttrId attr);

  /// Temporal as-of query: the value `attr` had on `material` at valid time
  /// `at` (i.e. the most recent tag with time <= at). NotFound if nothing
  /// was recorded by then. This is the "what did we believe on Tuesday"
  /// query the valid-time event history exists to answer.
  Result<Value> ValueAsOf(Oid material, AttrId attr, Timestamp at);

  /// History entries with valid time in [from, to], ascending.
  Result<std::vector<HistoryEntry>> HistoryBetween(Oid material, AttrId attr,
                                                   Timestamp from,
                                                   Timestamp to);

  Result<MaterialInfo> GetMaterial(Oid material);
  Result<StepInfo> GetStep(Oid step);
  Result<Oid> FindMaterialByName(std::string_view name);

  Result<StateId> CurrentState(Oid material);
  /// Work-queue query: all materials currently in `state`, ordered by
  /// material name (a manager-independent, deterministic order).
  Result<std::vector<Oid>> MaterialsInState(StateId state);
  Result<int64_t> CountInState(StateId state);
  Result<std::vector<Oid>> MaterialsOfClass(ClassId material_class);

  // ---- Material sets --------------------------------------------------------

  Result<Oid> CreateSet(std::string_view name);
  Status AddToSet(Oid set, Oid material);
  Status RemoveFromSet(Oid set, Oid material);
  Result<std::vector<Oid>> SetMembers(Oid set);
  Result<Oid> FindSetByName(std::string_view name);

  // ---- Transactions & lifecycle -------------------------------------------

  Status Begin() { return mgr_->Begin(); }
  Status Commit() { return mgr_->Commit(); }
  /// Aborts the storage transaction and rebuilds the in-memory indexes
  /// (which may have observed rolled-back changes).
  Status Abort();
  Status Checkpoint() { return mgr_->Checkpoint(); }

  const LabBaseStats& stats() const { return stats_; }
  storage::StorageManager* storage() { return mgr_; }

  /// Rebuilds the derived in-memory indexes (name map, state/class sets)
  /// from the persistent records.
  Status RebuildIndexes();

 private:
  explicit LabBase(storage::StorageManager* mgr, LabBaseOptions options)
      : mgr_(mgr), options_(options) {}

  Status Bootstrap();
  Status LoadExisting(storage::ObjectId root);
  Status PersistRoot();

  Result<MaterialRecord> ReadMaterial(Oid material);
  Status WriteMaterial(Oid material, const MaterialRecord& rec);

  /// Index maintenance on state transition.
  void IndexStateChange(Oid material, const std::string& name, StateId from,
                        StateId to);

  /// Slow-path most-recent: scan the involves list (D1 ablation).
  Result<Value> MostRecentByScan(Oid material, AttrId attr);
  Result<std::vector<HistoryEntry>> HistoryByScan(Oid material, AttrId attr);

  storage::StorageManager* mgr_;
  LabBaseOptions options_;
  Schema schema_;
  storage::ObjectId root_id_;
  uint16_t hot_segment_ = 0;
  uint16_t cold_segment_ = 0;

  RootRecord root_;
  std::unique_ptr<storage::HashDir> name_dir_;
  std::map<std::string, Oid, std::less<>> materials_by_name_;
  // Ordered by material name so work-queue scans are deterministic across
  // storage managers (object ids are manager-specific).
  std::map<StateId, std::set<std::pair<std::string, Oid>>> by_state_;
  std::map<ClassId, std::set<Oid>> by_class_;
  std::map<std::string, Oid, std::less<>> sets_by_name_;

  LabBaseStats stats_;
};

}  // namespace labflow::labbase

#endif  // LABFLOW_LABBASE_LABBASE_H_
