#ifndef LABFLOW_LABBASE_LABBASE_H_
#define LABFLOW_LABBASE_LABBASE_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/value.h"
#include "labbase/records.h"
#include "labbase/schema.h"
#include "labbase/session_iface.h"
#include "storage/hash_dir.h"
#include "storage/storage_manager.h"

namespace labflow::labbase {

/// LabBase behaviour switches; the defaults reproduce the configuration the
/// paper measured, the alternatives are the ablations in DESIGN.md.
struct LabBaseOptions {
  /// D1: maintain the most-recent-value cache + per-attribute history lists
  /// in sm_material. When off, MostRecent/History fall back to scanning the
  /// material's full `involves` list.
  bool use_most_recent_index = true;
  /// D2: create separate hot (materials/sets/catalog) and cold (steps)
  /// clustering segments. Only honoured by segment-capable managers
  /// (OStore); harmless elsewhere. When off, everything shares segment 0
  /// (the "OStore-1seg" configuration of bench_fig_locality).
  bool separate_segments = true;
  /// Pass cluster-near hints placing each step next to its primary
  /// material. Only honoured by Texas+TC.
  bool cluster_steps_near_material = true;
  /// Keep the material-name index as a *persistent* hash directory
  /// (storage::HashDir) instead of an in-memory map rebuilt by scan — the
  /// style of access structure the production LabBase kept in persistent
  /// C++. Slower per lookup (it reads storage) but O(1) at open.
  /// Single-session only: the directory object is not session-aware.
  bool persistent_name_index = false;
  /// Retry policy for Session::RunTransaction: a transaction aborted as a
  /// deadlock victim is re-run up to this many times (with exponential
  /// backoff and jitter between attempts) before the Aborted surfaces to
  /// the caller. Other errors never retry.
  int max_txn_retries = 10;
  /// First retry backoff (microseconds); doubles per attempt up to the max.
  int64_t retry_backoff_us = 100;
  int64_t retry_backoff_max_us = 10000;
};

// HistoryEntry, MaterialInfo, StepInfo, StepEffect, LabBaseStats and the
// abstract SessionIface live in labbase/session_iface.h — the seam shared
// with the network client (net::RemoteSession mirrors Session through it).

/// LabBase: the workflow-data manager of the paper's Architecture (C) — a
/// specialized DBMS providing event histories, most-recent-value queries,
/// workflow states, material sets and dynamic schema evolution on top of an
/// object storage manager with a *fixed* three-class storage schema.
///
/// The same LabBase code runs unchanged on every storage manager; which
/// manager it runs on is exactly the variable the LabFlow-1 benchmark
/// measures.
///
/// All data access goes through Session objects (OpenSession). A LabBase
/// instance may serve many concurrent sessions, each from its own thread; a
/// single Session serves one thread at a time. Isolation between sessions
/// is whatever the storage manager provides (OStore: page 2PL; Texas: one
/// transaction at a time; mm: none) — the shared in-memory indexes are
/// internally synchronized and roll back with Session::Abort.
///
/// Exceptions to multi-session concurrency, by design (the paper's LabBase
/// ran DDL as rare administrative actions): schema changes (DefineX),
/// set creation, and the persistent_name_index option require that no other
/// session is active.
class LabBase {
 public:
  class Session;
  class SessionPool;

  /// Attaches to `mgr` (not owned). On an empty store this bootstraps the
  /// catalog (root record, segments) and checkpoints once so the root
  /// pointer is durable; on an existing store it loads the schema and
  /// rebuilds the in-memory indexes by scanning.
  static Result<std::unique_ptr<LabBase>> Open(storage::StorageManager* mgr,
                                               const LabBaseOptions& options);

  LabBase(const LabBase&) = delete;
  LabBase& operator=(const LabBase&) = delete;

  /// Opens a new session. Sessions are independent: each may hold its own
  /// transaction and runs from its own thread. The session must not outlive
  /// the LabBase (or the storage manager).
  std::unique_ptr<Session> OpenSession();

  const Schema& schema() const { return schema_; }
  storage::StorageManager* storage() { return mgr_; }
  Status Checkpoint() { return mgr_->Checkpoint(); }

  /// Rebuilds the derived in-memory indexes (name map, state/class sets)
  /// from the persistent records. Requires no active sessions.
  Status RebuildIndexes() LABFLOW_EXCLUDES(index_mu_);

 private:
  friend class Session;

  explicit LabBase(storage::StorageManager* mgr, LabBaseOptions options)
      : mgr_(mgr), options_(options) {}

  Status Bootstrap();
  Status LoadExisting(storage::ObjectId root);
  Status PersistRoot(storage::Txn* txn);
  /// Re-reads the catalog (root record, schema, set directory) from
  /// storage. Used after an abort that touched the catalog.
  Status ReloadCatalog();

  // Catalog state: written at Open and by DDL, which is single-session by
  // LabBase contract (docs/DESIGN notes in schema.h) — concurrent sessions
  // only read it between transactions. Not lock-guarded by design.
  storage::StorageManager* mgr_;  // NOLINT(guarded-by-coverage): set at Open
  LabBaseOptions options_;   // NOLINT(guarded-by-coverage): const after Open
  Schema schema_;            // NOLINT(guarded-by-coverage): DDL-only writes
  storage::ObjectId root_id_;   // NOLINT(guarded-by-coverage): set at Open
  uint16_t hot_segment_ = 0;    // NOLINT(guarded-by-coverage): set at Open
  uint16_t cold_segment_ = 0;   // NOLINT(guarded-by-coverage): set at Open

  RootRecord root_;          // NOLINT(guarded-by-coverage): DDL-only writes
  std::unique_ptr<storage::HashDir>
      name_dir_;             // NOLINT(guarded-by-coverage): set at Open

  /// Guards the derived in-memory indexes below against concurrent
  /// sessions. Never held across storage-manager calls (those may block on
  /// page locks); instead, mutators reserve/patch entries around the
  /// storage operation (see Session::CreateMaterial). Rank kSessionIndex:
  /// below every storage rank so that contract is validator-enforced.
  Mutex index_mu_{LockRank::kSessionIndex, "labbase.index"};
  std::map<std::string, Oid, std::less<>> materials_by_name_
      LABFLOW_GUARDED_BY(index_mu_);
  // Ordered by material name so work-queue scans are deterministic across
  // storage managers (object ids are manager-specific).
  std::map<StateId, std::set<std::pair<std::string, Oid>>> by_state_
      LABFLOW_GUARDED_BY(index_mu_);
  std::map<ClassId, std::set<Oid>> by_class_ LABFLOW_GUARDED_BY(index_mu_);
  std::map<std::string, Oid, std::less<>> sets_by_name_
      LABFLOW_GUARDED_BY(index_mu_);
};

/// A client session: the unit of transactional interaction with LabBase.
/// Owns at most one storage transaction at a time (Begin/Commit/Abort) and
/// its own LabBaseStats. Operations outside a transaction run in
/// auto-commit mode, exactly as before.
///
/// Threading: one thread at a time per Session; different Sessions of the
/// same LabBase run fully concurrently.
///
/// Session is the in-process implementation of labbase::SessionIface; the
/// network client (net::RemoteSession) is the remote one. Code that should
/// run against either — the driver, the benches — takes a SessionIface*.
class LabBase::Session : public SessionIface {
 public:
  ~Session() override;

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // ---- Transactions --------------------------------------------------------

  /// Starts this session's transaction. InvalidArgument if one is active;
  /// ResourceExhausted if the manager's concurrency cap is reached (Texas).
  Status Begin() override;
  /// Starts a read-only snapshot transaction (see SessionIface). On an
  /// MVCC-capable manager the reads are lock-free at a fixed commit
  /// timestamp; elsewhere it silently degrades to Begin().
  Status BeginReadOnly() override;
  Status Commit() override;
  /// Aborts the storage transaction and rolls the shared in-memory indexes
  /// back (via this session's index undo log). If the transaction touched
  /// the catalog (DDL, set creation — single-session operations), the
  /// catalog is re-read from storage.
  Status Abort() override;
  bool in_transaction() const override { return txn_ != nullptr; }

  /// Runs `body` inside this session's transaction: Begin, body, Commit.
  /// When the transaction loses a deadlock (Aborted) the whole body is
  /// re-run — with exponential backoff and per-session jitter — up to
  /// LabBaseOptions::max_txn_retries times, so deadlock aborts become
  /// invisible to the caller. `body` must therefore be restartable: all
  /// its effects must go through this session (they roll back with the
  /// transaction). Any other error aborts once and surfaces as-is.
  /// InvalidArgument if a transaction is already active.
  Status RunTransaction(const std::function<Status()>& body) override;

  // ---- Schema (single-session; persists immediately via the root record) ---

  Result<ClassId> DefineMaterialClass(std::string_view name) override;
  /// Defines a step class, or evolves it to a new version when the
  /// attribute set differs (paper Section 5.1).
  Result<ClassId> DefineStepClass(
      std::string_view name,
      const std::vector<std::string>& attr_names) override;
  Result<StateId> DefineState(std::string_view name) override;
  const Schema& schema() const override { return db_->schema_; }

  // ---- Workflow tracking (paper Section 8.3) -------------------------------

  /// Creates a material in `initial_state`. Names must be unique.
  Result<Oid> CreateMaterial(ClassId material_class, std::string_view name,
                             StateId initial_state,
                             Timestamp created) override;

  /// Records one executed workflow step: appends an sm_step instance to the
  /// event history and updates every affected material (involves list,
  /// most-recent cache, history lists, state). The step is bound to the
  /// *latest* version of its class; every tag attribute must belong to that
  /// version's attribute set.
  ///
  /// Valid-time semantics: `time` may predate already-recorded steps
  /// (out-of-order entry); most-recent values and state transitions are
  /// applied only if `time` is not older than what the material already
  /// reflects.
  Result<Oid> RecordStep(ClassId step_class, Timestamp time,
                         const std::vector<StepEffect>& effects) override;

  // ---- Queries (paper Sections 8.1, 8.2) -----------------------------------

  /// Most-recent value of `attr` on `material` (by valid time); NotFound if
  /// no step ever produced it.
  Result<Value> MostRecent(Oid material, AttrId attr) override;
  Result<Value> MostRecent(Oid material, std::string_view attr_name) override;

  /// Full history of `attr` on `material`, ascending by valid time.
  Result<std::vector<HistoryEntry>> History(Oid material,
                                            AttrId attr) override;

  /// Temporal as-of query: the value `attr` had on `material` at valid time
  /// `at` (i.e. the most recent tag with time <= at). NotFound if nothing
  /// was recorded by then. This is the "what did we believe on Tuesday"
  /// query the valid-time event history exists to answer.
  Result<Value> ValueAsOf(Oid material, AttrId attr, Timestamp at) override;

  /// History entries with valid time in [from, to], ascending.
  Result<std::vector<HistoryEntry>> HistoryBetween(Oid material, AttrId attr,
                                                   Timestamp from,
                                                   Timestamp to) override;

  Result<MaterialInfo> GetMaterial(Oid material) override;
  Result<StepInfo> GetStep(Oid step) override;
  Result<Oid> FindMaterialByName(std::string_view name) override;

  Result<StateId> CurrentState(Oid material) override;
  /// Work-queue query: all materials currently in `state`, ordered by
  /// material name (a manager-independent, deterministic order).
  Result<std::vector<Oid>> MaterialsInState(StateId state) override;
  Result<int64_t> CountInState(StateId state) override;
  Result<std::vector<Oid>> MaterialsOfClass(ClassId material_class) override;
  Result<std::vector<Oid>> ListSteps() override;

  // ---- Material sets (creation is single-session) ---------------------------

  Result<Oid> CreateSet(std::string_view name) override;
  Status AddToSet(Oid set, Oid material) override;
  Status RemoveFromSet(Oid set, Oid material) override;
  Result<std::vector<Oid>> SetMembers(Oid set) override;
  Result<Oid> FindSetByName(std::string_view name) override;

  // ---- Misc ----------------------------------------------------------------

  Status Checkpoint() override { return db_->mgr_->Checkpoint(); }
  const LabBaseStats& stats() const override { return stats_; }
  storage::StorageManager* storage() { return db_->mgr_; }
  LabBase* db() { return db_; }

 private:
  friend class LabBase;

  explicit Session(LabBase* db) : db_(db) {}

  /// One rollback entry for the shared in-memory indexes. Logged only
  /// inside a transaction; applied in reverse by Abort.
  struct IndexUndo {
    enum Kind : uint8_t { kMaterialCreated = 1, kStateChanged = 2 };
    Kind kind;
    std::string name;
    Oid oid;
    ClassId class_id = kInvalidClass;  // kMaterialCreated
    StateId from = kInvalidState;      // kStateChanged / created state
    StateId to = kInvalidState;        // kStateChanged
  };

  Result<MaterialRecord> ReadMaterial(Oid material);
  Status WriteMaterial(Oid material, const MaterialRecord& rec);

  /// Applies this session's index undo log in reverse (shared in-memory
  /// indexes only; storage rollback is the manager's). Leaves the log
  /// intact — callers clear it.
  void RollbackIndexes() LABFLOW_EXCLUDES(db_->index_mu_);

  /// Index maintenance on state transition (locks index_mu_, logs undo).
  void IndexStateChange(Oid material, const std::string& name, StateId from,
                        StateId to) LABFLOW_EXCLUDES(db_->index_mu_);

  /// Marks the catalog as touched by the active transaction, so Abort
  /// knows to re-read it.
  void TouchCatalog() {
    if (txn_ != nullptr) catalog_dirty_ = true;
  }

  /// Slow-path most-recent: scan the involves list (D1 ablation).
  Result<Value> MostRecentByScan(Oid material, AttrId attr);
  Result<std::vector<HistoryEntry>> HistoryByScan(Oid material, AttrId attr);

  LabBase* db_;
  storage::Txn* txn_ = nullptr;
  std::vector<IndexUndo> index_undo_;
  bool catalog_dirty_ = false;
  LabBaseStats stats_;
};

/// A bounded pool of reusable sessions (ROADMAP: session pooling).
///
/// OpenSession allocates a fresh session per call; short-lived clients — a
/// driver stream, a query thread in the F6 bench — would otherwise pay that
/// allocation (and lose the session's accumulated state) on every
/// interaction. Acquire() hands out an idle pooled session when one is
/// available and opens a new one when none is; the returned Lease gives it
/// back on destruction. Sessions returned mid-transaction are aborted and
/// discarded rather than reused — a pooled session is always
/// transaction-free. At most `max_idle` sessions are kept warm; extras are
/// dropped on return.
///
/// Thread safety: Acquire/Return may be called from any thread; the leased
/// Session itself remains single-threaded (one thread at a time per lease).
/// A reused session keeps its LabBaseStats — per-lease deltas are the
/// caller's bookkeeping if they need them.
///
/// Lifetime contract: every Lease must be released (or destroyed) before
/// the pool — a Lease destructor calls back into its pool, so a pool torn
/// down under an outstanding lease is a use-after-free. This became a real
/// ordering concern when `labflowd` started multiplexing connections over a
/// pool: connection teardown (which releases leases) must strictly precede
/// pool destruction. The destructor enforces the contract: it aborts the
/// process, in every build mode, if leases are still outstanding —
/// loudly-now beats heap-corruption-later on a server.
class LabBase::SessionPool {
 public:
  /// RAII checkout: returns the session to the pool on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(SessionPool* pool, std::unique_ptr<Session> session)
        : pool_(pool), session_(std::move(session)) {}
    Lease(Lease&& o) noexcept
        : pool_(o.pool_), session_(std::move(o.session_)) {
      o.pool_ = nullptr;
    }
    Lease& operator=(Lease&& o) noexcept {
      Release();
      pool_ = o.pool_;
      session_ = std::move(o.session_);
      o.pool_ = nullptr;
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { Release(); }

    Session* get() const { return session_.get(); }
    Session* operator->() const { return session_.get(); }
    Session& operator*() const { return *session_; }
    bool valid() const { return session_ != nullptr; }

    /// Returns the session to the pool now (idempotent).
    void Release() {
      if (pool_ != nullptr && session_ != nullptr) {
        pool_->Return(std::move(session_));
      }
      pool_ = nullptr;
      session_ = nullptr;
    }

   private:
    SessionPool* pool_ = nullptr;
    std::unique_ptr<Session> session_;
  };

  struct Stats {
    uint64_t acquired = 0;  ///< total Acquire() calls
    uint64_t reused = 0;    ///< served from the idle pool
    uint64_t created = 0;   ///< served by opening a new session
    uint64_t discarded = 0; ///< returns dropped (mid-txn or pool full)
  };

  explicit SessionPool(LabBase* db, size_t max_idle = 8)
      : db_(db), max_idle_(max_idle) {}

  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;
  /// Outstanding leases must be released (or destroyed) first; violating
  /// that ordering aborts the process (see the class comment).
  ~SessionPool();

  /// Checks out a session: a warm pooled one when available, a fresh one
  /// otherwise. Never blocks — the pool bounds idle sessions, not
  /// concurrency.
  Lease Acquire();

  Stats stats() const;
  size_t idle_count() const;
  /// Leases currently checked out (Acquired and not yet Returned). Must be
  /// zero before the pool may be destroyed.
  size_t outstanding() const;

 private:
  friend class Lease;

  void Return(std::unique_ptr<Session> session);

  LabBase* db_;  // NOLINT(guarded-by-coverage): set at construction
  const size_t max_idle_;
  /// Rank kSessionPool: sessions are opened (Acquire) and aborted (Return)
  /// *outside* this mutex, so no storage rank nests inside it; it does
  /// nest inside the server's per-connection mutex when a lease dies with
  /// its connection.
  mutable Mutex mu_{LockRank::kSessionPool, "labbase.session_pool"};
  std::vector<std::unique_ptr<Session>> idle_ LABFLOW_GUARDED_BY(mu_);
  size_t outstanding_ LABFLOW_GUARDED_BY(mu_) = 0;
  Stats stats_ LABFLOW_GUARDED_BY(mu_);
};

}  // namespace labflow::labbase

#endif  // LABFLOW_LABBASE_LABBASE_H_
