#ifndef LABFLOW_LABBASE_DUMP_H_
#define LABFLOW_LABBASE_DUMP_H_

#include <ostream>

#include "labbase/labbase.h"

namespace labflow::labbase {

/// Prints a database overview: schema (classes, states, step-class
/// versions), material counts per class and state, set directory, and
/// storage statistics. The LIMS-report side of LabBase (paper Section 2).
Status DumpSummary(LabBase::Session* db, std::ostream& os);

/// Prints one material's complete audit trail: identity, current state,
/// every attribute's most-recent value, and the full event history (each
/// step instance that processed it, with its class, version, valid time
/// and tags). This is the paper's "audit trail" requirement made visible.
Status DumpMaterialAudit(LabBase::Session* db, Oid material, std::ostream& os);

}  // namespace labflow::labbase

#endif  // LABFLOW_LABBASE_DUMP_H_
