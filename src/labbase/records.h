#ifndef LABFLOW_LABBASE_RECORDS_H_
#define LABFLOW_LABBASE_RECORDS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/value.h"
#include "labbase/schema.h"
#include "storage/object_id.h"

namespace labflow::labbase {

/// The *fixed* storage schema (paper Table 1): every user-schema object is
/// stored as an instance of exactly one of three storage classes, plus one
/// catalog (root) record. This is what makes user-level schema evolution
/// free at the storage level (design decision D5 in DESIGN.md).
enum class RecordKind : uint8_t {
  kMaterial = 1,      // sm_material
  kStep = 2,          // sm_step
  kMaterialSet = 3,   // material_set
  kRoot = 5,          // LabBase catalog
};

/// Returns the kind byte of an encoded record.
Result<RecordKind> PeekRecordKind(std::string_view data);

/// Reference from a material's per-attribute history list to the step
/// instance that produced a tag, ordered by *valid time*.
struct HistoryRef {
  storage::ObjectId step;
  Timestamp time;

  friend bool operator==(const HistoryRef& a, const HistoryRef& b) {
    return a.step == b.step && a.time == b.time;
  }
};

/// Per-attribute access structure embedded in sm_material: the cached
/// most-recent value (by valid time) plus the history list. This is
/// LabBase's "structure for rapid access into history lists"; design
/// decision D1, ablated by bench_fig_history.
struct AttrIndexEntry {
  AttrId attr = kInvalidAttr;
  Value most_recent;
  Timestamp most_recent_time;
  std::vector<HistoryRef> history;  // ascending by (time, step)
};

/// sm_material: one record per material instance. Note that a material has
/// *no* per-class fields — all attributes are derived from the steps that
/// processed it (paper Section 4).
struct MaterialRecord {
  ClassId class_id = kInvalidClass;
  std::string name;
  StateId state = kInvalidState;
  Timestamp state_time;  // valid time of the last applied state change
  Timestamp created;
  std::vector<AttrIndexEntry> attrs;           // sorted by attr id
  std::vector<storage::ObjectId> involves;     // steps, in insertion order

  std::string Encode() const;
  static Result<MaterialRecord> Decode(std::string_view data);

  /// Returns the entry for `attr`, or nullptr.
  const AttrIndexEntry* FindAttr(AttrId attr) const;
  AttrIndexEntry* FindAttr(AttrId attr);
  /// Returns the entry for `attr`, inserting an empty one if absent.
  AttrIndexEntry* FindOrAddAttr(AttrId attr);
};

/// One (attribute, value) result tag in a step instance.
struct StepTag {
  AttrId attr = kInvalidAttr;
  Value value;
};

/// A step's effect on one of the materials it processed.
struct StepMaterialEntry {
  storage::ObjectId material;
  std::vector<StepTag> tags;
  /// State the material transitions to, or kInvalidState for none.
  StateId new_state = kInvalidState;
};

/// sm_step: one record per executed workflow step — the unit of the event
/// history / audit trail. Bound forever to (class_id, version).
struct StepRecord {
  ClassId class_id = kInvalidClass;
  uint32_t version = 0;
  Timestamp time;  // valid time
  std::vector<StepMaterialEntry> materials;

  std::string Encode() const;
  static Result<StepRecord> Decode(std::string_view data);

  /// Returns the entry for `material`, or nullptr.
  const StepMaterialEntry* FindMaterial(storage::ObjectId material) const;
};

/// material_set: a named, persistent collection of material references
/// (gel batches, assembly inputs, query results...).
struct SetRecord {
  std::string name;
  std::vector<storage::ObjectId> members;

  std::string Encode() const;
  static Result<SetRecord> Decode(std::string_view data);
};

/// The LabBase catalog, stored at the storage manager's root pointer:
/// serialized user schema, the set directory, and the clustering segments
/// LabBase created at bootstrap.
struct RootRecord {
  std::string schema_blob;
  std::vector<std::pair<std::string, storage::ObjectId>> sets;
  uint16_t hot_segment = 0;
  uint16_t cold_segment = 0;
  /// Root of the persistent material-name directory (storage::HashDir), or
  /// invalid when LabBase runs with the in-memory name index only.
  storage::ObjectId name_dir;

  std::string Encode() const;
  static Result<RootRecord> Decode(std::string_view data);
};

}  // namespace labflow::labbase

#endif  // LABFLOW_LABBASE_RECORDS_H_
