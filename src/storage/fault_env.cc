#include "storage/fault_env.h"

#include <time.h>

#include <cstring>
#include <utility>

namespace labflow::storage {

namespace {

/// Sleeps `us` microseconds. Called before taking the env mutex, so one
/// slow operation delays only its caller.
void SimulateIoDelay(int64_t us) {
  if (us <= 0) return;
  timespec ts;
  ts.tv_sec = us / 1000000;
  ts.tv_nsec = (us % 1000000) * 1000;
  nanosleep(&ts, nullptr);
}

}  // namespace

/// File handle over a FaultInjectionEnv::FileState. All state (including
/// the fault decision stream) lives in the env so that a second handle to
/// the same path shares bytes with the first, like fds on one inode.
class FaultFile : public File {
 public:
  FaultFile(FaultInjectionEnv* env, std::string path,
            std::shared_ptr<FaultInjectionEnv::FileState> state)
      : env_(env), path_(std::move(path)), state_(std::move(state)) {}

  Status Read(uint64_t offset, size_t n, char* buf) override {
    SimulateIoDelay(env_->options_.read_delay_us);
    MutexLock g(env_->mu_);
    if (env_->ShouldFault(path_, env_->options_.read_fault_p)) {
      return Status::IOError("injected read fault on " + path_);
    }
    if (offset + n > state_->data.size()) {
      return Status::IOError("read past end of " + path_);
    }
    std::memcpy(buf, state_->data.data() + offset, n);
    return Status::OK();
  }

  Status Write(uint64_t offset, std::string_view data) override {
    SimulateIoDelay(env_->options_.write_delay_us);
    MutexLock g(env_->mu_);
    return WriteLocked(offset, data);
  }

  Status Append(std::string_view data) override {
    SimulateIoDelay(env_->options_.write_delay_us);
    MutexLock g(env_->mu_);
    return WriteLocked(state_->data.size(), data);
  }

  Status Sync() override {
    MutexLock g(env_->mu_);
    if (env_->ShouldFault(path_, env_->options_.sync_fault_p)) {
      return Status::IOError("injected sync fault on " + path_);
    }
    state_->synced = state_->data;
    return Status::OK();
  }

  Result<uint64_t> Size() const override {
    MutexLock g(env_->mu_);
    return static_cast<uint64_t>(state_->data.size());
  }

  Status Close() override { return Status::OK(); }

 private:
  Status WriteLocked(uint64_t offset, std::string_view data)
      LABFLOW_REQUIRES(env_->mu_) {
    if (env_->ShouldFault(path_, env_->options_.write_fault_p)) {
      size_t applied = 0;
      if (env_->options_.torn_writes && !data.empty()) {
        applied = env_->rng_.NextBelow(data.size() + 1);
      }
      ApplyLocked(offset, data.substr(0, applied));
      return Status::IOError("injected write fault on " + path_ + " (" +
                             std::to_string(applied) + "/" +
                             std::to_string(data.size()) + " bytes applied)");
    }
    ApplyLocked(offset, data);
    return Status::OK();
  }

  void ApplyLocked(uint64_t offset, std::string_view data)
      LABFLOW_REQUIRES(env_->mu_) {
    if (data.empty()) return;
    if (state_->data.size() < offset + data.size()) {
      state_->data.resize(offset + data.size(), '\0');
    }
    state_->data.replace(offset, data.size(), data.data(), data.size());
  }

  FaultInjectionEnv* const env_;
  const std::string path_;
  const std::shared_ptr<FaultInjectionEnv::FileState> state_;
};

FaultInjectionEnv::FaultInjectionEnv(const Options& options)
    : rng_(options.seed), options_(options) {}

Result<std::unique_ptr<File>> FaultInjectionEnv::OpenFile(
    const std::string& path, bool truncate) {
  MutexLock g(mu_);
  std::shared_ptr<FileState>& state = files_[path];
  if (state == nullptr) state = std::make_shared<FileState>();
  if (truncate) {
    state->data.clear();
    state->synced.clear();
  }
  return std::unique_ptr<File>(new FaultFile(this, path, state));
}

Status FaultInjectionEnv::Delete(const std::string& path) {
  MutexLock g(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  // Handles still open on the file keep their shared FileState alive (like
  // an unlinked inode); the path itself is gone for OpenFile/FileExists.
  files_.erase(it);
  return Status::OK();
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  MutexLock g(mu_);
  return files_.count(path) != 0;
}

void FaultInjectionEnv::set_enabled(bool enabled) {
  MutexLock g(mu_);
  enabled_ = enabled;
}

void FaultInjectionEnv::DropUnsynced() {
  MutexLock g(mu_);
  for (auto& [path, state] : files_) state->data = state->synced;
}

Status FaultInjectionEnv::CorruptByte(const std::string& path,
                                      uint64_t offset) {
  MutexLock g(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  FileState& f = *it->second;
  if (offset >= f.data.size()) {
    return Status::OutOfRange("corrupt offset past end of " + path);
  }
  f.data[offset] = static_cast<char>(f.data[offset] ^ 0x40);
  if (offset < f.synced.size()) {
    f.synced[offset] = static_cast<char>(f.synced[offset] ^ 0x40);
  }
  return Status::OK();
}

uint64_t FaultInjectionEnv::faults_injected() const {
  MutexLock g(mu_);
  return faults_;
}

bool FaultInjectionEnv::ShouldFault(const std::string& path, double p) {
  if (!enabled_ || p <= 0.0) return false;
  if (!options_.path_filter.empty() &&
      path.find(options_.path_filter) == std::string::npos) {
    return false;
  }
  if (!rng_.NextBool(p)) return false;
  ++faults_;
  return true;
}

}  // namespace labflow::storage
