#ifndef LABFLOW_STORAGE_PAGED_MANAGER_H_
#define LABFLOW_STORAGE_PAGED_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/page_file.h"
#include "storage/storage_manager.h"
#include "storage/version_store.h"

namespace labflow::storage {

/// Configuration shared by the paged storage managers.
struct PagedManagerOptions {
  /// Database file path. A WAL-using manager derives "<path>.wal".
  std::string path;
  /// Buffer-pool capacity in pages. This is the knob bench_fig_locality
  /// sweeps: it plays the role of available physical memory in the paper's
  /// testbed.
  size_t buffer_pool_pages = 1024;
  /// Buffer-pool shard count override (0 = auto: one shard per 256 pages
  /// of capacity; see BufferPool). Power of two; mainly a test/bench knob.
  size_t buffer_pool_shards = 0;
  /// Start from an empty database, discarding any existing file.
  bool truncate = true;
  /// Simulated per-fault disk latency in microseconds (see BufferPool).
  int64_t fault_delay_us = 0;
  /// I/O environment for the database file (and the WAL, for managers that
  /// keep one). nullptr = the real filesystem (Env::Default()); tests pass
  /// a FaultInjectionEnv. Must outlive the manager.
  Env* env = nullptr;
};

/// Shared implementation of a slotted-page object heap used by both the
/// ostore and texas managers. Provides:
///
///  * stable object ids across growth (forwarding records),
///  * objects larger than a page (spanning roots + chunks),
///  * segment- and cluster-hint-driven placement (policy hooks decide which
///    hints are honoured — this is where OStore and Texas differ),
///  * per-segment free-space tracking with transaction-affine placement
///    (concurrent inserting transactions are steered onto disjoint pages),
///  * superblock persistence and rebuild-by-scan on reopen,
///  * hook points for logging (WAL), locking, and dirty-page retention so
///    the ostore subclass can layer transactions on top.
///
/// Every data path carries the explicit Txn* of the transaction it runs
/// under (nullptr = auto-commit); the hooks receive it so subclasses never
/// need thread-keyed transaction state.
///
/// Record wire tags (first byte of every slot record):
///   0 data        [0][varint n][n bytes][pad...]
///   1 forward     [1][8-byte LE target id]
///   2 span root   [2][varint n_chunks][n*8-byte LE chunk ids]
///   3 span chunk  [3][varint n][n bytes]
///   5 moved data  [5][varint n][n bytes]   (forward target; hidden from scans)
class PagedManagerBase : public StorageManager {
 public:
  ~PagedManagerBase() override;

  PagedManagerBase(const PagedManagerBase&) = delete;
  PagedManagerBase& operator=(const PagedManagerBase&) = delete;

  /// Opens or creates the database. Must be called exactly once before use.
  Status Open(const PagedManagerOptions& options);

  // StorageManager:
  Result<uint16_t> CreateSegment(std::string_view name) override;
  Status SetRoot(ObjectId root) override {
    root_.store(root.raw);
    return Status::OK();
  }
  Result<ObjectId> GetRoot() override { return ObjectId(root_.load()); }
  Status Checkpoint() override;
  Status Close() override;
  StorageStats stats() const override;

  /// Abandons all buffered state without flushing pages; the WAL (if any)
  /// is preserved. Used by crash-recovery tests to model a process kill.
  Status SimulateCrash();

  BufferPool* buffer_pool() { return pool_.get(); }

 protected:
  PagedManagerBase() = default;

  // StorageManager data ops:
  Result<ObjectId> DoAllocate(Txn* txn, std::string_view data,
                              const AllocHint& hint) override;
  Result<std::string> DoRead(Txn* txn, ObjectId id) override;
  Status DoUpdate(Txn* txn, ObjectId id, std::string_view data) override;
  Status DoFree(Txn* txn, ObjectId id) override;
  Status DoScanAll(
      Txn* txn,
      const std::function<Status(ObjectId, std::string_view)>& fn) override;

  // ---- Policy hooks ------------------------------------------------------

  /// Whether AllocHint::segment is honoured (OStore yes, Texas no).
  virtual bool SupportsSegments() const = 0;

  /// Whether AllocHint::cluster_near is honoured (Texas+TC yes).
  virtual bool UseClusterHint() const = 0;

  /// Allocator size-class model: the on-page footprint for a record of
  /// `encoded_size` bytes. Texas's segregated-fit allocator rounds sizes up
  /// (power-of-two classes), which is what made its database files ~50%
  /// larger than ObjectStore's in the paper's Section 10 table; the default
  /// is exact-fit. Values are clamped to the page capacity.
  virtual size_t StoreSize(size_t encoded_size) const { return encoded_size; }

  /// Gate on every mutating operation (Allocate/Update/Free). A subclass
  /// that has lost its durability guarantee (OStore with a sticky WAL
  /// error) returns Unavailable here, degrading the manager to read-only
  /// until the condition is repaired (a successful checkpoint). Reads and
  /// scans stay unaffected. Default: always writable.
  virtual Status CheckWritable() { return Status::OK(); }

  /// Acquire a page lock for `txn` before any access (OStore: strict 2PL;
  /// default: no locking).
  virtual Status LockPage(Txn* txn, uint64_t page_no, bool exclusive) {
    (void)txn, (void)page_no, (void)exclusive;
    return Status::OK();
  }

  /// Non-blocking variant used by the allocator when probing shared
  /// placement candidates: must return ResourceExhausted instead of waiting
  /// when the lock is held by another transaction, so the allocator can
  /// fall through to another page. Default: same as LockPage.
  virtual Status TryLockPage(Txn* txn, uint64_t page_no, bool exclusive) {
    return LockPage(txn, page_no, exclusive);
  }

  /// Keep a page dirtied by `txn` memory-resident until the transaction
  /// ends (OStore no-steal policy; default: nothing).
  virtual void RetainPage(Txn* txn, uint64_t page_no) {
    (void)txn, (void)page_no;
  }

  // ---- MVCC hooks --------------------------------------------------------

  /// Version chains + commit-timestamp allocator backing snapshot reads.
  /// The base class captures pre-images and serves snapshot read paths when
  /// the subclass enables SupportsSnapshots(); commit stamping
  /// (Prepare/Finalize/Abandon) and abort cleanup are driven by the
  /// subclass's CommitTxn/AbortTxn through this accessor.
  VersionStore* version_store() { return &versions_; }
  const VersionStore* version_store() const { return &versions_; }

  uint64_t AcquireSnapshot() override { return versions_.AcquireSnapshot(); }
  void ReleaseSnapshot(uint64_t ts) override { versions_.ReleaseSnapshot(ts); }

  // ---- Logging hooks (called after the in-memory change, with its LSN) ---

  virtual void OnPageInit(Txn* txn, uint64_t lsn, uint64_t page,
                          uint16_t segment) {
    (void)txn, (void)lsn, (void)page, (void)segment;
  }
  virtual void OnInsert(Txn* txn, uint64_t lsn, uint64_t page, uint16_t slot,
                        std::string_view bytes) {
    (void)txn, (void)lsn, (void)page, (void)slot, (void)bytes;
  }
  virtual void OnUpdate(Txn* txn, uint64_t lsn, uint64_t page, uint16_t slot,
                        std::string_view old_bytes, std::string_view bytes) {
    (void)txn, (void)lsn, (void)page, (void)slot, (void)old_bytes,
        (void)bytes;
  }
  virtual void OnDelete(Txn* txn, uint64_t lsn, uint64_t page, uint16_t slot,
                        std::string_view old_bytes) {
    (void)txn, (void)lsn, (void)page, (void)slot, (void)old_bytes;
  }

  // ---- Lifecycle hooks ----------------------------------------------------

  /// Called after the file is open and the superblock decoded, before the
  /// free-space scan. OStore runs WAL recovery here.
  virtual Status OnOpen(bool fresh) {
    (void)fresh;
    return Status::OK();
  }
  /// Called after a successful checkpoint (OStore truncates its WAL).
  virtual Status OnCheckpoint() { return Status::OK(); }
  /// Called by Close after the checkpoint, before the file closes.
  virtual Status OnClose() { return Status::OK(); }
  /// Called by SimulateCrash before the file closes (release descriptors
  /// without flushing anything beyond what is already on disk).
  virtual Status OnCrash() { return Status::OK(); }
  /// Extra serialized metadata stored in the superblock.
  virtual std::string EncodeMeta() const { return std::string(); }
  virtual Status DecodeMeta(std::string_view meta) {
    (void)meta;
    return Status::OK();
  }
  /// Lets subclasses add their counters (WAL size, lock waits) to stats().
  virtual void AugmentStats(StorageStats* stats) const { (void)stats; }

  // ---- Redo helpers for WAL recovery (idempotent via page LSNs) ----------

  Status RedoPageInit(uint64_t lsn, uint64_t page, uint16_t segment);
  Status RedoInsert(uint64_t lsn, uint64_t page, uint16_t slot,
                    std::string_view bytes);
  Status RedoUpdate(uint64_t lsn, uint64_t page, uint16_t slot,
                    std::string_view bytes);
  Status RedoDelete(uint64_t lsn, uint64_t page, uint16_t slot);

  // ---- Undo helpers for transaction abort (in-memory restore) ------------

  Status UndoInsert(uint64_t page, uint16_t slot);
  Status UndoUpdate(uint64_t page, uint16_t slot, std::string_view old_bytes);
  Status UndoDelete(uint64_t page, uint16_t slot, std::string_view old_bytes);

  /// Record tags as they appear as the first byte of every slot record.
  /// kRecTagData and kRecTagRoot head *public* objects; subclasses use this
  /// to attribute object creation/destruction during undo.
  static constexpr uint8_t kRecTagData = 0;
  static constexpr uint8_t kRecTagForward = 1;
  static constexpr uint8_t kRecTagRoot = 2;
  static constexpr uint8_t kRecTagChunk = 3;
  static constexpr uint8_t kRecTagMovedData = 5;
  static constexpr uint8_t kRecTagMovedRoot = 6;

  /// Stat correction used by transactional subclasses when an abort rolls
  /// back object creations or deletions.
  void AdjustLiveObjects(int64_t delta) {
    live_objects_.fetch_add(static_cast<uint64_t>(delta));
  }

  uint64_t current_lsn() const { return lsn_.load(); }
  void set_lsn(uint64_t lsn) { lsn_.store(lsn); }
  const PagedManagerOptions& options() const { return options_; }
  bool is_open() const { return open_; }
  PageFile* page_file() { return &file_; }
  /// The resolved I/O environment (options().env or Env::Default()).
  Env* env() const { return env_; }

 private:
  struct SegmentState {
    std::string name;
    uint64_t open_page = 0;  // 0 = none (page 0 is the superblock)
    std::map<uint64_t, uint32_t> free_pages;  // page -> approx free bytes
  };

  static constexpr uint32_t kMagic = 0x4C465731;  // "LFW1"
  /// v2: pages carry a checksum trailer (kPageCapacity shrank by 4 bytes),
  /// so v1 files are unreadable and rejected by version.
  static constexpr uint32_t kFormatVersion = 2;
  /// Payload above this size is split into spanning chunks.
  static constexpr size_t kInlineMax = 7900;
  static constexpr size_t kChunkPayload = 7900;
  /// Minimum encoded record size so a forwarding record (9 bytes) can
  /// always replace a record in place.
  static constexpr size_t kMinRecordSize = 9;
  /// Pages with less free space than this leave the free map.
  static constexpr uint32_t kFreeThreshold = 64;
  /// Free space kept on a cluster-anchor page so the anchor objects
  /// (materials, which grow in place) do not overflow into forwarding
  /// chains the moment their page hosts clustered neighbours.
  static constexpr size_t kClusterAnchorSlack = 1024;

  // Record encoding helpers.
  static std::string EncodeData(uint8_t tag, std::string_view payload);
  static std::string EncodeForward(ObjectId target);
  static std::string EncodeRoot(const std::vector<ObjectId>& chunks);
  static Result<std::string_view> DecodePayload(std::string_view record);
  static Result<ObjectId> DecodeForward(std::string_view record);
  static Result<std::vector<ObjectId>> DecodeRoot(std::string_view record);

  uint64_t NextLsn() { return lsn_.fetch_add(1) + 1; }

  /// Pads `record` to its allocator size class (see StoreSize).
  std::string PadRecord(std::string record) const;

  /// Inserts an encoded record honouring placement hints; returns its id.
  /// In a transaction, shared placement candidates are probed with
  /// TryLockPage and the winning page becomes the transaction's preferred
  /// page for the segment, so concurrent inserters spread out instead of
  /// serializing on (or deadlocking over) one open page.
  Result<ObjectId> InsertRecord(Txn* txn, std::string_view record,
                                const AllocHint& hint);
  /// Attempts insertion into one specific page; ResourceExhausted if full
  /// (or, with `try_lock`, if the page lock is held by another txn).
  /// `min_leftover` demands that much free space remain afterwards (used to
  /// keep growth slack on cluster-anchor pages).
  Result<ObjectId> TryInsertOnPage(Txn* txn, uint64_t page_no,
                                   std::string_view record,
                                   size_t min_leftover = 0,
                                   bool try_lock = false);
  /// Creates, initializes and registers a new page in `segment`.
  Result<uint64_t> NewPageInSegment(Txn* txn, uint16_t segment);

  /// Snapshot read path: chain lookup, then a lock-free optimistic physical
  /// read, then a chain re-check that decides whether the physical bytes
  /// were the committed value at the snapshot.
  Result<std::string> SnapshotRead(uint64_t snapshot_ts, ObjectId id);
  Status SnapshotScanAll(
      uint64_t snapshot_ts,
      const std::function<Status(ObjectId, std::string_view)>& fn);

  /// Payload of a terminal (non-forward) record, assembling chunks under
  /// `txn`'s locks; used to capture MVCC pre-images on first touch.
  Result<std::string> PayloadOfRecord(Txn* txn, std::string_view record,
                                      bool for_update = false);

  /// Reads the raw (tagged) record bytes of an object. `for_update` locks
  /// the page exclusively up front: the update/free paths will X-lock it
  /// anyway, and asking for S first is the textbook upgrade deadlock — and
  /// it would also count writers' reads as reader lock-waits in the stats.
  Result<std::string> ReadRaw(Txn* txn, ObjectId id, bool for_update = false);
  /// Follows forwarding records; returns the terminal id (tag 0/2/5 there).
  Result<ObjectId> ResolveForward(Txn* txn, ObjectId id, ObjectId* first_hop,
                                  bool for_update = false);
  /// Deletes one slot, firing hooks and maintaining the free map.
  Status DeleteSlot(Txn* txn, ObjectId id);
  /// Overwrites one slot in place, firing hooks; ResourceExhausted if the
  /// page cannot host the new size.
  Status UpdateSlot(Txn* txn, ObjectId id, std::string_view record);

  void NoteFreeSpaceLocked(uint64_t page_no, uint16_t segment, size_t free)
      LABFLOW_REQUIRES(alloc_mu_);

  Status WriteSuperblock();
  Status ReadSuperblock();
  Status RebuildFromScan();

  // Open/Close lifecycle state: written single-threaded before/after the
  // manager is published to sessions.
  PagedManagerOptions options_;        // NOLINT(guarded-by-coverage)
  Env* env_ = nullptr;                 // NOLINT(guarded-by-coverage)
  PageFile file_;                      // NOLINT(guarded-by-coverage)
  std::unique_ptr<BufferPool> pool_;   // NOLINT(guarded-by-coverage)
  bool open_ = false;                  // NOLINT(guarded-by-coverage)
  /// Checksum rejections on reads that bypass the buffer pool (superblock,
  /// rebuild scan); pool-mediated rejections are counted by the pool.
  std::atomic<uint64_t> direct_checksum_failures_{0};

  std::atomic<uint64_t> lsn_{0};
  std::atomic<uint64_t> root_{0};
  /// Allocator bookkeeping. Short critical sections only: alloc_mu_ is
  /// never held across pool fetches, page latches, or record I/O (the one
  /// exception, the RebuildFromScan recovery scan, runs single-threaded).
  mutable Mutex alloc_mu_{LockRank::kPagedAlloc, "paged.alloc"};
  std::vector<SegmentState> segments_
      LABFLOW_GUARDED_BY(alloc_mu_);  // index = segment id
  std::unordered_map<uint64_t, uint64_t> cluster_overflow_
      LABFLOW_GUARDED_BY(alloc_mu_);
  std::atomic<uint64_t> live_objects_{0};
  VersionStore versions_;  // NOLINT(guarded-by-coverage): self-synchronizing
};

}  // namespace labflow::storage

#endif  // LABFLOW_STORAGE_PAGED_MANAGER_H_
