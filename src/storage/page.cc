#include "storage/page.h"

#include <cstring>
#include <string>
#include <vector>

#include "common/codec.h"

namespace labflow::storage {

void StampPageChecksum(char* page) {
  uint32_t sum = Fnv1a32(std::string_view(page, kPageCapacity));
  if (sum == 0) sum = 1;
  for (int i = 0; i < 4; ++i) {
    page[kPageCapacity + i] = static_cast<char>(sum >> (8 * i));
  }
}

Status VerifyPageChecksum(const char* page, uint64_t page_no) {
  uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<uint32_t>(
                  static_cast<uint8_t>(page[kPageCapacity + i]))
              << (8 * i);
  }
  if (stored == 0) {
    // Never stamped — legitimate only for a freshly appended page, which is
    // all zeros. Content under a zero trailer is a torn first write-back.
    for (size_t i = 0; i < kPageCapacity; ++i) {
      if (page[i] != 0) {
        return Status::Corruption("page " + std::to_string(page_no) +
                                  " has data but no checksum (torn write)");
      }
    }
    return Status::OK();
  }
  uint32_t sum = Fnv1a32(std::string_view(page, kPageCapacity));
  if (sum == 0) sum = 1;
  if (sum != stored) {
    return Status::Corruption("page " + std::to_string(page_no) +
                              " checksum mismatch (torn write or bit rot)");
  }
  return Status::OK();
}

uint16_t Page::LoadU16(size_t off) const {
  uint16_t v;
  std::memcpy(&v, data_ + off, sizeof(v));
  return v;
}

void Page::StoreU16(size_t off, uint16_t v) {
  std::memcpy(data_ + off, &v, sizeof(v));
}

uint64_t Page::LoadU64(size_t off) const {
  uint64_t v;
  std::memcpy(&v, data_ + off, sizeof(v));
  return v;
}

void Page::StoreU64(size_t off, uint64_t v) {
  std::memcpy(data_ + off, &v, sizeof(v));
}

void Page::Initialize(uint16_t segment) {
  std::memset(data_, 0, kHeaderSize);
  set_segment(segment);
  set_free_start(kHeaderSize);
}

size_t Page::ContiguousFree() const {
  size_t dir_start = SlotDirStart();
  size_t fs = free_start();
  return dir_start > fs ? dir_start - fs : 0;
}

size_t Page::FreeForInsert() const {
  // After compaction, usable space is everything not occupied by live
  // records, the header, or the slot directory. A free slot in the
  // directory can be reused; otherwise the insert needs one more entry.
  size_t live = LiveBytes();
  bool has_free_slot = false;
  for (uint16_t s = 0; s < slot_count(); ++s) {
    if (!IsLive(s)) {
      has_free_slot = true;
      break;
    }
  }
  size_t dir = kSlotSize * slot_count() + (has_free_slot ? 0 : kSlotSize);
  size_t used = kHeaderSize + live + dir;
  return used < kPageCapacity ? kPageCapacity - used : 0;
}

size_t Page::LiveBytes() const {
  size_t total = 0;
  for (uint16_t s = 0; s < slot_count(); ++s) {
    if (IsLive(s)) total += SlotLength(s);
  }
  return total;
}

bool Page::IsLive(uint16_t slot) const {
  return slot < slot_count() && SlotOffset(slot) != 0;
}

Result<uint16_t> Page::Insert(std::string_view record) {
  if (record.size() > kMaxRecordSize) {
    return Status::InvalidArgument("record exceeds page capacity");
  }
  // Find a reusable slot, or plan to append one.
  uint16_t slot = slot_count();
  for (uint16_t s = 0; s < slot_count(); ++s) {
    if (!IsLive(s)) {
      slot = s;
      break;
    }
  }
  bool new_slot = (slot == slot_count());
  size_t need = record.size() + (new_slot ? kSlotSize : 0);
  if (ContiguousFree() < need) {
    if (FreeForInsert() < record.size()) {
      return Status::ResourceExhausted("page full");
    }
    Compact();
    if (ContiguousFree() < need) {
      return Status::ResourceExhausted("page full after compaction");
    }
  }
  uint16_t offset = free_start();
  std::memcpy(data_ + offset, record.data(), record.size());
  set_free_start(static_cast<uint16_t>(offset + record.size()));
  if (new_slot) set_slot_count(static_cast<uint16_t>(slot_count() + 1));
  SetSlot(slot, offset, static_cast<uint16_t>(record.size()));
  return slot;
}

Status Page::InsertAt(uint16_t slot, std::string_view record) {
  if (record.size() > kMaxRecordSize) {
    return Status::InvalidArgument("record exceeds page capacity");
  }
  if (IsLive(slot)) return Status::AlreadyExists("slot occupied");
  uint16_t new_count = slot_count();
  if (slot >= new_count) new_count = static_cast<uint16_t>(slot + 1);
  size_t extra_dir = kSlotSize * (new_count - slot_count());
  if (ContiguousFree() < record.size() + extra_dir) {
    if (FreeForInsert() + kSlotSize <
        record.size() + extra_dir) {
      return Status::ResourceExhausted("page full");
    }
    Compact();
    if (ContiguousFree() < record.size() + extra_dir) {
      return Status::ResourceExhausted("page full after compaction");
    }
  }
  // Extend the directory, marking intermediate slots dead.
  uint16_t old_count = slot_count();
  set_slot_count(new_count);
  for (uint16_t s = old_count; s < new_count; ++s) SetSlot(s, 0, 0);
  uint16_t offset = free_start();
  std::memcpy(data_ + offset, record.data(), record.size());
  set_free_start(static_cast<uint16_t>(offset + record.size()));
  SetSlot(slot, offset, static_cast<uint16_t>(record.size()));
  return Status::OK();
}

Result<std::string_view> Page::Read(uint16_t slot) const {
  if (!IsLive(slot)) return Status::NotFound("dead slot");
  return std::string_view(data_ + SlotOffset(slot), SlotLength(slot));
}

Status Page::Update(uint16_t slot, std::string_view record) {
  if (!IsLive(slot)) return Status::NotFound("dead slot");
  uint16_t old_len = SlotLength(slot);
  if (record.size() <= old_len) {
    // Shrink or same size: overwrite in place. The tail of the old extent
    // becomes a hole reclaimed by a later Compact().
    std::memcpy(data_ + SlotOffset(slot), record.data(), record.size());
    SetSlot(slot, SlotOffset(slot), static_cast<uint16_t>(record.size()));
    return Status::OK();
  }
  if (record.size() > kMaxRecordSize) {
    return Status::InvalidArgument("record exceeds page capacity");
  }
  // Grow: need a fresh extent. Temporarily drop the old extent from the
  // accounting, then place the new one (compacting if needed).
  size_t avail = FreeForInsert() + old_len;
  if (avail < record.size()) {
    return Status::ResourceExhausted("page full");
  }
  // Preserve old bytes in case the caller's view aliases this page.
  std::vector<char> copy(record.begin(), record.end());
  SetSlot(slot, 0, 0);  // mark dead during compaction
  if (ContiguousFree() < copy.size()) Compact();
  uint16_t offset = free_start();
  std::memcpy(data_ + offset, copy.data(), copy.size());
  set_free_start(static_cast<uint16_t>(offset + copy.size()));
  SetSlot(slot, offset, static_cast<uint16_t>(copy.size()));
  return Status::OK();
}

Status Page::Delete(uint16_t slot) {
  if (!IsLive(slot)) return Status::NotFound("dead slot");
  SetSlot(slot, 0, 0);
  return Status::OK();
}

void Page::Compact() {
  struct Extent {
    uint16_t slot;
    uint16_t offset;
    uint16_t length;
  };
  std::vector<Extent> live;
  live.reserve(slot_count());
  for (uint16_t s = 0; s < slot_count(); ++s) {
    if (IsLive(s)) live.push_back({s, SlotOffset(s), SlotLength(s)});
  }
  // Copy live records into a scratch buffer, then lay them out densely.
  std::vector<char> scratch;
  scratch.reserve(kPageSize);
  for (const Extent& e : live) {
    scratch.insert(scratch.end(), data_ + e.offset, data_ + e.offset + e.length);
  }
  uint16_t cursor = kHeaderSize;
  size_t src = 0;
  for (const Extent& e : live) {
    std::memcpy(data_ + cursor, scratch.data() + src, e.length);
    SetSlot(e.slot, cursor, e.length);
    cursor = static_cast<uint16_t>(cursor + e.length);
    src += e.length;
  }
  set_free_start(cursor);
}

}  // namespace labflow::storage
