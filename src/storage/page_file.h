#ifndef LABFLOW_STORAGE_PAGE_FILE_H_
#define LABFLOW_STORAGE_PAGE_FILE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/env.h"
#include "storage/page.h"

namespace labflow::storage {

/// File-backed array of kPageSize pages over a storage::Env file handle,
/// so tests can swap the real filesystem for a FaultInjectionEnv.
///
/// Page numbering starts at 0; callers typically reserve page 0 for a
/// superblock. PageFile performs no caching — that is the buffer pool's job.
/// Concurrency: AppendPage is internally serialized and page_count() is a
/// relaxed atomic (so growth is safe alongside concurrent readers); reads
/// and writes of the *same* page are the caller's to serialize (page locks
/// in OStore, the single-transaction discipline in Texas).
class PageFile {
 public:
  PageFile() = default;
  ~PageFile();

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Opens (creating if necessary) the file at `path` in `env`. Truncates
  /// to empty when `truncate` is set. Passing nullptr uses Env::Default().
  Status Open(Env* env, const std::string& path, bool truncate);
  Status Open(const std::string& path, bool truncate) {
    return Open(nullptr, path, truncate);
  }

  Status Close();

  bool is_open() const { return file_ != nullptr; }

  /// Number of pages currently in the file.
  uint64_t page_count() const {
    return page_count_.load(std::memory_order_relaxed);
  }

  /// Appends a zeroed page; returns its page number.
  Result<uint64_t> AppendPage();

  /// Reads page `page_no` into `buf` (must hold kPageSize bytes).
  Status ReadPage(uint64_t page_no, char* buf);

  /// Writes `buf` (kPageSize bytes) to page `page_no`, which must exist.
  Status WritePage(uint64_t page_no, const char* buf);

  /// Flushes OS buffers to stable storage (fdatasync).
  Status Sync();

  /// Total file size in bytes.
  uint64_t SizeBytes() const { return page_count() * kPageSize; }

 private:
  // Open/Close are single-threaded lifecycle; file_ and path_ are constant
  // between them, so only the append path needs the mutex.
  std::unique_ptr<File> file_;  // NOLINT(guarded-by-coverage): lifecycle
  std::atomic<uint64_t> page_count_{0};
  /// Serializes growth: one append at a time, deliberately held across the
  /// zero-page write so page_count_ only ever publishes written pages.
  /// Ranked kPageAppend — innermost except the fault-injection env.
  Mutex append_mu_{LockRank::kPageAppend, "page_file.append"};
  std::string path_;  // NOLINT(guarded-by-coverage): lifecycle
};

}  // namespace labflow::storage

#endif  // LABFLOW_STORAGE_PAGE_FILE_H_
