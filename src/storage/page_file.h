#ifndef LABFLOW_STORAGE_PAGE_FILE_H_
#define LABFLOW_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"

namespace labflow::storage {

/// File-backed array of kPageSize pages accessed with pread/pwrite.
///
/// Page numbering starts at 0; callers typically reserve page 0 for a
/// superblock. PageFile performs no caching — that is the buffer pool's job —
/// and no locking: callers serialize access.
class PageFile {
 public:
  PageFile() = default;
  ~PageFile();

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Opens (creating if necessary) the file at `path`. Truncates to empty
  /// when `truncate` is set.
  Status Open(const std::string& path, bool truncate);

  Status Close();

  bool is_open() const { return fd_ >= 0; }

  /// Number of pages currently in the file.
  uint64_t page_count() const { return page_count_; }

  /// Appends a zeroed page; returns its page number.
  Result<uint64_t> AppendPage();

  /// Reads page `page_no` into `buf` (must hold kPageSize bytes).
  Status ReadPage(uint64_t page_no, char* buf);

  /// Writes `buf` (kPageSize bytes) to page `page_no`, which must exist.
  Status WritePage(uint64_t page_no, const char* buf);

  /// Flushes OS buffers to stable storage (fdatasync).
  Status Sync();

  /// Total file size in bytes.
  uint64_t SizeBytes() const { return page_count_ * kPageSize; }

 private:
  int fd_ = -1;
  uint64_t page_count_ = 0;
  std::string path_;
};

}  // namespace labflow::storage

#endif  // LABFLOW_STORAGE_PAGE_FILE_H_
