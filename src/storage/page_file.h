#ifndef LABFLOW_STORAGE_PAGE_FILE_H_
#define LABFLOW_STORAGE_PAGE_FILE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/env.h"
#include "storage/page.h"

namespace labflow::storage {

/// File-backed array of kPageSize pages over a storage::Env file handle,
/// so tests can swap the real filesystem for a FaultInjectionEnv.
///
/// Page numbering starts at 0; callers typically reserve page 0 for a
/// superblock. PageFile performs no caching — that is the buffer pool's job.
/// Concurrency: AppendPage is internally serialized and page_count() is a
/// relaxed atomic (so growth is safe alongside concurrent readers); reads
/// and writes of the *same* page are the caller's to serialize (page locks
/// in OStore, the single-transaction discipline in Texas).
class PageFile {
 public:
  PageFile() = default;
  ~PageFile();

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Opens (creating if necessary) the file at `path` in `env`. Truncates
  /// to empty when `truncate` is set. Passing nullptr uses Env::Default().
  Status Open(Env* env, const std::string& path, bool truncate);
  Status Open(const std::string& path, bool truncate) {
    return Open(nullptr, path, truncate);
  }

  Status Close();

  bool is_open() const { return file_ != nullptr; }

  /// Number of pages currently in the file.
  uint64_t page_count() const {
    return page_count_.load(std::memory_order_relaxed);
  }

  /// Appends a zeroed page; returns its page number.
  Result<uint64_t> AppendPage();

  /// Reads page `page_no` into `buf` (must hold kPageSize bytes).
  Status ReadPage(uint64_t page_no, char* buf);

  /// Writes `buf` (kPageSize bytes) to page `page_no`, which must exist.
  Status WritePage(uint64_t page_no, const char* buf);

  /// Flushes OS buffers to stable storage (fdatasync).
  Status Sync();

  /// Total file size in bytes.
  uint64_t SizeBytes() const { return page_count() * kPageSize; }

 private:
  std::unique_ptr<File> file_;
  std::atomic<uint64_t> page_count_{0};
  std::mutex append_mu_;
  std::string path_;
};

}  // namespace labflow::storage

#endif  // LABFLOW_STORAGE_PAGE_FILE_H_
