#include "storage/env.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>

namespace labflow::storage {

namespace {

Status ErrnoStatus(const std::string& what, int err) {
  return Status::IOError(what + ": " + strerror(err));
}

/// POSIX File over pread/pwrite. Short transfers and EINTR are retried in a
/// loop — a non-negative short count is progress, not an error, and carries
/// no errno — so callers only ever see complete transfers or a real error.
class PosixFile : public File {
 public:
  PosixFile(int fd, std::string path, uint64_t size)
      : fd_(fd), path_(std::move(path)), size_(size) {}

  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(uint64_t offset, size_t n, char* buf) override {
    size_t done = 0;
    while (done < n) {
      ssize_t r = ::pread(fd_, buf + done, n - done,
                          static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pread " + path_, errno);
      }
      if (r == 0) {
        return Status::IOError("pread " + path_ + ": unexpected end of file");
      }
      done += static_cast<size_t>(r);
    }
    return Status::OK();
  }

  Status Write(uint64_t offset, std::string_view data) override {
    size_t done = 0;
    while (done < data.size()) {
      ssize_t w = ::pwrite(fd_, data.data() + done, data.size() - done,
                           static_cast<off_t>(offset + done));
      if (w < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pwrite " + path_, errno);
      }
      done += static_cast<size_t>(w);
    }
    uint64_t end = offset + data.size();
    uint64_t cur = size_.load(std::memory_order_relaxed);
    while (end > cur &&
           !size_.compare_exchange_weak(cur, end, std::memory_order_relaxed)) {
    }
    return Status::OK();
  }

  Status Append(std::string_view data) override {
    return Write(size_.load(std::memory_order_relaxed), data);
  }

  Status Sync() override {
    if (::fdatasync(fd_) != 0) return ErrnoStatus("fdatasync " + path_, errno);
    return Status::OK();
  }

  Result<uint64_t> Size() const override {
    return size_.load(std::memory_order_relaxed);
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close " + path_, errno);
    return Status::OK();
  }

 private:
  int fd_;
  const std::string path_;
  std::atomic<uint64_t> size_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<File>> OpenFile(const std::string& path,
                                          bool truncate) override {
    int flags = O_RDWR | O_CREAT | O_CLOEXEC;
    if (truncate) flags |= O_TRUNC;
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return ErrnoStatus("open " + path, errno);
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      int err = errno;
      ::close(fd);
      return ErrnoStatus("fstat " + path, err);
    }
    return std::unique_ptr<File>(
        new PosixFile(fd, path, static_cast<uint64_t>(st.st_size)));
  }

  Status Delete(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return ErrnoStatus("unlink " + path, errno);
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

}  // namespace labflow::storage
