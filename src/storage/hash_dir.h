#ifndef LABFLOW_STORAGE_HASH_DIR_H_
#define LABFLOW_STORAGE_HASH_DIR_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/storage_manager.h"

namespace labflow::storage {

/// A persistent hash directory: string key -> ObjectId, stored entirely as
/// storage-manager objects. This is the kind of "special access structure"
/// the real LabBase kept in persistent C++ next to its data (paper Section
/// 5); LabBase uses it for its material-name index so reopening a database
/// does not require a full scan.
///
/// Layout: one root object {bucket_count, entry_count, bucket ids...}; each
/// bucket is one object holding its (key, id) entries. The table doubles
/// when the mean bucket occupancy exceeds a threshold (all buckets are
/// rewritten; the root id stays stable so owners can hold it forever).
///
/// Not thread-safe; callers serialize access (as LabBase does). Each
/// operation takes an optional explicit Txn* forwarded to the underlying
/// storage manager (nullptr = auto-commit).
class HashDir {
 public:
  /// Creates an empty directory on `mgr`; returns the handle. The root id
  /// (via root_id()) is what the owner persists.
  static Result<std::unique_ptr<HashDir>> Create(StorageManager* mgr,
                                                 const AllocHint& hint,
                                                 uint32_t initial_buckets = 16);

  /// Attaches to an existing directory by its root id.
  static Result<std::unique_ptr<HashDir>> Attach(StorageManager* mgr,
                                                 ObjectId root);

  HashDir(const HashDir&) = delete;
  HashDir& operator=(const HashDir&) = delete;

  ObjectId root_id() const { return root_; }
  uint64_t size() const { return entry_count_; }

  /// Inserts key -> id; AlreadyExists if the key is present.
  Status Insert(std::string_view key, ObjectId id, Txn* txn = nullptr);

  /// Returns the id for `key`, or NotFound.
  Result<ObjectId> Lookup(std::string_view key, Txn* txn = nullptr);

  /// Removes `key`; NotFound if absent.
  Status Erase(std::string_view key, Txn* txn = nullptr);

  /// Visits every (key, id) pair. Order is unspecified.
  Status ForEach(const std::function<Status(std::string_view, ObjectId)>& fn,
                 Txn* txn = nullptr);

 private:
  /// Mean entries per bucket that triggers doubling.
  static constexpr uint64_t kSplitLoad = 48;

  HashDir(StorageManager* mgr, AllocHint hint) : mgr_(mgr), hint_(hint) {}

  static uint64_t HashKey(std::string_view key);

  struct Bucket {
    std::vector<std::pair<std::string, ObjectId>> entries;
    std::string Encode() const;
    static Result<Bucket> Decode(std::string_view data);
  };

  Result<Bucket> ReadBucket(Txn* txn, uint32_t index);
  Status WriteBucket(Txn* txn, uint32_t index, const Bucket& bucket);
  Status WriteRoot(Txn* txn);
  Status LoadRoot();
  /// Doubles the bucket table and rehashes every entry.
  Status Grow(Txn* txn);

  StorageManager* mgr_;
  AllocHint hint_;
  ObjectId root_;
  std::vector<ObjectId> buckets_;
  uint64_t entry_count_ = 0;
};

}  // namespace labflow::storage

#endif  // LABFLOW_STORAGE_HASH_DIR_H_
