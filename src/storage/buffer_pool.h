#ifndef LABFLOW_STORAGE_BUFFER_POOL_H_
#define LABFLOW_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/page.h"
#include "storage/page_file.h"

namespace labflow::storage {

/// Counters the benchmark reports. `disk_reads` is LabFlow-1's `majflt`
/// proxy: in both ObjectStore and Texas a major page fault is exactly "a
/// page demand-read from the database file", which for us is a buffer-pool
/// miss that goes to disk.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t disk_reads = 0;
  uint64_t disk_writes = 0;
  uint64_t evictions = 0;
  uint64_t checksum_failures = 0;  ///< pages rejected by VerifyPageChecksum
};

/// A fixed-capacity LRU page cache over a PageFile.
///
/// Thread safety: all public methods are internally synchronized. Access to
/// the *contents* of a pinned frame must hold that frame's latch()
/// (byte-level, access-scope) — transaction page locks are txn-scope and a
/// no-op both for auto-commit operations and for managers without locking
/// (Texas), so they cannot serialize two writers on the same page bytes.
/// Flushing a frame that a concurrent writer is mutating is still the
/// caller's checkpoint discipline.
class BufferPool {
 public:
  /// `capacity_pages` must be >= 2 (one target + one victim-in-flight).
  /// `fault_delay_us` adds a simulated disk latency to every miss that
  /// reads from the file: on a modern machine the page file usually sits in
  /// the OS page cache, so without this knob a 1996-style fault costs
  /// microseconds instead of milliseconds. Used by bench_fig_locality to
  /// reproduce the paper's elapsed-time divergence.
  BufferPool(PageFile* file, size_t capacity_pages,
             int64_t fault_delay_us = 0);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  class Frame {
   public:
    char* data() { return data_.get(); }
    const char* data() const { return data_.get(); }
    uint64_t page_no() const { return page_no_; }
    void MarkDirty() { dirty_.store(true, std::memory_order_release); }

    /// Byte-level latch: hold it (MutexLock) around any read or write of
    /// data(). Leaf lock — never acquire another mutex while holding it.
    Mutex& latch() const LABFLOW_RETURN_CAPABILITY(latch_) { return latch_; }

   private:
    friend class BufferPool;
    std::unique_ptr<char[]> data_;
    uint64_t page_no_ = 0;
    int pin_count_ = 0;
    std::atomic<bool> dirty_{false};
    std::list<uint64_t>::iterator lru_pos_;
    bool in_lru_ = false;
    mutable Mutex latch_;
  };

  /// RAII pin: unpins on destruction.
  class PinGuard {
   public:
    PinGuard() = default;
    PinGuard(BufferPool* pool, Frame* frame) : pool_(pool), frame_(frame) {}
    PinGuard(PinGuard&& o) noexcept : pool_(o.pool_), frame_(o.frame_) {
      o.pool_ = nullptr;
      o.frame_ = nullptr;
    }
    PinGuard& operator=(PinGuard&& o) noexcept {
      Release();
      pool_ = o.pool_;
      frame_ = o.frame_;
      o.pool_ = nullptr;
      o.frame_ = nullptr;
      return *this;
    }
    PinGuard(const PinGuard&) = delete;
    PinGuard& operator=(const PinGuard&) = delete;
    ~PinGuard() { Release(); }

    Frame* frame() const { return frame_; }
    Frame* operator->() const { return frame_; }
    bool valid() const { return frame_ != nullptr; }

    void Release() {
      if (pool_ != nullptr && frame_ != nullptr) pool_->Unpin(frame_);
      pool_ = nullptr;
      frame_ = nullptr;
    }

   private:
    BufferPool* pool_ = nullptr;
    Frame* frame_ = nullptr;
  };

  /// Pins the page, reading it from disk on a miss (counted as a
  /// disk_read / simulated major fault).
  Result<PinGuard> Fetch(uint64_t page_no) LABFLOW_EXCLUDES(mu_);

  /// Appends a fresh zeroed page to the file and pins it (no disk read).
  Result<PinGuard> NewPage() LABFLOW_EXCLUDES(mu_);

  /// Writes all dirty frames back to the file (does not sync).
  Status FlushAll() LABFLOW_EXCLUDES(mu_);

  /// Flushes one page if cached and dirty.
  Status FlushPage(uint64_t page_no) LABFLOW_EXCLUDES(mu_);

  /// Drops every unpinned frame from the cache (after FlushAll, typically);
  /// used by tests to force cold reads.
  Status DropClean() LABFLOW_EXCLUDES(mu_);

  BufferPoolStats stats() const LABFLOW_EXCLUDES(mu_) {
    MutexLock g(mu_);
    return stats_;
  }

  size_t capacity() const { return capacity_; }

 private:
  void Unpin(Frame* frame) LABFLOW_EXCLUDES(mu_);
  /// Evicts LRU unpinned frames until the cache has room for one more.
  Status EnsureCapacityLocked() LABFLOW_REQUIRES(mu_);
  void TouchLocked(Frame* frame) LABFLOW_REQUIRES(mu_);

  PageFile* file_;
  size_t capacity_;
  int64_t fault_delay_us_;
  mutable Mutex mu_;
  std::unordered_map<uint64_t, std::unique_ptr<Frame>> frames_
      LABFLOW_GUARDED_BY(mu_);
  std::list<uint64_t> lru_ LABFLOW_GUARDED_BY(mu_);  // front = MRU
  BufferPoolStats stats_ LABFLOW_GUARDED_BY(mu_);
};

}  // namespace labflow::storage

#endif  // LABFLOW_STORAGE_BUFFER_POOL_H_
