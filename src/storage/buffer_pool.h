#ifndef LABFLOW_STORAGE_BUFFER_POOL_H_
#define LABFLOW_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/page.h"
#include "storage/page_file.h"

namespace labflow::storage {

/// Counters the benchmark reports. `disk_reads` is LabFlow-1's `majflt`
/// proxy: in both ObjectStore and Texas a major page fault is exactly "a
/// page demand-read from the database file", which for us is a buffer-pool
/// miss that goes to disk. Invariant: `hits + disk_reads >= fetches`, with
/// equality when no read attempt failed (a failed attempt still counts as a
/// disk_read, and the caller's Fetch resolves as neither hit nor cached).
struct BufferPoolStats {
  uint64_t fetches = 0;  ///< Fetch() calls (not NewPage)
  uint64_t hits = 0;
  uint64_t disk_reads = 0;  ///< read attempts, including failed ones
  uint64_t disk_writes = 0;
  uint64_t evictions = 0;
  uint64_t checksum_failures = 0;  ///< pages rejected by VerifyPageChecksum
  uint64_t shard_mutex_waits = 0;  ///< shard-lock acquisitions that blocked
};

/// A sharded, fixed-capacity LRU page cache over a PageFile.
///
/// The cache is split into N shards (power of two; by default one shard per
/// 256 pages of capacity, at least one), selected by the low bits of the
/// page number. Each shard has its own mutex, frame map, LRU list, and
/// counters, so fetches of pages in different shards never contend. All
/// I/O — miss reads, eviction write-back, flushes — happens *outside* the
/// shard mutex: a miss installs an in-flight frame, drops the lock, reads,
/// and publishes; concurrent fetchers of the same page wait on the frame
/// (one disk read, not N) while hits on other pages in the shard proceed.
///
/// Thread safety: all public methods are internally synchronized. Access to
/// the *contents* of a pinned frame must hold that frame's latch() —
/// shared for reads, exclusive for writes (byte-level, access-scope).
/// Transaction page locks are txn-scope and a no-op both for auto-commit
/// operations and for managers without locking (Texas), so they cannot
/// serialize two writers on the same page bytes. Lock order: shard mutex →
/// frame latch, never the reverse. Flushing a frame that a concurrent
/// writer is mutating is still the caller's checkpoint discipline.
class BufferPool {
 public:
  /// `capacity_pages` must be >= 2 (one target + one victim-in-flight).
  /// `fault_delay_us` adds a simulated disk latency to every miss that
  /// reads from the file: on a modern machine the page file usually sits in
  /// the OS page cache, so without this knob a 1996-style fault costs
  /// microseconds instead of milliseconds. Used by bench_fig_locality to
  /// reproduce the paper's elapsed-time divergence.
  /// `shards` overrides the shard count (rounded down to a power of two,
  /// clamped so every shard keeps >= 2 frames); 0 picks the default.
  BufferPool(PageFile* file, size_t capacity_pages, int64_t fault_delay_us = 0,
             size_t shards = 0);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  class Frame {
   public:
    char* data() { return data_.get(); }
    const char* data() const { return data_.get(); }
    uint64_t page_no() const { return page_no_; }
    void MarkDirty() { dirty_.store(true, std::memory_order_release); }

    /// Byte-level latch: hold it around any access to data() —
    /// ReaderMutexLock to read, WriterMutexLock to mutate. Ranked
    /// kFrameLatch: above the shard mutex (which is never held when a
    /// latch is taken), below the version store — TryInsertOnPage
    /// registers pending inserts with VersionStore under the writer
    /// latch, so the latch is no longer a leaf (since the MVCC PR).
    SharedMutex& latch() const LABFLOW_RETURN_CAPABILITY(latch_) {
      return latch_;
    }

   private:
    friend class BufferPool;

    /// kLoading: in the map, being read from disk off-lock; not in the LRU,
    /// not evictable, contents unpublished. kReady: normal cached state.
    /// kWriting: victim mid-write-back off-lock; kept in the map so a
    /// concurrent Fetch of the same page waits instead of re-reading bytes
    /// the write may not have persisted yet.
    enum class State { kLoading, kReady, kWriting };

    // The non-atomic members are guarded by the owning shard's mutex, a
    // different object — inexpressible as GUARDED_BY, hence the waivers.
    std::unique_ptr<char[]> data_;  // NOLINT(guarded-by-coverage): via latch_
    uint64_t page_no_ = 0;  // NOLINT(guarded-by-coverage): set before publish
    std::atomic<int> pin_count_{0};  // 0->1 only under the shard mutex
    std::atomic<bool> dirty_{false};
    State state_ =
        State::kLoading;  // NOLINT(guarded-by-coverage): shard mutex
    std::list<uint64_t>::iterator
        lru_pos_;            // NOLINT(guarded-by-coverage): shard mutex
    bool in_lru_ = false;    // NOLINT(guarded-by-coverage): shard mutex
    mutable SharedMutex latch_{LockRank::kFrameLatch, "buffer_pool.latch"};
  };

  /// RAII pin: unpins on destruction.
  class PinGuard {
   public:
    PinGuard() = default;
    PinGuard(BufferPool* pool, Frame* frame) : pool_(pool), frame_(frame) {}
    PinGuard(PinGuard&& o) noexcept : pool_(o.pool_), frame_(o.frame_) {
      o.pool_ = nullptr;
      o.frame_ = nullptr;
    }
    PinGuard& operator=(PinGuard&& o) noexcept {
      Release();
      pool_ = o.pool_;
      frame_ = o.frame_;
      o.pool_ = nullptr;
      o.frame_ = nullptr;
      return *this;
    }
    PinGuard(const PinGuard&) = delete;
    PinGuard& operator=(const PinGuard&) = delete;
    ~PinGuard() { Release(); }

    Frame* frame() const { return frame_; }
    Frame* operator->() const { return frame_; }
    bool valid() const { return frame_ != nullptr; }

    void Release() {
      if (pool_ != nullptr && frame_ != nullptr) pool_->Unpin(frame_);
      pool_ = nullptr;
      frame_ = nullptr;
    }

   private:
    BufferPool* pool_ = nullptr;
    Frame* frame_ = nullptr;
  };

  /// Pins the page, reading it from disk on a miss (counted as a
  /// disk_read / simulated major fault). The read happens outside the
  /// shard mutex; concurrent fetchers of the same page share one read.
  Result<PinGuard> Fetch(uint64_t page_no);

  /// Appends a fresh zeroed page to the file and pins it (no disk read).
  Result<PinGuard> NewPage();

  /// Writes all dirty frames back to the file (does not sync). Each frame
  /// is staged under its latch and written outside the shard mutex, so
  /// concurrent fetches are never blocked on flush I/O.
  Status FlushAll();

  /// Flushes one page if cached and dirty.
  Status FlushPage(uint64_t page_no);

  /// Drops every unpinned frame from the cache (after FlushAll, typically);
  /// used by tests to force cold reads.
  Status DropClean();

  /// Aggregated counters across all shards.
  BufferPoolStats stats() const;

  /// Per-shard counters, for contention reporting (bench_fig_concurrency).
  std::vector<BufferPoolStats> shard_stats() const;

  size_t capacity() const { return capacity_; }
  size_t shard_count() const { return shards_.size(); }

 private:
  /// Lock-free counters; bumped under the shard mutex on the fetch path but
  /// off-lock for write-back, hence atomics.
  struct ShardStats {
    std::atomic<uint64_t> fetches{0};
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> disk_reads{0};
    std::atomic<uint64_t> disk_writes{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> checksum_failures{0};
    std::atomic<uint64_t> mutex_waits{0};
  };

  struct Shard {
    mutable Mutex mu{LockRank::kBufferShard, "buffer_pool.shard"};
    /// Signaled whenever a frame changes state (published, write-back done,
    /// load failed): waiters in Fetch/FlushPage/EnsureCapacity re-check.
    CondVar cv;
    std::unordered_map<uint64_t, std::unique_ptr<Frame>> frames
        LABFLOW_GUARDED_BY(mu);
    std::list<uint64_t> lru LABFLOW_GUARDED_BY(mu);  // front = MRU
    size_t capacity = 0;  // NOLINT(guarded-by-coverage): set at construction
    int writing LABFLOW_GUARDED_BY(mu) = 0;  ///< frames in State::kWriting
    ShardStats stats;  // NOLINT(guarded-by-coverage): atomic counters
  };

  Shard& ShardFor(uint64_t page_no) const {
    return *shards_[page_no & shard_mask_];
  }
  void Unpin(Frame* frame);
  /// Evicts LRU unpinned frames until `s` has room. May drop and reacquire
  /// `s.mu` around a victim's write-back; holds it again on return.
  Status EnsureCapacityLocked(Shard& s) LABFLOW_REQUIRES(s.mu);
  void TouchLocked(Shard& s, Frame* frame) LABFLOW_REQUIRES(s.mu);
  /// Stages `frame` (pinned by the caller, no shard mutex held) under its
  /// latch and writes it out; restores the dirty bit on failure.
  Status WriteBack(Frame* frame, ShardStats& stats);
  void LockShard(Shard& s) const LABFLOW_ACQUIRE(s.mu);

  PageFile* file_;
  size_t capacity_;
  int64_t fault_delay_us_;
  uint64_t shard_mask_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace labflow::storage

#endif  // LABFLOW_STORAGE_BUFFER_POOL_H_
