#ifndef LABFLOW_STORAGE_STORAGE_MANAGER_H_
#define LABFLOW_STORAGE_STORAGE_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/object_id.h"

namespace labflow::storage {

class StorageManager;

/// Counters reported by every storage manager. `disk_reads` is the
/// LabFlow-1 `majflt` proxy (a demand page read from the database file —
/// see DESIGN.md, substitution table).
///
/// Thread-safety contract: stats() may be called from any thread at any
/// time, including while other threads run transactions. Every counter is
/// maintained with either a mutex or relaxed atomics, so the snapshot is
/// tear-free per field; it is NOT a consistent cut across fields (e.g.
/// txn_commits may already include a commit whose disk_writes are still
/// being counted).
struct StorageStats {
  uint64_t disk_reads = 0;
  uint64_t disk_writes = 0;
  uint64_t cache_hits = 0;
  uint64_t evictions = 0;
  uint64_t db_size_bytes = 0;
  uint64_t wal_bytes = 0;
  /// Group-commit telemetry (zero for managers without a WAL): redo groups
  /// appended, coalesced batch writes, and batches that ended in a sync.
  /// Mean frames-per-sync is wal_frames / wal_group_syncs.
  uint64_t wal_frames = 0;
  uint64_t wal_group_writes = 0;
  uint64_t wal_group_syncs = 0;
  uint64_t live_objects = 0;
  uint64_t lock_waits = 0;
  uint64_t txn_commits = 0;
  uint64_t txn_aborts = 0;
  /// Fault-tolerance telemetry: attempts re-run by RunTransaction, waits-for
  /// cycles broken by the lock manager, and pages rejected by the page
  /// checksum (zero for managers without the corresponding machinery).
  uint64_t txn_retries = 0;
  uint64_t deadlocks = 0;
  uint64_t checksum_failures = 0;
  /// MVCC telemetry (zero for managers without snapshot support). The
  /// reader_* counters split lock_waits/deadlocks by request mode: a shared
  /// (read) lock request that had to block, and a deadlock victim whose
  /// pending request was shared. The snapshot regimes gate on both being
  /// zero — snapshot readers take no page locks at all.
  uint64_t reader_lock_waits = 0;
  uint64_t reader_deadlocks = 0;
  uint64_t snapshots_opened = 0;
  /// Largest commit timestamp allocated (persisted across restarts by
  /// WAL-backed managers; recovery rebuilds it).
  uint64_t commit_ts_hwm = 0;
  /// Live version chains in the MVCC sidecar (GC keeps this bounded).
  uint64_t mvcc_chains = 0;
  /// LSM telemetry (zero/empty for non-LSM managers). `lsm_level_files[n]`
  /// is the live SSTable count on level n; bloom hit rate is
  /// lsm_bloom_hits / lsm_bloom_checks (a "hit" = the filter proved the key
  /// absent and saved the block reads). lsm_write_throttles counts commits
  /// that were slowed or stopped by compaction backpressure.
  uint64_t lsm_memtable_bytes = 0;
  std::vector<uint64_t> lsm_level_files;
  uint64_t lsm_compaction_bytes_read = 0;
  uint64_t lsm_compaction_bytes_written = 0;
  uint64_t lsm_bloom_checks = 0;
  uint64_t lsm_bloom_hits = 0;
  uint64_t lsm_write_throttles = 0;
};

/// Backoff policy for StorageManager::RunTransaction. Retries apply only to
/// kAborted outcomes (deadlock victim or lock timeout) — every other error
/// is surfaced on the first attempt. The sleep before attempt n is a
/// uniformly jittered value around initial_backoff_us * 2^(n-1), capped at
/// max_backoff_us; jitter is drawn from a deterministic stream seeded by
/// jitter_seed and the first attempt's transaction id (unique per manager,
/// so colliding threads do not back off in lockstep).
struct TxnRetryOptions {
  int max_retries = 10;  ///< re-runs after the first attempt
  int64_t initial_backoff_us = 100;
  int64_t max_backoff_us = 10000;
  uint64_t jitter_seed = 1;
};

/// Placement hint attached to an allocation. This is the knob the paper's
/// headline finding is about: "the critical importance of being able to
/// control locality of reference to persistent data".
///
/// * `segment` — clustering segment (honoured by ostore; ignored by texas).
/// * `cluster_near` — place the new object near an existing one (honoured by
///   texas in Texas+TC client-clustering mode; ignored otherwise).
struct AllocHint {
  uint16_t segment = 0;
  ObjectId cluster_near = ObjectId::Invalid();
};

/// A first-class transaction handle, returned by StorageManager::Begin()
/// and passed explicitly to every operation that should run inside the
/// transaction. This replaces the earlier implicit thread-keyed transaction
/// state: a handle is not bound to the thread that created it, so a session
/// layer can own it, hand it around, or multiplex many transactions over a
/// thread pool.
///
/// Threading: a Txn may be *used* by one thread at a time (operations on a
/// single handle are not internally synchronized); distinct handles on the
/// same manager may run fully concurrently, subject to the manager's
/// concurrency-control policy (OStore: page-level 2PL; Texas: a single
/// transaction at a time; Mm: per-operation mutual exclusion only).
///
/// Lifetime: the manager owns the object. Commit/Abort (and Close /
/// SimulateCrash) invalidate the handle; any later use is a caller error
/// that the manager detects and rejects (the pointer is removed from the
/// live-transaction registry before being freed).
class Txn {
 public:
  virtual ~Txn() = default;

  Txn(const Txn&) = delete;
  Txn& operator=(const Txn&) = delete;

  uint64_t id() const { return id_; }
  StorageManager* owner() const { return owner_; }

  /// True for read-only snapshot transactions (Begin(/*snapshot=*/true)):
  /// reads resolve against the MVCC snapshot at snapshot_ts() without taking
  /// page locks; every write operation is rejected with InvalidArgument.
  bool is_snapshot() const { return snapshot_; }
  /// The commit timestamp this snapshot reads at (0 when !is_snapshot(), or
  /// when the manager has no snapshot support and the handle degraded to a
  /// plain transaction).
  uint64_t snapshot_ts() const { return snapshot_ts_; }

  /// Allocation affinity: the page this transaction last inserted into, per
  /// segment. Steers concurrent inserters onto disjoint pages so insert-only
  /// transactions do not serialize on one global open page (the page is
  /// X-locked until commit under 2PL). Accessed only by the thread running
  /// the transaction — unsynchronized by design.
  uint64_t preferred_page(uint16_t segment) const {
    auto it = preferred_.find(segment);
    return it == preferred_.end() ? 0 : it->second;
  }
  void set_preferred_page(uint16_t segment, uint64_t page) {
    preferred_[segment] = page;
  }

 protected:
  Txn(StorageManager* owner, uint64_t id) : owner_(owner), id_(id) {}

 private:
  friend class StorageManager;

  StorageManager* owner_;
  uint64_t id_;
  bool snapshot_ = false;
  uint64_t snapshot_ts_ = 0;
  std::unordered_map<uint16_t, uint64_t> preferred_;
};

/// Abstract object storage manager: the substrate under the LabBase
/// workflow wrapper (paper Architecture (C)). Objects are untyped byte
/// records identified by stable ObjectIds; object ids never change across
/// updates (updates that outgrow their slot install a forwarding record
/// internally).
///
/// Transactions are explicit: Begin() returns a Txn* handle and every data
/// operation takes one. Passing `nullptr` runs the operation in auto-commit
/// mode (it is its own atomic unit; OStore takes no page locks for it).
/// The txn-less overloads below are shorthand for exactly that.
///
/// Thread-safety contract (per layer, see also docs/STORAGE.md):
///  * StorageManager and its subclasses are thread-safe: any number of
///    threads may call data operations concurrently, each with its own Txn
///    handle (or nullptr). Begin/Commit/Abort are fully synchronized.
///  * A single Txn handle must not be used from two threads at once.
///  * Open/Close/SimulateCrash/Checkpoint are lifecycle operations and must
///    be called while no other thread is inside the manager.
///  * Whether concurrent transactions are *isolated* is manager policy:
///    OStore provides strict 2PL page locking; Texas admits only one live
///    transaction (its no-CC contract); Mm interleaves freely with
///    per-operation atomicity only.
class StorageManager {
 public:
  virtual ~StorageManager() = default;

  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  /// Human-readable server-version name ("OStore", "Texas", ...).
  virtual std::string_view name() const = 0;

  // ---- Transactions --------------------------------------------------------

  /// Starts a transaction and returns its handle (owned by the manager).
  /// Managers with a concurrency cap (Texas: one) return ResourceExhausted
  /// when the cap is reached.
  ///
  /// `snapshot = true` requests a read-only MVCC snapshot transaction: it
  /// reads the newest committed state as of its begin without taking read
  /// locks (so it can neither wait on nor deadlock with writers), and every
  /// write through it is rejected. Managers without snapshot support
  /// (SupportsSnapshots() == false, e.g. Texas, whose single-transaction
  /// regime is trivially isolated) degrade the handle to a plain
  /// transaction.
  Result<Txn*> Begin(bool snapshot = false) LABFLOW_EXCLUDES(txn_mu_);

  /// Commits `txn` and invalidates the handle. InvalidArgument for null,
  /// foreign (different manager) or already-finished handles.
  Status Commit(Txn* txn) LABFLOW_EXCLUDES(txn_mu_);

  /// Aborts `txn`. The handle is invalidated even when rollback is not
  /// supported (Texas/Mm return NotSupported and simply discard the handle;
  /// state changes stay applied, per their documented no-CC semantics).
  Status Abort(Txn* txn) LABFLOW_EXCLUDES(txn_mu_);

  /// Runs `body` in a fresh transaction, committing on success and
  /// retrying the whole closure (after rollback, with jittered exponential
  /// backoff) when it ends in kAborted — the transient outcome a deadlock
  /// victim or lock timeout produces. The body must be safe to re-run from
  /// scratch: it sees a new Txn* each attempt and must not leak side
  /// effects outside the transaction. Non-Aborted errors, and Aborted ones
  /// past max_retries, are returned as-is.
  /// `snapshot = true` runs the body in a read-only snapshot transaction
  /// (see Begin); such bodies never abort on lock conflicts, so the retry
  /// loop is effectively inert for them.
  Status RunTransaction(const std::function<Status(Txn*)>& body,
                        const TxnRetryOptions& retry = TxnRetryOptions(),
                        bool snapshot = false);

  // ---- Data operations (explicit-transaction forms) ------------------------

  /// Stores a new object; returns its permanent id.
  Result<ObjectId> Allocate(Txn* txn, std::string_view data,
                            const AllocHint& hint);

  /// Reads an object's bytes.
  Result<std::string> Read(Txn* txn, ObjectId id);

  /// Replaces an object's bytes; the id remains valid.
  Status Update(Txn* txn, ObjectId id, std::string_view data);

  /// Removes an object.
  Status Free(Txn* txn, ObjectId id);

  /// Invokes `fn` for every live object. Iteration order is unspecified.
  Status ScanAll(Txn* txn,
                 const std::function<Status(ObjectId, std::string_view)>& fn);

  // ---- Auto-commit conveniences (txn == nullptr) ---------------------------

  Result<ObjectId> Allocate(std::string_view data, const AllocHint& hint) {
    return Allocate(nullptr, data, hint);
  }
  Result<std::string> Read(ObjectId id) { return Read(nullptr, id); }
  Status Update(ObjectId id, std::string_view data) {
    return Update(nullptr, id, data);
  }
  Status Free(ObjectId id) { return Free(nullptr, id); }
  Status ScanAll(const std::function<Status(ObjectId, std::string_view)>& fn) {
    return ScanAll(nullptr, fn);
  }

  // ---- Catalog / lifecycle -------------------------------------------------

  /// Creates a named clustering segment and returns its id. Managers
  /// without placement control return segment 0 for every call.
  virtual Result<uint16_t> CreateSegment(std::string_view name) = 0;

  /// Persistent root-object pointer: the application's entry point into the
  /// database (LabBase stores its catalog object here). Invalid by default.
  virtual Status SetRoot(ObjectId root) = 0;
  virtual Result<ObjectId> GetRoot() = 0;

  /// Forces all state to stable storage (flush + sync + metadata).
  virtual Status Checkpoint() = 0;

  /// Checkpoint + release resources. The manager is unusable afterwards.
  /// Any transaction still live is dropped (its handle becomes invalid).
  virtual Status Close() = 0;

  virtual StorageStats stats() const = 0;

 protected:
  StorageManager() = default;

  // ---- Transaction policy hooks -------------------------------------------

  /// Constructs the manager-specific transaction object. The default is a
  /// bare Txn (enough for managers whose transactions carry no state).
  virtual std::unique_ptr<Txn> CreateTxn(uint64_t id) {
    return std::unique_ptr<Txn>(new Txn(this, id));
  }

  /// Concurrency cap enforced by Begin(). Texas returns 1 — "Texas does not
  /// support concurrent access" (paper Section 10).
  virtual size_t MaxConcurrentTxns() const { return SIZE_MAX; }

  /// Commit work. Called with the handle still valid; it is freed after
  /// this returns. Default: nothing to do.
  virtual Status CommitTxn(Txn* txn) {
    (void)txn;
    return Status::OK();
  }

  /// Abort/rollback work; same lifetime rules as CommitTxn. Default:
  /// rollback is not supported (the handle is still discarded).
  virtual Status AbortTxn(Txn* txn) {
    (void)txn;
    return Status::NotSupported(std::string(name()) +
                                ": no transaction support");
  }

  /// Teardown for a transaction dropped without commit or abort (Close /
  /// SimulateCrash with live transactions). Must release any resources the
  /// txn holds (locks, page pins) without touching data.
  virtual void OnTxnDrop(Txn* txn) { (void)txn; }

  // ---- Snapshot policy hooks ----------------------------------------------

  /// Whether Begin(snapshot=true) yields a real MVCC snapshot (OStore, Mm).
  /// When false the request degrades to a plain transaction.
  virtual bool SupportsSnapshots() const { return false; }

  /// Opens a snapshot in the manager's version store and returns its
  /// timestamp. Only called when SupportsSnapshots().
  virtual uint64_t AcquireSnapshot() { return 0; }

  /// Closes a snapshot returned by AcquireSnapshot (commit, abort, or drop
  /// of the snapshot transaction all funnel here).
  virtual void ReleaseSnapshot(uint64_t ts) { (void)ts; }

  // ---- Data-operation implementations --------------------------------------
  // `txn` has been validated (nullptr, or a live handle of this manager).

  virtual Result<ObjectId> DoAllocate(Txn* txn, std::string_view data,
                                      const AllocHint& hint) = 0;
  virtual Result<std::string> DoRead(Txn* txn, ObjectId id) = 0;
  virtual Status DoUpdate(Txn* txn, ObjectId id, std::string_view data) = 0;
  virtual Status DoFree(Txn* txn, ObjectId id) = 0;
  virtual Status DoScanAll(
      Txn* txn,
      const std::function<Status(ObjectId, std::string_view)>& fn) = 0;

  // ---- Registry helpers for subclasses -------------------------------------

  /// OK when `txn` is nullptr or a live handle of this manager;
  /// InvalidArgument otherwise (foreign or stale handle).
  Status CheckTxn(Txn* txn) const LABFLOW_EXCLUDES(txn_mu_);

  /// Drops every live transaction via OnTxnDrop (close/crash teardown).
  void DropActiveTxns() LABFLOW_EXCLUDES(txn_mu_);

  /// Number of currently live transactions.
  size_t ActiveTxnCount() const LABFLOW_EXCLUDES(txn_mu_);

  /// Attempts re-run by RunTransaction so far (for stats() overrides).
  uint64_t txn_retry_count() const {
    return txn_retries_.load(std::memory_order_relaxed);
  }

 private:
  /// Rank kTxnTable: DropActiveTxns holds it across per-transaction
  /// teardown (lock release, snapshot release, version-store abort), so it
  /// sits below every storage-infrastructure rank.
  mutable Mutex txn_mu_{LockRank::kTxnTable, "storage.txn_table"};
  std::unordered_map<Txn*, std::unique_ptr<Txn>> active_txns_
      LABFLOW_GUARDED_BY(txn_mu_);
  std::atomic<uint64_t> next_txn_id_{1};
  std::atomic<uint64_t> txn_retries_{0};
};

}  // namespace labflow::storage

#endif  // LABFLOW_STORAGE_STORAGE_MANAGER_H_
