#ifndef LABFLOW_STORAGE_STORAGE_MANAGER_H_
#define LABFLOW_STORAGE_STORAGE_MANAGER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "storage/object_id.h"

namespace labflow::storage {

/// Counters reported by every storage manager. `disk_reads` is the
/// LabFlow-1 `majflt` proxy (a demand page read from the database file —
/// see DESIGN.md, substitution table).
struct StorageStats {
  uint64_t disk_reads = 0;
  uint64_t disk_writes = 0;
  uint64_t cache_hits = 0;
  uint64_t evictions = 0;
  uint64_t db_size_bytes = 0;
  uint64_t wal_bytes = 0;
  uint64_t live_objects = 0;
  uint64_t lock_waits = 0;
  uint64_t txn_commits = 0;
  uint64_t txn_aborts = 0;
};

/// Placement hint attached to an allocation. This is the knob the paper's
/// headline finding is about: "the critical importance of being able to
/// control locality of reference to persistent data".
///
/// * `segment` — clustering segment (honoured by ostore; ignored by texas).
/// * `cluster_near` — place the new object near an existing one (honoured by
///   texas in Texas+TC client-clustering mode; ignored otherwise).
struct AllocHint {
  uint16_t segment = 0;
  ObjectId cluster_near = ObjectId::Invalid();
};

/// Abstract object storage manager: the substrate under the LabBase
/// workflow wrapper (paper Architecture (C)). Objects are untyped byte
/// records identified by stable ObjectIds; object ids never change across
/// updates (updates that outgrow their slot install a forwarding record
/// internally).
class StorageManager {
 public:
  virtual ~StorageManager() = default;

  /// Human-readable server-version name ("OStore", "Texas", ...).
  virtual std::string_view name() const = 0;

  /// Begins a transaction on the calling thread. Managers without
  /// concurrency control (texas) treat the triple as no-ops / NotSupported
  /// per their documented semantics.
  virtual Status Begin() = 0;
  virtual Status Commit() = 0;
  virtual Status Abort() = 0;

  /// Stores a new object; returns its permanent id.
  virtual Result<ObjectId> Allocate(std::string_view data,
                                    const AllocHint& hint) = 0;

  /// Reads an object's bytes.
  virtual Result<std::string> Read(ObjectId id) = 0;

  /// Replaces an object's bytes; the id remains valid.
  virtual Status Update(ObjectId id, std::string_view data) = 0;

  /// Removes an object.
  virtual Status Free(ObjectId id) = 0;

  /// Creates a named clustering segment and returns its id. Managers
  /// without placement control return segment 0 for every call.
  virtual Result<uint16_t> CreateSegment(std::string_view name) = 0;

  /// Persistent root-object pointer: the application's entry point into the
  /// database (LabBase stores its catalog object here). Invalid by default.
  virtual Status SetRoot(ObjectId root) = 0;
  virtual Result<ObjectId> GetRoot() = 0;

  /// Invokes `fn` for every live object. Iteration order is unspecified.
  virtual Status ScanAll(
      const std::function<Status(ObjectId, std::string_view)>& fn) = 0;

  /// Forces all state to stable storage (flush + sync + metadata).
  virtual Status Checkpoint() = 0;

  /// Checkpoint + release resources. The manager is unusable afterwards.
  virtual Status Close() = 0;

  virtual StorageStats stats() const = 0;
};

}  // namespace labflow::storage

#endif  // LABFLOW_STORAGE_STORAGE_MANAGER_H_
