#include "storage/hash_dir.h"

#include "common/codec.h"
#include "common/status_macros.h"

namespace labflow::storage {

namespace {
constexpr uint8_t kRootKind = 7;    // distinct from LabBase record kinds
constexpr uint8_t kBucketKind = 8;
}  // namespace

uint64_t HashDir::HashKey(std::string_view key) {
  uint64_t h = 14695981039346656037ULL;
  for (char c : key) {
    h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ULL;
  }
  return h;
}

std::string HashDir::Bucket::Encode() const {
  Encoder enc;
  enc.PutU8(kBucketKind);
  enc.PutU32(static_cast<uint32_t>(entries.size()));
  for (const auto& [key, id] : entries) {
    enc.PutString(key);
    enc.PutU64(id.raw);
  }
  return enc.Release();
}

Result<HashDir::Bucket> HashDir::Bucket::Decode(std::string_view data) {
  Decoder dec(data);
  LABFLOW_ASSIGN_OR_RETURN(uint8_t kind, dec.GetU8());
  if (kind != kBucketKind) return Status::Corruption("not a hash bucket");
  Bucket bucket;
  LABFLOW_ASSIGN_OR_RETURN(uint32_t n, dec.GetU32());
  bucket.entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    LABFLOW_ASSIGN_OR_RETURN(std::string key, dec.GetString());
    LABFLOW_ASSIGN_OR_RETURN(uint64_t raw, dec.GetU64());
    bucket.entries.emplace_back(std::move(key), ObjectId(raw));
  }
  return bucket;
}

Status HashDir::WriteRoot(Txn* txn) {
  Encoder enc;
  enc.PutU8(kRootKind);
  enc.PutU64(entry_count_);
  enc.PutU32(static_cast<uint32_t>(buckets_.size()));
  for (ObjectId b : buckets_) enc.PutU64(b.raw);
  return mgr_->Update(txn, root_, enc.buffer());
}

Status HashDir::LoadRoot() {
  LABFLOW_ASSIGN_OR_RETURN(std::string data, mgr_->Read(root_));
  Decoder dec(data);
  LABFLOW_ASSIGN_OR_RETURN(uint8_t kind, dec.GetU8());
  if (kind != kRootKind) return Status::Corruption("not a hash dir root");
  LABFLOW_ASSIGN_OR_RETURN(entry_count_, dec.GetU64());
  LABFLOW_ASSIGN_OR_RETURN(uint32_t n, dec.GetU32());
  buckets_.clear();
  buckets_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    LABFLOW_ASSIGN_OR_RETURN(uint64_t raw, dec.GetU64());
    buckets_.push_back(ObjectId(raw));
  }
  if (buckets_.empty()) return Status::Corruption("hash dir has no buckets");
  return Status::OK();
}

Result<std::unique_ptr<HashDir>> HashDir::Create(StorageManager* mgr,
                                                 const AllocHint& hint,
                                                 uint32_t initial_buckets) {
  if (initial_buckets == 0) initial_buckets = 1;
  std::unique_ptr<HashDir> dir(new HashDir(mgr, hint));
  Bucket empty;
  for (uint32_t i = 0; i < initial_buckets; ++i) {
    LABFLOW_ASSIGN_OR_RETURN(ObjectId b,
                             mgr->Allocate(empty.Encode(), hint));
    dir->buckets_.push_back(b);
  }
  // Placeholder root, then fill it in.
  LABFLOW_ASSIGN_OR_RETURN(dir->root_, mgr->Allocate("", hint));
  LABFLOW_RETURN_IF_ERROR(dir->WriteRoot(nullptr));
  return dir;
}

Result<std::unique_ptr<HashDir>> HashDir::Attach(StorageManager* mgr,
                                                 ObjectId root) {
  std::unique_ptr<HashDir> dir(new HashDir(mgr, AllocHint{}));
  dir->root_ = root;
  LABFLOW_RETURN_IF_ERROR(dir->LoadRoot());
  return dir;
}

Result<HashDir::Bucket> HashDir::ReadBucket(Txn* txn, uint32_t index) {
  LABFLOW_ASSIGN_OR_RETURN(std::string data, mgr_->Read(txn, buckets_[index]));
  return Bucket::Decode(data);
}

Status HashDir::WriteBucket(Txn* txn, uint32_t index, const Bucket& bucket) {
  return mgr_->Update(txn, buckets_[index], bucket.Encode());
}

Status HashDir::Insert(std::string_view key, ObjectId id, Txn* txn) {
  uint32_t index =
      static_cast<uint32_t>(HashKey(key) % buckets_.size());
  LABFLOW_ASSIGN_OR_RETURN(Bucket bucket, ReadBucket(txn, index));
  for (const auto& [k, v] : bucket.entries) {
    if (k == key) return Status::AlreadyExists("key exists: " +
                                               std::string(key));
  }
  bucket.entries.emplace_back(std::string(key), id);
  LABFLOW_RETURN_IF_ERROR(WriteBucket(txn, index, bucket));
  ++entry_count_;
  LABFLOW_RETURN_IF_ERROR(WriteRoot(txn));
  if (entry_count_ > kSplitLoad * buckets_.size()) {
    return Grow(txn);
  }
  return Status::OK();
}

Result<ObjectId> HashDir::Lookup(std::string_view key, Txn* txn) {
  uint32_t index =
      static_cast<uint32_t>(HashKey(key) % buckets_.size());
  LABFLOW_ASSIGN_OR_RETURN(Bucket bucket, ReadBucket(txn, index));
  for (const auto& [k, v] : bucket.entries) {
    if (k == key) return v;
  }
  return Status::NotFound("no such key: " + std::string(key));
}

Status HashDir::Erase(std::string_view key, Txn* txn) {
  uint32_t index =
      static_cast<uint32_t>(HashKey(key) % buckets_.size());
  LABFLOW_ASSIGN_OR_RETURN(Bucket bucket, ReadBucket(txn, index));
  for (auto it = bucket.entries.begin(); it != bucket.entries.end(); ++it) {
    if (it->first == key) {
      bucket.entries.erase(it);
      LABFLOW_RETURN_IF_ERROR(WriteBucket(txn, index, bucket));
      --entry_count_;
      return WriteRoot(txn);
    }
  }
  return Status::NotFound("no such key: " + std::string(key));
}

Status HashDir::ForEach(
    const std::function<Status(std::string_view, ObjectId)>& fn, Txn* txn) {
  for (uint32_t i = 0; i < buckets_.size(); ++i) {
    LABFLOW_ASSIGN_OR_RETURN(Bucket bucket, ReadBucket(txn, i));
    for (const auto& [key, id] : bucket.entries) {
      LABFLOW_RETURN_IF_ERROR(fn(key, id));
    }
  }
  return Status::OK();
}

Status HashDir::Grow(Txn* txn) {
  uint32_t new_count = static_cast<uint32_t>(buckets_.size() * 2);
  std::vector<Bucket> rehashed(new_count);
  for (uint32_t i = 0; i < buckets_.size(); ++i) {
    LABFLOW_ASSIGN_OR_RETURN(Bucket bucket, ReadBucket(txn, i));
    for (auto& [key, id] : bucket.entries) {
      uint32_t target = static_cast<uint32_t>(HashKey(key) % new_count);
      rehashed[target].entries.emplace_back(std::move(key), id);
    }
  }
  // Reuse the existing bucket objects for the first half, allocate the rest.
  for (uint32_t i = 0; i < new_count; ++i) {
    if (i < buckets_.size()) {
      LABFLOW_RETURN_IF_ERROR(
          mgr_->Update(txn, buckets_[i], rehashed[i].Encode()));
    } else {
      LABFLOW_ASSIGN_OR_RETURN(
          ObjectId b, mgr_->Allocate(txn, rehashed[i].Encode(), hint_));
      buckets_.push_back(b);
    }
  }
  return WriteRoot(txn);
}

}  // namespace labflow::storage
