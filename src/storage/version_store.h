#ifndef LABFLOW_STORAGE_VERSION_STORE_H_
#define LABFLOW_STORAGE_VERSION_STORE_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace labflow::storage {

/// MVCC sidecar for the storage managers: commit-timestamp allocation plus
/// per-object version chains, so snapshot transactions can read without
/// taking page locks while writers keep their existing concurrency control
/// (2PL in OStore, per-operation atomicity in Mm) unchanged.
///
/// The design leans on one invariant: **an object without a chain has not
/// been written since its last committed state became older than every
/// active snapshot**, so its page/map bytes are the committed value for all
/// snapshots and readers can fall through to a lock-free physical read. The
/// moment a transaction touches an object, a chain appears (pre-image first,
/// then the pending new value), and snapshot readers resolve that object
/// entirely from the chain. Garbage collection erases a chain again once its
/// newest committed version is at or below the snapshot horizon.
///
/// Commit protocol (two-phase, so group-committed WAL writes can sit between
/// the two steps):
///   1. PrepareCommit(owner) allocates the next commit timestamp, turns all
///      of the owner's pending entries into committed versions stamped with
///      it, and marks the timestamp in-flight.
///   2. FinalizeCommit(owner, ts) retires the in-flight mark; the stable
///      watermark (the largest ts with no smaller in-flight ts) advances and
///      new snapshots can observe the commit. AbandonCommit undoes step 1
///      when the durability write fails and the commit degrades to an abort.
///
/// Snapshots read at the stable watermark, so every version with
/// ts <= snapshot_ts belongs to a finalized commit and chains are complete
/// up to the snapshot: a reader can never observe a torn transaction.
///
/// Visibility rule: the newest version with ts <= snapshot_ts; none -> the
/// object did not exist at the snapshot (every writer since tracking began
/// left either a version or a pending entry); deleted -> tombstone, object
/// gone. No chain -> fall through to the physical store.
///
/// Caveat (documented in docs/STORAGE.md): auto-commit writes (txn ==
/// nullptr) bypass the chains entirely — they are applied in place and
/// become visible to every snapshot immediately, consistent with their
/// existing "own atomic unit, no isolation" contract. Snapshot guarantees
/// cover transactional writers.
///
/// Thread-safety: fully thread-safe; chains are sharded under per-shard
/// mutexes, the timestamp allocator and snapshot registry under one commit
/// mutex. Writer-side calls for one owner must come from one thread at a
/// time (the Txn contract upstream); distinct owners are fully concurrent.
class VersionStore {
 public:
  VersionStore() = default;

  VersionStore(const VersionStore&) = delete;
  VersionStore& operator=(const VersionStore&) = delete;

  // ---- Writer side ---------------------------------------------------------

  /// True if `owner` already has a pending entry for `key` — i.e. this is
  /// not the owner's first touch and the caller may skip assembling the
  /// (possibly multi-chunk) pre-image.
  bool HasPending(uint64_t owner, uint64_t key) const;

  /// Records that `owner` wrote `new_data` to `key`. On the owner's first
  /// touch of a previously untracked object, `pre_image` must carry the
  /// committed value (it becomes the chain's base version, visible to every
  /// snapshot); pass nullptr when the owner created the object. Must be
  /// called before the physical bytes change, with the object's write
  /// serialization held (X page lock / mm writer lock), so that a snapshot
  /// reader that observes the mutation is guaranteed to observe the chain.
  void RecordWrite(uint64_t owner, uint64_t key, std::string_view new_data,
                   const std::string* pre_image);

  /// Like RecordWrite, but the pending outcome is a tombstone.
  void RecordDelete(uint64_t owner, uint64_t key,
                    const std::string* pre_image);

  /// Registers a freshly inserted, still-uncommitted object slot. Called
  /// inside the page writer latch, *before* the slot becomes visible to
  /// physical readers, so a concurrent snapshot scan that sees the slot is
  /// guaranteed to also see the chain (and skip it). The pending payload is
  /// filled in by the RecordWrite that follows outside the latch.
  void NotePendingInsert(uint64_t owner, uint64_t key);

  // ---- Commit protocol -----------------------------------------------------

  /// Allocates the owner's commit timestamp and stamps its pending entries
  /// into committed versions. The timestamp stays in-flight (blocking the
  /// stable watermark) until FinalizeCommit or AbandonCommit.
  uint64_t PrepareCommit(uint64_t owner);

  /// Retires the in-flight mark; the commit becomes visible to snapshots
  /// taken from now on.
  void FinalizeCommit(uint64_t owner, uint64_t ts);

  /// Reverts PrepareCommit after a failed durability write: the stamped
  /// versions are removed (no snapshot can have seen them — ts never became
  /// stable). The caller is expected to roll the physical state back too.
  void AbandonCommit(uint64_t owner, uint64_t ts);

  /// Drops every pending entry of `owner` (transaction abort or drop). The
  /// physical rollback is the caller's job; committed versions are kept.
  void AbortOwner(uint64_t owner);

  // ---- Snapshot registry ---------------------------------------------------

  /// Opens a snapshot at the current stable watermark and pins the garbage
  /// collector above it. Returns the snapshot timestamp.
  uint64_t AcquireSnapshot();

  /// Closes a snapshot previously returned by AcquireSnapshot.
  void ReleaseSnapshot(uint64_t ts);

  // ---- Reader side ---------------------------------------------------------

  enum class Resolve {
    kFallThrough,  ///< no chain: the physical bytes are the committed value
    kData,         ///< *out holds the visible version's payload
    kNotFound,     ///< tracked, but not visible at this snapshot
  };

  /// Resolves `key` at `snapshot_ts` against the chains.
  Resolve Lookup(uint64_t snapshot_ts, uint64_t key, std::string* out) const;

  /// Invokes `fn(key, payload)` for every chain whose visible version at
  /// `snapshot_ts` is live and whose key is not in `emitted` — the sweep a
  /// snapshot scan runs after the physical pass, catching objects whose
  /// slots were deleted or moved mid-scan.
  Status SweepVisible(
      uint64_t snapshot_ts, const std::unordered_set<uint64_t>& emitted,
      const std::function<Status(uint64_t, std::string_view)>& fn) const;

  // ---- Recovery / telemetry ------------------------------------------------

  /// Raises the timestamp allocator to at least `ts` (recovery replays the
  /// logged commit timestamps and the superblock high-water mark here).
  void EnsureTimestamp(uint64_t ts);

  /// Largest commit timestamp allocated so far (the high-water mark
  /// persisted by checkpoints).
  uint64_t high_water() const;

  /// Current stable watermark (what a new snapshot would read at).
  uint64_t stable_ts() const;

  uint64_t chain_count() const;
  uint64_t snapshots_opened() const {
    return snapshots_opened_.load(std::memory_order_relaxed);
  }

 private:
  /// One committed version: the object's payload as of commit `ts`
  /// (`deleted` marks a tombstone). `ts == 0` is the base pre-image —
  /// committed before tracking began, visible to every snapshot.
  struct Version {
    uint64_t ts = 0;
    bool deleted = false;
    std::string data;
  };

  /// An owner's uncommitted outcome for one object.
  struct Pending {
    std::string data;
    bool deleted = false;
  };

  struct Chain {
    std::vector<Version> versions;  // ascending ts
    /// Concurrent uncommitted writers (under 2PL at most one, but the mm
    /// manager interleaves transactions freely and an aborted upgrade race
    /// can briefly leave two).
    std::map<uint64_t, Pending> pendings;
  };

  struct Shard {
    /// Rank kVersionChain: chain shards nest inside frame latches
    /// (TryInsertOnPage registers pendings under the writer latch) and are
    /// never held while taking commit_mu_ — Touch runs after the shard
    /// scope closes.
    mutable Mutex mu{LockRank::kVersionChain, "version_store.chain"};
    std::unordered_map<uint64_t, Chain> chains LABFLOW_GUARDED_BY(mu);
  };

  static constexpr size_t kShards = 16;
  static constexpr uint64_t kSweepEveryCommits = 256;

  Shard& ShardFor(uint64_t key) const {
    // Fibonacci spread: keys are page:slot ids with low entropy in the low
    // bits.
    return shards_[(key * 0x9E3779B97F4A7C15ull) >> 60];
  }

  uint64_t StableLocked() const LABFLOW_REQUIRES(commit_mu_) {
    return inflight_.empty() ? next_ts_ : *inflight_.begin() - 1;
  }
  uint64_t HorizonLocked() const LABFLOW_REQUIRES(commit_mu_) {
    uint64_t stable = StableLocked();
    if (snapshots_.empty()) return stable;
    return std::min(stable, *snapshots_.begin());
  }

  /// Erases versions no snapshot at or above `horizon` can need; erases the
  /// whole chain when the physical bytes already agree with it. Returns true
  /// when the chain was erased.
  static bool PruneChain(std::unordered_map<uint64_t, Chain>* chains,
                         std::unordered_map<uint64_t, Chain>::iterator it,
                         uint64_t horizon);

  void SweepAll(uint64_t horizon);

  /// Registers `key` in the owner's touched list (first pending only).
  void Touch(uint64_t owner, uint64_t key) LABFLOW_EXCLUDES(commit_mu_);

  mutable std::array<Shard, kShards>
      shards_;  // NOLINT(guarded-by-coverage): each shard self-locks

  mutable Mutex commit_mu_{LockRank::kVersionCommit, "version_store.commit"};
  uint64_t next_ts_ LABFLOW_GUARDED_BY(commit_mu_) = 0;
  std::set<uint64_t> inflight_ LABFLOW_GUARDED_BY(commit_mu_);
  std::multiset<uint64_t> snapshots_ LABFLOW_GUARDED_BY(commit_mu_);
  /// owner -> keys it has pendings on (drives stamping and abort without a
  /// full chain sweep).
  std::unordered_map<uint64_t, std::vector<uint64_t>> touched_
      LABFLOW_GUARDED_BY(commit_mu_);
  uint64_t commits_since_sweep_ LABFLOW_GUARDED_BY(commit_mu_) = 0;

  std::atomic<uint64_t> snapshots_opened_{0};
};

}  // namespace labflow::storage

#endif  // LABFLOW_STORAGE_VERSION_STORE_H_
