#ifndef LABFLOW_STORAGE_PAGE_H_
#define LABFLOW_STORAGE_PAGE_H_

#include <cstdint>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace labflow::storage {

/// Fixed page size shared by all paged storage managers. 8 KiB matches the
/// page grain ObjectStore and Texas both fault at.
inline constexpr size_t kPageSize = 8192;

/// The last 4 bytes of every page hold an FNV-1a checksum of the rest,
/// stamped by the buffer pool on write-back and verified on read (see
/// StampPageChecksum below). Slotted-page content therefore lives in
/// [0, kPageCapacity).
inline constexpr size_t kPageChecksumBytes = 4;
inline constexpr size_t kPageCapacity = kPageSize - kPageChecksumBytes;

/// Stamps the checksum trailer of a kPageSize buffer: FNV-1a over
/// [0, kPageCapacity), stored little-endian in the last 4 bytes. A computed
/// value of 0 is remapped to 1 so that a stored 0 always means "never
/// stamped" (a freshly appended all-zero page), which VerifyPageChecksum
/// accepts.
void StampPageChecksum(char* page);

/// Verifies the trailer written by StampPageChecksum; Corruption (naming
/// `page_no`) on mismatch. A stored checksum of 0 passes only when the
/// whole page is zero — an appended page that was never written back;
/// content under a zero trailer means a torn first write-back.
Status VerifyPageChecksum(const char* page, uint64_t page_no);

/// A slotted-page view over a raw kPageSize buffer (owned by the buffer
/// pool). Layout:
///
///   [0..8)    lsn        (u64, little endian; WAL recovery watermark)
///   [8..10)   segment    (u16; which clustering segment owns this page)
///   [10..12)  n_slots    (u16)
///   [12..14)  free_start (u16; records grow upward from kHeaderSize)
///   [14..16)  flags      (u16; reserved)
///   records...           (each prefixed by nothing; slots carry extents)
///   slot directory       (grows downward from kPageCapacity; 4 bytes/slot:
///                         u16 offset, u16 length; offset 0 = free slot)
///   [kPageCapacity..kPageSize)  checksum trailer (see StampPageChecksum)
///
/// Page is a non-owning view: cheap to construct, no copies of page data.
class Page {
 public:
  static constexpr size_t kHeaderSize = 16;
  static constexpr size_t kSlotSize = 4;
  /// Largest record a fresh page can hold.
  static constexpr size_t kMaxRecordSize =
      kPageCapacity - kHeaderSize - kSlotSize;

  explicit Page(char* data) : data_(data) {}

  /// Zeroes the header and marks the page as an empty slotted page owned by
  /// `segment`.
  void Initialize(uint16_t segment);

  uint64_t lsn() const { return LoadU64(0); }
  void set_lsn(uint64_t lsn) { StoreU64(0, lsn); }
  uint16_t segment() const { return LoadU16(8); }
  void set_segment(uint16_t seg) { StoreU16(8, seg); }
  uint16_t slot_count() const { return LoadU16(10); }

  /// Contiguous bytes available without compaction.
  size_t ContiguousFree() const;

  /// Total reusable bytes (contiguous + holes reclaimable by Compact()).
  /// An insertion of size n succeeds iff FreeForInsert() >= n (Insert
  /// compacts on demand).
  size_t FreeForInsert() const;

  /// Inserts a record, compacting first if fragmentation requires it.
  /// Returns the slot index, or ResourceExhausted if it cannot fit.
  Result<uint16_t> Insert(std::string_view record);

  /// Inserts a record into a specific slot (used by WAL redo, which must
  /// reproduce exact object ids). Extends the slot directory as needed;
  /// intermediate new slots stay dead. Fails with AlreadyExists if the slot
  /// is live.
  Status InsertAt(uint16_t slot, std::string_view record);

  /// Returns a view of the record bytes in slot `slot`.
  Result<std::string_view> Read(uint16_t slot) const;

  /// Overwrites the record in `slot`. Shrinking always succeeds in place;
  /// growing succeeds if the page has room (possibly after compaction);
  /// otherwise returns ResourceExhausted and leaves the record untouched.
  Status Update(uint16_t slot, std::string_view record);

  /// Frees the slot. The slot index may be reused by later inserts.
  Status Delete(uint16_t slot);

  /// True if `slot` currently holds a record.
  bool IsLive(uint16_t slot) const;

  /// True once Initialize() has run (free_start points past the header).
  /// A freshly appended all-zero page is not initialized.
  bool IsInitialized() const { return free_start() >= kHeaderSize; }

  /// Bytes currently occupied by live records.
  size_t LiveBytes() const;

 private:
  uint16_t LoadU16(size_t off) const;
  void StoreU16(size_t off, uint16_t v);
  uint64_t LoadU64(size_t off) const;
  void StoreU64(size_t off, uint64_t v);

  uint16_t free_start() const { return LoadU16(12); }
  void set_free_start(uint16_t v) { StoreU16(12, v); }
  void set_slot_count(uint16_t v) { StoreU16(10, v); }

  size_t SlotDirStart() const {
    return kPageCapacity - kSlotSize * slot_count();
  }
  uint16_t SlotOffset(uint16_t slot) const {
    return LoadU16(kPageCapacity - kSlotSize * (slot + 1));
  }
  uint16_t SlotLength(uint16_t slot) const {
    return LoadU16(kPageCapacity - kSlotSize * (slot + 1) + 2);
  }
  void SetSlot(uint16_t slot, uint16_t offset, uint16_t length) {
    StoreU16(kPageCapacity - kSlotSize * (slot + 1), offset);
    StoreU16(kPageCapacity - kSlotSize * (slot + 1) + 2, length);
  }

  /// Slides live records toward the header, eliminating holes.
  void Compact();

  char* data_;
};

}  // namespace labflow::storage

#endif  // LABFLOW_STORAGE_PAGE_H_
