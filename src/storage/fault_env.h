#ifndef LABFLOW_STORAGE_FAULT_ENV_H_
#define LABFLOW_STORAGE_FAULT_ENV_H_

#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "storage/env.h"

namespace labflow::storage {

/// In-memory Env that injects I/O failures deterministically from a seed,
/// in the spirit of RocksDB's FaultInjectionTestFS. Every file is a pair of
/// byte strings: `data` (what the OS would buffer) and `synced` (what is on
/// stable storage). Sync promotes data to synced; DropUnsynced() reverts
/// every file to its synced image — a power cut. A faulted write can apply
/// a torn prefix before failing, and a faulted sync leaves the synced image
/// stale, so crash/recovery paths see the failure shapes real disks
/// produce. Thread-safe; the fault stream is deterministic for a given
/// seed and I/O sequence (single-threaded use replays exactly).
class FaultInjectionEnv : public Env {
 public:
  struct Options {
    uint64_t seed = 1;
    double read_fault_p = 0.0;   ///< probability a Read fails
    double write_fault_p = 0.0;  ///< probability a Write/Append fails
    double sync_fault_p = 0.0;   ///< probability a Sync fails
    bool torn_writes = true;     ///< a failed write applies a random prefix
    /// Per-operation latency, applied *without* holding the env mutex so a
    /// slow file models a slow disk, not a slow kernel: used to prove that
    /// buffer-pool flush/eviction I/O no longer blocks concurrent hits.
    int64_t write_delay_us = 0;
    int64_t read_delay_us = 0;
    /// When non-empty, only paths containing this substring fault; other
    /// files behave perfectly (still in-memory, still crash-droppable).
    std::string path_filter;
  };

  explicit FaultInjectionEnv(const Options& options);

  Result<std::unique_ptr<File>> OpenFile(const std::string& path,
                                          bool truncate) override;

  /// Deletes are modelled as immediately durable (there is no directory to
  /// fsync in this env): the file vanishes from both the live and the
  /// synced image, so a later DropUnsynced cannot resurrect it.
  Status Delete(const std::string& path) override;

  bool FileExists(const std::string& path) override;

  /// Master switch; faults fire only while enabled (default on).
  void set_enabled(bool enabled);

  /// Simulates a power cut: every file reverts to its last-synced bytes.
  void DropUnsynced();

  /// Flips one bit of the byte at `offset` in the file at `path` (both the
  /// live and the synced image), simulating at-rest bit rot. NotFound for
  /// an unknown path, OutOfRange past the end.
  Status CorruptByte(const std::string& path, uint64_t offset);

  /// Number of faults injected so far (all kinds).
  uint64_t faults_injected() const;

 private:
  friend class FaultFile;

  struct FileState {
    std::string data;
    std::string synced;
  };

  /// True (and counts the fault) when a fault should fire for `path`.
  bool ShouldFault(const std::string& path, double p) LABFLOW_REQUIRES(mu_);

  /// Rank kFaultEnv: the innermost lock in the tree — taken inside file
  /// reads/writes issued under PageFile's append mutex and the recovery
  /// scan's allocator hold.
  mutable Mutex mu_{LockRank::kFaultEnv, "fault_env"};
  Rng rng_ LABFLOW_GUARDED_BY(mu_);
  bool enabled_ LABFLOW_GUARDED_BY(mu_) = true;
  uint64_t faults_ LABFLOW_GUARDED_BY(mu_) = 0;
  const Options options_;
  std::map<std::string, std::shared_ptr<FileState>> files_
      LABFLOW_GUARDED_BY(mu_);
};

}  // namespace labflow::storage

#endif  // LABFLOW_STORAGE_FAULT_ENV_H_
