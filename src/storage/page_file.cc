#include "storage/page_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

namespace labflow::storage {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

PageFile::~PageFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status PageFile::Open(const std::string& path, bool truncate) {
  if (fd_ >= 0) return Status::InvalidArgument("PageFile already open");
  int flags = O_RDWR | O_CREAT | (truncate ? O_TRUNC : 0);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return ErrnoStatus("open " + path);
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return ErrnoStatus("lseek " + path);
  }
  if (size % kPageSize != 0) {
    ::close(fd);
    return Status::Corruption("page file size not a multiple of page size: " +
                              path);
  }
  fd_ = fd;
  path_ = path;
  page_count_ = static_cast<uint64_t>(size) / kPageSize;
  return Status::OK();
}

Status PageFile::Close() {
  if (fd_ < 0) return Status::OK();
  int rc = ::close(fd_);
  fd_ = -1;
  page_count_ = 0;
  if (rc != 0) return ErrnoStatus("close " + path_);
  return Status::OK();
}

Result<uint64_t> PageFile::AppendPage() {
  if (fd_ < 0) return Status::InvalidArgument("PageFile not open");
  std::vector<char> zeros(kPageSize, 0);
  std::lock_guard<std::mutex> g(append_mu_);
  uint64_t page_no = page_count_.load(std::memory_order_relaxed);
  ssize_t n = ::pwrite(fd_, zeros.data(), kPageSize,
                       static_cast<off_t>(page_no * kPageSize));
  if (n != static_cast<ssize_t>(kPageSize)) {
    return ErrnoStatus("pwrite append " + path_);
  }
  page_count_.fetch_add(1, std::memory_order_relaxed);
  return page_no;
}

Status PageFile::ReadPage(uint64_t page_no, char* buf) {
  if (fd_ < 0) return Status::InvalidArgument("PageFile not open");
  if (page_no >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(page_no) +
                              " beyond end of file");
  }
  ssize_t n = ::pread(fd_, buf, kPageSize,
                      static_cast<off_t>(page_no * kPageSize));
  if (n != static_cast<ssize_t>(kPageSize)) {
    return ErrnoStatus("pread " + path_);
  }
  return Status::OK();
}

Status PageFile::WritePage(uint64_t page_no, const char* buf) {
  if (fd_ < 0) return Status::InvalidArgument("PageFile not open");
  if (page_no >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(page_no) +
                              " beyond end of file");
  }
  ssize_t n = ::pwrite(fd_, buf, kPageSize,
                       static_cast<off_t>(page_no * kPageSize));
  if (n != static_cast<ssize_t>(kPageSize)) {
    return ErrnoStatus("pwrite " + path_);
  }
  return Status::OK();
}

Status PageFile::Sync() {
  if (fd_ < 0) return Status::InvalidArgument("PageFile not open");
  if (::fdatasync(fd_) != 0) return ErrnoStatus("fdatasync " + path_);
  return Status::OK();
}

}  // namespace labflow::storage
