#include "storage/page_file.h"

#include <vector>

#include "common/status_macros.h"

namespace labflow::storage {

PageFile::~PageFile() {
  if (file_ != nullptr) {
    LABFLOW_IGNORE_STATUS(file_->Close(),
                          "destructor has no error channel; Close() first "
                          "when the result matters");
  }
}

Status PageFile::Open(Env* env, const std::string& path, bool truncate) {
  if (file_ != nullptr) return Status::InvalidArgument("PageFile already open");
  if (env == nullptr) env = Env::Default();
  LABFLOW_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                           env->OpenFile(path, truncate));
  LABFLOW_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  if (size % kPageSize != 0) {
    LABFLOW_IGNORE_STATUS(file->Close(), "already failing with Corruption");
    return Status::Corruption("page file size not a multiple of page size: " +
                              path);
  }
  file_ = std::move(file);
  path_ = path;
  page_count_ = size / kPageSize;
  return Status::OK();
}

Status PageFile::Close() {
  if (file_ == nullptr) return Status::OK();
  Status st = file_->Close();
  file_.reset();
  page_count_ = 0;
  return st;
}

Result<uint64_t> PageFile::AppendPage() {
  if (file_ == nullptr) return Status::InvalidArgument("PageFile not open");
  std::vector<char> zeros(kPageSize, 0);
  MutexLock g(append_mu_);
  uint64_t page_no = page_count_.load(std::memory_order_relaxed);
  // Write under the lock by design: the page must be on disk before
  // page_count_ publishes it, and appends are rare (file growth only).
  LABFLOW_RETURN_IF_ERROR(file_->Write(  // NOLINT(io-under-lock)
      page_no * kPageSize, std::string_view(zeros.data(), kPageSize)));
  page_count_.fetch_add(1, std::memory_order_relaxed);
  return page_no;
}

Status PageFile::ReadPage(uint64_t page_no, char* buf) {
  if (file_ == nullptr) return Status::InvalidArgument("PageFile not open");
  if (page_no >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(page_no) +
                              " beyond end of file");
  }
  return file_->Read(page_no * kPageSize, kPageSize, buf);
}

Status PageFile::WritePage(uint64_t page_no, const char* buf) {
  if (file_ == nullptr) return Status::InvalidArgument("PageFile not open");
  if (page_no >= page_count_) {
    return Status::OutOfRange("page " + std::to_string(page_no) +
                              " beyond end of file");
  }
  return file_->Write(page_no * kPageSize, std::string_view(buf, kPageSize));
}

Status PageFile::Sync() {
  if (file_ == nullptr) return Status::InvalidArgument("PageFile not open");
  return file_->Sync();
}

}  // namespace labflow::storage
