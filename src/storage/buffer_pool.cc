#include "storage/buffer_pool.h"

#include <time.h>

#include <cstring>

#include "common/status_macros.h"

namespace labflow::storage {

BufferPool::BufferPool(PageFile* file, size_t capacity_pages,
                       int64_t fault_delay_us, size_t shards)
    : file_(file), fault_delay_us_(fault_delay_us) {
  size_t capacity = capacity_pages < 2 ? 2 : capacity_pages;
  // Default: one shard per 256 pages of capacity. Small pools (tests,
  // tight-memory configs) resolve to a single shard, preserving the exact
  // global-LRU behavior; the 2048-page default gets 8 shards.
  size_t want = shards != 0 ? shards : capacity / 256;
  if (want < 1) want = 1;
  while (want > 1 && capacity / want < 2) want /= 2;
  size_t n = 1;
  while (n * 2 <= want) n *= 2;
  shard_mask_ = n - 1;
  size_t per_shard = capacity / n;
  if (per_shard < 2) per_shard = 2;
  capacity_ = 0;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto s = std::make_unique<Shard>();
    s->capacity = per_shard;
    capacity_ += per_shard;
    shards_.push_back(std::move(s));
  }
}

namespace {

void SimulateFaultDelay(int64_t us) {
  if (us <= 0) return;
  timespec ts;
  ts.tv_sec = us / 1000000;
  ts.tv_nsec = (us % 1000000) * 1000;
  nanosleep(&ts, nullptr);
}

}  // namespace

void BufferPool::LockShard(Shard& s) const {
  if (s.mu.TryLock()) return;
  s.stats.mutex_waits.fetch_add(1, std::memory_order_relaxed);
  s.mu.Lock();
}

Result<BufferPool::PinGuard> BufferPool::Fetch(uint64_t page_no) {
  Shard& s = ShardFor(page_no);
  LockShard(s);
  s.stats.fetches.fetch_add(1, std::memory_order_relaxed);
  Frame* f = nullptr;
  for (;;) {
    auto it = s.frames.find(page_no);
    if (it == s.frames.end()) break;
    f = it->second.get();
    if (f->state_ == Frame::State::kReady) {
      s.stats.hits.fetch_add(1, std::memory_order_relaxed);
      f->pin_count_.fetch_add(1, std::memory_order_relaxed);
      TouchLocked(s, f);
      s.mu.Unlock();
      return PinGuard(this, f);
    }
    // kLoading or kWriting: another thread's I/O will resolve this frame.
    // Wait for the state change instead of issuing a duplicate read.
    s.cv.Wait(s.mu);
  }
  // Miss. Publish an in-flight marker so concurrent fetchers of this page
  // wait on it, then do the read outside the shard mutex: hits on other
  // pages in the shard proceed while the disk (and any simulated fault
  // delay) is busy.
  auto owned = std::make_unique<Frame>();
  owned->data_ = std::make_unique<char[]>(kPageSize);
  owned->page_no_ = page_no;
  owned->pin_count_.store(1, std::memory_order_relaxed);
  owned->state_ = Frame::State::kLoading;
  f = owned.get();
  s.frames.emplace(page_no, std::move(owned));
  if (Status st = EnsureCapacityLocked(s); !st.ok()) {
    s.frames.erase(page_no);
    s.cv.NotifyAll();
    s.mu.Unlock();
    return st;
  }
  s.mu.Unlock();

  Status st = file_->ReadPage(page_no, f->data_.get());
  bool checksum_failed = false;
  if (st.ok()) {
    st = VerifyPageChecksum(f->data_.get(), page_no);
    checksum_failed = !st.ok();
  }
  if (st.ok()) SimulateFaultDelay(fault_delay_us_);

  LockShard(s);
  // The attempt went to the file either way: a rejected page must count as
  // a demand read, or majflt under-reports exactly when I/O misbehaves.
  s.stats.disk_reads.fetch_add(1, std::memory_order_relaxed);
  if (checksum_failed) {
    s.stats.checksum_failures.fetch_add(1, std::memory_order_relaxed);
  }
  if (!st.ok()) {
    s.frames.erase(page_no);
    s.cv.NotifyAll();
    s.mu.Unlock();
    return st;
  }
  f->state_ = Frame::State::kReady;
  TouchLocked(s, f);
  s.cv.NotifyAll();
  s.mu.Unlock();
  return PinGuard(this, f);
}

Result<BufferPool::PinGuard> BufferPool::NewPage() {
  LABFLOW_ASSIGN_OR_RETURN(uint64_t page_no, file_->AppendPage());
  Shard& s = ShardFor(page_no);
  LockShard(s);
  auto owned = std::make_unique<Frame>();
  owned->data_ = std::make_unique<char[]>(kPageSize);
  std::memset(owned->data_.get(), 0, kPageSize);
  owned->page_no_ = page_no;
  owned->dirty_.store(true, std::memory_order_relaxed);
  owned->pin_count_.store(1, std::memory_order_relaxed);
  owned->state_ = Frame::State::kReady;
  Frame* f = owned.get();
  s.frames.emplace(page_no, std::move(owned));
  if (Status st = EnsureCapacityLocked(s); !st.ok()) {
    s.frames.erase(page_no);
    s.cv.NotifyAll();
    s.mu.Unlock();
    return st;
  }
  TouchLocked(s, f);
  s.mu.Unlock();
  return PinGuard(this, f);
}

void BufferPool::Unpin(Frame* frame) {
  // Lock-free: pins only transition 0 -> 1 under the shard mutex (Fetch /
  // NewPage), so eviction's pin_count == 0 check under that mutex cannot
  // race a concurrent re-pin, and releases need no lock at all.
  frame->pin_count_.fetch_sub(1, std::memory_order_release);
}

void BufferPool::TouchLocked(Shard& s, Frame* frame) {
  if (frame->in_lru_) s.lru.erase(frame->lru_pos_);
  s.lru.push_front(frame->page_no_);
  frame->lru_pos_ = s.lru.begin();
  frame->in_lru_ = true;
}

Status BufferPool::EnsureCapacityLocked(Shard& s) {
  while (s.frames.size() > s.capacity) {
    // Find the least-recently-used unpinned frame. Only kReady frames live
    // in the LRU: in-flight loads and write-backs are unevictable.
    Frame* victim = nullptr;
    for (auto it = s.lru.rbegin(); it != s.lru.rend(); ++it) {
      Frame* f = s.frames.at(*it).get();
      if (f->pin_count_.load(std::memory_order_acquire) == 0) {
        victim = f;
        break;
      }
    }
    if (victim == nullptr) {
      if (s.writing == 0) {
        return Status::ResourceExhausted("buffer pool: all frames pinned");
      }
      // A write-back in flight will free a slot; wait for it.
      s.cv.Wait(s.mu);
      continue;
    }
    s.lru.erase(victim->lru_pos_);
    victim->in_lru_ = false;
    uint64_t page_no = victim->page_no_;
    if (!victim->dirty_.load(std::memory_order_acquire)) {
      s.frames.erase(page_no);
      s.stats.evictions.fetch_add(1, std::memory_order_relaxed);
      s.cv.NotifyAll();
      continue;
    }
    // Dirty victim: write it back outside the shard mutex. kWriting keeps
    // it in the map so a concurrent Fetch of this page waits for the write
    // instead of re-reading bytes the write may not have persisted yet.
    victim->state_ = Frame::State::kWriting;
    ++s.writing;
    s.mu.Unlock();
    Status st = WriteBack(victim, s.stats);
    s.mu.Lock();
    --s.writing;
    if (!st.ok()) {
      victim->state_ = Frame::State::kReady;
      TouchLocked(s, victim);
      s.cv.NotifyAll();
      return st;
    }
    s.frames.erase(page_no);
    s.stats.evictions.fetch_add(1, std::memory_order_relaxed);
    s.cv.NotifyAll();
  }
  return Status::OK();
}

Status BufferPool::WriteBack(Frame* frame, ShardStats& stats) {
  alignas(8) char staged[kPageSize];
  {
    // Stage a consistent snapshot under the latch: concurrent readers and
    // writers of the page are excluded only for the memcpy, never for the
    // disk write itself.
    WriterMutexLock l(frame->latch());
    if (!frame->dirty_.load(std::memory_order_acquire)) return Status::OK();
    std::memcpy(staged, frame->data_.get(), kPageSize);
    frame->dirty_.store(false, std::memory_order_release);
  }
  StampPageChecksum(staged);
  Status st = file_->WritePage(frame->page_no_, staged);
  if (!st.ok()) {
    frame->MarkDirty();
    return st;
  }
  stats.disk_writes.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (auto& shard : shards_) {
    Shard& s = *shard;
    std::vector<uint64_t> dirty;
    LockShard(s);
    dirty.reserve(s.frames.size());
    for (auto& [page_no, frame] : s.frames) {
      if (frame->state_ != Frame::State::kLoading &&
          frame->dirty_.load(std::memory_order_acquire)) {
        dirty.push_back(page_no);
      }
    }
    s.mu.Unlock();
    for (uint64_t page_no : dirty) {
      LABFLOW_RETURN_IF_ERROR(FlushPage(page_no));
    }
  }
  return Status::OK();
}

Status BufferPool::FlushPage(uint64_t page_no) {
  Shard& s = ShardFor(page_no);
  LockShard(s);
  for (;;) {
    auto it = s.frames.find(page_no);
    if (it == s.frames.end()) {
      s.mu.Unlock();
      return Status::OK();
    }
    Frame* f = it->second.get();
    if (f->state_ == Frame::State::kLoading) {
      // Being read in: clean by definition.
      s.mu.Unlock();
      return Status::OK();
    }
    if (f->state_ == Frame::State::kWriting) {
      // An eviction is persisting it right now; wait for that write so the
      // bytes are on the file when we return (checkpoint ordering).
      s.cv.Wait(s.mu);
      continue;
    }
    if (!f->dirty_.load(std::memory_order_acquire)) {
      s.mu.Unlock();
      return Status::OK();
    }
    // Pin so eviction leaves the frame alone, then write outside the shard
    // mutex: concurrent fetches of other pages never wait on flush I/O.
    f->pin_count_.fetch_add(1, std::memory_order_relaxed);
    s.mu.Unlock();
    Status st = WriteBack(f, s.stats);
    Unpin(f);
    return st;
  }
}

Status BufferPool::DropClean() {
  for (auto& shard : shards_) {
    Shard& s = *shard;
    LockShard(s);
    for (auto it = s.frames.begin(); it != s.frames.end();) {
      Frame* f = it->second.get();
      if (f->state_ == Frame::State::kReady &&
          f->pin_count_.load(std::memory_order_acquire) == 0 &&
          !f->dirty_.load(std::memory_order_acquire)) {
        if (f->in_lru_) s.lru.erase(f->lru_pos_);
        it = s.frames.erase(it);
      } else {
        ++it;
      }
    }
    s.mu.Unlock();
  }
  return Status::OK();
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats total;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const ShardStats& s = shard->stats;
    total.fetches += s.fetches.load(std::memory_order_relaxed);
    total.hits += s.hits.load(std::memory_order_relaxed);
    total.disk_reads += s.disk_reads.load(std::memory_order_relaxed);
    total.disk_writes += s.disk_writes.load(std::memory_order_relaxed);
    total.evictions += s.evictions.load(std::memory_order_relaxed);
    total.checksum_failures +=
        s.checksum_failures.load(std::memory_order_relaxed);
    total.shard_mutex_waits += s.mutex_waits.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<BufferPoolStats> BufferPool::shard_stats() const {
  std::vector<BufferPoolStats> out;
  out.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const ShardStats& s = shard->stats;
    BufferPoolStats one;
    one.fetches = s.fetches.load(std::memory_order_relaxed);
    one.hits = s.hits.load(std::memory_order_relaxed);
    one.disk_reads = s.disk_reads.load(std::memory_order_relaxed);
    one.disk_writes = s.disk_writes.load(std::memory_order_relaxed);
    one.evictions = s.evictions.load(std::memory_order_relaxed);
    one.checksum_failures = s.checksum_failures.load(std::memory_order_relaxed);
    one.shard_mutex_waits = s.mutex_waits.load(std::memory_order_relaxed);
    out.push_back(one);
  }
  return out;
}

}  // namespace labflow::storage
