#include "storage/buffer_pool.h"

#include <time.h>

#include <cstring>
#include "common/status_macros.h"

namespace labflow::storage {

BufferPool::BufferPool(PageFile* file, size_t capacity_pages,
                       int64_t fault_delay_us)
    : file_(file),
      capacity_(capacity_pages < 2 ? 2 : capacity_pages),
      fault_delay_us_(fault_delay_us) {}

namespace {

void SimulateFaultDelay(int64_t us) {
  if (us <= 0) return;
  timespec ts;
  ts.tv_sec = us / 1000000;
  ts.tv_nsec = (us % 1000000) * 1000;
  nanosleep(&ts, nullptr);
}

}  // namespace

Result<BufferPool::PinGuard> BufferPool::Fetch(uint64_t page_no) {
  MutexLock g(mu_);
  auto it = frames_.find(page_no);
  if (it != frames_.end()) {
    ++stats_.hits;
    Frame* f = it->second.get();
    ++f->pin_count_;
    TouchLocked(f);
    return PinGuard(this, f);
  }
  LABFLOW_RETURN_IF_ERROR(EnsureCapacityLocked());
  auto frame = std::make_unique<Frame>();
  frame->data_ = std::make_unique<char[]>(kPageSize);
  frame->page_no_ = page_no;
  LABFLOW_RETURN_IF_ERROR(file_->ReadPage(page_no, frame->data_.get()));
  if (Status st = VerifyPageChecksum(frame->data_.get(), page_no); !st.ok()) {
    ++stats_.checksum_failures;
    return st;
  }
  SimulateFaultDelay(fault_delay_us_);
  ++stats_.disk_reads;
  Frame* f = frame.get();
  f->pin_count_ = 1;
  frames_.emplace(page_no, std::move(frame));
  TouchLocked(f);
  return PinGuard(this, f);
}

Result<BufferPool::PinGuard> BufferPool::NewPage() {
  MutexLock g(mu_);
  LABFLOW_RETURN_IF_ERROR(EnsureCapacityLocked());
  LABFLOW_ASSIGN_OR_RETURN(uint64_t page_no, file_->AppendPage());
  auto frame = std::make_unique<Frame>();
  frame->data_ = std::make_unique<char[]>(kPageSize);
  std::memset(frame->data_.get(), 0, kPageSize);
  frame->page_no_ = page_no;
  frame->dirty_ = true;
  Frame* f = frame.get();
  f->pin_count_ = 1;
  frames_.emplace(page_no, std::move(frame));
  TouchLocked(f);
  return PinGuard(this, f);
}

void BufferPool::Unpin(Frame* frame) {
  MutexLock g(mu_);
  if (frame->pin_count_ > 0) --frame->pin_count_;
}

void BufferPool::TouchLocked(Frame* frame) {
  if (frame->in_lru_) lru_.erase(frame->lru_pos_);
  lru_.push_front(frame->page_no_);
  frame->lru_pos_ = lru_.begin();
  frame->in_lru_ = true;
}

Status BufferPool::EnsureCapacityLocked() {
  while (frames_.size() >= capacity_) {
    // Find the least-recently-used unpinned frame.
    auto victim = lru_.end();
    for (auto it = std::prev(lru_.end());; --it) {
      Frame* f = frames_.at(*it).get();
      if (f->pin_count_ == 0) {
        victim = it;
        break;
      }
      if (it == lru_.begin()) break;
    }
    if (victim == lru_.end()) {
      return Status::ResourceExhausted("buffer pool: all frames pinned");
    }
    uint64_t page_no = *victim;
    Frame* f = frames_.at(page_no).get();
    if (f->dirty_.load(std::memory_order_acquire)) {
      StampPageChecksum(f->data());
      LABFLOW_RETURN_IF_ERROR(file_->WritePage(page_no, f->data()));
      ++stats_.disk_writes;
    }
    lru_.erase(victim);
    frames_.erase(page_no);
    ++stats_.evictions;
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  MutexLock g(mu_);
  for (auto& [page_no, frame] : frames_) {
    if (frame->dirty_.load(std::memory_order_acquire)) {
      StampPageChecksum(frame->data());
      LABFLOW_RETURN_IF_ERROR(file_->WritePage(page_no, frame->data()));
      ++stats_.disk_writes;
      frame->dirty_.store(false, std::memory_order_release);
    }
  }
  return Status::OK();
}

Status BufferPool::FlushPage(uint64_t page_no) {
  MutexLock g(mu_);
  auto it = frames_.find(page_no);
  if (it == frames_.end()) return Status::OK();
  if (it->second->dirty_.load(std::memory_order_acquire)) {
    StampPageChecksum(it->second->data());
    LABFLOW_RETURN_IF_ERROR(file_->WritePage(page_no, it->second->data()));
    ++stats_.disk_writes;
    it->second->dirty_.store(false, std::memory_order_release);
  }
  return Status::OK();
}

Status BufferPool::DropClean() {
  MutexLock g(mu_);
  for (auto it = frames_.begin(); it != frames_.end();) {
    Frame* f = it->second.get();
    if (f->pin_count_ == 0 && !f->dirty_.load(std::memory_order_acquire)) {
      if (f->in_lru_) lru_.erase(f->lru_pos_);
      it = frames_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::OK();
}

}  // namespace labflow::storage
