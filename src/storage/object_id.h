#ifndef LABFLOW_STORAGE_OBJECT_ID_H_
#define LABFLOW_STORAGE_OBJECT_ID_H_

#include <cstdint>
#include <functional>
#include <string>

namespace labflow::storage {

/// Physical object identifier inside a storage manager: (page, slot).
///
/// This is the storage-level analogue of a persistent C++ pointer in
/// ObjectStore/Texas: LabBase records hold ObjectIds to refer to other
/// records (the paper's "involves" lists are lists of such pointers).
/// The encoding reserves raw == 0 as the invalid id by biasing the slot.
struct ObjectId {
  uint64_t raw = 0;

  constexpr ObjectId() = default;
  explicit constexpr ObjectId(uint64_t r) : raw(r) {}

  static constexpr ObjectId Make(uint64_t page, uint16_t slot) {
    return ObjectId((page << 16) | (static_cast<uint64_t>(slot) + 1));
  }
  static constexpr ObjectId Invalid() { return ObjectId(); }

  constexpr bool IsValid() const { return raw != 0; }
  constexpr uint64_t page() const { return raw >> 16; }
  constexpr uint16_t slot() const {
    return static_cast<uint16_t>((raw & 0xFFFF) - 1);
  }

  std::string ToString() const {
    return "obj(" + std::to_string(page()) + "," + std::to_string(slot()) +
           ")";
  }

  friend constexpr bool operator==(ObjectId a, ObjectId b) {
    return a.raw == b.raw;
  }
  friend constexpr bool operator!=(ObjectId a, ObjectId b) {
    return a.raw != b.raw;
  }
  friend constexpr bool operator<(ObjectId a, ObjectId b) {
    return a.raw < b.raw;
  }
};

}  // namespace labflow::storage

template <>
struct std::hash<labflow::storage::ObjectId> {
  size_t operator()(labflow::storage::ObjectId id) const noexcept {
    return std::hash<uint64_t>{}(id.raw);
  }
};

#endif  // LABFLOW_STORAGE_OBJECT_ID_H_
