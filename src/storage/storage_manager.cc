#include "storage/storage_manager.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/rng.h"
#include "common/status_macros.h"

namespace labflow::storage {

Result<Txn*> StorageManager::Begin(bool snapshot) {
  snapshot = snapshot && SupportsSnapshots();
  std::unique_ptr<Txn> txn = CreateTxn(next_txn_id_.fetch_add(1));
  if (snapshot) {
    txn->snapshot_ = true;
    txn->snapshot_ts_ = AcquireSnapshot();
  }
  Txn* raw = txn.get();
  {
    MutexLock g(txn_mu_);
    if (active_txns_.size() >= MaxConcurrentTxns()) {
      // Fall through to release the snapshot outside the lock.
      raw = nullptr;
    } else {
      active_txns_.emplace(raw, std::move(txn));
    }
  }
  if (raw == nullptr) {
    if (snapshot) ReleaseSnapshot(txn->snapshot_ts_);
    return Status::ResourceExhausted(
        std::string(name()) + ": concurrent transaction limit reached (" +
        std::to_string(MaxConcurrentTxns()) + ")");
  }
  return raw;
}

Status StorageManager::CheckTxn(Txn* txn) const {
  if (txn == nullptr) return Status::OK();
  // Membership is tested by pointer value only: a handle that is not in
  // active_txns_ may be foreign (another manager's) or stale (already
  // committed/aborted and freed), and a stale pointer must never be
  // dereferenced.
  MutexLock g(txn_mu_);
  if (active_txns_.count(txn) == 0) {
    return Status::InvalidArgument(
        "unknown transaction handle (stale, or owned by another manager)");
  }
  return Status::OK();
}

Status StorageManager::Commit(Txn* txn) {
  std::unique_ptr<Txn> owned;
  {
    MutexLock g(txn_mu_);
    auto it = txn == nullptr ? active_txns_.end() : active_txns_.find(txn);
    if (it == active_txns_.end()) {
      return Status::InvalidArgument("no such transaction");
    }
    owned = std::move(it->second);
    active_txns_.erase(it);
  }
  if (owned->is_snapshot()) {
    // A snapshot transaction holds no locks, wrote nothing, and must keep
    // working in a manager degraded to read-only — closing the snapshot is
    // the whole commit.
    ReleaseSnapshot(owned->snapshot_ts());
    return Status::OK();
  }
  return CommitTxn(owned.get());
}

Status StorageManager::Abort(Txn* txn) {
  std::unique_ptr<Txn> owned;
  {
    MutexLock g(txn_mu_);
    auto it = txn == nullptr ? active_txns_.end() : active_txns_.find(txn);
    if (it == active_txns_.end()) {
      return Status::InvalidArgument("no such transaction");
    }
    owned = std::move(it->second);
    active_txns_.erase(it);
  }
  if (owned->is_snapshot()) {
    ReleaseSnapshot(owned->snapshot_ts());
    return Status::OK();
  }
  return AbortTxn(owned.get());
}

Status StorageManager::RunTransaction(const std::function<Status(Txn*)>& body,
                                      const TxnRetryOptions& retry,
                                      bool snapshot) {
  int64_t backoff_us = std::max<int64_t>(retry.initial_backoff_us, 1);
  std::unique_ptr<Rng> rng;
  for (int attempt = 0;; ++attempt) {
    Result<Txn*> begun = Begin(snapshot);
    if (!begun.ok()) return begun.status();
    Txn* txn = begun.value();
    if (rng == nullptr) {
      rng = std::make_unique<Rng>(retry.jitter_seed ^
                                  (txn->id() * 0x9E3779B97F4A7C15ull));
    }
    Status st = body(txn);
    if (st.ok()) {
      // Commit consumes the handle whether it succeeds or not (a failed
      // commit degrades to an abort inside the manager), so no Abort here.
      st = Commit(txn);
      if (st.ok()) return st;
    } else {
      LABFLOW_IGNORE_STATUS(Abort(txn),
                            "surfacing the body's error; rollback of an "
                            "aborting transaction is best-effort");
    }
    if (!st.IsAborted() || attempt >= retry.max_retries) return st;
    txn_retries_.fetch_add(1, std::memory_order_relaxed);
    int64_t sleep_us =
        backoff_us / 2 +
        static_cast<int64_t>(
            rng->NextBelow(static_cast<uint64_t>(backoff_us / 2 + 1)));
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
    backoff_us = std::min(backoff_us * 2, retry.max_backoff_us);
  }
}

void StorageManager::DropActiveTxns() {
  MutexLock g(txn_mu_);
  for (auto& [raw, txn] : active_txns_) {
    if (txn == nullptr) continue;
    if (txn->is_snapshot()) {
      ReleaseSnapshot(txn->snapshot_ts());
    } else {
      OnTxnDrop(txn.get());
    }
  }
  active_txns_.clear();
}

size_t StorageManager::ActiveTxnCount() const {
  MutexLock g(txn_mu_);
  return active_txns_.size();
}

namespace {

/// Central read-only guard: snapshot handles reject every mutation.
Status CheckNotSnapshot(Txn* txn) {
  if (txn != nullptr && txn->is_snapshot()) {
    return Status::InvalidArgument(
        "read-only snapshot transaction cannot write");
  }
  return Status::OK();
}

}  // namespace

Result<ObjectId> StorageManager::Allocate(Txn* txn, std::string_view data,
                                          const AllocHint& hint) {
  LABFLOW_RETURN_IF_ERROR(CheckTxn(txn));
  LABFLOW_RETURN_IF_ERROR(CheckNotSnapshot(txn));
  return DoAllocate(txn, data, hint);
}

Result<std::string> StorageManager::Read(Txn* txn, ObjectId id) {
  LABFLOW_RETURN_IF_ERROR(CheckTxn(txn));
  return DoRead(txn, id);
}

Status StorageManager::Update(Txn* txn, ObjectId id, std::string_view data) {
  LABFLOW_RETURN_IF_ERROR(CheckTxn(txn));
  LABFLOW_RETURN_IF_ERROR(CheckNotSnapshot(txn));
  return DoUpdate(txn, id, data);
}

Status StorageManager::Free(Txn* txn, ObjectId id) {
  LABFLOW_RETURN_IF_ERROR(CheckTxn(txn));
  LABFLOW_RETURN_IF_ERROR(CheckNotSnapshot(txn));
  return DoFree(txn, id);
}

Status StorageManager::ScanAll(
    Txn* txn, const std::function<Status(ObjectId, std::string_view)>& fn) {
  LABFLOW_RETURN_IF_ERROR(CheckTxn(txn));
  return DoScanAll(txn, fn);
}

}  // namespace labflow::storage
