#include "storage/storage_manager.h"
#include "common/status_macros.h"

namespace labflow::storage {

Result<Txn*> StorageManager::Begin() {
  MutexLock g(txn_mu_);
  if (active_txns_.size() >= MaxConcurrentTxns()) {
    return Status::ResourceExhausted(
        std::string(name()) + ": concurrent transaction limit reached (" +
        std::to_string(MaxConcurrentTxns()) + ")");
  }
  std::unique_ptr<Txn> txn = CreateTxn(next_txn_id_.fetch_add(1));
  Txn* raw = txn.get();
  active_txns_.emplace(raw, std::move(txn));
  return raw;
}

Status StorageManager::CheckTxn(Txn* txn) const {
  if (txn == nullptr) return Status::OK();
  // Membership is tested by pointer value only: a handle that is not in
  // active_txns_ may be foreign (another manager's) or stale (already
  // committed/aborted and freed), and a stale pointer must never be
  // dereferenced.
  MutexLock g(txn_mu_);
  if (active_txns_.count(txn) == 0) {
    return Status::InvalidArgument(
        "unknown transaction handle (stale, or owned by another manager)");
  }
  return Status::OK();
}

Status StorageManager::Commit(Txn* txn) {
  std::unique_ptr<Txn> owned;
  {
    MutexLock g(txn_mu_);
    auto it = txn == nullptr ? active_txns_.end() : active_txns_.find(txn);
    if (it == active_txns_.end()) {
      return Status::InvalidArgument("no such transaction");
    }
    owned = std::move(it->second);
    active_txns_.erase(it);
  }
  return CommitTxn(owned.get());
}

Status StorageManager::Abort(Txn* txn) {
  std::unique_ptr<Txn> owned;
  {
    MutexLock g(txn_mu_);
    auto it = txn == nullptr ? active_txns_.end() : active_txns_.find(txn);
    if (it == active_txns_.end()) {
      return Status::InvalidArgument("no such transaction");
    }
    owned = std::move(it->second);
    active_txns_.erase(it);
  }
  return AbortTxn(owned.get());
}

void StorageManager::DropActiveTxns() {
  MutexLock g(txn_mu_);
  for (auto& [raw, txn] : active_txns_) {
    if (txn != nullptr) OnTxnDrop(txn.get());
  }
  active_txns_.clear();
}

size_t StorageManager::ActiveTxnCount() const {
  MutexLock g(txn_mu_);
  return active_txns_.size();
}

Result<ObjectId> StorageManager::Allocate(Txn* txn, std::string_view data,
                                          const AllocHint& hint) {
  LABFLOW_RETURN_IF_ERROR(CheckTxn(txn));
  return DoAllocate(txn, data, hint);
}

Result<std::string> StorageManager::Read(Txn* txn, ObjectId id) {
  LABFLOW_RETURN_IF_ERROR(CheckTxn(txn));
  return DoRead(txn, id);
}

Status StorageManager::Update(Txn* txn, ObjectId id, std::string_view data) {
  LABFLOW_RETURN_IF_ERROR(CheckTxn(txn));
  return DoUpdate(txn, id, data);
}

Status StorageManager::Free(Txn* txn, ObjectId id) {
  LABFLOW_RETURN_IF_ERROR(CheckTxn(txn));
  return DoFree(txn, id);
}

Status StorageManager::ScanAll(
    Txn* txn, const std::function<Status(ObjectId, std::string_view)>& fn) {
  LABFLOW_RETURN_IF_ERROR(CheckTxn(txn));
  return DoScanAll(txn, fn);
}

}  // namespace labflow::storage
