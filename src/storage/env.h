#ifndef LABFLOW_STORAGE_ENV_H_
#define LABFLOW_STORAGE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace labflow::storage {

/// Random-access file handle abstracted away from POSIX so that fault
/// injection can sit underneath PageFile and Wal (see FaultInjectionEnv in
/// fault_env.h). Thread safety: Read/Write/Size/Sync may be called
/// concurrently; Append calls must be externally serialized (PageFile and
/// Wal both do — the append mutex and the group-commit leader respectively).
class File {
 public:
  virtual ~File() = default;

  /// Reads exactly `n` bytes at `offset` into `buf`. A short file is an
  /// error (IOError naming the path), never a partial fill.
  virtual Status Read(uint64_t offset, size_t n, char* buf) = 0;

  /// Writes all of `data` at `offset`, extending the file if needed.
  virtual Status Write(uint64_t offset, std::string_view data) = 0;

  /// Appends all of `data` at the current end of file.
  virtual Status Append(std::string_view data) = 0;

  /// Forces written data to stable storage (fdatasync semantics).
  virtual Status Sync() = 0;

  /// Current size in bytes.
  virtual Result<uint64_t> Size() const = 0;

  virtual Status Close() = 0;
};

/// Factory for File handles. Env::Default() returns the process-wide POSIX
/// environment; tests substitute a FaultInjectionEnv to make the storage
/// stack fail on purpose. An Env outlives every File it opened.
class Env {
 public:
  virtual ~Env() = default;

  /// Opens (creating if absent) the file at `path` for read/write.
  /// `truncate` discards existing contents. Multiple handles to one path
  /// see each other's writes (the WAL reader opens a second handle).
  virtual Result<std::unique_ptr<File>> OpenFile(const std::string& path,
                                                 bool truncate) = 0;

  /// Removes the file at `path`. NotFound when it does not exist. Used by
  /// the LSM store to retire flushed WALs, compacted SSTables and orphan
  /// files left by a crash between SSTable write and manifest install.
  virtual Status Delete(const std::string& path) = 0;

  /// Whether a file exists at `path` (recovery's orphan probe).
  virtual bool FileExists(const std::string& path) = 0;

  /// The real filesystem. Never deleted; safe to share across threads.
  static Env* Default();
};

}  // namespace labflow::storage

#endif  // LABFLOW_STORAGE_ENV_H_
