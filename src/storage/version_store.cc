#include "storage/version_store.h"

#include <iterator>
#include <utility>

#include "common/status_macros.h"

namespace labflow::storage {

namespace {

/// Newest version with ts <= snapshot_ts, or nullptr.
template <typename Versions>
auto VisibleVersion(const Versions& versions, uint64_t snapshot_ts) ->
    decltype(&versions.back()) {
  for (auto it = versions.rbegin(); it != versions.rend(); ++it) {
    if (it->ts <= snapshot_ts) return &*it;
  }
  return nullptr;
}

}  // namespace

// ---- Writer side ----------------------------------------------------------

bool VersionStore::HasPending(uint64_t owner, uint64_t key) const {
  Shard& shard = ShardFor(key);
  MutexLock g(shard.mu);
  auto it = shard.chains.find(key);
  if (it == shard.chains.end()) return false;
  return it->second.pendings.count(owner) != 0;
}

void VersionStore::Touch(uint64_t owner, uint64_t key) {
  MutexLock g(commit_mu_);
  touched_[owner].push_back(key);
}

void VersionStore::RecordWrite(uint64_t owner, uint64_t key,
                               std::string_view new_data,
                               const std::string* pre_image) {
  bool first = false;
  {
    Shard& shard = ShardFor(key);
    MutexLock g(shard.mu);
    Chain& chain = shard.chains[key];
    first = chain.pendings.count(owner) == 0;
    if (first && pre_image != nullptr && chain.versions.empty()) {
      // The committed value before tracking began: base version, visible to
      // every snapshot. If the chain already has versions, its tail is that
      // committed value and the pre-image is redundant.
      chain.versions.push_back(Version{0, false, *pre_image});
    }
    Pending& pending = chain.pendings[owner];
    pending.data.assign(new_data);
    pending.deleted = false;
  }
  if (first) Touch(owner, key);
}

void VersionStore::RecordDelete(uint64_t owner, uint64_t key,
                                const std::string* pre_image) {
  bool first = false;
  {
    Shard& shard = ShardFor(key);
    MutexLock g(shard.mu);
    Chain& chain = shard.chains[key];
    first = chain.pendings.count(owner) == 0;
    if (first && pre_image != nullptr && chain.versions.empty()) {
      chain.versions.push_back(Version{0, false, *pre_image});
    }
    Pending& pending = chain.pendings[owner];
    pending.data.clear();
    pending.deleted = true;
  }
  if (first) Touch(owner, key);
}

void VersionStore::NotePendingInsert(uint64_t owner, uint64_t key) {
  bool first = false;
  {
    Shard& shard = ShardFor(key);
    MutexLock g(shard.mu);
    Chain& chain = shard.chains[key];
    first = chain.pendings.count(owner) == 0;
    // Placeholder pending: the mere existence of the entry hides the slot
    // from snapshots; RecordWrite fills the payload in outside the latch.
    chain.pendings[owner];
  }
  if (first) Touch(owner, key);
}

// ---- Commit protocol ------------------------------------------------------

uint64_t VersionStore::PrepareCommit(uint64_t owner) {
  uint64_t ts = 0;
  std::vector<uint64_t> keys;
  {
    MutexLock g(commit_mu_);
    ts = ++next_ts_;
    inflight_.insert(ts);
    auto it = touched_.find(owner);
    if (it != touched_.end()) keys = it->second;  // kept until finalize
  }
  for (uint64_t key : keys) {
    Shard& shard = ShardFor(key);
    MutexLock g(shard.mu);
    auto cit = shard.chains.find(key);
    if (cit == shard.chains.end()) continue;
    Chain& chain = cit->second;
    auto pit = chain.pendings.find(owner);
    if (pit == chain.pendings.end()) continue;
    // Ascending-ts insert: under 2PL this is always an append, but managers
    // without write locks (mm) can prepare two owners of one key out of
    // timestamp order.
    auto pos = std::upper_bound(
        chain.versions.begin(), chain.versions.end(), ts,
        [](uint64_t t, const Version& v) { return t < v.ts; });
    chain.versions.insert(
        pos, Version{ts, pit->second.deleted, std::move(pit->second.data)});
    chain.pendings.erase(pit);
  }
  return ts;
}

void VersionStore::FinalizeCommit(uint64_t owner, uint64_t ts) {
  bool sweep = false;
  uint64_t horizon = 0;
  {
    MutexLock g(commit_mu_);
    inflight_.erase(ts);
    touched_.erase(owner);
    if (++commits_since_sweep_ >= kSweepEveryCommits) {
      commits_since_sweep_ = 0;
      sweep = true;
      horizon = HorizonLocked();
    }
  }
  if (sweep) SweepAll(horizon);
}

void VersionStore::AbandonCommit(uint64_t owner, uint64_t ts) {
  std::vector<uint64_t> keys;
  {
    MutexLock g(commit_mu_);
    auto it = touched_.find(owner);
    if (it != touched_.end()) keys = it->second;  // kept: AbortOwner follows
  }
  // ts never left in-flight, so no snapshot can have read these versions.
  // Turn them back into pending entries rather than dropping the chains: the
  // physical rollback has not run yet, so the pages still hold the doomed
  // bytes and must stay hidden until the caller's AbortOwner (which runs
  // after the undo) clears the pendings.
  for (uint64_t key : keys) {
    Shard& shard = ShardFor(key);
    MutexLock g(shard.mu);
    auto cit = shard.chains.find(key);
    if (cit == shard.chains.end()) continue;
    Chain& chain = cit->second;
    auto& versions = chain.versions;
    auto doomed = std::find_if(versions.begin(), versions.end(),
                               [ts](const Version& v) { return v.ts == ts; });
    if (doomed == versions.end()) continue;
    Pending& pending = chain.pendings[owner];
    pending.deleted = doomed->deleted;
    pending.data = std::move(doomed->data);
    versions.erase(doomed);
  }
  MutexLock g(commit_mu_);
  inflight_.erase(ts);
}

void VersionStore::AbortOwner(uint64_t owner) {
  std::vector<uint64_t> keys;
  {
    MutexLock g(commit_mu_);
    auto it = touched_.find(owner);
    if (it != touched_.end()) keys = std::move(it->second);
    touched_.erase(owner);
  }
  for (uint64_t key : keys) {
    Shard& shard = ShardFor(key);
    MutexLock g(shard.mu);
    auto cit = shard.chains.find(key);
    if (cit == shard.chains.end()) continue;
    Chain& chain = cit->second;
    chain.pendings.erase(owner);
    if (chain.versions.empty() && chain.pendings.empty()) {
      shard.chains.erase(cit);
    }
  }
}

// ---- Snapshot registry ----------------------------------------------------

uint64_t VersionStore::AcquireSnapshot() {
  MutexLock g(commit_mu_);
  uint64_t ts = StableLocked();
  snapshots_.insert(ts);
  snapshots_opened_.fetch_add(1, std::memory_order_relaxed);
  return ts;
}

void VersionStore::ReleaseSnapshot(uint64_t ts) {
  bool sweep = false;
  uint64_t horizon = 0;
  {
    MutexLock g(commit_mu_);
    auto it = snapshots_.find(ts);
    if (it != snapshots_.end()) snapshots_.erase(it);
    // The horizon can jump when the oldest snapshot closes; sweep then so
    // long-scan regimes do not accumulate chains for a whole run.
    if (snapshots_.empty() && commits_since_sweep_ > 0) {
      commits_since_sweep_ = 0;
      sweep = true;
      horizon = HorizonLocked();
    }
  }
  if (sweep) SweepAll(horizon);
}

// ---- Reader side ----------------------------------------------------------

VersionStore::Resolve VersionStore::Lookup(uint64_t snapshot_ts, uint64_t key,
                                           std::string* out) const {
  Shard& shard = ShardFor(key);
  MutexLock g(shard.mu);
  auto it = shard.chains.find(key);
  if (it == shard.chains.end()) return Resolve::kFallThrough;
  const Version* v = VisibleVersion(it->second.versions, snapshot_ts);
  if (v == nullptr || v->deleted) return Resolve::kNotFound;
  if (out != nullptr) out->assign(v->data);
  return Resolve::kData;
}

Status VersionStore::SweepVisible(
    uint64_t snapshot_ts, const std::unordered_set<uint64_t>& emitted,
    const std::function<Status(uint64_t, std::string_view)>& fn) const {
  for (const Shard& shard : shards_) {
    // Collect under the shard mutex, emit outside it: fn is an arbitrary
    // caller callback and must not run under a store lock.
    std::vector<std::pair<uint64_t, std::string>> visible;
    {
      MutexLock g(shard.mu);
      for (const auto& [key, chain] : shard.chains) {
        if (emitted.count(key) != 0) continue;
        const Version* v = VisibleVersion(chain.versions, snapshot_ts);
        if (v == nullptr || v->deleted) continue;
        visible.emplace_back(key, v->data);
      }
    }
    for (const auto& [key, data] : visible) {
      LABFLOW_RETURN_IF_ERROR(fn(key, data));
    }
  }
  return Status::OK();
}

// ---- Garbage collection ---------------------------------------------------

bool VersionStore::PruneChain(std::unordered_map<uint64_t, Chain>* chains,
                              std::unordered_map<uint64_t, Chain>::iterator it,
                              uint64_t horizon) {
  Chain& chain = it->second;
  if (!chain.pendings.empty()) return false;
  if (chain.versions.empty()) {
    chains->erase(it);
    return true;
  }
  if (chain.versions.back().ts <= horizon) {
    // Every snapshot that can still open reads at or above the horizon, and
    // the newest version at or below it is exactly what the physical store
    // holds (a committed update left the bytes in place; a tombstone left
    // the slot dead) — fall-through gives the same answer, so the whole
    // chain can go.
    chains->erase(it);
    return true;
  }
  // Keep the newest version at or below the horizon as the base for the
  // oldest snapshots; everything older is unreachable.
  auto& versions = chain.versions;
  while (versions.size() >= 2 && versions[1].ts <= horizon) {
    versions.erase(versions.begin());
  }
  return false;
}

void VersionStore::SweepAll(uint64_t horizon) {
  for (Shard& shard : shards_) {
    MutexLock g(shard.mu);
    for (auto it = shard.chains.begin(); it != shard.chains.end();) {
      auto next = std::next(it);
      PruneChain(&shard.chains, it, horizon);
      it = next;
    }
  }
}

// ---- Recovery / telemetry -------------------------------------------------

void VersionStore::EnsureTimestamp(uint64_t ts) {
  MutexLock g(commit_mu_);
  if (ts > next_ts_) next_ts_ = ts;
}

uint64_t VersionStore::high_water() const {
  MutexLock g(commit_mu_);
  return next_ts_;
}

uint64_t VersionStore::stable_ts() const {
  MutexLock g(commit_mu_);
  return StableLocked();
}

uint64_t VersionStore::chain_count() const {
  uint64_t n = 0;
  for (const Shard& shard : shards_) {
    MutexLock g(shard.mu);
    n += shard.chains.size();
  }
  return n;
}

}  // namespace labflow::storage
