#include "storage/paged_manager.h"

#include <cstring>
#include <unordered_set>

#include "common/codec.h"
#include "common/mutex.h"
#include "common/status_macros.h"

namespace labflow::storage {

namespace {

/// Parses "[varint n][n bytes]" at data[pos...]; returns a view into data.
Result<std::string_view> ParseLenPrefixed(std::string_view data, size_t pos) {
  uint64_t n = 0;
  int shift = 0;
  while (true) {
    if (pos >= data.size()) return Status::Corruption("record truncated");
    uint8_t b = static_cast<uint8_t>(data[pos++]);
    n |= static_cast<uint64_t>(b & 0x7F) << shift;
    if (!(b & 0x80)) break;
    shift += 7;
    if (shift >= 64) return Status::Corruption("record varint overflow");
  }
  if (pos + n > data.size()) return Status::Corruption("record truncated");
  return std::string_view(data.data() + pos, n);
}

uint64_t LoadLE64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void StoreLE64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, 8);
}

}  // namespace

PagedManagerBase::~PagedManagerBase() = default;

// ---- Record encoding ------------------------------------------------------

std::string PagedManagerBase::EncodeData(uint8_t tag,
                                         std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + 4);
  out.push_back(static_cast<char>(tag));
  uint64_t n = payload.size();
  while (n >= 0x80) {
    out.push_back(static_cast<char>(n | 0x80));
    n >>= 7;
  }
  out.push_back(static_cast<char>(n));
  out.append(payload.data(), payload.size());
  while (out.size() < kMinRecordSize) out.push_back('\0');
  return out;
}

std::string PagedManagerBase::EncodeForward(ObjectId target) {
  std::string out;
  out.push_back(static_cast<char>(kRecTagForward));
  StoreLE64(&out, target.raw);
  return out;
}

std::string PagedManagerBase::EncodeRoot(const std::vector<ObjectId>& chunks) {
  std::string out;
  out.push_back(static_cast<char>(kRecTagRoot));
  uint64_t n = chunks.size();
  while (n >= 0x80) {
    out.push_back(static_cast<char>(n | 0x80));
    n >>= 7;
  }
  out.push_back(static_cast<char>(n));
  for (ObjectId c : chunks) StoreLE64(&out, c.raw);
  return out;
}

Result<std::string_view> PagedManagerBase::DecodePayload(
    std::string_view record) {
  if (record.empty()) return Status::Corruption("empty record");
  uint8_t tag = static_cast<uint8_t>(record[0]);
  if (tag != kRecTagData && tag != kRecTagChunk && tag != kRecTagMovedData) {
    return Status::Corruption("not a data record");
  }
  return ParseLenPrefixed(record, 1);
}

Result<ObjectId> PagedManagerBase::DecodeForward(std::string_view record) {
  if (record.size() < 9 || static_cast<uint8_t>(record[0]) != kRecTagForward) {
    return Status::Corruption("not a forward record");
  }
  return ObjectId(LoadLE64(record.data() + 1));
}

Result<std::vector<ObjectId>> PagedManagerBase::DecodeRoot(
    std::string_view record) {
  if (record.empty()) return Status::Corruption("empty record");
  uint8_t tag = static_cast<uint8_t>(record[0]);
  if (tag != kRecTagRoot && tag != kRecTagMovedRoot) {
    return Status::Corruption("not a span root");
  }
  uint64_t n = 0;
  size_t pos = 1;
  int shift = 0;
  while (true) {
    if (pos >= record.size()) return Status::Corruption("root truncated");
    uint8_t b = static_cast<uint8_t>(record[pos++]);
    n |= static_cast<uint64_t>(b & 0x7F) << shift;
    if (!(b & 0x80)) break;
    shift += 7;
  }
  if (pos + 8 * n > record.size()) return Status::Corruption("root truncated");
  std::vector<ObjectId> chunks;
  chunks.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    chunks.push_back(ObjectId(LoadLE64(record.data() + pos + 8 * i)));
  }
  return chunks;
}

// ---- Lifecycle ------------------------------------------------------------

Status PagedManagerBase::Open(const PagedManagerOptions& options) {
  if (open_) return Status::InvalidArgument("manager already open");
  options_ = options;
  env_ = options.env != nullptr ? options.env : Env::Default();
  LABFLOW_RETURN_IF_ERROR(file_.Open(env_, options.path, options.truncate));
  pool_ = std::make_unique<BufferPool>(&file_, options.buffer_pool_pages,
                                       options.fault_delay_us,
                                       options.buffer_pool_shards);
  bool fresh = (file_.page_count() == 0);
  if (fresh) {
    LABFLOW_ASSIGN_OR_RETURN(uint64_t sb, file_.AppendPage());
    (void)sb;
    {
      MutexLock g(alloc_mu_);
      segments_.clear();
      segments_.push_back(SegmentState{"default", 0, {}});
    }
    LABFLOW_RETURN_IF_ERROR(WriteSuperblock());
  } else {
    LABFLOW_RETURN_IF_ERROR(ReadSuperblock());
  }
  LABFLOW_RETURN_IF_ERROR(OnOpen(fresh));
  if (!fresh) {
    LABFLOW_RETURN_IF_ERROR(RebuildFromScan());
  }
  open_ = true;
  return Status::OK();
}

Status PagedManagerBase::WriteSuperblock() {
  // Snapshot the segment names under the allocator mutex: Checkpoint() can
  // run concurrently with segment growth, and iterating the vector unlocked
  // raced push_back. The page write below stays off-lock.
  std::vector<std::string> seg_names;
  {
    MutexLock g(alloc_mu_);
    seg_names.reserve(segments_.size());
    for (const SegmentState& seg : segments_) seg_names.push_back(seg.name);
  }
  Encoder enc;
  enc.PutFixed32(kMagic);
  enc.PutFixed32(kFormatVersion);
  enc.PutFixed64(lsn_.load());
  enc.PutFixed64(root_.load());
  enc.PutU32(static_cast<uint32_t>(seg_names.size()));
  for (const std::string& name : seg_names) enc.PutString(name);
  enc.PutString(EncodeMeta());
  if (enc.size() > kPageCapacity) {
    return Status::Internal("superblock overflow");
  }
  std::vector<char> buf(kPageSize, 0);
  std::memcpy(buf.data(), enc.buffer().data(), enc.size());
  StampPageChecksum(buf.data());
  return file_.WritePage(0, buf.data());
}

Status PagedManagerBase::ReadSuperblock() {
  std::vector<char> buf(kPageSize);
  LABFLOW_RETURN_IF_ERROR(file_.ReadPage(0, buf.data()));
  if (Status st = VerifyPageChecksum(buf.data(), 0); !st.ok()) {
    direct_checksum_failures_.fetch_add(1);
    return st;
  }
  Decoder dec(std::string_view(buf.data(), buf.size()));
  LABFLOW_ASSIGN_OR_RETURN(uint32_t magic, dec.GetFixed32());
  if (magic != kMagic) return Status::Corruption("bad superblock magic");
  LABFLOW_ASSIGN_OR_RETURN(uint32_t version, dec.GetFixed32());
  if (version != kFormatVersion) {
    return Status::Corruption("unsupported format version");
  }
  LABFLOW_ASSIGN_OR_RETURN(uint64_t lsn, dec.GetFixed64());
  lsn_.store(lsn);
  LABFLOW_ASSIGN_OR_RETURN(uint64_t root, dec.GetFixed64());
  root_.store(root);
  LABFLOW_ASSIGN_OR_RETURN(uint32_t n_segments, dec.GetU32());
  {
    MutexLock g(alloc_mu_);
    segments_.clear();
    for (uint32_t i = 0; i < n_segments; ++i) {
      LABFLOW_ASSIGN_OR_RETURN(std::string name, dec.GetString());
      segments_.push_back(SegmentState{std::move(name), 0, {}});
    }
    if (segments_.empty()) {
      segments_.push_back(SegmentState{"default", 0, {}});
    }
  }
  LABFLOW_ASSIGN_OR_RETURN(std::string meta, dec.GetString());
  return DecodeMeta(meta);
}

Status PagedManagerBase::RebuildFromScan() {
  // Recovery-time scan: runs single-threaded before the manager is open,
  // so holding alloc_mu_ across the page reads contends with nothing.
  MutexLock g(alloc_mu_);
  std::vector<char> buf(kPageSize);
  uint64_t live = 0;
  uint64_t max_lsn = lsn_.load();
  for (uint64_t page_no = 1; page_no < file_.page_count(); ++page_no) {
    LABFLOW_RETURN_IF_ERROR(
        file_.ReadPage(page_no, buf.data()));  // NOLINT(io-under-lock)
    if (Status st = VerifyPageChecksum(buf.data(), page_no); !st.ok()) {
      direct_checksum_failures_.fetch_add(1);
      return st;
    }
    Page page(buf.data());
    if (page.lsn() > max_lsn) max_lsn = page.lsn();
    uint16_t seg = page.segment();
    while (seg >= segments_.size()) {
      segments_.push_back(
          SegmentState{"seg" + std::to_string(segments_.size()), 0, {}});
    }
    for (uint16_t s = 0; s < page.slot_count(); ++s) {
      if (!page.IsLive(s)) continue;
      auto rec = page.Read(s);
      if (!rec.ok() || rec.value().empty()) continue;
      uint8_t tag = static_cast<uint8_t>(rec.value()[0]);
      if (tag == kRecTagData || tag == kRecTagRoot || tag == kRecTagForward) ++live;
    }
    size_t free = page.FreeForInsert();
    if (free >= kFreeThreshold) {
      segments_[seg].free_pages[page_no] = static_cast<uint32_t>(free);
      segments_[seg].open_page = page_no;
    }
  }
  lsn_.store(max_lsn);
  live_objects_.store(live);
  return Status::OK();
}

Status PagedManagerBase::Checkpoint() {
  if (!open_) return Status::InvalidArgument("manager not open");
  LABFLOW_RETURN_IF_ERROR(pool_->FlushAll());
  LABFLOW_RETURN_IF_ERROR(file_.Sync());
  LABFLOW_RETURN_IF_ERROR(WriteSuperblock());
  LABFLOW_RETURN_IF_ERROR(file_.Sync());
  return OnCheckpoint();
}

Status PagedManagerBase::Close() {
  if (!open_) return Status::OK();
  LABFLOW_RETURN_IF_ERROR(Checkpoint());
  // Live transactions are dropped (releasing their locks and page pins)
  // before the buffer pool goes away; their handles become invalid.
  DropActiveTxns();
  LABFLOW_RETURN_IF_ERROR(OnClose());
  open_ = false;
  pool_.reset();
  return file_.Close();
}

Status PagedManagerBase::SimulateCrash() {
  if (!open_) return Status::OK();
  open_ = false;
  DropActiveTxns();
  LABFLOW_RETURN_IF_ERROR(OnCrash());
  pool_.reset();  // dirty pages vanish, as in a process kill
  return file_.Close();
}

StorageStats PagedManagerBase::stats() const {
  StorageStats s;
  s.checksum_failures = direct_checksum_failures_.load();
  if (pool_ != nullptr) {
    BufferPoolStats ps = pool_->stats();
    s.disk_reads = ps.disk_reads;
    s.disk_writes = ps.disk_writes;
    s.cache_hits = ps.hits;
    s.evictions = ps.evictions;
    s.checksum_failures += ps.checksum_failures;
  }
  s.db_size_bytes = file_.SizeBytes();
  s.live_objects = live_objects_.load();
  s.txn_retries = txn_retry_count();
  if (SupportsSnapshots()) {
    s.snapshots_opened = versions_.snapshots_opened();
    s.commit_ts_hwm = versions_.high_water();
    s.mvcc_chains = versions_.chain_count();
  }
  AugmentStats(&s);
  return s;
}

std::string PagedManagerBase::PadRecord(std::string record) const {
  size_t want = StoreSize(record.size());
  if (want > Page::kMaxRecordSize) want = Page::kMaxRecordSize;
  if (want > record.size()) record.resize(want, '\0');
  return record;
}

// ---- Segments -------------------------------------------------------------

Result<uint16_t> PagedManagerBase::CreateSegment(std::string_view name) {
  if (!SupportsSegments()) return static_cast<uint16_t>(0);
  MutexLock g(alloc_mu_);
  if (segments_.size() >= 0xFFFF) {
    return Status::ResourceExhausted("too many segments");
  }
  segments_.push_back(SegmentState{std::string(name), 0, {}});
  return static_cast<uint16_t>(segments_.size() - 1);
}

// ---- Allocation -----------------------------------------------------------

void PagedManagerBase::NoteFreeSpaceLocked(uint64_t page_no, uint16_t segment,
                                           size_t free) {
  while (segment >= segments_.size()) {
    segments_.push_back(
        SegmentState{"seg" + std::to_string(segments_.size()), 0, {}});
  }
  SegmentState& seg = segments_[segment];
  if (free >= kFreeThreshold) {
    seg.free_pages[page_no] = static_cast<uint32_t>(free);
  } else {
    seg.free_pages.erase(page_no);
    if (seg.open_page == page_no) seg.open_page = 0;
  }
}

Result<uint64_t> PagedManagerBase::NewPageInSegment(Txn* txn,
                                                    uint16_t segment) {
  LABFLOW_ASSIGN_OR_RETURN(BufferPool::PinGuard guard, pool_->NewPage());
  uint64_t page_no = guard->page_no();
  LABFLOW_RETURN_IF_ERROR(LockPage(txn, page_no, /*exclusive=*/true));
  uint64_t lsn = 0;
  {
    WriterMutexLock l(guard->latch());
    Page page(guard->data());
    page.Initialize(segment);
    lsn = NextLsn();
    page.set_lsn(lsn);
    guard->MarkDirty();
  }
  RetainPage(txn, page_no);
  OnPageInit(txn, lsn, page_no, segment);
  return page_no;
}

Result<ObjectId> PagedManagerBase::TryInsertOnPage(Txn* txn, uint64_t page_no,
                                                   std::string_view record,
                                                   size_t min_leftover,
                                                   bool try_lock) {
  if (try_lock) {
    LABFLOW_RETURN_IF_ERROR(TryLockPage(txn, page_no, /*exclusive=*/true));
  } else {
    LABFLOW_RETURN_IF_ERROR(LockPage(txn, page_no, /*exclusive=*/true));
  }
  LABFLOW_ASSIGN_OR_RETURN(BufferPool::PinGuard guard, pool_->Fetch(page_no));
  // The frame latch serializes the byte-level mutation: the page lock above
  // is txn-scope and a no-op for auto-commit and for managers without
  // locking, so it cannot keep two inserters off the same page.
  uint16_t seg = 0;
  size_t free = 0;
  uint64_t lsn = 0;
  bool anchor_near_full = false;
  Result<uint16_t> slot = static_cast<uint16_t>(0);
  {
    WriterMutexLock l(guard->latch());
    Page page(guard->data());
    seg = page.segment();
    if (min_leftover > 0 &&
        page.FreeForInsert() < record.size() + min_leftover) {
      anchor_near_full = true;
      free = page.FreeForInsert();
    } else {
      slot = page.Insert(record);
      free = page.FreeForInsert();
      if (slot.ok()) {
        lsn = NextLsn();
        page.set_lsn(lsn);
        guard->MarkDirty();
        if (txn != nullptr && SupportsSnapshots() && !record.empty()) {
          uint8_t tag = static_cast<uint8_t>(record[0]);
          if (tag == kRecTagData || tag == kRecTagRoot) {
            // Register the uncommitted slot before the latch drops: a
            // snapshot scan that sees it live must also see the chain and
            // skip it.
            versions_.NotePendingInsert(
                txn->id(), ObjectId::Make(page_no, slot.value()).raw);
          }
        }
      }
    }
  }
  if (anchor_near_full) {
    MutexLock g(alloc_mu_);
    NoteFreeSpaceLocked(page_no, seg, free);
    return Status::ResourceExhausted("cluster anchor page near full");
  }
  if (!slot.ok()) {
    MutexLock g(alloc_mu_);
    NoteFreeSpaceLocked(page_no, seg, free);
    return slot.status();
  }
  RetainPage(txn, page_no);
  OnInsert(txn, lsn, page_no, slot.value(), record);
  {
    MutexLock g(alloc_mu_);
    NoteFreeSpaceLocked(page_no, seg, free);
  }
  return ObjectId::Make(page_no, slot.value());
}

Result<ObjectId> PagedManagerBase::InsertRecord(Txn* txn,
                                                std::string_view record,
                                                const AllocHint& hint) {
  // Clustering path: place next to the anchor object if possible. Blocking
  // locks are fine here — the only manager honouring cluster hints (Texas)
  // admits a single transaction and takes no locks at all.
  if (UseClusterHint() && hint.cluster_near.IsValid()) {
    uint64_t anchor_page = hint.cluster_near.page();
    if (anchor_page >= 1 && anchor_page < file_.page_count()) {
      Result<ObjectId> r =
          TryInsertOnPage(txn, anchor_page, record, kClusterAnchorSlack);
      if (r.ok() || !r.status().IsResourceExhausted()) return r;
      uint64_t overflow = 0;
      {
        MutexLock g(alloc_mu_);
        auto it = cluster_overflow_.find(anchor_page);
        if (it != cluster_overflow_.end()) overflow = it->second;
      }
      if (overflow != 0) {
        r = TryInsertOnPage(txn, overflow, record);
        if (r.ok() || !r.status().IsResourceExhausted()) return r;
      }
      // Dedicate a new overflow page to this anchor, preferring to adopt a
      // mostly-empty page from the free map (space released by record
      // moves) over growing the file. Use the anchor's segment so cluster
      // and segment policies compose.
      uint16_t seg = 0;
      {
        LABFLOW_RETURN_IF_ERROR(
            LockPage(txn, anchor_page, /*exclusive=*/false));
        LABFLOW_ASSIGN_OR_RETURN(BufferPool::PinGuard guard,
                                 pool_->Fetch(anchor_page));
        ReaderMutexLock l(guard->latch());
        seg = Page(guard->data()).segment();
      }
      uint64_t adopted = 0;
      {
        MutexLock g(alloc_mu_);
        if (seg < segments_.size()) {
          for (const auto& [page_no, free] : segments_[seg].free_pages) {
            if (free >= kPageSize / 2 && page_no != anchor_page) {
              adopted = page_no;
              break;
            }
          }
        }
      }
      if (adopted != 0) {
        Result<ObjectId> ar = TryInsertOnPage(txn, adopted, record);
        if (ar.ok()) {
          MutexLock g(alloc_mu_);
          cluster_overflow_[anchor_page] = adopted;
          return ar;
        }
        if (!ar.status().IsResourceExhausted()) return ar;
      }
      LABFLOW_ASSIGN_OR_RETURN(uint64_t fresh, NewPageInSegment(txn, seg));
      {
        MutexLock g(alloc_mu_);
        cluster_overflow_[anchor_page] = fresh;
      }
      return TryInsertOnPage(txn, fresh, record);
    }
  }

  uint16_t seg = SupportsSegments() ? hint.segment : 0;
  {
    MutexLock g(alloc_mu_);
    if (seg >= segments_.size()) {
      return Status::InvalidArgument("unknown segment " + std::to_string(seg));
    }
  }

  // 0. The transaction's preferred page: the page it last inserted into.
  // Under 2PL it still holds that page's X lock, so this is contention-free
  // and keeps a transaction's allocations clustered.
  if (txn != nullptr) {
    uint64_t pref = txn->preferred_page(seg);
    if (pref != 0) {
      Result<ObjectId> r = TryInsertOnPage(txn, pref, record);
      if (r.ok() || !r.status().IsResourceExhausted()) return r;
    }
  }

  // Shared placement candidates are only *probed* when inside a transaction:
  // another inserter X-holds its page until commit, and blocking on it would
  // serialize all insert transactions (or abort them as presumed deadlocks).
  // A busy page reads as ResourceExhausted and falls through, like a full
  // page would.
  const bool probe = (txn != nullptr);

  // 1. The segment's current open page.
  uint64_t open_page = 0;
  {
    MutexLock g(alloc_mu_);
    open_page = segments_[seg].open_page;
  }
  if (open_page != 0) {
    Result<ObjectId> r = TryInsertOnPage(txn, open_page, record, 0, probe);
    if (r.ok()) {
      if (txn != nullptr) txn->set_preferred_page(seg, open_page);
      return r;
    }
    if (!r.status().IsResourceExhausted()) return r;
  }

  // 2. A few candidates from the segment's free map (more of them when
  // probing, since busy pages are skipped too).
  const size_t max_candidates = probe ? 8 : 4;
  std::vector<uint64_t> candidates;
  {
    MutexLock g(alloc_mu_);
    const SegmentState& s = segments_[seg];
    for (auto it = s.free_pages.begin();
         it != s.free_pages.end() && candidates.size() < max_candidates;
         ++it) {
      if (it->second >= record.size() + Page::kSlotSize &&
          it->first != open_page) {
        candidates.push_back(it->first);
      }
    }
  }
  for (uint64_t page_no : candidates) {
    Result<ObjectId> r = TryInsertOnPage(txn, page_no, record, 0, probe);
    if (r.ok()) {
      MutexLock g(alloc_mu_);
      segments_[seg].open_page = page_no;
      if (txn != nullptr) txn->set_preferred_page(seg, page_no);
      return r;
    }
    if (!r.status().IsResourceExhausted()) return r;
  }

  // 3. A fresh page.
  LABFLOW_ASSIGN_OR_RETURN(uint64_t fresh, NewPageInSegment(txn, seg));
  {
    MutexLock g(alloc_mu_);
    segments_[seg].open_page = fresh;
  }
  Result<ObjectId> r = TryInsertOnPage(txn, fresh, record);
  if (r.ok() && txn != nullptr) txn->set_preferred_page(seg, fresh);
  return r;
}

Result<ObjectId> PagedManagerBase::DoAllocate(Txn* txn, std::string_view data,
                                              const AllocHint& hint) {
  if (!open_) return Status::InvalidArgument("manager not open");
  LABFLOW_RETURN_IF_ERROR(CheckWritable());
  Result<ObjectId> id = Status::Internal("unreachable");
  if (data.size() <= kInlineMax) {
    id = InsertRecord(txn, PadRecord(EncodeData(kRecTagData, data)), hint);
  } else {
    std::vector<ObjectId> chunks;
    for (size_t pos = 0; pos < data.size(); pos += kChunkPayload) {
      size_t n = std::min(kChunkPayload, data.size() - pos);
      LABFLOW_ASSIGN_OR_RETURN(
          ObjectId chunk,
          InsertRecord(txn,
                       PadRecord(EncodeData(kRecTagChunk, data.substr(pos, n))),
                       hint));
      chunks.push_back(chunk);
    }
    std::string root = EncodeRoot(chunks);
    if (root.size() > kInlineMax) {
      return Status::NotSupported("object too large");
    }
    id = InsertRecord(txn, PadRecord(std::move(root)), hint);
  }
  if (id.ok()) {
    live_objects_.fetch_add(1);
    if (txn != nullptr && SupportsSnapshots()) {
      // Created by this transaction: no pre-image; the object stays
      // invisible to snapshots until its commit timestamp.
      versions_.RecordWrite(txn->id(), id.value().raw, data, nullptr);
    }
  }
  return id;
}

// ---- Read -----------------------------------------------------------------

Result<std::string> PagedManagerBase::ReadRaw(Txn* txn, ObjectId id,
                                              bool for_update) {
  if (!id.IsValid()) return Status::InvalidArgument("invalid object id");
  uint64_t page_no = id.page();
  if (page_no == 0 || page_no >= file_.page_count()) {
    return Status::NotFound("no such object: " + id.ToString());
  }
  LABFLOW_RETURN_IF_ERROR(LockPage(txn, page_no, /*exclusive=*/for_update));
  LABFLOW_ASSIGN_OR_RETURN(BufferPool::PinGuard guard, pool_->Fetch(page_no));
  ReaderMutexLock l(guard->latch());
  Page page(guard->data());
  LABFLOW_ASSIGN_OR_RETURN(std::string_view rec, page.Read(id.slot()));
  return std::string(rec);
}

Result<ObjectId> PagedManagerBase::ResolveForward(Txn* txn, ObjectId id,
                                                  ObjectId* first_hop,
                                                  bool for_update) {
  if (first_hop != nullptr) *first_hop = ObjectId::Invalid();
  ObjectId cur = id;
  for (int hops = 0; hops < 32; ++hops) {
    LABFLOW_ASSIGN_OR_RETURN(std::string rec, ReadRaw(txn, cur, for_update));
    if (rec.empty()) return Status::Corruption("empty record");
    if (static_cast<uint8_t>(rec[0]) != kRecTagForward) return cur;
    if (first_hop != nullptr && !first_hop->IsValid()) *first_hop = cur;
    LABFLOW_ASSIGN_OR_RETURN(cur, DecodeForward(rec));
  }
  return Status::Corruption("forwarding chain too long");
}

Result<std::string> PagedManagerBase::DoRead(Txn* txn, ObjectId id) {
  if (!open_) return Status::InvalidArgument("manager not open");
  if (txn != nullptr && txn->is_snapshot()) {
    return SnapshotRead(txn->snapshot_ts(), id);
  }
  LABFLOW_ASSIGN_OR_RETURN(ObjectId terminal, ResolveForward(txn, id, nullptr));
  LABFLOW_ASSIGN_OR_RETURN(std::string rec, ReadRaw(txn, terminal));
  if (rec.empty()) return Status::Corruption("empty record");
  uint8_t tag = static_cast<uint8_t>(rec[0]);
  if (tag == kRecTagData || tag == kRecTagMovedData) {
    LABFLOW_ASSIGN_OR_RETURN(std::string_view payload, DecodePayload(rec));
    return std::string(payload);
  }
  if (tag == kRecTagRoot || tag == kRecTagMovedRoot) {
    LABFLOW_ASSIGN_OR_RETURN(std::vector<ObjectId> chunks, DecodeRoot(rec));
    std::string out;
    for (ObjectId chunk : chunks) {
      LABFLOW_ASSIGN_OR_RETURN(std::string crec, ReadRaw(txn, chunk));
      LABFLOW_ASSIGN_OR_RETURN(std::string_view payload, DecodePayload(crec));
      out.append(payload.data(), payload.size());
    }
    return out;
  }
  if (tag == kRecTagChunk) {
    return Status::InvalidArgument("id refers to an internal chunk");
  }
  return Status::Corruption("unknown record tag");
}

// ---- Snapshot reads -------------------------------------------------------

Result<std::string> PagedManagerBase::PayloadOfRecord(Txn* txn,
                                                      std::string_view record,
                                                      bool for_update) {
  if (record.empty()) return Status::Corruption("empty record");
  uint8_t tag = static_cast<uint8_t>(record[0]);
  if (tag == kRecTagData || tag == kRecTagMovedData) {
    LABFLOW_ASSIGN_OR_RETURN(std::string_view payload, DecodePayload(record));
    return std::string(payload);
  }
  if (tag == kRecTagRoot || tag == kRecTagMovedRoot) {
    LABFLOW_ASSIGN_OR_RETURN(std::vector<ObjectId> chunks, DecodeRoot(record));
    std::string out;
    for (ObjectId chunk : chunks) {
      LABFLOW_ASSIGN_OR_RETURN(std::string crec, ReadRaw(txn, chunk, for_update));
      LABFLOW_ASSIGN_OR_RETURN(std::string_view payload, DecodePayload(crec));
      out.append(payload.data(), payload.size());
    }
    return out;
  }
  return Status::InvalidArgument("record has no payload");
}

Result<std::string> PagedManagerBase::SnapshotRead(uint64_t snapshot_ts,
                                                   ObjectId id) {
  std::string chained;
  switch (versions_.Lookup(snapshot_ts, id.raw, &chained)) {
    case VersionStore::Resolve::kData:
      return chained;
    case VersionStore::Resolve::kNotFound:
      return Status::NotFound("no such object at snapshot: " + id.ToString());
    case VersionStore::Resolve::kFallThrough:
      break;
  }
  // Optimistic lock-free physical read (LockPage with txn == nullptr is a
  // no-op everywhere). Every transactional writer registers its chain
  // before mutating bytes, so if this read raced one — and possibly
  // assembled a torn multi-chunk value — the re-check below sees the chain
  // and overrides the physical answer.
  Result<std::string> physical = DoRead(nullptr, id);
  switch (versions_.Lookup(snapshot_ts, id.raw, &chained)) {
    case VersionStore::Resolve::kData:
      return chained;
    case VersionStore::Resolve::kNotFound:
      return Status::NotFound("no such object at snapshot: " + id.ToString());
    case VersionStore::Resolve::kFallThrough:
      break;
  }
  return physical;
}

Status PagedManagerBase::SnapshotScanAll(
    uint64_t snapshot_ts,
    const std::function<Status(ObjectId, std::string_view)>& fn) {
  // Physical pass, lock-free. Every live public slot found under a page
  // latch is resolved against the chains afterwards; since writers register
  // chains before mutating, a latch-read that observed uncommitted bytes is
  // always overridden. Keys handled here — emitted or ruled invisible — go
  // into `emitted`; the chain sweep at the end covers objects whose slots
  // were deleted or moved before this pass reached their page.
  std::unordered_set<uint64_t> emitted;
  for (uint64_t page_no = 1; page_no < file_.page_count(); ++page_no) {
    struct Item {
      ObjectId id;
      bool inline_payload;
      std::string payload;  // set when inline
    };
    std::vector<Item> items;
    {
      LABFLOW_ASSIGN_OR_RETURN(BufferPool::PinGuard guard,
                               pool_->Fetch(page_no));
      ReaderMutexLock l(guard->latch());
      Page page(guard->data());
      for (uint16_t s = 0; s < page.slot_count(); ++s) {
        if (!page.IsLive(s)) continue;
        auto rec = page.Read(s);
        if (!rec.ok() || rec.value().empty()) continue;
        uint8_t tag = static_cast<uint8_t>(rec.value()[0]);
        ObjectId id = ObjectId::Make(page_no, s);
        if (tag == kRecTagData) {
          auto payload = DecodePayload(rec.value());
          if (payload.ok()) {
            items.push_back(Item{id, true, std::string(payload.value())});
          } else {
            // Garbled under concurrent rewrite; retry via SnapshotRead,
            // which settles it against the chain.
            items.push_back(Item{id, false, std::string()});
          }
        } else if (tag == kRecTagRoot || tag == kRecTagForward) {
          items.push_back(Item{id, false, std::string()});
        }
      }
    }
    for (const Item& item : items) {
      emitted.insert(item.id.raw);
      std::string chained;
      switch (versions_.Lookup(snapshot_ts, item.id.raw, &chained)) {
        case VersionStore::Resolve::kData:
          LABFLOW_RETURN_IF_ERROR(fn(item.id, chained));
          continue;
        case VersionStore::Resolve::kNotFound:
          continue;  // not visible at this snapshot
        case VersionStore::Resolve::kFallThrough:
          break;
      }
      if (item.inline_payload) {
        LABFLOW_RETURN_IF_ERROR(fn(item.id, item.payload));
      } else {
        Result<std::string> data = SnapshotRead(snapshot_ts, item.id);
        if (data.status().IsNotFound()) continue;  // vanished mid-scan
        LABFLOW_RETURN_IF_ERROR(data.status());
        LABFLOW_RETURN_IF_ERROR(fn(item.id, data.value()));
      }
    }
  }
  return versions_.SweepVisible(
      snapshot_ts, emitted, [&fn](uint64_t key, std::string_view data) {
        return fn(ObjectId(key), data);
      });
}

// ---- Update / Free --------------------------------------------------------

Status PagedManagerBase::UpdateSlot(Txn* txn, ObjectId id,
                                    std::string_view record) {
  uint64_t page_no = id.page();
  LABFLOW_RETURN_IF_ERROR(LockPage(txn, page_no, /*exclusive=*/true));
  LABFLOW_ASSIGN_OR_RETURN(BufferPool::PinGuard guard, pool_->Fetch(page_no));
  std::string old_bytes;
  uint64_t lsn = 0;
  uint16_t seg = 0;
  size_t free = 0;
  {
    WriterMutexLock l(guard->latch());
    Page page(guard->data());
    LABFLOW_ASSIGN_OR_RETURN(std::string_view old_view, page.Read(id.slot()));
    old_bytes.assign(old_view);
    LABFLOW_RETURN_IF_ERROR(page.Update(id.slot(), record));
    lsn = NextLsn();
    page.set_lsn(lsn);
    guard->MarkDirty();
    seg = page.segment();
    free = page.FreeForInsert();
  }
  RetainPage(txn, page_no);
  OnUpdate(txn, lsn, page_no, id.slot(), old_bytes, record);
  {
    MutexLock g(alloc_mu_);
    NoteFreeSpaceLocked(page_no, seg, free);
  }
  return Status::OK();
}

Status PagedManagerBase::DeleteSlot(Txn* txn, ObjectId id) {
  uint64_t page_no = id.page();
  LABFLOW_RETURN_IF_ERROR(LockPage(txn, page_no, /*exclusive=*/true));
  LABFLOW_ASSIGN_OR_RETURN(BufferPool::PinGuard guard, pool_->Fetch(page_no));
  std::string old_bytes;
  uint64_t lsn = 0;
  uint16_t seg = 0;
  size_t free = 0;
  {
    WriterMutexLock l(guard->latch());
    Page page(guard->data());
    LABFLOW_ASSIGN_OR_RETURN(std::string_view old_view, page.Read(id.slot()));
    old_bytes.assign(old_view);
    LABFLOW_RETURN_IF_ERROR(page.Delete(id.slot()));
    lsn = NextLsn();
    page.set_lsn(lsn);
    guard->MarkDirty();
    seg = page.segment();
    free = page.FreeForInsert();
  }
  RetainPage(txn, page_no);
  OnDelete(txn, lsn, page_no, id.slot(), old_bytes);
  {
    MutexLock g(alloc_mu_);
    NoteFreeSpaceLocked(page_no, seg, free);
  }
  return Status::OK();
}

Status PagedManagerBase::DoUpdate(Txn* txn, ObjectId id,
                                  std::string_view data) {
  if (!open_) return Status::InvalidArgument("manager not open");
  LABFLOW_RETURN_IF_ERROR(CheckWritable());
  // Every page touched here is about to be rewritten, so lock for-update
  // (exclusive) from the first read: asking for S and upgrading later is
  // the classic two-updaters deadlock, and blocked S requests from writers
  // would masquerade as reader lock-waits in the stats.
  ObjectId first_hop = ObjectId::Invalid();
  LABFLOW_ASSIGN_OR_RETURN(
      ObjectId terminal,
      ResolveForward(txn, id, &first_hop, /*for_update=*/true));
  LABFLOW_ASSIGN_OR_RETURN(std::string old_rec,
                           ReadRaw(txn, terminal, /*for_update=*/true));
  if (old_rec.empty()) return Status::Corruption("empty record");
  uint8_t old_tag = static_cast<uint8_t>(old_rec[0]);
  if (old_tag == kRecTagChunk || old_tag == kRecTagForward) {
    return Status::InvalidArgument("cannot update internal record");
  }
  std::vector<ObjectId> old_chunks;
  if (old_tag == kRecTagRoot || old_tag == kRecTagMovedRoot) {
    LABFLOW_ASSIGN_OR_RETURN(old_chunks, DecodeRoot(old_rec));
  }

  if (txn != nullptr && SupportsSnapshots()) {
    // Capture before any byte changes, under the X locks taken above
    // (chunk pages are X-locked too — they get deleted below).
    if (versions_.HasPending(txn->id(), id.raw)) {
      versions_.RecordWrite(txn->id(), id.raw, data, nullptr);
    } else {
      LABFLOW_ASSIGN_OR_RETURN(
          std::string pre,
          PayloadOfRecord(txn, old_rec, /*for_update=*/true));
      versions_.RecordWrite(txn->id(), id.raw, data, &pre);
    }
  }

  // Derive a placement hint that keeps the object in its segment. The
  // cluster hint is deliberately NOT propagated: a record that outgrew its
  // page is usually a growing anchor object (e.g. a material) — clustering
  // its moved body next to itself would bloat the per-anchor pages with
  // churn, and the freed extents there are rarely revisited.
  AllocHint derived;
  {
    LABFLOW_RETURN_IF_ERROR(
        LockPage(txn, terminal.page(), /*exclusive=*/true));
    LABFLOW_ASSIGN_OR_RETURN(BufferPool::PinGuard guard,
                             pool_->Fetch(terminal.page()));
    ReaderMutexLock l(guard->latch());
    derived.segment = Page(guard->data()).segment();
  }

  bool terminal_is_origin = (terminal == id);
  uint8_t data_tag = terminal_is_origin ? kRecTagData : kRecTagMovedData;

  std::string new_rec;
  std::vector<ObjectId> new_chunks;
  if (data.size() <= kInlineMax) {
    new_rec = PadRecord(EncodeData(data_tag, data));
  } else {
    for (size_t pos = 0; pos < data.size(); pos += kChunkPayload) {
      size_t n = std::min(kChunkPayload, data.size() - pos);
      LABFLOW_ASSIGN_OR_RETURN(
          ObjectId chunk,
          InsertRecord(txn,
                       PadRecord(EncodeData(kRecTagChunk, data.substr(pos, n))),
                       derived));
      new_chunks.push_back(chunk);
    }
    new_rec = EncodeRoot(new_chunks);
    if (!terminal_is_origin) new_rec[0] = static_cast<char>(kRecTagMovedRoot);
    if (new_rec.size() > kInlineMax) {
      return Status::NotSupported("object too large");
    }
    new_rec = PadRecord(std::move(new_rec));
  }

  Status st = UpdateSlot(txn, terminal, new_rec);
  if (st.IsResourceExhausted()) {
    // Does not fit where it lives: move the payload and forward to it.
    std::string moved = new_rec;
    moved[0] = static_cast<char>(
        (moved[0] == kRecTagRoot || moved[0] == kRecTagMovedRoot) ? kRecTagMovedRoot
                                                            : kRecTagMovedData);
    LABFLOW_ASSIGN_OR_RETURN(ObjectId target, InsertRecord(txn, moved, derived));
    if (first_hop.IsValid()) {
      // Collapse the chain: repoint the origin, drop the old terminal.
      LABFLOW_RETURN_IF_ERROR(UpdateSlot(txn, first_hop, EncodeForward(target)));
      LABFLOW_RETURN_IF_ERROR(DeleteSlot(txn, terminal));
    } else {
      LABFLOW_RETURN_IF_ERROR(UpdateSlot(txn, terminal, EncodeForward(target)));
    }
  } else if (!st.ok()) {
    return st;
  }

  for (ObjectId chunk : old_chunks) {
    LABFLOW_RETURN_IF_ERROR(DeleteSlot(txn, chunk));
  }
  return Status::OK();
}

Status PagedManagerBase::DoFree(Txn* txn, ObjectId id) {
  if (!open_) return Status::InvalidArgument("manager not open");
  LABFLOW_RETURN_IF_ERROR(CheckWritable());
  if (txn != nullptr && SupportsSnapshots()) {
    if (versions_.HasPending(txn->id(), id.raw)) {
      versions_.RecordDelete(txn->id(), id.raw, nullptr);
    } else {
      // Read for-update: the loop below X-locks this whole chain anyway,
      // and an S capture first would be a lock upgrade.
      Result<std::string> pre = [&]() -> Result<std::string> {
        LABFLOW_ASSIGN_OR_RETURN(
            ObjectId terminal,
            ResolveForward(txn, id, nullptr, /*for_update=*/true));
        LABFLOW_ASSIGN_OR_RETURN(std::string rec,
                                 ReadRaw(txn, terminal, /*for_update=*/true));
        return PayloadOfRecord(txn, rec, /*for_update=*/true);
      }();
      // On error, skip the capture and let the loop below surface it.
      if (pre.ok()) {
        const std::string& image = pre.value();
        versions_.RecordDelete(txn->id(), id.raw, &image);
      }
    }
  }
  ObjectId cur = id;
  for (int hops = 0; hops < 32; ++hops) {
    LABFLOW_ASSIGN_OR_RETURN(std::string rec,
                             ReadRaw(txn, cur, /*for_update=*/true));
    if (rec.empty()) return Status::Corruption("empty record");
    uint8_t tag = static_cast<uint8_t>(rec[0]);
    if (tag == kRecTagForward) {
      LABFLOW_ASSIGN_OR_RETURN(ObjectId next, DecodeForward(rec));
      LABFLOW_RETURN_IF_ERROR(DeleteSlot(txn, cur));
      cur = next;
      continue;
    }
    if (tag == kRecTagRoot || tag == kRecTagMovedRoot) {
      LABFLOW_ASSIGN_OR_RETURN(std::vector<ObjectId> chunks, DecodeRoot(rec));
      for (ObjectId chunk : chunks) {
        LABFLOW_RETURN_IF_ERROR(DeleteSlot(txn, chunk));
      }
    } else if (tag == kRecTagChunk) {
      return Status::InvalidArgument("cannot free internal chunk");
    }
    LABFLOW_RETURN_IF_ERROR(DeleteSlot(txn, cur));
    live_objects_.fetch_sub(1);
    return Status::OK();
  }
  return Status::Corruption("forwarding chain too long");
}

// ---- Scan -----------------------------------------------------------------

Status PagedManagerBase::DoScanAll(
    Txn* txn, const std::function<Status(ObjectId, std::string_view)>& fn) {
  if (!open_) return Status::InvalidArgument("manager not open");
  if (txn != nullptr && txn->is_snapshot()) {
    return SnapshotScanAll(txn->snapshot_ts(), fn);
  }
  for (uint64_t page_no = 1; page_no < file_.page_count(); ++page_no) {
    struct Item {
      ObjectId id;
      bool inline_payload;
      std::string payload;  // set when inline
    };
    std::vector<Item> items;
    {
      LABFLOW_RETURN_IF_ERROR(LockPage(txn, page_no, /*exclusive=*/false));
      LABFLOW_ASSIGN_OR_RETURN(BufferPool::PinGuard guard,
                               pool_->Fetch(page_no));
      ReaderMutexLock l(guard->latch());
      Page page(guard->data());
      for (uint16_t s = 0; s < page.slot_count(); ++s) {
        if (!page.IsLive(s)) continue;
        auto rec = page.Read(s);
        if (!rec.ok() || rec.value().empty()) continue;
        uint8_t tag = static_cast<uint8_t>(rec.value()[0]);
        ObjectId id = ObjectId::Make(page_no, s);
        if (tag == kRecTagData) {
          LABFLOW_ASSIGN_OR_RETURN(std::string_view payload,
                                   DecodePayload(rec.value()));
          items.push_back(Item{id, true, std::string(payload)});
        } else if (tag == kRecTagRoot || tag == kRecTagForward) {
          items.push_back(Item{id, false, std::string()});
        }
      }
    }
    for (const Item& item : items) {
      if (item.inline_payload) {
        LABFLOW_RETURN_IF_ERROR(fn(item.id, item.payload));
      } else {
        LABFLOW_ASSIGN_OR_RETURN(std::string data, DoRead(txn, item.id));
        LABFLOW_RETURN_IF_ERROR(fn(item.id, data));
      }
    }
  }
  return Status::OK();
}

// ---- Redo / undo helpers --------------------------------------------------

Status PagedManagerBase::RedoPageInit(uint64_t lsn, uint64_t page_no,
                                      uint16_t segment) {
  while (page_no >= file_.page_count()) {
    LABFLOW_RETURN_IF_ERROR(file_.AppendPage().status());
  }
  LABFLOW_ASSIGN_OR_RETURN(BufferPool::PinGuard guard, pool_->Fetch(page_no));
  WriterMutexLock l(guard->latch());
  Page page(guard->data());
  if (page.lsn() >= lsn) return Status::OK();
  page.Initialize(segment);
  page.set_lsn(lsn);
  guard->MarkDirty();
  return Status::OK();
}

Status PagedManagerBase::RedoInsert(uint64_t lsn, uint64_t page_no,
                                    uint16_t slot, std::string_view bytes) {
  // The page's init record may be missing from the log (it can belong to a
  // transaction that later aborted while a committed one used the page), so
  // extend and initialize on demand.
  while (page_no >= file_.page_count()) {
    LABFLOW_RETURN_IF_ERROR(file_.AppendPage().status());
  }
  LABFLOW_ASSIGN_OR_RETURN(BufferPool::PinGuard guard, pool_->Fetch(page_no));
  WriterMutexLock l(guard->latch());
  Page page(guard->data());
  if (page.lsn() >= lsn) return Status::OK();
  if (!page.IsInitialized()) page.Initialize(0);
  LABFLOW_RETURN_IF_ERROR(page.InsertAt(slot, bytes));
  page.set_lsn(lsn);
  guard->MarkDirty();
  return Status::OK();
}

Status PagedManagerBase::RedoUpdate(uint64_t lsn, uint64_t page_no,
                                    uint16_t slot, std::string_view bytes) {
  if (page_no >= file_.page_count()) {
    return Status::Corruption("redo update: missing page");
  }
  LABFLOW_ASSIGN_OR_RETURN(BufferPool::PinGuard guard, pool_->Fetch(page_no));
  WriterMutexLock l(guard->latch());
  Page page(guard->data());
  if (page.lsn() >= lsn) return Status::OK();
  LABFLOW_RETURN_IF_ERROR(page.Update(slot, bytes));
  page.set_lsn(lsn);
  guard->MarkDirty();
  return Status::OK();
}

Status PagedManagerBase::RedoDelete(uint64_t lsn, uint64_t page_no,
                                    uint16_t slot) {
  if (page_no >= file_.page_count()) {
    return Status::Corruption("redo delete: missing page");
  }
  LABFLOW_ASSIGN_OR_RETURN(BufferPool::PinGuard guard, pool_->Fetch(page_no));
  WriterMutexLock l(guard->latch());
  Page page(guard->data());
  if (page.lsn() >= lsn) return Status::OK();
  LABFLOW_RETURN_IF_ERROR(page.Delete(slot));
  page.set_lsn(lsn);
  guard->MarkDirty();
  return Status::OK();
}

Status PagedManagerBase::UndoInsert(uint64_t page_no, uint16_t slot) {
  LABFLOW_ASSIGN_OR_RETURN(BufferPool::PinGuard guard, pool_->Fetch(page_no));
  WriterMutexLock l(guard->latch());
  Page page(guard->data());
  LABFLOW_RETURN_IF_ERROR(page.Delete(slot));
  page.set_lsn(NextLsn());
  guard->MarkDirty();
  return Status::OK();
}

Status PagedManagerBase::UndoUpdate(uint64_t page_no, uint16_t slot,
                                    std::string_view old_bytes) {
  LABFLOW_ASSIGN_OR_RETURN(BufferPool::PinGuard guard, pool_->Fetch(page_no));
  WriterMutexLock l(guard->latch());
  Page page(guard->data());
  LABFLOW_RETURN_IF_ERROR(page.Update(slot, old_bytes));
  page.set_lsn(NextLsn());
  guard->MarkDirty();
  return Status::OK();
}

Status PagedManagerBase::UndoDelete(uint64_t page_no, uint16_t slot,
                                    std::string_view old_bytes) {
  LABFLOW_ASSIGN_OR_RETURN(BufferPool::PinGuard guard, pool_->Fetch(page_no));
  WriterMutexLock l(guard->latch());
  Page page(guard->data());
  LABFLOW_RETURN_IF_ERROR(page.InsertAt(slot, old_bytes));
  page.set_lsn(NextLsn());
  guard->MarkDirty();
  return Status::OK();
}

}  // namespace labflow::storage
