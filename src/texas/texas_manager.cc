#include "texas/texas_manager.h"
#include "common/status_macros.h"

namespace labflow::texas {

Result<std::unique_ptr<TexasManager>> TexasManager::Open(
    const TexasOptions& options) {
  std::unique_ptr<TexasManager> mgr(new TexasManager());
  mgr->client_clustering_ = options.client_clustering;
  LABFLOW_RETURN_IF_ERROR(mgr->PagedManagerBase::Open(options.base));
  return mgr;
}

}  // namespace labflow::texas
