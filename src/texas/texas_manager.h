#ifndef LABFLOW_TEXAS_TEXAS_MANAGER_H_
#define LABFLOW_TEXAS_TEXAS_MANAGER_H_

#include <atomic>
#include <memory>
#include <string>

#include "storage/paged_manager.h"

namespace labflow::texas {

/// Configuration for the Texas-like store.
struct TexasOptions {
  storage::PagedManagerOptions base;
  /// Texas+TC: honour AllocHint::cluster_near (client-implemented object
  /// clustering, the paper's third server version). Plain Texas ignores all
  /// placement hints and fills pages in allocation order.
  bool client_clustering = false;
};

/// A storage manager modeled on Texas v0.3 (Singhal, Kakkad & Wilson [51]):
/// pointer swizzling at page-fault time, *no* concurrency control, direct
/// access to the database file, and no application control over object
/// placement — objects land on pages strictly in allocation order.
///
/// The swizzling mechanics (mmap + SIGSEGV in the original) are simulated by
/// the shared buffer pool: the first touch of a non-resident page is a
/// "fault" (StorageStats::disk_reads, the benchmark's majflt measure), after
/// which access is direct until eviction.
///
/// Transaction semantics, as in Texas v0.3: "Texas does not support
/// concurrent access" (paper Section 10), so Begin() admits exactly one
/// transaction at a time — a second concurrent Begin is ResourceExhausted.
/// Commit is a counted no-op (durability comes from Checkpoint, which
/// writes the whole dirty set); Abort is NotSupported, though the handle is
/// still retired.
class TexasManager : public storage::PagedManagerBase {
 public:
  /// Opens (or creates) a Texas database.
  static Result<std::unique_ptr<TexasManager>> Open(
      const TexasOptions& options);

  std::string_view name() const override {
    return client_clustering_ ? "Texas+TC" : "Texas";
  }

 protected:
  bool SupportsSegments() const override { return false; }
  bool UseClusterHint() const override { return client_clustering_; }

  size_t MaxConcurrentTxns() const override { return 1; }
  Status CommitTxn(storage::Txn* txn) override {
    (void)txn;
    commits_.fetch_add(1);
    return Status::OK();
  }

  /// Texas's segregated-fit allocator (Wilson/Kakkad) places objects in
  /// power-of-two size classes; the resulting internal fragmentation is why
  /// the paper's Texas database files were ~50% larger than ObjectStore's
  /// (24.6 MB vs 16.6 MB at 0.5X). Modeled here as size-class rounding.
  size_t StoreSize(size_t encoded_size) const override {
    size_t cls = 32;
    while (cls < encoded_size) cls *= 2;
    return cls;
  }
  void AugmentStats(storage::StorageStats* stats) const override {
    stats->txn_commits = commits_.load();
  }

 private:
  TexasManager() = default;

  bool client_clustering_ = false;
  std::atomic<uint64_t> commits_{0};
};

}  // namespace labflow::texas

#endif  // LABFLOW_TEXAS_TEXAS_MANAGER_H_
