#include "labflow/apply.h"
#include "common/status_macros.h"

namespace labflow::bench {

using labbase::AttrId;
using labbase::ClassId;
using labbase::LabBase;
using labbase::StateId;
using labbase::StepEffect;
using labbase::StepTag;

Status ApplyUpdate(labbase::SessionIface* db, const Event& ev) {
  const labbase::Schema& schema = db->schema();
  switch (ev.type) {
    case Event::Type::kCreateMaterial: {
      LABFLOW_ASSIGN_OR_RETURN(ClassId cls,
                               schema.MaterialClassByName(ev.material_class));
      LABFLOW_ASSIGN_OR_RETURN(StateId state, schema.StateByName(ev.state));
      return db->CreateMaterial(cls, ev.name, state, ev.time).status();
    }
    case Event::Type::kRecordStep: {
      LABFLOW_ASSIGN_OR_RETURN(ClassId cls,
                               schema.StepClassByName(ev.step_class));
      std::vector<StepEffect> effects;
      effects.reserve(ev.effects.size());
      for (const EffectSpec& spec : ev.effects) {
        StepEffect effect;
        LABFLOW_ASSIGN_OR_RETURN(effect.material,
                                 db->FindMaterialByName(spec.material));
        for (const TagSpec& tag : spec.tags) {
          LABFLOW_ASSIGN_OR_RETURN(AttrId attr,
                                   schema.AttributeByName(tag.attr));
          effect.tags.push_back(StepTag{attr, tag.value});
        }
        if (!spec.new_state.empty()) {
          LABFLOW_ASSIGN_OR_RETURN(effect.new_state,
                                   schema.StateByName(spec.new_state));
        }
        effects.push_back(std::move(effect));
      }
      return db->RecordStep(cls, ev.time, effects).status();
    }
    case Event::Type::kCreateSet:
      return db->CreateSet(ev.name).status();
    case Event::Type::kAddSetMembers: {
      LABFLOW_ASSIGN_OR_RETURN(Oid set, db->FindSetByName(ev.name));
      for (const std::string& member : ev.members) {
        LABFLOW_ASSIGN_OR_RETURN(Oid m, db->FindMaterialByName(member));
        LABFLOW_RETURN_IF_ERROR(db->AddToSet(set, m));
      }
      return Status::OK();
    }
    case Event::Type::kEvolveStepClass:
      return db->DefineStepClass(ev.step_class, ev.attrs).status();
    default:
      return Status::InvalidArgument(
          "ApplyUpdate: not an update event (queries belong to the driver)");
  }
}

}  // namespace labflow::bench
