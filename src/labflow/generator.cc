#include "labflow/generator.h"

#include <algorithm>
#include <cstdio>

#include "workflow/values.h"

namespace labflow::bench {

namespace {

std::string PadNum(int n, int width) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%0*d", width, n);
  return buf;
}

constexpr int64_t kMeanActionGapUs = 300'000'000;  // ~5 lab minutes

}  // namespace

WorkloadGenerator::WorkloadGenerator(const WorkloadParams& params)
    : params_(params),
      graph_(workflow::GenomeMappingWorkflow()),
      route_(Rng(params.seed).Fork(1)),
      values_(Rng(params.seed).Fork(2)),
      query_rng_(Rng(params.seed).Fork(3)),
      time_rng_(Rng(params.seed).Fork(4)),
      clock_(Timestamp(1'000'000)) {
  arrivals_left_ = params_.clones();
  for (const workflow::Transition& t : graph_.transitions) {
    std::vector<std::string> attrs;
    for (const workflow::ResultSpec& r : t.results) attrs.push_back(r.attr);
    current_attrs_[t.step_name] = std::move(attrs);
  }
  // Spread the evolution events over the arrival sequence.
  for (int i = 1; i <= params_.evolution_events; ++i) {
    evolution_thresholds_.push_back(
        std::max(1, arrivals_left_ * i / (params_.evolution_events + 1)));
  }
  recent_.reserve(256);
  next_gel_target_ = static_cast<int>(route_.NextInt(16, 48));
}

bool WorkloadGenerator::Next(Event* event) {
  while (pending_.empty()) {
    if (!Advance()) return false;
  }
  *event = std::move(pending_.front());
  pending_.pop_front();
  ++totals_.events;
  if (event->IsUpdate()) {
    ++totals_.updates;
    if (event->type == Event::Type::kRecordStep) ++totals_.steps;
    if (event->type == Event::Type::kCreateMaterial) ++totals_.materials;
    if (event->type == Event::Type::kCreateSet) ++totals_.sets;
    if (event->type == Event::Type::kEvolveStepClass) ++totals_.evolutions;
  } else {
    ++totals_.queries;
  }
  return true;
}

bool WorkloadGenerator::UpstreamDrained() const {
  return arrivals_left_ == 0 && q_cl_received_.empty() &&
         q_cl_dna_ready_.empty() && q_tc_new_.empty() && q_tc_assoc_.empty() &&
         q_tc_picked_.empty();
}

bool WorkloadGenerator::Advance() {
  struct Action {
    uint64_t weight;
    void (WorkloadGenerator::*fn)();
  };
  std::vector<Action> actions;
  auto add = [&](size_t weight, void (WorkloadGenerator::*fn)()) {
    if (weight > 0) actions.push_back(Action{weight, fn});
  };

  bool can_arrive =
      arrivals_left_ > 0 && inflight_clones_ < params_.max_inflight_clones;
  add(can_arrive ? 6 : 0, &WorkloadGenerator::Arrive);
  add(q_cl_received_.size(), &WorkloadGenerator::PrepareDna);
  add(q_cl_dna_ready_.size(), &WorkloadGenerator::Transposon);
  add(q_tc_new_.size(), &WorkloadGenerator::Associate);
  add(q_tc_assoc_.size(), &WorkloadGenerator::Pick);
  add(q_tc_picked_.size(), &WorkloadGenerator::SeqReaction);
  bool gel_ready =
      q_tc_wait_gel_.size() >= static_cast<size_t>(next_gel_target_) ||
      (UpstreamDrained() && !q_tc_wait_gel_.empty());
  add(gel_ready ? q_tc_wait_gel_.size() : 0, &WorkloadGenerator::LoadGel);
  add(q_gel_loaded_.size() * 8, &WorkloadGenerator::RunGel);
  add(q_gel_run_.size() * 8, &WorkloadGenerator::ReadGel);
  add(q_tc_wait_seq_.size(), &WorkloadGenerator::DetermineSequence);
  add(q_tc_wait_inc_.size(), &WorkloadGenerator::Blast);
  add(q_cl_assemble_.size() * 8, &WorkloadGenerator::Assemble);
  add(q_cl_assembled_.size() * 4, &WorkloadGenerator::Finish);

  if (actions.empty()) return false;
  uint64_t total = 0;
  for (const Action& a : actions) total += a.weight;
  uint64_t pick = route_.NextBelow(total);
  for (const Action& a : actions) {
    if (pick < a.weight) {
      (this->*a.fn)();
      MaybeEmitQueries();
      return true;
    }
    pick -= a.weight;
  }
  return false;
}

Timestamp WorkloadGenerator::NextTime(bool maybe_late) {
  clock_.Advance(static_cast<int64_t>(
      time_rng_.NextExp(static_cast<double>(kMeanActionGapUs))));
  Timestamp t = clock_.now();
  if (maybe_late && time_rng_.NextBool(params_.late_entry_fraction)) {
    // Enter with an earlier valid time: results recorded from paper forms
    // hours after the fact (out-of-order entry, paper Section 7).
    int64_t back =
        static_cast<int64_t>(time_rng_.NextExp(4.0 * kMeanActionGapUs));
    int64_t us = t.micros > back ? t.micros - back : 1;
    return Timestamp(us);
  }
  return t;
}

std::vector<TagSpec> WorkloadGenerator::MakeTags(const std::string& step) {
  std::vector<TagSpec> tags;
  const workflow::Transition* t = graph_.FindTransition(step);
  for (const std::string& attr : current_attrs_[step]) {
    const workflow::ResultSpec* spec = nullptr;
    if (t != nullptr) {
      for (const workflow::ResultSpec& r : t->results) {
        if (r.attr == attr) {
          spec = &r;
          break;
        }
      }
    }
    if (spec != nullptr) {
      tags.push_back(TagSpec{attr, workflow::GenerateResult(*spec, &values_)});
    } else {
      // Attribute added by schema evolution: plain measurement value.
      tags.push_back(TagSpec{attr, Value::Int(values_.NextInt(0, 1000))});
    }
  }
  return tags;
}

void WorkloadGenerator::NoteRecent(const std::string& material,
                                   const std::string& attr) {
  if (recent_.size() < 256) {
    recent_.emplace_back(material, attr);
  } else {
    recent_[recent_pos_ % recent_.size()] = {material, attr};
  }
  ++recent_pos_;
  all_tagged_.emplace_back(material, attr);
}

void WorkloadGenerator::EmitSimpleStep(const std::string& step,
                                       const std::string& material,
                                       const std::string& new_state,
                                       bool maybe_late) {
  Event ev;
  ev.type = Event::Type::kRecordStep;
  ev.step_class = step;
  ev.time = NextTime(maybe_late);
  EffectSpec effect;
  effect.material = material;
  effect.tags = MakeTags(step);
  effect.new_state = new_state;
  if (!effect.tags.empty()) {
    NoteRecent(material, effect.tags[0].attr);
  }
  ev.effects.push_back(std::move(effect));
  pending_.push_back(std::move(ev));
}

void WorkloadGenerator::MaybeEvolve() {
  while (evolutions_done_ < static_cast<int>(evolution_thresholds_.size()) &&
         arrivals_done_ >= evolution_thresholds_[evolutions_done_]) {
    static const char* kEvolvable[] = {"determine_sequence", "read_gel",
                                       "blast_search", "pick_tclone"};
    const char* step = kEvolvable[evolutions_done_ % 4];
    std::vector<std::string>& attrs = current_attrs_[step];
    attrs.push_back(std::string(step) + "_evo" +
                    std::to_string(evolutions_done_ + 1));
    Event ev;
    ev.type = Event::Type::kEvolveStepClass;
    ev.step_class = step;
    ev.attrs = attrs;
    pending_.push_back(std::move(ev));
    ++evolutions_done_;
  }
}

void WorkloadGenerator::MaybeEmitQueries() {
  // Expected params_.query_ratio queries per update action.
  double budget = params_.query_ratio;
  while (budget > 0) {
    if (!query_rng_.NextBool(std::min(budget, 1.0))) break;
    budget -= 1.0;
    Event ev;
    uint64_t kind = query_rng_.NextBelow(100);
    // Value/history queries audit a random historical material with
    // probability audit_fraction; otherwise they hit the recent window.
    auto pick_target = [&]() -> const std::pair<std::string, std::string>& {
      if (!all_tagged_.empty() &&
          query_rng_.NextBool(params_.audit_fraction)) {
        return all_tagged_[query_rng_.NextBelow(all_tagged_.size())];
      }
      return recent_[query_rng_.NextBelow(recent_.size())];
    };
    if (kind < 45 && !recent_.empty()) {
      const auto& [material, attr] = pick_target();
      ev.type = Event::Type::kQueryMostRecent;
      ev.name = material;
      ev.attr = attr;
    } else if (kind < 60 && !recent_.empty()) {
      const auto& [material, attr] = pick_target();
      ev.type = Event::Type::kQueryHistory;
      ev.name = material;
      ev.attr = attr;
    } else if (kind < 80) {
      ev.type = Event::Type::kQueryWorkQueue;
      ev.state = graph_.states[query_rng_.NextBelow(graph_.states.size())];
    } else if (kind < 90) {
      ev.type = Event::Type::kQueryCountState;
      ev.state = graph_.states[query_rng_.NextBelow(graph_.states.size())];
    } else if (kind < 95 && gel_counter_ > 0) {
      ev.type = Event::Type::kQuerySetMembers;
      ev.name = "gel-" +
                PadNum(static_cast<int>(
                           query_rng_.NextBelow(
                               static_cast<uint64_t>(gel_counter_)) +
                           1),
                       4) +
                "-lanes";
    } else if (!recent_.empty()) {
      ev.type = Event::Type::kQueryMaterialByName;
      ev.name = recent_[query_rng_.NextBelow(recent_.size())].first;
    } else {
      continue;
    }
    pending_.push_back(std::move(ev));
  }
}

// ---- Actions -----------------------------------------------------------------

void WorkloadGenerator::Arrive() {
  int idx = static_cast<int>(clones_.size());
  CloneSim clone;
  clone.name = "cl-" + PadNum(idx + 1, 6);
  clones_.push_back(clone);
  --arrivals_left_;
  ++arrivals_done_;
  ++inflight_clones_;

  Event create;
  create.type = Event::Type::kCreateMaterial;
  create.material_class = "clone";
  create.name = clone.name;
  create.state = "cl_received";
  create.time = NextTime(false);
  pending_.push_back(std::move(create));

  EmitSimpleStep("receive_clone", clone.name, "cl_received");
  q_cl_received_.push_back(idx);
  MaybeEvolve();
}

void WorkloadGenerator::PrepareDna() {
  int c = q_cl_received_.front();
  q_cl_received_.pop_front();
  CloneSim& clone = clones_[c];
  bool fail = clone.retries < 3 && route_.NextBool(0.05);
  if (fail) {
    ++clone.retries;
    EmitSimpleStep("prepare_dna", clone.name, "cl_received");
    q_cl_received_.push_back(c);
    return;
  }
  clone.state = CloneState::kDnaReady;
  EmitSimpleStep("prepare_dna", clone.name, "cl_dna_ready");
  q_cl_dna_ready_.push_back(c);
}

void WorkloadGenerator::Transposon() {
  int c = q_cl_dna_ready_.front();
  q_cl_dna_ready_.pop_front();
  CloneSim& clone = clones_[c];
  clone.state = CloneState::kTnDone;
  EmitSimpleStep("transposon_insertion", clone.name, "cl_tn_done");

  int64_t n_children =
      params_.tclones_min + values_.NextPoisson(params_.tclones_mean);
  for (int64_t i = 0; i < n_children; ++i) {
    int tc_idx = static_cast<int>(tclones_.size());
    TcSim tc;
    tc.name = clones_[c].name + "-tc" + PadNum(static_cast<int>(i + 1), 3);
    tc.parent = c;
    tclones_.push_back(tc);
    clones_[c].tclones.push_back(tc_idx);

    Event create;
    create.type = Event::Type::kCreateMaterial;
    create.material_class = "tclone";
    create.name = tc.name;
    create.state = "tc_new";
    create.time = clock_.now();
    pending_.push_back(std::move(create));
    q_tc_new_.push_back(tc_idx);
  }
}

void WorkloadGenerator::Associate() {
  int tc = q_tc_new_.front();
  q_tc_new_.pop_front();
  tclones_[tc].state = TcState::kAssociated;
  EmitSimpleStep("associate_tclone", tclones_[tc].name, "tc_associated");
  q_tc_assoc_.push_back(tc);
}

void WorkloadGenerator::Pick() {
  int tc = q_tc_assoc_.front();
  q_tc_assoc_.pop_front();
  tclones_[tc].state = TcState::kPicked;
  EmitSimpleStep("pick_tclone", tclones_[tc].name, "tc_picked");
  q_tc_picked_.push_back(tc);
}

void WorkloadGenerator::SeqReaction() {
  int tc = q_tc_picked_.front();
  q_tc_picked_.pop_front();
  tclones_[tc].state = TcState::kWaitingGel;
  EmitSimpleStep("seq_reaction", tclones_[tc].name, "waiting_for_gel");
  q_tc_wait_gel_.push_back(tc);
}

void WorkloadGenerator::LoadGel() {
  size_t want = std::min(q_tc_wait_gel_.size(),
                         static_cast<size_t>(next_gel_target_));
  next_gel_target_ = static_cast<int>(route_.NextInt(16, 48));

  ++gel_counter_;
  GelSim gel;
  gel.name = "gel-" + PadNum(gel_counter_, 4);

  Event create;
  create.type = Event::Type::kCreateMaterial;
  create.material_class = "gel";
  create.name = gel.name;
  create.state = "gel_loaded";
  create.time = NextTime(false);
  pending_.push_back(std::move(create));

  Event ev;
  ev.type = Event::Type::kRecordStep;
  ev.step_class = "load_gel";
  ev.time = clock_.now();
  std::vector<std::string> members;
  for (size_t lane = 0; lane < want; ++lane) {
    int tc = q_tc_wait_gel_.front();
    q_tc_wait_gel_.pop_front();
    tclones_[tc].state = TcState::kOnGel;
    gel.lanes.push_back(tc);
    EffectSpec effect;
    effect.material = tclones_[tc].name;
    effect.new_state = "on_gel";
    effect.tags = MakeTags("load_gel");
    // The lane tag should reflect the actual lane.
    for (TagSpec& tag : effect.tags) {
      if (tag.attr == "lane") {
        tag.value = Value::Int(static_cast<int64_t>(lane + 1));
      }
    }
    members.push_back(effect.material);
    ev.effects.push_back(std::move(effect));
  }
  pending_.push_back(std::move(ev));

  // Persist the gel's lane assignment as a material set.
  Event set_create;
  set_create.type = Event::Type::kCreateSet;
  set_create.name = gel.name + "-lanes";
  pending_.push_back(std::move(set_create));
  Event set_add;
  set_add.type = Event::Type::kAddSetMembers;
  set_add.name = gel.name + "-lanes";
  set_add.members = std::move(members);
  pending_.push_back(std::move(set_add));

  int gel_idx = static_cast<int>(gels_.size());
  gels_.push_back(std::move(gel));
  q_gel_loaded_.push_back(gel_idx);
}

void WorkloadGenerator::RunGel() {
  int g = q_gel_loaded_.front();
  q_gel_loaded_.pop_front();
  EmitSimpleStep("run_gel", gels_[g].name, "gel_run");
  q_gel_run_.push_back(g);
}

void WorkloadGenerator::ReadGel() {
  int g = q_gel_run_.front();
  q_gel_run_.pop_front();
  GelSim& gel = gels_[g];

  Event ev;
  ev.type = Event::Type::kRecordStep;
  ev.step_class = "read_gel";
  ev.time = NextTime(false);
  for (int tc : gel.lanes) {
    bool fail = route_.NextBool(0.06);
    EffectSpec effect;
    effect.material = tclones_[tc].name;
    effect.tags = MakeTags("read_gel");
    if (fail) {
      if (tclones_[tc].retries >= params_.max_retries) {
        effect.new_state = "tc_failed";
        tclones_[tc].state = TcState::kFailed;
        ChildTerminal(tc, /*blasted=*/false);
      } else {
        ++tclones_[tc].retries;
        effect.new_state = "tc_picked";
        tclones_[tc].state = TcState::kPicked;
        q_tc_picked_.push_back(tc);
      }
    } else {
      effect.new_state = "waiting_for_sequencing";
      tclones_[tc].state = TcState::kWaitingSeq;
      q_tc_wait_seq_.push_back(tc);
    }
    if (!effect.tags.empty()) {
      NoteRecent(effect.material, effect.tags[0].attr);
    }
    ev.effects.push_back(std::move(effect));
  }
  pending_.push_back(std::move(ev));
}

void WorkloadGenerator::DetermineSequence() {
  int tc = q_tc_wait_seq_.front();
  q_tc_wait_seq_.pop_front();
  TcSim& t = tclones_[tc];
  bool fail = route_.NextBool(0.08);
  if (fail) {
    if (t.retries >= params_.max_retries) {
      t.state = TcState::kFailed;
      EmitSimpleStep("determine_sequence", t.name, "tc_failed",
                     /*maybe_late=*/true);
      ChildTerminal(tc, /*blasted=*/false);
    } else {
      ++t.retries;
      t.state = TcState::kPicked;
      EmitSimpleStep("determine_sequence", t.name, "tc_picked",
                     /*maybe_late=*/true);
      q_tc_picked_.push_back(tc);
    }
    return;
  }
  t.state = TcState::kWaitingInc;
  EmitSimpleStep("determine_sequence", t.name, "waiting_for_incorporation",
                 /*maybe_late=*/true);
  q_tc_wait_inc_.push_back(tc);
}

void WorkloadGenerator::Blast() {
  int tc = q_tc_wait_inc_.front();
  q_tc_wait_inc_.pop_front();
  tclones_[tc].state = TcState::kBlasted;
  EmitSimpleStep("blast_search", tclones_[tc].name, "tc_blasted");
  ChildTerminal(tc, /*blasted=*/true);
}

void WorkloadGenerator::ChildTerminal(int tc, bool blasted) {
  CloneSim& clone = clones_[tclones_[tc].parent];
  ++clone.terminal_children;
  if (blasted) ++clone.blasted;
  if (clone.state == CloneState::kTnDone &&
      clone.terminal_children == static_cast<int>(clone.tclones.size())) {
    if (clone.blasted > 0) {
      q_cl_assemble_.push_back(tclones_[tc].parent);
    } else {
      clone.state = CloneState::kDead;
      --inflight_clones_;
    }
  }
}

void WorkloadGenerator::Assemble() {
  int c = q_cl_assemble_.front();
  q_cl_assemble_.pop_front();
  CloneSim& clone = clones_[c];
  clone.state = CloneState::kAssembled;

  Event ev;
  ev.type = Event::Type::kRecordStep;
  ev.step_class = "assemble_sequence";
  ev.time = NextTime(false);
  // The clone itself...
  EffectSpec clone_effect;
  clone_effect.material = clone.name;
  clone_effect.tags = MakeTags("assemble_sequence");
  clone_effect.new_state = "cl_assembled";
  if (!clone_effect.tags.empty()) {
    NoteRecent(clone.name, clone_effect.tags[0].attr);
  }
  ev.effects.push_back(std::move(clone_effect));
  // ...plus every successfully blasted subclone is incorporated.
  for (int tc : clone.tclones) {
    if (tclones_[tc].state != TcState::kBlasted) continue;
    tclones_[tc].state = TcState::kIncorporated;
    EffectSpec effect;
    effect.material = tclones_[tc].name;
    effect.new_state = "tc_incorporated";
    ev.effects.push_back(std::move(effect));
  }
  pending_.push_back(std::move(ev));
  q_cl_assembled_.push_back(c);
}

void WorkloadGenerator::Finish() {
  int c = q_cl_assembled_.front();
  q_cl_assembled_.pop_front();
  clones_[c].state = CloneState::kFinished;
  EmitSimpleStep("finish_clone", clones_[c].name, "cl_finished");
  --inflight_clones_;
}

}  // namespace labflow::bench
