#ifndef LABFLOW_LABFLOW_APPLY_H_
#define LABFLOW_LABFLOW_APPLY_H_

#include "common/status.h"
#include "labbase/labbase.h"
#include "labflow/events.h"

namespace labflow::bench {

/// Applies one *update* event of the LabFlow-1 stream to a workflow session
/// (name lookups resolved through the wrapper). Query events are rejected
/// with InvalidArgument — executing those (and folding their results) is
/// the driver's job. Shared by the driver, the benches and the examples;
/// takes the abstract session so the same stream applies in-process
/// (LabBase::Session) or across the wire (net::RemoteSession).
Status ApplyUpdate(labbase::SessionIface* db, const Event& event);

}  // namespace labflow::bench

#endif  // LABFLOW_LABFLOW_APPLY_H_
