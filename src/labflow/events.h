#ifndef LABFLOW_LABFLOW_EVENTS_H_
#define LABFLOW_LABFLOW_EVENTS_H_

#include <string>
#include <vector>

#include "common/value.h"

namespace labflow::bench {

/// One result tag in an event, by attribute *name* (the stream is
/// independent of any particular database's ids).
struct TagSpec {
  std::string attr;
  Value value;
};

/// A step's effect on one material, by material *name*.
struct EffectSpec {
  std::string material;
  std::vector<TagSpec> tags;
  /// Destination state name; empty = no state change.
  std::string new_state;
};

/// One element of the LabFlow-1 event stream. The stream interleaves
/// workflow-tracking updates (create/step/set/evolution) with the query mix
/// (paper Section 8); the driver executes each event as one transaction.
struct Event {
  enum class Type {
    // updates
    kCreateMaterial,   // material_class, name, state, time
    kRecordStep,       // step_class, time, effects
    kCreateSet,        // name
    kAddSetMembers,    // name, members
    kEvolveStepClass,  // step_class, attrs (the new full attribute set)
    // queries
    kQueryMostRecent,     // name (material), attr
    kQueryHistory,        // name (material), attr
    kQueryWorkQueue,      // state (inspects the first items in the queue)
    kQueryCountState,     // state
    kQuerySetMembers,     // name (set)
    kQueryMaterialByName, // name (material)
  };

  Type type = Type::kRecordStep;
  std::string name;
  std::string material_class;
  std::string state;
  std::string step_class;
  std::string attr;
  Timestamp time;
  std::vector<EffectSpec> effects;
  std::vector<std::string> members;
  std::vector<std::string> attrs;

  bool IsUpdate() const {
    return type == Type::kCreateMaterial || type == Type::kRecordStep ||
           type == Type::kCreateSet || type == Type::kAddSetMembers ||
           type == Type::kEvolveStepClass;
  }
};

}  // namespace labflow::bench

#endif  // LABFLOW_LABFLOW_EVENTS_H_
