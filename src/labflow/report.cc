#include "labflow/report.h"

#include <iomanip>
#include <map>
#include <sstream>

namespace labflow::bench {

std::string WithCommas(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return std::string(out.rbegin(), out.rend());
}

namespace {

std::string FormatSeconds(double s) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << s;
  return os.str();
}

std::string IntvlLabel(double intvl) {
  std::ostringstream os;
  if (intvl == static_cast<int64_t>(intvl)) {
    os << static_cast<int64_t>(intvl) << "X";
  } else {
    os << intvl << "X";
  }
  return os.str();
}

}  // namespace

void PrintMainTable(std::ostream& os, const std::vector<RunReport>& reports) {
  // Group by Intvl, preserving first-seen order.
  std::vector<double> intvls;
  std::map<double, std::vector<const RunReport*>> by_intvl;
  for (const RunReport& r : reports) {
    if (!by_intvl.count(r.intvl)) intvls.push_back(r.intvl);
    by_intvl[r.intvl].push_back(&r);
  }

  os << "                                    Database Server Version\n";
  for (double intvl : intvls) {
    const std::vector<const RunReport*>& group = by_intvl[intvl];
    os << "Intvl  Resource      ";
    for (const RunReport* r : group) {
      os << std::setw(12) << r->version;
    }
    os << "\n";
    auto row = [&](const char* label, auto getter) {
      os << std::setw(5) << IntvlLabel(intvl) << "  " << std::left
         << std::setw(14) << label << std::right;
      for (const RunReport* r : group) {
        os << std::setw(12) << getter(*r);
      }
      os << "\n";
    };
    row("elapsed sec", [](const RunReport& r) {
      return FormatSeconds(r.elapsed_sec);
    });
    row("user cpu sec", [](const RunReport& r) {
      return FormatSeconds(r.user_cpu_sec);
    });
    row("sys cpu sec", [](const RunReport& r) {
      return FormatSeconds(r.sys_cpu_sec);
    });
    row("majflt", [](const RunReport& r) { return WithCommas(r.majflt); });
    row("size (bytes)", [](const RunReport& r) {
      return r.db_size_bytes == 0 ? std::string("-")
                                  : WithCommas(r.db_size_bytes);
    });
    os << "\n";
  }
}

void PrintRunDetails(std::ostream& os, const RunReport& r) {
  os << r.version << " @ " << IntvlLabel(r.intvl) << ": " << r.events
     << " events (" << r.updates << " updates / " << r.queries
     << " queries), " << r.steps << " steps, " << r.materials
     << " materials\n"
     << "  update phase " << FormatSeconds(r.update_elapsed_sec)
     << "s, query phase " << FormatSeconds(r.query_elapsed_sec) << "s\n"
     << "  storage: reads=" << r.storage.disk_reads
     << " writes=" << r.storage.disk_writes << " hits=" << r.storage.cache_hits
     << " evictions=" << r.storage.evictions
     << " wal=" << WithCommas(r.wal_bytes)
     << " commits=" << r.storage.txn_commits << "\n"
     << "  wrapper: steps=" << r.wrapper.steps_recorded
     << " mr-queries=" << r.wrapper.most_recent_queries
     << " hist-queries=" << r.wrapper.history_queries
     << " state-queries=" << r.wrapper.state_queries << "\n"
     << "  update latency us: mean=" << FormatSeconds(r.update_latency.mean_us())
     << " p50=" << FormatSeconds(r.update_latency.PercentileUs(50))
     << " p99=" << FormatSeconds(r.update_latency.PercentileUs(99))
     << " p999=" << FormatSeconds(r.update_latency.PercentileUs(99.9))
     << " max=" << FormatSeconds(r.update_latency.max_us()) << "\n"
     << "  query latency us:  mean=" << FormatSeconds(r.query_latency.mean_us())
     << " p50=" << FormatSeconds(r.query_latency.PercentileUs(50))
     << " p99=" << FormatSeconds(r.query_latency.PercentileUs(99))
     << " p999=" << FormatSeconds(r.query_latency.PercentileUs(99.9))
     << " max=" << FormatSeconds(r.query_latency.max_us()) << "\n"
     << "  checksum: " << std::hex << r.result_checksum << std::dec << "\n";
}

}  // namespace labflow::bench
