#ifndef LABFLOW_LABFLOW_REPORT_H_
#define LABFLOW_LABFLOW_REPORT_H_

#include <ostream>
#include <vector>

#include "labflow/driver.h"

namespace labflow::bench {

/// Prints the paper's Section 10 results table: one row block per Intvl,
/// columns = server versions, rows = elapsed sec / user cpu sec /
/// sys cpu sec / majflt / size (bytes).
void PrintMainTable(std::ostream& os, const std::vector<RunReport>& reports);

/// Prints one run's extended counters (stream composition, phase split,
/// wrapper stats, checksum).
void PrintRunDetails(std::ostream& os, const RunReport& report);

/// Renders n with thousands separators, as the paper prints its numbers.
std::string WithCommas(uint64_t n);

}  // namespace labflow::bench

#endif  // LABFLOW_LABFLOW_REPORT_H_
