#include "labflow/driver.h"

#include "common/clock.h"
#include "labflow/apply.h"
#include "common/status_macros.h"

namespace labflow::bench {

using labbase::AttrId;
using labbase::ClassId;
using labbase::LabBase;
using labbase::StateId;
using labbase::StepEffect;
using labbase::StepTag;

namespace {

void Fold(uint64_t* h, uint64_t x) {
  *h = (*h ^ x) * 1099511628211ULL;
}

void FoldString(uint64_t* h, std::string_view s) {
  uint64_t x = 14695981039346656037ULL;
  for (char c : s) {
    x = (x ^ static_cast<uint8_t>(c)) * 1099511628211ULL;
  }
  Fold(h, x);
}

/// Executes one event against a workflow session (in-process or remote),
/// folding query results into the checksum. Updates delegate to ApplyUpdate
/// (shared with the other harnesses); queries are executed and folded here.
Status Execute(labbase::SessionIface* db, const Event& ev,
               uint64_t* checksum) {
  if (ev.IsUpdate()) return ApplyUpdate(db, ev);
  const labbase::Schema& schema = db->schema();
  switch (ev.type) {
    case Event::Type::kQueryMostRecent: {
      LABFLOW_ASSIGN_OR_RETURN(Oid m, db->FindMaterialByName(ev.name));
      auto v = db->MostRecent(m, ev.attr);
      if (v.ok()) {
        FoldString(checksum, v->ToString());
      } else if (v.status().IsNotFound()) {
        Fold(checksum, 0);
      } else {
        return v.status();
      }
      return Status::OK();
    }
    case Event::Type::kQueryHistory: {
      LABFLOW_ASSIGN_OR_RETURN(Oid m, db->FindMaterialByName(ev.name));
      LABFLOW_ASSIGN_OR_RETURN(AttrId attr, schema.AttributeByName(ev.attr));
      LABFLOW_ASSIGN_OR_RETURN(std::vector<labbase::HistoryEntry> hist,
                               db->History(m, attr));
      Fold(checksum, hist.size());
      for (const labbase::HistoryEntry& e : hist) {
        Fold(checksum, static_cast<uint64_t>(e.time.micros));
      }
      return Status::OK();
    }
    case Event::Type::kQueryWorkQueue: {
      auto state = schema.StateByName(ev.state);
      if (!state.ok()) {
        Fold(checksum, 0);
        return Status::OK();
      }
      LABFLOW_ASSIGN_OR_RETURN(std::vector<Oid> queue,
                               db->MaterialsInState(state.value()));
      Fold(checksum, queue.size());
      // A work queue is consulted to *do* the work: inspect the head.
      size_t inspect = queue.size() < 20 ? queue.size() : 20;
      for (size_t i = 0; i < inspect; ++i) {
        LABFLOW_ASSIGN_OR_RETURN(labbase::MaterialInfo info,
                                 db->GetMaterial(queue[i]));
        FoldString(checksum, info.name);
      }
      return Status::OK();
    }
    case Event::Type::kQueryCountState: {
      auto state = schema.StateByName(ev.state);
      if (!state.ok()) {
        Fold(checksum, 0);
        return Status::OK();
      }
      LABFLOW_ASSIGN_OR_RETURN(int64_t n, db->CountInState(state.value()));
      Fold(checksum, static_cast<uint64_t>(n));
      return Status::OK();
    }
    case Event::Type::kQuerySetMembers: {
      auto set = db->FindSetByName(ev.name);
      if (!set.ok()) {
        Fold(checksum, 0);
        return Status::OK();
      }
      LABFLOW_ASSIGN_OR_RETURN(std::vector<Oid> members,
                               db->SetMembers(set.value()));
      Fold(checksum, members.size());
      return Status::OK();
    }
    case Event::Type::kQueryMaterialByName: {
      LABFLOW_ASSIGN_OR_RETURN(Oid m, db->FindMaterialByName(ev.name));
      LABFLOW_ASSIGN_OR_RETURN(labbase::MaterialInfo info, db->GetMaterial(m));
      Fold(checksum, info.attrs_present.size());
      FoldString(checksum, info.name);
      return Status::OK();
    }
    default:
      return Status::InvalidArgument("unknown event type");
  }
}

}  // namespace

Result<RunReport> Driver::RunStream(const WorkloadParams& params,
                                    const StreamOptions& options,
                                    labbase::SessionIface* session) {
  if (session == nullptr) return Status::InvalidArgument("null session");
  WorkloadGenerator generator(params);

  RunReport report;
  report.version = options.version_label;
  report.intvl = params.intvl;

  Stopwatch total;
  ResourceUsage usage_before = ResourceUsage::Now();

  LABFLOW_RETURN_IF_ERROR(generator.graph().InstallSchema(session));

  Event ev;
  Stopwatch phase;
  while (generator.Next(&ev)) {
    if (!options.run_queries && !ev.IsUpdate()) continue;
    phase.Restart();
    if (options.per_event_transactions) {
      // RunTransaction retries deadlock aborts transparently (relevant when
      // several drivers share one database). The checksum is folded inside
      // the body, so each attempt must restart from the pre-event value or
      // a retried query would double-fold its results.
      const uint64_t checksum_before = report.result_checksum;
      LABFLOW_RETURN_IF_ERROR(session->RunTransaction([&]() -> Status {
        report.result_checksum = checksum_before;
        return Execute(session, ev, &report.result_checksum);
      }));
    } else {
      LABFLOW_RETURN_IF_ERROR(Execute(session, ev, &report.result_checksum));
    }
    double dt = phase.ElapsedSeconds();
    if (ev.IsUpdate()) {
      report.update_elapsed_sec += dt;
      report.update_latency.RecordSeconds(dt);
    } else {
      report.query_elapsed_sec += dt;
      report.query_latency.RecordSeconds(dt);
    }
  }

  if (options.checkpoint_at_end) {
    LABFLOW_RETURN_IF_ERROR(session->Checkpoint());
  }

  report.elapsed_sec = total.ElapsedSeconds();
  ResourceUsage delta = ResourceUsage::Now().Since(usage_before);
  report.user_cpu_sec = delta.user_cpu_sec;
  report.sys_cpu_sec = delta.sys_cpu_sec;
  report.os_majflt = delta.os_major_faults;
  report.wrapper = session->stats();

  const WorkloadGenerator::Totals& totals = generator.totals();
  report.events = totals.events;
  report.updates = totals.updates;
  report.queries = totals.queries;
  report.steps = totals.steps;
  report.materials = totals.materials;
  return report;
}

Result<RunReport> Driver::Run(const WorkloadParams& params,
                              const Options& options) {
  ServerOptions server_opts;
  server_opts.path = options.db_path;
  server_opts.pool_pages = options.pool_pages;
  server_opts.truncate = true;
  server_opts.fault_delay_us = options.fault_delay_us;
  LABFLOW_ASSIGN_OR_RETURN(std::unique_ptr<storage::StorageManager> mgr,
                           CreateServer(options.version, server_opts));

  LABFLOW_ASSIGN_OR_RETURN(std::unique_ptr<LabBase> db,
                           LabBase::Open(mgr.get(), options.labbase));

  RunReport report;
  {
    // One session per event stream, checked out from a pool: the stream is
    // this driver's single client, and the session carries its transaction
    // state and counters for the whole run. Scoped so the lease returns
    // before the pool is destroyed (the pool enforces that ordering).
    LabBase::SessionPool pool(db.get());
    LabBase::SessionPool::Lease session = pool.Acquire();

    StreamOptions stream;
    stream.version_label = std::string(ServerVersionName(options.version));
    stream.per_event_transactions = options.per_event_transactions;
    stream.checkpoint_at_end = options.checkpoint_at_end;
    stream.run_queries = options.run_queries;
    LABFLOW_ASSIGN_OR_RETURN(report,
                             RunStream(params, stream, session.get()));
  }

  report.storage = mgr->stats();
  report.majflt = report.storage.disk_reads;
  report.db_size_bytes = report.storage.db_size_bytes;
  report.wal_bytes = report.storage.wal_bytes;

  db.reset();
  LABFLOW_RETURN_IF_ERROR(mgr->Close());
  return report;
}

}  // namespace labflow::bench
