#include "labflow/server_version.h"

#include "common/status_macros.h"
#include "lsm/lsm_manager.h"
#include "mm/mm_manager.h"
#include "ostore/ostore_manager.h"
#include "storage/page.h"
#include "texas/texas_manager.h"

namespace labflow::bench {

std::string_view ServerVersionName(ServerVersion version) {
  switch (version) {
    case ServerVersion::kOstore:
      return "OStore";
    case ServerVersion::kTexas:
      return "Texas";
    case ServerVersion::kTexasTC:
      return "Texas+TC";
    case ServerVersion::kOstoreMm:
      return "OStore-mm";
    case ServerVersion::kTexasMm:
      return "Texas-mm";
    case ServerVersion::kLsm:
      return "LsmStore";
  }
  return "?";
}

Result<std::unique_ptr<storage::StorageManager>> CreateServer(
    ServerVersion version, const ServerOptions& options) {
  switch (version) {
    case ServerVersion::kOstore: {
      ostore::OstoreOptions opts;
      opts.base.path = options.path;
      opts.base.buffer_pool_pages = options.pool_pages;
      opts.base.truncate = options.truncate;
      opts.base.fault_delay_us = options.fault_delay_us;
      LABFLOW_ASSIGN_OR_RETURN(std::unique_ptr<ostore::OstoreManager> mgr,
                               ostore::OstoreManager::Open(opts));
      return std::unique_ptr<storage::StorageManager>(std::move(mgr));
    }
    case ServerVersion::kTexas:
    case ServerVersion::kTexasTC: {
      texas::TexasOptions opts;
      opts.base.path = options.path;
      opts.base.buffer_pool_pages = options.pool_pages;
      opts.base.truncate = options.truncate;
      opts.base.fault_delay_us = options.fault_delay_us;
      opts.client_clustering = (version == ServerVersion::kTexasTC);
      LABFLOW_ASSIGN_OR_RETURN(std::unique_ptr<texas::TexasManager> mgr,
                               texas::TexasManager::Open(opts));
      return std::unique_ptr<storage::StorageManager>(std::move(mgr));
    }
    case ServerVersion::kLsm: {
      lsm::LsmOptions opts;
      opts.path = options.path;
      opts.truncate = options.truncate;
      opts.fault_delay_us = options.fault_delay_us;
      // Memory fairness with the paged versions: the block cache gets the
      // same byte budget the paged heap would spend on its buffer pool.
      opts.block_cache_bytes = options.pool_pages * storage::kPageSize;
      LABFLOW_ASSIGN_OR_RETURN(std::unique_ptr<lsm::LsmManager> mgr,
                               lsm::LsmManager::Open(opts));
      return std::unique_ptr<storage::StorageManager>(std::move(mgr));
    }
    case ServerVersion::kOstoreMm:
    case ServerVersion::kTexasMm: {
      // With persistence removed, the two code bases collapse to one
      // implementation (see DESIGN.md substitution table); only the
      // reported name differs, as in the paper's tables.
      return std::unique_ptr<storage::StorageManager>(
          std::make_unique<mm::MmManager>(
              std::string(ServerVersionName(version))));
    }
  }
  return Status::InvalidArgument("unknown server version");
}

}  // namespace labflow::bench
