#ifndef LABFLOW_LABFLOW_DRIVER_H_
#define LABFLOW_LABFLOW_DRIVER_H_

#include <string>

#include "common/histogram.h"
#include "common/result.h"
#include "labbase/labbase.h"
#include "labflow/events.h"
#include "labflow/generator.h"
#include "labflow/params.h"
#include "labflow/server_version.h"

namespace labflow::bench {

/// Everything one LabFlow-1 run reports — the paper's resource rows plus
/// our extended counters.
struct RunReport {
  std::string version;
  double intvl = 0;

  // The paper's Section 10 resource rows.
  double elapsed_sec = 0;
  double user_cpu_sec = 0;
  double sys_cpu_sec = 0;
  /// Simulated major faults: demand page reads from the database file.
  uint64_t majflt = 0;
  /// OS-reported majflt for reference (usually ~0 on a warm machine).
  int64_t os_majflt = 0;
  uint64_t db_size_bytes = 0;
  uint64_t wal_bytes = 0;

  // Stream composition.
  int64_t events = 0;
  int64_t updates = 0;
  int64_t queries = 0;
  int64_t steps = 0;
  int64_t materials = 0;

  // Phase split.
  double update_elapsed_sec = 0;
  double query_elapsed_sec = 0;

  // Per-event latency distributions (one transaction per event).
  LatencyHistogram update_latency;
  LatencyHistogram query_latency;

  /// Folded over every query result; identical across server versions for
  /// the same (seed, intvl) — a cross-version correctness check.
  uint64_t result_checksum = 0;

  storage::StorageStats storage;
  labbase::LabBaseStats wrapper;
};

/// Executes the LabFlow-1 stream against one server version.
class Driver {
 public:
  struct Options {
    ServerVersion version = ServerVersion::kOstore;
    /// Database file path (directory must exist).
    std::string db_path;
    size_t pool_pages = 2048;
    /// Simulated per-fault disk latency forwarded to the storage manager.
    int64_t fault_delay_us = 0;
    labbase::LabBaseOptions labbase;
    /// Wrap every event in Begin/Commit (the paper's transaction stream).
    bool per_event_transactions = true;
    /// Run Checkpoint() at the end of the stream (timed: persistent
    /// versions must make the database durable).
    bool checkpoint_at_end = true;
    /// When false, query events are skipped (pure loading phase, F1).
    bool run_queries = true;
  };

  /// The subset of Options that makes sense without owning the database —
  /// what RunStream needs to drive an already-open session, in-process or
  /// remote.
  struct StreamOptions {
    std::string version_label;
    bool per_event_transactions = true;
    bool checkpoint_at_end = true;
    bool run_queries = true;
  };

  /// Runs the full benchmark: fresh database, schema install, event stream,
  /// final checkpoint; returns the measurements.
  static Result<RunReport> Run(const WorkloadParams& params,
                               const Options& options);

  /// Runs the event stream against a caller-provided session — the same
  /// stream, latency accounting and result checksum as Run, minus database
  /// ownership. This is the seam the network layer plugs into: hand it a
  /// net::RemoteSession and the identical workload runs against `labflowd`;
  /// the checksums must match the in-process run bit-for-bit. Storage-level
  /// counters (disk reads, db size) are left zero — they belong to whoever
  /// owns the storage manager.
  static Result<RunReport> RunStream(const WorkloadParams& params,
                                     const StreamOptions& options,
                                     labbase::SessionIface* session);
};

}  // namespace labflow::bench

#endif  // LABFLOW_LABFLOW_DRIVER_H_
