#ifndef LABFLOW_LABFLOW_PARAMS_H_
#define LABFLOW_LABFLOW_PARAMS_H_

#include <cstdint>
#include <string>

namespace labflow::bench {

/// LabFlow-1 workload parameters. `intvl` is the paper's database-scale
/// knob ("Intvl": 0.5X, 1X, 2X...); it scales the number of clones entering
/// the laboratory, and with them every downstream material, step, query and
/// byte. All randomness is derived from `seed`, so a given (seed, intvl)
/// yields a byte-identical event stream for every server version — the
/// versions are measured against exactly the same work.
struct WorkloadParams {
  double intvl = 1.0;
  uint64_t seed = 1996;

  /// Clones arriving at 1X. With the defaults below, 1X produces a database
  /// of roughly the size of the paper's 0.5X configuration (~16 MB); see
  /// EXPERIMENTS.md for the measured mapping.
  int base_clones = 500;

  /// Transposon subclones per clone: children_min + Poisson(children_mean).
  double tclones_mean = 14.0;
  int tclones_min = 4;

  /// How many clones are processed concurrently. High in-flight counts are
  /// what interleave allocations from unrelated materials — the locality
  /// stress at the heart of the paper's Section 10 findings.
  int max_inflight_clones = 32;

  /// Expected queries emitted per update event (the benchmark stream mixes
  /// workflow-tracking updates with laboratory queries).
  double query_ratio = 0.5;

  /// Fraction of value/history queries that audit a uniformly random
  /// *historical* material rather than a recently touched one. Audits are
  /// the cold re-accesses that expose each storage manager's locality of
  /// reference once the database outgrows memory.
  double audit_fraction = 0.3;

  /// Fraction of determine_sequence steps entered with an *earlier* valid
  /// time than the current clock (out-of-order entry, paper Section 7).
  double late_entry_fraction = 0.05;

  /// Retries per tclone before it is abandoned (tc_failed).
  int max_retries = 2;

  /// Number of schema-evolution events injected into the stream (spread
  /// over the run; each adds an attribute to a live step class).
  int evolution_events = 3;

  /// Derived: clones at this scale.
  int clones() const {
    double n = static_cast<double>(base_clones) * intvl;
    return n < 1 ? 1 : static_cast<int>(n + 0.5);
  }
};

}  // namespace labflow::bench

#endif  // LABFLOW_LABFLOW_PARAMS_H_
