#ifndef LABFLOW_LABFLOW_SERVER_VERSION_H_
#define LABFLOW_LABFLOW_SERVER_VERSION_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "storage/storage_manager.h"

namespace labflow::bench {

/// The five LabBase data-server versions compared in the paper's Section
/// 10, plus this repo's LSM-backed history store (kLsm), benchmarked as a
/// sixth column against the same workload.
enum class ServerVersion {
  kOstore,    // ObjectStore-like: segments, 2PL, WAL
  kTexas,     // Texas-like: allocation-order placement, no CC
  kTexasTC,   // Texas + client-implemented object clustering
  kOstoreMm,  // main memory only (OStore code path)
  kTexasMm,   // main memory only (Texas code path)
  kLsm,       // log-structured merge tree: WAL + memtable + leveled SSTables
};

inline constexpr ServerVersion kAllServerVersions[] = {
    ServerVersion::kOstore, ServerVersion::kTexasTC, ServerVersion::kTexas,
    ServerVersion::kOstoreMm, ServerVersion::kTexasMm, ServerVersion::kLsm};

/// Paper-style display name ("OStore", "Texas+TC", ...).
std::string_view ServerVersionName(ServerVersion version);

struct ServerOptions {
  /// Database file path (ignored by the -mm versions).
  std::string path;
  /// Buffer-pool capacity in pages; stands in for the testbed's physical
  /// memory (see bench_fig_locality).
  size_t pool_pages = 2048;
  bool truncate = true;
  /// Simulated per-fault disk latency (0 = none); lets the benchmark model
  /// 1996-era fault costs on a machine whose OS page cache hides them.
  int64_t fault_delay_us = 0;
};

/// Instantiates the storage manager for a server version.
Result<std::unique_ptr<storage::StorageManager>> CreateServer(
    ServerVersion version, const ServerOptions& options);

}  // namespace labflow::bench

#endif  // LABFLOW_LABFLOW_SERVER_VERSION_H_
