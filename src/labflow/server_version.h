#ifndef LABFLOW_LABFLOW_SERVER_VERSION_H_
#define LABFLOW_LABFLOW_SERVER_VERSION_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "storage/storage_manager.h"

namespace labflow::bench {

/// The five LabBase data-server versions compared in the paper's Section 10.
enum class ServerVersion {
  kOstore,    // ObjectStore-like: segments, 2PL, WAL
  kTexas,     // Texas-like: allocation-order placement, no CC
  kTexasTC,   // Texas + client-implemented object clustering
  kOstoreMm,  // main memory only (OStore code path)
  kTexasMm,   // main memory only (Texas code path)
};

inline constexpr ServerVersion kAllServerVersions[] = {
    ServerVersion::kOstore, ServerVersion::kTexasTC, ServerVersion::kTexas,
    ServerVersion::kOstoreMm, ServerVersion::kTexasMm};

/// Paper-style display name ("OStore", "Texas+TC", ...).
std::string_view ServerVersionName(ServerVersion version);

struct ServerOptions {
  /// Database file path (ignored by the -mm versions).
  std::string path;
  /// Buffer-pool capacity in pages; stands in for the testbed's physical
  /// memory (see bench_fig_locality).
  size_t pool_pages = 2048;
  bool truncate = true;
  /// Simulated per-fault disk latency (0 = none); lets the benchmark model
  /// 1996-era fault costs on a machine whose OS page cache hides them.
  int64_t fault_delay_us = 0;
};

/// Instantiates the storage manager for a server version.
Result<std::unique_ptr<storage::StorageManager>> CreateServer(
    ServerVersion version, const ServerOptions& options);

}  // namespace labflow::bench

#endif  // LABFLOW_LABFLOW_SERVER_VERSION_H_
