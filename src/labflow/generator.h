#ifndef LABFLOW_LABFLOW_GENERATOR_H_
#define LABFLOW_LABFLOW_GENERATOR_H_

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "labflow/events.h"
#include "labflow/params.h"
#include "workflow/graph.h"

namespace labflow::bench {

/// Deterministic LabFlow-1 workload generator.
///
/// Simulates the genome-mapping laboratory of the paper's Appendix B: clones
/// arrive, are fragmented into transposon subclones, run through sequencing
/// gels in batches, get sequenced (with failure/retry loops and out-of-order
/// data entry), searched against homology databases, and assembled. Many
/// materials are in flight concurrently, so updates to unrelated materials
/// interleave — the allocation pattern whose locality consequences Section
/// 10 of the paper measures.
///
/// The generator emits a *name-based* event stream (materials identified by
/// name, attributes by name): it never sees a database, so the identical
/// stream can be replayed against every server version. The stream also
/// interleaves the query mix and the schema-evolution events.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(const WorkloadParams& params);

  const workflow::WorkflowGraph& graph() const { return graph_; }

  /// Produces the next event; false when the stream is exhausted (all
  /// materials reached a terminal state).
  bool Next(Event* event);

  struct Totals {
    int64_t events = 0;
    int64_t updates = 0;
    int64_t queries = 0;
    int64_t steps = 0;
    int64_t materials = 0;
    int64_t sets = 0;
    int64_t evolutions = 0;
  };
  const Totals& totals() const { return totals_; }

 private:
  enum class CloneState {
    kReceived,
    kDnaReady,
    kTnDone,
    kAssembled,
    kFinished,
    kDead,  // every subclone failed; no assembly possible
  };
  enum class TcState {
    kNew,
    kAssociated,
    kPicked,
    kWaitingGel,
    kOnGel,
    kWaitingSeq,
    kWaitingInc,
    kBlasted,
    kIncorporated,
    kFailed,
  };

  struct CloneSim {
    std::string name;
    CloneState state = CloneState::kReceived;
    std::vector<int> tclones;
    int blasted = 0;
    int terminal_children = 0;
    int retries = 0;
  };
  struct TcSim {
    std::string name;
    int parent = -1;
    TcState state = TcState::kNew;
    int retries = 0;
  };
  struct GelSim {
    std::string name;
    std::vector<int> lanes;
  };

  /// Runs one simulation action, queueing its events; false when no action
  /// is possible (stream complete).
  bool Advance();

  // Actions (each emits exactly one step event plus bookkeeping events).
  void Arrive();
  void PrepareDna();
  void Transposon();
  void Associate();
  void Pick();
  void SeqReaction();
  void LoadGel();
  void RunGel();
  void ReadGel();
  void DetermineSequence();
  void Blast();
  void Assemble();
  void Finish();

  /// Emits a single-material step event.
  void EmitSimpleStep(const std::string& step, const std::string& material,
                      const std::string& new_state, bool maybe_late = false);
  std::vector<TagSpec> MakeTags(const std::string& step);
  Timestamp NextTime(bool maybe_late);
  void MaybeEvolve();
  void MaybeEmitQueries();
  void NoteRecent(const std::string& material, const std::string& attr);
  /// Marks a tclone terminal and checks its parent for assembly readiness
  /// or death.
  void ChildTerminal(int tc, bool blasted);
  bool UpstreamDrained() const;

  WorkloadParams params_;
  workflow::WorkflowGraph graph_;
  Rng route_;
  Rng values_;
  Rng query_rng_;
  Rng time_rng_;
  VirtualClock clock_;

  std::deque<Event> pending_;
  std::vector<CloneSim> clones_;
  std::vector<TcSim> tclones_;
  std::vector<GelSim> gels_;

  std::deque<int> q_cl_received_;
  std::deque<int> q_cl_dna_ready_;
  std::deque<int> q_cl_assemble_;
  std::deque<int> q_cl_assembled_;
  std::deque<int> q_tc_new_;
  std::deque<int> q_tc_assoc_;
  std::deque<int> q_tc_picked_;
  std::deque<int> q_tc_wait_gel_;
  std::deque<int> q_tc_wait_seq_;
  std::deque<int> q_tc_wait_inc_;
  std::deque<int> q_gel_loaded_;
  std::deque<int> q_gel_run_;

  int arrivals_left_ = 0;
  int inflight_clones_ = 0;
  int next_gel_target_ = 24;
  int gel_counter_ = 0;

  std::map<std::string, std::vector<std::string>> current_attrs_;
  std::vector<int> evolution_thresholds_;
  int arrivals_done_ = 0;
  int evolutions_done_ = 0;

  std::vector<std::pair<std::string, std::string>> recent_;
  size_t recent_pos_ = 0;
  /// Every (material, attribute) ever written; the audit-query population.
  std::vector<std::pair<std::string, std::string>> all_tagged_;

  Totals totals_;
};

}  // namespace labflow::bench

#endif  // LABFLOW_LABFLOW_GENERATOR_H_
