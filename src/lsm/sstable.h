#ifndef LABFLOW_LSM_SSTABLE_H_
#define LABFLOW_LSM_SSTABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "lsm/skiplist.h"
#include "storage/env.h"

namespace labflow::lsm {

/// Sorted string table: the immutable on-disk unit of the LSM store.
///
/// Layout (all integers little-endian fixed-width; see sstable.cc):
///
///   data block*   prefix-compressed entries + fixed32 FNV-1a trailer
///   filter block  bloom bits over every key          + fixed32 trailer
///   index block   (last_key, offset, size) per block + fixed32 trailer
///   footer        fixed-size pointer block: index/filter handles, entry
///                 count, smallest/largest key, magic, fixed32 checksum
///
/// Keys are ObjectId.raw encoded as 8-byte big-endian so that memcmp order
/// equals numeric order; within a block each entry stores only the suffix
/// that differs from its predecessor (prefix compression). Every block and
/// the footer carry their own FNV-1a checksum, so a torn write or bit flip
/// anywhere in the file is detected as Corruption, never returned as data.
///
/// A block read is the store's `majflt` proxy unit: one block miss = one
/// demand read, mirroring one page fault in the paged heap.

/// Byte targets. A data block closes at kBlockBytes (oversized values get a
/// block of their own), sized to the paged heap's page so the majflt proxy
/// compares like for like.
inline constexpr size_t kBlockBytes = 4096;
inline constexpr int kBloomBitsPerKey = 10;

/// Location of one block inside the file. `size` excludes the trailer.
struct BlockHandle {
  uint64_t offset = 0;
  uint32_t size = 0;
};

/// Streaming SSTable writer. Add() keys in strictly ascending order, then
/// Finish(); the builder syncs the file before returning, so a finished
/// table is durable before any manifest may reference it.
class SstBuilder {
 public:
  explicit SstBuilder(storage::File* file) : file_(file) {}

  SstBuilder(const SstBuilder&) = delete;
  SstBuilder& operator=(const SstBuilder&) = delete;

  Status Add(uint64_t key, EntryKind kind, std::string_view value);
  Status Finish();

  uint64_t entries() const { return entries_; }
  uint64_t smallest() const { return smallest_; }
  uint64_t largest() const { return largest_; }
  /// Total bytes written (valid after Finish).
  uint64_t file_size() const { return offset_; }
  /// Blocks written so far (disk_writes accounting).
  uint64_t blocks_written() const { return blocks_written_; }

 private:
  Status FlushBlock();

  struct IndexRow {
    uint64_t last_key;
    uint64_t offset;
    uint32_t size;
  };

  storage::File* const file_;
  std::string block_;           // current data block under construction
  uint64_t block_last_ = 0;     // last key in block_ (prefix-compress base)
  bool block_has_entries_ = false;
  std::vector<IndexRow> index_;
  std::vector<uint64_t> keys_;  // for the bloom filter, built at Finish
  uint64_t offset_ = 0;
  uint64_t entries_ = 0;
  uint64_t smallest_ = 0;
  uint64_t largest_ = 0;
  uint64_t blocks_written_ = 0;
  bool finished_ = false;
};

/// Immutable reader over a finished SSTable. Open() loads and verifies the
/// footer, index and bloom filter (three reads); after that the object is
/// plain data and safe to share across threads without locks — block
/// fetches go through ReadBlock(), which the table cache wraps with the
/// block cache.
class SstReader {
 public:
  /// Takes ownership of `file`.
  static Result<std::unique_ptr<SstReader>> Open(
      std::unique_ptr<storage::File> file);

  /// Bloom probe: false means the key is definitely absent.
  bool MayContain(uint64_t key) const;

  /// Handle of the single block that could hold `key`; false when the key
  /// is outside every block's range.
  bool FindBlock(uint64_t key, BlockHandle* handle) const;

  /// Reads a data block and verifies its trailer (Corruption on mismatch).
  Status ReadBlock(const BlockHandle& handle, std::string* out) const;

  /// Searches a decoded block for `key`. Sets *found; on found, *kind and
  /// *value. Corruption on a malformed block.
  static Status SearchBlock(std::string_view block, uint64_t key, bool* found,
                            EntryKind* kind, std::string* value);

  /// Sequential scan of every entry in key order (compaction input path;
  /// reads each block once, bypassing caches).
  Status ScanAll(
      const std::function<Status(uint64_t, EntryKind, std::string_view)>& fn)
      const;

  uint64_t entries() const { return entries_; }
  uint64_t smallest() const { return smallest_; }
  uint64_t largest() const { return largest_; }
  /// Data blocks in the table (ScanAll reads exactly this many).
  size_t blocks() const { return index_.size(); }

 private:
  SstReader() = default;

  struct IndexEntry {
    uint64_t last_key;
    BlockHandle handle;
  };

  std::unique_ptr<storage::File> file_;
  std::vector<IndexEntry> index_;
  std::string bloom_bits_;
  uint32_t bloom_hashes_ = 0;
  uint64_t entries_ = 0;
  uint64_t smallest_ = 0;
  uint64_t largest_ = 0;
};

}  // namespace labflow::lsm

#endif  // LABFLOW_LSM_SSTABLE_H_
