#ifndef LABFLOW_LSM_TABLE_CACHE_H_
#define LABFLOW_LSM_TABLE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "lsm/sstable.h"
#include "storage/env.h"

namespace labflow::lsm {

/// Read-path counters shared by the caches and the manager. All relaxed
/// atomics: stats() snapshots are tear-free per field, not a consistent
/// cut (the StorageStats contract).
struct LsmReadStats {
  std::atomic<uint64_t> disk_reads{0};   ///< blocks read from disk (majflt proxy)
  std::atomic<uint64_t> cache_hits{0};   ///< block cache hits
  std::atomic<uint64_t> bloom_checks{0};
  std::atomic<uint64_t> bloom_hits{0};   ///< filter proved the key absent
  std::atomic<uint64_t> checksum_failures{0};
};

/// Sharded LRU over decoded SSTable data blocks, bounded by a byte budget
/// (the LSM stand-in for the paged heap's buffer pool, sized from the same
/// --pool flag so the Table 2 comparison is memory-fair). Keyed by
/// (file_number, block_offset); file numbers are never reused, so entries
/// for deleted tables simply age out under the budget.
class BlockCache {
 public:
  explicit BlockCache(size_t byte_budget);

  /// The cached block, or nullptr on a miss.
  std::shared_ptr<const std::string> Lookup(uint64_t file_number,
                                            uint64_t offset);

  /// Inserts (replacing any racing duplicate) and evicts LRU entries until
  /// the shard is back under its budget share.
  void Insert(uint64_t file_number, uint64_t offset,
              std::shared_ptr<const std::string> block);

 private:
  static constexpr int kShards = 8;
  using Key = std::pair<uint64_t, uint64_t>;

  struct Shard {
    /// Rank kLsmBlockCache: a leaf — block reads happen outside the shard
    /// hold and nothing nests inside it.
    Mutex mu{LockRank::kLsmBlockCache, "lsm.block_cache"};
    std::list<std::pair<Key, std::shared_ptr<const std::string>>> lru
        LABFLOW_GUARDED_BY(mu);  // front = most recent
    std::map<Key, decltype(lru)::iterator> index LABFLOW_GUARDED_BY(mu);
    size_t bytes LABFLOW_GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(const Key& key) {
    return shards_[(key.first * 0x9E3779B97F4A7C15ull ^ key.second) % kShards];
  }

  const size_t shard_budget_;
  Shard shards_[kShards];
};

/// LRU of open SSTable readers (file handle + parsed index + bloom bits),
/// plus the point-read path that stitches bloom filter, index, block cache
/// and disk together.
class TableCache {
 public:
  TableCache(storage::Env* env, size_t max_open, size_t block_cache_bytes,
             LsmReadStats* stats, int64_t fault_delay_us);

  /// The open reader for `number`, opening `path` on a miss. Opening costs
  /// three disk reads (footer, index, filter); they are counted.
  Result<std::shared_ptr<SstReader>> GetTable(uint64_t number,
                                              const std::string& path);

  /// Point read through bloom + index + block cache. Sets *found; on found,
  /// *kind and *value.
  Status Get(uint64_t number, const std::string& path, uint64_t key,
             bool* found, EntryKind* kind, std::string* value);

  /// Drops the open handle for a deleted table (its cached blocks age out).
  void Evict(uint64_t number);

 private:
  storage::Env* const env_;
  const size_t max_open_;
  LsmReadStats* const stats_;
  const int64_t fault_delay_us_;
  BlockCache block_cache_;  // NOLINT(guarded-by-coverage): internally sharded locks

  /// Rank kLsmTableCache: held only around the handle map; table opens do
  /// their I/O outside the hold (double-checked insert).
  Mutex mu_{LockRank::kLsmTableCache, "lsm.table_cache"};
  std::list<std::pair<uint64_t, std::shared_ptr<SstReader>>> lru_
      LABFLOW_GUARDED_BY(mu_);  // front = most recent
  std::map<uint64_t, decltype(lru_)::iterator> index_ LABFLOW_GUARDED_BY(mu_);
};

}  // namespace labflow::lsm

#endif  // LABFLOW_LSM_TABLE_CACHE_H_
