#include "lsm/sstable.h"

#include <algorithm>
#include <cstring>

#include "common/codec.h"
#include "common/status_macros.h"

namespace labflow::lsm {

namespace {

constexpr uint32_t kSstMagic = 0x4C534D54;  // "LSMT"
constexpr size_t kTrailerBytes = 4;         // fixed32 FNV-1a per block
constexpr size_t kFooterBytes = 56;

/// 8-byte big-endian key image: memcmp order == numeric order, which is
/// what makes per-entry prefix compression well defined.
void KeyBytes(uint64_t key, char out[8]) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<char>(key >> (8 * (7 - i)));
  }
}

uint64_t KeyFromBytes(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  return v;
}

void PutVarint(std::string* s, uint64_t v) {
  while (v >= 0x80) {
    s->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  s->push_back(static_cast<char>(v));
}

/// Decodes a varint from [p, end); nullptr on truncation/overflow.
const char* GetVarint(const char* p, const char* end, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  while (p < end && shift < 64) {
    uint8_t b = static_cast<uint8_t>(*p++);
    result |= static_cast<uint64_t>(b & 0x7F) << shift;
    if (!(b & 0x80)) {
      *v = result;
      return p;
    }
    shift += 7;
  }
  return nullptr;
}

void PutFixed32(std::string* s, uint32_t v) {
  for (int i = 0; i < 4; ++i) s->push_back(static_cast<char>(v >> (8 * i)));
}

void PutFixed64(std::string* s, uint64_t v) {
  for (int i = 0; i < 8; ++i) s->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetFixed32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetFixed64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

/// Double-hashed bloom probes from two independently seeded FNV-1a passes
/// over the key image (Kirsch–Mitzenmacher: h1 + i*h2 behaves like k
/// independent hashes).
void BloomHashes(uint64_t key, uint32_t* h1, uint32_t* h2) {
  char kb[8];
  KeyBytes(key, kb);
  std::string_view sv(kb, 8);
  *h1 = Fnv1a32(sv);
  *h2 = Fnv1a32(sv, 0x811C9DC5u ^ 0xDEADBEEFu) | 1u;
}

constexpr uint32_t kBloomHashCount = 6;

}  // namespace

// ---- SstBuilder -------------------------------------------------------------

Status SstBuilder::Add(uint64_t key, EntryKind kind, std::string_view value) {
  if (finished_) return Status::InvalidArgument("SstBuilder already finished");
  if (entries_ > 0 && key <= largest_) {
    return Status::InvalidArgument("SstBuilder keys must be ascending");
  }
  if (entries_ == 0) smallest_ = key;
  largest_ = key;
  ++entries_;
  keys_.push_back(key);

  char kb[8];
  KeyBytes(key, kb);
  size_t shared = 0;
  if (block_has_entries_) {
    char prev[8];
    KeyBytes(block_last_, prev);
    while (shared < 8 && prev[shared] == kb[shared]) ++shared;
  }
  PutVarint(&block_, shared);
  PutVarint(&block_, 8 - shared);
  block_.push_back(static_cast<char>(kind));
  PutVarint(&block_, value.size());
  block_.append(kb + shared, 8 - shared);
  block_.append(value.data(), value.size());
  block_last_ = key;
  block_has_entries_ = true;

  if (block_.size() >= kBlockBytes) return FlushBlock();
  return Status::OK();
}

Status SstBuilder::FlushBlock() {
  if (!block_has_entries_) return Status::OK();
  index_.push_back(
      {block_last_, offset_, static_cast<uint32_t>(block_.size())});
  PutFixed32(&block_, Fnv1a32(block_));
  LABFLOW_RETURN_IF_ERROR(file_->Append(block_));
  offset_ += block_.size();
  ++blocks_written_;
  block_.clear();
  block_has_entries_ = false;
  return Status::OK();
}

Status SstBuilder::Finish() {
  if (finished_) return Status::InvalidArgument("SstBuilder already finished");
  LABFLOW_RETURN_IF_ERROR(FlushBlock());
  finished_ = true;

  // Filter block: bloom bits over every key added.
  std::string filter;
  PutFixed32(&filter, keys_.empty() ? 0 : kBloomHashCount);
  if (!keys_.empty()) {
    size_t nbits = std::max<size_t>(64, keys_.size() * kBloomBitsPerKey);
    nbits = (nbits + 7) & ~size_t{7};
    std::string bits(nbits / 8, '\0');
    for (uint64_t key : keys_) {
      uint32_t h1, h2;
      BloomHashes(key, &h1, &h2);
      for (uint32_t i = 0; i < kBloomHashCount; ++i) {
        size_t bit = (h1 + i * h2) % nbits;
        bits[bit / 8] |= static_cast<char>(1u << (bit % 8));
      }
    }
    filter.append(bits);
  }
  const uint64_t filter_off = offset_;
  const uint32_t filter_size = static_cast<uint32_t>(filter.size());
  PutFixed32(&filter, Fnv1a32(filter));
  LABFLOW_RETURN_IF_ERROR(file_->Append(filter));
  offset_ += filter.size();
  ++blocks_written_;

  // Index block: one fixed-width row per data block.
  std::string index;
  PutFixed32(&index, static_cast<uint32_t>(index_.size()));
  for (const IndexRow& row : index_) {
    PutFixed64(&index, row.last_key);
    PutFixed64(&index, row.offset);
    PutFixed32(&index, row.size);
  }
  const uint64_t index_off = offset_;
  const uint32_t index_size = static_cast<uint32_t>(index.size());
  PutFixed32(&index, Fnv1a32(index));
  LABFLOW_RETURN_IF_ERROR(file_->Append(index));
  offset_ += index.size();
  ++blocks_written_;

  std::string footer;
  PutFixed64(&footer, index_off);
  PutFixed32(&footer, index_size);
  PutFixed64(&footer, filter_off);
  PutFixed32(&footer, filter_size);
  PutFixed64(&footer, entries_);
  PutFixed64(&footer, smallest_);
  PutFixed64(&footer, largest_);
  PutFixed32(&footer, kSstMagic);
  PutFixed32(&footer, Fnv1a32(footer));
  LABFLOW_RETURN_IF_ERROR(file_->Append(footer));
  offset_ += footer.size();
  ++blocks_written_;

  // A table is referenced by the manifest only after it is durable.
  return file_->Sync();
}

// ---- SstReader --------------------------------------------------------------

Result<std::unique_ptr<SstReader>> SstReader::Open(
    std::unique_ptr<storage::File> file) {
  LABFLOW_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  if (size < kFooterBytes) {
    return Status::Corruption("sstable shorter than its footer");
  }
  std::string footer(kFooterBytes, '\0');
  LABFLOW_RETURN_IF_ERROR(
      file->Read(size - kFooterBytes, kFooterBytes, footer.data()));
  const char* f = footer.data();
  if (GetFixed32(f + 52) !=
      Fnv1a32(std::string_view(footer.data(), kFooterBytes - 4))) {
    return Status::Corruption("sstable footer checksum mismatch");
  }
  if (GetFixed32(f + 48) != kSstMagic) {
    return Status::Corruption("sstable bad magic");
  }

  std::unique_ptr<SstReader> reader(new SstReader());
  reader->entries_ = GetFixed64(f + 24);
  reader->smallest_ = GetFixed64(f + 32);
  reader->largest_ = GetFixed64(f + 40);

  const uint64_t index_off = GetFixed64(f + 0);
  const uint32_t index_size = GetFixed32(f + 8);
  const uint64_t filter_off = GetFixed64(f + 12);
  const uint32_t filter_size = GetFixed32(f + 20);
  if (index_off + index_size + kTrailerBytes > size ||
      filter_off + filter_size + kTrailerBytes > size) {
    return Status::Corruption("sstable index/filter handle out of range");
  }

  std::string index(index_size + kTrailerBytes, '\0');
  LABFLOW_RETURN_IF_ERROR(file->Read(index_off, index.size(), index.data()));
  if (GetFixed32(index.data() + index_size) !=
      Fnv1a32(std::string_view(index.data(), index_size))) {
    return Status::Corruption("sstable index checksum mismatch");
  }
  if (index_size < 4) return Status::Corruption("sstable index truncated");
  const uint32_t rows = GetFixed32(index.data());
  if (4 + rows * 20ull != index_size) {
    return Status::Corruption("sstable index size mismatch");
  }
  reader->index_.reserve(rows);
  for (uint32_t i = 0; i < rows; ++i) {
    const char* row = index.data() + 4 + i * 20;
    IndexEntry e;
    e.last_key = GetFixed64(row);
    e.handle.offset = GetFixed64(row + 8);
    e.handle.size = GetFixed32(row + 16);
    reader->index_.push_back(e);
  }

  std::string filter(filter_size + kTrailerBytes, '\0');
  LABFLOW_RETURN_IF_ERROR(
      file->Read(filter_off, filter.size(), filter.data()));
  if (GetFixed32(filter.data() + filter_size) !=
      Fnv1a32(std::string_view(filter.data(), filter_size))) {
    return Status::Corruption("sstable filter checksum mismatch");
  }
  if (filter_size < 4) return Status::Corruption("sstable filter truncated");
  reader->bloom_hashes_ = GetFixed32(filter.data());
  reader->bloom_bits_.assign(filter.data() + 4, filter_size - 4);

  reader->file_ = std::move(file);
  return reader;
}

bool SstReader::MayContain(uint64_t key) const {
  if (bloom_hashes_ == 0 || bloom_bits_.empty()) return entries_ > 0;
  const size_t nbits = bloom_bits_.size() * 8;
  uint32_t h1, h2;
  BloomHashes(key, &h1, &h2);
  for (uint32_t i = 0; i < bloom_hashes_; ++i) {
    size_t bit = (h1 + i * h2) % nbits;
    if (!(bloom_bits_[bit / 8] & (1u << (bit % 8)))) return false;
  }
  return true;
}

bool SstReader::FindBlock(uint64_t key, BlockHandle* handle) const {
  auto it = std::lower_bound(
      index_.begin(), index_.end(), key,
      [](const IndexEntry& e, uint64_t k) { return e.last_key < k; });
  if (it == index_.end()) return false;
  *handle = it->handle;
  return true;
}

Status SstReader::ReadBlock(const BlockHandle& handle, std::string* out) const {
  std::string raw(handle.size + kTrailerBytes, '\0');
  LABFLOW_RETURN_IF_ERROR(file_->Read(handle.offset, raw.size(), raw.data()));
  if (GetFixed32(raw.data() + handle.size) !=
      Fnv1a32(std::string_view(raw.data(), handle.size))) {
    return Status::Corruption("sstable block checksum mismatch");
  }
  raw.resize(handle.size);
  *out = std::move(raw);
  return Status::OK();
}

Status SstReader::SearchBlock(std::string_view block, uint64_t key,
                              bool* found, EntryKind* kind,
                              std::string* value) {
  *found = false;
  const char* p = block.data();
  const char* end = p + block.size();
  char cur[8] = {0};
  while (p < end) {
    uint64_t shared, unshared, vlen;
    if ((p = GetVarint(p, end, &shared)) == nullptr || shared > 8 ||
        (p = GetVarint(p, end, &unshared)) == nullptr ||
        shared + unshared != 8 || p >= end) {
      return Status::Corruption("sstable entry header malformed");
    }
    const uint8_t k = static_cast<uint8_t>(*p++);
    if (k > static_cast<uint8_t>(EntryKind::kTombstone)) {
      return Status::Corruption("sstable entry kind malformed");
    }
    if ((p = GetVarint(p, end, &vlen)) == nullptr ||
        static_cast<uint64_t>(end - p) < unshared + vlen) {
      return Status::Corruption("sstable entry truncated");
    }
    std::memcpy(cur + shared, p, unshared);
    p += unshared;
    const uint64_t cur_key = KeyFromBytes(cur);
    if (cur_key == key) {
      *found = true;
      *kind = static_cast<EntryKind>(k);
      value->assign(p, vlen);
      return Status::OK();
    }
    if (cur_key > key) return Status::OK();  // ascending: key absent
    p += vlen;
  }
  return Status::OK();
}

Status SstReader::ScanAll(
    const std::function<Status(uint64_t, EntryKind, std::string_view)>& fn)
    const {
  std::string block;
  for (const IndexEntry& e : index_) {
    LABFLOW_RETURN_IF_ERROR(ReadBlock(e.handle, &block));
    const char* p = block.data();
    const char* end = p + block.size();
    char cur[8] = {0};
    while (p < end) {
      uint64_t shared, unshared, vlen;
      if ((p = GetVarint(p, end, &shared)) == nullptr || shared > 8 ||
          (p = GetVarint(p, end, &unshared)) == nullptr ||
          shared + unshared != 8 || p >= end) {
        return Status::Corruption("sstable entry header malformed");
      }
      const uint8_t k = static_cast<uint8_t>(*p++);
      if (k > static_cast<uint8_t>(EntryKind::kTombstone)) {
        return Status::Corruption("sstable entry kind malformed");
      }
      if ((p = GetVarint(p, end, &vlen)) == nullptr ||
          static_cast<uint64_t>(end - p) < unshared + vlen) {
        return Status::Corruption("sstable entry truncated");
      }
      std::memcpy(cur + shared, p, unshared);
      p += unshared;
      LABFLOW_RETURN_IF_ERROR(fn(KeyFromBytes(cur),
                                 static_cast<EntryKind>(k),
                                 std::string_view(p, vlen)));
      p += vlen;
    }
  }
  return Status::OK();
}

}  // namespace labflow::lsm
