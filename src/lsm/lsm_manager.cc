#include "lsm/lsm_manager.h"

#include <time.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/codec.h"
#include "common/status_macros.h"

namespace labflow::lsm {

using storage::AllocHint;
using storage::ObjectId;
using storage::StorageStats;

namespace {

// WAL record opcodes inside a commit group's payload.
constexpr uint8_t kWalPut = 1;   // [u64 key][string value]
constexpr uint8_t kWalDel = 2;   // [u64 key]
constexpr uint8_t kWalRoot = 3;  // [u64 root.raw]

constexpr uint32_t kManifestMagic = 0x4C534D4D;  // "LSMM"

// At most this many flushed-but-unretired memtables before committers park.
constexpr size_t kMaxImms = 2;

/// [[nodiscard]] suppressor for best-effort cleanup calls whose failure is
/// harmless by design (recovery re-deletes orphans; Delete of a missing
/// file is NotFound).
void IgnoreStatus(const Status&) {}

void SleepMs(int64_t ms) {
  timespec ts;
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = (ms % 1000) * 1000000;
  nanosleep(&ts, nullptr);
}

}  // namespace

/// Transaction handle: just the private write batch. Reads consult the
/// batch first (read-your-writes), commit hands it to CommitBatch, abort
/// throws it away.
class LsmManager::LsmTxn : public storage::Txn {
 public:
  LsmTxn(LsmManager* owner, uint64_t id) : Txn(owner, id) {}

  WriteBatch batch;
};

// ---- lifecycle --------------------------------------------------------------

LiveFile::~LiveFile() {
  if (!obsolete_.load(std::memory_order_acquire)) return;
  cache_->Evict(number_);
  IgnoreStatus(env_->Delete(path_));
}

LsmManager::LsmManager(const LsmOptions& options)
    : options_(options),
      env_(options.env != nullptr ? options.env : storage::Env::Default()),
      table_cache_(new TableCache(env_, options.max_open_tables,
                                  options.block_cache_bytes, &read_stats_,
                                  options.fault_delay_us)) {}

Result<std::unique_ptr<LsmManager>> LsmManager::Open(
    const LsmOptions& options) {
  if (options.path.empty()) {
    return Status::InvalidArgument("lsm: path must not be empty");
  }
  std::unique_ptr<LsmManager> mgr(new LsmManager(options));
  LABFLOW_RETURN_IF_ERROR(mgr->Recover());
  mgr->StartWorkers();
  // Recovery may have left L0 at or past the compaction trigger.
  mgr->SignalBg();
  return mgr;
}

LsmManager::~LsmManager() {
  StopWorkers();
  MutexLock g(commit_mu_);
  if (wal_ != nullptr) IgnoreStatus(wal_->Close());
}

std::string LsmManager::SstPath(uint64_t number) const {
  return options_.path + ".lsm-sst." + std::to_string(number);
}

std::string LsmManager::WalPath(uint64_t number) const {
  return options_.path + ".lsm-wal." + std::to_string(number);
}

std::string LsmManager::ManifestPath(int slot) const {
  return options_.path + ".lsm-manifest." + std::to_string(slot);
}

// ---- recovery ---------------------------------------------------------------

Status LsmManager::Recover() {
  bool recovered = false;
  {
    MutexLock c(commit_mu_);
    WriterMutexLock g(mu_);
    bool found = false;
    std::vector<uint64_t> wals;
    LABFLOW_RETURN_IF_ERROR(LoadManifest(&found, &wals));
    if (options_.truncate && found) {
      LABFLOW_RETURN_IF_ERROR(DeleteAllFiles());
      // Keep manifest_epoch_: the next persist supersedes the stale slots.
      version_ = std::make_shared<LsmVersion>();
      root_ = ObjectId::Invalid();
      next_id_.store(1, std::memory_order_relaxed);
      next_file_number_.store(1, std::memory_order_relaxed);
      live_objects_.store(0, std::memory_order_relaxed);
      found = false;
      wals.clear();
    }
    if (version_ == nullptr) version_ = std::make_shared<LsmVersion>();
    if (found) {
      CollectOrphans(wals);
      LABFLOW_RETURN_IF_ERROR(ReplayWals(wals));
      LABFLOW_RETURN_IF_ERROR(FlushReplayLocked());
    }
    LABFLOW_RETURN_IF_ERROR(BootstrapFresh());
    // Replayed WALs are folded into L0 and superseded by the fresh
    // manifest; only now is it safe to retire them.
    for (uint64_t n : wals) IgnoreStatus(env_->Delete(WalPath(n)));
    RefreshPressureLocked();
    recovered = found;
  }
  if (recovered) {
    // Exact live-object count: merge the recovered tree once. This is the
    // same order of work as the LabBase open scan that follows anyway.
    std::map<uint64_t, std::string> all;
    LABFLOW_RETURN_IF_ERROR(MergeAll(nullptr, &all));
    live_objects_.store(all.size(), std::memory_order_relaxed);
  }
  return Status::OK();
}

Status LsmManager::LoadManifest(bool* found, std::vector<uint64_t>* wals) {
  *found = false;
  uint64_t best_epoch = 0;
  for (int slot = 0; slot < 2; ++slot) {
    const std::string path = ManifestPath(slot);
    if (!env_->FileExists(path)) continue;
    auto opened = env_->OpenFile(path, /*truncate=*/false);
    if (!opened.ok()) continue;
    std::unique_ptr<storage::File> file = std::move(opened.value());
    auto sized = file->Size();
    if (!sized.ok()) continue;
    const uint64_t size = sized.value();
    if (size < 12) continue;  // magic + trailing checksum at minimum
    std::string buf(size, '\0');
    if (!file->Read(0, size, buf.data()).ok()) continue;
    const uint32_t want = Fnv1a32(std::string_view(buf).substr(0, size - 4));
    Decoder trailer(std::string_view(buf).substr(size - 4));
    auto got = trailer.GetFixed32();
    if (!got.ok() || got.value() != want) continue;  // torn slot: skip it

    Decoder d(std::string_view(buf).substr(0, size - 4));
    auto magic = d.GetFixed32();
    if (!magic.ok() || magic.value() != kManifestMagic) continue;
    auto parse = [&]() -> Status {
      LABFLOW_ASSIGN_OR_RETURN(uint64_t epoch, d.GetU64());
      LABFLOW_ASSIGN_OR_RETURN(uint64_t next_file, d.GetU64());
      LABFLOW_ASSIGN_OR_RETURN(uint64_t next_id, d.GetU64());
      LABFLOW_ASSIGN_OR_RETURN(uint64_t root, d.GetU64());
      LABFLOW_ASSIGN_OR_RETURN(uint64_t live, d.GetU64());
      LABFLOW_ASSIGN_OR_RETURN(uint64_t nwals, d.GetU64());
      std::vector<uint64_t> slot_wals;
      for (uint64_t i = 0; i < nwals; ++i) {
        LABFLOW_ASSIGN_OR_RETURN(uint64_t w, d.GetU64());
        slot_wals.push_back(w);
      }
      LABFLOW_ASSIGN_OR_RETURN(uint64_t nlevels, d.GetU64());
      auto v = std::make_shared<LsmVersion>();
      v->levels.resize(nlevels);
      for (uint64_t l = 0; l < nlevels; ++l) {
        LABFLOW_ASSIGN_OR_RETURN(uint64_t nfiles, d.GetU64());
        for (uint64_t f = 0; f < nfiles; ++f) {
          FileMeta m;
          LABFLOW_ASSIGN_OR_RETURN(m.number, d.GetU64());
          LABFLOW_ASSIGN_OR_RETURN(m.smallest, d.GetU64());
          LABFLOW_ASSIGN_OR_RETURN(m.largest, d.GetU64());
          LABFLOW_ASSIGN_OR_RETURN(m.file_size, d.GetU64());
          LABFLOW_ASSIGN_OR_RETURN(m.entries, d.GetU64());
          m.live = std::make_shared<LiveFile>(env_, table_cache_.get(),
                                              SstPath(m.number), m.number);
          v->levels[l].push_back(m);
        }
      }
      if (epoch <= best_epoch) return Status::OK();  // older slot
      best_epoch = epoch;
      *found = true;
      *wals = std::move(slot_wals);
      version_ = std::move(v);
      root_ = ObjectId(root);
      next_file_number_.store(next_file, std::memory_order_relaxed);
      next_id_.store(next_id, std::memory_order_relaxed);
      live_objects_.store(live, std::memory_order_relaxed);
      return Status::OK();
    };
    IgnoreStatus(parse());  // a malformed-but-checksummed slot is skipped
  }
  manifest_epoch_ = best_epoch;
  return Status::OK();
}

Status LsmManager::DeleteAllFiles() {
  const uint64_t limit = next_file_number_.load(std::memory_order_relaxed);
  for (uint64_t n = 1; n < limit; ++n) {
    IgnoreStatus(env_->Delete(SstPath(n)));
    IgnoreStatus(env_->Delete(WalPath(n)));
  }
  return Status::OK();
}

void LsmManager::CollectOrphans(const std::vector<uint64_t>& wal_numbers) {
  std::vector<bool> live_sst;
  std::vector<bool> live_wal;
  const uint64_t limit = next_file_number_.load(std::memory_order_relaxed);
  live_sst.resize(limit, false);
  live_wal.resize(limit, false);
  for (const auto& level : version_->levels) {
    for (const FileMeta& m : level) {
      if (m.number < limit) live_sst[m.number] = true;
    }
  }
  for (uint64_t n : wal_numbers) {
    if (n < limit) live_wal[n] = true;
  }
  for (uint64_t n = 1; n < limit; ++n) {
    if (!live_sst[n] && env_->FileExists(SstPath(n))) {
      IgnoreStatus(env_->Delete(SstPath(n)));
    }
    if (!live_wal[n] && env_->FileExists(WalPath(n))) {
      IgnoreStatus(env_->Delete(WalPath(n)));
    }
  }
}

Status LsmManager::ReplayWals(const std::vector<uint64_t>& wal_numbers) {
  active_ = std::make_shared<SkipList>();
  uint64_t max_key = 0;
  for (uint64_t n : wal_numbers) {
    ostore::Wal wal;
    LABFLOW_RETURN_IF_ERROR(wal.Open(env_, WalPath(n)));
    auto groups = wal.ReadAll();
    IgnoreStatus(wal.Close());
    LABFLOW_RETURN_IF_ERROR(groups.status());
    for (const ostore::Wal::Group& group : groups.value()) {
      Decoder d(group.payload);
      while (!d.AtEnd()) {
        LABFLOW_ASSIGN_OR_RETURN(uint8_t op, d.GetU8());
        switch (op) {
          case kWalPut: {
            LABFLOW_ASSIGN_OR_RETURN(uint64_t key, d.GetU64());
            LABFLOW_ASSIGN_OR_RETURN(std::string value, d.GetString());
            active_->Insert(key, EntryKind::kPut, value);
            max_key = std::max(max_key, key);
            break;
          }
          case kWalDel: {
            LABFLOW_ASSIGN_OR_RETURN(uint64_t key, d.GetU64());
            active_->Insert(key, EntryKind::kTombstone, {});
            max_key = std::max(max_key, key);
            break;
          }
          case kWalRoot: {
            LABFLOW_ASSIGN_OR_RETURN(uint64_t root, d.GetU64());
            root_ = ObjectId(root);
            break;
          }
          default:
            return Status::Corruption("lsm: unknown WAL opcode " +
                                      std::to_string(op));
        }
      }
    }
  }
  // Ids handed out after the last manifest persist live only in the WALs.
  uint64_t floor = max_key + 1;
  uint64_t cur = next_id_.load(std::memory_order_relaxed);
  if (cur < floor) next_id_.store(floor, std::memory_order_relaxed);
  return Status::OK();
}

Status LsmManager::FlushReplayLocked() {
  if (active_ == nullptr || active_->empty()) return Status::OK();
  FileMeta meta;
  LABFLOW_RETURN_IF_ERROR(WriteMemtableSst(*active_, &meta));
  if (version_->levels.empty()) {
    auto nv = std::make_shared<LsmVersion>(*version_);
    nv->levels.resize(1);
    version_ = std::move(nv);
  }
  auto nv = std::make_shared<LsmVersion>(*version_);
  nv->levels[0].push_back(meta);
  version_ = std::move(nv);
  active_ = std::make_shared<SkipList>();
  return Status::OK();
}

Status LsmManager::BootstrapFresh() {
  const uint64_t n = next_file_number_.fetch_add(1, std::memory_order_relaxed);
  auto wal = std::make_unique<ostore::Wal>();
  LABFLOW_RETURN_IF_ERROR(wal->Open(env_, WalPath(n)));
  wal_ = std::move(wal);
  degraded_ = Status::OK();
  active_ = std::make_shared<SkipList>();
  active_wal_number_ = n;
  imms_.clear();
  return PersistManifestLocked();
}

// ---- manifest ---------------------------------------------------------------

Status LsmManager::PersistManifestLocked() {
  const uint64_t epoch = manifest_epoch_ + 1;
  Encoder e;
  e.PutFixed32(kManifestMagic);
  e.PutU64(epoch);
  e.PutU64(next_file_number_.load(std::memory_order_relaxed));
  e.PutU64(next_id_.load(std::memory_order_relaxed));
  e.PutU64(root_.raw);
  e.PutU64(live_objects_.load(std::memory_order_relaxed));
  // WALs to replay, oldest first: the queued immutables, then the active.
  e.PutU64(imms_.size() + 1);
  for (const Imm& imm : imms_) e.PutU64(imm.wal_number);
  e.PutU64(active_wal_number_);
  e.PutU64(version_->levels.size());
  for (const auto& level : version_->levels) {
    e.PutU64(level.size());
    for (const FileMeta& m : level) {
      e.PutU64(m.number);
      e.PutU64(m.smallest);
      e.PutU64(m.largest);
      e.PutU64(m.file_size);
      e.PutU64(m.entries);
    }
  }
  std::string body = e.Release();
  Encoder trailer;
  trailer.PutFixed32(Fnv1a32(body));
  body += trailer.Release();

  // Alternating slots: the previous epoch's slot survives until this write
  // completes, so a torn write can never lose both copies.
  const int slot = static_cast<int>(epoch & 1);
  LABFLOW_ASSIGN_OR_RETURN(
      std::unique_ptr<storage::File> file,
      env_->OpenFile(ManifestPath(slot), /*truncate=*/true));
  LABFLOW_RETURN_IF_ERROR(file->Append(body));
  LABFLOW_RETURN_IF_ERROR(file->Sync());
  LABFLOW_RETURN_IF_ERROR(file->Close());
  disk_writes_.fetch_add(1, std::memory_order_relaxed);
  manifest_epoch_ = epoch;
  return Status::OK();
}

// ---- commit pipeline --------------------------------------------------------

std::string LsmManager::EncodeBatch(const WriteBatch& batch) const {
  Encoder e;
  for (const auto& [key, value] : batch.ops) {
    if (value.has_value()) {
      e.PutU8(kWalPut);
      e.PutU64(key);
      e.PutString(*value);
    } else {
      e.PutU8(kWalDel);
      e.PutU64(key);
    }
  }
  if (batch.root.has_value()) {
    e.PutU8(kWalRoot);
    e.PutU64(batch.root->raw);
  }
  return e.Release();
}

void LsmManager::Backpressure() {
  const size_t l0 = l0_files_.load(std::memory_order_relaxed);
  const size_t imms = imm_count_.load(std::memory_order_relaxed);
  if (l0 < options_.l0_slowdown_trigger && imms < kMaxImms) return;
  write_throttles_.fetch_add(1, std::memory_order_relaxed);
  if (l0 < options_.l0_stop_trigger && imms < kMaxImms) {
    // Slowdown band: one millisecond per commit gives compaction air
    // without stalling the pipeline.
    SleepMs(1);
    return;
  }
  // Hard stop: park until the backlog drains (or the store shuts down).
  MutexLock g(bg_mu_);
  while (!stop_ &&
         (imm_count_.load(std::memory_order_relaxed) >= kMaxImms ||
          l0_files_.load(std::memory_order_relaxed) >=
              options_.l0_stop_trigger)) {
    bg_cv_.WaitFor(bg_mu_, std::chrono::milliseconds(10), [] { return false; });
  }
}

Status LsmManager::CommitBatch(uint64_t txn_id, const WriteBatch& batch) {
  if (batch.empty()) {
    commits_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  Backpressure();
  MutexLock c(commit_mu_);
  if (!degraded_.ok()) {
    return Status::Unavailable("lsm: store degraded by earlier WAL failure: " +
                               degraded_.message());
  }
  if (wal_ == nullptr) {
    return Status::Unavailable("lsm: write-ahead log is not open");
  }
  const std::string payload = EncodeBatch(batch);
  Status st = wal_->AppendGroup(txn_id, payload, options_.sync_commit);
  if (!st.ok()) {
    // The batch was NOT applied: no ghost state. The WAL's own sticky error
    // refuses later appends; mirror it here so commits fail fast until a
    // Checkpoint truncates and heals the log.
    degraded_ = st;
    return st;
  }
  bool rotate = false;
  {
    WriterMutexLock g(mu_);
    if (closed_) return Status::InvalidArgument("lsm: manager closed");
    for (const auto& [key, value] : batch.ops) {
      if (value.has_value()) {
        active_->Insert(key, EntryKind::kPut, *value);
      } else {
        active_->Insert(key, EntryKind::kTombstone, {});
      }
    }
    if (batch.root.has_value()) root_ = *batch.root;
    live_objects_.fetch_add(static_cast<uint64_t>(batch.live_delta),
                            std::memory_order_relaxed);
    rotate = active_->bytes() >= options_.memtable_bytes;
  }
  if (rotate) {
    // Rotation failure degrades the store (future durability at risk) but
    // this commit itself is logged and applied — still OK. commit_mu_ is
    // still held, so the memtable cannot grow between the size check and
    // the swap.
    IgnoreStatus(Rotate());
    SignalBg();
  }
  commits_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status LsmManager::Rotate() {
  // Order matters for recovery: open the new WAL and persist a manifest
  // that lists it *before* any commit can land in it; the old WAL moves to
  // the immutable queue and is retired only after its flush's manifest.
  //
  // All the WAL traffic (Wal::mu_ ranks below kLsmState) and the new log's
  // file I/O happen before the state lock; commit_mu_ alone freezes the
  // active memtable, so the swap under mu_ installs exactly the snapshot
  // the closed log describes.
  const uint64_t n = next_file_number_.fetch_add(1, std::memory_order_relaxed);
  auto fresh = std::make_unique<ostore::Wal>();
  Status st = fresh->Open(env_, WalPath(n));
  if (!st.ok()) {
    degraded_ = st;
    return st;
  }
  const uint64_t old_wal_bytes = wal_->SizeBytes();
  const ostore::Wal::GroupStats gs = wal_->group_stats();
  retired_wal_stats_.frames += gs.frames;
  retired_wal_stats_.writes += gs.writes;
  retired_wal_stats_.syncs += gs.syncs;
  retired_wal_stats_.max_frames_per_write =
      std::max(retired_wal_stats_.max_frames_per_write,
               gs.max_frames_per_write);
  IgnoreStatus(wal_->Close());
  wal_ = std::move(fresh);
  {
    WriterMutexLock g(mu_);
    Imm imm;
    imm.mem = active_;
    imm.wal_number = active_wal_number_;
    imm.wal_bytes = old_wal_bytes;
    imms_.push_back(std::move(imm));
    active_ = std::make_shared<SkipList>();
    active_wal_number_ = n;
    RefreshPressureLocked();
    st = PersistManifestLocked();
  }
  if (!st.ok()) degraded_ = st;
  return st;
}

// ---- transaction hooks ------------------------------------------------------

std::unique_ptr<storage::Txn> LsmManager::CreateTxn(uint64_t id) {
  return std::unique_ptr<storage::Txn>(new LsmTxn(this, id));
}

Status LsmManager::CommitTxn(storage::Txn* txn) {
  auto* t = static_cast<LsmTxn*>(txn);
  Status st = CommitBatch(txn->id(), t->batch);
  if (!st.ok()) aborts_.fetch_add(1, std::memory_order_relaxed);
  return st;
}

Status LsmManager::AbortTxn(storage::Txn* txn) {
  // Real rollback: the batch never reached the WAL or the memtable.
  (void)txn;
  aborts_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void LsmManager::OnTxnDrop(storage::Txn* txn) {
  // The buffered batch dies with the handle; nothing to release.
  (void)txn;
}

// ---- data operations --------------------------------------------------------

Result<ObjectId> LsmManager::DoAllocate(storage::Txn* txn,
                                        std::string_view data,
                                        const AllocHint& hint) {
  (void)hint;  // allocation order *is* the placement policy in a log
  const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  if (txn != nullptr) {
    auto* t = static_cast<LsmTxn*>(txn);
    t->batch.ops[id] = std::string(data);
    ++t->batch.live_delta;
    return ObjectId(id);
  }
  WriteBatch batch;
  batch.ops[id] = std::string(data);
  batch.live_delta = 1;
  LABFLOW_RETURN_IF_ERROR(CommitBatch(0, batch));
  return ObjectId(id);
}

Result<std::string> LsmManager::DoRead(storage::Txn* txn, ObjectId id) {
  if (txn != nullptr) {
    auto* t = static_cast<LsmTxn*>(txn);
    auto it = t->batch.ops.find(id.raw);
    if (it != t->batch.ops.end()) {
      if (!it->second.has_value()) {
        return Status::NotFound("lsm: no such object: " +
                                std::to_string(id.raw));
      }
      return *it->second;
    }
  }
  return GetCommitted(id.raw);
}

Status LsmManager::DoUpdate(storage::Txn* txn, ObjectId id,
                            std::string_view data) {
  if (txn != nullptr) {
    auto* t = static_cast<LsmTxn*>(txn);
    auto it = t->batch.ops.find(id.raw);
    if (it != t->batch.ops.end()) {
      if (!it->second.has_value()) {
        return Status::NotFound("lsm: no such object: " +
                                std::to_string(id.raw));
      }
      it->second = std::string(data);
      return Status::OK();
    }
    LABFLOW_RETURN_IF_ERROR(GetCommitted(id.raw).status());
    t->batch.ops[id.raw] = std::string(data);
    return Status::OK();
  }
  LABFLOW_RETURN_IF_ERROR(GetCommitted(id.raw).status());
  WriteBatch batch;
  batch.ops[id.raw] = std::string(data);
  return CommitBatch(0, batch);
}

Status LsmManager::DoFree(storage::Txn* txn, ObjectId id) {
  if (txn != nullptr) {
    auto* t = static_cast<LsmTxn*>(txn);
    auto it = t->batch.ops.find(id.raw);
    if (it != t->batch.ops.end()) {
      if (!it->second.has_value()) {
        return Status::NotFound("lsm: no such object: " +
                                std::to_string(id.raw));
      }
      it->second.reset();
      --t->batch.live_delta;
      return Status::OK();
    }
    LABFLOW_RETURN_IF_ERROR(GetCommitted(id.raw).status());
    t->batch.ops[id.raw] = std::nullopt;
    --t->batch.live_delta;
    return Status::OK();
  }
  LABFLOW_RETURN_IF_ERROR(GetCommitted(id.raw).status());
  WriteBatch batch;
  batch.ops[id.raw] = std::nullopt;
  batch.live_delta = -1;
  return CommitBatch(0, batch);
}

Status LsmManager::DoScanAll(
    storage::Txn* txn,
    const std::function<Status(ObjectId, std::string_view)>& fn) {
  auto* t = static_cast<LsmTxn*>(txn);
  std::map<uint64_t, std::string> all;
  LABFLOW_RETURN_IF_ERROR(MergeAll(t != nullptr ? &t->batch : nullptr, &all));
  for (const auto& [key, value] : all) {
    LABFLOW_RETURN_IF_ERROR(fn(ObjectId(key), value));
  }
  return Status::OK();
}

// ---- read path --------------------------------------------------------------

Result<std::string> LsmManager::GetCommitted(uint64_t key) const {
  std::shared_ptr<const LsmVersion> v;
  {
    ReaderMutexLock g(mu_);
    if (closed_) return Status::InvalidArgument("lsm: manager closed");
    if (const SkipList::Entry* e = active_->Find(key)) {
      if (e->kind == EntryKind::kTombstone) {
        return Status::NotFound("lsm: no such object: " + std::to_string(key));
      }
      return e->value;
    }
    for (auto it = imms_.rbegin(); it != imms_.rend(); ++it) {
      if (const SkipList::Entry* e = it->mem->Find(key)) {
        if (e->kind == EntryKind::kTombstone) {
          return Status::NotFound("lsm: no such object: " +
                                  std::to_string(key));
        }
        return e->value;
      }
    }
    v = version_;
  }
  // Disk search outside every lock. L0 newest-first (files overlap); deeper
  // levels are disjoint, one candidate each.
  bool found = false;
  EntryKind kind = EntryKind::kPut;
  std::string value;
  if (!v->levels.empty()) {
    const auto& l0 = v->levels[0];
    for (auto it = l0.rbegin(); it != l0.rend(); ++it) {
      if (key < it->smallest || key > it->largest) continue;
      LABFLOW_RETURN_IF_ERROR(table_cache_->Get(
          it->number, SstPath(it->number), key, &found, &kind, &value));
      if (found) {
        if (kind == EntryKind::kTombstone) {
          return Status::NotFound("lsm: no such object: " +
                                  std::to_string(key));
        }
        return value;
      }
    }
  }
  for (size_t l = 1; l < v->levels.size(); ++l) {
    const auto& level = v->levels[l];
    auto it = std::lower_bound(
        level.begin(), level.end(), key,
        [](const FileMeta& m, uint64_t k) { return m.largest < k; });
    if (it == level.end() || key < it->smallest) continue;
    LABFLOW_RETURN_IF_ERROR(table_cache_->Get(
        it->number, SstPath(it->number), key, &found, &kind, &value));
    if (found) {
      if (kind == EntryKind::kTombstone) {
        return Status::NotFound("lsm: no such object: " + std::to_string(key));
      }
      return value;
    }
  }
  return Status::NotFound("lsm: no such object: " + std::to_string(key));
}

Status LsmManager::MergeAll(const WriteBatch* overlay,
                            std::map<uint64_t, std::string>* out) const {
  std::shared_ptr<const LsmVersion> v;
  std::vector<std::shared_ptr<SkipList>> mems;  // oldest first; immutable
  std::vector<SkipList::Entry> active_entries;
  {
    ReaderMutexLock g(mu_);
    if (closed_) return Status::InvalidArgument("lsm: manager closed");
    v = version_;
    for (const Imm& imm : imms_) mems.push_back(imm.mem);
    // The active memtable keeps mutating after we release the lock, so
    // copy it out inside the shared hold (writers apply under exclusive).
    active_entries.reserve(active_->entries());
    active_->ForEach([&active_entries](const SkipList::Entry& e) {
      active_entries.push_back(e);
    });
  }
  auto apply = [out](uint64_t key, EntryKind kind, std::string_view value) {
    if (kind == EntryKind::kTombstone) {
      out->erase(key);
    } else {
      (*out)[key] = std::string(value);
    }
  };
  // Deepest level first; newer layers overwrite older ones.
  for (size_t l = v->levels.size(); l-- > 1;) {
    for (const FileMeta& m : v->levels[l]) {
      LABFLOW_ASSIGN_OR_RETURN(std::shared_ptr<SstReader> table,
                               table_cache_->GetTable(m.number,
                                                      SstPath(m.number)));
      LABFLOW_RETURN_IF_ERROR(table->ScanAll(
          [&apply](uint64_t key, EntryKind kind, std::string_view value) {
            apply(key, kind, value);
            return Status::OK();
          }));
      read_stats_.disk_reads.fetch_add(table->blocks(),
                                       std::memory_order_relaxed);
    }
  }
  if (!v->levels.empty()) {
    for (const FileMeta& m : v->levels[0]) {  // ascending number = age order
      LABFLOW_ASSIGN_OR_RETURN(std::shared_ptr<SstReader> table,
                               table_cache_->GetTable(m.number,
                                                      SstPath(m.number)));
      LABFLOW_RETURN_IF_ERROR(table->ScanAll(
          [&apply](uint64_t key, EntryKind kind, std::string_view value) {
            apply(key, kind, value);
            return Status::OK();
          }));
      read_stats_.disk_reads.fetch_add(table->blocks(),
                                       std::memory_order_relaxed);
    }
  }
  // Immutable memtables are never written after rotation, so the
  // snapshotted shared_ptrs are safe to read without the lock.
  for (const auto& mem : mems) {
    mem->ForEach([&apply](const SkipList::Entry& e) {
      apply(e.key, e.kind, e.value);
    });
  }
  for (const SkipList::Entry& e : active_entries) {
    apply(e.key, e.kind, e.value);
  }
  if (overlay != nullptr) {
    for (const auto& [key, value] : overlay->ops) {
      if (value.has_value()) {
        (*out)[key] = *value;
      } else {
        out->erase(key);
      }
    }
  }
  return Status::OK();
}

// ---- background work --------------------------------------------------------

void LsmManager::StartWorkers() {
  const int n = options_.background_threads < 1 ? 1
                                                : options_.background_threads;
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { BgWorker(); });
  }
}

void LsmManager::StopWorkers() {
  {
    MutexLock g(bg_mu_);
    stop_ = true;
    bg_cv_.NotifyAll();
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

void LsmManager::SignalBg() {
  MutexLock g(bg_mu_);
  ++work_signals_;
  bg_cv_.NotifyAll();
}

void LsmManager::BgWorker() {
  for (;;) {
    {
      MutexLock g(bg_mu_);
      bg_cv_.Wait(bg_mu_, [this]() LABFLOW_REQUIRES(bg_mu_) {
        return stop_ || work_signals_ > 0;
      });
      if (stop_) return;
      --work_signals_;
    }
    while (TryWork()) {
      MutexLock g(bg_mu_);
      if (stop_) return;
    }
  }
}

bool LsmManager::TryWork() {
  enum class Job { kNone, kFlush, kCompact };
  Job job = Job::kNone;
  Compaction c;
  {
    WriterMutexLock g(mu_);
    if (closed_) return false;
    if (!imms_.empty() && !flush_running_) {
      flush_running_ = true;
      job = Job::kFlush;
    } else if (!compaction_running_ && PickCompactionLocked(&c)) {
      compaction_running_ = true;
      job = Job::kCompact;
    }
  }
  if (job == Job::kNone) return false;
  Status st = job == Job::kFlush ? DoFlush() : DoCompaction(c);
  {
    WriterMutexLock g(mu_);
    if (job == Job::kFlush) {
      flush_running_ = false;
    } else {
      compaction_running_ = false;
    }
  }
  {
    // Wake parked committers and Checkpoint drainers.
    MutexLock g(bg_mu_);
    bg_cv_.NotifyAll();
  }
  if (!st.ok()) SleepMs(10);  // pace retries while the env misbehaves
  return true;
}

Status LsmManager::WriteMemtableSst(const SkipList& mem, FileMeta* meta) {
  const uint64_t number =
      next_file_number_.fetch_add(1, std::memory_order_relaxed);
  const std::string path = SstPath(number);
  auto opened = env_->OpenFile(path, /*truncate=*/true);
  if (!opened.ok()) return opened.status();
  std::unique_ptr<storage::File> file = std::move(opened.value());
  SstBuilder builder(file.get());
  Status st;
  mem.ForEach([&builder, &st](const SkipList::Entry& e) {
    if (!st.ok()) return;
    st = builder.Add(e.key, e.kind, e.value);
  });
  if (st.ok()) st = builder.Finish();
  if (st.ok()) st = file->Close();
  if (!st.ok()) {
    IgnoreStatus(file->Close());
    IgnoreStatus(env_->Delete(path));  // the number is burned, not the space
    return st;
  }
  disk_writes_.fetch_add(builder.blocks_written() + 3,
                         std::memory_order_relaxed);
  meta->number = number;
  meta->smallest = builder.smallest();
  meta->largest = builder.largest();
  meta->file_size = builder.file_size();
  meta->entries = builder.entries();
  meta->live =
      std::make_shared<LiveFile>(env_, table_cache_.get(), path, number);
  return Status::OK();
}

Status LsmManager::DoFlush() {
  Imm imm;
  {
    ReaderMutexLock g(mu_);
    if (imms_.empty()) return Status::OK();
    imm = imms_.front();
  }
  FileMeta meta;
  bool wrote = false;
  if (!imm.mem->empty()) {
    // On failure the WAL stays queued: replay at the next open recovers
    // every acked commit, and TryWork retries after a pause.
    LABFLOW_RETURN_IF_ERROR(WriteMemtableSst(*imm.mem, &meta));
    wrote = true;
  }
  Status st;
  {
    WriterMutexLock g(mu_);
    auto nv = std::make_shared<LsmVersion>(*version_);
    if (nv->levels.empty()) nv->levels.resize(1);
    if (wrote) nv->levels[0].push_back(meta);
    version_ = std::move(nv);
    imms_.pop_front();
    RefreshPressureLocked();
    st = PersistManifestLocked();
  }
  if (st.ok()) {
    // The manifest no longer lists this WAL; now it may go.
    IgnoreStatus(env_->Delete(WalPath(imm.wal_number)));
  }
  // On manifest failure the WAL survives; replay is idempotent (last write
  // wins, and the flushed table holds the same data it would re-apply).
  return st;
}

bool LsmManager::PickCompactionLocked(Compaction* c) {
  const auto& levels = version_->levels;
  if (levels.empty()) return false;
  if (levels[0].size() >= options_.l0_compact_trigger) {
    c->level = 0;
    c->inputs_lo = levels[0];
    uint64_t lo = UINT64_MAX;
    uint64_t hi = 0;
    for (const FileMeta& m : c->inputs_lo) {
      lo = std::min(lo, m.smallest);
      hi = std::max(hi, m.largest);
    }
    c->inputs_hi.clear();
    if (levels.size() > 1) {
      for (const FileMeta& m : levels[1]) {
        if (m.largest >= lo && m.smallest <= hi) c->inputs_hi.push_back(m);
      }
    }
    return true;
  }
  for (size_t l = 1; l + 0 < levels.size(); ++l) {
    uint64_t bytes = 0;
    for (const FileMeta& m : levels[l]) bytes += m.file_size;
    if (bytes <= MaxBytesForLevel(l)) continue;
    c->level = static_cast<int>(l);
    // Sweep low-to-high: the first (lowest-keyed) file each round.
    c->inputs_lo.assign(1, levels[l].front());
    c->inputs_hi.clear();
    if (levels.size() > l + 1) {
      const FileMeta& in = c->inputs_lo[0];
      for (const FileMeta& m : levels[l + 1]) {
        if (m.largest >= in.smallest && m.smallest <= in.largest) {
          c->inputs_hi.push_back(m);
        }
      }
    }
    return true;
  }
  return false;
}

uint64_t LsmManager::MaxBytesForLevel(size_t level) const {
  uint64_t bytes = options_.level_base_bytes;
  for (size_t l = 1; l < level; ++l) bytes *= options_.level_multiplier;
  return bytes;
}

Status LsmManager::DoCompaction(const Compaction& c) {
  std::shared_ptr<const LsmVersion> v;
  {
    ReaderMutexLock g(mu_);
    v = version_;
  }
  const size_t out_level = static_cast<size_t>(c.level) + 1;
  // True when no level below the output could still hold an older value for
  // `key` — then its tombstone has nothing left to shadow and may drop.
  auto bottommost = [&v, out_level](uint64_t key) {
    for (size_t l = out_level + 1; l < v->levels.size(); ++l) {
      const auto& level = v->levels[l];
      auto it = std::lower_bound(
          level.begin(), level.end(), key,
          [](const FileMeta& m, uint64_t k) { return m.largest < k; });
      if (it != level.end() && key >= it->smallest) return false;
    }
    return true;
  };

  // Merge in age order: deeper/older inputs first, newer overwrite.
  std::map<uint64_t, std::pair<EntryKind, std::string>> merged;
  auto ingest = [this, &merged](const FileMeta& m) -> Status {
    LABFLOW_ASSIGN_OR_RETURN(
        std::shared_ptr<SstReader> table,
        table_cache_->GetTable(m.number, SstPath(m.number)));
    LABFLOW_RETURN_IF_ERROR(table->ScanAll(
        [&merged](uint64_t key, EntryKind kind, std::string_view value) {
          merged[key] = {kind, std::string(value)};
          return Status::OK();
        }));
    read_stats_.disk_reads.fetch_add(table->blocks(),
                                     std::memory_order_relaxed);
    compaction_bytes_read_.fetch_add(m.file_size, std::memory_order_relaxed);
    return Status::OK();
  };
  for (const FileMeta& m : c.inputs_hi) LABFLOW_RETURN_IF_ERROR(ingest(m));
  for (const FileMeta& m : c.inputs_lo) LABFLOW_RETURN_IF_ERROR(ingest(m));

  // Write the merged run, split at the target file size.
  std::vector<FileMeta> outputs;
  std::unique_ptr<storage::File> file;
  std::unique_ptr<SstBuilder> builder;
  uint64_t out_number = 0;
  auto finish_output = [&]() -> Status {
    if (builder == nullptr) return Status::OK();
    LABFLOW_RETURN_IF_ERROR(builder->Finish());
    LABFLOW_RETURN_IF_ERROR(file->Close());
    FileMeta m;
    m.number = out_number;
    m.smallest = builder->smallest();
    m.largest = builder->largest();
    m.file_size = builder->file_size();
    m.entries = builder->entries();
    m.live = std::make_shared<LiveFile>(env_, table_cache_.get(),
                                        SstPath(out_number), out_number);
    outputs.push_back(m);
    disk_writes_.fetch_add(builder->blocks_written() + 3,
                           std::memory_order_relaxed);
    compaction_bytes_written_.fetch_add(m.file_size,
                                        std::memory_order_relaxed);
    builder.reset();
    file.reset();
    return Status::OK();
  };
  auto abandon = [&]() {
    if (file != nullptr) IgnoreStatus(file->Close());
    builder.reset();
    file.reset();
    if (out_number != 0) IgnoreStatus(env_->Delete(SstPath(out_number)));
    for (const FileMeta& m : outputs) {
      IgnoreStatus(env_->Delete(SstPath(m.number)));
    }
  };
  Status st;
  for (const auto& [key, entry] : merged) {
    if (entry.first == EntryKind::kTombstone && bottommost(key)) continue;
    if (builder == nullptr) {
      out_number = next_file_number_.fetch_add(1, std::memory_order_relaxed);
      auto opened = env_->OpenFile(SstPath(out_number), /*truncate=*/true);
      if (!opened.ok()) {
        st = opened.status();
        break;
      }
      file = std::move(opened.value());
      builder = std::make_unique<SstBuilder>(file.get());
    }
    st = builder->Add(key, entry.first, entry.second);
    if (!st.ok()) break;
    if (builder->file_size() + kBlockBytes >= options_.target_file_bytes) {
      st = finish_output();
      if (!st.ok()) break;
      out_number = 0;
    }
  }
  if (st.ok()) st = finish_output();
  if (!st.ok()) {
    abandon();
    return st;
  }

  // Install: swap inputs for outputs, then persist. Input files are deleted
  // only after the manifest that stops referencing them is durable; on a
  // persist failure they stay on disk and the outputs become orphans for
  // recovery to GC.
  {
    WriterMutexLock g(mu_);
    auto nv = std::make_shared<LsmVersion>(*version_);
    auto remove_from = [&nv](size_t level, const std::vector<FileMeta>& gone) {
      if (level >= nv->levels.size()) return;
      auto& files = nv->levels[level];
      files.erase(std::remove_if(files.begin(), files.end(),
                                 [&gone](const FileMeta& m) {
                                   for (const FileMeta& g : gone) {
                                     if (g.number == m.number) return true;
                                   }
                                   return false;
                                 }),
                  files.end());
    };
    remove_from(static_cast<size_t>(c.level), c.inputs_lo);
    remove_from(out_level, c.inputs_hi);
    if (nv->levels.size() <= out_level) nv->levels.resize(out_level + 1);
    auto& dst = nv->levels[out_level];
    dst.insert(dst.end(), outputs.begin(), outputs.end());
    std::sort(dst.begin(), dst.end(),
              [](const FileMeta& a, const FileMeta& b) {
                return a.smallest < b.smallest;
              });
    version_ = std::move(nv);
    RefreshPressureLocked();
    st = PersistManifestLocked();
  }
  if (!st.ok()) return st;
  // Retire the inputs: readers still searching an older version keep the
  // files alive; the last reference (often `v` at this function's return)
  // performs the delete.
  for (const FileMeta& m : c.inputs_lo) m.live->MarkObsolete();
  for (const FileMeta& m : c.inputs_hi) m.live->MarkObsolete();
  return Status::OK();
}

void LsmManager::RefreshPressureLocked() {
  imm_count_.store(imms_.size(), std::memory_order_relaxed);
  l0_files_.store(version_->levels.empty() ? 0 : version_->levels[0].size(),
                  std::memory_order_relaxed);
}

// ---- catalog / lifecycle ----------------------------------------------------

Result<uint16_t> LsmManager::CreateSegment(std::string_view name) {
  (void)name;
  return static_cast<uint16_t>(0);
}

Status LsmManager::SetRoot(ObjectId root) {
  WriteBatch batch;
  batch.root = root;
  return CommitBatch(0, batch);
}

Result<ObjectId> LsmManager::GetRoot() {
  ReaderMutexLock g(mu_);
  if (closed_) return Status::InvalidArgument("lsm: manager closed");
  return root_;
}

Status LsmManager::Checkpoint() {
  MutexLock c(commit_mu_);
  bool need_rotate;
  {
    WriterMutexLock g(mu_);
    if (closed_) return Status::InvalidArgument("lsm: manager closed");
    need_rotate = !active_->empty();
  }
  // commit_mu_ keeps the active memtable frozen across the gap.
  if (need_rotate) {
    LABFLOW_RETURN_IF_ERROR(Rotate());
  }
  SignalBg();
  {
    // Drain the immutable queue. The workers only need mu_, which we do not
    // hold; commit_mu_ keeps new commits out while we wait.
    MutexLock g(bg_mu_);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (!stop_ && imm_count_.load(std::memory_order_relaxed) > 0) {
      if (bg_cv_.WaitUntil(bg_mu_, deadline) == std::cv_status::timeout &&
          imm_count_.load(std::memory_order_relaxed) > 0) {
        return Status::Unavailable("lsm: checkpoint timed out draining flush");
      }
    }
    if (stop_ && imm_count_.load(std::memory_order_relaxed) > 0) {
      return Status::Unavailable("lsm: background workers stopped");
    }
  }
  // Everything is in SSTables; the active WAL is empty of unflushed state.
  // Truncate clears any sticky error: with the tree durable, no ghost group
  // can survive (same healing contract as OStore's checkpoint).
  if (wal_ != nullptr) {
    LABFLOW_RETURN_IF_ERROR(wal_->Truncate());
  } else {
    const uint64_t n =
        next_file_number_.fetch_add(1, std::memory_order_relaxed);
    auto fresh = std::make_unique<ostore::Wal>();
    LABFLOW_RETURN_IF_ERROR(fresh->Open(env_, WalPath(n)));
    wal_ = std::move(fresh);
    WriterMutexLock g(mu_);
    active_wal_number_ = n;
  }
  degraded_ = Status::OK();
  WriterMutexLock g(mu_);
  return PersistManifestLocked();
}

Status LsmManager::Close() {
  {
    ReaderMutexLock g(mu_);
    if (closed_) return Status::InvalidArgument("lsm: manager closed");
  }
  Status st = Checkpoint();
  StopWorkers();
  DropActiveTxns();
  {
    MutexLock c(commit_mu_);
    if (wal_ != nullptr) {
      Status cst = wal_->Close();
      if (st.ok()) st = cst;
      wal_.reset();
    }
  }
  WriterMutexLock g(mu_);
  closed_ = true;
  return st;
}

void LsmManager::SimulateCrash() {
  StopWorkers();
  DropActiveTxns();
  {
    MutexLock c(commit_mu_);
    wal_.reset();  // closes the fd without syncing
  }
  WriterMutexLock g(mu_);
  closed_ = true;
}

StorageStats LsmManager::stats() const {
  StorageStats s;
  s.disk_reads = read_stats_.disk_reads.load(std::memory_order_relaxed);
  s.cache_hits = read_stats_.cache_hits.load(std::memory_order_relaxed);
  s.checksum_failures =
      read_stats_.checksum_failures.load(std::memory_order_relaxed);
  s.disk_writes = disk_writes_.load(std::memory_order_relaxed);
  s.txn_commits = commits_.load(std::memory_order_relaxed);
  s.txn_aborts = aborts_.load(std::memory_order_relaxed);
  s.txn_retries = txn_retry_count();
  s.live_objects = live_objects_.load(std::memory_order_relaxed);
  s.lsm_bloom_checks =
      read_stats_.bloom_checks.load(std::memory_order_relaxed);
  s.lsm_bloom_hits = read_stats_.bloom_hits.load(std::memory_order_relaxed);
  s.lsm_write_throttles = write_throttles_.load(std::memory_order_relaxed);
  s.lsm_compaction_bytes_read =
      compaction_bytes_read_.load(std::memory_order_relaxed);
  s.lsm_compaction_bytes_written =
      compaction_bytes_written_.load(std::memory_order_relaxed);
  {
    MutexLock c(commit_mu_);
    ostore::Wal::GroupStats gs = retired_wal_stats_;
    if (wal_ != nullptr) {
      const ostore::Wal::GroupStats live = wal_->group_stats();
      gs.frames += live.frames;
      gs.writes += live.writes;
      gs.syncs += live.syncs;
      s.wal_bytes += wal_->SizeBytes();
    }
    s.wal_frames = gs.frames;
    s.wal_group_writes = gs.writes;
    s.wal_group_syncs = gs.syncs;
  }
  ReaderMutexLock g(mu_);
  if (active_ != nullptr) s.lsm_memtable_bytes += active_->bytes();
  for (const Imm& imm : imms_) {
    s.lsm_memtable_bytes += imm.mem->bytes();
    s.wal_bytes += imm.wal_bytes;
  }
  if (version_ != nullptr) {
    for (const auto& level : version_->levels) {
      s.lsm_level_files.push_back(level.size());
      for (const FileMeta& m : level) s.db_size_bytes += m.file_size;
    }
  }
  return s;
}

}  // namespace labflow::lsm
