#include "lsm/table_cache.h"

#include <time.h>

#include <utility>

#include "common/status_macros.h"

namespace labflow::lsm {

namespace {

/// Models 1996-era fault latency on block misses, like the paged heap's
/// fault_delay_us. Applied outside every lock: a slow disk, not a slow
/// kernel.
void SimulateFaultDelay(int64_t us) {
  if (us <= 0) return;
  timespec ts;
  ts.tv_sec = us / 1000000;
  ts.tv_nsec = (us % 1000000) * 1000;
  nanosleep(&ts, nullptr);
}

}  // namespace

// ---- BlockCache -------------------------------------------------------------

BlockCache::BlockCache(size_t byte_budget)
    : shard_budget_(byte_budget / kShards + 1) {}

std::shared_ptr<const std::string> BlockCache::Lookup(uint64_t file_number,
                                                      uint64_t offset) {
  const Key key{file_number, offset};
  Shard& shard = ShardFor(key);
  MutexLock g(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

void BlockCache::Insert(uint64_t file_number, uint64_t offset,
                        std::shared_ptr<const std::string> block) {
  const Key key{file_number, offset};
  const size_t size = block->size();
  Shard& shard = ShardFor(key);
  MutexLock g(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // A racing reader inserted the same block first; keep theirs.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, std::move(block));
  shard.index[key] = shard.lru.begin();
  shard.bytes += size;
  while (shard.bytes > shard_budget_ && shard.lru.size() > 1) {
    auto& victim = shard.lru.back();
    shard.bytes -= victim.second->size();
    shard.index.erase(victim.first);
    shard.lru.pop_back();
  }
}

// ---- TableCache -------------------------------------------------------------

TableCache::TableCache(storage::Env* env, size_t max_open,
                       size_t block_cache_bytes, LsmReadStats* stats,
                       int64_t fault_delay_us)
    : env_(env),
      max_open_(max_open == 0 ? 1 : max_open),
      stats_(stats),
      fault_delay_us_(fault_delay_us),
      block_cache_(block_cache_bytes) {}

Result<std::shared_ptr<SstReader>> TableCache::GetTable(
    uint64_t number, const std::string& path) {
  {
    MutexLock g(mu_);
    auto it = index_.find(number);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->second;
    }
  }
  // Miss: open outside the lock (footer + index + filter reads).
  LABFLOW_ASSIGN_OR_RETURN(std::unique_ptr<storage::File> file,
                           env_->OpenFile(path, /*truncate=*/false));
  auto opened = SstReader::Open(std::move(file));
  if (!opened.ok()) {
    if (opened.status().IsCorruption()) {
      stats_->checksum_failures.fetch_add(1, std::memory_order_relaxed);
    }
    return opened.status();
  }
  stats_->disk_reads.fetch_add(3, std::memory_order_relaxed);
  std::shared_ptr<SstReader> reader(opened.value().release());
  MutexLock g(mu_);
  auto it = index_.find(number);
  if (it != index_.end()) {
    // Lost the open race; the first opener's handle wins.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }
  lru_.emplace_front(number, reader);
  index_[number] = lru_.begin();
  while (lru_.size() > max_open_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
  return reader;
}

Status TableCache::Get(uint64_t number, const std::string& path, uint64_t key,
                       bool* found, EntryKind* kind, std::string* value) {
  *found = false;
  LABFLOW_ASSIGN_OR_RETURN(std::shared_ptr<SstReader> table,
                           GetTable(number, path));
  stats_->bloom_checks.fetch_add(1, std::memory_order_relaxed);
  if (!table->MayContain(key)) {
    stats_->bloom_hits.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  BlockHandle handle;
  if (!table->FindBlock(key, &handle)) return Status::OK();

  std::shared_ptr<const std::string> block =
      block_cache_.Lookup(number, handle.offset);
  if (block != nullptr) {
    stats_->cache_hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    auto fresh = std::make_shared<std::string>();
    Status st = table->ReadBlock(handle, fresh.get());
    if (!st.ok()) {
      if (st.IsCorruption()) {
        stats_->checksum_failures.fetch_add(1, std::memory_order_relaxed);
      }
      return st;
    }
    stats_->disk_reads.fetch_add(1, std::memory_order_relaxed);
    SimulateFaultDelay(fault_delay_us_);
    block_cache_.Insert(number, handle.offset, fresh);
    block = std::move(fresh);
  }
  return SstReader::SearchBlock(*block, key, found, kind, value);
}

void TableCache::Evict(uint64_t number) {
  MutexLock g(mu_);
  auto it = index_.find(number);
  if (it == index_.end()) return;
  lru_.erase(it->second);
  index_.erase(it);
}

}  // namespace labflow::lsm
