#ifndef LABFLOW_LSM_SKIPLIST_H_
#define LABFLOW_LSM_SKIPLIST_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace labflow::lsm {

/// What a memtable / SSTable entry means. A tombstone records a Free: it
/// masks any older Put for the key in deeper levels until compaction can
/// prove no such Put remains and drop it.
enum class EntryKind : uint8_t {
  kPut = 0,
  kTombstone = 1,
};

/// Skiplist memtable core: uint64 keys (ObjectId.raw) in ascending order,
/// expected O(log n) insert and point lookup, one allocation per node.
///
/// Thread safety: none — by design. The LSM manager applies writes under
/// its state lock held exclusive and searches under it shared, so the list
/// needs no internal synchronization and is trivially TSan-clean; once a
/// memtable is rotated to the immutable queue it is never written again and
/// may be read without any lock.
class SkipList {
 public:
  struct Entry {
    uint64_t key = 0;
    EntryKind kind = EntryKind::kPut;
    std::string value;
  };

  SkipList() {
    for (int i = 0; i < kMaxHeight; ++i) head_.next[i] = nullptr;
  }

  ~SkipList() {
    Node* n = head_.next[0];
    while (n != nullptr) {
      Node* next = n->next[0];
      delete n;
      n = next;
    }
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Inserts or overwrites `key`. Last write wins, as in the WAL: replaying
  /// the log into a fresh list reproduces exactly this state.
  void Insert(uint64_t key, EntryKind kind, std::string value) {
    Node* update[kMaxHeight];
    Node* x = FindGreaterOrEqual(key, update);
    if (x != nullptr && x->entry.key == key) {
      bytes_ += value.size();
      bytes_ -= x->entry.value.size();
      x->entry.kind = kind;
      x->entry.value = std::move(value);
      return;
    }
    int h = RandomHeight();
    if (h > height_) {
      for (int i = height_; i < h; ++i) update[i] = &head_;
      height_ = h;
    }
    Node* n = new Node(h);
    n->entry.key = key;
    n->entry.kind = kind;
    n->entry.value = std::move(value);
    for (int i = 0; i < h; ++i) {
      n->next[i] = update[i]->next[i];
      update[i]->next[i] = n;
    }
    ++count_;
    bytes_ += kPerEntryOverhead + n->entry.value.size();
  }

  /// The entry for `key`, or nullptr. The pointer stays valid until the
  /// next Insert of the same key (immutable memtables: forever).
  const Entry* Find(uint64_t key) const {
    const Node* x = &head_;
    for (int i = height_ - 1; i >= 0; --i) {
      while (x->next[i] != nullptr && x->next[i]->entry.key < key) {
        x = x->next[i];
      }
    }
    const Node* n = x->next[0];
    if (n != nullptr && n->entry.key == key) return &n->entry;
    return nullptr;
  }

  /// Visits every entry in ascending key order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Node* n = head_.next[0]; n != nullptr; n = n->next[0]) {
      fn(n->entry);
    }
  }

  size_t entries() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Approximate memory footprint: value bytes plus a fixed per-entry
  /// charge. Drives memtable rotation, so it only needs to be monotone and
  /// roughly proportional to real usage.
  size_t bytes() const { return bytes_; }

 private:
  static constexpr int kMaxHeight = 12;
  static constexpr size_t kPerEntryOverhead = 64;  // node + key + pointers

  struct Node {
    explicit Node(int h) : height(h) {
      for (int i = 0; i < height; ++i) next[i] = nullptr;
    }
    Entry entry;
    int height;
    Node* next[kMaxHeight];
  };

  /// First node with key >= `key`; fills `update` with the rightmost node
  /// before it on every list level (the classic insert splice).
  Node* FindGreaterOrEqual(uint64_t key, Node** update) {
    Node* x = &head_;
    for (int i = kMaxHeight - 1; i >= 0; --i) {
      while (x->next[i] != nullptr && x->next[i]->entry.key < key) {
        x = x->next[i];
      }
      update[i] = x;
    }
    return x->next[0];
  }

  /// Geometric height with p = 1/4, from a per-list xorshift stream — no
  /// global RNG, so two lists filled with the same keys are identical.
  int RandomHeight() {
    rng_state_ ^= rng_state_ << 13;
    rng_state_ ^= rng_state_ >> 7;
    rng_state_ ^= rng_state_ << 17;
    int h = 1;
    uint64_t v = rng_state_;
    while (h < kMaxHeight && (v & 3) == 0) {
      ++h;
      v >>= 2;
    }
    return h;
  }

  Node head_{kMaxHeight};
  int height_ = 1;
  size_t count_ = 0;
  size_t bytes_ = 0;
  uint64_t rng_state_ = 0x9E3779B97F4A7C15ull;
};

}  // namespace labflow::lsm

#endif  // LABFLOW_LSM_SKIPLIST_H_
