#ifndef LABFLOW_LSM_LSM_MANAGER_H_
#define LABFLOW_LSM_LSM_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "lsm/skiplist.h"
#include "lsm/table_cache.h"
#include "ostore/wal.h"
#include "storage/env.h"
#include "storage/storage_manager.h"

namespace labflow::lsm {

/// Tuning and placement for the LSM history store. Defaults suit the
/// Table 2 benchmark; tests shrink memtable_bytes and the L0 triggers to
/// force rotation/flush/compaction on tiny data.
struct LsmOptions {
  std::string path;               ///< prefix: files are <path>.lsm-*
  storage::Env* env = nullptr;    ///< nullptr = the real filesystem
  bool truncate = true;
  /// fdatasync every commit group (force-at-commit durability). Off for
  /// the loading benchmark, like the other disk versions; the crash tests
  /// turn it on because only acked-and-synced commits are promised.
  bool sync_commit = false;
  size_t memtable_bytes = 4u << 20;    ///< rotation threshold
  size_t block_cache_bytes = 16u << 20;
  size_t max_open_tables = 256;
  int64_t fault_delay_us = 0;          ///< per block miss, like the heap's
  /// Leveling: L0 compacts at l0_compact_trigger files; commits slow down
  /// (1ms each) at l0_slowdown_trigger and park at l0_stop_trigger —
  /// backpressure first, hard stop only as the backstop. Level n > 0 holds
  /// level_base_bytes * level_multiplier^(n-1) before it spills.
  size_t l0_compact_trigger = 4;
  size_t l0_slowdown_trigger = 8;
  size_t l0_stop_trigger = 16;
  uint64_t level_base_bytes = 8u << 20;
  uint64_t level_multiplier = 10;
  uint64_t target_file_bytes = 2u << 20;
  int background_threads = 2;          ///< flush + compaction pool
};

/// Owns one SSTable's on-disk lifetime. Every LsmVersion that lists the
/// table shares the same LiveFile; compaction marks retired inputs
/// obsolete instead of deleting them eagerly, and the physical delete runs
/// when the last referencing version dies — so a reader searching an old
/// version snapshot never has a file unlinked out from under it.
class LiveFile {
 public:
  LiveFile(storage::Env* env, TableCache* cache, std::string path,
           uint64_t number)
      : env_(env), cache_(cache), path_(std::move(path)), number_(number) {}
  LiveFile(const LiveFile&) = delete;
  LiveFile& operator=(const LiveFile&) = delete;
  /// Evicts the table handle and unlinks the file iff marked obsolete; a
  /// still-referenced table (shutdown, crash simulation) is left on disk
  /// for the manifest to find again.
  ~LiveFile();

  /// Arms deletion. Call only once the manifest that stops referencing the
  /// table is durable — a crash before the last reference drops then
  /// leaves an orphan for recovery GC, never a dangling manifest entry.
  void MarkObsolete() { obsolete_.store(true, std::memory_order_release); }

 private:
  storage::Env* const env_;
  TableCache* const cache_;
  const std::string path_;
  const uint64_t number_;
  std::atomic<bool> obsolete_{false};
};

/// One live SSTable. L0 files may overlap (each is a flushed memtable,
/// ordered by file number = age); levels >= 1 are sorted and disjoint.
struct FileMeta {
  uint64_t number = 0;
  uint64_t smallest = 0;
  uint64_t largest = 0;
  uint64_t file_size = 0;
  uint64_t entries = 0;
  /// Shared on-disk ownership (not serialized): all version snapshots
  /// listing this table hold the same LiveFile.
  std::shared_ptr<LiveFile> live;
};

/// Immutable snapshot of the on-disk tree. Readers grab the shared_ptr
/// under the state lock and then search entirely lock-free; installs build
/// a new version and swap the pointer (copy-on-write).
struct LsmVersion {
  std::vector<std::vector<FileMeta>> levels;
};

/// Log-structured merge storage manager: the "LsmStore" server version.
///
/// Write path: a transaction buffers its writes in a private batch
/// (read-your-writes overlay); commit serializes the batch, appends it to
/// the WAL via ostore::Wal group commit, and applies it to the active
/// skiplist memtable — so the memtable only ever holds committed data and
/// a flush can never persist an uncommitted write. Abort simply discards
/// the batch: real rollback, unlike Texas/Mm.
///
/// Background: a full memtable rotates onto the immutable queue with its
/// WAL and a fresh memtable+WAL take over; worker threads flush immutables
/// to L0 SSTables and run leveled compaction. Every state transition is
/// recorded in a dual-slot checksummed manifest before the files it
/// retires are deleted, so recovery always finds a consistent tree and
/// GC's orphans from a crash mid-transition.
///
/// Concurrency/isolation contract: like Mm, concurrent transactions
/// interleave freely (no locking between handles); commits are atomic and
/// WAL-ordered. The paper's benchmark stream never relies on inter-
/// transaction isolation, and the cross-version checksum gate holds.
///
/// Lock order (see common/lock_rank.h): commit_mu_ (kLsmCommit) >
/// bg_mu_ (kLsmBg) > Wal::mu_ (kWalQueue) > mu_ (kLsmState) >
/// TableCache::mu_ > BlockCache::Shard::mu.
class LsmManager : public storage::StorageManager {
 public:
  static Result<std::unique_ptr<LsmManager>> Open(const LsmOptions& options);
  ~LsmManager() override;

  std::string_view name() const override { return "LsmStore"; }

  /// No placement control: the log structure itself is the placement
  /// policy (allocation order == recency == level depth).
  Result<uint16_t> CreateSegment(std::string_view name) override;

  Status SetRoot(storage::ObjectId root) override;
  Result<storage::ObjectId> GetRoot() override;
  Status Checkpoint() override;
  Status Close() override;
  storage::StorageStats stats() const override;

  /// Crash-test hook (parallels PagedManagerBase::SimulateCrash): stops the
  /// background threads and abandons all in-memory state without flushing
  /// or checkpointing. Pair with FaultInjectionEnv::DropUnsynced and a
  /// fresh Open to exercise recovery.
  void SimulateCrash();

 protected:
  std::unique_ptr<storage::Txn> CreateTxn(uint64_t id) override;
  Status CommitTxn(storage::Txn* txn) override;
  Status AbortTxn(storage::Txn* txn) override;
  void OnTxnDrop(storage::Txn* txn) override;

  Result<storage::ObjectId> DoAllocate(storage::Txn* txn,
                                       std::string_view data,
                                       const storage::AllocHint& hint) override;
  Result<std::string> DoRead(storage::Txn* txn, storage::ObjectId id) override;
  Status DoUpdate(storage::Txn* txn, storage::ObjectId id,
                  std::string_view data) override;
  Status DoFree(storage::Txn* txn, storage::ObjectId id) override;
  Status DoScanAll(storage::Txn* txn,
                   const std::function<Status(storage::ObjectId,
                                              std::string_view)>& fn) override;

 private:
  /// A transaction's buffered writes: key -> value (put) or nullopt
  /// (tombstone). `root` carries a SetRoot through the same commit path.
  struct WriteBatch {
    std::map<uint64_t, std::optional<std::string>> ops;
    std::optional<storage::ObjectId> root;
    int64_t live_delta = 0;  ///< allocations minus frees, for live_objects
    bool empty() const { return ops.empty() && !root.has_value(); }
  };

  class LsmTxn;

  struct Imm {
    std::shared_ptr<SkipList> mem;
    uint64_t wal_number = 0;
    uint64_t wal_bytes = 0;  ///< size at rotation, for stats()
  };

  struct Compaction {
    int level = 0;  ///< inputs_lo's level; outputs land on level + 1
    std::vector<FileMeta> inputs_lo;
    std::vector<FileMeta> inputs_hi;
  };

  explicit LsmManager(const LsmOptions& options);

  std::string SstPath(uint64_t number) const;
  std::string WalPath(uint64_t number) const;
  std::string ManifestPath(int slot) const;

  // -- open-time recovery (single-threaded; workers not yet started) --------
  Status Recover() LABFLOW_EXCLUDES(commit_mu_, mu_);
  /// Loads the newer of the two manifest slots; *found = false when neither
  /// exists (fresh database). *wals gets the WAL numbers to replay.
  Status LoadManifest(bool* found, std::vector<uint64_t>* wals)
      LABFLOW_REQUIRES(mu_);
  /// `truncate` open: deletes every data file the manifest could reference
  /// (the manifest slots stay; the next persist supersedes them by epoch).
  Status DeleteAllFiles() LABFLOW_REQUIRES(mu_);
  /// Deletes files in [1, next_file_number_) referenced by neither the
  /// recovered version nor the WAL replay list (crash mid-transition).
  void CollectOrphans(const std::vector<uint64_t>& wal_numbers)
      LABFLOW_REQUIRES(mu_);
  /// Rebuilds the crashed memtable into active_ by replaying the listed
  /// WALs in order.
  Status ReplayWals(const std::vector<uint64_t>& wal_numbers)
      LABFLOW_REQUIRES(mu_);
  /// Flushes the replayed memtable straight to L0 (synchronously, so the
  /// recovered WALs can be retired before the store goes live).
  Status FlushReplayLocked() LABFLOW_REQUIRES(mu_);
  /// Opens a fresh active WAL + memtable and persists a clean manifest.
  Status BootstrapFresh() LABFLOW_REQUIRES(commit_mu_, mu_);

  // -- commit pipeline -------------------------------------------------------
  Status CommitBatch(uint64_t txn_id, const WriteBatch& batch);
  std::string EncodeBatch(const WriteBatch& batch) const;
  /// Parks/slows the committer while flush or compaction is behind. Called
  /// with no locks held.
  void Backpressure();
  /// Moves the active memtable to the immutable queue and starts a fresh
  /// memtable + WAL + manifest epoch. Holds commit_mu_ only: the WAL
  /// hand-off (Wal::mu_ ranks below kLsmState) and the new log's file I/O
  /// run before the state lock; mu_ is taken just for the swap.
  Status Rotate() LABFLOW_REQUIRES(commit_mu_) LABFLOW_EXCLUDES(mu_);

  // -- manifest --------------------------------------------------------------
  Status PersistManifestLocked() LABFLOW_REQUIRES(mu_);

  // -- background work -------------------------------------------------------
  void StartWorkers();
  void StopWorkers();
  void SignalBg();
  void BgWorker();
  /// Runs at most one flush or compaction; true when it did something.
  bool TryWork();
  Status DoFlush();
  bool PickCompactionLocked(Compaction* c) LABFLOW_REQUIRES(mu_);
  Status DoCompaction(const Compaction& c);
  /// Writes one memtable out as an SSTable (no locks; pure file I/O).
  Status WriteMemtableSst(const SkipList& mem, FileMeta* meta);
  uint64_t MaxBytesForLevel(size_t level) const;
  /// Updates the backpressure mirrors (imm_count_, l0_files_) from state.
  void RefreshPressureLocked() LABFLOW_REQUIRES(mu_);

  // -- read path -------------------------------------------------------------
  /// Committed-state point read (no transaction overlay).
  Result<std::string> GetCommitted(uint64_t key) const;
  /// Materializes the full committed key space (ScanAll / recovery count).
  Status MergeAll(const WriteBatch* overlay,
                  std::map<uint64_t, std::string>* out) const;

  const LsmOptions options_;     // NOLINT(guarded-by-coverage): const config
  storage::Env* const env_;
  std::unique_ptr<TableCache> table_cache_;  // NOLINT(guarded-by-coverage): internally locked

  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> next_file_number_{1};

  // Monotonic counters (relaxed; see StorageStats contract). `mutable`:
  // const reads still count their block fetches.
  mutable LsmReadStats read_stats_;  // NOLINT(guarded-by-coverage): atomics inside
  std::atomic<uint64_t> disk_writes_{0};
  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> aborts_{0};
  std::atomic<uint64_t> live_objects_{0};
  std::atomic<uint64_t> write_throttles_{0};
  std::atomic<uint64_t> compaction_bytes_read_{0};
  std::atomic<uint64_t> compaction_bytes_written_{0};

  /// Backpressure mirrors of state under mu_, readable without it (the
  /// waiter in Backpressure() holds bg_mu_, which ranks above mu_ and so
  /// must not acquire it).
  std::atomic<size_t> imm_count_{0};
  std::atomic<size_t> l0_files_{0};

  /// Serializes committers: WAL append order == memtable apply order, so
  /// recovery replay reconstructs exactly the memtable it crashed with.
  /// Rank kLsmCommit — held across the WAL append and the state apply.
  mutable Mutex commit_mu_{LockRank::kLsmCommit, "lsm.commit"};
  std::unique_ptr<ostore::Wal> wal_ LABFLOW_GUARDED_BY(commit_mu_);
  Status degraded_ LABFLOW_GUARDED_BY(commit_mu_);  ///< sticky WAL failure
  /// Closed-out WAL telemetry accumulated at rotation (the live WAL's own
  /// counters are added on top in stats()).
  ostore::Wal::GroupStats retired_wal_stats_ LABFLOW_GUARDED_BY(commit_mu_);

  /// The LSM tree state. Shared holds for point reads (memtable search +
  /// version snapshot, no I/O inside); exclusive for batch apply, rotation
  /// and version installs. Rank kLsmState.
  mutable SharedMutex mu_{LockRank::kLsmState, "lsm.state"};
  std::shared_ptr<SkipList> active_ LABFLOW_GUARDED_BY(mu_);
  uint64_t active_wal_number_ LABFLOW_GUARDED_BY(mu_) = 0;
  std::deque<Imm> imms_ LABFLOW_GUARDED_BY(mu_);  // front = oldest
  std::shared_ptr<const LsmVersion> version_ LABFLOW_GUARDED_BY(mu_);
  storage::ObjectId root_ LABFLOW_GUARDED_BY(mu_);
  uint64_t manifest_epoch_ LABFLOW_GUARDED_BY(mu_) = 0;
  bool flush_running_ LABFLOW_GUARDED_BY(mu_) = false;
  bool compaction_running_ LABFLOW_GUARDED_BY(mu_) = false;
  bool closed_ LABFLOW_GUARDED_BY(mu_) = false;

  /// Background scheduling + backpressure parking. Rank kLsmBg: above
  /// Wal/state so a committer holding commit_mu_ may signal it, and the
  /// worker releases it before touching state.
  mutable Mutex bg_mu_{LockRank::kLsmBg, "lsm.bg"};
  CondVar bg_cv_;
  bool stop_ LABFLOW_GUARDED_BY(bg_mu_) = false;
  int work_signals_ LABFLOW_GUARDED_BY(bg_mu_) = 0;

  std::vector<std::thread> workers_;  // NOLINT(guarded-by-coverage): joined in StopWorkers
};

}  // namespace labflow::lsm

#endif  // LABFLOW_LSM_LSM_MANAGER_H_
