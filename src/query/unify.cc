#include "query/unify.h"

namespace labflow::query {

Term Bindings::Walk(Term t) const {
  while (t.is_var()) {
    auto it = map_.find(t.name());
    if (it == map_.end()) return t;
    t = it->second;
  }
  return t;
}

Term Bindings::Resolve(const Term& t) const {
  Term w = Walk(t);
  if (!w.is_compound()) return w;
  std::vector<Term> args;
  args.reserve(w.arity());
  for (const Term& a : w.args()) args.push_back(Resolve(a));
  return Term::Make(w.name(), std::move(args));
}

void Bindings::Bind(const std::string& var, Term t) {
  map_.emplace(var, std::move(t));
  trail_.push_back(var);
}

const Term* Bindings::Lookup(const std::string& var) const {
  auto it = map_.find(var);
  return it == map_.end() ? nullptr : &it->second;
}

void Bindings::UndoTo(size_t mark) {
  while (trail_.size() > mark) {
    map_.erase(trail_.back());
    trail_.pop_back();
  }
}

bool Unify(const Term& a_in, const Term& b_in, Bindings* b) {
  size_t mark = b->Mark();
  Term a = b->Walk(a_in);
  Term bb = b->Walk(b_in);
  if (a.is_var()) {
    if (bb.is_var() && bb.name() == a.name()) return true;
    b->Bind(a.name(), bb);
    return true;
  }
  if (bb.is_var()) {
    b->Bind(bb.name(), a);
    return true;
  }
  if (a.kind() != bb.kind()) {
    b->UndoTo(mark);
    return false;
  }
  switch (a.kind()) {
    case Term::Kind::kAtom:
      if (a.name() == bb.name()) return true;
      break;
    case Term::Kind::kConst:
      if (a.value() == bb.value()) return true;
      break;
    case Term::Kind::kCompound: {
      if (a.name() != bb.name() || a.arity() != bb.arity()) break;
      bool ok = true;
      for (size_t i = 0; i < a.arity() && ok; ++i) {
        ok = Unify(a.args()[i], bb.args()[i], b);
      }
      if (ok) return true;
      break;
    }
    case Term::Kind::kVar:
      break;  // unreachable, handled above
  }
  b->UndoTo(mark);
  return false;
}

}  // namespace labflow::query
