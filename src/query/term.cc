#include "query/term.h"

namespace labflow::query {

Term Term::List(const std::vector<Term>& items) {
  Term list = Nil();
  for (auto it = items.rbegin(); it != items.rend(); ++it) {
    list = Cons(*it, std::move(list));
  }
  return list;
}

int Term::Compare(const Term& a, const Term& b) {
  if (a.kind_ != b.kind_) {
    return static_cast<int>(a.kind_) < static_cast<int>(b.kind_) ? -1 : 1;
  }
  switch (a.kind_) {
    case Kind::kVar:
    case Kind::kAtom:
      return a.name_.compare(b.name_);
    case Kind::kConst:
      return Value::Compare(a.value_, b.value_);
    case Kind::kCompound: {
      if (int c = a.name_.compare(b.name_); c != 0) return c;
      if (a.arity() != b.arity()) return a.arity() < b.arity() ? -1 : 1;
      for (size_t i = 0; i < a.arity(); ++i) {
        if (int c = Compare(a.args()[i], b.args()[i]); c != 0) return c;
      }
      return 0;
    }
  }
  return 0;
}

std::string Term::ToString() const {
  switch (kind_) {
    case Kind::kVar:
    case Kind::kAtom:
      return name_;
    case Kind::kConst:
      return value_.ToString();
    case Kind::kCompound: {
      if (IsCons()) {
        // Render list syntax.
        std::string out = "[";
        const Term* cur = this;
        bool first = true;
        while (cur->IsCons()) {
          if (!first) out += ", ";
          out += cur->args()[0].ToString();
          first = false;
          cur = &cur->args()[1];
        }
        if (!cur->IsNil()) {
          out += "|" + cur->ToString();
        }
        out += "]";
        return out;
      }
      std::string out = name_ + "(";
      for (size_t i = 0; i < arity(); ++i) {
        if (i > 0) out += ", ";
        out += args()[i].ToString();
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

}  // namespace labflow::query
