#ifndef LABFLOW_QUERY_UNIFY_H_
#define LABFLOW_QUERY_UNIFY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "query/term.h"

namespace labflow::query {

/// Variable bindings with an undo trail, so backtracking restores the state
/// cheaply (no copying of the whole substitution).
class Bindings {
 public:
  Bindings() = default;

  /// Dereferences a top-level variable chain; does not descend into
  /// compound arguments.
  Term Walk(Term t) const;

  /// Full recursive substitution: every bound variable in `t` is replaced.
  Term Resolve(const Term& t) const;

  /// Binds `var` to `t` and records it on the trail. Precondition: `var`
  /// is currently unbound.
  void Bind(const std::string& var, Term t);

  /// Returns the binding of `var`, or nullptr.
  const Term* Lookup(const std::string& var) const;

  /// Trail position for later UndoTo.
  size_t Mark() const { return trail_.size(); }

  /// Removes every binding made since `mark`.
  void UndoTo(size_t mark);

  size_t size() const { return map_.size(); }

 private:
  std::unordered_map<std::string, Term> map_;
  std::vector<std::string> trail_;
};

/// Syntactic unification (no occurs check, as in standard Prolog).
/// On success, bindings added to `b` (caller removes them via the trail on
/// backtracking); on failure, `b` is restored before returning.
bool Unify(const Term& a, const Term& b, Bindings* b_out);

}  // namespace labflow::query

#endif  // LABFLOW_QUERY_UNIFY_H_
