#include "query/parser.h"

#include <cctype>
#include <cstdlib>
#include "common/status_macros.h"

namespace labflow::query {

namespace {

enum class TokKind {
  kAtom,
  kVar,
  kInt,
  kReal,
  kString,
  kOid,
  kTime,
  kPunct,  // text holds the punctuation, e.g. "(", "<-", "=<"
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  int64_t int_value = 0;
  double real_value = 0;
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipWhitespaceAndComments();
      if (pos_ >= src_.size()) {
        out.push_back(Token{TokKind::kEnd, "", 0, 0, pos_});
        return out;
      }
      size_t start = pos_;
      char c = src_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        LABFLOW_ASSIGN_OR_RETURN(Token t, LexNumber());
        out.push_back(std::move(t));
      } else if (c == '#' || c == '@') {
        ++pos_;
        if (pos_ >= src_.size() ||
            !std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
          return Err(start, "expected digits after '" + std::string(1, c) +
                                "'");
        }
        int64_t v = 0;
        while (pos_ < src_.size() &&
               std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
          v = v * 10 + (src_[pos_++] - '0');
        }
        Token t;
        t.kind = c == '#' ? TokKind::kOid : TokKind::kTime;
        t.int_value = v;
        t.pos = start;
        out.push_back(std::move(t));
      } else if (c == '_' || std::isupper(static_cast<unsigned char>(c))) {
        out.push_back(LexIdent(TokKind::kVar));
      } else if (std::isalpha(static_cast<unsigned char>(c))) {
        out.push_back(LexIdent(TokKind::kAtom));
      } else if (c == '"') {
        LABFLOW_ASSIGN_OR_RETURN(Token t, LexString());
        out.push_back(std::move(t));
      } else {
        LABFLOW_ASSIGN_OR_RETURN(Token t, LexPunct());
        out.push_back(std::move(t));
      }
    }
  }

 private:
  Status Err(size_t pos, const std::string& msg) {
    return Status::InvalidArgument("parse error at offset " +
                                   std::to_string(pos) + ": " + msg);
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '%') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Result<Token> LexNumber() {
    size_t start = pos_;
    while (pos_ < src_.size() &&
           std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
      ++pos_;
    }
    bool is_real = false;
    if (pos_ + 1 < src_.size() && src_[pos_] == '.' &&
        std::isdigit(static_cast<unsigned char>(src_[pos_ + 1]))) {
      is_real = true;
      ++pos_;
      while (pos_ < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < src_.size() && (src_[pos_] == 'e' || src_[pos_] == 'E')) {
      size_t save = pos_;
      ++pos_;
      if (pos_ < src_.size() && (src_[pos_] == '+' || src_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ < src_.size() &&
          std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        is_real = true;
        while (pos_ < src_.size() &&
               std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
          ++pos_;
        }
      } else {
        pos_ = save;
      }
    }
    std::string text(src_.substr(start, pos_ - start));
    Token t;
    t.pos = start;
    if (is_real) {
      t.kind = TokKind::kReal;
      t.real_value = std::strtod(text.c_str(), nullptr);
    } else {
      t.kind = TokKind::kInt;
      t.int_value = std::strtoll(text.c_str(), nullptr, 10);
    }
    return t;
  }

  Token LexIdent(TokKind kind) {
    size_t start = pos_;
    while (pos_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
            src_[pos_] == '_')) {
      ++pos_;
    }
    Token t;
    t.kind = kind;
    t.text = std::string(src_.substr(start, pos_ - start));
    t.pos = start;
    return t;
  }

  Result<Token> LexString() {
    size_t start = pos_;
    ++pos_;  // opening quote
    std::string text;
    while (pos_ < src_.size() && src_[pos_] != '"') {
      char c = src_[pos_++];
      if (c == '\\' && pos_ < src_.size()) {
        char e = src_[pos_++];
        switch (e) {
          case 'n':
            text.push_back('\n');
            break;
          case 't':
            text.push_back('\t');
            break;
          default:
            text.push_back(e);
        }
      } else {
        text.push_back(c);
      }
    }
    if (pos_ >= src_.size()) return Err(start, "unterminated string");
    ++pos_;  // closing quote
    Token t;
    t.kind = TokKind::kString;
    t.text = std::move(text);
    t.pos = start;
    return t;
  }

  Result<Token> LexPunct() {
    size_t start = pos_;
    static const char* kTwoChar[] = {":-", "<-", "?-", "=<", ">=",
                                     "\\=", "\\+"};
    for (const char* op : kTwoChar) {
      if (src_.substr(pos_, 2) == op) {
        pos_ += 2;
        Token t;
        t.kind = TokKind::kPunct;
        t.text = op;
        t.pos = start;
        return t;
      }
    }
    char c = src_[pos_];
    static const std::string kSingles = "()[],|.=<>+-*/?";
    if (kSingles.find(c) == std::string::npos) {
      return Err(start, std::string("unexpected character '") + c + "'");
    }
    ++pos_;
    Token t;
    t.kind = TokKind::kPunct;
    t.text = std::string(1, c);
    t.pos = start;
    return t;
  }

  std::string_view src_;
  size_t pos_ = 0;
};

class ParserImpl {
 public:
  explicit ParserImpl(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  Result<std::vector<Clause>> Program() {
    std::vector<Clause> clauses;
    while (!AtEnd()) {
      LABFLOW_ASSIGN_OR_RETURN(Clause c, OneClause());
      clauses.push_back(std::move(c));
    }
    return clauses;
  }

  Result<std::vector<Term>> Query() {
    LABFLOW_ASSIGN_OR_RETURN(ParsedQuery q, QueryAsOf());
    if (q.as_of >= 0) return Err("AS OF is not allowed in this context");
    return std::move(q.goals);
  }

  Result<ParsedQuery> QueryAsOf() {
    ParsedQuery q;
    LABFLOW_ASSIGN_OR_RETURN(q.goals, Conjunction());
    // `AS`/`OF` lex as variables (uppercase) and `as`/`of` as atoms; both
    // spellings are accepted as the suffix keywords.
    if (ConsumeKeyword("as")) {
      if (!ConsumeKeyword("of")) return Err("expected OF after AS");
      if (Peek().kind != TokKind::kTime) {
        return Err("expected @time after AS OF");
      }
      q.as_of = Next().int_value;
    }
    (void)ConsumePunct(".");
    (void)ConsumePunct("?");
    if (!AtEnd()) return Err("trailing tokens after query");
    return q;
  }

  Result<Term> SingleTerm() {
    LABFLOW_ASSIGN_OR_RETURN(Term t, Expr());
    if (!AtEnd()) return Err("trailing tokens after term");
    return t;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  bool AtEnd() const { return Peek().kind == TokKind::kEnd; }
  const Token& Next() { return tokens_[pos_++]; }

  /// Consumes a case-insensitive keyword token (`as`, `of`). Matches both
  /// the atom (lowercase) and variable (uppercase) lexings.
  bool ConsumeKeyword(std::string_view lower) {
    const Token& t = Peek();
    if (t.kind != TokKind::kAtom && t.kind != TokKind::kVar) return false;
    if (t.text.size() != lower.size()) return false;
    for (size_t i = 0; i < lower.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(t.text[i])) != lower[i]) {
        return false;
      }
    }
    ++pos_;
    return true;
  }

  bool PeekPunct(const std::string& p) const {
    return Peek().kind == TokKind::kPunct && Peek().text == p;
  }
  bool ConsumePunct(const std::string& p) {
    if (PeekPunct(p)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectPunct(const std::string& p) {
    if (!ConsumePunct(p)) return Err("expected '" + p + "'");
    return Status::OK();
  }
  Status Err(const std::string& msg) const {
    return Status::InvalidArgument("parse error at offset " +
                                   std::to_string(Peek().pos) + ": " + msg);
  }

  Result<Clause> OneClause() {
    LABFLOW_ASSIGN_OR_RETURN(Term head, Expr());
    Clause clause;
    clause.head = std::move(head);
    if (ConsumePunct("<-") || ConsumePunct(":-")) {
      LABFLOW_ASSIGN_OR_RETURN(clause.body, Conjunction());
    }
    LABFLOW_RETURN_IF_ERROR(ExpectPunct("."));
    if (clause.head.is_var() || clause.head.is_const()) {
      return Err("clause head must be an atom or compound");
    }
    return clause;
  }

  Result<std::vector<Term>> Conjunction() {
    std::vector<Term> goals;
    LABFLOW_ASSIGN_OR_RETURN(Term g, Expr());
    goals.push_back(std::move(g));
    while (ConsumePunct(",")) {
      LABFLOW_ASSIGN_OR_RETURN(Term next, Expr());
      goals.push_back(std::move(next));
    }
    return goals;
  }

  Result<Term> Expr() {
    LABFLOW_ASSIGN_OR_RETURN(Term left, Arith());
    static const char* kCmp[] = {"=", "\\=", "=<", ">=", "<", ">"};
    for (const char* op : kCmp) {
      if (ConsumePunct(op)) {
        LABFLOW_ASSIGN_OR_RETURN(Term right, Arith());
        return Term::Make(op, {std::move(left), std::move(right)});
      }
    }
    if (Peek().kind == TokKind::kAtom && Peek().text == "is") {
      ++pos_;
      LABFLOW_ASSIGN_OR_RETURN(Term right, Arith());
      return Term::Make("is", {std::move(left), std::move(right)});
    }
    return left;
  }

  Result<Term> Arith() {
    LABFLOW_ASSIGN_OR_RETURN(Term left, Prod());
    while (PeekPunct("+") || PeekPunct("-")) {
      std::string op = Next().text;
      LABFLOW_ASSIGN_OR_RETURN(Term right, Prod());
      left = Term::Make(op, {std::move(left), std::move(right)});
    }
    return left;
  }

  Result<Term> Prod() {
    LABFLOW_ASSIGN_OR_RETURN(Term left, Unary());
    while (true) {
      std::string op;
      if (PeekPunct("*") || PeekPunct("/")) {
        op = Next().text;
      } else if (Peek().kind == TokKind::kAtom && Peek().text == "mod") {
        ++pos_;
        op = "mod";
      } else {
        break;
      }
      LABFLOW_ASSIGN_OR_RETURN(Term right, Unary());
      left = Term::Make(op, {std::move(left), std::move(right)});
    }
    return left;
  }

  Result<Term> Unary() {
    if (ConsumePunct("-")) {
      LABFLOW_ASSIGN_OR_RETURN(Term inner, Unary());
      if (inner.is_const() && inner.value().type() == ValueType::kInt) {
        return Term::Const(Value::Int(-inner.value().int_value()));
      }
      if (inner.is_const() && inner.value().type() == ValueType::kReal) {
        return Term::Const(Value::Real(-inner.value().real_value()));
      }
      return Term::Make("-", {Term::Const(Value::Int(0)), std::move(inner)});
    }
    if (ConsumePunct("\\+")) {
      LABFLOW_ASSIGN_OR_RETURN(Term inner, Unary());
      return Term::Make("not", {std::move(inner)});
    }
    return Primary();
  }

  Result<Term> Primary() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokKind::kInt: {
        int64_t v = Next().int_value;
        return Term::Const(Value::Int(v));
      }
      case TokKind::kReal: {
        double v = Next().real_value;
        return Term::Const(Value::Real(v));
      }
      case TokKind::kString: {
        std::string s = Next().text;
        return Term::Const(Value::String(std::move(s)));
      }
      case TokKind::kOid: {
        int64_t v = Next().int_value;
        return Term::Const(Value::Object(Oid(static_cast<uint64_t>(v))));
      }
      case TokKind::kTime: {
        int64_t v = Next().int_value;
        return Term::Const(Value::Time(Timestamp(v)));
      }
      case TokKind::kVar: {
        std::string name = Next().text;
        return Term::Var(std::move(name));
      }
      case TokKind::kAtom: {
        std::string name = Next().text;
        if (ConsumePunct("(")) {
          std::vector<Term> args;
          if (!PeekPunct(")")) {
            LABFLOW_ASSIGN_OR_RETURN(Term first, Expr());
            args.push_back(std::move(first));
            while (ConsumePunct(",")) {
              LABFLOW_ASSIGN_OR_RETURN(Term next, Expr());
              args.push_back(std::move(next));
            }
          }
          LABFLOW_RETURN_IF_ERROR(ExpectPunct(")"));
          return Term::Make(std::move(name), std::move(args));
        }
        return Term::Atom(std::move(name));
      }
      case TokKind::kPunct: {
        if (ConsumePunct("[")) return ListTail();
        if (ConsumePunct("(")) {
          LABFLOW_ASSIGN_OR_RETURN(std::vector<Term> goals, Conjunction());
          LABFLOW_RETURN_IF_ERROR(ExpectPunct(")"));
          if (goals.size() == 1) return goals[0];
          // A parenthesized conjunction becomes an explicit and/N goal.
          return Term::Make("and", std::move(goals));
        }
        return Err("unexpected '" + tok.text + "'");
      }
      case TokKind::kEnd:
        return Err("unexpected end of input");
    }
    return Err("unexpected token");
  }

  Result<Term> ListTail() {
    if (ConsumePunct("]")) return Term::Nil();
    std::vector<Term> items;
    LABFLOW_ASSIGN_OR_RETURN(Term first, Expr());
    items.push_back(std::move(first));
    while (ConsumePunct(",")) {
      LABFLOW_ASSIGN_OR_RETURN(Term next, Expr());
      items.push_back(std::move(next));
    }
    Term tail = Term::Nil();
    if (ConsumePunct("|")) {
      LABFLOW_ASSIGN_OR_RETURN(tail, Expr());
    }
    LABFLOW_RETURN_IF_ERROR(ExpectPunct("]"));
    Term list = std::move(tail);
    for (auto it = items.rbegin(); it != items.rend(); ++it) {
      list = Term::Cons(*it, std::move(list));
    }
    return list;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::vector<Clause>> Parser::ParseProgram(std::string_view src) {
  Lexer lexer(src);
  LABFLOW_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  ParserImpl parser(std::move(tokens));
  return parser.Program();
}

Result<std::vector<Term>> Parser::ParseQuery(std::string_view src) {
  Lexer lexer(src);
  LABFLOW_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  ParserImpl parser(std::move(tokens));
  return parser.Query();
}

Result<ParsedQuery> Parser::ParseQueryAsOf(std::string_view src) {
  Lexer lexer(src);
  LABFLOW_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  ParserImpl parser(std::move(tokens));
  return parser.QueryAsOf();
}

Result<Term> Parser::ParseTerm(std::string_view src) {
  Lexer lexer(src);
  LABFLOW_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  ParserImpl parser(std::move(tokens));
  return parser.SingleTerm();
}

}  // namespace labflow::query
