#ifndef LABFLOW_QUERY_SOLVER_H_
#define LABFLOW_QUERY_SOLVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "labbase/session_iface.h"
#include "query/parser.h"
#include "query/term.h"
#include "query/unify.h"

namespace labflow::query {

/// SLD-resolution solver for the deductive query language, with LabBase
/// bound in as the extensional database (paper Section 6: the view
/// predicates are "implemented in persistent C++ on top of an ObjectStore
/// database" — here, on top of any of our storage managers).
///
/// Built-in predicate groups:
///  * control/logic: true/0, fail/0, not/1 (negation as failure), once/1,
///    forall/2, =/2, \=/2, is/2, </2 >/2 =</2 >=/2, between/3, and/N
///  * dynamic solver facts: assert/1, retract/1 (the paper's transition
///    idiom: retract(state(M, s1)), assert(state(M, s2)))
///  * lists: member/2, length/2, append/3, reverse/2, nth1/3, msort/2
///  * aggregation (paper 8.2 "set and list generation" / counting):
///    findall/3, setof/3 (sorted, deduplicated; succeeds with [] when there
///    are no solutions), count/2, sum/3, max_of/3, min_of/3
///  * LabBase queries: material/1, <material-class>/1, material_class/2,
///    material_name/2, created/2, state/2, workflow_state/1, attribute/1,
///    most_recent/3, history/3 (list of h(Time, Value)),
///    value_at/4 (as-of), history_between/5,
///    step/3, step_version/2, step_material/2, step_tag/4, in_set/2
///  * LabBase updates (paper 8.3 workflow tracking; these subsume the
///    paper's assert/retract/create examples): define_material_class/1,
///    define_step_class/2, define_state/1, create_material/4, create_set/1,
///    add_to_set/2, record_step/3 with effects of the form
///    effect(M, [tag(attr, Value), ...], NewStateAtomOrSame)
///
/// User rules loaded via LoadProgram define intensional views on top.
class Solver {
 public:
  struct Options {
    /// Resolution-step budget per Solve call; guards against runaway
    /// recursion in user rule sets.
    int64_t max_work = 50'000'000;
    /// Maximum resolution depth (nested goal levels). Caps the C++ stack a
    /// query can consume: a left-recursive rule would otherwise overflow
    /// the process stack long before max_work triggers.
    int64_t max_depth = 400;
  };

  /// `db` may be null, giving a pure rule interpreter (used by unit tests).
  /// Any SessionIface works: an in-process LabBase::Session or a remote
  /// net::RemoteSession — the solver only speaks the session seam.
  explicit Solver(labbase::SessionIface* db);
  Solver(labbase::SessionIface* db, Options options);

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Parses and installs a rule program (views).
  Status LoadProgram(std::string_view src);
  void AddClause(Clause clause);
  size_t rule_count() const { return rule_count_; }

  /// Invoked once per solution with the current bindings; return false to
  /// stop the search.
  using Callback = std::function<bool(const Bindings&)>;

  /// Proves the conjunction, invoking `cb` per solution. Returns the number
  /// of solutions found.
  Result<int64_t> Solve(const std::vector<Term>& goals, const Callback& cb);
  Result<int64_t> SolveText(std::string_view query, const Callback& cb);

  /// One materialized solution: named query variables -> resolved terms.
  struct Solution {
    std::map<std::string, Term> vars;
  };

  /// Collects up to `limit` solutions (all if limit < 0), reporting the
  /// bindings of the variables that occur in the query text.
  Result<std::vector<Solution>> QueryAll(std::string_view query,
                                         int64_t limit = -1);

  /// True if the query has at least one solution.
  Result<bool> Prove(std::string_view query);

 private:
  Status SolveFrom(const std::vector<Term>& goals, size_t idx, Bindings* b,
                   const Callback& cb, bool* stop, int64_t* solutions);

  /// One resolution step of budget; ResourceExhausted when spent.
  Status Spend();

  Status SolveBuiltin(const Term& goal, const std::vector<Term>& goals,
                      size_t idx, Bindings* b, const Callback& cb, bool* stop,
                      int64_t* solutions, bool* handled);
  Status SolveDbPredicate(const Term& goal, const std::vector<Term>& goals,
                          size_t idx, Bindings* b, const Callback& cb,
                          bool* stop, int64_t* solutions, bool* handled);
  Status SolveRules(const Term& goal, const std::vector<Term>& goals,
                    size_t idx, Bindings* b, const Callback& cb, bool* stop,
                    int64_t* solutions, bool* handled);

  /// Renames clause variables apart with a fresh suffix.
  Clause Rename(const Clause& clause);
  static Term RenameTerm(const Term& t, const std::string& suffix);

  labbase::SessionIface* db_;
  Options options_;
  /// Valid-time horizon from the query's `AS OF @T` suffix; -1 when absent.
  /// Under a horizon the temporal predicates answer as of T: most_recent/3
  /// becomes value-at-T, history/3 and history_between/5 are clamped to T,
  /// value_at/4 never sees past T, and step/3 hides steps recorded after T.
  int64_t as_of_ = -1;
  int64_t work_ = 0;
  int64_t depth_ = 0;
  uint64_t rename_counter_ = 0;
  std::map<std::pair<std::string, size_t>, std::vector<Clause>> rules_;
  size_t rule_count_ = 0;
};

/// Converts a ground term to a Value (atoms become strings, proper lists
/// become Value lists). InvalidArgument on variables/compounds.
Result<Value> TermToValue(const Term& t);

/// Converts a Value to a term (Value lists become proper term lists).
Term ValueToTerm(const Value& v);

}  // namespace labflow::query

#endif  // LABFLOW_QUERY_SOLVER_H_
