#ifndef LABFLOW_QUERY_PARSER_H_
#define LABFLOW_QUERY_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "query/term.h"

namespace labflow::query {

/// A definite clause: `head.` (fact, empty body) or `head <- body.` /
/// `head :- body.` (rule). The paper writes rules with `<-`; the classic
/// Prolog `:-` is accepted as a synonym.
struct Clause {
  Term head;
  std::vector<Term> body;
};

/// A parsed query: the goal conjunction plus the optional trailing
/// `AS OF @T` valid-time horizon (-1 when absent). Under a horizon the
/// solver answers the temporal predicates as of valid time T: most_recent
/// becomes value-as-of-T, histories are clamped to T, and steps recorded
/// after T do not exist.
struct ParsedQuery {
  std::vector<Term> goals;
  int64_t as_of = -1;
};

/// Recursive-descent parser for the deductive language.
///
/// Syntax summary:
///   clause   := term ( ("<-" | ":-") conj )? "."
///   query    := conj ( ("AS" "OF" | "as" "of") @time )? ("." | "?")?
///   conj     := expr ("," expr)*
///   expr     := arith ( ("="|"\\="|"<"|">"|"=<"|">="|"is") arith )?
///   arith    := prod (("+"|"-") prod)*
///   prod     := unary (("*"|"/"|"mod") unary)*
///   unary    := "-" unary | primary
///   primary  := integer | real | "string" | #oid | @time | Variable
///             | atom ( "(" expr ("," expr)* ")" )?
///             | "[" (expr ("," expr)* ("|" expr)?)? "]"
///             | "(" conj ")"            (parenthesized conjunction)
///             | "\\+" primary           (negation as failure, = not/1)
///   comments := "%" to end of line
class Parser {
 public:
  /// Parses a whole rule program (sequence of clauses).
  static Result<std::vector<Clause>> ParseProgram(std::string_view src);

  /// Parses a query: a conjunction, with optional trailing "." or "?".
  /// A trailing `AS OF @T` is a parse error here; use ParseQueryAsOf.
  static Result<std::vector<Term>> ParseQuery(std::string_view src);

  /// Parses a query that may carry a trailing `AS OF @T` valid-time
  /// horizon (both `AS OF` and `as of` are accepted).
  static Result<ParsedQuery> ParseQueryAsOf(std::string_view src);

  /// Parses a single term (no trailing period required).
  static Result<Term> ParseTerm(std::string_view src);
};

}  // namespace labflow::query

#endif  // LABFLOW_QUERY_PARSER_H_
