#ifndef LABFLOW_QUERY_PARSER_H_
#define LABFLOW_QUERY_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "query/term.h"

namespace labflow::query {

/// A definite clause: `head.` (fact, empty body) or `head <- body.` /
/// `head :- body.` (rule). The paper writes rules with `<-`; the classic
/// Prolog `:-` is accepted as a synonym.
struct Clause {
  Term head;
  std::vector<Term> body;
};

/// Recursive-descent parser for the deductive language.
///
/// Syntax summary:
///   clause   := term ( ("<-" | ":-") conj )? "."
///   conj     := expr ("," expr)*
///   expr     := arith ( ("="|"\\="|"<"|">"|"=<"|">="|"is") arith )?
///   arith    := prod (("+"|"-") prod)*
///   prod     := unary (("*"|"/"|"mod") unary)*
///   unary    := "-" unary | primary
///   primary  := integer | real | "string" | #oid | @time | Variable
///             | atom ( "(" expr ("," expr)* ")" )?
///             | "[" (expr ("," expr)* ("|" expr)?)? "]"
///             | "(" conj ")"            (parenthesized conjunction)
///             | "\\+" primary           (negation as failure, = not/1)
///   comments := "%" to end of line
class Parser {
 public:
  /// Parses a whole rule program (sequence of clauses).
  static Result<std::vector<Clause>> ParseProgram(std::string_view src);

  /// Parses a query: a conjunction, with optional trailing "." or "?".
  static Result<std::vector<Term>> ParseQuery(std::string_view src);

  /// Parses a single term (no trailing period required).
  static Result<Term> ParseTerm(std::string_view src);
};

}  // namespace labflow::query

#endif  // LABFLOW_QUERY_PARSER_H_
