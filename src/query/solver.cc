#include "query/solver.h"

#include <algorithm>
#include <limits>
#include <set>
#include "common/status_macros.h"

namespace labflow::query {

using labbase::AttrId;
using labbase::ClassId;
using labbase::kInvalidState;
using labbase::StateId;
using labbase::StepEffect;
using labbase::StepTag;

// ---- Conversions ------------------------------------------------------------

Result<Value> TermToValue(const Term& t) {
  switch (t.kind()) {
    case Term::Kind::kConst:
      return t.value();
    case Term::Kind::kAtom:
      if (t.IsNil()) return Value::MakeList({});
      return Value::String(t.name());
    case Term::Kind::kCompound: {
      if (!t.IsCons()) {
        return Status::InvalidArgument("cannot convert compound to value: " +
                                       t.ToString());
      }
      Value::List items;
      const Term* cur = &t;
      while (cur->IsCons()) {
        LABFLOW_ASSIGN_OR_RETURN(Value v, TermToValue(cur->args()[0]));
        items.push_back(std::move(v));
        cur = &cur->args()[1];
      }
      if (!cur->IsNil()) {
        return Status::InvalidArgument("improper list");
      }
      return Value::MakeList(std::move(items));
    }
    case Term::Kind::kVar:
      return Status::InvalidArgument("unbound variable: " + t.name());
  }
  return Status::InvalidArgument("bad term");
}

Term ValueToTerm(const Value& v) {
  if (v.type() == ValueType::kList) {
    std::vector<Term> items;
    items.reserve(v.list_value().size());
    for (const Value& item : v.list_value()) items.push_back(ValueToTerm(item));
    return Term::List(items);
  }
  return Term::Const(v);
}

namespace {

Result<Oid> TermToOid(const Term& t) {
  if (t.is_const() && t.value().type() == ValueType::kOid) {
    return t.value().oid_value();
  }
  return Status::InvalidArgument("expected an object id, got " + t.ToString());
}

Result<std::string> TermToName(const Term& t) {
  if (t.is_atom()) return t.name();
  if (t.is_const() && t.value().type() == ValueType::kString) {
    return t.value().string_value();
  }
  return Status::InvalidArgument("expected a name, got " + t.ToString());
}

Result<Timestamp> TermToTime(const Term& t) {
  if (t.is_const() && t.value().type() == ValueType::kTimestamp) {
    return t.value().time_value();
  }
  if (t.is_const() && t.value().type() == ValueType::kInt) {
    return Timestamp(t.value().int_value());
  }
  return Status::InvalidArgument("expected a timestamp, got " + t.ToString());
}

/// Materializes a proper list term into a vector (elements resolved).
Result<std::vector<Term>> ListToVector(const Term& t0, const Bindings& b) {
  std::vector<Term> out;
  Term cur = b.Walk(t0);
  while (cur.IsCons()) {
    out.push_back(b.Resolve(cur.args()[0]));
    cur = b.Walk(cur.args()[1]);
  }
  if (!cur.IsNil()) {
    return Status::InvalidArgument("expected a proper list, got " +
                                   cur.ToString());
  }
  return out;
}

Result<Value> EvalArith(const Term& t0, const Bindings& b) {
  Term t = b.Resolve(t0);
  switch (t.kind()) {
    case Term::Kind::kConst: {
      const Value& v = t.value();
      if (v.type() == ValueType::kInt || v.type() == ValueType::kReal) {
        return v;
      }
      if (v.type() == ValueType::kTimestamp) {
        return Value::Int(v.time_value().micros);
      }
      return Status::InvalidArgument("non-numeric in arithmetic: " +
                                     t.ToString());
    }
    case Term::Kind::kCompound: {
      if (t.arity() != 2) break;
      const std::string& op = t.name();
      if (op != "+" && op != "-" && op != "*" && op != "/" && op != "mod") {
        break;
      }
      LABFLOW_ASSIGN_OR_RETURN(Value a, EvalArith(t.args()[0], b));
      LABFLOW_ASSIGN_OR_RETURN(Value c, EvalArith(t.args()[1], b));
      bool ints = a.type() == ValueType::kInt && c.type() == ValueType::kInt;
      if (ints) {
        int64_t x = a.int_value(), y = c.int_value();
        if (op == "+") return Value::Int(x + y);
        if (op == "-") return Value::Int(x - y);
        if (op == "*") return Value::Int(x * y);
        if (y == 0) return Status::InvalidArgument("division by zero");
        if (op == "/") return Value::Int(x / y);
        return Value::Int(((x % y) + y) % y);
      }
      double x, y;
      a.AsReal(&x);
      c.AsReal(&y);
      if (op == "+") return Value::Real(x + y);
      if (op == "-") return Value::Real(x - y);
      if (op == "*") return Value::Real(x * y);
      if (op == "/") {
        if (y == 0) return Status::InvalidArgument("division by zero");
        return Value::Real(x / y);
      }
      return Status::InvalidArgument("mod needs integers");
    }
    default:
      break;
  }
  return Status::InvalidArgument("cannot evaluate arithmetically: " +
                                 t.ToString());
}

/// Three-way comparison for </2 and friends: numeric when both sides
/// evaluate arithmetically, structural otherwise.
Result<int> CompareForOrder(const Term& lhs, const Term& rhs,
                            const Bindings& b) {
  Result<Value> a = EvalArith(lhs, b);
  Result<Value> c = EvalArith(rhs, b);
  if (a.ok() && c.ok()) {
    double x, y;
    a->AsReal(&x);
    c->AsReal(&y);
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  return Term::Compare(b.Resolve(lhs), b.Resolve(rhs));
}

}  // namespace

// ---- Solver core ------------------------------------------------------------

Solver::Solver(labbase::SessionIface* db) : Solver(db, Options{}) {}

Solver::Solver(labbase::SessionIface* db, Options options)
    : db_(db), options_(options) {}

Status Solver::LoadProgram(std::string_view src) {
  LABFLOW_ASSIGN_OR_RETURN(std::vector<Clause> clauses,
                           Parser::ParseProgram(src));
  for (Clause& c : clauses) AddClause(std::move(c));
  return Status::OK();
}

void Solver::AddClause(Clause clause) {
  auto key = std::make_pair(clause.head.name(), clause.head.arity());
  rules_[key].push_back(std::move(clause));
  ++rule_count_;
}

Status Solver::Spend() {
  if (--work_ <= 0) {
    return Status::ResourceExhausted("query exceeded its work budget");
  }
  return Status::OK();
}

Result<int64_t> Solver::Solve(const std::vector<Term>& goals,
                              const Callback& cb) {
  work_ = options_.max_work;
  depth_ = 0;
  Bindings b;
  bool stop = false;
  int64_t solutions = 0;
  LABFLOW_RETURN_IF_ERROR(SolveFrom(goals, 0, &b, cb, &stop, &solutions));
  return solutions;
}

Result<int64_t> Solver::SolveText(std::string_view query, const Callback& cb) {
  LABFLOW_ASSIGN_OR_RETURN(ParsedQuery parsed, Parser::ParseQueryAsOf(query));
  as_of_ = parsed.as_of;
  Result<int64_t> n = Solve(parsed.goals, cb);
  as_of_ = -1;
  return n;
}

namespace {

void CollectVars(const Term& t, std::set<std::string>* out) {
  switch (t.kind()) {
    case Term::Kind::kVar:
      if (t.name() != "_") out->insert(t.name());
      break;
    case Term::Kind::kCompound:
      for (const Term& a : t.args()) CollectVars(a, out);
      break;
    default:
      break;
  }
}

}  // namespace

Result<std::vector<Solver::Solution>> Solver::QueryAll(std::string_view query,
                                                       int64_t limit) {
  LABFLOW_ASSIGN_OR_RETURN(ParsedQuery parsed, Parser::ParseQueryAsOf(query));
  std::set<std::string> vars;
  for (const Term& g : parsed.goals) CollectVars(g, &vars);
  std::vector<Solution> out;
  as_of_ = parsed.as_of;
  Result<int64_t> n = Solve(parsed.goals, [&](const Bindings& b) {
    Solution sol;
    for (const std::string& v : vars) {
      sol.vars[v] = b.Resolve(Term::Var(v));
    }
    out.push_back(std::move(sol));
    return limit < 0 || static_cast<int64_t>(out.size()) < limit;
  });
  as_of_ = -1;
  LABFLOW_RETURN_IF_ERROR(n.status());
  return out;
}

Result<bool> Solver::Prove(std::string_view query) {
  bool found = false;
  LABFLOW_ASSIGN_OR_RETURN(int64_t n, SolveText(query, [&](const Bindings&) {
                             found = true;
                             return false;  // first solution suffices
                           }));
  (void)n;
  return found;
}

Term Solver::RenameTerm(const Term& t, const std::string& suffix) {
  switch (t.kind()) {
    case Term::Kind::kVar:
      if (t.name() == "_") {
        // Each _ is a distinct variable; suffix alone keeps them apart per
        // clause instance but _ must also differ within a clause. Encode
        // position via pointer-free trick: rely on unique name per use.
        static thread_local uint64_t underscore_counter = 0;
        return Term::Var("_u" + std::to_string(++underscore_counter) + suffix);
      }
      return Term::Var(t.name() + suffix);
    case Term::Kind::kCompound: {
      std::vector<Term> args;
      args.reserve(t.arity());
      for (const Term& a : t.args()) args.push_back(RenameTerm(a, suffix));
      return Term::Make(t.name(), std::move(args));
    }
    default:
      return t;
  }
}

Clause Solver::Rename(const Clause& clause) {
  std::string suffix = "~" + std::to_string(++rename_counter_);
  Clause fresh;
  fresh.head = RenameTerm(clause.head, suffix);
  fresh.body.reserve(clause.body.size());
  for (const Term& g : clause.body) fresh.body.push_back(RenameTerm(g, suffix));
  return fresh;
}

Status Solver::SolveFrom(const std::vector<Term>& goals, size_t idx,
                         Bindings* b, const Callback& cb, bool* stop,
                         int64_t* solutions) {
  LABFLOW_RETURN_IF_ERROR(Spend());
  if (idx == goals.size()) {
    ++*solutions;
    if (!cb(*b)) *stop = true;
    return Status::OK();
  }
  // Bound the native stack: every nested goal level costs several C++
  // frames, so runaway recursion must fail cleanly, not crash.
  if (depth_ >= options_.max_depth) {
    return Status::ResourceExhausted("query exceeded the recursion depth limit");
  }
  struct DepthGuard {
    int64_t* depth;
    ~DepthGuard() { --*depth; }
  } guard{&depth_};
  ++depth_;
  Term goal = b->Walk(goals[idx]);
  if (goal.is_var()) {
    return Status::InvalidArgument("unbound goal variable " + goal.name());
  }
  if (goal.is_const()) {
    return Status::InvalidArgument("constant is not a valid goal: " +
                                   goal.ToString());
  }

  bool handled = false;
  LABFLOW_RETURN_IF_ERROR(
      SolveBuiltin(goal, goals, idx, b, cb, stop, solutions, &handled));
  if (handled || *stop) return Status::OK();

  LABFLOW_RETURN_IF_ERROR(
      SolveRules(goal, goals, idx, b, cb, stop, solutions, &handled));
  if (handled || *stop) return Status::OK();

  LABFLOW_RETURN_IF_ERROR(
      SolveDbPredicate(goal, goals, idx, b, cb, stop, solutions, &handled));
  if (handled || *stop) return Status::OK();

  return Status::InvalidArgument("unknown predicate " + goal.name() + "/" +
                                 std::to_string(goal.arity()));
}

Status Solver::SolveRules(const Term& goal, const std::vector<Term>& goals,
                          size_t idx, Bindings* b, const Callback& cb,
                          bool* stop, int64_t* solutions, bool* handled) {
  auto it = rules_.find(std::make_pair(goal.name(), goal.arity()));
  if (it == rules_.end()) return Status::OK();
  *handled = true;
  // Snapshot the clause list: assert/retract during resolution must not
  // affect this goal's iteration (the "logical update view").
  const std::vector<Clause> snapshot = it->second;
  for (const Clause& clause : snapshot) {
    LABFLOW_RETURN_IF_ERROR(Spend());
    Clause fresh = Rename(clause);
    size_t mark = b->Mark();
    if (Unify(goal, fresh.head, b)) {
      // Prepend the clause body to the remaining goals.
      std::vector<Term> next;
      next.reserve(fresh.body.size() + (goals.size() - idx - 1));
      next.insert(next.end(), fresh.body.begin(), fresh.body.end());
      next.insert(next.end(), goals.begin() + idx + 1, goals.end());
      LABFLOW_RETURN_IF_ERROR(SolveFrom(next, 0, b, cb, stop, solutions));
    }
    b->UndoTo(mark);
    if (*stop) return Status::OK();
  }
  return Status::OK();
}

Status Solver::SolveBuiltin(const Term& goal, const std::vector<Term>& goals,
                            size_t idx, Bindings* b, const Callback& cb,
                            bool* stop, int64_t* solutions, bool* handled) {
  const std::string& f = goal.name();
  const size_t n = goal.arity();
  *handled = true;

  auto Continue = [&]() {
    return SolveFrom(goals, idx + 1, b, cb, stop, solutions);
  };
  /// Unifies a with t; on success continues; always restores bindings.
  auto UnifyAndContinue = [&](const Term& a, const Term& t) -> Status {
    size_t mark = b->Mark();
    if (Unify(a, t, b)) {
      LABFLOW_RETURN_IF_ERROR(Continue());
    }
    b->UndoTo(mark);
    return Status::OK();
  };

  // ---- control ------------------------------------------------------------
  if (f == "true" && n == 0) return Continue();
  if (f == "fail" && n == 0) return Status::OK();
  if (f == "and") {
    std::vector<Term> next;
    next.reserve(n + goals.size() - idx - 1);
    next.insert(next.end(), goal.args().begin(), goal.args().end());
    next.insert(next.end(), goals.begin() + idx + 1, goals.end());
    return SolveFrom(next, 0, b, cb, stop, solutions);
  }
  if (f == "not" && n == 1) {
    std::vector<Term> sub = {goal.args()[0]};
    bool sub_stop = false;
    int64_t sub_solutions = 0;
    size_t mark = b->Mark();
    LABFLOW_RETURN_IF_ERROR(SolveFrom(
        sub, 0, b, [](const Bindings&) { return false; }, &sub_stop,
        &sub_solutions));
    b->UndoTo(mark);
    if (sub_solutions == 0) return Continue();
    return Status::OK();
  }
  if (f == "once" && n == 1) {
    std::vector<Term> sub = {goal.args()[0]};
    bool sub_stop = false;
    int64_t sub_solutions = 0;
    size_t mark = b->Mark();
    Status st = Status::OK();
    LABFLOW_RETURN_IF_ERROR(SolveFrom(
        sub, 0, b,
        [&](const Bindings&) {
          st = Continue();
          return false;  // only the first solution
        },
        &sub_stop, &sub_solutions));
    LABFLOW_RETURN_IF_ERROR(st);
    b->UndoTo(mark);
    return Status::OK();
  }
  if (f == "=" && n == 2) {
    return UnifyAndContinue(goal.args()[0], goal.args()[1]);
  }
  if (f == "\\=" && n == 2) {
    size_t mark = b->Mark();
    bool unifies = Unify(goal.args()[0], goal.args()[1], b);
    b->UndoTo(mark);
    if (!unifies) return Continue();
    return Status::OK();
  }
  if (f == "is" && n == 2) {
    LABFLOW_ASSIGN_OR_RETURN(Value v, EvalArith(goal.args()[1], *b));
    return UnifyAndContinue(goal.args()[0], Term::Const(v));
  }
  if ((f == "<" || f == ">" || f == "=<" || f == ">=") && n == 2) {
    LABFLOW_ASSIGN_OR_RETURN(int c,
                             CompareForOrder(goal.args()[0], goal.args()[1],
                                             *b));
    bool holds = (f == "<" && c < 0) || (f == ">" && c > 0) ||
                 (f == "=<" && c <= 0) || (f == ">=" && c >= 0);
    if (holds) return Continue();
    return Status::OK();
  }
  if (f == "between" && n == 3) {
    LABFLOW_ASSIGN_OR_RETURN(Value lo, EvalArith(goal.args()[0], *b));
    LABFLOW_ASSIGN_OR_RETURN(Value hi, EvalArith(goal.args()[1], *b));
    if (lo.type() != ValueType::kInt || hi.type() != ValueType::kInt) {
      return Status::InvalidArgument("between/3 needs integers");
    }
    for (int64_t x = lo.int_value(); x <= hi.int_value(); ++x) {
      LABFLOW_RETURN_IF_ERROR(
          UnifyAndContinue(goal.args()[2], Term::Const(Value::Int(x))));
      if (*stop) return Status::OK();
    }
    return Status::OK();
  }

  // ---- dynamic facts (paper Section 3: workflow transitions are written
  // as retract(state(M, s1)), assert(state(M, s2)) over a dynamic store) --
  if (f == "assert" && n == 1) {
    Term fact = b->Resolve(goal.args()[0]);
    if (fact.is_var() || fact.is_const()) {
      return Status::InvalidArgument("assert/1 needs an atom or compound");
    }
    Clause clause;
    clause.head = fact;
    AddClause(std::move(clause));
    return Continue();
  }
  if (f == "retract" && n == 1) {
    Term pattern = b->Walk(goal.args()[0]);
    if (pattern.is_var() || pattern.is_const()) {
      return Status::InvalidArgument("retract/1 needs an atom or compound");
    }
    auto it = rules_.find(std::make_pair(pattern.name(), pattern.arity()));
    if (it == rules_.end()) return Status::OK();  // nothing to retract: fail
    std::vector<Clause>& clauses = it->second;
    for (size_t i = 0; i < clauses.size(); ++i) {
      if (!clauses[i].body.empty()) continue;  // only facts are retractable
      size_t mark = b->Mark();
      if (Unify(pattern, clauses[i].head, b)) {
        clauses.erase(clauses.begin() + i);
        --rule_count_;
        LABFLOW_RETURN_IF_ERROR(Continue());
        // Retraction is not undone on backtracking (standard Prolog).
        b->UndoTo(mark);
        return Status::OK();
      }
      b->UndoTo(mark);
    }
    return Status::OK();  // no matching fact: fail
  }

  // ---- lists ----------------------------------------------------------------
  if (f == "member" && n == 2) {
    Term list = b->Walk(goal.args()[1]);
    while (true) {
      list = b->Walk(list);
      if (list.IsCons()) {
        LABFLOW_RETURN_IF_ERROR(
            UnifyAndContinue(goal.args()[0], list.args()[0]));
        if (*stop) return Status::OK();
        list = list.args()[1];
      } else if (list.IsNil()) {
        return Status::OK();
      } else {
        return Status::InvalidArgument("member/2 needs a proper list");
      }
    }
  }
  if (f == "length" && n == 2) {
    LABFLOW_ASSIGN_OR_RETURN(std::vector<Term> items,
                             ListToVector(goal.args()[0], *b));
    return UnifyAndContinue(
        goal.args()[1],
        Term::Const(Value::Int(static_cast<int64_t>(items.size()))));
  }
  if (f == "append" && n == 3) {
    Term a = b->Walk(goal.args()[0]);
    // Mode (+,+,-): concatenate. Mode (-,-,+): enumerate splits.
    if (a.IsCons() || a.IsNil()) {
      LABFLOW_ASSIGN_OR_RETURN(std::vector<Term> xs,
                               ListToVector(goal.args()[0], *b));
      LABFLOW_ASSIGN_OR_RETURN(std::vector<Term> ys,
                               ListToVector(goal.args()[1], *b));
      xs.insert(xs.end(), ys.begin(), ys.end());
      return UnifyAndContinue(goal.args()[2], Term::List(xs));
    }
    LABFLOW_ASSIGN_OR_RETURN(std::vector<Term> zs,
                             ListToVector(goal.args()[2], *b));
    for (size_t split = 0; split <= zs.size(); ++split) {
      std::vector<Term> xs(zs.begin(), zs.begin() + split);
      std::vector<Term> ys(zs.begin() + split, zs.end());
      size_t mark = b->Mark();
      if (Unify(goal.args()[0], Term::List(xs), b) &&
          Unify(goal.args()[1], Term::List(ys), b)) {
        LABFLOW_RETURN_IF_ERROR(Continue());
      }
      b->UndoTo(mark);
      if (*stop) return Status::OK();
    }
    return Status::OK();
  }

  // ---- aggregation -----------------------------------------------------------
  if ((f == "findall" || f == "setof") && n == 3) {
    std::vector<Term> collected;
    std::vector<Term> sub = {goal.args()[1]};
    bool sub_stop = false;
    int64_t sub_solutions = 0;
    size_t mark = b->Mark();
    const Term& tmpl = goal.args()[0];
    LABFLOW_RETURN_IF_ERROR(SolveFrom(
        sub, 0, b,
        [&](const Bindings& inner) {
          collected.push_back(inner.Resolve(tmpl));
          return true;
        },
        &sub_stop, &sub_solutions));
    b->UndoTo(mark);
    if (f == "setof") {
      std::sort(collected.begin(), collected.end(),
                [](const Term& x, const Term& y) {
                  return Term::Compare(x, y) < 0;
                });
      collected.erase(std::unique(collected.begin(), collected.end()),
                      collected.end());
    }
    return UnifyAndContinue(goal.args()[2], Term::List(collected));
  }
  if (f == "forall" && n == 2) {
    // forall(Cond, Action): no Cond solution for which Action fails.
    std::vector<Term> cond = {goal.args()[0]};
    bool sub_stop = false;
    int64_t sub_solutions = 0;
    bool all_hold = true;
    size_t mark = b->Mark();
    LABFLOW_RETURN_IF_ERROR(SolveFrom(
        cond, 0, b,
        [&](const Bindings&) {
          std::vector<Term> action = {goal.args()[1]};
          bool inner_stop = false;
          int64_t inner_solutions = 0;
          Status st = SolveFrom(
              action, 0, b, [](const Bindings&) { return false; },
              &inner_stop, &inner_solutions);
          if (!st.ok() || inner_solutions == 0) {
            all_hold = false;
            return false;  // counterexample found; stop enumerating
          }
          return true;
        },
        &sub_stop, &sub_solutions));
    b->UndoTo(mark);
    if (all_hold) return Continue();
    return Status::OK();
  }
  if ((f == "sum" || f == "max_of" || f == "min_of") && n == 3) {
    // sum(Expr, Goal, Total) / max_of / min_of: arithmetic aggregation over
    // the Goal's solutions (the paper's report queries aggregate this way).
    std::vector<Term> sub = {goal.args()[1]};
    bool sub_stop = false;
    int64_t sub_solutions = 0;
    size_t mark = b->Mark();
    double acc = 0;
    bool all_int = true;
    int64_t int_acc = 0;
    bool any = false;
    bool extreme_set = false;
    double extreme = 0;
    Status eval_status = Status::OK();
    const Term& expr = goal.args()[0];
    LABFLOW_RETURN_IF_ERROR(SolveFrom(
        sub, 0, b,
        [&](const Bindings& inner) {
          Result<Value> v = EvalArith(expr, inner);
          if (!v.ok()) {
            eval_status = v.status();
            return false;
          }
          any = true;
          double d;
          v->AsReal(&d);
          if (v->type() == ValueType::kInt) {
            int_acc += v->int_value();
          } else {
            all_int = false;
          }
          acc += d;
          if (!extreme_set || (f == "max_of" ? d > extreme : d < extreme)) {
            extreme = d;
            extreme_set = true;
          }
          return true;
        },
        &sub_stop, &sub_solutions));
    b->UndoTo(mark);
    LABFLOW_RETURN_IF_ERROR(eval_status);
    if (f != "sum" && !any) return Status::OK();  // no extremum of nothing
    Value result;
    if (f == "sum") {
      result = all_int ? Value::Int(int_acc) : Value::Real(acc);
    } else {
      result = (all_int && extreme == static_cast<int64_t>(extreme))
                   ? Value::Int(static_cast<int64_t>(extreme))
                   : Value::Real(extreme);
    }
    return UnifyAndContinue(goal.args()[2], Term::Const(result));
  }
  if (f == "reverse" && n == 2) {
    LABFLOW_ASSIGN_OR_RETURN(std::vector<Term> items,
                             ListToVector(goal.args()[0], *b));
    std::reverse(items.begin(), items.end());
    return UnifyAndContinue(goal.args()[1], Term::List(items));
  }
  if (f == "nth1" && n == 3) {
    LABFLOW_ASSIGN_OR_RETURN(Value idx, EvalArith(goal.args()[0], *b));
    if (idx.type() != ValueType::kInt) {
      return Status::InvalidArgument("nth1/3 needs an integer index");
    }
    LABFLOW_ASSIGN_OR_RETURN(std::vector<Term> items,
                             ListToVector(goal.args()[1], *b));
    int64_t i = idx.int_value();
    if (i < 1 || i > static_cast<int64_t>(items.size())) return Status::OK();
    return UnifyAndContinue(goal.args()[2], items[static_cast<size_t>(i - 1)]);
  }
  if (f == "msort" && n == 2) {
    LABFLOW_ASSIGN_OR_RETURN(std::vector<Term> items,
                             ListToVector(goal.args()[0], *b));
    std::stable_sort(items.begin(), items.end(),
                     [](const Term& x, const Term& y) {
                       return Term::Compare(x, y) < 0;
                     });
    return UnifyAndContinue(goal.args()[1], Term::List(items));
  }
  if (f == "count" && n == 2) {
    std::vector<Term> sub = {goal.args()[0]};
    bool sub_stop = false;
    int64_t sub_solutions = 0;
    size_t mark = b->Mark();
    LABFLOW_RETURN_IF_ERROR(SolveFrom(
        sub, 0, b, [](const Bindings&) { return true; }, &sub_stop,
        &sub_solutions));
    b->UndoTo(mark);
    return UnifyAndContinue(goal.args()[1],
                            Term::Const(Value::Int(sub_solutions)));
  }

  *handled = false;
  return Status::OK();
}

// ---- LabBase-backed predicates ----------------------------------------------

Status Solver::SolveDbPredicate(const Term& goal,
                                const std::vector<Term>& goals, size_t idx,
                                Bindings* b, const Callback& cb, bool* stop,
                                int64_t* solutions, bool* handled) {
  if (db_ == nullptr) return Status::OK();
  const std::string& f = goal.name();
  const size_t n = goal.arity();
  *handled = true;

  auto Continue = [&]() {
    return SolveFrom(goals, idx + 1, b, cb, stop, solutions);
  };
  auto UnifyAndContinue = [&](const Term& a, const Term& t) -> Status {
    size_t mark = b->Mark();
    if (Unify(a, t, b)) {
      LABFLOW_RETURN_IF_ERROR(Continue());
    }
    b->UndoTo(mark);
    return Status::OK();
  };
  auto UnifyAllAndContinue =
      [&](const std::vector<std::pair<Term, Term>>& pairs) -> Status {
    size_t mark = b->Mark();
    bool ok = true;
    for (const auto& [a, t] : pairs) {
      if (!Unify(a, t, b)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      LABFLOW_RETURN_IF_ERROR(Continue());
    }
    b->UndoTo(mark);
    return Status::OK();
  };
  auto OidTerm = [](Oid oid) { return Term::Const(Value::Object(oid)); };

  const labbase::Schema& schema = db_->schema();

  /// Enumerates all materials (every material class).
  auto AllMaterials = [&]() -> Result<std::vector<Oid>> {
    std::vector<Oid> out;
    for (ClassId c = 0; c < schema.class_count(); ++c) {
      if (!schema.IsMaterialClass(c)) continue;
      LABFLOW_ASSIGN_OR_RETURN(std::vector<Oid> ms, db_->MaterialsOfClass(c));
      out.insert(out.end(), ms.begin(), ms.end());
    }
    return out;
  };

  // ---- pure queries -------------------------------------------------------

  if (f == "material" && n == 1) {
    Term m = b->Walk(goal.args()[0]);
    if (!m.is_var()) {
      LABFLOW_ASSIGN_OR_RETURN(Oid oid, TermToOid(b->Resolve(m)));
      if (db_->GetMaterial(oid).ok()) return Continue();
      return Status::OK();
    }
    LABFLOW_ASSIGN_OR_RETURN(std::vector<Oid> all, AllMaterials());
    for (Oid oid : all) {
      LABFLOW_RETURN_IF_ERROR(UnifyAndContinue(m, OidTerm(oid)));
      if (*stop) return Status::OK();
    }
    return Status::OK();
  }

  // <material-class>(M): class-membership predicate, e.g. clone(X).
  if (n == 1) {
    auto class_id = schema.MaterialClassByName(f);
    if (class_id.ok()) {
      Term m = b->Walk(goal.args()[0]);
      if (!m.is_var()) {
        LABFLOW_ASSIGN_OR_RETURN(Oid oid, TermToOid(b->Resolve(m)));
        auto info = db_->GetMaterial(oid);
        if (info.ok() && info->class_id == class_id.value()) {
          return Continue();
        }
        return Status::OK();
      }
      LABFLOW_ASSIGN_OR_RETURN(std::vector<Oid> ms,
                               db_->MaterialsOfClass(class_id.value()));
      for (Oid oid : ms) {
        LABFLOW_RETURN_IF_ERROR(UnifyAndContinue(m, OidTerm(oid)));
        if (*stop) return Status::OK();
      }
      return Status::OK();
    }
  }

  if (f == "material_name" && n == 2) {
    Term m = b->Walk(goal.args()[0]);
    if (m.is_var()) {
      // Look up by name when given, else enumerate.
      Term name_t = b->Resolve(goal.args()[1]);
      if (!name_t.is_var()) {
        LABFLOW_ASSIGN_OR_RETURN(std::string name, TermToName(name_t));
        auto oid = db_->FindMaterialByName(name);
        if (!oid.ok()) return Status::OK();
        return UnifyAndContinue(m, OidTerm(oid.value()));
      }
      LABFLOW_ASSIGN_OR_RETURN(std::vector<Oid> all, AllMaterials());
      for (Oid oid : all) {
        LABFLOW_ASSIGN_OR_RETURN(labbase::MaterialInfo info,
                                 db_->GetMaterial(oid));
        LABFLOW_RETURN_IF_ERROR(UnifyAllAndContinue(
            {{m, OidTerm(oid)},
             {goal.args()[1], Term::Const(Value::String(info.name))}}));
        if (*stop) return Status::OK();
      }
      return Status::OK();
    }
    LABFLOW_ASSIGN_OR_RETURN(Oid oid, TermToOid(b->Resolve(m)));
    LABFLOW_ASSIGN_OR_RETURN(labbase::MaterialInfo info, db_->GetMaterial(oid));
    return UnifyAndContinue(goal.args()[1],
                            Term::Const(Value::String(info.name)));
  }

  if (f == "created" && n == 2) {
    LABFLOW_ASSIGN_OR_RETURN(Oid oid, TermToOid(b->Resolve(goal.args()[0])));
    LABFLOW_ASSIGN_OR_RETURN(labbase::MaterialInfo info, db_->GetMaterial(oid));
    return UnifyAndContinue(goal.args()[1],
                            Term::Const(Value::Time(info.created)));
  }

  if (f == "workflow_state" && n == 1) {
    // Enumerates the defined workflow states (bound mode checks existence).
    Term s = b->Resolve(goal.args()[0]);
    if (!s.is_var()) {
      LABFLOW_ASSIGN_OR_RETURN(std::string name, TermToName(s));
      if (schema.StateByName(name).ok()) return Continue();
      return Status::OK();
    }
    for (StateId state = 0; state < schema.state_count(); ++state) {
      LABFLOW_ASSIGN_OR_RETURN(std::string name, schema.StateName(state));
      LABFLOW_RETURN_IF_ERROR(UnifyAndContinue(s, Term::Atom(name)));
      if (*stop) return Status::OK();
    }
    return Status::OK();
  }

  if (f == "material_class" && n == 2) {
    // material_class(M, ClassName): which class a material belongs to.
    Term m = b->Walk(goal.args()[0]);
    if (!m.is_var()) {
      LABFLOW_ASSIGN_OR_RETURN(Oid oid, TermToOid(b->Resolve(m)));
      LABFLOW_ASSIGN_OR_RETURN(labbase::MaterialInfo info,
                               db_->GetMaterial(oid));
      LABFLOW_ASSIGN_OR_RETURN(std::string name,
                               schema.ClassName(info.class_id));
      return UnifyAndContinue(goal.args()[1], Term::Atom(name));
    }
    Term c = b->Resolve(goal.args()[1]);
    if (!c.is_var()) {
      LABFLOW_ASSIGN_OR_RETURN(std::string name, TermToName(c));
      auto cls = schema.MaterialClassByName(name);
      if (!cls.ok()) return Status::OK();
      LABFLOW_ASSIGN_OR_RETURN(std::vector<Oid> ms,
                               db_->MaterialsOfClass(cls.value()));
      for (Oid oid : ms) {
        LABFLOW_RETURN_IF_ERROR(UnifyAndContinue(m, OidTerm(oid)));
        if (*stop) return Status::OK();
      }
      return Status::OK();
    }
    for (ClassId cls = 0; cls < schema.class_count(); ++cls) {
      if (!schema.IsMaterialClass(cls)) continue;
      LABFLOW_ASSIGN_OR_RETURN(std::string name, schema.ClassName(cls));
      LABFLOW_ASSIGN_OR_RETURN(std::vector<Oid> ms,
                               db_->MaterialsOfClass(cls));
      for (Oid oid : ms) {
        LABFLOW_RETURN_IF_ERROR(UnifyAllAndContinue(
            {{m, OidTerm(oid)}, {goal.args()[1], Term::Atom(name)}}));
        if (*stop) return Status::OK();
      }
    }
    return Status::OK();
  }

  if (f == "attribute" && n == 1) {
    // Enumerates the defined attributes.
    Term a = b->Resolve(goal.args()[0]);
    if (!a.is_var()) {
      LABFLOW_ASSIGN_OR_RETURN(std::string name, TermToName(a));
      if (schema.AttributeByName(name).ok()) return Continue();
      return Status::OK();
    }
    for (AttrId attr = 0; attr < schema.attribute_count(); ++attr) {
      LABFLOW_ASSIGN_OR_RETURN(std::string name, schema.AttributeName(attr));
      LABFLOW_RETURN_IF_ERROR(UnifyAndContinue(a, Term::Atom(name)));
      if (*stop) return Status::OK();
    }
    return Status::OK();
  }

  if (f == "state" && n == 2) {
    Term m = b->Walk(goal.args()[0]);
    Term s = b->Resolve(goal.args()[1]);
    if (!m.is_var()) {
      LABFLOW_ASSIGN_OR_RETURN(Oid oid, TermToOid(b->Resolve(m)));
      LABFLOW_ASSIGN_OR_RETURN(StateId state, db_->CurrentState(oid));
      LABFLOW_ASSIGN_OR_RETURN(std::string name, schema.StateName(state));
      return UnifyAndContinue(goal.args()[1], Term::Atom(name));
    }
    if (!s.is_var()) {
      LABFLOW_ASSIGN_OR_RETURN(std::string name, TermToName(s));
      auto state = schema.StateByName(name);
      if (!state.ok()) return Status::OK();
      LABFLOW_ASSIGN_OR_RETURN(std::vector<Oid> ms,
                               db_->MaterialsInState(state.value()));
      for (Oid oid : ms) {
        LABFLOW_RETURN_IF_ERROR(UnifyAndContinue(m, OidTerm(oid)));
        if (*stop) return Status::OK();
      }
      return Status::OK();
    }
    for (StateId state = 0; state < schema.state_count(); ++state) {
      LABFLOW_ASSIGN_OR_RETURN(std::string name, schema.StateName(state));
      LABFLOW_ASSIGN_OR_RETURN(std::vector<Oid> ms,
                               db_->MaterialsInState(state));
      for (Oid oid : ms) {
        LABFLOW_RETURN_IF_ERROR(UnifyAllAndContinue(
            {{m, OidTerm(oid)}, {goal.args()[1], Term::Atom(name)}}));
        if (*stop) return Status::OK();
      }
    }
    return Status::OK();
  }

  if (f == "most_recent" && n == 3) {
    Term m_t = b->Walk(goal.args()[0]);
    if (m_t.is_var()) {
      // Enumerate all materials and retry with M bound.
      LABFLOW_ASSIGN_OR_RETURN(std::vector<Oid> all, AllMaterials());
      for (Oid oid : all) {
        size_t mark = b->Mark();
        if (Unify(m_t, OidTerm(oid), b)) {
          bool sub_handled = false;
          LABFLOW_RETURN_IF_ERROR(SolveDbPredicate(
              b->Resolve(goal), goals, idx, b, cb, stop, solutions,
              &sub_handled));
        }
        b->UndoTo(mark);
        if (*stop) return Status::OK();
      }
      return Status::OK();
    }
    LABFLOW_ASSIGN_OR_RETURN(Oid oid, TermToOid(b->Resolve(m_t)));
    Term attr_t = b->Resolve(goal.args()[1]);
    if (attr_t.is_var()) {
      LABFLOW_ASSIGN_OR_RETURN(labbase::MaterialInfo info,
                               db_->GetMaterial(oid));
      for (AttrId attr : info.attrs_present) {
        LABFLOW_ASSIGN_OR_RETURN(std::string name, schema.AttributeName(attr));
        auto value = as_of_ >= 0
                         ? db_->ValueAsOf(oid, attr, Timestamp(as_of_))
                         : db_->MostRecent(oid, attr);
        if (!value.ok()) continue;
        LABFLOW_RETURN_IF_ERROR(UnifyAllAndContinue(
            {{goal.args()[1], Term::Atom(name)},
             {goal.args()[2], ValueToTerm(value.value())}}));
        if (*stop) return Status::OK();
      }
      return Status::OK();
    }
    LABFLOW_ASSIGN_OR_RETURN(std::string attr_name, TermToName(attr_t));
    auto attr = schema.AttributeByName(attr_name);
    if (!attr.ok()) return Status::OK();
    auto value =
        as_of_ >= 0
            ? db_->ValueAsOf(oid, attr.value(), Timestamp(as_of_))
            : db_->MostRecent(oid, attr.value());
    if (!value.ok()) return Status::OK();  // no tag recorded -> fail
    return UnifyAndContinue(goal.args()[2], ValueToTerm(value.value()));
  }

  if (f == "history" && n == 3) {
    LABFLOW_ASSIGN_OR_RETURN(Oid oid, TermToOid(b->Resolve(goal.args()[0])));
    LABFLOW_ASSIGN_OR_RETURN(std::string attr_name,
                             TermToName(b->Resolve(goal.args()[1])));
    auto attr = schema.AttributeByName(attr_name);
    if (!attr.ok()) return Status::OK();
    std::vector<labbase::HistoryEntry> hist;
    if (as_of_ >= 0) {
      LABFLOW_ASSIGN_OR_RETURN(
          hist, db_->HistoryBetween(oid, attr.value(),
                                    Timestamp(std::numeric_limits<int64_t>::min()),
                                    Timestamp(as_of_)));
    } else {
      LABFLOW_ASSIGN_OR_RETURN(hist, db_->History(oid, attr.value()));
    }
    std::vector<Term> items;
    items.reserve(hist.size());
    for (const labbase::HistoryEntry& e : hist) {
      items.push_back(Term::Make(
          "h", {Term::Const(Value::Time(e.time)), ValueToTerm(e.value)}));
    }
    return UnifyAndContinue(goal.args()[2], Term::List(items));
  }

  if (f == "value_at" && n == 4) {
    // value_at(M, Attr, Time, V): temporal as-of query.
    LABFLOW_ASSIGN_OR_RETURN(Oid oid, TermToOid(b->Resolve(goal.args()[0])));
    LABFLOW_ASSIGN_OR_RETURN(std::string attr_name,
                             TermToName(b->Resolve(goal.args()[1])));
    auto attr = schema.AttributeByName(attr_name);
    if (!attr.ok()) return Status::OK();
    LABFLOW_ASSIGN_OR_RETURN(Timestamp at,
                             TermToTime(b->Resolve(goal.args()[2])));
    if (as_of_ >= 0 && at > Timestamp(as_of_)) at = Timestamp(as_of_);
    auto value = db_->ValueAsOf(oid, attr.value(), at);
    if (!value.ok()) return Status::OK();
    return UnifyAndContinue(goal.args()[3], ValueToTerm(value.value()));
  }

  if (f == "history_between" && n == 5) {
    // history_between(M, Attr, From, To, L).
    LABFLOW_ASSIGN_OR_RETURN(Oid oid, TermToOid(b->Resolve(goal.args()[0])));
    LABFLOW_ASSIGN_OR_RETURN(std::string attr_name,
                             TermToName(b->Resolve(goal.args()[1])));
    auto attr = schema.AttributeByName(attr_name);
    if (!attr.ok()) return Status::OK();
    LABFLOW_ASSIGN_OR_RETURN(Timestamp from,
                             TermToTime(b->Resolve(goal.args()[2])));
    LABFLOW_ASSIGN_OR_RETURN(Timestamp to,
                             TermToTime(b->Resolve(goal.args()[3])));
    if (as_of_ >= 0 && to > Timestamp(as_of_)) to = Timestamp(as_of_);
    LABFLOW_ASSIGN_OR_RETURN(std::vector<labbase::HistoryEntry> hist,
                             db_->HistoryBetween(oid, attr.value(), from, to));
    std::vector<Term> items;
    items.reserve(hist.size());
    for (const labbase::HistoryEntry& e : hist) {
      items.push_back(Term::Make(
          "h", {Term::Const(Value::Time(e.time)), ValueToTerm(e.value)}));
    }
    return UnifyAndContinue(goal.args()[4], Term::List(items));
  }

  if (f == "step" && n == 3) {
    Term s = b->Walk(goal.args()[0]);
    auto EmitStep = [&](Oid step_oid) -> Status {
      LABFLOW_ASSIGN_OR_RETURN(labbase::StepInfo info, db_->GetStep(step_oid));
      // Steps recorded after the AS OF horizon do not exist at it.
      if (as_of_ >= 0 && info.time > Timestamp(as_of_)) return Status::OK();
      LABFLOW_ASSIGN_OR_RETURN(std::string class_name,
                               schema.ClassName(info.class_id));
      return UnifyAllAndContinue(
          {{s, OidTerm(step_oid)},
           {goal.args()[1], Term::Atom(class_name)},
           {goal.args()[2], Term::Const(Value::Time(info.time))}});
    };
    if (!s.is_var()) {
      LABFLOW_ASSIGN_OR_RETURN(Oid oid, TermToOid(b->Resolve(s)));
      return EmitStep(oid);
    }
    LABFLOW_ASSIGN_OR_RETURN(std::vector<Oid> steps, db_->ListSteps());
    for (Oid oid : steps) {
      LABFLOW_RETURN_IF_ERROR(EmitStep(oid));
      if (*stop) return Status::OK();
    }
    return Status::OK();
  }

  if (f == "step_version" && n == 2) {
    LABFLOW_ASSIGN_OR_RETURN(Oid oid, TermToOid(b->Resolve(goal.args()[0])));
    LABFLOW_ASSIGN_OR_RETURN(labbase::StepInfo info, db_->GetStep(oid));
    return UnifyAndContinue(
        goal.args()[1],
        Term::Const(Value::Int(static_cast<int64_t>(info.version))));
  }

  if (f == "step_material" && n == 2) {
    LABFLOW_ASSIGN_OR_RETURN(Oid oid, TermToOid(b->Resolve(goal.args()[0])));
    LABFLOW_ASSIGN_OR_RETURN(labbase::StepInfo info, db_->GetStep(oid));
    for (const labbase::StepMaterialEntry& e : info.materials) {
      LABFLOW_RETURN_IF_ERROR(
          UnifyAndContinue(goal.args()[1], OidTerm(Oid(e.material.raw))));
      if (*stop) return Status::OK();
    }
    return Status::OK();
  }

  if (f == "step_tag" && n == 4) {
    LABFLOW_ASSIGN_OR_RETURN(Oid oid, TermToOid(b->Resolve(goal.args()[0])));
    LABFLOW_ASSIGN_OR_RETURN(labbase::StepInfo info, db_->GetStep(oid));
    for (const labbase::StepMaterialEntry& e : info.materials) {
      for (const StepTag& tag : e.tags) {
        LABFLOW_ASSIGN_OR_RETURN(std::string attr_name,
                                 schema.AttributeName(tag.attr));
        LABFLOW_RETURN_IF_ERROR(UnifyAllAndContinue(
            {{goal.args()[1], OidTerm(Oid(e.material.raw))},
             {goal.args()[2], Term::Atom(attr_name)},
             {goal.args()[3], ValueToTerm(tag.value)}}));
        if (*stop) return Status::OK();
      }
    }
    return Status::OK();
  }

  if (f == "in_set" && n == 2) {
    LABFLOW_ASSIGN_OR_RETURN(std::string name,
                             TermToName(b->Resolve(goal.args()[0])));
    auto set = db_->FindSetByName(name);
    if (!set.ok()) return Status::OK();
    LABFLOW_ASSIGN_OR_RETURN(std::vector<Oid> members,
                             db_->SetMembers(set.value()));
    for (Oid m : members) {
      LABFLOW_RETURN_IF_ERROR(UnifyAndContinue(goal.args()[1], OidTerm(m)));
      if (*stop) return Status::OK();
    }
    return Status::OK();
  }

  // ---- updates (workflow tracking, paper Section 8.3) ---------------------

  if (f == "define_material_class" && n == 1) {
    LABFLOW_ASSIGN_OR_RETURN(std::string name,
                             TermToName(b->Resolve(goal.args()[0])));
    Status st = db_->DefineMaterialClass(name).status();
    if (!st.ok() && !st.IsAlreadyExists()) return st;
    return Continue();
  }
  if (f == "define_step_class" && n == 2) {
    LABFLOW_ASSIGN_OR_RETURN(std::string name,
                             TermToName(b->Resolve(goal.args()[0])));
    LABFLOW_ASSIGN_OR_RETURN(std::vector<Term> attr_terms,
                             ListToVector(goal.args()[1], *b));
    std::vector<std::string> attrs;
    for (const Term& t : attr_terms) {
      LABFLOW_ASSIGN_OR_RETURN(std::string a, TermToName(t));
      attrs.push_back(std::move(a));
    }
    LABFLOW_RETURN_IF_ERROR(db_->DefineStepClass(name, attrs).status());
    return Continue();
  }
  if (f == "define_state" && n == 1) {
    LABFLOW_ASSIGN_OR_RETURN(std::string name,
                             TermToName(b->Resolve(goal.args()[0])));
    LABFLOW_RETURN_IF_ERROR(db_->DefineState(name).status());
    return Continue();
  }
  if (f == "create_material" && n == 4) {
    LABFLOW_ASSIGN_OR_RETURN(std::string class_name,
                             TermToName(b->Resolve(goal.args()[0])));
    LABFLOW_ASSIGN_OR_RETURN(std::string name,
                             TermToName(b->Resolve(goal.args()[1])));
    LABFLOW_ASSIGN_OR_RETURN(std::string state_name,
                             TermToName(b->Resolve(goal.args()[2])));
    LABFLOW_ASSIGN_OR_RETURN(ClassId class_id,
                             schema.MaterialClassByName(class_name));
    LABFLOW_ASSIGN_OR_RETURN(StateId state, schema.StateByName(state_name));
    LABFLOW_ASSIGN_OR_RETURN(Oid oid, db_->CreateMaterial(class_id, name,
                                                          state, Timestamp(0)));
    return UnifyAndContinue(goal.args()[3], OidTerm(oid));
  }
  if (f == "create_set" && n == 1) {
    LABFLOW_ASSIGN_OR_RETURN(std::string name,
                             TermToName(b->Resolve(goal.args()[0])));
    Status st = db_->CreateSet(name).status();
    if (!st.ok() && !st.IsAlreadyExists()) return st;
    return Continue();
  }
  if (f == "add_to_set" && n == 2) {
    LABFLOW_ASSIGN_OR_RETURN(std::string name,
                             TermToName(b->Resolve(goal.args()[0])));
    LABFLOW_ASSIGN_OR_RETURN(Oid set, db_->FindSetByName(name));
    LABFLOW_ASSIGN_OR_RETURN(Oid m, TermToOid(b->Resolve(goal.args()[1])));
    LABFLOW_RETURN_IF_ERROR(db_->AddToSet(set, m));
    return Continue();
  }
  if (f == "record_step" && n == 3) {
    LABFLOW_ASSIGN_OR_RETURN(std::string class_name,
                             TermToName(b->Resolve(goal.args()[0])));
    LABFLOW_ASSIGN_OR_RETURN(ClassId class_id,
                             schema.StepClassByName(class_name));
    LABFLOW_ASSIGN_OR_RETURN(Timestamp time,
                             TermToTime(b->Resolve(goal.args()[1])));
    LABFLOW_ASSIGN_OR_RETURN(std::vector<Term> effect_terms,
                             ListToVector(goal.args()[2], *b));
    std::vector<StepEffect> effects;
    for (const Term& et : effect_terms) {
      if (!et.is_compound() || et.name() != "effect" || et.arity() != 3) {
        return Status::InvalidArgument(
            "record_step effects must be effect(M, Tags, NewState)");
      }
      StepEffect effect;
      LABFLOW_ASSIGN_OR_RETURN(effect.material, TermToOid(et.args()[0]));
      LABFLOW_ASSIGN_OR_RETURN(std::vector<Term> tag_terms,
                               ListToVector(et.args()[1], *b));
      for (const Term& tt : tag_terms) {
        if (!tt.is_compound() || tt.name() != "tag" || tt.arity() != 2) {
          return Status::InvalidArgument("tags must be tag(Attr, Value)");
        }
        LABFLOW_ASSIGN_OR_RETURN(std::string attr_name,
                                 TermToName(tt.args()[0]));
        LABFLOW_ASSIGN_OR_RETURN(AttrId attr,
                                 schema.AttributeByName(attr_name));
        LABFLOW_ASSIGN_OR_RETURN(Value v, TermToValue(tt.args()[1]));
        effect.tags.push_back(StepTag{attr, std::move(v)});
      }
      Term state_t = et.args()[2];
      if (state_t.is_atom() && state_t.name() == "same") {
        effect.new_state = kInvalidState;
      } else {
        LABFLOW_ASSIGN_OR_RETURN(std::string state_name, TermToName(state_t));
        LABFLOW_ASSIGN_OR_RETURN(effect.new_state,
                                 schema.StateByName(state_name));
      }
      effects.push_back(std::move(effect));
    }
    LABFLOW_RETURN_IF_ERROR(db_->RecordStep(class_id, time, effects).status());
    return Continue();
  }

  *handled = false;
  return Status::OK();
}

}  // namespace labflow::query
