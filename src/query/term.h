#ifndef LABFLOW_QUERY_TERM_H_
#define LABFLOW_QUERY_TERM_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace labflow::query {

/// A term of the deductive query language (paper Section 6): the language
/// is "a deductive language in the tradition of Datalog and Prolog".
///
/// Terms are immutable values with structural sharing; copying is cheap.
///
///   Var       X, Material, _           (logic variable)
///   Const     42, 3.5, "cl-1", #17     (a labflow::Value literal)
///   Atom      clone, waiting_for_gel   (symbolic constant)
///   Compound  state(M, s), [a, b|T]    (functor + args; lists desugar to
///                                       '.'(Head, Tail) / '[]')
class Term {
 public:
  enum class Kind { kVar, kConst, kAtom, kCompound };

  /// Default-constructed term is the atom '[]' (empty list).
  Term() : kind_(Kind::kAtom), name_("[]") {}

  static Term Var(std::string name) {
    Term t;
    t.kind_ = Kind::kVar;
    t.name_ = std::move(name);
    return t;
  }
  static Term Const(Value value) {
    Term t;
    t.kind_ = Kind::kConst;
    t.value_ = std::move(value);
    return t;
  }
  static Term Atom(std::string name) {
    Term t;
    t.kind_ = Kind::kAtom;
    t.name_ = std::move(name);
    return t;
  }
  static Term Make(std::string functor, std::vector<Term> args) {
    Term t;
    t.kind_ = Kind::kCompound;
    t.name_ = std::move(functor);
    t.args_ = std::make_shared<const std::vector<Term>>(std::move(args));
    return t;
  }

  /// List constructors: '.'(head, tail) and '[]'.
  static Term Nil() { return Atom("[]"); }
  static Term Cons(Term head, Term tail) {
    return Make(".", {std::move(head), std::move(tail)});
  }
  /// Builds a proper list from a vector.
  static Term List(const std::vector<Term>& items);

  Kind kind() const { return kind_; }
  bool is_var() const { return kind_ == Kind::kVar; }
  bool is_const() const { return kind_ == Kind::kConst; }
  bool is_atom() const { return kind_ == Kind::kAtom; }
  bool is_compound() const { return kind_ == Kind::kCompound; }

  /// Variable name, atom name, or compound functor.
  const std::string& name() const { return name_; }
  const Value& value() const { return value_; }
  const std::vector<Term>& args() const {
    static const std::vector<Term> kEmpty;
    return args_ ? *args_ : kEmpty;
  }
  size_t arity() const { return args_ ? args_->size() : 0; }

  bool IsNil() const { return is_atom() && name_ == "[]"; }
  bool IsCons() const { return is_compound() && name_ == "." && arity() == 2; }

  /// Structural total order (vars by name, then consts by Value order,
  /// atoms by name, compounds by functor/arity/args). Used by setof.
  static int Compare(const Term& a, const Term& b);

  friend bool operator==(const Term& a, const Term& b) {
    return Compare(a, b) == 0;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }

  /// Renders in source syntax ("state(M, waiting_for_gel)", "[1, 2|T]").
  std::string ToString() const;

 private:
  Kind kind_ = Kind::kAtom;
  std::string name_;
  Value value_;
  std::shared_ptr<const std::vector<Term>> args_;
};

}  // namespace labflow::query

#endif  // LABFLOW_QUERY_TERM_H_
