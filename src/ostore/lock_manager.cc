#include "ostore/lock_manager.h"

#include <algorithm>
#include <chrono>
#include <string>

namespace labflow::ostore {

bool LockManager::CanGrantLocked(const PageLock& lock, uint64_t txn,
                                 bool exclusive) const {
  if (lock.x_owner == txn) return true;  // reentrant X covers S and X
  if (!exclusive) {
    return lock.x_owner == 0;
  }
  // Exclusive: no other X holder and no other S holders.
  if (lock.x_owner != 0) return false;
  if (lock.s_owners.empty()) return true;
  return lock.s_owners.size() == 1 && lock.s_owners.count(txn) == 1;
}

bool LockManager::DeadlockDfsLocked(uint64_t start, uint64_t t,
                                    std::set<uint64_t>* seen,
                                    std::vector<uint64_t>* path,
                                    uint64_t* victim) const {
  auto wit = waiting_.find(t);
  if (wit == waiting_.end()) return false;  // t is running, not a graph node
  auto lit = table_.find(wit->second.page);
  if (lit == table_.end()) return false;
  seen->insert(t);
  path->push_back(t);
  const PageLock& lock = lit->second;
  // The holders t waits behind. An S request conflicts only with the X
  // holder; an X request additionally with every other S holder (the
  // upgrade deadlock — two S holders both requesting X — closes its cycle
  // through exactly these edges).
  std::vector<uint64_t> holders;
  if (lock.x_owner != 0 && lock.x_owner != t) holders.push_back(lock.x_owner);
  if (wit->second.exclusive) {
    for (uint64_t s : lock.s_owners) {
      if (s != t) holders.push_back(s);
    }
  }
  for (uint64_t h : holders) {
    if (h == start) {
      // `path` holds every waiting transaction on the cycle, `start`
      // included (it is path->front()). Youngest = largest id loses.
      *victim = *std::max_element(path->begin(), path->end());
      return true;
    }
    if (seen->count(h)) continue;
    if (DeadlockDfsLocked(start, h, seen, path, victim)) return true;
  }
  path->pop_back();
  return false;
}

uint64_t LockManager::FindDeadlockVictimLocked(uint64_t start) const {
  std::set<uint64_t> seen;
  std::vector<uint64_t> path;
  uint64_t victim = 0;
  if (DeadlockDfsLocked(start, start, &seen, &path, &victim)) return victim;
  return 0;
}

Status LockManager::Acquire(uint64_t txn, uint64_t page, bool exclusive) {
  MutexLock g(mu_);
  PageLock& lock = table_[page];
  if (!exclusive && lock.s_owners.count(txn)) return Status::OK();
  if (lock.x_owner == txn) return Status::OK();
  if (!CanGrantLocked(lock, txn, exclusive)) {
    ++lock_waits_;
    if (!exclusive) ++reader_lock_waits_;
    waiting_[txn] = WaitInfo{page, exclusive};
    // This request just added an edge to the waits-for graph; if that edge
    // completed a cycle, this thread is the one that can see it. Detect now,
    // before parking, and abort the youngest cycle member.
    if (uint64_t victim = FindDeadlockVictimLocked(txn); victim != 0) {
      ++deadlocks_;
      if (victim == txn) {
        if (!exclusive) ++reader_deadlocks_;
        waiting_.erase(txn);
        return Status::Aborted("deadlock victim: txn " + std::to_string(txn) +
                               " waiting for page " + std::to_string(page));
      }
      victims_.insert(victim);
      cv_.NotifyAll();
    }
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms_);
    while (true) {
      // Victimhood outranks grantability: if some detection pass sentenced
      // this transaction, honoring a concurrent grant could leave the cycle
      // it was chosen to break intact.
      if (victims_.erase(txn) > 0) {
        if (!exclusive) ++reader_deadlocks_;
        waiting_.erase(txn);
        return Status::Aborted("deadlock victim: txn " + std::to_string(txn) +
                               " waiting for page " + std::to_string(page));
      }
      if (CanGrantLocked(table_[page], txn, exclusive)) break;
      if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) {
        if (victims_.erase(txn) > 0) {
          if (!exclusive) ++reader_deadlocks_;
          waiting_.erase(txn);
          return Status::Aborted("deadlock victim: txn " +
                                 std::to_string(txn) + " waiting for page " +
                                 std::to_string(page));
        }
        if (CanGrantLocked(table_[page], txn, exclusive)) break;
        if (!exclusive) ++reader_deadlocks_;
        waiting_.erase(txn);
        return Status::Aborted("lock timeout on page " + std::to_string(page) +
                               " (no cycle chose this txn; holder presumed "
                               "stalled)");
      }
    }
    waiting_.erase(txn);
  }
  PageLock& granted = table_[page];
  if (exclusive) {
    granted.s_owners.erase(txn);  // upgrade consumes the shared hold
    granted.x_owner = txn;
  } else {
    granted.s_owners.insert(txn);
  }
  held_[txn].insert(page);
  return Status::OK();
}

bool LockManager::TryAcquire(uint64_t txn, uint64_t page, bool exclusive) {
  MutexLock g(mu_);
  PageLock& lock = table_[page];
  if (!exclusive && lock.s_owners.count(txn)) return true;
  if (lock.x_owner == txn) return true;
  if (!CanGrantLocked(lock, txn, exclusive)) return false;
  if (exclusive) {
    lock.s_owners.erase(txn);  // upgrade consumes the shared hold
    lock.x_owner = txn;
  } else {
    lock.s_owners.insert(txn);
  }
  held_[txn].insert(page);
  return true;
}

void LockManager::ReleaseAll(uint64_t txn) {
  MutexLock g(mu_);
  auto it = held_.find(txn);
  // Even a transaction that never acquired a lock may have bookkeeping to
  // clear: a victim entry it never consumed (granted before it woke, then
  // aborted for another reason) or a stale waiting entry.
  waiting_.erase(txn);
  victims_.erase(txn);
  if (it == held_.end()) return;
  for (uint64_t page : it->second) {
    auto lit = table_.find(page);
    if (lit == table_.end()) continue;
    if (lit->second.x_owner == txn) lit->second.x_owner = 0;
    lit->second.s_owners.erase(txn);
    if (lit->second.x_owner == 0 && lit->second.s_owners.empty()) {
      table_.erase(lit);
    }
  }
  held_.erase(it);
  cv_.NotifyAll();
}

}  // namespace labflow::ostore
