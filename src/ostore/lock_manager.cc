#include "ostore/lock_manager.h"

#include <chrono>

namespace labflow::ostore {

bool LockManager::CanGrantLocked(const PageLock& lock, uint64_t txn,
                                 bool exclusive) const {
  if (lock.x_owner == txn) return true;  // reentrant X covers S and X
  if (!exclusive) {
    return lock.x_owner == 0;
  }
  // Exclusive: no other X holder and no other S holders.
  if (lock.x_owner != 0) return false;
  if (lock.s_owners.empty()) return true;
  return lock.s_owners.size() == 1 && lock.s_owners.count(txn) == 1;
}

Status LockManager::Acquire(uint64_t txn, uint64_t page, bool exclusive) {
  MutexLock g(mu_);
  PageLock& lock = table_[page];
  if (!exclusive && lock.s_owners.count(txn)) return Status::OK();
  if (lock.x_owner == txn) return Status::OK();
  if (!CanGrantLocked(lock, txn, exclusive)) {
    ++lock_waits_;
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms_);
    while (!CanGrantLocked(table_[page], txn, exclusive)) {
      if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) {
        if (CanGrantLocked(table_[page], txn, exclusive)) break;
        return Status::Aborted("lock timeout on page " + std::to_string(page) +
                               " (presumed deadlock)");
      }
    }
  }
  PageLock& granted = table_[page];
  if (exclusive) {
    granted.s_owners.erase(txn);  // upgrade consumes the shared hold
    granted.x_owner = txn;
  } else {
    granted.s_owners.insert(txn);
  }
  held_[txn].insert(page);
  return Status::OK();
}

bool LockManager::TryAcquire(uint64_t txn, uint64_t page, bool exclusive) {
  MutexLock g(mu_);
  PageLock& lock = table_[page];
  if (!exclusive && lock.s_owners.count(txn)) return true;
  if (lock.x_owner == txn) return true;
  if (!CanGrantLocked(lock, txn, exclusive)) return false;
  if (exclusive) {
    lock.s_owners.erase(txn);  // upgrade consumes the shared hold
    lock.x_owner = txn;
  } else {
    lock.s_owners.insert(txn);
  }
  held_[txn].insert(page);
  return true;
}

void LockManager::ReleaseAll(uint64_t txn) {
  MutexLock g(mu_);
  auto it = held_.find(txn);
  if (it == held_.end()) return;
  for (uint64_t page : it->second) {
    auto lit = table_.find(page);
    if (lit == table_.end()) continue;
    if (lit->second.x_owner == txn) lit->second.x_owner = 0;
    lit->second.s_owners.erase(txn);
    if (lit->second.x_owner == 0 && lit->second.s_owners.empty()) {
      table_.erase(lit);
    }
  }
  held_.erase(it);
  cv_.NotifyAll();
}

}  // namespace labflow::ostore
