#include "ostore/wal.h"

#include <chrono>
#include <cstring>

#include "common/status_macros.h"

namespace labflow::ostore {

namespace {

void PutLE32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, 4);
}

void PutLE64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, 8);
}

uint32_t GetLE32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t GetLE64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

Wal::~Wal() {
  if (file_ != nullptr) {
    LABFLOW_IGNORE_STATUS(file_->Close(),
                          "destructor has no error channel; the owner should "
                          "Close() explicitly to observe failures");
  }
}

uint32_t Wal::Checksum(std::string_view data, uint32_t seed) {
  uint32_t h = seed;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

Status Wal::Open(storage::Env* env, const std::string& path) {
  if (file_ != nullptr) return Status::InvalidArgument("wal already open");
  env_ = env != nullptr ? env : storage::Env::Default();
  LABFLOW_ASSIGN_OR_RETURN(std::unique_ptr<storage::File> file,
                           env_->OpenFile(path, /*truncate=*/false));
  LABFLOW_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  path_ = path;
  file_ = std::move(file);
  size_.store(size, std::memory_order_relaxed);
  return Status::OK();
}

void Wal::SetGroupLimits(size_t max_group_bytes, int64_t max_group_wait_us) {
  MutexLock g(mu_);
  max_group_bytes_ = max_group_bytes == 0 ? 1 : max_group_bytes;
  max_group_wait_us_ = max_group_wait_us;
}

Status Wal::StickyLocked() const {
  return Status::Unavailable("wal refused after earlier write failure (" +
                             error_state_.message() +
                             "); checkpoint to truncate and recover");
}

Status Wal::AppendGroup(uint64_t txn_id, std::string_view payload, bool sync) {
  if (file_ == nullptr) return Status::InvalidArgument("wal not open");

  Waiter w;
  w.sync = sync;
  w.frame.reserve(payload.size() + kHeaderBytes + kChecksumBytes);
  PutLE32(&w.frame, kGroupMagic);
  PutLE32(&w.frame, static_cast<uint32_t>(payload.size()));
  PutLE64(&w.frame, txn_id);
  w.frame.append(payload.data(), payload.size());
  // The frame so far is exactly header+payload: checksum the whole of it so
  // a flipped bit in the length or txn id fields is caught at recovery.
  PutLE32(&w.frame, Checksum(w.frame));

  // Explicit Lock/Unlock (not a scoped guard): the leader drops the mutex
  // around the file write below, and the thread-safety analysis tracks the
  // hand-over-hand pairing.
  mu_.Lock();
  if (!error_state_.ok()) {
    Status refused = StickyLocked();
    mu_.Unlock();
    return refused;
  }
  queue_.push_back(&w);
  queued_bytes_ += w.frame.size();
  cv_.NotifyAll();  // a leader in its grace window re-checks its quota
  while (!w.done &&
         (leader_active_ || queue_.empty() || queue_.front() != &w)) {
    cv_.Wait(mu_);
  }
  if (w.done) {  // an earlier leader carried our frame
    Status carried = w.status;
    mu_.Unlock();
    return carried;
  }
  if (!error_state_.ok()) {
    // The leader we were parked behind failed without carrying our frame.
    // Our group never reached the file; withdraw it and refuse, so the next
    // parked waiter can do the same instead of appending past a ghost.
    queue_.pop_front();  // == &w: the wait loop only exits at the front
    queued_bytes_ -= w.frame.size();
    Status refused = StickyLocked();
    cv_.NotifyAll();
    mu_.Unlock();
    return refused;
  }

  // This thread leads the next batch. Optionally linger so concurrent
  // committers can join before the expensive force; only a sync commit pays
  // the window (it exists to amortize fdatasync, not buffered appends).
  leader_active_ = true;
  if (sync && max_group_wait_us_ > 0) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::microseconds(max_group_wait_us_);
    while (queued_bytes_ < max_group_bytes_ &&
           cv_.WaitUntil(mu_, deadline) != std::cv_status::timeout) {
    }
  }

  std::vector<Waiter*> batch;
  std::string buf;
  bool batch_sync = false;
  while (!queue_.empty() && (batch.empty() || buf.size() < max_group_bytes_)) {
    Waiter* f = queue_.front();
    queue_.pop_front();
    queued_bytes_ -= f->frame.size();
    buf.append(f->frame);
    batch_sync |= f->sync;
    batch.push_back(f);
  }
  mu_.Unlock();

  Status st = file_->Append(buf);
  if (st.ok() && batch_sync) st = file_->Sync();
  if (st.ok()) size_.fetch_add(buf.size(), std::memory_order_relaxed);

  mu_.Lock();
  if (st.ok()) {
    stats_.frames += batch.size();
    stats_.writes += 1;
    stats_.syncs += batch_sync ? 1 : 0;
    if (batch.size() > stats_.max_frames_per_write) {
      stats_.max_frames_per_write = batch.size();
    }
  } else if (error_state_.ok()) {
    // Poison the log. Even a failed *sync* is unsafe to append past: the
    // group's bytes may be intact in the file while its commit was reported
    // failed, and later groups would promote that ghost into the valid
    // prefix recovery replays.
    error_state_ = st;
  }
  for (Waiter* f : batch) {
    if (f == &w) continue;
    f->status = st;
    f->done = true;
  }
  leader_active_ = false;
  cv_.NotifyAll();
  mu_.Unlock();
  return st;
}

Result<std::vector<Wal::Group>> Wal::ReadAll() {
  if (file_ == nullptr) return Status::InvalidArgument("wal not open");
  // A second handle to the same path: reads see the appended bytes (handles
  // share state in every Env), and the append handle keeps its position.
  LABFLOW_ASSIGN_OR_RETURN(std::unique_ptr<storage::File> f,
                           env_->OpenFile(path_, /*truncate=*/false));
  LABFLOW_ASSIGN_OR_RETURN(uint64_t file_size, f->Size());

  std::vector<Group> groups;
  uint64_t pos = 0;
  while (file_size - pos >= kHeaderBytes) {
    char header[kHeaderBytes];
    LABFLOW_RETURN_IF_ERROR(f->Read(pos, sizeof(header), header));
    if (GetLE32(header) != kGroupMagic) break;
    uint32_t len = GetLE32(header + 4);
    uint64_t txn = GetLE64(header + 8);
    // Never trust the header's length on its own: a flipped bit could demand
    // a multi-GB allocation. The payload and its checksum must fit in what
    // the file actually still holds, else this is a torn/corrupt tail.
    uint64_t remaining = file_size - pos - kHeaderBytes;
    if (len > remaining || remaining - len < kChecksumBytes) break;
    std::string payload(len, '\0');
    LABFLOW_RETURN_IF_ERROR(f->Read(pos + kHeaderBytes, len, payload.data()));
    char csum[kChecksumBytes];
    LABFLOW_RETURN_IF_ERROR(
        f->Read(pos + kHeaderBytes + len, sizeof(csum), csum));
    uint32_t expect = Checksum(payload, Checksum({header, sizeof(header)}));
    if (GetLE32(csum) != expect) break;
    groups.push_back(Group{txn, std::move(payload)});
    pos += kHeaderBytes + len + kChecksumBytes;
  }
  LABFLOW_RETURN_IF_ERROR(f->Close());
  return groups;
}

Status Wal::Truncate() {
  if (file_ == nullptr) return Status::InvalidArgument("wal not open");
  LABFLOW_IGNORE_STATUS(file_->Close(),
                        "the handle is being replaced; a close error on an "
                        "append-only handle loses nothing the truncating "
                        "reopen would have kept");
  file_ = nullptr;
  LABFLOW_ASSIGN_OR_RETURN(file_, env_->OpenFile(path_, /*truncate=*/true));
  size_.store(0, std::memory_order_relaxed);
  MutexLock g(mu_);
  // With the in-memory image checkpointed and the file empty, no ghost
  // group can survive: the sticky error has served its purpose.
  error_state_ = Status::OK();
  return Status::OK();
}

Status Wal::error_state() const {
  MutexLock g(mu_);
  return error_state_;
}

Wal::GroupStats Wal::group_stats() const {
  MutexLock g(mu_);
  return stats_;
}

Status Wal::Close() {
  if (file_ == nullptr) return Status::OK();
  Status st = file_->Close();
  file_ = nullptr;
  return st;
}

}  // namespace labflow::ostore
