#include "ostore/wal.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace labflow::ostore {

namespace {

void PutLE32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, 4);
}

void PutLE64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, 8);
}

uint32_t GetLE32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t GetLE64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

Wal::~Wal() {
  if (file_ != nullptr) std::fclose(file_);
}

uint32_t Wal::Checksum(std::string_view data) {
  // FNV-1a, sufficient to detect torn writes.
  uint32_t h = 2166136261u;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

Status Wal::Open(const std::string& path) {
  if (file_ != nullptr) return Status::InvalidArgument("wal already open");
  FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::IOError("wal open " + path + ": " + std::strerror(errno));
  }
  path_ = path;
  file_ = f;
  long pos = std::ftell(f);
  size_ = pos < 0 ? 0 : static_cast<uint64_t>(pos);
  return Status::OK();
}

Status Wal::AppendGroup(uint64_t txn_id, std::string_view payload, bool sync) {
  if (file_ == nullptr) return Status::InvalidArgument("wal not open");
  std::string frame;
  frame.reserve(payload.size() + 20);
  PutLE32(&frame, kGroupMagic);
  PutLE32(&frame, static_cast<uint32_t>(payload.size()));
  PutLE64(&frame, txn_id);
  frame.append(payload.data(), payload.size());
  PutLE32(&frame, Checksum(payload));
  std::lock_guard<std::mutex> g(append_mu_);
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return Status::IOError("wal append: " + std::string(std::strerror(errno)));
  }
  if (std::fflush(file_) != 0) {
    return Status::IOError("wal flush: " + std::string(std::strerror(errno)));
  }
  if (sync && ::fdatasync(fileno(file_)) != 0) {
    return Status::IOError("wal sync: " + std::string(std::strerror(errno)));
  }
  size_.fetch_add(frame.size(), std::memory_order_relaxed);
  return Status::OK();
}

Result<std::vector<Wal::Group>> Wal::ReadAll() {
  if (file_ == nullptr) return Status::InvalidArgument("wal not open");
  FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("wal read open: " +
                           std::string(std::strerror(errno)));
  }
  std::vector<Group> groups;
  while (true) {
    char header[16];
    size_t n = std::fread(header, 1, sizeof(header), f);
    if (n < sizeof(header)) break;  // clean end or torn tail
    if (GetLE32(header) != kGroupMagic) break;
    uint32_t len = GetLE32(header + 4);
    uint64_t txn = GetLE64(header + 8);
    std::string payload(len, '\0');
    if (std::fread(payload.data(), 1, len, f) != len) break;
    char csum[4];
    if (std::fread(csum, 1, 4, f) != 4) break;
    if (GetLE32(csum) != Checksum(payload)) break;
    groups.push_back(Group{txn, std::move(payload)});
  }
  std::fclose(f);
  return groups;
}

Status Wal::Truncate() {
  if (file_ == nullptr) return Status::InvalidArgument("wal not open");
  std::fclose(file_);
  FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr) {
    file_ = nullptr;
    return Status::IOError("wal truncate: " +
                           std::string(std::strerror(errno)));
  }
  std::fclose(f);
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IOError("wal reopen: " + std::string(std::strerror(errno)));
  }
  size_ = 0;
  return Status::OK();
}

Status Wal::Close() {
  if (file_ == nullptr) return Status::OK();
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) {
    return Status::IOError("wal close: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace labflow::ostore
