#include "ostore/wal.h"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace labflow::ostore {

namespace {

void PutLE32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, 4);
}

void PutLE64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, 8);
}

uint32_t GetLE32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t GetLE64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

Wal::~Wal() {
  if (file_ != nullptr) std::fclose(file_);
}

uint32_t Wal::Checksum(std::string_view data, uint32_t seed) {
  uint32_t h = seed;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

Status Wal::Open(const std::string& path) {
  if (file_ != nullptr) return Status::InvalidArgument("wal already open");
  FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::IOError("wal open " + path + ": " + std::strerror(errno));
  }
  path_ = path;
  file_ = f;
  long pos = std::ftell(f);
  size_ = pos < 0 ? 0 : static_cast<uint64_t>(pos);
  return Status::OK();
}

void Wal::SetGroupLimits(size_t max_group_bytes, int64_t max_group_wait_us) {
  MutexLock g(mu_);
  max_group_bytes_ = max_group_bytes == 0 ? 1 : max_group_bytes;
  max_group_wait_us_ = max_group_wait_us;
}

Status Wal::AppendGroup(uint64_t txn_id, std::string_view payload, bool sync) {
  if (file_ == nullptr) return Status::InvalidArgument("wal not open");

  Waiter w;
  w.sync = sync;
  w.frame.reserve(payload.size() + kHeaderBytes + kChecksumBytes);
  PutLE32(&w.frame, kGroupMagic);
  PutLE32(&w.frame, static_cast<uint32_t>(payload.size()));
  PutLE64(&w.frame, txn_id);
  w.frame.append(payload.data(), payload.size());
  // The frame so far is exactly header+payload: checksum the whole of it so
  // a flipped bit in the length or txn id fields is caught at recovery.
  PutLE32(&w.frame, Checksum(w.frame));

  // Explicit Lock/Unlock (not a scoped guard): the leader drops the mutex
  // around the file write below, and the thread-safety analysis tracks the
  // hand-over-hand pairing.
  mu_.Lock();
  queue_.push_back(&w);
  queued_bytes_ += w.frame.size();
  cv_.NotifyAll();  // a leader in its grace window re-checks its quota
  while (!w.done &&
         (leader_active_ || queue_.empty() || queue_.front() != &w)) {
    cv_.Wait(mu_);
  }
  if (w.done) {  // an earlier leader carried our frame
    Status carried = w.status;
    mu_.Unlock();
    return carried;
  }

  // This thread leads the next batch. Optionally linger so concurrent
  // committers can join before the expensive force; only a sync commit pays
  // the window (it exists to amortize fdatasync, not buffered appends).
  leader_active_ = true;
  if (sync && max_group_wait_us_ > 0) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::microseconds(max_group_wait_us_);
    while (queued_bytes_ < max_group_bytes_ &&
           cv_.WaitUntil(mu_, deadline) != std::cv_status::timeout) {
    }
  }

  std::vector<Waiter*> batch;
  std::string buf;
  bool batch_sync = false;
  while (!queue_.empty() && (batch.empty() || buf.size() < max_group_bytes_)) {
    Waiter* f = queue_.front();
    queue_.pop_front();
    queued_bytes_ -= f->frame.size();
    buf.append(f->frame);
    batch_sync |= f->sync;
    batch.push_back(f);
  }
  mu_.Unlock();

  Status st = Status::OK();
  if (std::fwrite(buf.data(), 1, buf.size(), file_) != buf.size()) {
    st = Status::IOError("wal append: " + std::string(std::strerror(errno)));
  } else if (std::fflush(file_) != 0) {
    st = Status::IOError("wal flush: " + std::string(std::strerror(errno)));
  } else if (batch_sync && ::fdatasync(fileno(file_)) != 0) {
    st = Status::IOError("wal sync: " + std::string(std::strerror(errno)));
  }
  if (st.ok()) size_.fetch_add(buf.size(), std::memory_order_relaxed);

  mu_.Lock();
  if (st.ok()) {
    stats_.frames += batch.size();
    stats_.writes += 1;
    stats_.syncs += batch_sync ? 1 : 0;
    if (batch.size() > stats_.max_frames_per_write) {
      stats_.max_frames_per_write = batch.size();
    }
  }
  for (Waiter* f : batch) {
    if (f == &w) continue;
    f->status = st;
    f->done = true;
  }
  leader_active_ = false;
  cv_.NotifyAll();
  mu_.Unlock();
  return st;
}

Result<std::vector<Wal::Group>> Wal::ReadAll() {
  if (file_ == nullptr) return Status::InvalidArgument("wal not open");
  FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("wal read open: " +
                           std::string(std::strerror(errno)));
  }
  uint64_t file_size = 0;
  if (std::fseek(f, 0, SEEK_END) == 0) {
    long end = std::ftell(f);
    file_size = end < 0 ? 0 : static_cast<uint64_t>(end);
  }
  std::rewind(f);

  std::vector<Group> groups;
  uint64_t pos = 0;
  while (true) {
    char header[kHeaderBytes];
    size_t n = std::fread(header, 1, sizeof(header), f);
    if (n < sizeof(header)) break;  // clean end or torn tail
    if (GetLE32(header) != kGroupMagic) break;
    uint32_t len = GetLE32(header + 4);
    uint64_t txn = GetLE64(header + 8);
    // Never trust the header's length on its own: a flipped bit could demand
    // a multi-GB allocation. The payload and its checksum must fit in what
    // the file actually still holds, else this is a torn/corrupt tail.
    uint64_t remaining = file_size - pos - kHeaderBytes;
    if (len > remaining || remaining - len < kChecksumBytes) break;
    std::string payload(len, '\0');
    if (std::fread(payload.data(), 1, len, f) != len) break;
    char csum[kChecksumBytes];
    if (std::fread(csum, 1, sizeof(csum), f) != sizeof(csum)) break;
    uint32_t expect = Checksum(payload, Checksum({header, sizeof(header)}));
    if (GetLE32(csum) != expect) break;
    groups.push_back(Group{txn, std::move(payload)});
    pos += kHeaderBytes + len + kChecksumBytes;
  }
  std::fclose(f);
  return groups;
}

Status Wal::Truncate() {
  if (file_ == nullptr) return Status::InvalidArgument("wal not open");
  std::fclose(file_);
  FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr) {
    file_ = nullptr;
    return Status::IOError("wal truncate: " +
                           std::string(std::strerror(errno)));
  }
  std::fclose(f);
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IOError("wal reopen: " + std::string(std::strerror(errno)));
  }
  size_ = 0;
  return Status::OK();
}

Wal::GroupStats Wal::group_stats() const {
  MutexLock g(mu_);
  return stats_;
}

Status Wal::Close() {
  if (file_ == nullptr) return Status::OK();
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) {
    return Status::IOError("wal close: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace labflow::ostore
