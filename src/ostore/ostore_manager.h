#ifndef LABFLOW_OSTORE_OSTORE_MANAGER_H_
#define LABFLOW_OSTORE_OSTORE_MANAGER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/codec.h"
#include "ostore/lock_manager.h"
#include "ostore/wal.h"
#include "storage/paged_manager.h"

namespace labflow::ostore {

/// Configuration for the ObjectStore-like manager.
struct OstoreOptions {
  storage::PagedManagerOptions base;
  /// Lock wait budget before a transaction is presumed deadlocked.
  int64_t lock_timeout_ms = 1000;
  /// fdatasync the WAL on every commit (force durability). Off by default,
  /// as in the paper's measurements, where durability was bounded by
  /// checkpoints.
  bool sync_commit = false;
};

/// A storage manager modeled on ObjectStore v3.0 (Lamb et al. [32]) as
/// LabBase used it ("client-level server", Carey et al. [11]):
///
///  * named *segments* give the application control over clustering —
///    LabBase places hot material/index data and cold history data in
///    different segments;
///  * page-level strict 2PL concurrency control with timeout-based deadlock
///    resolution;
///  * transactions: atomicity via in-memory undo (no-steal — pages dirtied
///    by an active transaction stay pinned until it ends), durability via a
///    redo WAL whose groups are appended only at commit;
///  * recovery: forward replay of committed groups, idempotent through page
///    LSNs.
class OstoreManager : public storage::PagedManagerBase {
 public:
  /// Opens (or creates) an OStore database; runs recovery when the existing
  /// WAL is non-empty.
  static Result<std::unique_ptr<OstoreManager>> Open(
      const OstoreOptions& options);

  std::string_view name() const override { return "OStore"; }

  Status Begin() override;
  Status Commit() override;
  Status Abort() override;

 protected:
  bool SupportsSegments() const override { return true; }
  bool UseClusterHint() const override { return false; }

  Status LockPage(uint64_t page_no, bool exclusive) override;
  void RetainPage(uint64_t page_no) override;

  void OnPageInit(uint64_t lsn, uint64_t page, uint16_t segment) override;
  void OnInsert(uint64_t lsn, uint64_t page, uint16_t slot,
                std::string_view bytes) override;
  void OnUpdate(uint64_t lsn, uint64_t page, uint16_t slot,
                std::string_view old_bytes, std::string_view bytes) override;
  void OnDelete(uint64_t lsn, uint64_t page, uint16_t slot,
                std::string_view old_bytes) override;

  Status OnOpen(bool fresh) override;
  Status OnCheckpoint() override;
  Status OnClose() override;
  Status OnCrash() override;
  void AugmentStats(storage::StorageStats* stats) const override;

 private:
  enum UndoKind : uint8_t { kUndoInsert = 1, kUndoUpdate = 2, kUndoDelete = 3 };
  enum RedoOp : uint8_t {
    kRedoPageInit = 1,
    kRedoInsertOp = 2,
    kRedoUpdateOp = 3,
    kRedoDeleteOp = 4,
  };

  struct Txn {
    uint64_t id = 0;
    Encoder redo;
    struct Undo {
      UndoKind kind;
      uint64_t page;
      uint16_t slot;
      std::string old_bytes;
      uint8_t record_tag;  // tag of the bytes the op wrote/removed
    };
    std::vector<Undo> undo;
    std::unordered_map<uint64_t, storage::BufferPool::PinGuard> pins;
  };

  OstoreManager() = default;

  Txn* CurrentTxn();
  /// Appends an op to the active transaction's redo buffer, or — outside a
  /// transaction — logs it immediately as an auto-committed group.
  void AppendRedo(const std::function<void(Encoder*)>& encode);

  Status Recover();
  /// Releases pins/locks of all live transactions (close/crash teardown).
  void DropActiveTransactions();

  std::unique_ptr<LockManager> locks_;
  Wal wal_;
  bool sync_commit_ = false;

  mutable std::mutex txn_mu_;
  std::unordered_map<std::thread::id, std::unique_ptr<Txn>> txns_;
  std::atomic<uint64_t> next_txn_id_{1};
  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> aborts_{0};
};

}  // namespace labflow::ostore

#endif  // LABFLOW_OSTORE_OSTORE_MANAGER_H_
