#ifndef LABFLOW_OSTORE_OSTORE_MANAGER_H_
#define LABFLOW_OSTORE_OSTORE_MANAGER_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/codec.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "ostore/lock_manager.h"
#include "ostore/wal.h"
#include "storage/paged_manager.h"

namespace labflow::ostore {

/// Configuration for the ObjectStore-like manager.
struct OstoreOptions {
  storage::PagedManagerOptions base;
  /// Fallback lock wait budget. Deadlocks are detected and resolved by the
  /// lock manager's waits-for graph as they form; the timeout only catches
  /// requests no detection pass chose to abort (see LockManager).
  int64_t lock_timeout_ms = 1000;
  /// fdatasync the WAL on every commit (force durability). Off by default,
  /// as in the paper's measurements, where durability was bounded by
  /// checkpoints.
  bool sync_commit = false;
  /// Group commit: upper bound on the frame bytes one commit leader
  /// coalesces into a single WAL write (and, with sync_commit, one
  /// fdatasync).
  size_t wal_max_group_bytes = 1 << 20;
  /// Group commit: grace window (microseconds) a sync-commit leader waits
  /// for more committers before forcing the log. 0 = never delay; batching
  /// then comes only from commits that queue up behind an in-flight sync.
  int64_t wal_max_group_wait_us = 0;
};

/// A storage manager modeled on ObjectStore v3.0 (Lamb et al. [32]) as
/// LabBase used it ("client-level server", Carey et al. [11]):
///
///  * named *segments* give the application control over clustering —
///    LabBase places hot material/index data and cold history data in
///    different segments;
///  * page-level strict 2PL concurrency control with waits-for deadlock
///    detection (youngest cycle member aborted; timeout as fallback);
///  * transactions: atomicity via in-memory undo (no-steal — pages dirtied
///    by an active transaction stay pinned until it ends), durability via a
///    redo WAL whose groups are appended only at commit;
///  * recovery: forward replay of committed groups, idempotent through page
///    LSNs.
///
/// Transactions are explicit Txn handles (see StorageManager); any number of
/// them may run concurrently from different threads, isolated by the page
/// locks. Per-transaction state (redo buffer, undo log, page pins) lives on
/// the handle itself — there is no thread-keyed state.
class OstoreManager : public storage::PagedManagerBase {
 public:
  /// Opens (or creates) an OStore database; runs recovery when the existing
  /// WAL is non-empty.
  static Result<std::unique_ptr<OstoreManager>> Open(
      const OstoreOptions& options);

  std::string_view name() const override { return "OStore"; }

 protected:
  bool SupportsSegments() const override { return true; }
  bool UseClusterHint() const override { return false; }
  /// MVCC snapshot reads (see PagedManagerBase::version_store): commits are
  /// stamped through the two-phase PrepareCommit/FinalizeCommit protocol so
  /// a group-committed WAL write sits safely between the phases.
  bool SupportsSnapshots() const override { return true; }

  // Transaction policy (see StorageManager):
  std::unique_ptr<storage::Txn> CreateTxn(uint64_t id) override;
  Status CommitTxn(storage::Txn* txn) override;
  Status AbortTxn(storage::Txn* txn) override;
  void OnTxnDrop(storage::Txn* txn) override;

  Status LockPage(storage::Txn* txn, uint64_t page_no,
                  bool exclusive) override;
  Status TryLockPage(storage::Txn* txn, uint64_t page_no,
                     bool exclusive) override;
  void RetainPage(storage::Txn* txn, uint64_t page_no) override;

  void OnPageInit(storage::Txn* txn, uint64_t lsn, uint64_t page,
                  uint16_t segment) override;
  void OnInsert(storage::Txn* txn, uint64_t lsn, uint64_t page, uint16_t slot,
                std::string_view bytes) override;
  void OnUpdate(storage::Txn* txn, uint64_t lsn, uint64_t page, uint16_t slot,
                std::string_view old_bytes, std::string_view bytes) override;
  void OnDelete(storage::Txn* txn, uint64_t lsn, uint64_t page, uint16_t slot,
                std::string_view old_bytes) override;

  Status OnOpen(bool fresh) override;
  Status OnCheckpoint() override;
  Status OnClose() override;
  Status OnCrash() override;
  /// Persists the commit-timestamp high-water mark in the superblock (and
  /// restores it on open; an empty meta — a pre-MVCC file — means zero).
  std::string EncodeMeta() const override;
  Status DecodeMeta(std::string_view meta) override;
  void AugmentStats(storage::StorageStats* stats) const override;

  /// Degraded mode: after any WAL append failure the store refuses new
  /// writes (Unavailable) while reads keep working; a checkpoint — whose
  /// flush+sync makes the in-memory image durable without the log — retires
  /// the condition. Appending past a failed group would let recovery replay
  /// a "valid prefix" containing a commit that was reported failed.
  Status CheckWritable() override;

 private:
  enum UndoKind : uint8_t { kUndoInsert = 1, kUndoUpdate = 2, kUndoDelete = 3 };
  enum RedoOp : uint8_t {
    kRedoPageInit = 1,
    kRedoInsertOp = 2,
    kRedoUpdateOp = 3,
    kRedoDeleteOp = 4,
    /// Commit-timestamp marker: [op][u64 0][u64 ts] — shaped like the
    /// generic op prefix, with the timestamp riding in the page field, so
    /// recovery can rebuild the allocator's high-water mark from the log.
    kRedoCommitTs = 5,
  };

  /// OStore's transaction handle: redo buffer, undo log and page pins ride
  /// on the handle, so concurrent transactions never share mutable state.
  struct OstoreTxn : storage::Txn {
    OstoreTxn(storage::StorageManager* owner, uint64_t id)
        : storage::Txn(owner, id) {}

    Encoder redo;
    struct Undo {
      UndoKind kind;
      uint64_t page;
      uint16_t slot;
      std::string old_bytes;
      uint8_t record_tag;  // tag of the bytes the op wrote/removed
    };
    std::vector<Undo> undo;
    std::unordered_map<uint64_t, storage::BufferPool::PinGuard> pins;
  };

  /// Hooks only ever see handles this manager created (CheckTxn upstream).
  static OstoreTxn* Cast(storage::Txn* txn) {
    return static_cast<OstoreTxn*>(txn);
  }

  OstoreManager() = default;

  /// Appends an op to the transaction's redo buffer, or — in auto-commit
  /// mode — logs it immediately as a one-op group.
  void AppendRedo(storage::Txn* txn,
                  const std::function<void(Encoder*)>& encode);

  Status Recover();

  /// Records the first WAL append failure (the auto-commit redo hook
  /// returns void, so the error cannot propagate at the fault site; the
  /// transactional path records too, for CheckWritable). RecordWalError
  /// keeps the earliest failure; PeekWalError reports it without clearing —
  /// the store stays degraded until OnCheckpoint retires the condition.
  void RecordWalError(Status st) LABFLOW_EXCLUDES(wal_error_mu_);
  Status PeekWalError() const LABFLOW_EXCLUDES(wal_error_mu_);

  std::unique_ptr<LockManager> locks_;  // NOLINT(guarded-by-coverage)
  Wal wal_;                             // NOLINT(guarded-by-coverage)
  bool sync_commit_ = false;  // NOLINT(guarded-by-coverage): set at open

  /// Reader–writer: PeekWalError sits on every write operation's path
  /// (CheckWritable), so the healthy-store common case takes a shared hold.
  /// Rank kWalError: leaf within the durability layer.
  mutable SharedMutex wal_error_mu_{LockRank::kWalError, "ostore.wal_error"};
  Status wal_error_ LABFLOW_GUARDED_BY(wal_error_mu_);

  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> aborts_{0};
};

}  // namespace labflow::ostore

#endif  // LABFLOW_OSTORE_OSTORE_MANAGER_H_
