#ifndef LABFLOW_OSTORE_LOCK_MANAGER_H_
#define LABFLOW_OSTORE_LOCK_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <unordered_map>

#include "common/status.h"

namespace labflow::ostore {

/// Page-level strict two-phase lock manager, modeling ObjectStore's
/// "lock based concurrency control implemented in a page server that
/// mediates all access to the database" (paper Section 10).
///
/// Shared/exclusive locks with in-place upgrade; blocked requests wait on a
/// condition variable and time out after `timeout_ms`, which doubles as the
/// deadlock-resolution mechanism (the timed-out transaction gets Aborted and
/// is expected to roll back).
class LockManager {
 public:
  explicit LockManager(int64_t timeout_ms = 1000) : timeout_ms_(timeout_ms) {}

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires (or upgrades to) the requested lock for `txn` on `page`.
  /// Reentrant: holding X satisfies S and X; holding S satisfies S.
  /// Returns Aborted on timeout.
  Status Acquire(uint64_t txn, uint64_t page, bool exclusive);

  /// Non-blocking Acquire: grants immediately or returns false without
  /// waiting (and without counting a lock wait). Used by the allocator to
  /// probe placement candidates that may be held by concurrent inserters.
  bool TryAcquire(uint64_t txn, uint64_t page, bool exclusive);

  /// Releases every lock `txn` holds and wakes waiters.
  void ReleaseAll(uint64_t txn);

  /// Number of requests that had to block before being granted or aborted.
  uint64_t lock_waits() const {
    std::lock_guard<std::mutex> g(mu_);
    return lock_waits_;
  }

 private:
  struct PageLock {
    uint64_t x_owner = 0;          // 0 = none
    std::set<uint64_t> s_owners;   // shared holders
  };

  /// True if the request can be granted right now (lock table locked).
  bool CanGrantLocked(const PageLock& lock, uint64_t txn,
                      bool exclusive) const;

  int64_t timeout_ms_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<uint64_t, PageLock> table_;
  std::unordered_map<uint64_t, std::set<uint64_t>> held_;  // txn -> pages
  uint64_t lock_waits_ = 0;
};

}  // namespace labflow::ostore

#endif  // LABFLOW_OSTORE_LOCK_MANAGER_H_
