#ifndef LABFLOW_OSTORE_LOCK_MANAGER_H_
#define LABFLOW_OSTORE_LOCK_MANAGER_H_

#include <cstdint>
#include <set>
#include <unordered_map>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace labflow::ostore {

/// Page-level strict two-phase lock manager, modeling ObjectStore's
/// "lock based concurrency control implemented in a page server that
/// mediates all access to the database" (paper Section 10).
///
/// Shared/exclusive locks with in-place upgrade; blocked requests wait on a
/// condition variable and time out after `timeout_ms`, which doubles as the
/// deadlock-resolution mechanism (the timed-out transaction gets Aborted and
/// is expected to roll back).
class LockManager {
 public:
  explicit LockManager(int64_t timeout_ms = 1000) : timeout_ms_(timeout_ms) {}

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires (or upgrades to) the requested lock for `txn` on `page`.
  /// Reentrant: holding X satisfies S and X; holding S satisfies S.
  /// Returns Aborted on timeout.
  Status Acquire(uint64_t txn, uint64_t page, bool exclusive)
      LABFLOW_EXCLUDES(mu_);

  /// Non-blocking Acquire: grants immediately or returns false without
  /// waiting (and without counting a lock wait). Used by the allocator to
  /// probe placement candidates that may be held by concurrent inserters.
  [[nodiscard]] bool TryAcquire(uint64_t txn, uint64_t page, bool exclusive)
      LABFLOW_EXCLUDES(mu_);

  /// Releases every lock `txn` holds and wakes waiters.
  void ReleaseAll(uint64_t txn) LABFLOW_EXCLUDES(mu_);

  /// Number of requests that had to block before being granted or aborted.
  uint64_t lock_waits() const LABFLOW_EXCLUDES(mu_) {
    MutexLock g(mu_);
    return lock_waits_;
  }

 private:
  struct PageLock {
    uint64_t x_owner = 0;          // 0 = none
    std::set<uint64_t> s_owners;   // shared holders
  };

  /// True if the request can be granted right now (lock table locked).
  bool CanGrantLocked(const PageLock& lock, uint64_t txn, bool exclusive) const
      LABFLOW_REQUIRES(mu_);

  int64_t timeout_ms_;
  mutable Mutex mu_;
  CondVar cv_;
  std::unordered_map<uint64_t, PageLock> table_ LABFLOW_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, std::set<uint64_t>> held_
      LABFLOW_GUARDED_BY(mu_);  // txn -> pages
  uint64_t lock_waits_ LABFLOW_GUARDED_BY(mu_) = 0;
};

}  // namespace labflow::ostore

#endif  // LABFLOW_OSTORE_LOCK_MANAGER_H_
