#ifndef LABFLOW_OSTORE_LOCK_MANAGER_H_
#define LABFLOW_OSTORE_LOCK_MANAGER_H_

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace labflow::ostore {

/// Page-level strict two-phase lock manager, modeling ObjectStore's
/// "lock based concurrency control implemented in a page server that
/// mediates all access to the database" (paper Section 10).
///
/// Shared/exclusive locks with in-place upgrade. Deadlocks are resolved by
/// waits-for cycle detection: every blocked request records what it waits on,
/// and the request whose edge completes a cycle runs a DFS over the graph and
/// aborts the youngest (largest transaction id) member of the cycle — it has
/// done the least work and, with monotonically increasing ids, the choice
/// starves no one. The victim's Acquire returns Aborted immediately (whether
/// the victim is the detecting request or one already parked), so resolution
/// latency is bounded by a condvar wakeup, not by `timeout_ms`. The timeout
/// remains as a fallback for requests no detection pass chose to abort
/// (e.g. a waiter behind several simultaneous cycles, or a holder stalled
/// outside the lock manager); it too returns Aborted.
class LockManager {
 public:
  explicit LockManager(int64_t timeout_ms = 1000) : timeout_ms_(timeout_ms) {}

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires (or upgrades to) the requested lock for `txn` on `page`.
  /// Reentrant: holding X satisfies S and X; holding S satisfies S.
  /// Returns Aborted when chosen as a deadlock victim or on timeout.
  Status Acquire(uint64_t txn, uint64_t page, bool exclusive)
      LABFLOW_EXCLUDES(mu_);

  /// Non-blocking Acquire: grants immediately or returns false without
  /// waiting (and without counting a lock wait). Used by the allocator to
  /// probe placement candidates that may be held by concurrent inserters.
  [[nodiscard]] bool TryAcquire(uint64_t txn, uint64_t page, bool exclusive)
      LABFLOW_EXCLUDES(mu_);

  /// Releases every lock `txn` holds and wakes waiters.
  void ReleaseAll(uint64_t txn) LABFLOW_EXCLUDES(mu_);

  /// Number of requests that had to block before being granted or aborted.
  uint64_t lock_waits() const LABFLOW_EXCLUDES(mu_) {
    MutexLock g(mu_);
    return lock_waits_;
  }

  /// Number of waits-for cycles detected (== victims chosen).
  uint64_t deadlocks() const LABFLOW_EXCLUDES(mu_) {
    MutexLock g(mu_);
    return deadlocks_;
  }

  /// Subset of lock_waits() where the blocked request was shared. MVCC
  /// snapshot readers bypass the lock manager entirely, so regimes that
  /// read through snapshots assert this stays zero.
  uint64_t reader_lock_waits() const LABFLOW_EXCLUDES(mu_) {
    MutexLock g(mu_);
    return reader_lock_waits_;
  }

  /// Aborted returns (victim or timeout) handed to a *shared* request —
  /// the reader half of the reader/writer deadlock class snapshots remove.
  uint64_t reader_deadlocks() const LABFLOW_EXCLUDES(mu_) {
    MutexLock g(mu_);
    return reader_deadlocks_;
  }

 private:
  struct PageLock {
    uint64_t x_owner = 0;          // 0 = none
    std::set<uint64_t> s_owners;   // shared holders
  };

  /// One blocked request: which page, and at what strength. A transaction
  /// has at most one outstanding request (its thread is parked in Acquire),
  /// so the waits-for graph has out-degree one in pages — but an edge per
  /// *holder* of that page, since any of them could be the cycle.
  struct WaitInfo {
    uint64_t page = 0;
    bool exclusive = false;
  };

  /// True if the request can be granted right now (lock table locked).
  bool CanGrantLocked(const PageLock& lock, uint64_t txn, bool exclusive) const
      LABFLOW_REQUIRES(mu_);

  /// Runs a DFS over the waits-for graph from `start` (which must have its
  /// `waiting_` entry recorded). Returns the chosen victim — the largest
  /// transaction id on the first cycle found — or 0 when `start` is not on
  /// any cycle.
  uint64_t FindDeadlockVictimLocked(uint64_t start) const
      LABFLOW_REQUIRES(mu_);

  /// DFS step for FindDeadlockVictimLocked: explores the waiting txn `t`,
  /// returns true once a path back to `start` is found, with `*victim` set.
  bool DeadlockDfsLocked(uint64_t start, uint64_t t, std::set<uint64_t>* seen,
                         std::vector<uint64_t>* path, uint64_t* victim) const
      LABFLOW_REQUIRES(mu_);

  const int64_t timeout_ms_;
  /// Rank kLockTable: self-contained — no other infrastructure mutex is
  /// ever acquired while holding it (waits happen on cv_, which releases
  /// it). The *object* waits-for deadlocks it arbitrates are a protocol
  /// property, handled by the detector, not by lock ordering.
  mutable Mutex mu_{LockRank::kLockTable, "ostore.lock_table"};
  CondVar cv_;
  std::unordered_map<uint64_t, PageLock> table_ LABFLOW_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, std::set<uint64_t>> held_
      LABFLOW_GUARDED_BY(mu_);  // txn -> pages
  std::unordered_map<uint64_t, WaitInfo> waiting_ LABFLOW_GUARDED_BY(mu_);
  /// Transactions sentenced by a detection pass but not yet woken; each
  /// victim consumes (erases) its own entry and returns Aborted.
  std::set<uint64_t> victims_ LABFLOW_GUARDED_BY(mu_);
  uint64_t lock_waits_ LABFLOW_GUARDED_BY(mu_) = 0;
  uint64_t deadlocks_ LABFLOW_GUARDED_BY(mu_) = 0;
  uint64_t reader_lock_waits_ LABFLOW_GUARDED_BY(mu_) = 0;
  uint64_t reader_deadlocks_ LABFLOW_GUARDED_BY(mu_) = 0;
};

}  // namespace labflow::ostore

#endif  // LABFLOW_OSTORE_LOCK_MANAGER_H_
