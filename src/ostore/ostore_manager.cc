#include "ostore/ostore_manager.h"
#include "common/status_macros.h"

namespace labflow::ostore {

using storage::BufferPool;
using storage::StorageStats;

Result<std::unique_ptr<OstoreManager>> OstoreManager::Open(
    const OstoreOptions& options) {
  std::unique_ptr<OstoreManager> mgr(new OstoreManager());
  mgr->locks_ = std::make_unique<LockManager>(options.lock_timeout_ms);
  mgr->sync_commit_ = options.sync_commit;
  mgr->wal_.SetGroupLimits(options.wal_max_group_bytes,
                           options.wal_max_group_wait_us);
  LABFLOW_RETURN_IF_ERROR(mgr->PagedManagerBase::Open(options.base));
  return mgr;
}

// ---- Transactions ---------------------------------------------------------

std::unique_ptr<storage::Txn> OstoreManager::CreateTxn(uint64_t id) {
  return std::make_unique<OstoreTxn>(this, id);
}

Status OstoreManager::CommitTxn(storage::Txn* txn) {
  OstoreTxn* t = Cast(txn);
  // A redo group already lost means recovery can no longer replay
  // everything this store claims durable; refuse to certify further commits
  // until a checkpoint closes the hole.
  Status st = CheckWritable();
  // WAL first, then make pages evictable, then release locks.
  uint64_t commit_ts = 0;
  if (st.ok()) {
    // Stamp the version chains before the group hits the log; the commit
    // timestamp stays in-flight — invisible to new snapshots — until the
    // durability write settles one way or the other.
    commit_ts = version_store()->PrepareCommit(t->id());
    if (t->redo.size() > 0) {
      t->redo.PutU8(kRedoCommitTs);
      t->redo.PutU64(0);          // lsn slot of the generic op prefix
      t->redo.PutU64(commit_ts);  // rides in the page slot
      st = wal_.AppendGroup(t->id(), t->redo.buffer(), sync_commit_);
      if (!st.ok()) RecordWalError(st);
    }
  }
  if (!st.ok()) {
    // The handle is invalidated regardless of the outcome (Commit frees
    // it), so a commit that cannot reach the log degrades to an abort:
    // undo the in-memory changes, drop the pins, release the 2PL locks —
    // an early return here would leak the transaction's page locks.
    if (commit_ts != 0) version_store()->AbandonCommit(t->id(), commit_ts);
    LABFLOW_IGNORE_STATUS(
        AbortTxn(txn),
        "surfacing the WAL failure; the rollback is best-effort");
    return st;
  }
  version_store()->FinalizeCommit(t->id(), commit_ts);
  t->pins.clear();
  locks_->ReleaseAll(t->id());
  commits_.fetch_add(1);
  return Status::OK();
}

Status OstoreManager::AbortTxn(storage::Txn* txn) {
  OstoreTxn* t = Cast(txn);
  Status result = Status::OK();
  // The transaction still X-holds every page it dirtied, so the in-memory
  // undo below is invisible to concurrent transactions until ReleaseAll.
  for (auto it = t->undo.rbegin(); it != t->undo.rend(); ++it) {
    Status st;
    switch (it->kind) {
      case kUndoInsert:
        st = UndoInsert(it->page, it->slot);
        if (st.ok() && (it->record_tag == kRecTagData ||
                        it->record_tag == kRecTagRoot)) {
          AdjustLiveObjects(-1);
        }
        break;
      case kUndoUpdate:
        st = UndoUpdate(it->page, it->slot, it->old_bytes);
        break;
      case kUndoDelete:
        st = UndoDelete(it->page, it->slot, it->old_bytes);
        if (st.ok() && (it->record_tag == kRecTagData ||
                        it->record_tag == kRecTagRoot ||
                        it->record_tag == kRecTagForward)) {
          AdjustLiveObjects(1);
        }
        break;
    }
    if (!st.ok() && result.ok()) result = st;
  }
  // After the physical rollback: the pages again hold what the chains'
  // committed tails (or fall-through) describe, so the pendings can go.
  version_store()->AbortOwner(t->id());
  t->pins.clear();
  locks_->ReleaseAll(t->id());
  aborts_.fetch_add(1);
  return result;
}

void OstoreManager::OnTxnDrop(storage::Txn* txn) {
  // A close or crash with live transactions must release their page pins
  // before the buffer pool is torn down (their changes are simply dropped:
  // never committed, so never logged).
  OstoreTxn* t = Cast(txn);
  version_store()->AbortOwner(t->id());
  t->pins.clear();
  locks_->ReleaseAll(t->id());
}

// ---- Hooks from the paged base --------------------------------------------

Status OstoreManager::LockPage(storage::Txn* txn, uint64_t page_no,
                               bool exclusive) {
  if (txn == nullptr) return Status::OK();  // auto-commit mode: no locking
  return locks_->Acquire(txn->id(), page_no, exclusive);
}

Status OstoreManager::TryLockPage(storage::Txn* txn, uint64_t page_no,
                                  bool exclusive) {
  if (txn == nullptr) return Status::OK();
  if (!locks_->TryAcquire(txn->id(), page_no, exclusive)) {
    return Status::ResourceExhausted("page lock busy");
  }
  return Status::OK();
}

void OstoreManager::RetainPage(storage::Txn* txn, uint64_t page_no) {
  if (txn == nullptr) return;
  OstoreTxn* t = Cast(txn);
  if (t->pins.count(page_no)) return;
  // No-steal: hold a pin so an uncommitted dirty page cannot be evicted
  // (and thus never reaches disk before its WAL group does).
  Result<BufferPool::PinGuard> guard = buffer_pool()->Fetch(page_no);
  if (guard.ok()) t->pins.emplace(page_no, std::move(guard).value());
}

void OstoreManager::AppendRedo(storage::Txn* txn,
                               const std::function<void(Encoder*)>& encode) {
  if (txn != nullptr) {
    encode(&Cast(txn)->redo);
    return;
  }
  // Auto-commit: one-op group, logged immediately with txn id 0, honouring
  // the same force-at-commit regime as transactional commits.
  Encoder enc;
  encode(&enc);
  Status st = wal_.AppendGroup(0, enc.buffer(), sync_commit_);
  if (!st.ok()) RecordWalError(std::move(st));
}

void OstoreManager::RecordWalError(Status st) {
  WriterMutexLock g(wal_error_mu_);
  if (wal_error_.ok()) wal_error_ = std::move(st);
}

Status OstoreManager::PeekWalError() const {
  ReaderMutexLock g(wal_error_mu_);
  return wal_error_;
}

Status OstoreManager::CheckWritable() {
  Status st = PeekWalError();
  if (st.ok()) st = wal_.error_state();
  if (st.ok()) return Status::OK();
  return Status::Unavailable("ostore is read-only after a WAL failure (" +
                             st.message() +
                             "); checkpoint to restore write availability");
}

void OstoreManager::OnPageInit(storage::Txn* txn, uint64_t lsn, uint64_t page,
                               uint16_t segment) {
  AppendRedo(txn, [&](Encoder* enc) {
    enc->PutU8(kRedoPageInit);
    enc->PutU64(lsn);
    enc->PutU64(page);
    enc->PutU32(segment);
  });
  // A fresh page needs no undo: an aborted transaction simply leaves an
  // empty page behind.
}

void OstoreManager::OnInsert(storage::Txn* txn, uint64_t lsn, uint64_t page,
                             uint16_t slot, std::string_view bytes) {
  AppendRedo(txn, [&](Encoder* enc) {
    enc->PutU8(kRedoInsertOp);
    enc->PutU64(lsn);
    enc->PutU64(page);
    enc->PutU32(slot);
    enc->PutString(bytes);
  });
  if (txn != nullptr) {
    uint8_t tag = bytes.empty() ? 0xFF : static_cast<uint8_t>(bytes[0]);
    Cast(txn)->undo.push_back(
        OstoreTxn::Undo{kUndoInsert, page, slot, std::string(), tag});
  }
}

void OstoreManager::OnUpdate(storage::Txn* txn, uint64_t lsn, uint64_t page,
                             uint16_t slot, std::string_view old_bytes,
                             std::string_view bytes) {
  AppendRedo(txn, [&](Encoder* enc) {
    enc->PutU8(kRedoUpdateOp);
    enc->PutU64(lsn);
    enc->PutU64(page);
    enc->PutU32(slot);
    enc->PutString(bytes);
  });
  if (txn != nullptr) {
    uint8_t tag = bytes.empty() ? 0xFF : static_cast<uint8_t>(bytes[0]);
    Cast(txn)->undo.push_back(
        OstoreTxn::Undo{kUndoUpdate, page, slot, std::string(old_bytes), tag});
  }
}

void OstoreManager::OnDelete(storage::Txn* txn, uint64_t lsn, uint64_t page,
                             uint16_t slot, std::string_view old_bytes) {
  AppendRedo(txn, [&](Encoder* enc) {
    enc->PutU8(kRedoDeleteOp);
    enc->PutU64(lsn);
    enc->PutU64(page);
    enc->PutU32(slot);
  });
  if (txn != nullptr) {
    uint8_t tag =
        old_bytes.empty() ? 0xFF : static_cast<uint8_t>(old_bytes[0]);
    Cast(txn)->undo.push_back(
        OstoreTxn::Undo{kUndoDelete, page, slot, std::string(old_bytes), tag});
  }
}

// ---- Lifecycle ------------------------------------------------------------

Status OstoreManager::OnOpen(bool fresh) {
  LABFLOW_RETURN_IF_ERROR(wal_.Open(env(), options().path + ".wal"));
  if (!fresh) return Recover();
  return Status::OK();
}

Status OstoreManager::Recover() {
  LABFLOW_ASSIGN_OR_RETURN(std::vector<Wal::Group> groups, wal_.ReadAll());
  uint64_t max_lsn = current_lsn();
  for (const Wal::Group& group : groups) {
    Decoder dec(group.payload);
    while (!dec.AtEnd()) {
      LABFLOW_ASSIGN_OR_RETURN(uint8_t op, dec.GetU8());
      LABFLOW_ASSIGN_OR_RETURN(uint64_t lsn, dec.GetU64());
      LABFLOW_ASSIGN_OR_RETURN(uint64_t page, dec.GetU64());
      if (lsn > max_lsn) max_lsn = lsn;
      switch (op) {
        case kRedoPageInit: {
          LABFLOW_ASSIGN_OR_RETURN(uint32_t segment, dec.GetU32());
          LABFLOW_RETURN_IF_ERROR(
              RedoPageInit(lsn, page, static_cast<uint16_t>(segment)));
          break;
        }
        case kRedoInsertOp: {
          LABFLOW_ASSIGN_OR_RETURN(uint32_t slot, dec.GetU32());
          LABFLOW_ASSIGN_OR_RETURN(std::string bytes, dec.GetString());
          LABFLOW_RETURN_IF_ERROR(
              RedoInsert(lsn, page, static_cast<uint16_t>(slot), bytes));
          break;
        }
        case kRedoUpdateOp: {
          LABFLOW_ASSIGN_OR_RETURN(uint32_t slot, dec.GetU32());
          LABFLOW_ASSIGN_OR_RETURN(std::string bytes, dec.GetString());
          LABFLOW_RETURN_IF_ERROR(
              RedoUpdate(lsn, page, static_cast<uint16_t>(slot), bytes));
          break;
        }
        case kRedoDeleteOp: {
          LABFLOW_ASSIGN_OR_RETURN(uint32_t slot, dec.GetU32());
          LABFLOW_RETURN_IF_ERROR(
              RedoDelete(lsn, page, static_cast<uint16_t>(slot)));
          break;
        }
        case kRedoCommitTs:
          // The timestamp rides in the page slot of the generic prefix;
          // replaying it restores the allocator past every logged commit.
          version_store()->EnsureTimestamp(page);
          break;
        default:
          return Status::Corruption("unknown wal op");
      }
    }
  }
  set_lsn(max_lsn);
  // Make the replayed state durable and drop the log.
  LABFLOW_RETURN_IF_ERROR(buffer_pool()->FlushAll());
  LABFLOW_RETURN_IF_ERROR(page_file()->Sync());
  return wal_.Truncate();
}

Status OstoreManager::OnCheckpoint() {
  // Every dirty page hit disk before this hook ran (the base flushes and
  // syncs first), so any redo group lost earlier is now covered by the page
  // file: both sticky error states — the WAL's own (cleared by Truncate)
  // and this manager's — can be retired.
  LABFLOW_RETURN_IF_ERROR(wal_.Truncate());
  WriterMutexLock g(wal_error_mu_);
  wal_error_ = Status::OK();
  return Status::OK();
}

Status OstoreManager::OnClose() { return wal_.Close(); }

Status OstoreManager::OnCrash() { return wal_.Close(); }

std::string OstoreManager::EncodeMeta() const {
  Encoder enc;
  enc.PutU64(version_store()->high_water());
  return std::string(enc.buffer());
}

Status OstoreManager::DecodeMeta(std::string_view meta) {
  if (meta.empty()) return Status::OK();  // pre-MVCC superblock
  Decoder dec(meta);
  LABFLOW_ASSIGN_OR_RETURN(uint64_t hwm, dec.GetU64());
  version_store()->EnsureTimestamp(hwm);
  return Status::OK();
}

void OstoreManager::AugmentStats(StorageStats* stats) const {
  stats->wal_bytes = wal_.SizeBytes();
  Wal::GroupStats wal_stats = wal_.group_stats();
  stats->wal_frames = wal_stats.frames;
  stats->wal_group_writes = wal_stats.writes;
  stats->wal_group_syncs = wal_stats.syncs;
  stats->lock_waits = locks_ == nullptr ? 0 : locks_->lock_waits();
  stats->deadlocks = locks_ == nullptr ? 0 : locks_->deadlocks();
  stats->reader_lock_waits =
      locks_ == nullptr ? 0 : locks_->reader_lock_waits();
  stats->reader_deadlocks =
      locks_ == nullptr ? 0 : locks_->reader_deadlocks();
  stats->txn_commits = commits_.load();
  stats->txn_aborts = aborts_.load();
}

}  // namespace labflow::ostore
