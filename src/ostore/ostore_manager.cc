#include "ostore/ostore_manager.h"

namespace labflow::ostore {

using storage::BufferPool;
using storage::StorageStats;

Result<std::unique_ptr<OstoreManager>> OstoreManager::Open(
    const OstoreOptions& options) {
  std::unique_ptr<OstoreManager> mgr(new OstoreManager());
  mgr->locks_ = std::make_unique<LockManager>(options.lock_timeout_ms);
  mgr->sync_commit_ = options.sync_commit;
  LABFLOW_RETURN_IF_ERROR(mgr->PagedManagerBase::Open(options.base));
  return mgr;
}

// ---- Transactions ---------------------------------------------------------

OstoreManager::Txn* OstoreManager::CurrentTxn() {
  std::lock_guard<std::mutex> g(txn_mu_);
  auto it = txns_.find(std::this_thread::get_id());
  return it == txns_.end() ? nullptr : it->second.get();
}

Status OstoreManager::Begin() {
  std::lock_guard<std::mutex> g(txn_mu_);
  auto& slot = txns_[std::this_thread::get_id()];
  if (slot != nullptr) {
    return Status::InvalidArgument("nested transactions are not supported");
  }
  slot = std::make_unique<Txn>();
  slot->id = next_txn_id_.fetch_add(1);
  return Status::OK();
}

Status OstoreManager::Commit() {
  std::unique_ptr<Txn> txn;
  {
    std::lock_guard<std::mutex> g(txn_mu_);
    auto it = txns_.find(std::this_thread::get_id());
    if (it == txns_.end() || it->second == nullptr) {
      return Status::InvalidArgument("no active transaction");
    }
    txn = std::move(it->second);
    txns_.erase(it);
  }
  // WAL first, then make pages evictable, then release locks.
  if (txn->redo.size() > 0) {
    LABFLOW_RETURN_IF_ERROR(
        wal_.AppendGroup(txn->id, txn->redo.buffer(), sync_commit_));
  }
  txn->pins.clear();
  locks_->ReleaseAll(txn->id);
  commits_.fetch_add(1);
  return Status::OK();
}

Status OstoreManager::Abort() {
  std::unique_ptr<Txn> txn;
  {
    std::lock_guard<std::mutex> g(txn_mu_);
    auto it = txns_.find(std::this_thread::get_id());
    if (it == txns_.end() || it->second == nullptr) {
      return Status::InvalidArgument("no active transaction");
    }
    txn = std::move(it->second);
    txns_.erase(it);
  }
  Status result = Status::OK();
  for (auto it = txn->undo.rbegin(); it != txn->undo.rend(); ++it) {
    Status st;
    switch (it->kind) {
      case kUndoInsert:
        st = UndoInsert(it->page, it->slot);
        if (st.ok() && (it->record_tag == kRecTagData ||
                        it->record_tag == kRecTagRoot)) {
          AdjustLiveObjects(-1);
        }
        break;
      case kUndoUpdate:
        st = UndoUpdate(it->page, it->slot, it->old_bytes);
        break;
      case kUndoDelete:
        st = UndoDelete(it->page, it->slot, it->old_bytes);
        if (st.ok() && (it->record_tag == kRecTagData ||
                        it->record_tag == kRecTagRoot ||
                        it->record_tag == kRecTagForward)) {
          AdjustLiveObjects(1);
        }
        break;
    }
    if (!st.ok() && result.ok()) result = st;
  }
  txn->pins.clear();
  locks_->ReleaseAll(txn->id);
  aborts_.fetch_add(1);
  return result;
}

// ---- Hooks from the paged base --------------------------------------------

Status OstoreManager::LockPage(uint64_t page_no, bool exclusive) {
  Txn* txn = CurrentTxn();
  if (txn == nullptr) return Status::OK();  // auto-commit mode: no locking
  return locks_->Acquire(txn->id, page_no, exclusive);
}

void OstoreManager::RetainPage(uint64_t page_no) {
  Txn* txn = CurrentTxn();
  if (txn == nullptr) return;
  if (txn->pins.count(page_no)) return;
  // No-steal: hold a pin so an uncommitted dirty page cannot be evicted
  // (and thus never reaches disk before its WAL group does).
  Result<BufferPool::PinGuard> guard = buffer_pool()->Fetch(page_no);
  if (guard.ok()) txn->pins.emplace(page_no, std::move(guard).value());
}

void OstoreManager::AppendRedo(const std::function<void(Encoder*)>& encode) {
  Txn* txn = CurrentTxn();
  if (txn != nullptr) {
    encode(&txn->redo);
    return;
  }
  // Auto-commit: one-op group, logged immediately with txn id 0.
  Encoder enc;
  encode(&enc);
  (void)wal_.AppendGroup(0, enc.buffer(), false);
}

void OstoreManager::OnPageInit(uint64_t lsn, uint64_t page, uint16_t segment) {
  AppendRedo([&](Encoder* enc) {
    enc->PutU8(kRedoPageInit);
    enc->PutU64(lsn);
    enc->PutU64(page);
    enc->PutU32(segment);
  });
  // A fresh page needs no undo: an aborted transaction simply leaves an
  // empty page behind.
}

void OstoreManager::OnInsert(uint64_t lsn, uint64_t page, uint16_t slot,
                             std::string_view bytes) {
  AppendRedo([&](Encoder* enc) {
    enc->PutU8(kRedoInsertOp);
    enc->PutU64(lsn);
    enc->PutU64(page);
    enc->PutU32(slot);
    enc->PutString(bytes);
  });
  Txn* txn = CurrentTxn();
  if (txn != nullptr) {
    uint8_t tag = bytes.empty() ? 0xFF : static_cast<uint8_t>(bytes[0]);
    txn->undo.push_back(Txn::Undo{kUndoInsert, page, slot, std::string(), tag});
  }
}

void OstoreManager::OnUpdate(uint64_t lsn, uint64_t page, uint16_t slot,
                             std::string_view old_bytes,
                             std::string_view bytes) {
  AppendRedo([&](Encoder* enc) {
    enc->PutU8(kRedoUpdateOp);
    enc->PutU64(lsn);
    enc->PutU64(page);
    enc->PutU32(slot);
    enc->PutString(bytes);
  });
  Txn* txn = CurrentTxn();
  if (txn != nullptr) {
    uint8_t tag = bytes.empty() ? 0xFF : static_cast<uint8_t>(bytes[0]);
    txn->undo.push_back(
        Txn::Undo{kUndoUpdate, page, slot, std::string(old_bytes), tag});
  }
}

void OstoreManager::OnDelete(uint64_t lsn, uint64_t page, uint16_t slot,
                             std::string_view old_bytes) {
  AppendRedo([&](Encoder* enc) {
    enc->PutU8(kRedoDeleteOp);
    enc->PutU64(lsn);
    enc->PutU64(page);
    enc->PutU32(slot);
  });
  Txn* txn = CurrentTxn();
  if (txn != nullptr) {
    uint8_t tag =
        old_bytes.empty() ? 0xFF : static_cast<uint8_t>(old_bytes[0]);
    txn->undo.push_back(
        Txn::Undo{kUndoDelete, page, slot, std::string(old_bytes), tag});
  }
}

// ---- Lifecycle ------------------------------------------------------------

Status OstoreManager::OnOpen(bool fresh) {
  LABFLOW_RETURN_IF_ERROR(wal_.Open(options().path + ".wal"));
  if (!fresh) return Recover();
  return Status::OK();
}

Status OstoreManager::Recover() {
  LABFLOW_ASSIGN_OR_RETURN(std::vector<Wal::Group> groups, wal_.ReadAll());
  uint64_t max_lsn = current_lsn();
  for (const Wal::Group& group : groups) {
    Decoder dec(group.payload);
    while (!dec.AtEnd()) {
      LABFLOW_ASSIGN_OR_RETURN(uint8_t op, dec.GetU8());
      LABFLOW_ASSIGN_OR_RETURN(uint64_t lsn, dec.GetU64());
      LABFLOW_ASSIGN_OR_RETURN(uint64_t page, dec.GetU64());
      if (lsn > max_lsn) max_lsn = lsn;
      switch (op) {
        case kRedoPageInit: {
          LABFLOW_ASSIGN_OR_RETURN(uint32_t segment, dec.GetU32());
          LABFLOW_RETURN_IF_ERROR(
              RedoPageInit(lsn, page, static_cast<uint16_t>(segment)));
          break;
        }
        case kRedoInsertOp: {
          LABFLOW_ASSIGN_OR_RETURN(uint32_t slot, dec.GetU32());
          LABFLOW_ASSIGN_OR_RETURN(std::string bytes, dec.GetString());
          LABFLOW_RETURN_IF_ERROR(
              RedoInsert(lsn, page, static_cast<uint16_t>(slot), bytes));
          break;
        }
        case kRedoUpdateOp: {
          LABFLOW_ASSIGN_OR_RETURN(uint32_t slot, dec.GetU32());
          LABFLOW_ASSIGN_OR_RETURN(std::string bytes, dec.GetString());
          LABFLOW_RETURN_IF_ERROR(
              RedoUpdate(lsn, page, static_cast<uint16_t>(slot), bytes));
          break;
        }
        case kRedoDeleteOp: {
          LABFLOW_ASSIGN_OR_RETURN(uint32_t slot, dec.GetU32());
          LABFLOW_RETURN_IF_ERROR(
              RedoDelete(lsn, page, static_cast<uint16_t>(slot)));
          break;
        }
        default:
          return Status::Corruption("unknown wal op");
      }
    }
  }
  set_lsn(max_lsn);
  // Make the replayed state durable and drop the log.
  LABFLOW_RETURN_IF_ERROR(buffer_pool()->FlushAll());
  LABFLOW_RETURN_IF_ERROR(page_file()->Sync());
  return wal_.Truncate();
}

Status OstoreManager::OnCheckpoint() { return wal_.Truncate(); }

void OstoreManager::DropActiveTransactions() {
  // A close or crash with live transactions must release their page pins
  // before the buffer pool is torn down (their changes are simply dropped:
  // never committed, so never logged).
  std::lock_guard<std::mutex> g(txn_mu_);
  for (auto& [tid, txn] : txns_) {
    if (txn != nullptr) {
      txn->pins.clear();
      locks_->ReleaseAll(txn->id);
    }
  }
  txns_.clear();
}

Status OstoreManager::OnClose() {
  DropActiveTransactions();
  return wal_.Close();
}

Status OstoreManager::OnCrash() {
  DropActiveTransactions();
  return wal_.Close();
}

void OstoreManager::AugmentStats(StorageStats* stats) const {
  stats->wal_bytes = wal_.SizeBytes();
  stats->lock_waits = locks_ == nullptr ? 0 : locks_->lock_waits();
  stats->txn_commits = commits_.load();
  stats->txn_aborts = aborts_.load();
}

}  // namespace labflow::ostore
