#ifndef LABFLOW_OSTORE_WAL_H_
#define LABFLOW_OSTORE_WAL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/env.h"

namespace labflow::ostore {

/// Write-ahead log of commit groups. Each group is the serialized redo-op
/// stream of one committed transaction (aborted transactions never reach the
/// log, so recovery is a single forward replay). Framing:
///
///   [u32 magic][u32 payload_len][u64 txn_id][payload][u32 checksum]
///
/// The checksum covers the 16-byte header *and* the payload, so a corrupted
/// length or transaction id is caught, not just a torn payload. A torn tail
/// (partial final group, impossible length, or checksum mismatch) terminates
/// the scan cleanly — exactly what a crash mid-append produces.
///
/// AppendGroup implements group commit: concurrent committers enqueue their
/// frames, the first waiter becomes the batch leader, writes every queued
/// frame with a single append (syncing once if any member asked for it), and
/// wakes the followers with their individual Status. Frames land whole and
/// in queue order, so the on-disk format is identical to one-write-per-group;
/// only the syscall boundaries change. Open/ReadAll/Truncate/Close are
/// lifecycle calls (single-threaded, no appender may be in flight).
///
/// Error stickiness: the first failed append (write or sync) poisons the
/// log — every later AppendGroup is refused with Unavailable until
/// Truncate() runs. This is a correctness property, not just caution: a
/// group whose *sync* failed may still be intact in the file even though
/// its commit was reported failed and rolled back in memory; appending more
/// groups after it would make recovery resurrect the ghost. Refusing until
/// the next checkpoint truncates the log keeps "valid prefix of the file" =
/// "acknowledged commit prefix".
class Wal {
 public:
  Wal() = default;
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Opens (creating if needed) the log for appending, in `env` (nullptr =
  /// the real filesystem).
  Status Open(storage::Env* env, const std::string& path);
  Status Open(const std::string& path) { return Open(nullptr, path); }

  /// Group-commit tuning. Call before concurrent appends begin.
  ///
  /// `max_group_bytes` bounds how many queued frame bytes one leader
  /// coalesces into a single write. `max_group_wait_us`, when positive, is a
  /// grace window: a leader whose own frame wants a sync waits up to this
  /// long for more committers to enqueue before forcing the log, trading
  /// commit latency for fewer fdatasyncs. Zero (the default) never delays —
  /// batching then comes only from committers that pile up while the
  /// previous leader is inside its write+sync.
  void SetGroupLimits(size_t max_group_bytes, int64_t max_group_wait_us)
      LABFLOW_EXCLUDES(mu_);

  /// Appends one commit group. When `sync` is set, also forces it to stable
  /// storage (force-at-commit durability). May coalesce with other
  /// concurrent appenders; the returned Status is this group's own outcome.
  /// Unavailable once the log is in its sticky error state (see above).
  Status AppendGroup(uint64_t txn_id, std::string_view payload, bool sync)
      LABFLOW_EXCLUDES(mu_);

  struct Group {
    uint64_t txn_id;
    std::string payload;
  };

  /// Reads every complete group in file order (used once, at recovery).
  /// Validation is defensive: a frame whose length field exceeds the bytes
  /// remaining in the file, or whose header+payload checksum mismatches,
  /// ends the scan with the clean prefix read so far. A *read error*, by
  /// contrast, is propagated — silently treating it as end-of-log would
  /// drop committed groups that are still in the file.
  Result<std::vector<Group>> ReadAll();

  /// Discards the log contents (after a checkpoint) and clears the sticky
  /// error state: with the in-memory image checkpointed and the file empty,
  /// no ghost group can survive.
  Status Truncate() LABFLOW_EXCLUDES(mu_);

  uint64_t SizeBytes() const { return size_.load(std::memory_order_relaxed); }

  /// The sticky error (OK when healthy). Set by the first failed append,
  /// cleared by Truncate.
  Status error_state() const LABFLOW_EXCLUDES(mu_);

  /// Group-commit counters (monotonic since Open).
  struct GroupStats {
    uint64_t frames = 0;                ///< groups appended to the file
    uint64_t writes = 0;                ///< coalesced batch writes
    uint64_t syncs = 0;                 ///< batch writes ending in fdatasync
    uint64_t max_frames_per_write = 0;  ///< largest batch observed
  };
  GroupStats group_stats() const LABFLOW_EXCLUDES(mu_);

  Status Close();

 private:
  static constexpr uint32_t kGroupMagic = 0x57414C47;  // "WALG"
  static constexpr size_t kHeaderBytes = 16;
  static constexpr size_t kChecksumBytes = 4;

  /// FNV-1a, chainable: pass the previous return value as `seed` to extend
  /// the checksum over several spans (header, then payload).
  static uint32_t Checksum(std::string_view data, uint32_t seed = 2166136261u);

  /// Unavailable status carrying the sticky error's message.
  Status StickyLocked() const LABFLOW_REQUIRES(mu_);

  /// A committer parked in the group-commit queue. Lives on the appending
  /// thread's stack; the leader fills `status` and flips `done` under `mu_`.
  struct Waiter {
    std::string frame;  // fully framed bytes (header + payload + checksum)
    bool sync = false;
    bool done = false;
    Status status;
  };

  // Open/Close lifecycle; constant while appends run.
  std::string path_;                     // NOLINT(guarded-by-coverage)
  storage::Env* env_ = nullptr;          // NOLINT(guarded-by-coverage)
  std::unique_ptr<storage::File> file_;  // NOLINT(guarded-by-coverage)
  std::atomic<uint64_t> size_{0};

  // Group-commit state. `mu_` guards the queue, the leader flag, the sticky
  // error and the stats; the file itself is written only by the current
  // leader, outside the lock (leader_active_ excludes a second writer).
  // Rank kWalQueue: the leader explicitly unlocks before file I/O and
  // relocks after, so nothing nests inside it.
  mutable Mutex mu_{LockRank::kWalQueue, "ostore.wal"};
  CondVar cv_;
  std::deque<Waiter*> queue_ LABFLOW_GUARDED_BY(mu_);
  size_t queued_bytes_ LABFLOW_GUARDED_BY(mu_) = 0;
  bool leader_active_ LABFLOW_GUARDED_BY(mu_) = false;
  size_t max_group_bytes_ LABFLOW_GUARDED_BY(mu_) = 1 << 20;
  int64_t max_group_wait_us_ LABFLOW_GUARDED_BY(mu_) = 0;
  Status error_state_ LABFLOW_GUARDED_BY(mu_);
  GroupStats stats_ LABFLOW_GUARDED_BY(mu_);
};

}  // namespace labflow::ostore

#endif  // LABFLOW_OSTORE_WAL_H_
