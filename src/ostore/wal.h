#ifndef LABFLOW_OSTORE_WAL_H_
#define LABFLOW_OSTORE_WAL_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace labflow::ostore {

/// Write-ahead log of commit groups. Each group is the serialized redo-op
/// stream of one committed transaction (aborted transactions never reach the
/// log, so recovery is a single forward replay). Framing:
///
///   [u32 magic][u32 payload_len][u64 txn_id][payload][u32 checksum]
///
/// A torn tail (partial final group or checksum mismatch) terminates the
/// scan cleanly — exactly what a crash mid-append produces.
///
/// AppendGroup is internally serialized so concurrent transactions may
/// commit from different threads; groups land whole, in some serial order.
/// Open/ReadAll/Truncate/Close are lifecycle calls (single-threaded).
class Wal {
 public:
  Wal() = default;
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Opens (creating if needed) the log for appending.
  Status Open(const std::string& path);

  /// Appends one commit group and flushes it to the OS. When `sync` is set,
  /// also fdatasyncs (force-at-commit durability).
  Status AppendGroup(uint64_t txn_id, std::string_view payload, bool sync);

  struct Group {
    uint64_t txn_id;
    std::string payload;
  };

  /// Reads every complete group in file order (used once, at recovery).
  Result<std::vector<Group>> ReadAll();

  /// Discards the log contents (after a checkpoint).
  Status Truncate();

  uint64_t SizeBytes() const { return size_.load(std::memory_order_relaxed); }

  Status Close();

 private:
  static constexpr uint32_t kGroupMagic = 0x57414C47;  // "WALG"

  static uint32_t Checksum(std::string_view data);

  std::string path_;
  FILE* file_ = nullptr;
  std::mutex append_mu_;
  std::atomic<uint64_t> size_{0};
};

}  // namespace labflow::ostore

#endif  // LABFLOW_OSTORE_WAL_H_
