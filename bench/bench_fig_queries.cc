// Experiment F2: query-phase breakdown.
//
// Builds a 1X LabFlow-1 database on each server version, then times each
// query class separately over the *same* set of targets: most-recent value
// lookups, full-history audits, work-queue scans, per-state counts, set
// retrieval and name lookups. Reported as mean microseconds per query.
//
// This is the per-query-class companion to the main table: it shows where
// the locality differences live (audits walk history; most-recent hits the
// material record and its embedded access structure).

#include <iomanip>
#include <iostream>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/rng.h"
#include "labbase/labbase.h"
#include "labflow/apply.h"
#include "labflow/generator.h"
#include "labflow/server_version.h"
#include "workflow/graph.h"
#include "common/status_macros.h"

namespace labflow::bench {
namespace {

struct QueryTargets {
  std::vector<std::pair<std::string, std::string>> value_targets;
  std::vector<std::string> states;
  std::vector<std::string> sets;
};

/// Loads the update stream into `db`, remembering audit targets.
Status BuildDatabase(labbase::LabBase::Session* db, const WorkloadParams& params,
                     QueryTargets* targets) {
  WorkloadGenerator generator(params);
  LABFLOW_RETURN_IF_ERROR(generator.graph().InstallSchema(db));
  targets->states = generator.graph().states;
  Event ev;
  Rng pick(params.seed ^ 0xABCD);
  while (generator.Next(&ev)) {
    if (!ev.IsUpdate()) continue;
    LABFLOW_RETURN_IF_ERROR(ApplyUpdate(db, ev));
    if (ev.type == Event::Type::kRecordStep) {
      for (const EffectSpec& spec : ev.effects) {
        // Sample ~2% of (material, attr) pairs as audit targets.
        if (!spec.tags.empty() && pick.NextBool(0.02)) {
          targets->value_targets.emplace_back(spec.material,
                                              spec.tags[0].attr);
        }
      }
    } else if (ev.type == Event::Type::kCreateSet) {
      targets->sets.push_back(ev.name);
    }
  }
  return Status::OK();
}

int Main(int argc, char** argv) {
  WorkloadParams params;
  params.intvl = FlagValue(argc, argv, "intvl", 1.0);
  params.base_clones = static_cast<int>(FlagValue(argc, argv, "clones", 300));
  size_t pool = static_cast<size_t>(FlagValue(argc, argv, "pool", 1024));
  const int kQueriesPerClass = 2000;

  std::cout << "LabFlow-1 query-phase breakdown (F2) — mean us/query, "
            << params.intvl << "X, pool=" << pool << " pages\n\n";

  std::map<std::string, std::map<std::string, double>> table;
  std::vector<std::string> classes = {"most_recent", "history",
                                      "work_queue",  "count_state",
                                      "set_members", "by_name"};

  for (ServerVersion version : kAllServerVersions) {
    BenchDir dir;
    ServerOptions server_opts;
    server_opts.path = dir.file("labflow.db");
    server_opts.pool_pages = pool;
    auto mgr = CreateServer(version, server_opts);
    if (!mgr.ok()) {
      std::cerr << mgr.status().ToString() << "\n";
      return 1;
    }
    auto base = labbase::LabBase::Open(mgr->get(), labbase::LabBaseOptions{});
    if (!base.ok()) {
      std::cerr << base.status().ToString() << "\n";
      return 1;
    }
    std::unique_ptr<labbase::LabBase::Session> db = (*base)->OpenSession();
    QueryTargets targets;
    Status st = BuildDatabase(db.get(), params, &targets);
    if (!st.ok()) {
      std::cerr << "build failed: " << st.ToString() << "\n";
      return 1;
    }
    if (targets.value_targets.empty()) {
      std::cerr << "no audit targets sampled\n";
      return 1;
    }

    const labbase::Schema& schema = db->schema();
    Rng rng(7);
    auto time_class = [&](const std::string& cls,
                          const std::function<Status()>& one) -> Status {
      Stopwatch sw;
      for (int i = 0; i < kQueriesPerClass; ++i) {
        LABFLOW_RETURN_IF_ERROR(one());
      }
      table[cls][std::string(ServerVersionName(version))] =
          sw.ElapsedSeconds() * 1e6 / kQueriesPerClass;
      return Status::OK();
    };

    st = time_class("most_recent", [&]() -> Status {
      const auto& [name, attr] =
          targets.value_targets[rng.NextBelow(targets.value_targets.size())];
      LABFLOW_ASSIGN_OR_RETURN(Oid m, db->FindMaterialByName(name));
      Status qs = db->MostRecent(m, attr).status();
      return qs.IsNotFound() ? Status::OK() : qs;
    });
    if (st.ok()) {
      st = time_class("history", [&]() -> Status {
        const auto& [name, attr] =
            targets.value_targets[rng.NextBelow(targets.value_targets.size())];
        LABFLOW_ASSIGN_OR_RETURN(Oid m, db->FindMaterialByName(name));
        LABFLOW_ASSIGN_OR_RETURN(labbase::AttrId a,
                                 schema.AttributeByName(attr));
        return db->History(m, a).status();
      });
    }
    if (st.ok()) {
      st = time_class("work_queue", [&]() -> Status {
        const std::string& state =
            targets.states[rng.NextBelow(targets.states.size())];
        LABFLOW_ASSIGN_OR_RETURN(labbase::StateId s,
                                 schema.StateByName(state));
        LABFLOW_ASSIGN_OR_RETURN(std::vector<Oid> queue,
                                 db->MaterialsInState(s));
        size_t inspect = queue.size() < 20 ? queue.size() : 20;
        for (size_t i = 0; i < inspect; ++i) {
          LABFLOW_RETURN_IF_ERROR(db->GetMaterial(queue[i]).status());
        }
        return Status::OK();
      });
    }
    if (st.ok()) {
      st = time_class("count_state", [&]() -> Status {
        const std::string& state =
            targets.states[rng.NextBelow(targets.states.size())];
        LABFLOW_ASSIGN_OR_RETURN(labbase::StateId s,
                                 schema.StateByName(state));
        return db->CountInState(s).status();
      });
    }
    if (st.ok() && !targets.sets.empty()) {
      st = time_class("set_members", [&]() -> Status {
        const std::string& set_name =
            targets.sets[rng.NextBelow(targets.sets.size())];
        LABFLOW_ASSIGN_OR_RETURN(Oid set, db->FindSetByName(set_name));
        return db->SetMembers(set).status();
      });
    }
    if (st.ok()) {
      st = time_class("by_name", [&]() -> Status {
        const auto& [name, attr] =
            targets.value_targets[rng.NextBelow(targets.value_targets.size())];
        (void)attr;
        LABFLOW_ASSIGN_OR_RETURN(Oid m, db->FindMaterialByName(name));
        return db->GetMaterial(m).status();
      });
    }
    if (!st.ok()) {
      std::cerr << "query phase failed: " << st.ToString() << "\n";
      return 1;
    }
    std::cerr << "done: " << ServerVersionName(version) << "\n";
    db.reset();
    base->reset();
    LABFLOW_IGNORE_STATUS((*mgr)->Close(),
                          "per-version teardown; the measured phases above "
                          "already failed loudly");
  }

  std::cout << std::left << std::setw(14) << "query class";
  for (ServerVersion v : kAllServerVersions) {
    std::cout << std::right << std::setw(12) << ServerVersionName(v);
  }
  std::cout << "\n";
  for (const std::string& cls : classes) {
    std::cout << std::left << std::setw(14) << cls;
    for (ServerVersion v : kAllServerVersions) {
      std::cout << std::right << std::setw(12) << std::fixed
                << std::setprecision(2)
                << table[cls][std::string(ServerVersionName(v))];
    }
    std::cout << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace labflow::bench

int main(int argc, char** argv) { return labflow::bench::Main(argc, argv); }
