// Experiment T2: the paper's Section 10 main results table.
//
// Runs the full LabFlow-1 stream (updates + query mix + schema evolution)
// through every server version at Intvl = 0.5X / 1X / 2X and prints the
// paper-shaped table: elapsed sec, user cpu sec, sys cpu sec, majflt, and
// size (bytes). The buffer pool is fixed at 2048 pages (16 MiB), playing
// the role of the testbed's physical memory: at 0.5X every database fits,
// at 2X the persistent versions must page.
//
// The 10X and 100X scales (run via --intvls) are this repo's extension to
// the paper's table: with the pool bounded, the paged heaps fault on nearly
// every history edge at 100X while the LSM history store stays sequential —
// the Table 2 sixth-column comparison (see EXPERIMENTS.md).
//
// Flags: --clones=N (base clones at 1X, default 500), --pool=PAGES,
//        --seed=S, --intvl=X to run a single scale, or --intvls=a,b,c to
//        run a custom list of scales (e.g. --intvls=1,10,100);
//        --versions=a,b restricts the column set (names as printed, e.g.
//        --versions=OStore,LsmStore) — note the cross-version checksum
//        gate then only covers the versions that ran.

#include <iostream>
#include <sstream>
#include <vector>

#include "bench/bench_util.h"
#include "labflow/driver.h"
#include "labflow/report.h"

namespace labflow::bench {
namespace {

int Main(int argc, char** argv) {
  double single_intvl = FlagValue(argc, argv, "intvl", 0);
  std::string intvls_csv = FlagString(argc, argv, "intvls");
  std::vector<double> intvls;
  if (!intvls_csv.empty()) {
    std::stringstream ss(intvls_csv);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      double v = std::atof(tok.c_str());
      if (v <= 0) {
        std::cerr << "ERROR: bad --intvls entry '" << tok << "'\n";
        return 1;
      }
      intvls.push_back(v);
    }
  } else if (single_intvl > 0) {
    intvls = {single_intvl};
  } else {
    intvls = {0.5, 1.0, 2.0};
  }
  std::string versions_csv = FlagString(argc, argv, "versions");
  std::vector<ServerVersion> versions;
  if (!versions_csv.empty()) {
    std::stringstream ss(versions_csv);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      bool known = false;
      for (ServerVersion v : kAllServerVersions) {
        if (tok == ServerVersionName(v)) {
          versions.push_back(v);
          known = true;
        }
      }
      if (!known) {
        std::cerr << "ERROR: unknown --versions entry '" << tok << "'\n";
        return 1;
      }
    }
  } else {
    versions.assign(std::begin(kAllServerVersions), std::end(kAllServerVersions));
  }
  int base_clones = static_cast<int>(FlagValue(argc, argv, "clones", 500));
  size_t pool = static_cast<size_t>(FlagValue(argc, argv, "pool", 2048));
  uint64_t seed = static_cast<uint64_t>(FlagValue(argc, argv, "seed", 1996));
  std::string json_path = FlagString(argc, argv, "json");
  JsonReport json("table2_main");

  std::cout << "LabFlow-1 main results (T2) — base_clones=" << base_clones
            << ", pool=" << pool << " pages ("
            << WithCommas(pool * 8192) << " bytes), seed=" << seed << "\n\n";

  std::vector<RunReport> reports;
  for (double intvl : intvls) {
    WorkloadParams params;
    params.intvl = intvl;
    params.base_clones = base_clones;
    params.seed = seed;
    for (ServerVersion version : versions) {
      BenchDir dir;
      Driver::Options opts;
      opts.version = version;
      opts.db_path = dir.file("labflow.db");
      opts.pool_pages = pool;
      auto report = Driver::Run(params, opts);
      if (!report.ok()) {
        std::cerr << ServerVersionName(version) << " @ " << intvl
                  << "X failed: " << report.status().ToString() << "\n";
        return 1;
      }
      std::cerr << "done: " << report->version << " @ " << intvl << "X ("
                << report->events << " events)\n";
      json.AddRow()
          .Str("version", report->version)
          .Num("intvl", report->intvl)
          .Num("elapsed_sec", report->elapsed_sec)
          // Phase split: update_ is the paper's "loading" figure, the one
          // the LSM column is judged on at 10X/100X (docs/EXPERIMENTS.md).
          .Num("update_elapsed_sec", report->update_elapsed_sec)
          .Num("query_elapsed_sec", report->query_elapsed_sec)
          .Num("user_cpu_sec", report->user_cpu_sec)
          .Num("sys_cpu_sec", report->sys_cpu_sec)
          .Int("majflt", report->majflt)
          .Int("db_size_bytes", report->db_size_bytes)
          .Int("events", static_cast<uint64_t>(report->events))
          // As a string: JSON numbers lose precision past 2^53.
          .Str("result_checksum", std::to_string(report->result_checksum));
      reports.push_back(std::move(report).value());
    }
  }

  PrintMainTable(std::cout, reports);

  std::cout << "Run details:\n";
  for (const RunReport& r : reports) {
    PrintRunDetails(std::cout, r);
  }
  // Checksums must agree within each Intvl group (all versions answered the
  // same stream) — checked at every scale, not just the first.
  bool consistent = true;
  for (const RunReport& r : reports) {
    for (const RunReport& other : reports) {
      if (other.intvl == r.intvl &&
          other.result_checksum != r.result_checksum) {
        std::cerr << "checksum mismatch @ " << r.intvl << "X: " << r.version
                  << "=" << r.result_checksum << " vs " << other.version
                  << "=" << other.result_checksum << "\n";
        consistent = false;
      }
    }
  }
  std::cout << (consistent ? "cross-version checksums: CONSISTENT\n"
                           : "cross-version checksums: MISMATCH (BUG)\n");
  if (!json.WriteTo(json_path)) {
    std::cerr << "ERROR: could not write " << json_path << "\n";
    return 1;
  }
  return consistent ? 0 : 1;
}

}  // namespace
}  // namespace labflow::bench

int main(int argc, char** argv) { return labflow::bench::Main(argc, argv); }
