// Network-seam experiment: the F6-style read-mostly regime through labflowd.
//
// The main benches drive LabBase in-process; this one puts the wire between
// the driver and the database and asks two questions the in-process numbers
// cannot answer:
//
//   closed loop — N clients, each with its own connection and remote
//     session, issue the read-mostly query mix back-to-back. Per-operation
//     latency here is the full round trip (encode, loopback TCP, epoll
//     dispatch, worker execution, response flush), so the p50 is the seam's
//     overhead floor and the tail shows dispatch jitter under concurrency.
//
//   open loop — requests arrive on a schedule (a fraction of the measured
//     closed-loop capacity), pipelined over one connection across several
//     sessions, with a bounded in-flight window (see the pipelining
//     discipline note in net/client.h). Latency is measured from the
//     *scheduled* arrival, so queueing delay is charged to the server — the
//     coordinated-omission-free view a closed loop structurally cannot give.
//
// Correctness ride-along: every regime folds its query results into an
// order-independent checksum over backend-neutral fields (values and
// timestamps, never Oids). Run in-process (the default), the bench replays
// the identical closed-loop workload directly against LabBase sessions and
// fails unless the checksums match — the wire must change no answers. Run
// with --connect=host:port against an external labflowd, the checksums are
// printed and written to the JSON so the harness (scripts/check.sh server
// phase) can compare them against an in-process run's.
#include <algorithm>
#include <chrono>
#include <deque>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/codec.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/status_macros.h"
#include "labbase/labbase.h"
#include "mm/mm_manager.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"

namespace labflow::bench {
namespace {

using labbase::LabBase;
using net::Connection;
using net::Op;
using net::RemoteSession;
using net::Server;
using net::ServerConfig;

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

/// Deterministic preload through any session implementation: the read-mostly
/// fixture from bench_fig_concurrency (materials with short step histories).
/// Returns the material Oids in creation order — indices are the cross-
/// backend currency; the Oids themselves never enter a checksum.
Result<std::vector<Oid>> Preload(labbase::SessionIface* admin, int materials,
                                 int steps_per_material,
                                 labbase::AttrId* x_out) {
  LABFLOW_ASSIGN_OR_RETURN(labbase::ClassId clone,
                           admin->DefineMaterialClass("clone"));
  LABFLOW_ASSIGN_OR_RETURN(labbase::StateId active,
                           admin->DefineState("active"));
  LABFLOW_ASSIGN_OR_RETURN(labbase::ClassId measure,
                           admin->DefineStepClass("measure", {"x"}));
  labbase::AttrId x = admin->schema().AttributeByName("x").value();
  *x_out = x;
  std::vector<Oid> mats;
  mats.reserve(materials);
  for (int m = 0; m < materials; ++m) {
    Oid mat;
    LABFLOW_RETURN_IF_ERROR(admin->RunTransaction([&]() -> Status {
      LABFLOW_ASSIGN_OR_RETURN(
          mat, admin->CreateMaterial(clone, "rm-" + std::to_string(m), active,
                                     Timestamp(m)));
      for (int s = 0; s < steps_per_material; ++s) {
        labbase::StepEffect effect;
        effect.material = mat;
        effect.tags = {{x, Value::Int(m * 1000 + s)}};
        LABFLOW_RETURN_IF_ERROR(
            admin->RecordStep(measure, Timestamp(m * 100 + s + 1), {effect})
                .status());
      }
      return Status::OK();
    }));
    mats.push_back(mat);
  }
  return mats;
}

/// One client's closed-loop query stream: the concurrency bench's read-mostly
/// mix (1-in-8 history, the rest most-recent) with per-operation latency and
/// an FNV fold of the results. Deterministic per (seed, queries); the fold
/// uses values and timestamps only, so the same stream against any backend —
/// local session or remote — must produce the same checksum.
Status RunQueryStream(labbase::SessionIface* session,
                      const std::vector<Oid>& mats, labbase::AttrId x,
                      uint64_t seed, int queries, LatencyHistogram* hist,
                      uint64_t* checksum) {
  Rng rng(seed);
  uint64_t local = kFnvOffset;
  for (int i = 0; i < queries; ++i) {
    Oid mat = mats[rng.NextBelow(mats.size())];
    Stopwatch op;
    if (i % 8 == 7) {
      LABFLOW_ASSIGN_OR_RETURN(std::vector<labbase::HistoryEntry> h,
                               session->History(mat, x));
      hist->RecordSeconds(op.ElapsedSeconds());
      local = (local ^ h.size()) * kFnvPrime;
      for (const labbase::HistoryEntry& e : h) {
        local = (local ^ static_cast<uint64_t>(e.time.micros)) * kFnvPrime;
      }
    } else {
      LABFLOW_ASSIGN_OR_RETURN(Value v, session->MostRecent(mat, x));
      hist->RecordSeconds(op.ElapsedSeconds());
      local = (local ^ static_cast<uint64_t>(v.int_value())) * kFnvPrime;
    }
  }
  *checksum = local;
  return Status::OK();
}

struct ClosedOutcome {
  double queries_per_sec = 0;
  uint64_t queries = 0;
  uint64_t checksum = 0;  ///< XOR of the per-thread folds
  LatencyHistogram latency;
};

/// Closed loop over the wire: each thread dials its own connection and opens
/// its own remote session, so N clients exercise N sockets and N pool leases
/// — the shape a real client fleet presents to labflowd.
Result<ClosedOutcome> RunClosedRemote(const std::string& host, uint16_t port,
                                      const std::vector<Oid>& mats,
                                      labbase::AttrId x, int threads,
                                      int queries_per_thread) {
  std::vector<std::thread> workers;
  std::vector<Status> status(threads, Status::OK());
  std::vector<uint64_t> sums(threads, 0);
  std::vector<LatencyHistogram> hists(threads);
  Stopwatch sw;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto run = [&]() -> Status {
        LABFLOW_ASSIGN_OR_RETURN(std::unique_ptr<Connection> conn,
                                 Connection::Dial(host, port));
        LABFLOW_ASSIGN_OR_RETURN(std::unique_ptr<RemoteSession> session,
                                 RemoteSession::Open(conn.get()));
        return RunQueryStream(session.get(), mats, x,
                              static_cast<uint64_t>(t) * 7919 + 1,
                              queries_per_thread, &hists[t], &sums[t]);
      };
      status[t] = run();
    });
  }
  for (std::thread& w : workers) w.join();
  double elapsed = sw.ElapsedSeconds();

  ClosedOutcome out;
  for (int t = 0; t < threads; ++t) {
    LABFLOW_RETURN_IF_ERROR(status[t]);
    out.checksum ^= sums[t];
    out.latency.Merge(hists[t]);
  }
  out.queries = static_cast<uint64_t>(threads) * queries_per_thread;
  out.queries_per_sec = elapsed > 0 ? out.queries / elapsed : 0;
  return out;
}

/// The identical closed-loop workload with the wire removed: threads check
/// sessions out of a local pool. Latencies here are the in-process baseline
/// the remote rows are read against, and the checksum is the parity gate.
Result<ClosedOutcome> RunClosedInProcess(LabBase* db,
                                         const std::vector<Oid>& mats,
                                         labbase::AttrId x, int threads,
                                         int queries_per_thread) {
  LabBase::SessionPool pool(db, /*max_idle=*/static_cast<size_t>(threads));
  std::vector<std::thread> workers;
  std::vector<Status> status(threads, Status::OK());
  std::vector<uint64_t> sums(threads, 0);
  std::vector<LatencyHistogram> hists(threads);
  Stopwatch sw;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      LabBase::SessionPool::Lease lease = pool.Acquire();
      status[t] = RunQueryStream(lease.get(), mats, x,
                                 static_cast<uint64_t>(t) * 7919 + 1,
                                 queries_per_thread, &hists[t], &sums[t]);
    });
  }
  for (std::thread& w : workers) w.join();
  double elapsed = sw.ElapsedSeconds();

  ClosedOutcome out;
  for (int t = 0; t < threads; ++t) {
    LABFLOW_RETURN_IF_ERROR(status[t]);
    out.checksum ^= sums[t];
    out.latency.Merge(hists[t]);
  }
  out.queries = static_cast<uint64_t>(threads) * queries_per_thread;
  out.queries_per_sec = elapsed > 0 ? out.queries / elapsed : 0;
  return out;
}

struct OpenOutcome {
  double offered_per_sec = 0;
  double achieved_per_sec = 0;
  uint64_t completed = 0;
  uint64_t checksum = 0;
  LatencyHistogram latency;
};

/// Open loop: one connection, a few sessions for server-side parallelism,
/// raw pipelined most-recent frames. The submitter paces sends to the
/// offered schedule; an awaiter drains completions in submission order and
/// charges each response from its *scheduled* arrival time. The in-flight
/// window is bounded (kWindow) per the client pipelining discipline — an
/// unbounded pipeline can wedge against the server's read-pause
/// backpressure. The fold is over decoded values in submission order, so it
/// is independent of the offered rate: both rate points must agree.
Result<OpenOutcome> RunOpenLoop(const std::string& host, uint16_t port,
                                const std::vector<Oid>& mats,
                                labbase::AttrId x, double rate,
                                int total_reqs) {
  constexpr int kSessions = 4;
  constexpr size_t kWindow = 256;
  LABFLOW_ASSIGN_OR_RETURN(std::unique_ptr<Connection> conn,
                           Connection::Dial(host, port));
  std::vector<std::unique_ptr<RemoteSession>> sessions;
  for (int s = 0; s < kSessions; ++s) {
    LABFLOW_ASSIGN_OR_RETURN(std::unique_ptr<RemoteSession> session,
                             RemoteSession::Open(conn.get()));
    sessions.push_back(std::move(session));
  }

  struct Pending {
    uint64_t rid = 0;
    double sched = 0;  ///< scheduled arrival, seconds from run start
  };
  Mutex mu;
  CondVar cv;
  std::deque<Pending> pending;
  bool submit_done = false;

  OpenOutcome out;
  out.offered_per_sec = rate;
  Status await_status = Status::OK();
  uint64_t fold = kFnvOffset;
  double last_completion = 0;

  Stopwatch sw;
  std::thread awaiter([&] {
    for (;;) {
      Pending p;
      {
        MutexLock l(mu);
        cv.Wait(mu, [&]() LABFLOW_REQUIRES(mu) {
          return !pending.empty() || submit_done;
        });
        if (pending.empty()) return;
        p = pending.front();
        pending.pop_front();
        cv.NotifyAll();  // reopen the submitter's window
      }
      auto body = conn->Await(p.rid);
      double now = sw.ElapsedSeconds();
      if (!body.ok()) {
        await_status = body.status();
        return;
      }
      out.latency.RecordSeconds(now - p.sched);
      last_completion = now;
      ++out.completed;
      Decoder d(*body);
      auto v = d.GetValue();
      if (!v.ok()) {
        await_status = v.status();
        return;
      }
      fold = (fold ^ static_cast<uint64_t>(v->int_value())) * kFnvPrime;
    }
  });

  Status submit_status = Status::OK();
  Rng rng(12345);
  for (int i = 0; i < total_reqs; ++i) {
    double sched = i / rate;
    double now = sw.ElapsedSeconds();
    if (now < sched) {
      std::this_thread::sleep_for(std::chrono::duration<double>(sched - now));
    }
    Encoder e;
    net::EncodeOid(&e, mats[rng.NextBelow(mats.size())]);
    e.PutU32(x);
    {
      MutexLock l(mu);
      cv.Wait(mu, [&]() LABFLOW_REQUIRES(mu) {
        return pending.size() < kWindow;
      });
    }
    auto rid = conn->Send(Op::kMostRecent,
                          sessions[i % kSessions]->session_id(), e.buffer());
    if (!rid.ok()) {
      submit_status = rid.status();
      break;
    }
    {
      MutexLock l(mu);
      pending.push_back({rid.value(), sched});
      cv.NotifyAll();
    }
  }
  {
    MutexLock l(mu);
    submit_done = true;
    cv.NotifyAll();
  }
  awaiter.join();
  LABFLOW_RETURN_IF_ERROR(submit_status);
  LABFLOW_RETURN_IF_ERROR(await_status);
  out.checksum = fold;
  out.achieved_per_sec =
      last_completion > 0 ? out.completed / last_completion : 0;
  return out;
}

int Main(int argc, char** argv) {
  int queries = static_cast<int>(FlagValue(argc, argv, "queries", 2000));
  int materials = static_cast<int>(FlagValue(argc, argv, "materials", 192));
  int steps = static_cast<int>(FlagValue(argc, argv, "steps", 8));
  int open_reqs = static_cast<int>(FlagValue(argc, argv, "open_reqs", 6000));
  std::string connect = FlagString(argc, argv, "connect");
  std::string json_path = FlagString(argc, argv, "json");

  // Target: --connect=host:port uses an external labflowd (the harness
  // starts one and compares checksums across runs); otherwise an in-process
  // server over a main-memory store, which also enables the parity gate.
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::unique_ptr<mm::MmManager> mgr;
  std::unique_ptr<LabBase> db;
  std::unique_ptr<Server> server;
  if (connect.empty()) {
    mgr = std::make_unique<mm::MmManager>("fig-server");
    auto db_or = LabBase::Open(mgr.get(), {});
    if (!db_or.ok()) {
      std::cerr << "ERROR: " << db_or.status().ToString() << "\n";
      return 1;
    }
    db = std::move(db_or.value());
    server = std::make_unique<Server>(db.get(), mgr.get(), ServerConfig{});
    Status st = server->Start();
    if (!st.ok()) {
      std::cerr << "ERROR: " << st.ToString() << "\n";
      return 1;
    }
    port = server->port();
  } else {
    size_t colon = connect.rfind(':');
    if (colon == std::string::npos) {
      std::cerr << "ERROR: --connect wants host:port, got " << connect << "\n";
      return 2;
    }
    host = connect.substr(0, colon);
    port = static_cast<uint16_t>(std::atoi(connect.c_str() + colon + 1));
  }

  std::cout << "labflowd read-mostly over " << (connect.empty()
                ? std::string("in-process loopback server")
                : connect)
            << " — " << materials << " materials x " << steps << " steps, "
            << queries << " queries/client\n\n";

  // Remote preload (works against either target; the harness always starts
  // labflowd on a fresh database).
  std::vector<Oid> mats;
  labbase::AttrId attr_x = 0;
  {
    auto conn_or = Connection::Dial(host, port);
    if (!conn_or.ok()) {
      std::cerr << "ERROR: dial: " << conn_or.status().ToString() << "\n";
      return 1;
    }
    auto admin_or = RemoteSession::Open(conn_or.value().get());
    if (!admin_or.ok()) {
      std::cerr << "ERROR: open: " << admin_or.status().ToString() << "\n";
      return 1;
    }
    auto mats_or = Preload(admin_or.value().get(), materials, steps, &attr_x);
    if (!mats_or.ok()) {
      std::cerr << "ERROR: preload: " << mats_or.status().ToString() << "\n";
      return 1;
    }
    mats = std::move(mats_or.value());
  }

  JsonReport report("fig_server");

  // Closed loop, with the wire-free replay alongside when in-process.
  std::cout << "closed loop (own connection + session per client):\n";
  std::cout << std::left << std::setw(9) << "clients" << std::setw(9) << "path"
            << std::right << std::setw(13) << "queries/sec" << std::setw(11)
            << "p50_us" << std::setw(11) << "p99_us" << std::setw(11)
            << "p999_us" << std::setw(22) << "checksum"
            << "\n";
  double capacity = 0;
  for (int threads : {1, 2, 4, 8}) {
    auto remote_or =
        RunClosedRemote(host, port, mats, attr_x, threads, queries);
    if (!remote_or.ok()) {
      std::cerr << "ERROR: " << remote_or.status().ToString() << "\n";
      return 1;
    }
    ClosedOutcome remote = remote_or.value();
    capacity = std::max(capacity, remote.queries_per_sec);
    std::cout << std::left << std::setw(9) << threads << std::setw(9)
              << "remote" << std::right << std::setw(13) << std::fixed
              << std::setprecision(0) << remote.queries_per_sec
              << std::setw(11) << remote.latency.PercentileUs(50)
              << std::setw(11) << remote.latency.PercentileUs(99)
              << std::setw(11) << remote.latency.PercentileUs(99.9)
              << std::setw(22) << remote.checksum << "\n";
    report.AddRow()
        .Str("regime", "closed_remote")
        .Int("clients", threads)
        .Int("queries", remote.queries)
        .Num("queries_per_sec", remote.queries_per_sec)
        .LatencyUs("query", remote.latency)
        .Str("checksum", std::to_string(remote.checksum));

    if (db != nullptr) {
      // Parity fixture: a second, locally-preloaded database — never the
      // server's, so the replay cannot lean on server-side state.
      mm::MmManager local_mgr("fig-server-parity");
      auto local_db_or = LabBase::Open(&local_mgr, {});
      if (!local_db_or.ok()) {
        std::cerr << "ERROR: " << local_db_or.status().ToString() << "\n";
        return 1;
      }
      std::unique_ptr<LabBase> local_db = std::move(local_db_or.value());
      std::vector<Oid> local_mats;
      labbase::AttrId local_x = 0;
      {
        auto admin = local_db->OpenSession();
        auto mats_or = Preload(admin.get(), materials, steps, &local_x);
        if (!mats_or.ok()) {
          std::cerr << "ERROR: " << mats_or.status().ToString() << "\n";
          return 1;
        }
        local_mats = std::move(mats_or.value());
      }
      auto inproc_or = RunClosedInProcess(local_db.get(), local_mats, local_x,
                                          threads, queries);
      if (!inproc_or.ok()) {
        std::cerr << "ERROR: " << inproc_or.status().ToString() << "\n";
        return 1;
      }
      ClosedOutcome inproc = inproc_or.value();
      std::cout << std::left << std::setw(9) << "" << std::setw(9) << "local"
                << std::right << std::setw(13) << std::fixed
                << std::setprecision(0) << inproc.queries_per_sec
                << std::setw(11) << inproc.latency.PercentileUs(50)
                << std::setw(11) << inproc.latency.PercentileUs(99)
                << std::setw(11) << inproc.latency.PercentileUs(99.9)
                << std::setw(22) << inproc.checksum << "\n";
      report.AddRow()
          .Str("regime", "closed_inproc")
          .Int("clients", threads)
          .Int("queries", inproc.queries)
          .Num("queries_per_sec", inproc.queries_per_sec)
          .LatencyUs("query", inproc.latency)
          .Str("checksum", std::to_string(inproc.checksum));
      if (inproc.checksum != remote.checksum) {
        std::cerr << "ERROR: closed-loop checksum diverges between remote ("
                  << remote.checksum << ") and in-process (" << inproc.checksum
                  << ") at " << threads << " clients — the wire changed an "
                  << "answer\n";
        return 1;
      }
    }
  }
  std::cout << "\n";

  // Open loop at fractions of the measured closed-loop capacity: the 50%
  // point shows the uncongested service time, the 90% point the queueing
  // tail as the server runs hot.
  std::cout << "open loop (paced arrivals, 1 connection x 4 sessions, "
               "window 256):\n";
  std::cout << std::left << std::setw(9) << "load" << std::right
            << std::setw(13) << "offered/sec" << std::setw(13)
            << "achieved/sec" << std::setw(11) << "p50_us" << std::setw(11)
            << "p99_us" << std::setw(11) << "p999_us" << std::setw(22)
            << "checksum"
            << "\n";
  uint64_t open_checksum = 0;
  bool open_checksum_set = false;
  for (double fraction : {0.5, 0.9}) {
    double rate = std::max(1.0, capacity * fraction);
    auto open_or = RunOpenLoop(host, port, mats, attr_x, rate, open_reqs);
    if (!open_or.ok()) {
      std::cerr << "ERROR: " << open_or.status().ToString() << "\n";
      return 1;
    }
    OpenOutcome open = open_or.value();
    std::cout << std::left << std::setw(9)
              << (std::to_string(static_cast<int>(fraction * 100)) + "%")
              << std::right << std::setw(13) << std::fixed
              << std::setprecision(0) << open.offered_per_sec << std::setw(13)
              << open.achieved_per_sec << std::setw(11)
              << open.latency.PercentileUs(50) << std::setw(11)
              << open.latency.PercentileUs(99) << std::setw(11)
              << open.latency.PercentileUs(99.9) << std::setw(22)
              << open.checksum << "\n";
    report.AddRow()
        .Str("regime", "open_remote")
        .Num("load_fraction", fraction)
        .Num("offered_per_sec", open.offered_per_sec)
        .Num("achieved_per_sec", open.achieved_per_sec)
        .Int("completed", open.completed)
        .LatencyUs("query", open.latency)
        .Str("checksum", std::to_string(open.checksum));
    if (open.completed != static_cast<uint64_t>(open_reqs)) {
      std::cerr << "ERROR: open loop lost responses: " << open.completed
                << " of " << open_reqs << "\n";
      return 1;
    }
    // The fold is rate-independent (submission order, fixed rng stream), so
    // the two load points must agree bit-for-bit.
    if (!open_checksum_set) {
      open_checksum = open.checksum;
      open_checksum_set = true;
    } else if (open.checksum != open_checksum) {
      std::cerr << "ERROR: open-loop checksum varies with offered rate\n";
      return 1;
    }
  }
  std::cout << "\n";

  // Server-side storage counters over the wire (kServerStats): I/O and —
  // when the backing store is the LSM — memtable/level/compaction telemetry
  // alongside the latency numbers.
  {
    auto conn_or = Connection::Dial(host, port);
    if (!conn_or.ok()) {
      std::cerr << "ERROR: dial for stats: " << conn_or.status().ToString()
                << "\n";
      return 1;
    }
    auto stats_or = conn_or.value()->ServerStats();
    if (!stats_or.ok()) {
      std::cerr << "ERROR: server stats: " << stats_or.status().ToString()
                << "\n";
      return 1;
    }
    const net::WireServerStats& s = stats_or.value();
    std::cout << "server stats: disk_reads=" << s.disk_reads
              << " disk_writes=" << s.disk_writes
              << " cache_hits=" << s.cache_hits
              << " txn_commits=" << s.txn_commits
              << " db_size=" << s.db_size_bytes
              << " wal_bytes=" << s.wal_bytes << "\n";
    std::string level_files;
    for (uint64_t n : s.lsm_level_files) {
      if (!level_files.empty()) level_files += ",";
      level_files += std::to_string(n);
    }
    if (!s.lsm_level_files.empty()) {
      std::cout << "  lsm: memtable=" << s.lsm_memtable_bytes << "B levels=["
                << level_files << "] compact_read=" << s.lsm_compaction_bytes_read
                << "B compact_written=" << s.lsm_compaction_bytes_written
                << "B bloom=" << s.lsm_bloom_hits << "/" << s.lsm_bloom_checks
                << " throttles=" << s.lsm_write_throttles << "\n";
    }
    report.AddRow()
        .Str("regime", "server_stats")
        .Int("disk_reads", s.disk_reads)
        .Int("disk_writes", s.disk_writes)
        .Int("cache_hits", s.cache_hits)
        .Int("txn_commits", s.txn_commits)
        .Int("db_size_bytes", s.db_size_bytes)
        .Int("wal_bytes", s.wal_bytes)
        .Int("lsm_memtable_bytes", s.lsm_memtable_bytes)
        .Str("lsm_level_files", level_files)
        .Int("lsm_compaction_bytes_read", s.lsm_compaction_bytes_read)
        .Int("lsm_compaction_bytes_written", s.lsm_compaction_bytes_written)
        .Int("lsm_bloom_checks", s.lsm_bloom_checks)
        .Int("lsm_bloom_hits", s.lsm_bloom_hits)
        .Int("lsm_write_throttles", s.lsm_write_throttles);
  }
  std::cout << "\n";

  if (server != nullptr) {
    server->Shutdown();
    server.reset();
    db.reset();
  }
  if (!report.WriteTo(json_path)) {
    std::cerr << "ERROR: could not write " << json_path << "\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace labflow::bench

int main(int argc, char** argv) { return labflow::bench::Main(argc, argv); }
