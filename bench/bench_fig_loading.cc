// Experiment F1: loading-phase throughput.
//
// Runs the LabFlow-1 stream with the query mix disabled (pure workflow
// tracking: material creation + step recording + sets + evolution) and
// reports step-insertion throughput per server version as the database
// scales. This is the "building the event history" figure: it isolates the
// update path, where the storage managers differ in logging, locking and
// allocation cost.

#include <iomanip>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "labflow/driver.h"
#include "labflow/report.h"

namespace labflow::bench {
namespace {

int Main(int argc, char** argv) {
  int base_clones = static_cast<int>(FlagValue(argc, argv, "clones", 300));
  size_t pool = static_cast<size_t>(FlagValue(argc, argv, "pool", 2048));
  std::vector<double> intvls = {0.25, 0.5, 1.0, 2.0};

  std::cout << "LabFlow-1 loading-phase throughput (F1) — steps/sec, "
            << "queries disabled; base_clones=" << base_clones << "\n\n";
  std::cout << std::left << std::setw(10) << "Intvl";
  for (ServerVersion v : kAllServerVersions) {
    std::cout << std::right << std::setw(12) << ServerVersionName(v);
  }
  std::cout << "\n";

  for (double intvl : intvls) {
    WorkloadParams params;
    params.intvl = intvl;
    params.base_clones = base_clones;
    std::cout << std::left << std::setw(10) << (std::to_string(intvl) + "X");
    for (ServerVersion version : kAllServerVersions) {
      BenchDir dir;
      Driver::Options opts;
      opts.version = version;
      opts.db_path = dir.file("labflow.db");
      opts.pool_pages = pool;
      opts.run_queries = false;
      auto report = Driver::Run(params, opts);
      if (!report.ok()) {
        std::cerr << "failed: " << report.status().ToString() << "\n";
        return 1;
      }
      double steps_per_sec =
          report->update_elapsed_sec > 0
              ? static_cast<double>(report->steps) / report->update_elapsed_sec
              : 0;
      std::cout << std::right << std::setw(12) << std::fixed
                << std::setprecision(0) << steps_per_sec;
    }
    std::cout << "\n";
  }
  std::cout << "\n(series: step-recording throughput; the paper's loading "
               "curve shape —\n flat while the database fits in memory, "
               "degrading once it pages)\n";
  return 0;
}

}  // namespace
}  // namespace labflow::bench

int main(int argc, char** argv) { return labflow::bench::Main(argc, argv); }
