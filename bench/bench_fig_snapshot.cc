// F8 — snapshot analytics (extension experiment).
//
// Long-running whole-database scans concurrent with an append-dominated
// event stream: the BioWorkbench-style analytics shape that motivated MVCC
// snapshot reads. Writers commit fixed-size batches of event objects into
// per-writer segments (all-or-nothing transactions) while reader threads
// repeatedly scan the whole store.
//
// Two regimes, identical workload:
//   snapshot   — readers scan inside Begin(snapshot=true) transactions:
//                lock-free MVCC reads at a fixed commit timestamp. Gated:
//                zero reader lock-waits, zero reader deadlocks, zero reader
//                aborts, no torn batch in any scan, and per-reader scan
//                sizes monotonically nondecreasing (later snapshot ==
//                superset of committed batches).
//   locked_2pl — readers scan inside ordinary 2PL transactions: every page
//                read takes a shared lock held to commit. Reported for
//                contrast (shared-lock waits, reader aborts); not gated —
//                its contention profile is the problem the snapshot path
//                removes.
//
// A scan's consistency is checked arithmetically: every committed batch
// adds exactly `batch` objects, so any consistent view holds
// preload + k*batch objects. A count that is not on that lattice is a torn
// batch and fails the run (snapshot regime).

#include <atomic>
#include <iomanip>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/status_macros.h"
#include "ostore/ostore_manager.h"

namespace labflow::bench {
namespace {

using ostore::OstoreManager;
using ostore::OstoreOptions;
using storage::AllocHint;
using storage::ObjectId;

struct SnapshotOutcome {
  double writer_txn_per_sec = 0;
  double scans_per_sec = 0;
  uint64_t writer_commits = 0;
  uint64_t scans = 0;
  uint64_t scanned_objects = 0;
  uint64_t torn_scans = 0;       ///< scans whose count was off the batch lattice
  uint64_t reader_aborts = 0;    ///< scan attempts aborted (2PL regime only)
  uint64_t monotonic_violations = 0;
  uint64_t checksum = 0;         ///< order-independent fold of scan counts
  uint64_t reader_lock_waits = 0;
  uint64_t reader_deadlocks = 0;
  uint64_t deadlocks = 0;
  uint64_t snapshots_opened = 0;
  uint64_t mvcc_chains = 0;
};

Result<SnapshotOutcome> RunAnalytics(bool snapshot, int writers, int readers,
                                     int batches_per_writer, int batch,
                                     int scans_per_reader) {
  BenchDir dir;
  OstoreOptions opts;
  opts.base.path = dir.file("snap.db");
  opts.base.buffer_pool_pages = 4096;
  opts.lock_timeout_ms = 10000;
  LABFLOW_ASSIGN_OR_RETURN(std::unique_ptr<OstoreManager> mgr,
                           OstoreManager::Open(opts));

  // Preload a resident population so the first scans are not trivially
  // empty, then remember the baseline for the batch-lattice check.
  constexpr int kPreload = 64;
  for (int i = 0; i < kPreload; ++i) {
    LABFLOW_RETURN_IF_ERROR(
        mgr->Allocate(std::string(120, 'p'), AllocHint{}).status());
  }
  std::vector<uint16_t> segments;
  for (int t = 0; t < writers; ++t) {
    LABFLOW_ASSIGN_OR_RETURN(uint16_t seg,
                             mgr->CreateSegment("events" + std::to_string(t)));
    segments.push_back(seg);
  }
  // Measured baseline (not assumed): whatever the store holds before the
  // event stream starts is the lattice origin for the torn-batch check.
  uint64_t baseline = 0;
  LABFLOW_RETURN_IF_ERROR(mgr->ScanAll([&](ObjectId, std::string_view) {
    ++baseline;
    return Status::OK();
  }));

  std::atomic<uint64_t> writer_commits{0};
  std::atomic<uint64_t> scans_done{0};
  std::atomic<uint64_t> scanned_objects{0};
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> reader_aborts{0};
  std::atomic<uint64_t> monotonic_violations{0};
  std::atomic<uint64_t> checksum{0};
  std::atomic<int> failures{0};
  std::atomic<bool> writers_done{false};

  Stopwatch sw;
  std::vector<std::thread> threads;
  for (int t = 0; t < writers; ++t) {
    threads.emplace_back([&, t] {
      AllocHint hint;
      hint.segment = segments[t];
      storage::TxnRetryOptions retry;
      retry.max_retries = 100;
      retry.jitter_seed = static_cast<uint64_t>(t) + 1;
      for (int b = 0; b < batches_per_writer; ++b) {
        Status st = mgr->RunTransaction(
            [&](storage::Txn* txn) -> Status {
              for (int i = 0; i < batch; ++i) {
                LABFLOW_RETURN_IF_ERROR(
                    mgr->Allocate(txn, std::string(200, 'e'), hint).status());
              }
              return Status::OK();
            },
            retry);
        if (!st.ok()) {
          failures.fetch_add(1);
          return;
        }
        writer_commits.fetch_add(1);
      }
    });
  }
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      uint64_t local = 14695981039346656037ULL ^ static_cast<uint64_t>(r);
      uint64_t prev_count = 0;
      for (int s = 0; s < scans_per_reader;) {
        auto txn_or = mgr->Begin(snapshot);
        if (!txn_or.ok()) {
          failures.fetch_add(1);
          return;
        }
        storage::Txn* txn = txn_or.value();
        uint64_t count = 0;
        Status st = mgr->ScanAll(txn, [&](ObjectId, std::string_view data) {
          ++count;
          local = (local ^ data.size()) * 1099511628211ULL;
          return Status::OK();
        });
        if (!st.ok()) {
          // 2PL readers can lose a deadlock against the event stream; a
          // snapshot reader never can (any abort there fails the run).
          LABFLOW_IGNORE_STATUS(mgr->Abort(txn),
                                "rollback after a failed scan is best-effort");
          if (st.IsAborted() && !snapshot) {
            reader_aborts.fetch_add(1);
            continue;  // retry the scan
          }
          failures.fetch_add(1);
          return;
        }
        if (!mgr->Commit(txn).ok()) {
          failures.fetch_add(1);
          return;
        }
        if (count < baseline ||
            (count - baseline) % static_cast<uint64_t>(batch) != 0) {
          torn.fetch_add(1);
        }
        if (count < prev_count) monotonic_violations.fetch_add(1);
        prev_count = count;
        scanned_objects.fetch_add(count);
        local = (local ^ count) * 1099511628211ULL;
        ++s;
        scans_done.fetch_add(1);
        // Keep scanning for the whole event stream, then finish the quota.
        if (s == scans_per_reader && !writers_done.load()) --s;
      }
      checksum.fetch_xor(local);
    });
  }
  for (int t = 0; t < writers; ++t) threads[t].join();
  writers_done.store(true);
  for (size_t t = writers; t < threads.size(); ++t) threads[t].join();
  double elapsed = sw.ElapsedSeconds();
  if (failures.load() > 0) {
    return Status::Internal(std::to_string(failures.load()) +
                            " snapshot-analytics worker failure(s)");
  }

  SnapshotOutcome out;
  out.writer_commits = writer_commits.load();
  out.scans = scans_done.load();
  out.scanned_objects = scanned_objects.load();
  out.torn_scans = torn.load();
  out.reader_aborts = reader_aborts.load();
  out.monotonic_violations = monotonic_violations.load();
  out.checksum = checksum.load();
  out.writer_txn_per_sec = elapsed > 0 ? out.writer_commits / elapsed : 0;
  out.scans_per_sec = elapsed > 0 ? out.scans / elapsed : 0;
  storage::StorageStats stats = mgr->stats();
  out.reader_lock_waits = stats.reader_lock_waits;
  out.reader_deadlocks = stats.reader_deadlocks;
  out.deadlocks = stats.deadlocks;
  out.snapshots_opened = stats.snapshots_opened;
  out.mvcc_chains = stats.mvcc_chains;
  LABFLOW_RETURN_IF_ERROR(mgr->Close());
  return out;
}

int Main(int argc, char** argv) {
  int batches = static_cast<int>(FlagValue(argc, argv, "batches", 200));
  int batch = static_cast<int>(FlagValue(argc, argv, "batch", 8));
  int scans = static_cast<int>(FlagValue(argc, argv, "scans", 40));
  std::string json_path = FlagString(argc, argv, "json");
  JsonReport report("fig_snapshot");
  std::cout << "Snapshot analytics: long scans vs the event stream — "
            << batches << " batches/writer x " << batch << " objects, "
            << scans << " scans/reader\n\n";
  std::cout << std::left << std::setw(12) << "readers" << std::right
            << std::setw(10) << "regime" << std::setw(13) << "batch/sec"
            << std::setw(11) << "scans/sec" << std::setw(9) << "torn"
            << std::setw(9) << "aborts" << std::setw(12) << "rd_waits"
            << std::setw(9) << "rd_dlk"
            << "\n";
  for (int readers : {1, 2, 4}) {
    for (bool snapshot : {true, false}) {
      auto out_or = RunAnalytics(snapshot, /*writers=*/2, readers, batches,
                                 batch, scans);
      if (!out_or.ok()) {
        std::cerr << "ERROR: " << out_or.status().ToString() << "\n";
        return 1;
      }
      SnapshotOutcome out = out_or.value();
      const char* regime = snapshot ? "snapshot" : "locked_2pl";
      std::cout << std::left << std::setw(12) << readers << std::right
                << std::setw(10) << regime << std::setw(13) << std::fixed
                << std::setprecision(0) << out.writer_txn_per_sec
                << std::setw(11) << out.scans_per_sec << std::setw(9)
                << out.torn_scans << std::setw(9) << out.reader_aborts
                << std::setw(12) << out.reader_lock_waits << std::setw(9)
                << out.reader_deadlocks << "\n";
      report.AddRow()
          .Str("regime", regime)
          .Int("readers", readers)
          .Int("writers", 2)
          .Num("batch_per_sec", out.writer_txn_per_sec)
          .Num("scans_per_sec", out.scans_per_sec)
          .Int("writer_commits", out.writer_commits)
          .Int("scans", out.scans)
          .Int("scanned_objects", out.scanned_objects)
          .Int("torn_scans", out.torn_scans)
          .Int("reader_aborts", out.reader_aborts)
          .Int("reader_lock_waits", out.reader_lock_waits)
          .Int("reader_deadlocks", out.reader_deadlocks)
          .Int("deadlocks", out.deadlocks)
          .Int("snapshots_opened", out.snapshots_opened)
          .Int("mvcc_chains", out.mvcc_chains)
          .Str("checksum", std::to_string(out.checksum));
      if (out.writer_commits !=
          static_cast<uint64_t>(2) * static_cast<uint64_t>(batches)) {
        std::cerr << "ERROR: lost writer batches\n";
        return 1;
      }
      if (snapshot) {
        // The tentpole gates: snapshot readers take no locks, never
        // deadlock, never abort, and every scan is a consistent prefix.
        if (out.reader_lock_waits != 0 || out.reader_deadlocks != 0) {
          std::cerr << "ERROR: snapshot regime saw " << out.reader_lock_waits
                    << " reader lock-wait(s), " << out.reader_deadlocks
                    << " reader deadlock(s); both must be zero\n";
          return 1;
        }
        if (out.torn_scans != 0 || out.reader_aborts != 0 ||
            out.monotonic_violations != 0) {
          std::cerr << "ERROR: snapshot scans not consistent (torn="
                    << out.torn_scans << " aborts=" << out.reader_aborts
                    << " monotonic_violations=" << out.monotonic_violations
                    << ")\n";
          return 1;
        }
      }
    }
  }
  std::cout << "\n(locked_2pl rows show the shared-lock traffic the snapshot "
               "path removes.)\n";
  if (!report.WriteTo(json_path)) {
    std::cerr << "ERROR: could not write " << json_path << "\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace labflow::bench

int main(int argc, char** argv) { return labflow::bench::Main(argc, argv); }
