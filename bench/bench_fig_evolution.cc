// Experiment F4 (ablation D3): dynamic schema evolution.
//
// LabBase evolves a step class by adding a version identified by its
// attribute set; existing instances are never migrated (paper Section 5.1,
// following Skarra & Zdonik). This bench measures:
//
//   (a) the cost of an evolution event itself as versions accumulate,
//   (b) step-recording cost at high version counts (does the version
//       machinery tax the hot path?),
//   (c) that old instances still read back under their original version.
//
// Expected shape: both (a) and (b) stay flat — evolution is O(catalog), not
// O(data). That flatness *is* the paper's design point: a workflow change
// must not force a data reorganization.

#include <iomanip>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "labbase/labbase.h"
#include "labflow/server_version.h"

namespace labflow::bench {
namespace {

int Main(int argc, char** argv) {
  int max_versions = static_cast<int>(FlagValue(argc, argv, "versions", 256));
  const int kStepsPerRound = 200;

  BenchDir dir;
  ServerOptions server_opts;
  server_opts.path = dir.file("labflow.db");
  server_opts.pool_pages = 2048;
  auto mgr = CreateServer(ServerVersion::kOstore, server_opts);
  if (!mgr.ok()) {
    std::cerr << mgr.status().ToString() << "\n";
    return 1;
  }
  auto db_or = labbase::LabBase::Open(mgr->get(), labbase::LabBaseOptions{});
  if (!db_or.ok()) {
    std::cerr << db_or.status().ToString() << "\n";
    return 1;
  }
  std::unique_ptr<labbase::LabBase::Session> session =
      (*db_or)->OpenSession();
  labbase::LabBase::Session* db = session.get();

  auto clone = db->DefineMaterialClass("clone");
  auto state = db->DefineState("active");
  auto step = db->DefineStepClass("measure", {"attr_base"});
  if (!clone.ok() || !state.ok() || !step.ok()) {
    std::cerr << "schema setup failed\n";
    return 1;
  }
  labbase::AttrId base_attr = db->schema().AttributeByName("attr_base").value();

  std::cout << "Schema evolution cost (F4, ablation D3) — OStore\n\n"
            << std::left << std::setw(10) << "versions" << std::right
            << std::setw(18) << "evolve us/event" << std::setw(18)
            << "record us/step" << std::setw(16) << "db bytes" << "\n";

  std::vector<std::string> attrs = {"attr_base"};
  Oid first_step;
  int64_t t = 1;
  for (int round = 1; round <= max_versions; round *= 2) {
    // Evolve until the class has `round` versions.
    Stopwatch evolve_sw;
    int evolved = 0;
    while (static_cast<int>(db->schema().VersionCount(step.value()).value()) <
           round) {
      attrs.push_back("attr_v" + std::to_string(attrs.size()));
      if (!db->DefineStepClass("measure", attrs).ok()) {
        std::cerr << "evolution failed\n";
        return 1;
      }
      ++evolved;
    }
    double evolve_us =
        evolved > 0 ? evolve_sw.ElapsedSeconds() * 1e6 / evolved : 0;

    // Record steps bound to the newest version, against a fresh material
    // per round so material-record growth does not confound the numbers.
    auto material = db->CreateMaterial(
        clone.value(), "m-" + std::to_string(round), state.value(),
        Timestamp(t));
    if (!material.ok()) {
      std::cerr << material.status().ToString() << "\n";
      return 1;
    }
    Stopwatch record_sw;
    for (int i = 0; i < kStepsPerRound; ++i) {
      labbase::StepEffect effect;
      effect.material = material.value();
      effect.tags = {{base_attr, Value::Int(i)}};
      auto s = db->RecordStep(step.value(), Timestamp(t++), {effect});
      if (!s.ok()) {
        std::cerr << s.status().ToString() << "\n";
        return 1;
      }
      if (!first_step.raw) first_step = s.value();
    }
    double record_us = record_sw.ElapsedSeconds() * 1e6 / kStepsPerRound;

    std::cout << std::left << std::setw(10) << round << std::right
              << std::setw(18) << std::fixed << std::setprecision(2)
              << evolve_us << std::setw(18) << record_us << std::setw(16)
              << (*mgr)->stats().db_size_bytes << "\n";
  }

  // (c) old instances remain bound to version 0 — no migration happened.
  auto info = db->GetStep(first_step);
  if (!info.ok() || info->version != 0) {
    std::cerr << "ERROR: first instance no longer on version 0\n";
    return 1;
  }
  std::cout << "\nfirst recorded instance still reports version 0 "
               "(no data migration): OK\n";
  db_or->reset();
  if (Status st = (*mgr)->Close(); !st.ok()) {
    std::cerr << "close failed: " << st.ToString() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace labflow::bench

int main(int argc, char** argv) { return labflow::bench::Main(argc, argv); }
