// Experiment M2: deductive-query-language microbenchmarks.
//
// Parsing, unification, pure-rule resolution, and LabBase-backed queries —
// the costs of the paper's Section 6 query interface layered above the
// wrapper. (The main table drives LabBase through its C++ API, as the
// production LabBase server did internally; this bench quantifies the
// declarative layer's overhead.)

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "labbase/labbase.h"
#include "mm/mm_manager.h"
#include "query/parser.h"
#include "query/solver.h"
#include "query/unify.h"

namespace labflow::query {
namespace {

/// Benchmark setup is not a measured path: a failure here would silently
/// turn every number below into garbage, so die loudly instead.
void RequireOk(const labflow::Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "bench setup failed: %s\n", st.ToString().c_str());
    std::abort();
  }
}

void RequireProved(const labflow::Result<bool>& r) {
  if (!r.ok() || !r.value()) {
    std::fprintf(stderr, "bench setup goal failed: %s\n",
                 r.ok() ? "goal not proved" : r.status().ToString().c_str());
    std::abort();
  }
}


void BM_ParseQuery(benchmark::State& state) {
  const std::string src =
      "state(M, waiting_for_sequencing), most_recent(M, read_quality, Q), "
      "Q >= 0.5, \\+ in_set(\"redo\", M)";
  for (auto _ : state) {
    benchmark::DoNotOptimize(Parser::ParseQuery(src));
  }
}
BENCHMARK(BM_ParseQuery);

void BM_ParseProgram(benchmark::State& state) {
  const std::string src =
      "backlog(S, N) <- count(state(M, S), N).\n"
      "ready(C) <- clone(C), state(C, cl_tn_done).\n"
      "good_read(M) <- most_recent(M, read_quality, Q), Q >= 0.5.\n";
  for (auto _ : state) {
    benchmark::DoNotOptimize(Parser::ParseProgram(src));
  }
}
BENCHMARK(BM_ParseProgram);

void BM_UnifyDeepTerm(benchmark::State& state) {
  Term lhs = Parser::ParseTerm("f(X, g(Y, h(Z, [1, 2, 3])), Y, W)").value();
  Term rhs =
      Parser::ParseTerm("f(a, g(b, h(c, [1, 2, 3])), b, [x, y])").value();
  for (auto _ : state) {
    Bindings b;
    benchmark::DoNotOptimize(Unify(lhs, rhs, &b));
  }
}
BENCHMARK(BM_UnifyDeepTerm);

void BM_SolveRecursiveRules(benchmark::State& state) {
  Solver solver(nullptr);
  std::string facts;
  for (int i = 0; i < 50; ++i) {
    facts += "next(n" + std::to_string(i) + ", n" + std::to_string(i + 1) +
             ").\n";
  }
  facts += "reach(X, Y) <- next(X, Y).\n";
  facts += "reach(X, Z) <- next(X, Y), reach(Y, Z).\n";
  RequireOk(solver.LoadProgram(facts));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.Prove("reach(n0, n50)"));
  }
}
BENCHMARK(BM_SolveRecursiveRules);

void BM_SetofAggregation(benchmark::State& state) {
  Solver solver(nullptr);
  std::string facts;
  for (int i = 0; i < 200; ++i) {
    facts += "item(i" + std::to_string(i % 100) + ").\n";
  }
  RequireOk(solver.LoadProgram(facts));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.QueryAll("setof(X, item(X), L)"));
  }
}
BENCHMARK(BM_SetofAggregation);

/// LabBase-backed fixture: a small populated lab.
class DbFixture {
 public:
  DbFixture() {
    mgr_ = std::make_unique<mm::MmManager>("mm");
    base_ = labbase::LabBase::Open(mgr_.get(), labbase::LabBaseOptions{})
              .value();
    db_ = base_->OpenSession();
    solver_ = std::make_unique<Solver>(db_.get());
    RequireProved(solver_->Prove(
        "define_material_class(tclone), define_state(waiting), "
        "define_state(done), "
        "define_step_class(measure, [quality])"));
    for (int i = 0; i < 500; ++i) {
      std::string name = "tc-" + std::to_string(i);
      RequireProved(solver_->Prove("create_material(tclone, \"" + name +
                           "\", waiting, M), record_step(measure, @" +
                           std::to_string(i + 1) + ", [effect(M, "
                           "[tag(quality, " +
                           std::to_string((i % 100) / 100.0) + ")], " +
                           (i % 2 == 0 ? "done" : "same") + ")])"));
    }
  }

  Solver* solver() { return solver_.get(); }

 private:
  std::unique_ptr<mm::MmManager> mgr_;
  std::unique_ptr<labbase::LabBase> base_;
  std::unique_ptr<labbase::LabBase::Session> db_;
  std::unique_ptr<Solver> solver_;
};

DbFixture& Fixture() {
  static DbFixture* fixture = new DbFixture();
  return *fixture;
}

void BM_DbWorkQueueQuery(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Fixture().solver()->QueryAll("state(M, done)", 50));
  }
}
BENCHMARK(BM_DbWorkQueueQuery);

void BM_DbMostRecentFilter(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Fixture().solver()->QueryAll(
        "state(M, waiting), most_recent(M, quality, Q), Q >= 0.9", 20));
  }
}
BENCHMARK(BM_DbMostRecentFilter);

void BM_DbCountAggregate(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Fixture().solver()->QueryAll("count(state(M, done), N)"));
  }
}
BENCHMARK(BM_DbCountAggregate);

}  // namespace
}  // namespace labflow::query

BENCHMARK_MAIN();
