// Experiment F3: locality of reference — the paper's headline finding.
//
// Sweeps the buffer-pool size (our stand-in for physical memory) and
// reports simulated major faults and elapsed time for four configurations:
//
//   OStore       — hot/cold segments (LabBase's production configuration)
//   OStore-1seg  — same manager, LabBase told not to separate segments
//   Texas+TC     — client-implemented object clustering
//   Texas        — allocation-order placement (no control at all)
//
// The paper: the tests "highlighted the critical importance of being able
// to control locality of reference to persistent data". Expected shape:
// with ample memory all four are close; as memory shrinks the versions
// with placement control (segments, client clustering) fault least, and
// plain Texas degrades worst.

#include <iomanip>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench/bench_util.h"
#include "labflow/driver.h"
#include "labflow/report.h"

namespace labflow::bench {
namespace {

struct Config {
  const char* label;
  ServerVersion version;
  bool separate_segments;
};

int Main(int argc, char** argv) {
  WorkloadParams params;
  params.intvl = FlagValue(argc, argv, "intvl", 1.0);
  params.base_clones = static_cast<int>(FlagValue(argc, argv, "clones", 400));
  // Simulated per-fault disk latency for the elapsed series. On the paper's
  // 1996 testbed a major fault cost several milliseconds of disk time; on a
  // modern machine the file is in the OS page cache, so we re-inject the
  // latency to reproduce the elapsed-time divergence (majflt itself is
  // latency-independent).
  int64_t fault_us =
      static_cast<int64_t>(FlagValue(argc, argv, "fault_us", 200));

  const Config configs[] = {
      {"OStore", ServerVersion::kOstore, true},
      {"OStore-1seg", ServerVersion::kOstore, false},
      {"Texas+TC", ServerVersion::kTexasTC, true},
      {"Texas", ServerVersion::kTexas, true},
  };
  std::vector<size_t> pools = {256, 512, 1024, 2048, 4096};

  std::cout << "LabFlow-1 locality sweep (F3) — " << params.intvl
            << "X, simulated majflt (top) and elapsed sec (bottom) vs "
            << "buffer-pool pages\n\n";

  std::vector<std::vector<RunReport>> results(std::size(configs));
  for (size_t c = 0; c < std::size(configs); ++c) {
    for (size_t pool : pools) {
      BenchDir dir;
      Driver::Options opts;
      opts.version = configs[c].version;
      opts.db_path = dir.file("labflow.db");
      opts.pool_pages = pool;
      opts.fault_delay_us = fault_us;
      opts.labbase.separate_segments = configs[c].separate_segments;
      auto report = Driver::Run(params, opts);
      if (!report.ok()) {
        std::cerr << configs[c].label << " pool=" << pool
                  << " failed: " << report.status().ToString() << "\n";
        return 1;
      }
      results[c].push_back(std::move(report).value());
    }
    std::cerr << "done: " << configs[c].label << "\n";
  }

  auto print_series = [&](const char* what, auto getter) {
    std::cout << what << ":\n";
    std::cout << std::left << std::setw(14) << "pool pages";
    for (size_t pool : pools) std::cout << std::right << std::setw(12) << pool;
    std::cout << "\n";
    for (size_t c = 0; c < std::size(configs); ++c) {
      std::cout << std::left << std::setw(14) << configs[c].label;
      for (size_t p = 0; p < pools.size(); ++p) {
        std::cout << std::right << std::setw(12) << getter(results[c][p]);
      }
      std::cout << "\n";
    }
    std::cout << "\n";
  };

  print_series("majflt (simulated: demand page reads)",
               [](const RunReport& r) { return WithCommas(r.majflt); });
  std::cout << "elapsed with " << fault_us
            << "us simulated disk latency per fault —\n";
  print_series("elapsed sec", [](const RunReport& r) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(2) << r.elapsed_sec;
    return os.str();
  });
  std::cout << "db size: ";
  for (size_t c = 0; c < std::size(configs); ++c) {
    std::cout << configs[c].label << "="
              << WithCommas(results[c][0].db_size_bytes) << "  ";
  }
  std::cout << "\n";
  return 0;
}

}  // namespace
}  // namespace labflow::bench

int main(int argc, char** argv) { return labflow::bench::Main(argc, argv); }
