// Experiment M1: storage-manager microbenchmarks (google-benchmark).
//
// Isolated object operations per manager: allocate, read (hot and cold),
// update in place, update with growth, transaction commit (OStore), and
// checkpoint. These are the primitive costs behind the main table.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/status_macros.h"
#include "common/rng.h"
#include "labflow/server_version.h"

namespace labflow::bench {
namespace {

using storage::AllocHint;
using storage::ObjectId;
using storage::StorageManager;

std::unique_ptr<StorageManager> MakeManager(ServerVersion v,
                                            const BenchDir& dir,
                                            size_t pool_pages = 4096) {
  ServerOptions opts;
  opts.path = dir.file("micro.db");
  opts.pool_pages = pool_pages;
  auto r = CreateServer(v, opts);
  return r.ok() ? std::move(r).value() : nullptr;
}

ServerVersion VersionArg(const benchmark::State& state) {
  return static_cast<ServerVersion>(state.range(0));
}

void SetVersionLabel(benchmark::State& state) {
  state.SetLabel(std::string(ServerVersionName(VersionArg(state))));
}

void BM_Allocate256(benchmark::State& state) {
  BenchDir dir;
  auto mgr = MakeManager(VersionArg(state), dir);
  std::string data(256, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr->Allocate(data, AllocHint{}));
  }
  SetVersionLabel(state);
  LABFLOW_IGNORE_STATUS(mgr->Close(),
                        "bench teardown; op failures already surfaced in "
                        "the timed loop");
}

void BM_ReadHot(benchmark::State& state) {
  BenchDir dir;
  auto mgr = MakeManager(VersionArg(state), dir);
  Rng rng(1);
  std::vector<ObjectId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(mgr->Allocate(std::string(256, 'r'), AllocHint{}).value());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr->Read(ids[rng.NextBelow(ids.size())]));
  }
  SetVersionLabel(state);
  LABFLOW_IGNORE_STATUS(mgr->Close(),
                        "bench teardown; op failures already surfaced in "
                        "the timed loop");
}

void BM_ReadColdSmallPool(benchmark::State& state) {
  // Pool far smaller than the data: every random read likely faults.
  BenchDir dir;
  auto mgr = MakeManager(VersionArg(state), dir, /*pool_pages=*/8);
  Rng rng(2);
  std::vector<ObjectId> ids;
  for (int i = 0; i < 4000; ++i) {
    ids.push_back(mgr->Allocate(std::string(512, 'c'), AllocHint{}).value());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr->Read(ids[rng.NextBelow(ids.size())]));
  }
  SetVersionLabel(state);
  LABFLOW_IGNORE_STATUS(mgr->Close(),
                        "bench teardown; op failures already surfaced in "
                        "the timed loop");
}

void BM_UpdateSameSize(benchmark::State& state) {
  BenchDir dir;
  auto mgr = MakeManager(VersionArg(state), dir);
  Rng rng(3);
  std::vector<ObjectId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(mgr->Allocate(std::string(256, 'u'), AllocHint{}).value());
  }
  std::string data(256, 'v');
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mgr->Update(ids[rng.NextBelow(ids.size())], data));
  }
  SetVersionLabel(state);
  LABFLOW_IGNORE_STATUS(mgr->Close(),
                        "bench teardown; op failures already surfaced in "
                        "the timed loop");
}

void BM_UpdateGrowing(benchmark::State& state) {
  BenchDir dir;
  auto mgr = MakeManager(VersionArg(state), dir);
  ObjectId id = mgr->Allocate("seed", AllocHint{}).value();
  size_t size = 16;
  for (auto _ : state) {
    size = size >= 4096 ? 16 : size + 64;
    benchmark::DoNotOptimize(mgr->Update(id, std::string(size, 'g')));
  }
  SetVersionLabel(state);
  LABFLOW_IGNORE_STATUS(mgr->Close(),
                        "bench teardown; op failures already surfaced in "
                        "the timed loop");
}

void BM_TxnCommitThreeWrites(benchmark::State& state) {
  BenchDir dir;
  auto mgr = MakeManager(VersionArg(state), dir);
  std::string data(200, 't');
  for (auto _ : state) {
    auto txn = mgr->Begin();
    if (!txn.ok()) continue;
    for (int i = 0; i < 3; ++i) {
      benchmark::DoNotOptimize(mgr->Allocate(txn.value(), data, AllocHint{}));
    }
    LABFLOW_IGNORE_STATUS(mgr->Commit(txn.value()),
                          "commit cost is what the loop times; a failed "
                          "iteration simply contributes nothing");
  }
  SetVersionLabel(state);
  LABFLOW_IGNORE_STATUS(mgr->Close(),
                        "bench teardown; op failures already surfaced in "
                        "the timed loop");
}

void BM_Checkpoint(benchmark::State& state) {
  BenchDir dir;
  auto mgr = MakeManager(VersionArg(state), dir);
  std::string data(200, 'k');
  for (auto _ : state) {
    for (int i = 0; i < 50; ++i) {
      benchmark::DoNotOptimize(mgr->Allocate(data, AllocHint{}));
    }
    Status st = mgr->Checkpoint();
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  SetVersionLabel(state);
  LABFLOW_IGNORE_STATUS(mgr->Close(),
                        "bench teardown; op failures already surfaced in "
                        "the timed loop");
}

constexpr int64_t kOstore = static_cast<int64_t>(ServerVersion::kOstore);
constexpr int64_t kTexas = static_cast<int64_t>(ServerVersion::kTexas);
constexpr int64_t kTexasTC = static_cast<int64_t>(ServerVersion::kTexasTC);
constexpr int64_t kMm = static_cast<int64_t>(ServerVersion::kTexasMm);

#define LABFLOW_BENCH_ALL(fn) \
  BENCHMARK(fn)->Arg(kOstore)->Arg(kTexasTC)->Arg(kTexas)->Arg(kMm)

LABFLOW_BENCH_ALL(BM_Allocate256);
LABFLOW_BENCH_ALL(BM_ReadHot);
LABFLOW_BENCH_ALL(BM_UpdateSameSize);
LABFLOW_BENCH_ALL(BM_UpdateGrowing);
LABFLOW_BENCH_ALL(BM_TxnCommitThreeWrites);

BENCHMARK(BM_ReadColdSmallPool)->Arg(kOstore)->Arg(kTexasTC)->Arg(kTexas);
BENCHMARK(BM_Checkpoint)->Arg(kOstore)->Arg(kTexas);

}  // namespace
}  // namespace labflow::bench

BENCHMARK_MAIN();
