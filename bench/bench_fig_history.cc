// Experiment F5 (ablation D1): the most-recent-value access structure.
//
// LabBase embeds, per material and attribute, a cached most-recent value
// plus a history list ("structures for rapid access into history lists",
// paper Section 5). This bench measures most-recent lookup latency as the
// attribute's history grows, with the access structure ON (one material
// read) vs OFF (scan of the material's whole involves list).
//
// Expected shape: indexed lookups stay flat; scan lookups grow linearly
// with history length — the access structure is what makes derived
// material attributes affordable at all.

#include <iomanip>
#include <iostream>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "labbase/labbase.h"
#include "labflow/server_version.h"
#include "common/status_macros.h"

namespace labflow::bench {
namespace {

/// Builds one material with `history_len` sequencing steps; returns mean
/// MostRecent latency in microseconds.
Result<double> Measure(bool use_index, int history_len, int lookups) {
  BenchDir dir;
  ServerOptions server_opts;
  server_opts.path = dir.file("labflow.db");
  server_opts.pool_pages = 4096;
  LABFLOW_ASSIGN_OR_RETURN(std::unique_ptr<storage::StorageManager> mgr,
                           CreateServer(ServerVersion::kTexas, server_opts));
  labbase::LabBaseOptions opts;
  opts.use_most_recent_index = use_index;
  LABFLOW_ASSIGN_OR_RETURN(std::unique_ptr<labbase::LabBase> base,
                           labbase::LabBase::Open(mgr.get(), opts));
  std::unique_ptr<labbase::LabBase::Session> db = base->OpenSession();
  LABFLOW_ASSIGN_OR_RETURN(labbase::ClassId clone,
                           db->DefineMaterialClass("clone"));
  LABFLOW_ASSIGN_OR_RETURN(labbase::StateId state, db->DefineState("active"));
  LABFLOW_ASSIGN_OR_RETURN(labbase::ClassId step,
                           db->DefineStepClass("measure", {"x"}));
  labbase::AttrId x = db->schema().AttributeByName("x").value();
  LABFLOW_ASSIGN_OR_RETURN(Oid m,
                           db->CreateMaterial(clone, "m", state, Timestamp(0)));
  for (int i = 0; i < history_len; ++i) {
    labbase::StepEffect effect;
    effect.material = m;
    effect.tags = {{x, Value::Int(i)}};
    LABFLOW_RETURN_IF_ERROR(
        db->RecordStep(step, Timestamp(i + 1), {effect}).status());
  }
  Stopwatch sw;
  for (int i = 0; i < lookups; ++i) {
    LABFLOW_ASSIGN_OR_RETURN(Value v, db->MostRecent(m, x));
    if (v.int_value() != history_len - 1) {
      return Status::Internal("wrong most-recent answer");
    }
  }
  double us = sw.ElapsedSeconds() * 1e6 / lookups;
  db.reset();
  base.reset();
  LABFLOW_RETURN_IF_ERROR(mgr->Close());
  return us;
}

int Main(int argc, char** argv) {
  int lookups = static_cast<int>(FlagValue(argc, argv, "lookups", 2000));
  std::cout << "Most-recent access structure (F5, ablation D1) — "
            << "mean us/lookup vs history length (Texas)\n\n"
            << std::left << std::setw(16) << "history length" << std::right
            << std::setw(16) << "indexed" << std::setw(16) << "scan"
            << std::setw(12) << "ratio" << "\n";
  for (int len : {1, 4, 16, 64, 256, 1024}) {
    auto indexed = Measure(true, len, lookups);
    auto scan = Measure(false, len, lookups);
    if (!indexed.ok() || !scan.ok()) {
      std::cerr << indexed.status().ToString() << " / "
                << scan.status().ToString() << "\n";
      return 1;
    }
    std::cout << std::left << std::setw(16) << len << std::right
              << std::setw(16) << std::fixed << std::setprecision(2)
              << indexed.value() << std::setw(16) << scan.value()
              << std::setw(12) << std::setprecision(1)
              << scan.value() / indexed.value() << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace labflow::bench

int main(int argc, char** argv) { return labflow::bench::Main(argc, argv); }
