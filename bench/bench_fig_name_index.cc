// Ablation D6: persistent vs rebuilt-by-scan name index.
//
// LabBase needs a material-name index. Two designs, both implemented:
//   in-memory — a map rebuilt by scanning the store at open (default; the
//               access-structure style the paper's measurements ran with)
//   persistent — a HashDir stored as objects (the production-LabBase style:
//               "special access structures" in persistent C++)
//
// Measured per material count: database open time (the scan is what the
// persistent index eliminates) and name-lookup latency (the storage read is
// what it costs).

#include <iomanip>
#include <iostream>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/rng.h"
#include "labbase/labbase.h"
#include "labflow/server_version.h"
#include "common/status_macros.h"

namespace labflow::bench {
namespace {

struct Row {
  double open_ms = 0;
  double lookup_us = 0;
};

Result<Row> Measure(bool persistent, int materials, int lookups) {
  BenchDir dir;
  labbase::LabBaseOptions lab_opts;
  lab_opts.persistent_name_index = persistent;
  std::vector<std::string> names;
  {
    ServerOptions server_opts;
    server_opts.path = dir.file("db");
    server_opts.pool_pages = 8192;
    LABFLOW_ASSIGN_OR_RETURN(std::unique_ptr<storage::StorageManager> mgr,
                             CreateServer(ServerVersion::kTexas, server_opts));
    LABFLOW_ASSIGN_OR_RETURN(std::unique_ptr<labbase::LabBase> base,
                             labbase::LabBase::Open(mgr.get(), lab_opts));
    std::unique_ptr<labbase::LabBase::Session> db = base->OpenSession();
    LABFLOW_ASSIGN_OR_RETURN(labbase::ClassId clone,
                             db->DefineMaterialClass("clone"));
    LABFLOW_ASSIGN_OR_RETURN(labbase::StateId state, db->DefineState("s"));
    for (int i = 0; i < materials; ++i) {
      std::string name = "cl-" + std::to_string(i);
      LABFLOW_RETURN_IF_ERROR(
          db->CreateMaterial(clone, name, state, Timestamp(i)).status());
      names.push_back(std::move(name));
    }
    db.reset();
    base.reset();
    LABFLOW_RETURN_IF_ERROR(mgr->Close());
  }

  ServerOptions server_opts;
  server_opts.path = dir.file("db");
  server_opts.pool_pages = 8192;
  server_opts.truncate = false;
  Stopwatch open_sw;
  LABFLOW_ASSIGN_OR_RETURN(std::unique_ptr<storage::StorageManager> mgr,
                           CreateServer(ServerVersion::kTexas, server_opts));
  LABFLOW_ASSIGN_OR_RETURN(std::unique_ptr<labbase::LabBase> base,
                           labbase::LabBase::Open(mgr.get(), lab_opts));
  std::unique_ptr<labbase::LabBase::Session> db = base->OpenSession();
  Row row;
  row.open_ms = open_sw.ElapsedSeconds() * 1e3;

  Rng rng(5);
  Stopwatch lookup_sw;
  for (int i = 0; i < lookups; ++i) {
    LABFLOW_RETURN_IF_ERROR(
        db->FindMaterialByName(names[rng.NextBelow(names.size())]).status());
  }
  row.lookup_us = lookup_sw.ElapsedSeconds() * 1e6 / lookups;
  db.reset();
  LABFLOW_RETURN_IF_ERROR(mgr->Close());
  return row;
}

int Main(int argc, char** argv) {
  int lookups = static_cast<int>(FlagValue(argc, argv, "lookups", 20000));
  std::cout << "Name-index ablation (D6) — open time and lookup latency, "
            << "Texas manager\n\n"
            << std::left << std::setw(12) << "materials" << std::right
            << std::setw(16) << "open ms (mem)" << std::setw(16)
            << "open ms (pers)" << std::setw(16) << "lookup us (mem)"
            << std::setw(17) << "lookup us (pers)" << "\n";
  for (int n : {1000, 5000, 20000, 50000}) {
    auto mem = Measure(false, n, lookups);
    auto pers = Measure(true, n, lookups);
    if (!mem.ok() || !pers.ok()) {
      std::cerr << mem.status().ToString() << " / "
                << pers.status().ToString() << "\n";
      return 1;
    }
    std::cout << std::left << std::setw(12) << n << std::right
              << std::setw(16) << std::fixed << std::setprecision(2)
              << mem->open_ms << std::setw(16) << pers->open_ms
              << std::setw(16) << mem->lookup_us << std::setw(17)
              << pers->lookup_us << "\n";
  }
  std::cout << "\n(the scan-rebuilt index pays at open, the persistent one "
               "pays per lookup —\n the trade the production LabBase made "
               "by keeping its structures persistent)\n";
  return 0;
}

}  // namespace
}  // namespace labflow::bench

int main(int argc, char** argv) { return labflow::bench::Main(argc, argv); }
