// Extension experiment: concurrent clients on the OStore manager.
//
// The paper contrasts the two storage managers' architectures:
// "ObjectStore offers concurrent access with lock based concurrency control
// implemented in a page server...; Texas does not support concurrent
// access". The main benchmark is single-client (as the paper's was); this
// bench exercises the part of the OStore design the main table cannot —
// page-level strict 2PL with deadlock resolution — by running N client
// threads of small update transactions against one database.
//
// Reported: committed transactions/sec, abort (deadlock-timeout) rate, and
// lock waits, for 1..8 threads, in two contention regimes:
//   disjoint — each client works in its own segment (no page sharing)
//   shared   — all clients update a small common set of objects.

#include <atomic>
#include <iomanip>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/rng.h"
#include "ostore/ostore_manager.h"

namespace labflow::bench {
namespace {

using ostore::OstoreManager;
using ostore::OstoreOptions;
using storage::AllocHint;
using storage::ObjectId;

struct Outcome {
  double txn_per_sec = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t lock_waits = 0;
};

Outcome RunRegime(bool shared, int threads, int txns_per_thread) {
  BenchDir dir;
  OstoreOptions opts;
  opts.base.path = dir.file("conc.db");
  opts.base.buffer_pool_pages = 4096;
  opts.lock_timeout_ms = 20;
  auto mgr_or = OstoreManager::Open(opts);
  if (!mgr_or.ok()) return Outcome{};
  std::unique_ptr<OstoreManager> mgr = std::move(mgr_or).value();

  // Shared regime: a handful of hot objects everyone updates.
  std::vector<ObjectId> hot;
  if (shared) {
    for (int i = 0; i < 4; ++i) {
      hot.push_back(
          mgr->Allocate(std::string(128, 'h'), AllocHint{}).value());
    }
  }
  // Disjoint regime: one segment per client.
  std::vector<uint16_t> segments;
  for (int t = 0; t < threads; ++t) {
    segments.push_back(
        mgr->CreateSegment("client" + std::to_string(t)).value());
  }

  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};
  Stopwatch sw;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      AllocHint hint;
      hint.segment = segments[t];
      for (int i = 0; i < txns_per_thread; ++i) {
        if (!mgr->Begin().ok()) return;
        Status st = Status::OK();
        if (shared) {
          // Touch two hot objects in random order: deadlock-prone.
          size_t a = rng.NextBelow(hot.size());
          size_t b = rng.NextBelow(hot.size());
          st = mgr->Update(hot[a], std::string(128, 'x'));
          if (st.ok() && b != a) {
            st = mgr->Update(hot[b], std::string(128, 'y'));
          }
        } else {
          st = mgr->Allocate(std::string(200, 'd'), hint).status();
          if (st.ok()) {
            st = mgr->Allocate(std::string(200, 'e'), hint).status();
          }
        }
        if (st.ok() && mgr->Commit().ok()) {
          committed.fetch_add(1);
        } else {
          (void)mgr->Abort();
          aborted.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  double elapsed = sw.ElapsedSeconds();

  Outcome out;
  out.commits = committed.load();
  out.aborts = aborted.load();
  out.txn_per_sec = elapsed > 0 ? out.commits / elapsed : 0;
  out.lock_waits = mgr->stats().lock_waits;
  (void)mgr->Close();
  return out;
}

int Main(int argc, char** argv) {
  int txns = static_cast<int>(FlagValue(argc, argv, "txns", 2000));
  std::cout << "OStore concurrent clients (extension experiment) — "
            << txns << " txns/client\n\n";
  for (bool shared : {false, true}) {
    std::cout << (shared ? "shared hot set (deadlock-prone):"
                         : "disjoint segments:")
              << "\n";
    std::cout << std::left << std::setw(10) << "clients" << std::right
              << std::setw(14) << "commit/sec" << std::setw(12) << "commits"
              << std::setw(12) << "aborts" << std::setw(12) << "lockwaits"
              << "\n";
    for (int threads : {1, 2, 4, 8}) {
      Outcome out = RunRegime(shared, threads, txns);
      std::cout << std::left << std::setw(10) << threads << std::right
                << std::setw(14) << std::fixed << std::setprecision(0)
                << out.txn_per_sec << std::setw(12) << out.commits
                << std::setw(12) << out.aborts << std::setw(12)
                << out.lock_waits << "\n";
      // Sanity: nothing may be lost — commits + aborts == submitted.
      if (out.commits + out.aborts !=
          static_cast<uint64_t>(threads) * txns) {
        std::cerr << "ERROR: lost transactions\n";
        return 1;
      }
    }
    std::cout << "\n";
  }
  std::cout << "(Texas runs no equivalent: it has no concurrency control — "
               "the paper's\n architectural contrast; clients must "
               "serialize externally.)\n";
  return 0;
}

}  // namespace
}  // namespace labflow::bench

int main(int argc, char** argv) { return labflow::bench::Main(argc, argv); }
