// Extension experiment: concurrent clients on the OStore manager.
//
// The paper contrasts the two storage managers' architectures:
// "ObjectStore offers concurrent access with lock based concurrency control
// implemented in a page server...; Texas does not support concurrent
// access". The main benchmark is single-client (as the paper's was); this
// bench exercises the part of the OStore design the main table cannot —
// page-level strict 2PL with deadlock resolution — by running N client
// threads of small update transactions against one database, each thread
// holding its own explicit transaction handle.
//
// Clients submit through RunTransaction, which absorbs deadlock aborts by
// re-running the transaction with backoff: every submitted transaction
// eventually commits, and deadlocks show up as retries, not failures. The
// lock timeout is set far above the run time — deadlocks are resolved by
// the lock manager's waits-for detection, so resolution latency (and thus
// throughput) no longer depends on the timeout at all.
//
// Reported: committed transactions/sec, user-visible aborts (must be 0),
// retries, deadlocks broken, and lock waits, for 1..8 threads, in regimes:
//   disjoint — each client works in its own segment (no page sharing)
//   shared   — all clients update a small common set of objects
//   labbase  — N LabBase sessions record steps against disjoint materials
//              through the full wrapper stack (indexes, most-recent cache).
//   sync     — disjoint clients with force-at-commit durability
//              (sync_commit=true): commits are bound by fdatasync, and the
//              WAL's group commit amortizes one sync over every transaction
//              queued behind it. Reports frames-per-sync alongside the
//              commit rate; the 1-thread row is the no-coalescing baseline.

#include <atomic>
#include <iomanip>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/rng.h"
#include "labbase/labbase.h"
#include "ostore/ostore_manager.h"
#include "common/status_macros.h"

namespace labflow::bench {
namespace {

using labbase::LabBase;
using ostore::OstoreManager;
using ostore::OstoreOptions;
using storage::AllocHint;
using storage::ObjectId;

struct Outcome {
  double txn_per_sec = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;  ///< user-visible failures (retries exhausted): 0
  uint64_t retries = 0;
  uint64_t deadlocks = 0;
  uint64_t lock_waits = 0;
};

Result<std::unique_ptr<OstoreManager>> OpenManager(const std::string& path,
                                                   bool sync_commit = false) {
  OstoreOptions opts;
  opts.base.path = path;
  opts.base.buffer_pool_pages = 4096;
  // Deliberately enormous: deadlocks must be broken by waits-for detection,
  // and a run that finishes quickly under contention proves the timeout is
  // no longer part of the resolution path.
  opts.lock_timeout_ms = 10000;
  opts.sync_commit = sync_commit;
  return OstoreManager::Open(opts);
}

Result<Outcome> RunRegime(bool shared, int threads, int txns_per_thread) {
  BenchDir dir;
  LABFLOW_ASSIGN_OR_RETURN(std::unique_ptr<OstoreManager> mgr,
                           OpenManager(dir.file("conc.db")));

  // Shared regime: a handful of hot objects everyone updates. Spread them
  // over distinct pages with ~7KB filler between the allocations, so the
  // regime measures object-level conflicts rather than one page's lock.
  std::vector<ObjectId> hot;
  if (shared) {
    for (int i = 0; i < 4; ++i) {
      LABFLOW_ASSIGN_OR_RETURN(
          ObjectId id, mgr->Allocate(std::string(128, 'h'), AllocHint{}));
      hot.push_back(id);
      LABFLOW_RETURN_IF_ERROR(
          mgr->Allocate(std::string(7000, 'f'), AllocHint{}).status());
    }
  }
  // Disjoint regime: one segment per client.
  std::vector<uint16_t> segments;
  for (int t = 0; t < threads; ++t) {
    LABFLOW_ASSIGN_OR_RETURN(uint16_t seg,
                             mgr->CreateSegment("client" + std::to_string(t)));
    segments.push_back(seg);
  }

  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};
  Stopwatch sw;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      AllocHint hint;
      hint.segment = segments[t];
      storage::TxnRetryOptions retry;
      retry.max_retries = 100;
      retry.jitter_seed = static_cast<uint64_t>(t) + 1;
      for (int i = 0; i < txns_per_thread; ++i) {
        Status st = mgr->RunTransaction(
            [&](storage::Txn* txn) -> Status {
              if (shared) {
                // Touch two hot objects in random order: deadlock-prone.
                size_t a = rng.NextBelow(hot.size());
                size_t b = rng.NextBelow(hot.size());
                Status s = mgr->Update(txn, hot[a], std::string(128, 'x'));
                if (s.ok() && b != a) {
                  s = mgr->Update(txn, hot[b], std::string(128, 'y'));
                }
                return s;
              }
              LABFLOW_RETURN_IF_ERROR(
                  mgr->Allocate(txn, std::string(200, 'd'), hint).status());
              return mgr->Allocate(txn, std::string(200, 'e'), hint).status();
            },
            retry);
        if (st.ok()) {
          committed.fetch_add(1);
        } else {
          aborted.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  double elapsed = sw.ElapsedSeconds();

  Outcome out;
  out.commits = committed.load();
  out.aborts = aborted.load();
  out.txn_per_sec = elapsed > 0 ? out.commits / elapsed : 0;
  auto stats = mgr->stats();
  out.retries = stats.txn_retries;
  out.deadlocks = stats.deadlocks;
  out.lock_waits = stats.lock_waits;
  LABFLOW_RETURN_IF_ERROR(mgr->Close());
  return out;
}

/// The same experiment through the full wrapper: N LabBase sessions, each
/// creating its own materials and recording steps against them. Data is
/// disjoint per client but the hot/cold segments — and the in-memory
/// indexes — are shared, exercising the session layer end to end.
Result<Outcome> RunLabBaseSessions(int threads, int txns_per_thread) {
  BenchDir dir;
  LABFLOW_ASSIGN_OR_RETURN(std::unique_ptr<OstoreManager> mgr,
                           OpenManager(dir.file("conc_lb.db")));
  labbase::LabBaseOptions lb_opts;
  lb_opts.max_txn_retries = 100;
  LABFLOW_ASSIGN_OR_RETURN(std::unique_ptr<LabBase> db,
                           LabBase::Open(mgr.get(), lb_opts));

  // Schema DDL is a single-session operation: run it before the fan-out.
  auto admin = db->OpenSession();
  LABFLOW_ASSIGN_OR_RETURN(labbase::ClassId clone,
                           admin->DefineMaterialClass("clone"));
  LABFLOW_ASSIGN_OR_RETURN(labbase::StateId active,
                           admin->DefineState("active"));
  LABFLOW_ASSIGN_OR_RETURN(labbase::ClassId measure,
                           admin->DefineStepClass("measure", {"x"}));
  labbase::AttrId x = admin->schema().AttributeByName("x").value();
  admin.reset();

  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};
  std::atomic<uint64_t> session_retries{0};
  Stopwatch sw;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto session = db->OpenSession();
      for (int i = 0; i < txns_per_thread; ++i) {
        std::string name =
            "m-" + std::to_string(t) + "-" + std::to_string(i);
        // The body re-runs cleanly on a deadlock retry: the aborted
        // attempt's material, index entries and name reservation all roll
        // back with the transaction.
        Status st = session->RunTransaction([&]() -> Status {
          LABFLOW_ASSIGN_OR_RETURN(
              Oid m,
              session->CreateMaterial(clone, name, active, Timestamp(i)));
          labbase::StepEffect effect;
          effect.material = m;
          effect.tags = {{x, Value::Int(i)}};
          return session->RecordStep(measure, Timestamp(i + 1), {effect})
              .status();
        });
        if (st.ok()) {
          committed.fetch_add(1);
        } else {
          aborted.fetch_add(1);
        }
      }
      session_retries.fetch_add(session->stats().txn_retries);
    });
  }
  for (std::thread& w : workers) w.join();
  double elapsed = sw.ElapsedSeconds();

  Outcome out;
  out.commits = committed.load();
  out.aborts = aborted.load();
  out.txn_per_sec = elapsed > 0 ? out.commits / elapsed : 0;
  out.retries = session_retries.load();
  out.deadlocks = mgr->stats().deadlocks;
  out.lock_waits = mgr->stats().lock_waits;
  db.reset();
  LABFLOW_RETURN_IF_ERROR(mgr->Close());
  return out;
}

struct SyncOutcome {
  double commit_per_sec = 0;
  uint64_t commits = 0;
  uint64_t syncs = 0;
  double frames_per_sync = 0;
};

/// Force-at-commit regime: disjoint single-insert transactions, each commit
/// requiring its WAL group to be fdatasynced before acknowledgment. Without
/// group commit this flatlines at the disk's sync rate; with it, the
/// commits/sec scale with threads while frames-per-sync climbs above 1.
Result<SyncOutcome> RunSyncCommit(int threads, int txns_per_thread) {
  BenchDir dir;
  LABFLOW_ASSIGN_OR_RETURN(
      std::unique_ptr<OstoreManager> mgr,
      OpenManager(dir.file("conc_sync.db"), /*sync_commit=*/true));
  std::vector<uint16_t> segments;
  for (int t = 0; t < threads; ++t) {
    LABFLOW_ASSIGN_OR_RETURN(uint16_t seg,
                             mgr->CreateSegment("sync" + std::to_string(t)));
    segments.push_back(seg);
  }

  std::atomic<uint64_t> committed{0};
  std::atomic<int> failures{0};
  Stopwatch sw;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      AllocHint hint;
      hint.segment = segments[t];
      for (int i = 0; i < txns_per_thread; ++i) {
        auto txn_or = mgr->Begin();
        if (!txn_or.ok()) {
          failures.fetch_add(1);
          return;
        }
        storage::Txn* txn = txn_or.value();
        Status st = mgr->Allocate(txn, std::string(200, 's'), hint).status();
        if (st.ok() && mgr->Commit(txn).ok()) {
          committed.fetch_add(1);
        } else {
          LABFLOW_IGNORE_STATUS(
              mgr->Abort(txn),
              "best-effort rollback on the failure path; a handle already "
              "invalidated by Commit makes this a no-op");
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  double elapsed = sw.ElapsedSeconds();
  if (failures.load() > 0) {
    return Status::Internal(std::to_string(failures.load()) +
                            " sync-commit worker failure(s)");
  }

  SyncOutcome out;
  out.commits = committed.load();
  out.commit_per_sec = elapsed > 0 ? out.commits / elapsed : 0;
  auto stats = mgr->stats();
  out.syncs = stats.wal_group_syncs;
  out.frames_per_sync =
      stats.wal_group_syncs > 0
          ? static_cast<double>(stats.wal_frames) / stats.wal_group_syncs
          : 0;
  LABFLOW_RETURN_IF_ERROR(mgr->Close());
  return out;
}

int Main(int argc, char** argv) {
  int txns = static_cast<int>(FlagValue(argc, argv, "txns", 2000));
  std::cout << "OStore concurrent clients (extension experiment) — "
            << txns << " txns/client\n\n";
  struct Regime {
    const char* title;
    std::function<Result<Outcome>(int, int)> run;
  };
  Regime regimes[] = {
      {"disjoint segments:",
       [](int n, int k) { return RunRegime(false, n, k); }},
      {"shared hot set (deadlock-prone):",
       [](int n, int k) { return RunRegime(true, n, k); }},
      {"labbase sessions (disjoint materials):",
       [](int n, int k) { return RunLabBaseSessions(n, k); }},
  };
  for (const Regime& regime : regimes) {
    std::cout << regime.title << "\n";
    std::cout << std::left << std::setw(10) << "clients" << std::right
              << std::setw(14) << "commit/sec" << std::setw(12) << "commits"
              << std::setw(10) << "aborts" << std::setw(10) << "retries"
              << std::setw(11) << "deadlocks" << std::setw(12) << "lockwaits"
              << "\n";
    for (int threads : {1, 2, 4, 8}) {
      auto out_or = regime.run(threads, txns);
      if (!out_or.ok()) {
        std::cerr << "ERROR: " << out_or.status().ToString() << "\n";
        return 1;
      }
      Outcome out = out_or.value();
      std::cout << std::left << std::setw(10) << threads << std::right
                << std::setw(14) << std::fixed << std::setprecision(0)
                << out.txn_per_sec << std::setw(12) << out.commits
                << std::setw(10) << out.aborts << std::setw(10) << out.retries
                << std::setw(11) << out.deadlocks << std::setw(12)
                << out.lock_waits << "\n";
      // RunTransaction absorbs deadlock aborts: every submitted
      // transaction must commit.
      if (out.commits != static_cast<uint64_t>(threads) * txns) {
        std::cerr << "ERROR: " << out.aborts
                  << " user-visible abort(s); expected every transaction "
                     "to commit via retry\n";
        return 1;
      }
    }
    std::cout << "\n";
  }

  // Sync-commit regime: fdatasync-bound, so far fewer transactions per
  // client keep the sweep short while still showing the group-commit lift.
  int sync_txns = static_cast<int>(FlagValue(argc, argv, "sync_txns", 200));
  std::cout << "sync commit (force at commit, group commit):  " << sync_txns
            << " txns/client\n";
  std::cout << std::left << std::setw(10) << "clients" << std::right
            << std::setw(14) << "commit/sec" << std::setw(12) << "commits"
            << std::setw(12) << "syncs" << std::setw(14) << "frames/sync"
            << std::setw(10) << "vs 1thr"
            << "\n";
  double baseline = 0;
  for (int threads : {1, 2, 4, 8}) {
    auto out_or = RunSyncCommit(threads, sync_txns);
    if (!out_or.ok()) {
      std::cerr << "ERROR: " << out_or.status().ToString() << "\n";
      return 1;
    }
    SyncOutcome out = out_or.value();
    if (threads == 1) baseline = out.commit_per_sec;
    std::cout << std::left << std::setw(10) << threads << std::right
              << std::setw(14) << std::fixed << std::setprecision(0)
              << out.commit_per_sec << std::setw(12) << out.commits
              << std::setw(12) << out.syncs << std::setw(14)
              << std::setprecision(2) << out.frames_per_sync << std::setw(9)
              << (baseline > 0 ? out.commit_per_sec / baseline : 0) << "x"
              << "\n";
    if (out.commits != static_cast<uint64_t>(threads) * sync_txns) {
      std::cerr << "ERROR: lost transactions\n";
      return 1;
    }
  }
  std::cout << "\n";
  std::cout << "(Texas runs no equivalent: it has no concurrency control — "
               "the paper's\n architectural contrast; clients must "
               "serialize externally.)\n";
  return 0;
}

}  // namespace
}  // namespace labflow::bench

int main(int argc, char** argv) { return labflow::bench::Main(argc, argv); }
