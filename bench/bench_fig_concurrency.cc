// Extension experiment: concurrent clients on the OStore manager.
//
// The paper contrasts the two storage managers' architectures:
// "ObjectStore offers concurrent access with lock based concurrency control
// implemented in a page server...; Texas does not support concurrent
// access". The main benchmark is single-client (as the paper's was); this
// bench exercises the part of the OStore design the main table cannot —
// page-level strict 2PL with deadlock resolution — by running N client
// threads of small update transactions against one database, each thread
// holding its own explicit transaction handle.
//
// Clients submit through RunTransaction, which absorbs deadlock aborts by
// re-running the transaction with backoff: every submitted transaction
// eventually commits, and deadlocks show up as retries, not failures. The
// lock timeout is set far above the run time — deadlocks are resolved by
// the lock manager's waits-for detection, so resolution latency (and thus
// throughput) no longer depends on the timeout at all.
//
// Reported: committed transactions/sec, user-visible aborts (must be 0),
// retries, deadlocks broken, and lock waits, for 1..8 threads, in regimes:
//   disjoint — each client works in its own segment (no page sharing)
//   shared   — all clients update a small common set of objects
//   labbase  — N LabBase sessions record steps against disjoint materials
//              through the full wrapper stack (indexes, most-recent cache).
//   sync     — disjoint clients with force-at-commit durability
//              (sync_commit=true): commits are bound by fdatasync, and the
//              WAL's group commit amortizes one sync over every transaction
//              queued behind it. Reports frames-per-sync alongside the
//              commit rate; the 1-thread row is the no-coalescing baseline.

#include <algorithm>
#include <atomic>
#include <iomanip>
#include <iostream>
#include <string_view>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/rng.h"
#include "labbase/labbase.h"
#include "ostore/ostore_manager.h"
#include "common/status_macros.h"

namespace labflow::bench {
namespace {

using labbase::LabBase;
using ostore::OstoreManager;
using ostore::OstoreOptions;
using storage::AllocHint;
using storage::ObjectId;

struct Outcome {
  double txn_per_sec = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;  ///< user-visible failures (retries exhausted): 0
  uint64_t retries = 0;
  uint64_t deadlocks = 0;
  uint64_t lock_waits = 0;
  uint64_t snapshot_reads = 0;      ///< shared regime: concurrent MVCC reads
  uint64_t reader_lock_waits = 0;   ///< must stay 0: snapshot reads are lock-free
  uint64_t reader_deadlocks = 0;    ///< must stay 0: readers can no longer deadlock
};

Result<std::unique_ptr<OstoreManager>> OpenManager(const std::string& path,
                                                   bool sync_commit = false) {
  OstoreOptions opts;
  opts.base.path = path;
  opts.base.buffer_pool_pages = 4096;
  // Deliberately enormous: deadlocks must be broken by waits-for detection,
  // and a run that finishes quickly under contention proves the timeout is
  // no longer part of the resolution path.
  opts.lock_timeout_ms = 10000;
  opts.sync_commit = sync_commit;
  return OstoreManager::Open(opts);
}

Result<Outcome> RunRegime(bool shared, int threads, int txns_per_thread) {
  BenchDir dir;
  LABFLOW_ASSIGN_OR_RETURN(std::unique_ptr<OstoreManager> mgr,
                           OpenManager(dir.file("conc.db")));

  // Shared regime: a handful of hot objects everyone updates. Spread them
  // over distinct pages with ~7KB filler between the allocations, so the
  // regime measures object-level conflicts rather than one page's lock.
  std::vector<ObjectId> hot;
  if (shared) {
    for (int i = 0; i < 4; ++i) {
      LABFLOW_ASSIGN_OR_RETURN(
          ObjectId id, mgr->Allocate(std::string(128, 'h'), AllocHint{}));
      hot.push_back(id);
      LABFLOW_RETURN_IF_ERROR(
          mgr->Allocate(std::string(7000, 'f'), AllocHint{}).status());
    }
  }
  // Disjoint regime: one segment per client.
  std::vector<uint16_t> segments;
  for (int t = 0; t < threads; ++t) {
    LABFLOW_ASSIGN_OR_RETURN(uint16_t seg,
                             mgr->CreateSegment("client" + std::to_string(t)));
    segments.push_back(seg);
  }

  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};
  std::atomic<uint64_t> snapshot_reads{0};
  std::atomic<int> reader_failures{0};
  std::atomic<bool> writers_done{false};
  Stopwatch sw;
  std::vector<std::thread> workers;
  // Shared regime: two snapshot readers ride along with the deadlock-prone
  // writers, re-reading the hot set inside Begin(snapshot=true)
  // transactions. MVCC makes them lock-free: the run gates on zero reader
  // lock-waits and zero reader deadlocks while the writers thrash.
  std::vector<std::thread> snapshot_readers;
  if (shared) {
    for (int r = 0; r < 2; ++r) {
      snapshot_readers.emplace_back([&] {
        while (!writers_done.load()) {
          auto txn_or = mgr->Begin(/*snapshot=*/true);
          if (!txn_or.ok()) {
            reader_failures.fetch_add(1);
            return;
          }
          storage::Txn* txn = txn_or.value();
          for (ObjectId id : hot) {
            auto data = mgr->Read(txn, id);
            if (!data.ok() || data.value().size() != 128) {
              reader_failures.fetch_add(1);
              LABFLOW_IGNORE_STATUS(mgr->Abort(txn),
                                    "failing the run anyway; rollback of the "
                                    "reader's snapshot is best-effort");
              return;
            }
          }
          if (!mgr->Commit(txn).ok()) {
            reader_failures.fetch_add(1);
            return;
          }
          snapshot_reads.fetch_add(hot.size());
        }
      });
    }
  }
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      AllocHint hint;
      hint.segment = segments[t];
      storage::TxnRetryOptions retry;
      retry.max_retries = 100;
      retry.jitter_seed = static_cast<uint64_t>(t) + 1;
      for (int i = 0; i < txns_per_thread; ++i) {
        Status st = mgr->RunTransaction(
            [&](storage::Txn* txn) -> Status {
              if (shared) {
                // Touch two hot objects in random order: deadlock-prone.
                size_t a = rng.NextBelow(hot.size());
                size_t b = rng.NextBelow(hot.size());
                Status s = mgr->Update(txn, hot[a], std::string(128, 'x'));
                if (s.ok() && b != a) {
                  s = mgr->Update(txn, hot[b], std::string(128, 'y'));
                }
                return s;
              }
              LABFLOW_RETURN_IF_ERROR(
                  mgr->Allocate(txn, std::string(200, 'd'), hint).status());
              return mgr->Allocate(txn, std::string(200, 'e'), hint).status();
            },
            retry);
        if (st.ok()) {
          committed.fetch_add(1);
        } else {
          aborted.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  double elapsed = sw.ElapsedSeconds();
  writers_done.store(true);
  for (std::thread& r : snapshot_readers) r.join();
  if (reader_failures.load() > 0) {
    return Status::Internal(std::to_string(reader_failures.load()) +
                            " snapshot reader failure(s)");
  }

  Outcome out;
  out.commits = committed.load();
  out.aborts = aborted.load();
  out.txn_per_sec = elapsed > 0 ? out.commits / elapsed : 0;
  out.snapshot_reads = snapshot_reads.load();
  auto stats = mgr->stats();
  out.retries = stats.txn_retries;
  out.deadlocks = stats.deadlocks;
  out.lock_waits = stats.lock_waits;
  out.reader_lock_waits = stats.reader_lock_waits;
  out.reader_deadlocks = stats.reader_deadlocks;
  LABFLOW_RETURN_IF_ERROR(mgr->Close());
  return out;
}

/// The same experiment through the full wrapper: N LabBase sessions, each
/// creating its own materials and recording steps against them. Data is
/// disjoint per client but the hot/cold segments — and the in-memory
/// indexes — are shared, exercising the session layer end to end.
Result<Outcome> RunLabBaseSessions(int threads, int txns_per_thread) {
  BenchDir dir;
  LABFLOW_ASSIGN_OR_RETURN(std::unique_ptr<OstoreManager> mgr,
                           OpenManager(dir.file("conc_lb.db")));
  labbase::LabBaseOptions lb_opts;
  lb_opts.max_txn_retries = 100;
  LABFLOW_ASSIGN_OR_RETURN(std::unique_ptr<LabBase> db,
                           LabBase::Open(mgr.get(), lb_opts));

  // Schema DDL is a single-session operation: run it before the fan-out.
  auto admin = db->OpenSession();
  LABFLOW_ASSIGN_OR_RETURN(labbase::ClassId clone,
                           admin->DefineMaterialClass("clone"));
  LABFLOW_ASSIGN_OR_RETURN(labbase::StateId active,
                           admin->DefineState("active"));
  LABFLOW_ASSIGN_OR_RETURN(labbase::ClassId measure,
                           admin->DefineStepClass("measure", {"x"}));
  labbase::AttrId x = admin->schema().AttributeByName("x").value();
  admin.reset();

  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};
  std::atomic<uint64_t> session_retries{0};
  Stopwatch sw;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto session = db->OpenSession();
      for (int i = 0; i < txns_per_thread; ++i) {
        std::string name =
            "m-" + std::to_string(t) + "-" + std::to_string(i);
        // The body re-runs cleanly on a deadlock retry: the aborted
        // attempt's material, index entries and name reservation all roll
        // back with the transaction.
        Status st = session->RunTransaction([&]() -> Status {
          LABFLOW_ASSIGN_OR_RETURN(
              Oid m,
              session->CreateMaterial(clone, name, active, Timestamp(i)));
          labbase::StepEffect effect;
          effect.material = m;
          effect.tags = {{x, Value::Int(i)}};
          return session->RecordStep(measure, Timestamp(i + 1), {effect})
              .status();
        });
        if (st.ok()) {
          committed.fetch_add(1);
        } else {
          aborted.fetch_add(1);
        }
      }
      session_retries.fetch_add(session->stats().txn_retries);
    });
  }
  for (std::thread& w : workers) w.join();
  double elapsed = sw.ElapsedSeconds();

  Outcome out;
  out.commits = committed.load();
  out.aborts = aborted.load();
  out.txn_per_sec = elapsed > 0 ? out.commits / elapsed : 0;
  out.retries = session_retries.load();
  out.deadlocks = mgr->stats().deadlocks;
  out.lock_waits = mgr->stats().lock_waits;
  db.reset();
  LABFLOW_RETURN_IF_ERROR(mgr->Close());
  return out;
}

struct ReadMostlyOutcome {
  double queries_per_sec = 0;
  uint64_t queries = 0;
  uint64_t checksum = 0;        ///< order-independent fold of all results
  uint64_t pool_fetches = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_mutex_waits = 0;
  size_t pool_shards = 0;
  uint64_t max_shard_waits = 0;  ///< hottest shard's contention counter
};

/// Read-mostly scaling regime: the database is preloaded once, then N
/// threads check sessions out of a SessionPool and hammer it with
/// most-recent and history queries over a shared material population. This
/// is the path the sharded buffer pool and reader–writer latches exist for:
/// every query is hits-only after warmup, so throughput is bounded by lock
/// handoffs, not I/O. Per-shard mutex-wait counters localize contention.
///
/// Each thread folds its query results with a deterministic per-thread seed
/// and the per-thread checksums combine by XOR, so the final checksum is
/// independent of scheduling, thread count interleaving, pool size, and
/// shard count — any divergence is a correctness bug, not noise.
Result<ReadMostlyOutcome> RunReadMostly(int threads, int queries_per_thread,
                                        size_t pool_shards,
                                        int materials, int steps_per_material) {
  BenchDir dir;
  OstoreOptions opts;
  opts.base.path = dir.file("conc_read.db");
  opts.base.buffer_pool_pages = 4096;
  opts.base.buffer_pool_shards = pool_shards;
  opts.lock_timeout_ms = 10000;
  LABFLOW_ASSIGN_OR_RETURN(std::unique_ptr<OstoreManager> mgr,
                           OstoreManager::Open(opts));
  LABFLOW_ASSIGN_OR_RETURN(std::unique_ptr<LabBase> db,
                           LabBase::Open(mgr.get(), {}));

  // Preload: `materials` materials, each with a short step history.
  auto admin = db->OpenSession();
  LABFLOW_ASSIGN_OR_RETURN(labbase::ClassId clone,
                           admin->DefineMaterialClass("clone"));
  LABFLOW_ASSIGN_OR_RETURN(labbase::StateId active,
                           admin->DefineState("active"));
  LABFLOW_ASSIGN_OR_RETURN(labbase::ClassId measure,
                           admin->DefineStepClass("measure", {"x"}));
  labbase::AttrId x = admin->schema().AttributeByName("x").value();
  std::vector<Oid> mats;
  mats.reserve(materials);
  for (int m = 0; m < materials; ++m) {
    LABFLOW_ASSIGN_OR_RETURN(
        Oid mat, admin->CreateMaterial(clone, "rm-" + std::to_string(m),
                                       active, Timestamp(m)));
    mats.push_back(mat);
    for (int s = 0; s < steps_per_material; ++s) {
      labbase::StepEffect effect;
      effect.material = mat;
      effect.tags = {{x, Value::Int(m * 1000 + s)}};
      LABFLOW_RETURN_IF_ERROR(
          admin->RecordStep(measure, Timestamp(m * 100 + s + 1), {effect})
              .status());
    }
  }
  admin.reset();

  // Stats baseline after preload: the measured section reports query-phase
  // pool traffic only.
  storage::BufferPoolStats before = mgr->buffer_pool()->stats();

  LabBase::SessionPool pool(db.get(), /*max_idle=*/threads);
  std::atomic<uint64_t> checksum{0};
  std::atomic<int> failures{0};
  Stopwatch sw;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      LabBase::SessionPool::Lease session = pool.Acquire();
      Rng rng(static_cast<uint64_t>(t) * 7919 + 1);
      uint64_t local = 14695981039346656037ULL;
      for (int i = 0; i < queries_per_thread; ++i) {
        Oid mat = mats[rng.NextBelow(mats.size())];
        if (i % 8 == 7) {
          auto hist = session->History(mat, x);
          if (!hist.ok()) {
            failures.fetch_add(1);
            return;
          }
          local = (local ^ hist->size()) * 1099511628211ULL;
          for (const labbase::HistoryEntry& e : *hist) {
            local = (local ^ static_cast<uint64_t>(e.time.micros)) *
                    1099511628211ULL;
          }
        } else {
          auto v = session->MostRecent(mat, x);
          if (!v.ok()) {
            failures.fetch_add(1);
            return;
          }
          local = (local ^ static_cast<uint64_t>(v->int_value())) *
                  1099511628211ULL;
        }
      }
      checksum.fetch_xor(local);
    });
  }
  for (std::thread& w : workers) w.join();
  double elapsed = sw.ElapsedSeconds();
  if (failures.load() > 0) {
    return Status::Internal(std::to_string(failures.load()) +
                            " read-mostly worker failure(s)");
  }

  ReadMostlyOutcome out;
  out.queries = static_cast<uint64_t>(threads) * queries_per_thread;
  out.queries_per_sec = elapsed > 0 ? out.queries / elapsed : 0;
  out.checksum = checksum.load();
  storage::BufferPoolStats after = mgr->buffer_pool()->stats();
  out.pool_fetches = after.fetches - before.fetches;
  out.pool_hits = after.hits - before.hits;
  out.pool_mutex_waits = after.shard_mutex_waits - before.shard_mutex_waits;
  out.pool_shards = mgr->buffer_pool()->shard_count();
  for (const storage::BufferPoolStats& s :
       mgr->buffer_pool()->shard_stats()) {
    out.max_shard_waits = std::max(out.max_shard_waits, s.shard_mutex_waits);
  }
  db.reset();
  LABFLOW_RETURN_IF_ERROR(mgr->Close());
  return out;
}

struct SyncOutcome {
  double commit_per_sec = 0;
  uint64_t commits = 0;
  uint64_t syncs = 0;
  double frames_per_sync = 0;
};

/// Force-at-commit regime: disjoint single-insert transactions, each commit
/// requiring its WAL group to be fdatasynced before acknowledgment. Without
/// group commit this flatlines at the disk's sync rate; with it, the
/// commits/sec scale with threads while frames-per-sync climbs above 1.
Result<SyncOutcome> RunSyncCommit(int threads, int txns_per_thread) {
  BenchDir dir;
  LABFLOW_ASSIGN_OR_RETURN(
      std::unique_ptr<OstoreManager> mgr,
      OpenManager(dir.file("conc_sync.db"), /*sync_commit=*/true));
  std::vector<uint16_t> segments;
  for (int t = 0; t < threads; ++t) {
    LABFLOW_ASSIGN_OR_RETURN(uint16_t seg,
                             mgr->CreateSegment("sync" + std::to_string(t)));
    segments.push_back(seg);
  }

  std::atomic<uint64_t> committed{0};
  std::atomic<int> failures{0};
  Stopwatch sw;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      AllocHint hint;
      hint.segment = segments[t];
      for (int i = 0; i < txns_per_thread; ++i) {
        auto txn_or = mgr->Begin();
        if (!txn_or.ok()) {
          failures.fetch_add(1);
          return;
        }
        storage::Txn* txn = txn_or.value();
        Status st = mgr->Allocate(txn, std::string(200, 's'), hint).status();
        if (st.ok() && mgr->Commit(txn).ok()) {
          committed.fetch_add(1);
        } else {
          LABFLOW_IGNORE_STATUS(
              mgr->Abort(txn),
              "best-effort rollback on the failure path; a handle already "
              "invalidated by Commit makes this a no-op");
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  double elapsed = sw.ElapsedSeconds();
  if (failures.load() > 0) {
    return Status::Internal(std::to_string(failures.load()) +
                            " sync-commit worker failure(s)");
  }

  SyncOutcome out;
  out.commits = committed.load();
  out.commit_per_sec = elapsed > 0 ? out.commits / elapsed : 0;
  auto stats = mgr->stats();
  out.syncs = stats.wal_group_syncs;
  out.frames_per_sync =
      stats.wal_group_syncs > 0
          ? static_cast<double>(stats.wal_frames) / stats.wal_group_syncs
          : 0;
  LABFLOW_RETURN_IF_ERROR(mgr->Close());
  return out;
}

int Main(int argc, char** argv) {
  int txns = static_cast<int>(FlagValue(argc, argv, "txns", 2000));
  std::string json_path = FlagString(argc, argv, "json");
  JsonReport report("fig_concurrency");
  std::cout << "OStore concurrent clients (extension experiment) — "
            << txns << " txns/client\n\n";
  struct Regime {
    const char* title;
    const char* key;  ///< regime tag in the JSON rows
    std::function<Result<Outcome>(int, int)> run;
  };
  Regime regimes[] = {
      {"disjoint segments:", "disjoint",
       [](int n, int k) { return RunRegime(false, n, k); }},
      {"shared hot set (deadlock-prone):", "shared",
       [](int n, int k) { return RunRegime(true, n, k); }},
      {"labbase sessions (disjoint materials):", "labbase",
       [](int n, int k) { return RunLabBaseSessions(n, k); }},
  };
  for (const Regime& regime : regimes) {
    std::cout << regime.title << "\n";
    std::cout << std::left << std::setw(10) << "clients" << std::right
              << std::setw(14) << "commit/sec" << std::setw(12) << "commits"
              << std::setw(10) << "aborts" << std::setw(10) << "retries"
              << std::setw(11) << "deadlocks" << std::setw(12) << "lockwaits"
              << "\n";
    for (int threads : {1, 2, 4, 8}) {
      auto out_or = regime.run(threads, txns);
      if (!out_or.ok()) {
        std::cerr << "ERROR: " << out_or.status().ToString() << "\n";
        return 1;
      }
      Outcome out = out_or.value();
      std::cout << std::left << std::setw(10) << threads << std::right
                << std::setw(14) << std::fixed << std::setprecision(0)
                << out.txn_per_sec << std::setw(12) << out.commits
                << std::setw(10) << out.aborts << std::setw(10) << out.retries
                << std::setw(11) << out.deadlocks << std::setw(12)
                << out.lock_waits << "\n";
      report.AddRow()
          .Str("regime", regime.key)
          .Int("clients", threads)
          .Num("txn_per_sec", out.txn_per_sec)
          .Int("commits", out.commits)
          .Int("aborts", out.aborts)
          .Int("retries", out.retries)
          .Int("deadlocks", out.deadlocks)
          .Int("lock_waits", out.lock_waits)
          .Int("snapshot_reads", out.snapshot_reads)
          .Int("reader_lock_waits", out.reader_lock_waits)
          .Int("reader_deadlocks", out.reader_deadlocks);
      // RunTransaction absorbs deadlock aborts: every submitted
      // transaction must commit.
      if (out.commits != static_cast<uint64_t>(threads) * txns) {
        std::cerr << "ERROR: " << out.aborts
                  << " user-visible abort(s); expected every transaction "
                     "to commit via retry\n";
        return 1;
      }
      // Shared regime rides snapshot readers alongside the thrashing
      // writers: MVCC reads are lock-free, so any reader lock-wait or
      // reader deadlock is a regression in the snapshot path. (The other
      // regimes have no snapshot readers, and labbase writers make their
      // own shared requests inside read-modify-write transactions.)
      if (std::string_view(regime.key) == "shared" &&
          (out.reader_lock_waits != 0 || out.reader_deadlocks != 0)) {
        std::cerr << "ERROR: " << out.reader_lock_waits
                  << " reader lock-wait(s), " << out.reader_deadlocks
                  << " reader deadlock(s); snapshot readers must take no "
                     "locks\n";
        return 1;
      }
    }
    std::cout << "\n";
  }

  // Sync-commit regime: fdatasync-bound, so far fewer transactions per
  // client keep the sweep short while still showing the group-commit lift.
  int sync_txns = static_cast<int>(FlagValue(argc, argv, "sync_txns", 200));
  std::cout << "sync commit (force at commit, group commit):  " << sync_txns
            << " txns/client\n";
  std::cout << std::left << std::setw(10) << "clients" << std::right
            << std::setw(14) << "commit/sec" << std::setw(12) << "commits"
            << std::setw(12) << "syncs" << std::setw(14) << "frames/sync"
            << std::setw(10) << "vs 1thr"
            << "\n";
  double baseline = 0;
  for (int threads : {1, 2, 4, 8}) {
    auto out_or = RunSyncCommit(threads, sync_txns);
    if (!out_or.ok()) {
      std::cerr << "ERROR: " << out_or.status().ToString() << "\n";
      return 1;
    }
    SyncOutcome out = out_or.value();
    if (threads == 1) baseline = out.commit_per_sec;
    std::cout << std::left << std::setw(10) << threads << std::right
              << std::setw(14) << std::fixed << std::setprecision(0)
              << out.commit_per_sec << std::setw(12) << out.commits
              << std::setw(12) << out.syncs << std::setw(14)
              << std::setprecision(2) << out.frames_per_sync << std::setw(9)
              << (baseline > 0 ? out.commit_per_sec / baseline : 0) << "x"
              << "\n";
    if (out.commits != static_cast<uint64_t>(threads) * sync_txns) {
      std::cerr << "ERROR: lost transactions\n";
      return 1;
    }
    report.AddRow()
        .Str("regime", "sync_commit")
        .Int("clients", threads)
        .Num("commit_per_sec", out.commit_per_sec)
        .Int("commits", out.commits)
        .Int("syncs", out.syncs)
        .Num("frames_per_sync", out.frames_per_sync);
  }
  std::cout << "\n";

  // Read-mostly regime: preloaded database, pooled sessions, query-only
  // threads. Swept over shard counts so the per-shard contention counters
  // show where the single-mutex pool was spending its time.
  int queries = static_cast<int>(FlagValue(argc, argv, "queries", 4000));
  int rm_materials = static_cast<int>(FlagValue(argc, argv, "materials", 256));
  std::cout << "read-mostly (pooled sessions, query-only threads):  "
            << queries << " queries/client\n";
  std::cout << std::left << std::setw(10) << "clients" << std::right
            << std::setw(8) << "shards" << std::setw(14) << "queries/sec"
            << std::setw(12) << "hits" << std::setw(12) << "mu_waits"
            << std::setw(12) << "max_shard" << std::setw(10) << "vs 1thr"
            << "\n";
  double rm_baseline = 0;
  uint64_t rm_checksum = 0;
  bool rm_checksum_set = false;
  double rm_8thr_ratio = 0;
  for (size_t shards : {size_t{1}, size_t{0}}) {  // 0 = auto (capacity/256)
    for (int threads : {1, 8}) {
      auto out_or = RunReadMostly(threads, queries, shards, rm_materials,
                                  /*steps_per_material=*/8);
      if (!out_or.ok()) {
        std::cerr << "ERROR: " << out_or.status().ToString() << "\n";
        return 1;
      }
      ReadMostlyOutcome out = out_or.value();
      if (threads == 1 && shards == 1) rm_baseline = out.queries_per_sec;
      double ratio = rm_baseline > 0 ? out.queries_per_sec / rm_baseline : 0;
      if (threads == 8) rm_8thr_ratio = std::max(rm_8thr_ratio, ratio);
      std::cout << std::left << std::setw(10) << threads << std::right
                << std::setw(8) << out.pool_shards << std::setw(14)
                << std::fixed << std::setprecision(0) << out.queries_per_sec
                << std::setw(12) << out.pool_hits << std::setw(12)
                << out.pool_mutex_waits << std::setw(12)
                << out.max_shard_waits << std::setw(9)
                << std::setprecision(2) << ratio << "x\n";
      report.AddRow()
          .Str("regime", "read_mostly")
          .Int("clients", threads)
          .Int("shards", out.pool_shards)
          .Num("queries_per_sec", out.queries_per_sec)
          .Int("queries", out.queries)
          .Int("pool_hits", out.pool_hits)
          .Int("pool_fetches", out.pool_fetches)
          .Int("pool_mutex_waits", out.pool_mutex_waits)
          .Int("max_shard_waits", out.max_shard_waits)
          .Str("checksum", std::to_string(out.checksum));
      // The workload is deterministic per thread count and order-independent
      // across threads, so the folded result checksum must not vary with
      // pool sharding or scheduling. (It differs across thread counts only
      // because 8 threads draw 8 independent query streams.)
      if (threads == 8) {
        if (!rm_checksum_set) {
          rm_checksum = out.checksum;
          rm_checksum_set = true;
        } else if (out.checksum != rm_checksum) {
          std::cerr << "ERROR: read-mostly checksum mismatch across shard "
                       "counts\n";
          return 1;
        }
      }
    }
  }
  // Scaling gate. On a multi-core box 8 query threads over a warm pool must
  // actually scale; on a 1-core container the most we can ask is that the
  // concurrency machinery costs (almost) nothing — 8 threads within 10% of
  // the single-thread rate.
  unsigned hw = std::thread::hardware_concurrency();
  if (hw >= 8) {
    if (rm_8thr_ratio < 4.0) {
      std::cerr << "ERROR: read-mostly 8-thread speedup " << rm_8thr_ratio
                << "x < 4x on " << hw << " cores\n";
      return 1;
    }
  } else if (hw <= 1) {
    if (rm_8thr_ratio < 0.9) {
      std::cerr << "ERROR: read-mostly 8-thread throughput " << rm_8thr_ratio
                << "x of single-thread on 1 core (want >= 0.9x)\n";
      return 1;
    }
  } else if (rm_8thr_ratio < 1.0) {
    std::cerr << "ERROR: read-mostly 8-thread throughput " << rm_8thr_ratio
              << "x of single-thread on " << hw << " cores (want >= 1x)\n";
    return 1;
  }
  std::cout << "\n";
  std::cout << "(Texas runs no equivalent: it has no concurrency control — "
               "the paper's\n architectural contrast; clients must "
               "serialize externally.)\n";
  if (!report.WriteTo(json_path)) {
    std::cerr << "ERROR: could not write " << json_path << "\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace labflow::bench

int main(int argc, char** argv) { return labflow::bench::Main(argc, argv); }
