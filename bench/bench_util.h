#ifndef LABFLOW_BENCH_BENCH_UTIL_H_
#define LABFLOW_BENCH_BENCH_UTIL_H_

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"

namespace labflow::bench {

/// Scratch directory for benchmark database files; removed on destruction.
class BenchDir {
 public:
  BenchDir() {
    std::string tmpl = "/tmp/labflow_bench_XXXXXX";
    char* dir = ::mkdtemp(tmpl.data());
    path_ = dir == nullptr ? "/tmp" : dir;
  }
  ~BenchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  BenchDir(const BenchDir&) = delete;
  BenchDir& operator=(const BenchDir&) = delete;

  std::string file(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

/// Parses "--key=value" style flags; returns `fallback` when absent.
inline double FlagValue(int argc, char** argv, const std::string& key,
                        double fallback) {
  std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::atof(arg.substr(prefix.size()).c_str());
    }
  }
  return fallback;
}

/// String variant of FlagValue (e.g. `--json=/path/out.json`).
inline std::string FlagString(int argc, char** argv, const std::string& key,
                              const std::string& fallback = "") {
  std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return fallback;
}

/// Machine-readable benchmark output alongside the human tables: rows of
/// key/value pairs, serialized as `{"bench": <name>, "rows": [{...}, ...]}`.
/// Benches call AddRow() as they print each table line; WriteTo() is a
/// no-op when the `--json=` flag was absent, so instrumentation costs
/// nothing in interactive runs.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  class Row {
   public:
    Row& Int(const std::string& key, uint64_t v) {
      fields_.emplace_back(key, std::to_string(v));
      return *this;
    }
    Row& Num(const std::string& key, double v) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", v);
      fields_.emplace_back(key, buf);
      return *this;
    }
    Row& Str(const std::string& key, const std::string& v) {
      fields_.emplace_back(key, Quote(v));
      return *this;
    }
    /// Emits the standard latency tail for a histogram as four keys:
    /// `<prefix>_p50_us`, `<prefix>_p99_us`, `<prefix>_p999_us` and
    /// `<prefix>_mean_us`. Every bench that reports latency uses this, so
    /// downstream tooling can rely on one schema.
    Row& LatencyUs(const std::string& prefix, const LatencyHistogram& h) {
      return Num(prefix + "_mean_us", h.mean_us())
          .Num(prefix + "_p50_us", h.PercentileUs(50))
          .Num(prefix + "_p99_us", h.PercentileUs(99))
          .Num(prefix + "_p999_us", h.PercentileUs(99.9));
    }

   private:
    friend class JsonReport;
    static std::string Quote(const std::string& s) {
      std::string out = "\"";
      for (char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
      }
      out += '"';
      return out;
    }
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  Row& AddRow() {
    rows_.emplace_back();
    return rows_.back();
  }

  /// Writes the report to `path`; empty path is a no-op. Returns false on
  /// I/O failure (callers treat that as a bench error, not a warning — CI
  /// depends on the artifact existing).
  bool WriteTo(const std::string& path) const {
    if (path.empty()) return true;
    std::ofstream out(path, std::ios::trunc);
    if (!out) return false;
    out << "{\"bench\": " << Row::Quote(bench_name_) << ", \"rows\": [";
    for (size_t i = 0; i < rows_.size(); ++i) {
      out << (i == 0 ? "\n" : ",\n") << "  {";
      const auto& fields = rows_[i].fields_;
      for (size_t j = 0; j < fields.size(); ++j) {
        if (j != 0) out << ", ";
        out << Row::Quote(fields[j].first) << ": " << fields[j].second;
      }
      out << "}";
    }
    out << "\n]}\n";
    out.flush();
    return out.good();
  }

 private:
  std::string bench_name_;
  std::vector<Row> rows_;
};

}  // namespace labflow::bench

#endif  // LABFLOW_BENCH_BENCH_UTIL_H_
