#ifndef LABFLOW_BENCH_BENCH_UTIL_H_
#define LABFLOW_BENCH_BENCH_UTIL_H_

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>

namespace labflow::bench {

/// Scratch directory for benchmark database files; removed on destruction.
class BenchDir {
 public:
  BenchDir() {
    std::string tmpl = "/tmp/labflow_bench_XXXXXX";
    char* dir = ::mkdtemp(tmpl.data());
    path_ = dir == nullptr ? "/tmp" : dir;
  }
  ~BenchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  BenchDir(const BenchDir&) = delete;
  BenchDir& operator=(const BenchDir&) = delete;

  std::string file(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

/// Parses "--key=value" style flags; returns `fallback` when absent.
inline double FlagValue(int argc, char** argv, const std::string& key,
                        double fallback) {
  std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::atof(arg.substr(prefix.size()).c_str());
    }
  }
  return fallback;
}

}  // namespace labflow::bench

#endif  // LABFLOW_BENCH_BENCH_UTIL_H_
