// LSM history store unit tests: the StorageManager seam, memtable rotation
// and flush, leveled compaction with tombstone GC, reopen persistence, and
// a compaction-under-load stress aimed at TSan (scripts/check.sh runs this
// binary in the tsan phase).
//
// The tiny-options helper shrinks memtable_bytes and the L0 triggers so a
// few hundred objects exercise every layer: rotation, background flush,
// L0->L1 compaction, and the backpressure slowdown band.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "lsm/lsm_manager.h"
#include "tests/test_util.h"

namespace labflow::lsm {
namespace {

using storage::AllocHint;
using storage::ObjectId;
using test::TempDir;

LsmOptions TinyOptions(const std::string& path) {
  LsmOptions opts;
  opts.path = path;
  opts.memtable_bytes = 4 << 10;  // rotate every ~4 KiB of payload
  opts.block_cache_bytes = 64 << 10;
  opts.l0_compact_trigger = 2;
  opts.l0_slowdown_trigger = 4;
  opts.l0_stop_trigger = 8;
  opts.level_base_bytes = 16 << 10;
  opts.target_file_bytes = 8 << 10;
  return opts;
}

std::unique_ptr<LsmManager> OpenOrDie(const LsmOptions& opts) {
  auto mgr = LsmManager::Open(opts);
  EXPECT_TRUE(mgr.ok()) << mgr.status().ToString();
  return std::move(mgr).value();
}

TEST(LsmTest, SeamBasicsAutoCommit) {
  TempDir dir;
  auto mgr = OpenOrDie(TinyOptions(dir.file("db")));
  EXPECT_EQ(mgr->name(), "LsmStore");

  auto id = mgr->Allocate("hello", AllocHint{});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(mgr->Read(id.value()).value(), "hello");

  ASSERT_TRUE(mgr->Update(id.value(), "world").ok());
  EXPECT_EQ(mgr->Read(id.value()).value(), "world");

  // Unknown ids are NotFound, and Update/Free on them refuse.
  EXPECT_TRUE(mgr->Read(ObjectId(999999)).status().IsNotFound());
  EXPECT_FALSE(mgr->Update(ObjectId(999999), "x").ok());
  EXPECT_FALSE(mgr->Free(ObjectId(999999)).ok());

  ASSERT_TRUE(mgr->Free(id.value()).ok());
  EXPECT_TRUE(mgr->Read(id.value()).status().IsNotFound());

  // Root travels through the same commit path.
  auto id2 = mgr->Allocate("root-obj", AllocHint{});
  ASSERT_TRUE(id2.ok());
  ASSERT_TRUE(mgr->SetRoot(id2.value()).ok());
  EXPECT_EQ(mgr->GetRoot().value().raw, id2.value().raw);
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(LsmTest, TxnCommitAbortAndReadYourWrites) {
  TempDir dir;
  auto mgr = OpenOrDie(TinyOptions(dir.file("db")));

  auto t1 = mgr->Begin();
  ASSERT_TRUE(t1.ok());
  auto a = mgr->Allocate(t1.value(), "alpha", AllocHint{});
  ASSERT_TRUE(a.ok());
  // Read-your-writes inside the transaction...
  EXPECT_EQ(mgr->Read(t1.value(), a.value()).value(), "alpha");
  // ...but invisible outside until commit.
  EXPECT_TRUE(mgr->Read(a.value()).status().IsNotFound());
  ASSERT_TRUE(mgr->Commit(t1.value()).ok());
  EXPECT_EQ(mgr->Read(a.value()).value(), "alpha");

  // Abort is a real rollback: nothing leaks.
  auto t2 = mgr->Begin();
  ASSERT_TRUE(t2.ok());
  auto b = mgr->Allocate(t2.value(), "beta", AllocHint{});
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(mgr->Update(t2.value(), a.value(), "alpha-v2").ok());
  ASSERT_TRUE(mgr->Abort(t2.value()).ok());
  EXPECT_TRUE(mgr->Read(b.value()).status().IsNotFound());
  EXPECT_EQ(mgr->Read(a.value()).value(), "alpha");

  // Free inside a transaction overlays the committed value.
  auto t3 = mgr->Begin();
  ASSERT_TRUE(t3.ok());
  ASSERT_TRUE(mgr->Free(t3.value(), a.value()).ok());
  EXPECT_TRUE(mgr->Read(t3.value(), a.value()).status().IsNotFound());
  EXPECT_EQ(mgr->Read(a.value()).value(), "alpha");  // outside still sees it
  ASSERT_TRUE(mgr->Commit(t3.value()).ok());
  EXPECT_TRUE(mgr->Read(a.value()).status().IsNotFound());
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(LsmTest, RotationFlushAndReadbackAcrossLevels) {
  TempDir dir;
  auto mgr = OpenOrDie(TinyOptions(dir.file("db")));

  // Enough data to force several rotations + background flushes; values
  // are sized so a handful of objects overflow the 4 KiB memtable.
  Rng rng(42);
  std::map<uint64_t, std::string> expect;
  for (int i = 0; i < 300; ++i) {
    std::string data = rng.NextName(100 + rng.NextBelow(200));
    auto id = mgr->Allocate(data, AllocHint{});
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    expect[id.value().raw] = data;
  }
  // Overwrite a third (exercises shadowing across levels) and free a third.
  int k = 0;
  std::vector<uint64_t> to_free;
  for (auto& [raw, data] : expect) {
    if (k % 3 == 1) {
      data = "updated-" + std::to_string(raw);
      ASSERT_TRUE(mgr->Update(ObjectId(raw), data).ok());
    } else if (k % 3 == 2) {
      to_free.push_back(raw);
    }
    ++k;
  }
  for (uint64_t raw : to_free) {
    ASSERT_TRUE(mgr->Free(ObjectId(raw)).ok());
    expect.erase(raw);
  }
  // Checkpoint drains the immutable queue: everything is on disk now.
  ASSERT_TRUE(mgr->Checkpoint().ok());

  storage::StorageStats stats = mgr->stats();
  EXPECT_GT(stats.disk_writes, 0u);
  EXPECT_GT(stats.db_size_bytes, 0u);
  EXPECT_FALSE(stats.lsm_level_files.empty());
  EXPECT_EQ(stats.live_objects, expect.size());

  // Point reads and the full scan agree with the model.
  for (const auto& [raw, data] : expect) {
    auto back = mgr->Read(ObjectId(raw));
    ASSERT_TRUE(back.ok()) << "object " << raw << ": "
                           << back.status().ToString();
    EXPECT_EQ(back.value(), data);
  }
  for (uint64_t raw : to_free) {
    EXPECT_TRUE(mgr->Read(ObjectId(raw)).status().IsNotFound());
  }
  std::map<uint64_t, std::string> scanned;
  ASSERT_TRUE(mgr->ScanAll([&](ObjectId id, std::string_view data) {
                   scanned[id.raw] = std::string(data);
                   return Status::OK();
                 }).ok());
  EXPECT_EQ(scanned, expect);
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(LsmTest, ReopenPersistsDataRootAndIds) {
  TempDir dir;
  LsmOptions opts = TinyOptions(dir.file("db"));
  std::map<uint64_t, std::string> expect;
  uint64_t root_raw = 0;
  {
    auto mgr = OpenOrDie(opts);
    Rng rng(7);
    for (int i = 0; i < 150; ++i) {
      std::string data = rng.NextName(50 + rng.NextBelow(300));
      auto id = mgr->Allocate(data, AllocHint{});
      ASSERT_TRUE(id.ok());
      expect[id.value().raw] = data;
    }
    root_raw = expect.begin()->first;
    ASSERT_TRUE(mgr->SetRoot(ObjectId(root_raw)).ok());
    ASSERT_TRUE(mgr->Close().ok());
  }
  opts.truncate = false;
  {
    auto mgr = OpenOrDie(opts);
    EXPECT_EQ(mgr->GetRoot().value().raw, root_raw);
    std::map<uint64_t, std::string> scanned;
    ASSERT_TRUE(mgr->ScanAll([&](ObjectId id, std::string_view data) {
                     scanned[id.raw] = std::string(data);
                     return Status::OK();
                   }).ok());
    EXPECT_EQ(scanned, expect);
    // Fresh allocations must not collide with recovered ids.
    auto id = mgr->Allocate("post-reopen", AllocHint{});
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(expect.count(id.value().raw), 0u);
    ASSERT_TRUE(mgr->Close().ok());
  }
  // truncate=true wipes it all.
  opts.truncate = true;
  {
    auto mgr = OpenOrDie(opts);
    uint64_t live = 0;
    ASSERT_TRUE(mgr->ScanAll([&](ObjectId, std::string_view) {
                     ++live;
                     return Status::OK();
                   }).ok());
    EXPECT_EQ(live, 0u);
    ASSERT_TRUE(mgr->Close().ok());
  }
}

TEST(LsmTest, CompactionDropsTombstonesAndKeepsAnswers) {
  TempDir dir;
  LsmOptions opts = TinyOptions(dir.file("db"));
  auto mgr = OpenOrDie(opts);

  // Two generations of the same key range: the second shadows the first,
  // then half the keys die. Compaction must fold this down without
  // changing any answer.
  Rng rng(11);
  std::vector<ObjectId> ids;
  for (int i = 0; i < 200; ++i) {
    auto id = mgr->Allocate(rng.NextName(150), AllocHint{});
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  std::map<uint64_t, std::string> expect;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i % 2 == 0) {
      std::string v = "gen2-" + std::to_string(ids[i].raw);
      ASSERT_TRUE(mgr->Update(ids[i], v).ok());
      expect[ids[i].raw] = v;
    } else {
      ASSERT_TRUE(mgr->Free(ids[i]).ok());
    }
  }
  // Push more data through to trigger L0 compaction organically, then
  // drain with a checkpoint.
  for (int i = 0; i < 200; ++i) {
    auto id = mgr->Allocate(rng.NextName(150), AllocHint{});
    ASSERT_TRUE(id.ok());
    auto back = mgr->Read(id.value());
    ASSERT_TRUE(back.ok());
    expect[id.value().raw] = back.value();
  }
  ASSERT_TRUE(mgr->Checkpoint().ok());

  std::map<uint64_t, std::string> scanned;
  ASSERT_TRUE(mgr->ScanAll([&](ObjectId id, std::string_view data) {
                   scanned[id.raw] = std::string(data);
                   return Status::OK();
                 }).ok());
  EXPECT_EQ(scanned, expect);

  storage::StorageStats stats = mgr->stats();
  // The tiny triggers guarantee at least one compaction ran.
  EXPECT_GT(stats.lsm_compaction_bytes_read, 0u);
  EXPECT_GT(stats.lsm_compaction_bytes_written, 0u);
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(LsmTest, StatsArePlumbedAndMonotonic) {
  TempDir dir;
  auto mgr = OpenOrDie(TinyOptions(dir.file("db")));
  storage::StorageStats before = mgr->stats();
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(mgr->Allocate(rng.NextName(200), AllocHint{}).ok());
  }
  ASSERT_TRUE(mgr->Checkpoint().ok());
  storage::StorageStats after = mgr->stats();
  EXPECT_GT(after.txn_commits, before.txn_commits);
  EXPECT_GT(after.disk_writes, before.disk_writes);
  EXPECT_GT(after.db_size_bytes, 0u);
  EXPECT_EQ(after.live_objects, 100u);
  // The memtable drained at checkpoint; the level vector reports the tree.
  uint64_t files = 0;
  for (uint64_t n : after.lsm_level_files) files += n;
  EXPECT_GT(files, 0u);
  ASSERT_TRUE(mgr->Close().ok());
}

// TSan target: concurrent committers vs background flush + compaction vs
// point readers vs stats polling. Small enough to finish quickly on one
// core, racy enough that a missing lock shows up under -fsanitize=thread.
TEST(LsmTest, CompactionUnderConcurrentLoad) {
  TempDir dir;
  LsmOptions opts = TinyOptions(dir.file("db"));
  auto mgr = OpenOrDie(opts);

  constexpr int kWriters = 3;
  constexpr int kOpsPerWriter = 120;
  std::atomic<bool> stop{false};
  std::vector<std::vector<uint64_t>> ids_per_writer(kWriters);

  std::vector<std::thread> threads;
  threads.reserve(kWriters + 2);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(100 + w);
      for (int i = 0; i < kOpsPerWriter; ++i) {
        auto txn = mgr->Begin();
        ASSERT_TRUE(txn.ok());
        auto id = mgr->Allocate(txn.value(), rng.NextName(100), AllocHint{});
        ASSERT_TRUE(id.ok());
        if (!ids_per_writer[w].empty() && rng.NextBelow(3) == 0) {
          uint64_t victim =
              ids_per_writer[w][rng.NextBelow(ids_per_writer[w].size())];
          // Update races with nothing: each writer touches only its ids.
          ASSERT_TRUE(
              mgr->Update(txn.value(), ObjectId(victim), "rewrite").ok());
        }
        ASSERT_TRUE(mgr->Commit(txn.value()).ok());
        ids_per_writer[w].push_back(id.value().raw);
      }
    });
  }
  // A reader thread hammering point reads over whatever exists.
  threads.emplace_back([&] {
    Rng rng(999);
    while (!stop.load(std::memory_order_acquire)) {
      uint64_t raw = 1 + rng.NextBelow(kWriters * kOpsPerWriter);
      auto r = mgr->Read(ObjectId(raw));
      if (!r.ok()) {
        ASSERT_TRUE(r.status().IsNotFound()) << r.status().ToString();
      }
    }
  });
  // A stats poller (exercises the stats() lock paths against rotation).
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      storage::StorageStats s = mgr->stats();
      ASSERT_LE(s.lsm_level_files.size(), 16u);
      std::this_thread::yield();
    }
  });

  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_release);
  for (size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  ASSERT_TRUE(mgr->Checkpoint().ok());
  uint64_t live = 0;
  ASSERT_TRUE(mgr->ScanAll([&](ObjectId, std::string_view) {
                   ++live;
                   return Status::OK();
                 }).ok());
  EXPECT_EQ(live, static_cast<uint64_t>(kWriters) * kOpsPerWriter);
  ASSERT_TRUE(mgr->Close().ok());
}

}  // namespace
}  // namespace labflow::lsm
