// Edge-case tests for the shared paged object heap: forwarding chains,
// size-class padding, rebuild-by-scan, and the Texas no-WAL durability
// contract.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/test_util.h"
#include "texas/texas_manager.h"

namespace labflow::storage {
namespace {

using test::ManagerKind;
using test::MakeManager;
using test::TempDir;

std::unique_ptr<texas::TexasManager> OpenTexas(const std::string& path,
                                               bool truncate = true) {
  texas::TexasOptions opts;
  opts.base.path = path;
  opts.base.truncate = truncate;
  auto r = texas::TexasManager::Open(opts);
  EXPECT_TRUE(r.ok());
  return r.ok() ? std::move(r).value() : nullptr;
}

TEST(ForwardingTest, RepeatedGrowthKeepsChainShort) {
  // Grow one object over and over amid page-filling noise: every growth
  // that leaves the page must still resolve through at most one hop, and
  // reads must never degrade into a long pointer chase.
  TempDir dir;
  auto mgr = OpenTexas(dir.file("db"));
  auto id = mgr->Allocate("x", AllocHint{});
  ASSERT_TRUE(id.ok());
  Rng rng(3);
  std::string expected = "x";
  for (int round = 0; round < 60; ++round) {
    // Noise keeps the current pages full so growth must relocate.
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(mgr->Allocate(std::string(300, 'n'), AllocHint{}).ok());
    }
    expected = rng.NextName(100 + round * 60);
    ASSERT_TRUE(mgr->Update(id.value(), expected).ok());
    auto back = mgr->Read(id.value());
    ASSERT_TRUE(back.ok());
    ASSERT_EQ(back.value(), expected);
  }
  // The object is still exactly one public object.
  int occurrences = 0;
  ASSERT_TRUE(mgr
                  ->ScanAll([&](ObjectId scanned, std::string_view data) {
                    if (scanned == id.value()) {
                      ++occurrences;
                      EXPECT_EQ(std::string(data), expected);
                    }
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(occurrences, 1);
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(SizeClassTest, TexasPadsToPowerOfTwoClasses) {
  // Two stores, same logical data; Texas's file must reflect its
  // segregated-fit rounding vs OStore's exact fit.
  TempDir dir;
  auto texas_mgr = MakeManager(ManagerKind::kTexas, dir.file("texas"));
  auto ostore_mgr = MakeManager(ManagerKind::kOstore, dir.file("ostore"));
  // 600-byte records: Texas rounds each to 1024.
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(
        texas_mgr->Allocate(std::string(600, 't'), AllocHint{}).ok());
    ASSERT_TRUE(
        ostore_mgr->Allocate(std::string(600, 'o'), AllocHint{}).ok());
  }
  uint64_t texas_size = texas_mgr->stats().db_size_bytes;
  uint64_t ostore_size = ostore_mgr->stats().db_size_bytes;
  double ratio = static_cast<double>(texas_size) /
                 static_cast<double>(ostore_size);
  EXPECT_GT(ratio, 1.3) << "Texas should pay size-class fragmentation";
  EXPECT_LT(ratio, 2.1);
  ASSERT_TRUE(texas_mgr->Close().ok());
  ASSERT_TRUE(ostore_mgr->Close().ok());
}

TEST(RebuildScanTest, FreeSpaceIsReusedAfterReopen) {
  TempDir dir;
  std::vector<ObjectId> ids;
  uint64_t size_before;
  {
    auto mgr = OpenTexas(dir.file("db"));
    for (int i = 0; i < 2000; ++i) {
      auto id = mgr->Allocate(std::string(400, 'a'), AllocHint{});
      ASSERT_TRUE(id.ok());
      ids.push_back(id.value());
    }
    // Free half, leaving holes everywhere.
    for (size_t i = 0; i < ids.size(); i += 2) {
      ASSERT_TRUE(mgr->Free(ids[i]).ok());
    }
    size_before = mgr->stats().db_size_bytes;
    ASSERT_TRUE(mgr->Close().ok());
  }
  auto mgr = OpenTexas(dir.file("db"), /*truncate=*/false);
  EXPECT_EQ(mgr->stats().live_objects, ids.size() / 2);
  // New allocations must reuse the reclaimed space, not only append.
  for (int i = 0; i < 800; ++i) {
    ASSERT_TRUE(mgr->Allocate(std::string(400, 'b'), AllocHint{}).ok());
  }
  uint64_t size_after = mgr->stats().db_size_bytes;
  EXPECT_LT(size_after, size_before + 100 * 8192)
      << "reopen lost track of free space";
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(TexasDurabilityTest, CheckpointIsTheDurabilityBoundary) {
  // Texas has no WAL: state as of the last Checkpoint survives a crash,
  // anything later is (legitimately) lost. This test pins that contract.
  TempDir dir;
  ObjectId durable, volatile_id;
  {
    auto mgr = OpenTexas(dir.file("db"));
    auto a = mgr->Allocate("before checkpoint", AllocHint{});
    ASSERT_TRUE(a.ok());
    durable = a.value();
    ASSERT_TRUE(mgr->Checkpoint().ok());
    auto b = mgr->Allocate("after checkpoint", AllocHint{});
    ASSERT_TRUE(b.ok());
    volatile_id = b.value();
    ASSERT_TRUE(mgr->SimulateCrash().ok());
  }
  auto mgr = OpenTexas(dir.file("db"), /*truncate=*/false);
  EXPECT_EQ(mgr->Read(durable).value(), "before checkpoint");
  auto lost = mgr->Read(volatile_id);
  EXPECT_FALSE(lost.ok() && lost.value() == "after checkpoint")
      << "Texas must not promise durability it does not implement";
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(PaddedRecordTest, PaddingInvisibleToReaders) {
  TempDir dir;
  auto mgr = OpenTexas(dir.file("db"));
  // Sizes straddling the size classes: padding must never leak into reads.
  for (size_t size : {0u, 1u, 31u, 32u, 33u, 63u, 64u, 65u, 511u, 513u,
                      4095u, 4097u}) {
    std::string data(size, 'p');
    auto id = mgr->Allocate(data, AllocHint{});
    ASSERT_TRUE(id.ok()) << size;
    auto back = mgr->Read(id.value());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->size(), size);
    EXPECT_EQ(back.value(), data);
  }
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(SegmentPersistenceTest, SegmentsSurviveReopen) {
  TempDir dir;
  uint16_t hot, cold;
  ObjectId in_hot, in_cold;
  {
    auto mgr = MakeManager(ManagerKind::kOstore, dir.file("db"));
    hot = mgr->CreateSegment("hot").value();
    cold = mgr->CreateSegment("cold").value();
    AllocHint h;
    h.segment = hot;
    in_hot = mgr->Allocate("hot data", h).value();
    h.segment = cold;
    in_cold = mgr->Allocate("cold data", h).value();
    ASSERT_TRUE(mgr->Close().ok());
  }
  auto mgr = MakeManager(ManagerKind::kOstore, dir.file("db"), 256,
                         /*truncate=*/false);
  // Allocating into the persisted segments still works and stays disjoint.
  AllocHint h;
  h.segment = hot;
  auto more_hot = mgr->Allocate(std::string(64, 'h'), h);
  ASSERT_TRUE(more_hot.ok());
  EXPECT_EQ(more_hot->page(), in_hot.page())
      << "reopened hot segment should keep filling its pages";
  h.segment = cold;
  auto more_cold = mgr->Allocate(std::string(64, 'c'), h);
  ASSERT_TRUE(more_cold.ok());
  EXPECT_NE(more_cold->page(), more_hot->page());
  ASSERT_TRUE(mgr->Close().ok());
}

}  // namespace
}  // namespace labflow::storage
