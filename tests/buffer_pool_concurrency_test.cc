// Buffer pool concurrency tests: the sharded pool under multithreaded
// hit/miss/evict/flush traffic. Like concurrency_test.cc these are built to
// run under -fsanitize=thread (scripts/check.sh, tsan phase); the assertions
// are coarse — counters, status codes, timing bounds with wide margins —
// and the point is that TSan watches the shard mutexes, frame latches, and
// off-lock I/O staging while the traffic runs.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "storage/buffer_pool.h"
#include "storage/fault_env.h"
#include "storage/page.h"
#include "storage/page_file.h"
#include "tests/test_util.h"

namespace labflow {
namespace {

using storage::BufferPool;
using storage::BufferPoolStats;
using storage::FaultInjectionEnv;
using storage::PageFile;
using storage::StampPageChecksum;
using storage::kPageSize;
using test::TempDir;

/// Appends `n` checksum-stamped pages, each filled with a byte derived from
/// its page number so readers can verify they got the right page.
void FillPages(PageFile* file, int n) {
  for (int i = 0; i < n; ++i) {
    auto p = file->AppendPage();
    ASSERT_TRUE(p.ok());
    std::vector<char> data(kPageSize, static_cast<char>('a' + (i % 26)));
    StampPageChecksum(data.data());
    ASSERT_TRUE(file->WritePage(p.value(), data.data()).ok());
  }
}

class BufferPoolConcurrencyTest : public ::testing::Test {
 protected:
  void OpenFile(int pages) {
    ASSERT_TRUE(file_.Open(dir_.file("pool"), true).ok());
    FillPages(&file_, pages);
  }

  TempDir dir_;
  PageFile file_;
};

// Many threads over a pool much smaller than the page set: every kind of
// traffic at once (hits, misses, evictions, dirtying, flushes, drops). The
// end-state assertions are the stats invariant and content integrity; the
// rest of the value is TSan watching the interleavings.
TEST_F(BufferPoolConcurrencyTest, MultithreadedStress) {
  constexpr int kPages = 64;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 800;
  OpenFile(kPages);
  BufferPool pool(&file_, /*capacity_pages=*/16, /*fault_delay_us=*/0,
                  /*shards=*/4);
  ASSERT_EQ(pool.shard_count(), 4u);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 17);
      for (int i = 0; i < kOpsPerThread; ++i) {
        uint64_t page = rng.NextBelow(kPages);
        auto g = pool.Fetch(page);
        if (!g.ok()) {
          // Transient pin pressure is legal under this much traffic; any
          // other failure is not.
          if (!g.status().IsResourceExhausted()) failures.fetch_add(1);
          continue;
        }
        if (i % 13 == 0) {
          WriterMutexLock l(g->frame()->latch());
          g->frame()->data()[8] = static_cast<char>('a' + (page % 26));
          g->frame()->MarkDirty();
        } else {
          ReaderMutexLock l(g->frame()->latch());
          char c = g->frame()->data()[kPageSize / 2];
          if (c != static_cast<char>('a' + (page % 26))) failures.fetch_add(1);
        }
        g->Release();
        if (i % 97 == 0) {
          if (!pool.FlushPage(page).ok()) failures.fetch_add(1);
        }
        if (t == 0 && i % 211 == 0) {
          if (!pool.FlushAll().ok()) failures.fetch_add(1);
          if (!pool.DropClean().ok()) failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // No read attempt failed, so the accounting must balance exactly: every
  // Fetch either hit or went to disk.
  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.disk_reads, stats.fetches);
  EXPECT_EQ(stats.checksum_failures, 0u);

  // Per-shard counters must sum to the aggregate.
  uint64_t shard_fetches = 0;
  for (const BufferPoolStats& s : pool.shard_stats()) {
    shard_fetches += s.fetches;
  }
  EXPECT_EQ(shard_fetches, stats.fetches);
}

// N concurrent fetchers of one cold page must share a single disk read:
// the first installs the in-flight frame and reads; the rest wait on it and
// resolve as hits. The injected fault delay holds the read open long enough
// that the waiters genuinely pile up on the loading frame.
TEST_F(BufferPoolConcurrencyTest, ConcurrentMissesShareOneRead) {
  constexpr int kFetchers = 8;
  OpenFile(10);
  BufferPool pool(&file_, /*capacity_pages=*/8, /*fault_delay_us=*/100000);

  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kFetchers; ++t) {
    threads.emplace_back([&] {
      auto g = pool.Fetch(5);
      if (!g.ok() || g->frame()->data()[0] != 'f') bad.fetch_add(1);
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0);

  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.fetches, static_cast<uint64_t>(kFetchers));
  EXPECT_EQ(stats.disk_reads, 1u) << "concurrent misses each read the page";
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(kFetchers - 1));
}

// Exhaustion must be per-shard-aware: with every frame of every shard
// pinned, a further fetch fails with ResourceExhausted (it cannot steal
// capacity from another shard), and releasing a pin in the right shard
// makes the fetch succeed.
TEST_F(BufferPoolConcurrencyTest, AllFramesPinnedAcrossShards) {
  OpenFile(16);
  // 8 frames over 4 shards = 2 per shard; pages 0..7 land two per shard.
  BufferPool pool(&file_, /*capacity_pages=*/8, /*fault_delay_us=*/0,
                  /*shards=*/4);
  ASSERT_EQ(pool.shard_count(), 4u);

  std::vector<BufferPool::PinGuard> pins;
  for (uint64_t p = 0; p < 8; ++p) {
    auto g = pool.Fetch(p);
    ASSERT_TRUE(g.ok()) << "page " << p;
    pins.push_back(std::move(g.value()));
  }
  // Page 8 maps to shard 0, whose two frames (pages 0 and 4) are pinned.
  EXPECT_TRUE(pool.Fetch(8).status().IsResourceExhausted());
  pins[4].Release();  // page 4, shard 0
  EXPECT_TRUE(pool.Fetch(8).ok());
}

// Satellite fix: a checksum-failed read must count as a disk read *and* a
// checksum failure, must not satisfy the fetch, and must not leave the bad
// bytes cached (a retry re-reads the page).
TEST_F(BufferPoolConcurrencyTest, ChecksumFailureAccounting) {
  OpenFile(4);
  // Overwrite page 2 with bytes whose stored checksum is wrong.
  std::vector<char> garbage(kPageSize, 'z');
  ASSERT_TRUE(file_.WritePage(2, garbage.data()).ok());

  BufferPool pool(&file_, 4);
  EXPECT_FALSE(pool.Fetch(2).ok());
  BufferPoolStats stats = pool.stats();
  EXPECT_EQ(stats.fetches, 1u);
  EXPECT_EQ(stats.disk_reads, 1u) << "failed read attempt not counted";
  EXPECT_EQ(stats.checksum_failures, 1u);
  EXPECT_EQ(stats.hits, 0u);

  // Not cached: the retry must go to disk again and fail again.
  EXPECT_FALSE(pool.Fetch(2).ok());
  stats = pool.stats();
  EXPECT_EQ(stats.disk_reads, 2u) << "corrupt page served from cache";
  EXPECT_EQ(stats.checksum_failures, 2u);

  // A good page still fetches fine alongside the failures, and the relaxed
  // invariant holds: hits + disk_reads >= fetches.
  EXPECT_TRUE(pool.Fetch(1).ok());
  stats = pool.stats();
  EXPECT_GE(stats.hits + stats.disk_reads, stats.fetches);
}

// The headline tentpole property, timing-bounded: a miss on page A sitting
// in a (simulated) slow disk read must not delay a hit on page B — even in
// the same shard. The fault delay is 300ms; the hit must complete in a
// fraction of that, which only works if the miss I/O happens off the shard
// mutex.
TEST_F(BufferPoolConcurrencyTest, SlowMissDoesNotBlockHits) {
  OpenFile(10);
  constexpr int64_t kDelayUs = 300000;
  BufferPool pool(&file_, /*capacity_pages=*/8, kDelayUs, /*shards=*/1);
  ASSERT_EQ(pool.shard_count(), 1u);

  // Warm page 1 (pays one fault delay now, none later).
  { ASSERT_TRUE(pool.Fetch(1).ok()); }

  std::thread loader([&] {
    auto g = pool.Fetch(7);  // cold: blocks in the delayed read
    EXPECT_TRUE(g.ok());
  });
  // Give the loader time to install the in-flight frame and enter the read.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  Stopwatch sw;
  auto hit = pool.Fetch(1);
  double hit_sec = sw.ElapsedSeconds();
  loader.join();
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_LT(hit_sec, kDelayUs / 1e6 / 2)
      << "hit on page 1 waited out the miss I/O on page 7";
}

// Satellite fix, same property for the write path: FlushAll staging a dirty
// page into a slow WritePage (FaultInjectionEnv write delay) must not hold
// the shard mutex across the write, so concurrent hits proceed.
TEST_F(BufferPoolConcurrencyTest, SlowFlushDoesNotBlockHits) {
  constexpr int64_t kWriteDelayUs = 300000;
  FaultInjectionEnv::Options fopts;
  fopts.write_delay_us = kWriteDelayUs;
  FaultInjectionEnv env(fopts);

  PageFile file;
  ASSERT_TRUE(file.Open(&env, "slow.db", true).ok());
  // Two pages; each raw setup write pays the delay once, which is fine.
  FillPages(&file, 2);

  BufferPool pool(&file, /*capacity_pages=*/4, /*fault_delay_us=*/0,
                  /*shards=*/1);
  {
    auto g = pool.Fetch(0);
    ASSERT_TRUE(g.ok());
    WriterMutexLock l(g->frame()->latch());
    g->frame()->data()[8] = 'Z';
    g->frame()->MarkDirty();
  }
  { ASSERT_TRUE(pool.Fetch(1).ok()); }  // warm the hit target

  std::thread flusher([&] { EXPECT_TRUE(pool.FlushAll().ok()); });
  // Let the flusher stage the page and enter the delayed WritePage.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  Stopwatch sw;
  auto hit = pool.Fetch(1);
  double hit_sec = sw.ElapsedSeconds();
  flusher.join();
  ASSERT_TRUE(hit.ok());
  EXPECT_LT(hit_sec, kWriteDelayUs / 1e6 / 2)
      << "hit blocked behind flush I/O";
  EXPECT_EQ(pool.stats().disk_writes, 1u);
}

}  // namespace
}  // namespace labflow
