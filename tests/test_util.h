#ifndef LABFLOW_TESTS_TEST_UTIL_H_
#define LABFLOW_TESTS_TEST_UTIL_H_

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "mm/mm_manager.h"
#include "ostore/ostore_manager.h"
#include "storage/storage_manager.h"
#include "texas/texas_manager.h"

namespace labflow::test {

/// Self-deleting temporary directory for database files.
class TempDir {
 public:
  TempDir() {
    std::string tmpl = "/tmp/labflow_test_XXXXXX";
    char* dir = ::mkdtemp(tmpl.data());
    path_ = dir == nullptr ? "/tmp" : dir;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  std::string file(const std::string& name) const { return path_ + "/" + name; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

enum class ManagerKind { kOstore, kTexas, kTexasTC, kMm };

inline const char* ManagerKindName(ManagerKind kind) {
  switch (kind) {
    case ManagerKind::kOstore:
      return "OStore";
    case ManagerKind::kTexas:
      return "Texas";
    case ManagerKind::kTexasTC:
      return "TexasTC";
    case ManagerKind::kMm:
      return "Mm";
  }
  return "?";
}

inline std::unique_ptr<storage::StorageManager> MakeManager(
    ManagerKind kind, const std::string& path, size_t pool_pages = 256,
    bool truncate = true) {
  switch (kind) {
    case ManagerKind::kOstore: {
      ostore::OstoreOptions opts;
      opts.base.path = path;
      opts.base.buffer_pool_pages = pool_pages;
      opts.base.truncate = truncate;
      auto r = ostore::OstoreManager::Open(opts);
      return r.ok() ? std::move(r).value() : nullptr;
    }
    case ManagerKind::kTexas:
    case ManagerKind::kTexasTC: {
      texas::TexasOptions opts;
      opts.base.path = path;
      opts.base.buffer_pool_pages = pool_pages;
      opts.base.truncate = truncate;
      opts.client_clustering = (kind == ManagerKind::kTexasTC);
      auto r = texas::TexasManager::Open(opts);
      return r.ok() ? std::move(r).value() : nullptr;
    }
    case ManagerKind::kMm:
      return std::make_unique<mm::MmManager>("mm");
  }
  return nullptr;
}

}  // namespace labflow::test

#endif  // LABFLOW_TESTS_TEST_UTIL_H_
