#include "workflow/graph.h"

#include <gtest/gtest.h>

#include "mm/mm_manager.h"
#include "workflow/simulator.h"
#include "workflow/values.h"

namespace labflow::workflow {
namespace {

TEST(GraphTest, GenomeWorkflowValidates) {
  WorkflowGraph g = GenomeMappingWorkflow();
  EXPECT_TRUE(g.Validate().ok()) << g.Validate().ToString();
  EXPECT_EQ(g.material_classes.size(), 3u);
  EXPECT_GE(g.transitions.size(), 13u);
}

TEST(GraphTest, OrderWorkflowValidates) {
  WorkflowGraph g = OrderFulfillmentWorkflow();
  EXPECT_TRUE(g.Validate().ok()) << g.Validate().ToString();
}

TEST(GraphTest, FindTransition) {
  WorkflowGraph g = GenomeMappingWorkflow();
  const Transition* t = g.FindTransition("determine_sequence");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->source_state, "waiting_for_sequencing");
  EXPECT_EQ(t->target_state, "waiting_for_incorporation");
  EXPECT_EQ(t->failure_state, "tc_picked");
  EXPECT_EQ(g.FindTransition("no_such_step"), nullptr);
}

TEST(GraphTest, TransitionsFromState) {
  WorkflowGraph g = GenomeMappingWorkflow();
  auto from = g.TransitionsFrom("tc_picked");
  ASSERT_EQ(from.size(), 1u);
  EXPECT_EQ(from[0]->step_name, "seq_reaction");
}

TEST(GraphTest, ValidationCatchesBadGraphs) {
  WorkflowGraph g;
  g.name = "bad";
  g.material_classes = {"widget"};
  g.states = {"a", "b"};
  Transition t;
  t.step_name = "move";
  t.material_class = "widget";
  t.source_state = "a";
  t.target_state = "nowhere";  // unknown state
  g.transitions.push_back(t);
  EXPECT_FALSE(g.Validate().ok());

  g.transitions[0].target_state = "b";
  EXPECT_TRUE(g.Validate().ok());

  g.transitions[0].failure_prob = 0.5;  // without failure_state
  EXPECT_FALSE(g.Validate().ok());

  g.transitions[0].failure_prob = 0;
  g.transitions.push_back(g.transitions[0]);  // duplicate step name
  EXPECT_FALSE(g.Validate().ok());
}

TEST(GraphTest, AnalyzeGenomeWorkflow) {
  WorkflowGraph g = GenomeMappingWorkflow();
  WorkflowGraph::Analysis a = g.Analyze();
  // Every state in the production graph is reachable.
  EXPECT_TRUE(a.unreachable_states.empty())
      << "unreachable: " << a.unreachable_states.front();
  EXPECT_TRUE(a.dead_transitions.empty());
  // Terminal states are exactly the intended sinks.
  std::set<std::string> terminals(a.terminal_states.begin(),
                                  a.terminal_states.end());
  EXPECT_TRUE(terminals.count("cl_finished"));
  EXPECT_TRUE(terminals.count("tc_incorporated"));
  EXPECT_TRUE(terminals.count("tc_failed"));
  EXPECT_FALSE(terminals.count("waiting_for_sequencing"));
}

TEST(GraphTest, AnalyzeFlagsDanglingPieces) {
  WorkflowGraph g;
  g.material_classes = {"widget"};
  g.states = {"start", "middle", "end", "orphan"};
  Transition arrive;
  arrive.step_name = "arrive";
  arrive.material_class = "widget";
  arrive.target_state = "start";
  Transition move;
  move.step_name = "move";
  move.material_class = "widget";
  move.source_state = "start";
  move.target_state = "end";
  Transition dead;
  dead.step_name = "from_nowhere";
  dead.material_class = "widget";
  dead.source_state = "middle";  // nothing produces "middle"
  dead.target_state = "end";
  g.transitions = {arrive, move, dead};
  ASSERT_TRUE(g.Validate().ok());
  WorkflowGraph::Analysis a = g.Analyze();
  EXPECT_EQ(a.unreachable_states,
            (std::vector<std::string>{"middle", "orphan"}));
  EXPECT_EQ(a.dead_transitions, (std::vector<std::string>{"from_nowhere"}));
}

TEST(GraphTest, InstallSchemaDefinesEverything) {
  mm::MmManager mgr("mm");
  auto base = labbase::LabBase::Open(&mgr, labbase::LabBaseOptions{}).value();
  auto db = base->OpenSession();
  WorkflowGraph g = GenomeMappingWorkflow();
  ASSERT_TRUE(g.InstallSchema(db.get()).ok());
  EXPECT_TRUE(db->schema().MaterialClassByName("tclone").ok());
  EXPECT_TRUE(db->schema().StepClassByName("assemble_sequence").ok());
  EXPECT_TRUE(db->schema().StateByName("waiting_for_incorporation").ok());
  EXPECT_TRUE(db->schema().AttributeByName("sequence").ok());
  // Idempotent.
  EXPECT_TRUE(g.InstallSchema(db.get()).ok());
}

TEST(ValuesTest, GeneratorsRespectSpecs) {
  Rng rng(5);
  ResultSpec ints{.attr = "n", .gen = ResultSpec::Gen::kInt, .min = 3,
                  .max = 9};
  for (int i = 0; i < 100; ++i) {
    Value v = GenerateResult(ints, &rng);
    ASSERT_EQ(v.type(), ValueType::kInt);
    EXPECT_GE(v.int_value(), 3);
    EXPECT_LE(v.int_value(), 9);
  }
  ResultSpec reals{.attr = "r", .gen = ResultSpec::Gen::kReal, .rmin = 0.5,
                   .rmax = 0.7};
  for (int i = 0; i < 100; ++i) {
    Value v = GenerateResult(reals, &rng);
    ASSERT_EQ(v.type(), ValueType::kReal);
    EXPECT_GE(v.real_value(), 0.5);
    EXPECT_LT(v.real_value(), 0.7);
  }
  ResultSpec dna{.attr = "d", .gen = ResultSpec::Gen::kDna, .min = 10,
                 .max = 20};
  Value v = GenerateResult(dna, &rng);
  ASSERT_EQ(v.type(), ValueType::kString);
  EXPECT_GE(v.string_value().size(), 10u);
  EXPECT_LE(v.string_value().size(), 20u);
  ResultSpec hits{.attr = "h", .gen = ResultSpec::Gen::kHitList, .min = 1,
                  .max = 5};
  Value hv = GenerateResult(hits, &rng);
  ASSERT_EQ(hv.type(), ValueType::kList);
  EXPECT_GE(hv.list_value().size(), 1u);
  for (const Value& hit : hv.list_value()) {
    ASSERT_EQ(hit.type(), ValueType::kList);
    EXPECT_EQ(hit.list_value().size(), 3u);
  }
}

TEST(SimulatorTest, OrderWorkflowRunsToQuiescence) {
  mm::MmManager mgr("mm");
  auto base = labbase::LabBase::Open(&mgr, labbase::LabBaseOptions{}).value();
  auto db = base->OpenSession();
  WorkflowGraph g = OrderFulfillmentWorkflow();
  SimpleSimulator sim(db.get(), g, /*seed=*/7);
  auto steps = sim.Run(/*n_materials=*/50);
  ASSERT_TRUE(steps.ok()) << steps.status().ToString();
  // Every order plus at least one transition each.
  EXPECT_GE(steps.value(), 50 * 2);

  // All orders must end delivered (failure loop included).
  labbase::StateId delivered = db->schema().StateByName("delivered").value();
  EXPECT_EQ(db->CountInState(delivered).value(), 50);
  // And the audit trail must expose what happened.
  labbase::ClassId order = db->schema().MaterialClassByName("order").value();
  auto orders = db->MaterialsOfClass(order).value();
  ASSERT_EQ(orders.size(), 50u);
  labbase::AttrId tracking = db->schema().AttributeByName("tracking").value();
  int with_tracking = 0;
  for (Oid o : orders) {
    if (db->MostRecent(o, tracking).ok()) ++with_tracking;
  }
  EXPECT_EQ(with_tracking, 50);
}

TEST(SimulatorTest, RejectsSpawnJoinGraphs) {
  mm::MmManager mgr("mm");
  auto base = labbase::LabBase::Open(&mgr, labbase::LabBaseOptions{}).value();
  auto db = base->OpenSession();
  WorkflowGraph g = GenomeMappingWorkflow();
  SimpleSimulator sim(db.get(), g, 1);
  EXPECT_TRUE(sim.Run(1).status().IsNotSupported());
}

}  // namespace
}  // namespace labflow::workflow
