#include "storage/hash_dir.h"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "labbase/labbase.h"
#include "labflow/driver.h"
#include "tests/test_util.h"

namespace labflow::storage {
namespace {

using test::ManagerKind;
using test::ManagerKindName;
using test::MakeManager;
using test::TempDir;

class HashDirTest : public ::testing::TestWithParam<ManagerKind> {
 protected:
  void SetUp() override {
    mgr_ = MakeManager(GetParam(), dir_.file("db"));
    ASSERT_NE(mgr_, nullptr);
    auto d = HashDir::Create(mgr_.get(), AllocHint{});
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    dir_handle_ = std::move(d).value();
  }
  void TearDown() override {
    dir_handle_.reset();
    if (mgr_ != nullptr) {
      ASSERT_TRUE(mgr_->Close().ok());
    }
  }

  TempDir dir_;
  std::unique_ptr<StorageManager> mgr_;
  std::unique_ptr<HashDir> dir_handle_;
};

TEST_P(HashDirTest, InsertLookupEraseRoundtrip) {
  ObjectId id(12345);
  ASSERT_TRUE(dir_handle_->Insert("cl-0001", id).ok());
  auto found = dir_handle_->Lookup("cl-0001");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), id);
  EXPECT_EQ(dir_handle_->size(), 1u);
  ASSERT_TRUE(dir_handle_->Erase("cl-0001").ok());
  EXPECT_TRUE(dir_handle_->Lookup("cl-0001").status().IsNotFound());
  EXPECT_EQ(dir_handle_->size(), 0u);
}

TEST_P(HashDirTest, DuplicateInsertRejected) {
  ASSERT_TRUE(dir_handle_->Insert("key", ObjectId(1)).ok());
  EXPECT_TRUE(dir_handle_->Insert("key", ObjectId(2)).IsAlreadyExists());
  EXPECT_EQ(dir_handle_->Lookup("key").value(), ObjectId(1));
}

TEST_P(HashDirTest, MissingKeyIsNotFound) {
  EXPECT_TRUE(dir_handle_->Lookup("ghost").status().IsNotFound());
  EXPECT_TRUE(dir_handle_->Erase("ghost").IsNotFound());
}

TEST_P(HashDirTest, GrowsThroughManyInsertsAndStaysCorrect) {
  // Enough entries to force several doublings from 16 buckets.
  Rng rng(11);
  std::map<std::string, uint64_t> shadow;
  for (int i = 0; i < 4000; ++i) {
    std::string key = "mat-" + std::to_string(i) + "-" + rng.NextName(4);
    uint64_t raw = rng.NextU64() | 1;
    ASSERT_TRUE(dir_handle_->Insert(key, ObjectId(raw)).ok());
    shadow[key] = raw;
  }
  EXPECT_EQ(dir_handle_->size(), shadow.size());
  for (const auto& [key, raw] : shadow) {
    auto found = dir_handle_->Lookup(key);
    ASSERT_TRUE(found.ok()) << key;
    ASSERT_EQ(found->raw, raw);
  }
  // ForEach visits everything exactly once.
  std::map<std::string, uint64_t> seen;
  ASSERT_TRUE(dir_handle_
                  ->ForEach([&](std::string_view key, ObjectId id) {
                    EXPECT_EQ(seen.count(std::string(key)), 0u);
                    seen[std::string(key)] = id.raw;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(seen, shadow);
}

INSTANTIATE_TEST_SUITE_P(Managers, HashDirTest,
                         ::testing::Values(ManagerKind::kOstore,
                                           ManagerKind::kTexas,
                                           ManagerKind::kMm),
                         [](const auto& info) {
                           return ManagerKindName(info.param);
                         });

TEST(HashDirPersistenceTest, SurvivesReopenViaRootId) {
  TempDir dir;
  uint64_t root_raw = 0;
  {
    auto mgr = MakeManager(ManagerKind::kTexas, dir.file("db"));
    auto d = HashDir::Create(mgr.get(), AllocHint{}).value();
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(
          d->Insert("k" + std::to_string(i), ObjectId(i + 1)).ok());
    }
    root_raw = d->root_id().raw;
    ASSERT_TRUE(mgr->Close().ok());
  }
  auto mgr = MakeManager(ManagerKind::kTexas, dir.file("db"), 256,
                         /*truncate=*/false);
  auto d = HashDir::Attach(mgr.get(), ObjectId(root_raw));
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ((*d)->size(), 500u);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ((*d)->Lookup("k" + std::to_string(i)).value(),
              ObjectId(i + 1));
  }
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(LabBasePersistentNameIndexTest, LookupsAndReopenWork) {
  TempDir dir;
  labbase::LabBaseOptions opts;
  opts.persistent_name_index = true;
  Oid m1;
  {
    auto mgr = MakeManager(ManagerKind::kOstore, dir.file("db"));
    auto base = labbase::LabBase::Open(mgr.get(), opts).value();
    auto db = base->OpenSession();
    auto clone = db->DefineMaterialClass("clone").value();
    auto s0 = db->DefineState("s0").value();
    m1 = db->CreateMaterial(clone, "cl-1", s0, Timestamp(0)).value();
    ASSERT_TRUE(db->CreateMaterial(clone, "cl-2", s0, Timestamp(1)).ok());
    EXPECT_EQ(db->FindMaterialByName("cl-1").value(), m1);
    EXPECT_TRUE(db->FindMaterialByName("nope").status().IsNotFound());
    // Duplicate names rejected through the persistent directory too.
    EXPECT_TRUE(db->CreateMaterial(clone, "cl-1", s0, Timestamp(2))
                    .status()
                    .IsAlreadyExists());
    ASSERT_TRUE(mgr->Close().ok());
  }
  // Reopen: the directory comes back via the catalog, without a scan.
  auto mgr = MakeManager(ManagerKind::kOstore, dir.file("db"), 256,
                         /*truncate=*/false);
  auto base = labbase::LabBase::Open(mgr.get(), labbase::LabBaseOptions{})
                  .value();  // option restored from the catalog itself
  auto db = base->OpenSession();
  EXPECT_EQ(db->FindMaterialByName("cl-1").value(), m1);
  EXPECT_TRUE(db->FindMaterialByName("cl-2").ok());
  ASSERT_TRUE(mgr->Close().ok());
}

TEST(LabBasePersistentNameIndexTest, BenchmarkStreamConsistent) {
  // The full driver stream must produce the same checksum with the
  // persistent index as with the in-memory map.
  // (Checked against the default-path checksum.)
  using namespace labflow::bench;
  WorkloadParams params;
  params.base_clones = 8;
  uint64_t memory_cksum = 0, persistent_cksum = 0;
  {
    TempDir d;
    Driver::Options o;
    o.version = ServerVersion::kTexas;
    o.db_path = d.file("db");
    memory_cksum = Driver::Run(params, o)->result_checksum;
  }
  {
    TempDir d;
    Driver::Options o;
    o.version = ServerVersion::kTexas;
    o.db_path = d.file("db");
    o.labbase.persistent_name_index = true;
    auto r = Driver::Run(params, o);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    persistent_cksum = r->result_checksum;
  }
  EXPECT_EQ(memory_cksum, persistent_cksum);
}

}  // namespace
}  // namespace labflow::storage
